# Empty dependencies file for microbench_simd.
# This may be replaced when dependencies are built.
