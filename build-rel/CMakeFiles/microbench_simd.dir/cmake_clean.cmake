file(REMOVE_RECURSE
  "CMakeFiles/microbench_simd.dir/bench/microbench_simd.cc.o"
  "CMakeFiles/microbench_simd.dir/bench/microbench_simd.cc.o.d"
  "microbench_simd"
  "microbench_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
