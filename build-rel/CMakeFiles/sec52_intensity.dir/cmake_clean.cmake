file(REMOVE_RECURSE
  "CMakeFiles/sec52_intensity.dir/bench/sec52_intensity.cc.o"
  "CMakeFiles/sec52_intensity.dir/bench/sec52_intensity.cc.o.d"
  "sec52_intensity"
  "sec52_intensity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
