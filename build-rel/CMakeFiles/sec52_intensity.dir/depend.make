# Empty dependencies file for sec52_intensity.
# This may be replaced when dependencies are built.
