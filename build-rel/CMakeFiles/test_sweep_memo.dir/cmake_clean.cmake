file(REMOVE_RECURSE
  "CMakeFiles/test_sweep_memo.dir/tests/test_sweep_memo.cc.o"
  "CMakeFiles/test_sweep_memo.dir/tests/test_sweep_memo.cc.o.d"
  "test_sweep_memo"
  "test_sweep_memo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sweep_memo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
