# Empty dependencies file for test_sweep_memo.
# This may be replaced when dependencies are built.
