# Empty dependencies file for example_wasm_port.
# This may be replaced when dependencies are built.
