file(REMOVE_RECURSE
  "CMakeFiles/example_wasm_port.dir/examples/wasm_port.cc.o"
  "CMakeFiles/example_wasm_port.dir/examples/wasm_port.cc.o.d"
  "example_wasm_port"
  "example_wasm_port.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_wasm_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
