# Empty dependencies file for fig04_core_arch.
# This may be replaced when dependencies are built.
