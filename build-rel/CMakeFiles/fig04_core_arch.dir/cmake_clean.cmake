file(REMOVE_RECURSE
  "CMakeFiles/fig04_core_arch.dir/bench/fig04_core_arch.cc.o"
  "CMakeFiles/fig04_core_arch.dir/bench/fig04_core_arch.cc.o.d"
  "fig04_core_arch"
  "fig04_core_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_core_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
