file(REMOVE_RECURSE
  "CMakeFiles/ext_wasm_simd.dir/bench/ext_wasm_simd.cc.o"
  "CMakeFiles/ext_wasm_simd.dir/bench/ext_wasm_simd.cc.o.d"
  "ext_wasm_simd"
  "ext_wasm_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_wasm_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
