# Empty dependencies file for ext_wasm_simd.
# This may be replaced when dependencies are built.
