# Empty dependencies file for test_simd_wasm.
# This may be replaced when dependencies are built.
