file(REMOVE_RECURSE
  "CMakeFiles/test_simd_wasm.dir/tests/test_simd_wasm.cc.o"
  "CMakeFiles/test_simd_wasm.dir/tests/test_simd_wasm.cc.o.d"
  "test_simd_wasm"
  "test_simd_wasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simd_wasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
