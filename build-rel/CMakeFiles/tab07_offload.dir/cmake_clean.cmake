file(REMOVE_RECURSE
  "CMakeFiles/tab07_offload.dir/bench/tab07_offload.cc.o"
  "CMakeFiles/tab07_offload.dir/bench/tab07_offload.cc.o.d"
  "tab07_offload"
  "tab07_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab07_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
