# Empty dependencies file for tab07_offload.
# This may be replaced when dependencies are built.
