# Empty dependencies file for test_sweep_cache.
# This may be replaced when dependencies are built.
