file(REMOVE_RECURSE
  "CMakeFiles/test_sweep_cache.dir/tests/test_sweep_cache.cc.o"
  "CMakeFiles/test_sweep_cache.dir/tests/test_sweep_cache.cc.o.d"
  "test_sweep_cache"
  "test_sweep_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sweep_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
