file(REMOVE_RECURSE
  "CMakeFiles/test_ext_workloads.dir/tests/test_ext_workloads.cc.o"
  "CMakeFiles/test_ext_workloads.dir/tests/test_ext_workloads.cc.o.d"
  "test_ext_workloads"
  "test_ext_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ext_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
