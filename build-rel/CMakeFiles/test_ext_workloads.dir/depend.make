# Empty dependencies file for test_ext_workloads.
# This may be replaced when dependencies are built.
