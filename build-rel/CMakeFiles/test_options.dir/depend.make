# Empty dependencies file for test_options.
# This may be replaced when dependencies are built.
