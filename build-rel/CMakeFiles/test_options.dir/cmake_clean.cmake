file(REMOVE_RECURSE
  "CMakeFiles/test_options.dir/tests/test_options.cc.o"
  "CMakeFiles/test_options.dir/tests/test_options.cc.o.d"
  "test_options"
  "test_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
