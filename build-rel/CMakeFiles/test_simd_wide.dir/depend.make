# Empty dependencies file for test_simd_wide.
# This may be replaced when dependencies are built.
