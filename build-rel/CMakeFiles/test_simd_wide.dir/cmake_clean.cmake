file(REMOVE_RECURSE
  "CMakeFiles/test_simd_wide.dir/tests/test_simd_wide.cc.o"
  "CMakeFiles/test_simd_wide.dir/tests/test_simd_wide.cc.o.d"
  "test_simd_wide"
  "test_simd_wide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simd_wide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
