# Empty dependencies file for test_sweep_scheduler.
# This may be replaced when dependencies are built.
