file(REMOVE_RECURSE
  "CMakeFiles/test_sweep_scheduler.dir/tests/test_sweep_scheduler.cc.o"
  "CMakeFiles/test_sweep_scheduler.dir/tests/test_sweep_scheduler.cc.o.d"
  "test_sweep_scheduler"
  "test_sweep_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sweep_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
