# Empty dependencies file for example_isa_futures.
# This may be replaced when dependencies are built.
