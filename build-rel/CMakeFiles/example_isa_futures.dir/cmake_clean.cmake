file(REMOVE_RECURSE
  "CMakeFiles/example_isa_futures.dir/examples/isa_futures.cc.o"
  "CMakeFiles/example_isa_futures.dir/examples/isa_futures.cc.o.d"
  "example_isa_futures"
  "example_isa_futures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_isa_futures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
