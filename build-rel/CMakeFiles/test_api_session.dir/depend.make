# Empty dependencies file for test_api_session.
# This may be replaced when dependencies are built.
