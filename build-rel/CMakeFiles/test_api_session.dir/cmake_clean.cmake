file(REMOVE_RECURSE
  "CMakeFiles/test_api_session.dir/tests/test_api_session.cc.o"
  "CMakeFiles/test_api_session.dir/tests/test_api_session.cc.o.d"
  "test_api_session"
  "test_api_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_api_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
