file(REMOVE_RECURSE
  "CMakeFiles/test_simd_sve.dir/tests/test_simd_sve.cc.o"
  "CMakeFiles/test_simd_sve.dir/tests/test_simd_sve.cc.o.d"
  "test_simd_sve"
  "test_simd_sve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simd_sve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
