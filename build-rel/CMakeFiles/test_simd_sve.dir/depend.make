# Empty dependencies file for test_simd_sve.
# This may be replaced when dependencies are built.
