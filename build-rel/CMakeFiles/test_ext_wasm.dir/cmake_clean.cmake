file(REMOVE_RECURSE
  "CMakeFiles/test_ext_wasm.dir/tests/test_ext_wasm.cc.o"
  "CMakeFiles/test_ext_wasm.dir/tests/test_ext_wasm.cc.o.d"
  "test_ext_wasm"
  "test_ext_wasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ext_wasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
