# Empty dependencies file for test_ext_wasm.
# This may be replaced when dependencies are built.
