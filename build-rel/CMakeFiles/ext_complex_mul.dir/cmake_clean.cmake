file(REMOVE_RECURSE
  "CMakeFiles/ext_complex_mul.dir/bench/ext_complex_mul.cc.o"
  "CMakeFiles/ext_complex_mul.dir/bench/ext_complex_mul.cc.o.d"
  "ext_complex_mul"
  "ext_complex_mul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_complex_mul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
