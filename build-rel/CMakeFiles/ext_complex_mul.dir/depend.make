# Empty dependencies file for ext_complex_mul.
# This may be replaced when dependencies are built.
