# Empty dependencies file for test_metadata_consistency.
# This may be replaced when dependencies are built.
