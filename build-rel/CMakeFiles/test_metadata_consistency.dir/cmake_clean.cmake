file(REMOVE_RECURSE
  "CMakeFiles/test_metadata_consistency.dir/tests/test_metadata_consistency.cc.o"
  "CMakeFiles/test_metadata_consistency.dir/tests/test_metadata_consistency.cc.o.d"
  "test_metadata_consistency"
  "test_metadata_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metadata_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
