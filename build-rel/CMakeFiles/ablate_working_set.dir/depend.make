# Empty dependencies file for ablate_working_set.
# This may be replaced when dependencies are built.
