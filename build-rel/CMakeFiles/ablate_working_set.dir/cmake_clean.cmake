file(REMOVE_RECURSE
  "CMakeFiles/ablate_working_set.dir/bench/ablate_working_set.cc.o"
  "CMakeFiles/ablate_working_set.dir/bench/ablate_working_set.cc.o.d"
  "ablate_working_set"
  "ablate_working_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_working_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
