# Empty dependencies file for test_simd_arith.
# This may be replaced when dependencies are built.
