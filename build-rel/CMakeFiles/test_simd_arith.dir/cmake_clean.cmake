file(REMOVE_RECURSE
  "CMakeFiles/test_simd_arith.dir/tests/test_simd_arith.cc.o"
  "CMakeFiles/test_simd_arith.dir/tests/test_simd_arith.cc.o.d"
  "test_simd_arith"
  "test_simd_arith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simd_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
