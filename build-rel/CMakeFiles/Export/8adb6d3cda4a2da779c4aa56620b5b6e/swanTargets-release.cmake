#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "swan::swan_core" for configuration "Release"
set_property(TARGET swan::swan_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(swan::swan_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libswan_core.a"
  )

list(APPEND _cmake_import_check_targets swan::swan_core )
list(APPEND _cmake_import_check_files_for_swan::swan_core "${_IMPORT_PREFIX}/lib/libswan_core.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
