# Empty dependencies file for test_autovec.
# This may be replaced when dependencies are built.
