file(REMOVE_RECURSE
  "CMakeFiles/test_autovec.dir/tests/test_autovec.cc.o"
  "CMakeFiles/test_autovec.dir/tests/test_autovec.cc.o.d"
  "test_autovec"
  "test_autovec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autovec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
