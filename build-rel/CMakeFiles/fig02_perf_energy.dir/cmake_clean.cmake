file(REMOVE_RECURSE
  "CMakeFiles/fig02_perf_energy.dir/bench/fig02_perf_energy.cc.o"
  "CMakeFiles/fig02_perf_energy.dir/bench/fig02_perf_energy.cc.o.d"
  "fig02_perf_energy"
  "fig02_perf_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_perf_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
