# Empty dependencies file for fig02_perf_energy.
# This may be replaced when dependencies are built.
