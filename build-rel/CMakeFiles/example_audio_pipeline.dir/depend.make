# Empty dependencies file for example_audio_pipeline.
# This may be replaced when dependencies are built.
