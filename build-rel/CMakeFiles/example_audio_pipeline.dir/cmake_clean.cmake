file(REMOVE_RECURSE
  "CMakeFiles/example_audio_pipeline.dir/examples/audio_pipeline.cc.o"
  "CMakeFiles/example_audio_pipeline.dir/examples/audio_pipeline.cc.o.d"
  "example_audio_pipeline"
  "example_audio_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_audio_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
