# Empty dependencies file for test_trace_packed.
# This may be replaced when dependencies are built.
