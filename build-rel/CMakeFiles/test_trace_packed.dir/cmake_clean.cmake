file(REMOVE_RECURSE
  "CMakeFiles/test_trace_packed.dir/tests/test_trace_packed.cc.o"
  "CMakeFiles/test_trace_packed.dir/tests/test_trace_packed.cc.o.d"
  "test_trace_packed"
  "test_trace_packed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_packed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
