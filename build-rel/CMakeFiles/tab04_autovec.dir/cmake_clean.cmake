file(REMOVE_RECURSE
  "CMakeFiles/tab04_autovec.dir/bench/tab04_autovec.cc.o"
  "CMakeFiles/tab04_autovec.dir/bench/tab04_autovec.cc.o.d"
  "tab04_autovec"
  "tab04_autovec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_autovec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
