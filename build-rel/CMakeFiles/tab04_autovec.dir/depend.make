# Empty dependencies file for tab04_autovec.
# This may be replaced when dependencies are built.
