# Empty dependencies file for tab05_microarch.
# This may be replaced when dependencies are built.
