file(REMOVE_RECURSE
  "CMakeFiles/tab05_microarch.dir/bench/tab05_microarch.cc.o"
  "CMakeFiles/tab05_microarch.dir/bench/tab05_microarch.cc.o.d"
  "tab05_microarch"
  "tab05_microarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_microarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
