file(REMOVE_RECURSE
  "CMakeFiles/ext_gather_lut.dir/bench/ext_gather_lut.cc.o"
  "CMakeFiles/ext_gather_lut.dir/bench/ext_gather_lut.cc.o.d"
  "ext_gather_lut"
  "ext_gather_lut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_gather_lut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
