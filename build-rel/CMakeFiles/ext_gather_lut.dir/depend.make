# Empty dependencies file for ext_gather_lut.
# This may be replaced when dependencies are built.
