file(REMOVE_RECURSE
  "CMakeFiles/swan_cli.dir/src/tools/swan_cli.cc.o"
  "CMakeFiles/swan_cli.dir/src/tools/swan_cli.cc.o.d"
  "swan"
  "swan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swan_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
