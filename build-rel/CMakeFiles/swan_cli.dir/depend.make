# Empty dependencies file for swan_cli.
# This may be replaced when dependencies are built.
