file(REMOVE_RECURSE
  "CMakeFiles/fig03_power.dir/bench/fig03_power.cc.o"
  "CMakeFiles/fig03_power.dir/bench/fig03_power.cc.o.d"
  "fig03_power"
  "fig03_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
