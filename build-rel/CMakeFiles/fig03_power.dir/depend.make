# Empty dependencies file for fig03_power.
# This may be replaced when dependencies are built.
