# Empty dependencies file for sec60_patterns.
# This may be replaced when dependencies are built.
