file(REMOVE_RECURSE
  "CMakeFiles/sec60_patterns.dir/bench/sec60_patterns.cc.o"
  "CMakeFiles/sec60_patterns.dir/bench/sec60_patterns.cc.o.d"
  "sec60_patterns"
  "sec60_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec60_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
