# Empty dependencies file for example_ml_offload_advisor.
# This may be replaced when dependencies are built.
