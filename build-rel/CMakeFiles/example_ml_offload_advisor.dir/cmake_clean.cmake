file(REMOVE_RECURSE
  "CMakeFiles/example_ml_offload_advisor.dir/examples/ml_offload_advisor.cc.o"
  "CMakeFiles/example_ml_offload_advisor.dir/examples/ml_offload_advisor.cc.o.d"
  "example_ml_offload_advisor"
  "example_ml_offload_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ml_offload_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
