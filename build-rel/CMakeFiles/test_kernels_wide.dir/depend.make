# Empty dependencies file for test_kernels_wide.
# This may be replaced when dependencies are built.
