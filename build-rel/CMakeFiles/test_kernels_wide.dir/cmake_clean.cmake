file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_wide.dir/tests/test_kernels_wide.cc.o"
  "CMakeFiles/test_kernels_wide.dir/tests/test_kernels_wide.cc.o.d"
  "test_kernels_wide"
  "test_kernels_wide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_wide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
