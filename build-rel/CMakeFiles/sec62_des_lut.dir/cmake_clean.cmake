file(REMOVE_RECURSE
  "CMakeFiles/sec62_des_lut.dir/bench/sec62_des_lut.cc.o"
  "CMakeFiles/sec62_des_lut.dir/bench/sec62_des_lut.cc.o.d"
  "sec62_des_lut"
  "sec62_des_lut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec62_des_lut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
