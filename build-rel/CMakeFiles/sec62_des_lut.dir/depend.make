# Empty dependencies file for sec62_des_lut.
# This may be replaced when dependencies are built.
