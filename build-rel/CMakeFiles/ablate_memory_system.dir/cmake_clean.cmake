file(REMOVE_RECURSE
  "CMakeFiles/ablate_memory_system.dir/bench/ablate_memory_system.cc.o"
  "CMakeFiles/ablate_memory_system.dir/bench/ablate_memory_system.cc.o.d"
  "ablate_memory_system"
  "ablate_memory_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_memory_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
