# Empty dependencies file for ablate_memory_system.
# This may be replaced when dependencies are built.
