# Empty dependencies file for fig01_instruction_mix.
# This may be replaced when dependencies are built.
