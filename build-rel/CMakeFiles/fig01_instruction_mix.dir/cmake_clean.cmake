file(REMOVE_RECURSE
  "CMakeFiles/fig01_instruction_mix.dir/bench/fig01_instruction_mix.cc.o"
  "CMakeFiles/fig01_instruction_mix.dir/bench/fig01_instruction_mix.cc.o.d"
  "fig01_instruction_mix"
  "fig01_instruction_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_instruction_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
