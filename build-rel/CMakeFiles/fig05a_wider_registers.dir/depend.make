# Empty dependencies file for fig05a_wider_registers.
# This may be replaced when dependencies are built.
