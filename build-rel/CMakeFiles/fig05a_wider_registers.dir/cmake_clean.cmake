file(REMOVE_RECURSE
  "CMakeFiles/fig05a_wider_registers.dir/bench/fig05a_wider_registers.cc.o"
  "CMakeFiles/fig05a_wider_registers.dir/bench/fig05a_wider_registers.cc.o.d"
  "fig05a_wider_registers"
  "fig05a_wider_registers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05a_wider_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
