# Empty dependencies file for test_api_experiment.
# This may be replaced when dependencies are built.
