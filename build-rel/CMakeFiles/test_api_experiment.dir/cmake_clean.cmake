file(REMOVE_RECURSE
  "CMakeFiles/test_api_experiment.dir/tests/test_api_experiment.cc.o"
  "CMakeFiles/test_api_experiment.dir/tests/test_api_experiment.cc.o.d"
  "test_api_experiment"
  "test_api_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_api_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
