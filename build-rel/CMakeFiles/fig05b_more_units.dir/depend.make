# Empty dependencies file for fig05b_more_units.
# This may be replaced when dependencies are built.
