file(REMOVE_RECURSE
  "CMakeFiles/fig05b_more_units.dir/bench/fig05b_more_units.cc.o"
  "CMakeFiles/fig05b_more_units.dir/bench/fig05b_more_units.cc.o.d"
  "fig05b_more_units"
  "fig05b_more_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05b_more_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
