file(REMOVE_RECURSE
  "CMakeFiles/ext_strided.dir/bench/ext_strided.cc.o"
  "CMakeFiles/ext_strided.dir/bench/ext_strided.cc.o.d"
  "ext_strided"
  "ext_strided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_strided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
