# Empty dependencies file for ext_strided.
# This may be replaced when dependencies are built.
