file(REMOVE_RECURSE
  "CMakeFiles/test_simd_crypto.dir/tests/test_simd_crypto.cc.o"
  "CMakeFiles/test_simd_crypto.dir/tests/test_simd_crypto.cc.o.d"
  "test_simd_crypto"
  "test_simd_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simd_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
