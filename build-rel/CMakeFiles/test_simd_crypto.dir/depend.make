# Empty dependencies file for test_simd_crypto.
# This may be replaced when dependencies are built.
