file(REMOVE_RECURSE
  "CMakeFiles/test_simd_permute.dir/tests/test_simd_permute.cc.o"
  "CMakeFiles/test_simd_permute.dir/tests/test_simd_permute.cc.o.d"
  "test_simd_permute"
  "test_simd_permute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simd_permute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
