# Empty dependencies file for test_simd_permute.
# This may be replaced when dependencies are built.
