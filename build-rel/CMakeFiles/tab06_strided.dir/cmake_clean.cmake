file(REMOVE_RECURSE
  "CMakeFiles/tab06_strided.dir/bench/tab06_strided.cc.o"
  "CMakeFiles/tab06_strided.dir/bench/tab06_strided.cc.o.d"
  "tab06_strided"
  "tab06_strided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_strided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
