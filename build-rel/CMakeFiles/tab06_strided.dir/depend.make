# Empty dependencies file for tab06_strided.
# This may be replaced when dependencies are built.
