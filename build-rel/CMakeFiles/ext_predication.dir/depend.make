# Empty dependencies file for ext_predication.
# This may be replaced when dependencies are built.
