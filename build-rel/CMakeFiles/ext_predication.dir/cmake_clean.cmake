file(REMOVE_RECURSE
  "CMakeFiles/ext_predication.dir/bench/ext_predication.cc.o"
  "CMakeFiles/ext_predication.dir/bench/ext_predication.cc.o.d"
  "ext_predication"
  "ext_predication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_predication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
