# Empty dependencies file for tab03_baseline_config.
# This may be replaced when dependencies are built.
