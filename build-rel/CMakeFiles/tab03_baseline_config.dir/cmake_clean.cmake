file(REMOVE_RECURSE
  "CMakeFiles/tab03_baseline_config.dir/bench/tab03_baseline_config.cc.o"
  "CMakeFiles/tab03_baseline_config.dir/bench/tab03_baseline_config.cc.o.d"
  "tab03_baseline_config"
  "tab03_baseline_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_baseline_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
