file(REMOVE_RECURSE
  "CMakeFiles/test_trace_serialize.dir/tests/test_trace_serialize.cc.o"
  "CMakeFiles/test_trace_serialize.dir/tests/test_trace_serialize.cc.o.d"
  "test_trace_serialize"
  "test_trace_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
