# Empty dependencies file for ext_firstfault.
# This may be replaced when dependencies are built.
