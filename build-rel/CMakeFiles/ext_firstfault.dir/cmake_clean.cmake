file(REMOVE_RECURSE
  "CMakeFiles/ext_firstfault.dir/bench/ext_firstfault.cc.o"
  "CMakeFiles/ext_firstfault.dir/bench/ext_firstfault.cc.o.d"
  "ext_firstfault"
  "ext_firstfault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_firstfault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
