# Empty dependencies file for example_image_pipeline.
# This may be replaced when dependencies are built.
