file(REMOVE_RECURSE
  "CMakeFiles/example_image_pipeline.dir/examples/image_pipeline.cc.o"
  "CMakeFiles/example_image_pipeline.dir/examples/image_pipeline.cc.o.d"
  "example_image_pipeline"
  "example_image_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_image_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
