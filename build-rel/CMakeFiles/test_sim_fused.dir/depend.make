# Empty dependencies file for test_sim_fused.
# This may be replaced when dependencies are built.
