file(REMOVE_RECURSE
  "CMakeFiles/test_sim_fused.dir/tests/test_sim_fused.cc.o"
  "CMakeFiles/test_sim_fused.dir/tests/test_sim_fused.cc.o.d"
  "test_sim_fused"
  "test_sim_fused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_fused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
