file(REMOVE_RECURSE
  "CMakeFiles/test_sweep_grid.dir/tests/test_sweep_grid.cc.o"
  "CMakeFiles/test_sweep_grid.dir/tests/test_sweep_grid.cc.o.d"
  "test_sweep_grid"
  "test_sweep_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sweep_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
