# Empty dependencies file for test_sweep_grid.
# This may be replaced when dependencies are built.
