file(REMOVE_RECURSE
  "CMakeFiles/test_sim_multiaddr.dir/tests/test_sim_multiaddr.cc.o"
  "CMakeFiles/test_sim_multiaddr.dir/tests/test_sim_multiaddr.cc.o.d"
  "test_sim_multiaddr"
  "test_sim_multiaddr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_multiaddr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
