# Empty dependencies file for test_sim_multiaddr.
# This may be replaced when dependencies are built.
