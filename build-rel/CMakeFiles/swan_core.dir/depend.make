# Empty dependencies file for swan_core.
# This may be replaced when dependencies are built.
