file(REMOVE_RECURSE
  "libswan_core.a"
)
