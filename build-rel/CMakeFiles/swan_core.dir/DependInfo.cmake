
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/experiment.cc" "CMakeFiles/swan_core.dir/src/api/experiment.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/api/experiment.cc.o.d"
  "/root/repo/src/api/results.cc" "CMakeFiles/swan_core.dir/src/api/results.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/api/results.cc.o.d"
  "/root/repo/src/api/session.cc" "CMakeFiles/swan_core.dir/src/api/session.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/api/session.cc.o.d"
  "/root/repo/src/autovec/legality.cc" "CMakeFiles/swan_core.dir/src/autovec/legality.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/autovec/legality.cc.o.d"
  "/root/repo/src/core/kernel.cc" "CMakeFiles/swan_core.dir/src/core/kernel.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/core/kernel.cc.o.d"
  "/root/repo/src/core/metrics.cc" "CMakeFiles/swan_core.dir/src/core/metrics.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/core/metrics.cc.o.d"
  "/root/repo/src/core/options.cc" "CMakeFiles/swan_core.dir/src/core/options.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/core/options.cc.o.d"
  "/root/repo/src/core/registry.cc" "CMakeFiles/swan_core.dir/src/core/registry.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/core/registry.cc.o.d"
  "/root/repo/src/core/report.cc" "CMakeFiles/swan_core.dir/src/core/report.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/core/report.cc.o.d"
  "/root/repo/src/core/runner.cc" "CMakeFiles/swan_core.dir/src/core/runner.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/core/runner.cc.o.d"
  "/root/repo/src/gpu/offload_model.cc" "CMakeFiles/swan_core.dir/src/gpu/offload_model.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/gpu/offload_model.cc.o.d"
  "/root/repo/src/sim/cache.cc" "CMakeFiles/swan_core.dir/src/sim/cache.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/sim/cache.cc.o.d"
  "/root/repo/src/sim/configs.cc" "CMakeFiles/swan_core.dir/src/sim/configs.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/sim/configs.cc.o.d"
  "/root/repo/src/sim/core_model.cc" "CMakeFiles/swan_core.dir/src/sim/core_model.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/sim/core_model.cc.o.d"
  "/root/repo/src/sim/dram.cc" "CMakeFiles/swan_core.dir/src/sim/dram.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/sim/dram.cc.o.d"
  "/root/repo/src/sim/power.cc" "CMakeFiles/swan_core.dir/src/sim/power.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/sim/power.cc.o.d"
  "/root/repo/src/simd/crypto_tables.cc" "CMakeFiles/swan_core.dir/src/simd/crypto_tables.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/simd/crypto_tables.cc.o.d"
  "/root/repo/src/simd/emit.cc" "CMakeFiles/swan_core.dir/src/simd/emit.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/simd/emit.cc.o.d"
  "/root/repo/src/simd/half.cc" "CMakeFiles/swan_core.dir/src/simd/half.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/simd/half.cc.o.d"
  "/root/repo/src/sweep/cache.cc" "CMakeFiles/swan_core.dir/src/sweep/cache.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/sweep/cache.cc.o.d"
  "/root/repo/src/sweep/emit.cc" "CMakeFiles/swan_core.dir/src/sweep/emit.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/sweep/emit.cc.o.d"
  "/root/repo/src/sweep/grid.cc" "CMakeFiles/swan_core.dir/src/sweep/grid.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/sweep/grid.cc.o.d"
  "/root/repo/src/sweep/scheduler.cc" "CMakeFiles/swan_core.dir/src/sweep/scheduler.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/sweep/scheduler.cc.o.d"
  "/root/repo/src/tools/cli.cc" "CMakeFiles/swan_core.dir/src/tools/cli.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/tools/cli.cc.o.d"
  "/root/repo/src/trace/instr.cc" "CMakeFiles/swan_core.dir/src/trace/instr.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/trace/instr.cc.o.d"
  "/root/repo/src/trace/packed.cc" "CMakeFiles/swan_core.dir/src/trace/packed.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/trace/packed.cc.o.d"
  "/root/repo/src/trace/recorder.cc" "CMakeFiles/swan_core.dir/src/trace/recorder.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/trace/recorder.cc.o.d"
  "/root/repo/src/trace/serialize.cc" "CMakeFiles/swan_core.dir/src/trace/serialize.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/trace/serialize.cc.o.d"
  "/root/repo/src/trace/stats.cc" "CMakeFiles/swan_core.dir/src/trace/stats.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/trace/stats.cc.o.d"
  "/root/repo/src/workloads/boringssl/boringssl.cc" "CMakeFiles/swan_core.dir/src/workloads/boringssl/boringssl.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/workloads/boringssl/boringssl.cc.o.d"
  "/root/repo/src/workloads/ext/complex_study.cc" "CMakeFiles/swan_core.dir/src/workloads/ext/complex_study.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/workloads/ext/complex_study.cc.o.d"
  "/root/repo/src/workloads/ext/firstfault_study.cc" "CMakeFiles/swan_core.dir/src/workloads/ext/firstfault_study.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/workloads/ext/firstfault_study.cc.o.d"
  "/root/repo/src/workloads/ext/lut_study.cc" "CMakeFiles/swan_core.dir/src/workloads/ext/lut_study.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/workloads/ext/lut_study.cc.o.d"
  "/root/repo/src/workloads/ext/predication_study.cc" "CMakeFiles/swan_core.dir/src/workloads/ext/predication_study.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/workloads/ext/predication_study.cc.o.d"
  "/root/repo/src/workloads/ext/stride_study.cc" "CMakeFiles/swan_core.dir/src/workloads/ext/stride_study.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/workloads/ext/stride_study.cc.o.d"
  "/root/repo/src/workloads/ext/wasm_study.cc" "CMakeFiles/swan_core.dir/src/workloads/ext/wasm_study.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/workloads/ext/wasm_study.cc.o.d"
  "/root/repo/src/workloads/libjpeg/libjpeg.cc" "CMakeFiles/swan_core.dir/src/workloads/libjpeg/libjpeg.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/workloads/libjpeg/libjpeg.cc.o.d"
  "/root/repo/src/workloads/libopus/libopus.cc" "CMakeFiles/swan_core.dir/src/workloads/libopus/libopus.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/workloads/libopus/libopus.cc.o.d"
  "/root/repo/src/workloads/libpng/libpng.cc" "CMakeFiles/swan_core.dir/src/workloads/libpng/libpng.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/workloads/libpng/libpng.cc.o.d"
  "/root/repo/src/workloads/libvpx/libvpx.cc" "CMakeFiles/swan_core.dir/src/workloads/libvpx/libvpx.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/workloads/libvpx/libvpx.cc.o.d"
  "/root/repo/src/workloads/libwebp/libwebp.cc" "CMakeFiles/swan_core.dir/src/workloads/libwebp/libwebp.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/workloads/libwebp/libwebp.cc.o.d"
  "/root/repo/src/workloads/optroutines/optroutines.cc" "CMakeFiles/swan_core.dir/src/workloads/optroutines/optroutines.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/workloads/optroutines/optroutines.cc.o.d"
  "/root/repo/src/workloads/pffft/pffft.cc" "CMakeFiles/swan_core.dir/src/workloads/pffft/pffft.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/workloads/pffft/pffft.cc.o.d"
  "/root/repo/src/workloads/skia/skia.cc" "CMakeFiles/swan_core.dir/src/workloads/skia/skia.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/workloads/skia/skia.cc.o.d"
  "/root/repo/src/workloads/webaudio/webaudio.cc" "CMakeFiles/swan_core.dir/src/workloads/webaudio/webaudio.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/workloads/webaudio/webaudio.cc.o.d"
  "/root/repo/src/workloads/xnnpack/xnnpack.cc" "CMakeFiles/swan_core.dir/src/workloads/xnnpack/xnnpack.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/workloads/xnnpack/xnnpack.cc.o.d"
  "/root/repo/src/workloads/zlib/zlib.cc" "CMakeFiles/swan_core.dir/src/workloads/zlib/zlib.cc.o" "gcc" "CMakeFiles/swan_core.dir/src/workloads/zlib/zlib.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
