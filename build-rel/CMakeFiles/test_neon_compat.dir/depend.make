# Empty dependencies file for test_neon_compat.
# This may be replaced when dependencies are built.
