file(REMOVE_RECURSE
  "CMakeFiles/test_neon_compat.dir/tests/test_neon_compat.cc.o"
  "CMakeFiles/test_neon_compat.dir/tests/test_neon_compat.cc.o.d"
  "test_neon_compat"
  "test_neon_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neon_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
