file(REMOVE_RECURSE
  "CMakeFiles/tab02_libraries.dir/bench/tab02_libraries.cc.o"
  "CMakeFiles/tab02_libraries.dir/bench/tab02_libraries.cc.o.d"
  "tab02_libraries"
  "tab02_libraries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_libraries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
