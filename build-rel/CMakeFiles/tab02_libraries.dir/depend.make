# Empty dependencies file for tab02_libraries.
# This may be replaced when dependencies are built.
