file(REMOVE_RECURSE
  "CMakeFiles/fig06_gpu_crossover.dir/bench/fig06_gpu_crossover.cc.o"
  "CMakeFiles/fig06_gpu_crossover.dir/bench/fig06_gpu_crossover.cc.o.d"
  "fig06_gpu_crossover"
  "fig06_gpu_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_gpu_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
