# Empty dependencies file for fig06_gpu_crossover.
# This may be replaced when dependencies are built.
