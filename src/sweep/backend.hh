/**
 * @file
 * The execution-backend seam of the sweep engine. The scheduler
 * (sweep/scheduler.cc) owns everything that must stay backend-agnostic
 * — result-cache lookups, capture-identity grouping, the serial
 * capture phase under the trace-memo byte budget — and hands the
 * finished work units (one unit per trace group: a packed trace plus
 * every core configuration that replays it) to an ExecutionBackend,
 * which only decides *where* the simulation phase runs:
 *
 *   runSweep: lookups -> grouping -> captures -> backend.run(job)
 *                                                |
 *                  InlineBackend    calling thread, serial (tests/debug)
 *                  ThreadedBackend  work-stealing thread pool (default)
 *                  ShardedBackend   N forked worker processes claiming
 *                                   units in the on-disk cache tier
 *
 * Work units are pure functions of (packed trace, core configs): a
 * unit's results do not depend on which thread, process or machine
 * executes it, and the on-disk result format round-trips doubles as
 * hexfloat (bit-exact). That is what makes the seam sound: emitter
 * output is byte-identical across backends and across any
 * `shards x jobs` combination, by construction.
 *
 * The backends are instantiated by the scheduler strictly AFTER the
 * last capture (on the stack, per run). Nothing in this header may be
 * allocated or resolved before phase 1 ends: captured traces carry
 * real buffer addresses and the cache models are address-sensitive,
 * so pre-capture heap traffic that varies with the backend choice
 * would break byte-identity between backends (see the determinism
 * notes in sweep/scheduler.cc).
 *
 * Claim protocol (ShardedBackend). Every unit has a content-stable
 * 64-bit token (hashed from its points' cache keys). A shard claims a
 * unit by atomically creating `c<run>-<token>.claim` in the shared
 * directory (open with O_CREAT|O_EXCL — the lockfile analogue of the
 * cache tier's write-then-rename stores) and writing its pid and
 * shard index into it; losing the race means another shard owns the
 * unit. With claim batching (`batch` > 1) consecutive units form one
 * claim whose token is the FNV fold of the member unit tokens — one
 * lockfile (and one filesystem round-trip) covers the whole batch,
 * and the winning shard executes every member unit; batch == 1 keeps
 * the raw unit token, so default claim filenames are unchanged.
 * Finished units
 * land in the shared directory as ordinary checksummed `.swr` cache
 * entries, which the parent merges back deterministically after every
 * child has exited. Units that were claimed but never stored (a
 * crashed or killed shard) are re-executed by the parent, which still
 * holds every captured trace — recovery output is bit-identical to
 * what the dead shard would have produced. Claim files whose pid no
 * longer exists are removed at the start of the next sharded run
 * (stale-claim cleanup), so a crash cannot poison the directory.
 */

#ifndef SWAN_SWEEP_BACKEND_HH
#define SWAN_SWEEP_BACKEND_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace swan::sweep
{

class ResultCache;

/** Which execution backend runs a sweep's simulation phase. */
enum class Backend
{
    /** Work-stealing thread pool in this process (the default). */
    Threaded,
    /** Serial on the calling thread: no pool, no threads — the
     *  debuggable backend. Note that simulation then allocates on the
     *  capture thread, so *subsequent* fresh captures in the same
     *  process may shift by the documented ~0.1% cache-layout
     *  tolerance (sweep/cache.hh); within one sweep, results are
     *  byte-identical to every other backend. */
    Inline,
    /** N forked worker processes claiming units from the on-disk
     *  cache tier; requires POSIX, degrades to Threaded elsewhere. */
    Sharded,
};

/** Parse "threaded" / "inline" / "sharded"; false on anything else. */
bool backendForName(const std::string &name, Backend *out);

/** Human-readable backend name, for diagnostics. */
std::string_view name(Backend backend);

/**
 * One sweep's work, as a backend sees it: `units` opaque work units
 * executed through C-style hooks (function pointer + context, so a
 * backend never depends on the scheduler's internals and the hot
 * structures stay trivially shareable across fork()).
 */
struct BackendJob
{
    /** Number of work units (trace groups). */
    size_t units = 0;
    /** Worker threads per executing process (already resolved and
     *  clamped by the scheduler; >= 1). */
    int jobs = 1;
    /** Opaque scheduler context handed back to every hook. */
    void *arg = nullptr;

    /**
     * Simulate unit @p u, record its results and store them through
     * the scheduler's caches. Thread-safe and noexcept (failures are
     * recorded scheduler-side); in a sharded run it executes inside
     * the claiming child process, or inside the parent on recovery.
     */
    void (*execute)(void *arg, size_t u) = nullptr;

    /**
     * Content-stable identity of unit @p u for cross-process claims:
     * equal between any two processes executing the same grid, and
     * distinct between different grids sharing one cache directory.
     * Null for backends that never leave the process.
     */
    uint64_t (*token)(void *arg, size_t u) = nullptr;

    /**
     * Parent-side merge: fill unit @p u's results from the shared
     * disk tier. @p shard is the claiming shard parsed from the
     * unit's claim file (-1 when unknown), threaded through so row
     * streaming and telemetry can attribute the unit. @return false
     * when any of the unit's results is missing (the unit's shard
     * died before storing) — the backend then re-executes the unit
     * locally. Null for in-process backends.
     */
    bool (*serve)(void *arg, size_t u, int shard) = nullptr;

    /**
     * Disk-backed cache shared by the shard processes: claims and
     * child stats live next to its `.swr`/`.swtp` entries. Null for
     * in-process backends. The scheduler guarantees a non-empty
     * diskDir() when a sharded run is requested (substituting a
     * private temp directory when the session cache is memory-only).
     */
    ResultCache *shareCache = nullptr;
};

/**
 * Executes a BackendJob's units. Implementations are stateless apart
 * from their knobs and are constructed on the stack per run; run()
 * blocks until every unit has executed (or been merged) and may be
 * called once per instance.
 */
class ExecutionBackend
{
  public:
    virtual ~ExecutionBackend() = default;

    virtual void run(const BackendJob &job) = 0;
};

/** Serial execution on the calling thread. */
class InlineBackend final : public ExecutionBackend
{
  public:
    void run(const BackendJob &job) override;
};

/**
 * The work-stealing thread pool, extracted unchanged from the
 * pre-seam scheduler: per-worker mutex-guarded rings dealt round-robin
 * (adjacent groups of one kernel tend to cost the same), workers pop
 * their own front and steal from the back of the fullest victim. The
 * pool's jobs-sized state lives in one anonymous mmap region and its
 * threads are raw pthreads spawned only inside run() — i.e. strictly
 * after the last capture — with serialized exits, keeping the pool
 * invisible to malloc; see the WorkerPool notes in backend_threaded.cc
 * for why that is load-bearing for capture determinism.
 */
class ThreadedBackend final : public ExecutionBackend
{
  public:
    void run(const BackendJob &job) override;
};

/**
 * Multi-process sharded execution: fork `shards` worker processes,
 * each running a ThreadedBackend over the units it wins via atomic
 * lockfile claims in the shared cache directory (see the claim
 * protocol above), then deterministically merge the children's `.swr`
 * entries back into the parent's result vector in unit order,
 * re-executing any unit a dead shard left behind. Children exit via
 * _exit(): they share the parent's stdio buffers and must never flush
 * them. Cache statistics of the children are aggregated back into the
 * shared cache so `Results::cacheStats()` reflects the whole fleet.
 *
 * Deadline watchdog: with a nonzero timeout the parent polls the fleet
 * instead of blocking in waitpid, fingerprinting the share directory
 * (claims, stores, stats — any shard progress changes it) each tick.
 * If the fingerprint sits still past the deadline the remaining
 * children are SIGKILLed; a killed shard is indistinguishable from a
 * crashed one, so its claimed units flow through the ordinary
 * bit-identical recovery path and the sweep still completes.
 */
class ShardedBackend final : public ExecutionBackend
{
  public:
    /** @param shards worker processes (clamped to [1, kMaxShards]).
     *  @param timeout_ms watchdog deadline: kill shards that make no
     *         observable progress for this long; 0 = wait forever.
     *  @param batch units per claim (clamped to >= 1): consecutive
     *         units share one lockfile whose token folds the member
     *         unit tokens, amortizing the claim round-trip when units
     *         are small relative to filesystem latency. 1 (default)
     *         claims per unit under the unit's own token, preserving
     *         claim filenames. Results are byte-identical for any
     *         value (see the claim protocol above). */
    explicit ShardedBackend(int shards, uint64_t timeout_ms = 0,
                            int batch = 1);

    void run(const BackendJob &job) override;

    static constexpr int kMaxShards = 256;

  private:
    int shards_;
    uint64_t timeoutMs_;
    int batch_;
};

} // namespace swan::sweep

#endif // SWAN_SWEEP_BACKEND_HH
