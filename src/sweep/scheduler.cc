#include "sweep/scheduler.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <tuple>

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <fcntl.h>
#include <pthread.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define SWAN_POOL_HAVE_PTHREAD 1
#endif

#include "core/registry.hh"
#include "obs/telemetry.hh"
#include "trace/packed.hh"
#include "trace/stats.hh"

namespace swan::sweep
{

namespace
{

/**
 * One trace group: every pending point that shares a capture identity
 * (kernel, impl, width, working set). The group's packed trace streams
 * through all of its core configurations in a single fused traversal
 * (sim::simulateTraceMany -> sim::replay: one varint decode per
 * instruction, every config's model stepped from the same decoded
 * registers), so a Figure-5(b)-style six-config sweep point costs one
 * decode pass, not six — and zero Instr staging round-trips.
 *
 * Determinism notes (this is the TraceMemo of old, restructured):
 *
 *  - Captures stay serial on the calling thread in point-index order,
 *    and finish before any worker thread exists. Captured traces
 *    carry real buffer addresses and the cache models are
 *    address-sensitive, so the heap AND address-space evolution up to
 *    the last capture must be identical whatever `--jobs` or the memo
 *    budget is.
 *  - Packed-trace storage is mmap-backed (trace::PackedTrace), so
 *    evicting a trace mid-phase-1 under SWAN_TRACE_MEMO_BYTES is
 *    invisible to malloc — the buffer addresses captured by later
 *    points (and later sweeps in the same process) cannot shift.
 *  - Eviction spills the packed bytes to disk (oldest first — for
 *    single-use traces that is LRU order) and the executing worker
 *    reloads them; a reloaded trace is bit-identical to the evicted
 *    one (checksummed), so the budget cannot change any result by
 *    construction.
 *  - Workers never run on the calling thread: simulation allocates
 *    from worker-thread arenas, keeping the capture thread's malloc
 *    state a pure function of the capture sequence across the
 *    process's sweeps.
 */
struct TraceGroup
{
    std::shared_ptr<trace::PackedTrace> trace;
    trace::MixStats mix;                //!< shared by the group's points
    std::vector<size_t> points;         //!< point indices, ascending
    std::vector<sim::CoreConfig> configs; //!< parallel to points
    bool spilled = false; //!< storage evicted; reload from spill file
    bool captured = false; //!< freshly captured (not served warm)
};

/** Capture identity: which points may share one trace. */
using GroupKey = std::tuple<std::string, int, int, uint64_t>;

GroupKey
groupKeyFor(const SweepPoint &p)
{
    return {p.spec->info.qualifiedName(), int(p.impl), p.vecBits,
            fingerprint(p.options)};
}

/** Process-unique token for the spill directory name. */
uint64_t
processToken()
{
#ifdef SWAN_POOL_HAVE_PTHREAD
    return uint64_t(::getpid());
#else
    static const int anchor = 0;
    return uint64_t(reinterpret_cast<uintptr_t>(&anchor));
#endif
}

} // namespace

uint64_t
SchedulerConfig::envTraceMemoBytes()
{
    uint64_t n = 0;
    parseByteCount(std::getenv("SWAN_TRACE_MEMO_BYTES"), &n);
    return n;
}

std::string
describe(const RowOrigin &origin)
{
    switch (origin.kind) {
      case RowOrigin::Kind::Cache:
        return "cache";
      case RowOrigin::Kind::Computed:
        return "computed";
      case RowOrigin::Kind::Shard:
        return origin.shard < 0 ? "shard ?"
                                : "shard " + std::to_string(origin.shard);
    }
    return "unknown";
}

std::vector<SweepResult>
runSweep(const std::vector<SweepPoint> &points, const SchedulerConfig &cfg)
{
    // Workers read KernelSpec references concurrently; freeze the
    // registry so the backing vector can never reallocate under them.
    core::Registry::instance().closeRegistration();

    std::vector<SweepResult> results(points.size());
    if (points.empty())
        return results;

    // The whole-sweep telemetry envelope (malloc-free guard; a single
    // relaxed load when no collector is active — see obs/telemetry.hh).
    obs::Span sweepSpan(obs::Phase::Sweep, points.size());

    int jobs = cfg.jobs;
    if (jobs <= 0)
        jobs = int(std::thread::hardware_concurrency());
    if (jobs < 1)
        jobs = 1;

    // Phase 1a (serial, point-index order): result-cache lookups.
    std::vector<size_t> pending;
    {
        obs::Span lookupSpan(obs::Phase::CacheLookup, points.size());
        for (size_t i = 0; i < points.size(); ++i) {
            const SweepPoint &p = points[i];
            SweepResult &r = results[i];
            r.point = p;
            if (cfg.cache &&
                cfg.cache->lookup(keyFor(p, cfg.warmupPasses), &r.run)) {
                r.cacheHit = true;
                continue;
            }
            pending.push_back(i);
        }
    }
    if (pending.empty()) {
        // Fully warm sweep: every row is a cache hit, streamed in
        // point order right here (no captures happen, so the callback
        // may allocate freely).
        if (cfg.onRow) {
            RowOrigin o;
            o.kind = RowOrigin::Kind::Cache;
            o.total = results.size();
            for (size_t i = 0; i < results.size(); ++i) {
                o.done = i + 1;
                cfg.onRow(results[i], o);
            }
        }
        return results;
    }

    // Phase 1b: group the pending points by capture identity, in
    // first-occurrence order (which is point-index order).
    std::vector<TraceGroup> groups;
    {
        std::map<GroupKey, size_t> groupOf;
        for (size_t idx : pending) {
            const SweepPoint &p = points[idx];
            auto [it, inserted] =
                groupOf.emplace(groupKeyFor(p), groups.size());
            if (inserted)
                groups.emplace_back();
            TraceGroup &g = groups[it->second];
            g.points.push_back(idx);
            g.configs.push_back(p.config);
        }
    }
    jobs = int(std::min<size_t>(size_t(jobs), groups.size()));

    std::mutex errMu;
    std::string firstError;
    const auto recordError = [&](const char *what) {
        std::lock_guard<std::mutex> lock(errMu);
        if (firstError.empty())
            firstError = what;
    };

    // Row streaming (cfg.onRow): completion states per point, emitted
    // strictly in point-index order behind an advancing frontier. The
    // state vector stays EMPTY (disengaged, no allocation) until after
    // the last capture — workers and the parent merge then mark points
    // done as units land. Encoding: 0 pending, 1 cache hit, 2 computed
    // in-process, 3+k merged from shard k-1 (3 = unknown shard).
    std::mutex rowMu;
    std::vector<uint16_t> rowState;
    size_t rowNext = 0;
    // Emit every ready row at the frontier; call with rowMu held.
    const auto rowFlush = [&]() {
        while (rowNext < rowState.size() && rowState[rowNext]) {
            const uint16_t s = rowState[rowNext];
            RowOrigin o;
            o.total = rowState.size();
            o.done = rowNext + 1;
            if (s == 1) {
                o.kind = RowOrigin::Kind::Cache;
            } else if (s == 2) {
                o.kind = RowOrigin::Kind::Computed;
            } else {
                o.kind = RowOrigin::Kind::Shard;
                o.shard = int(s) - 4;
            }
            cfg.onRow(results[rowNext], o);
            ++rowNext;
        }
    };
    const auto rowComplete = [&](size_t idx, uint16_t st) {
        // Shard children skip: their rows surface in the parent merge.
        if (rowState.empty() || obs::Telemetry::shard() >= 0)
            return;
        std::lock_guard<std::mutex> lock(rowMu);
        rowState[idx] = st;
        rowFlush();
    };

    // Private spill directory for memo-budget evictions, independent
    // of the result cache so eviction works with or without a cache
    // dir. The name is resolved HERE, before any capture, into a
    // fixed stack buffer, and the spill I/O itself uses raw
    // syscalls + stack-built paths: eviction happens between
    // captures, where even a balanced malloc/free pair can split or
    // coalesce allocator bins and shift the addresses later captures
    // record — the budget must leave the capture thread's allocator
    // bit-untouched so results cannot depend on it.
    char spillDir[3072];
    spillDir[0] = '\0';
    bool spillDirMade = false;
    {
        std::error_code ec;
        const auto tmp = std::filesystem::temp_directory_path(ec);
        if (!ec) {
            const int w = std::snprintf(
                spillDir, sizeof spillDir, "%s/swan-memo-%llu",
                tmp.string().c_str(),
                static_cast<unsigned long long>(processToken()));
            if (w <= 0 || size_t(w) >= sizeof spillDir)
                spillDir[0] = '\0';
        }
    }
    const auto spillPathFor = [&](size_t gi, char *buf, size_t buf_len) {
        const int w = std::snprintf(buf, buf_len, "%s/g%zu.swtp",
                                    spillDir, gi);
        return w > 0 && size_t(w) < buf_len;
    };

    // Where executed results are stored. Normally the configured
    // cache; a sharded run re-points this at a cache that owns a disk
    // tier (the session's, or a private per-run directory) so shard
    // children can publish results the parent merges — resolved after
    // phase 1, see the backend block below.
    ResultCache *storeCache = cfg.cache;

    // Phase 2 worker: replay one group's trace through all of its
    // configurations in a single pass; results land by point index
    // power-complete (the power model is fused into the replay's
    // finish path — see sim::CoreModel::finish). Evicted traces are
    // reloaded from their spill file (bit-identical by checksum, so
    // eviction cannot change any result).
    const auto executeGroup = [&](size_t gi) {
        try {
            TraceGroup &g = groups[gi];
            trace::PackedTrace reloaded;
            const trace::PackedTrace *t = g.trace.get();
            if (g.spilled) {
                // Worker-side reload; worker-arena allocations are
                // free to happen here (captures are long done).
                obs::Span reload(obs::Phase::Spill);
                char path[3328];
                std::string blob;
                std::error_code ec;
                if (spillPathFor(gi, path, sizeof path)) {
                    const auto size = std::filesystem::file_size(path, ec);
                    if (!ec) {
                        blob.resize(size);
                        std::ifstream in(path, std::ios::binary);
                        if (!in.read(blob.data(), std::streamsize(size)))
                            blob.clear();
                    }
                }
                reload.addArg(blob.size());
                if (blob.empty() ||
                    !trace::PackedTrace::parsePayload(
                        reinterpret_cast<const uint8_t *>(blob.data()),
                        blob.size(), &reloaded)) {
                    recordError("evicted trace spill lost or corrupt");
                    return;
                }
                t = &reloaded;
            }
            // Partition the group's points by fault scenario: a fused
            // traversal perturbs every model it steps, so points with
            // different faults (or none) replay in separate traversals
            // over the SAME shared trace — capture identity is
            // fault-blind (faults perturb replay, never capture). A
            // clean group takes the historic single call with the
            // historic allocation sequence — the partition scratch
            // below must not exist on that path, because group replay
            // interleaves with later captures on the inline backend
            // and extra allocations would shift the buffer addresses
            // those captures record. Partition order is
            // first-occurrence point order, so results stay a pure
            // function of the grid.
            std::vector<sim::SimResult> sims;
            bool anyFault = false;
            for (size_t j : g.points)
                anyFault = anyFault || points[j].faultId != 0;
            if (!anyFault) {
                sims = sim::simulateTraceMany(*t, g.configs,
                                              cfg.warmupPasses);
            } else {
                sims.resize(g.points.size());
                std::vector<char> simDone(g.points.size(), 0);
                for (size_t j = 0; j < g.points.size(); ++j) {
                    if (simDone[j])
                        continue;
                    const sim::FaultSpec &fault =
                        points[g.points[j]].fault();
                    const uint64_t fp = fault.fingerprint();
                    std::vector<size_t> part;
                    std::vector<sim::CoreConfig> partCfgs;
                    for (size_t k = j; k < g.points.size(); ++k) {
                        if (simDone[k] ||
                            points[g.points[k]].fault().fingerprint() !=
                                fp)
                            continue;
                        simDone[k] = 1;
                        part.push_back(k);
                        partCfgs.push_back(g.configs[k]);
                    }
                    auto partSims = sim::simulateTraceMany(
                        *t, partCfgs, fault, cfg.warmupPasses);
                    for (size_t k = 0; k < part.size(); ++k)
                        sims[part[k]] = std::move(partSims[k]);
                }
            }
            {
                obs::Span publish(obs::Phase::Publish, g.points.size());
                for (size_t j = 0; j < g.points.size(); ++j) {
                    const size_t idx = g.points[j];
                    const SweepPoint &p = points[idx];
                    SweepResult &r = results[idx];
                    r.run = core::KernelRun{};
                    r.run.mix = g.mix;
                    r.run.sim = std::move(sims[j]);
                    const CacheKey key = keyFor(p, cfg.warmupPasses);
                    if (storeCache)
                        storeCache->store(key, r.run);
                    // A private shard-transport cache substitutes for
                    // a memory-only session cache; keep the session
                    // tier warm too (dead weight in a shard child,
                    // which takes its copy of the session map to
                    // _exit, but exactly what a threaded run would
                    // have stored in the parent and in parent-side
                    // recovery).
                    if (cfg.cache && cfg.cache != storeCache)
                        cfg.cache->store(key, r.run);
                }
            }
            for (size_t idx : g.points)
                rowComplete(idx, 2);
        } catch (const std::exception &e) {
            recordError(e.what());
        }
    };

    // Acquire one group's packed trace: the on-disk trace tier when
    // warm, a fresh capture otherwise. Serial, capture-thread only.
    // The capture and pack scratch buffers persist across all groups
    // (freed once, here, when the sweep ends): steady-state captures
    // then leave the capture thread's malloc state untouched, so the
    // workload buffer addresses later captures record — which the
    // address-sensitive cache models feel — cannot depend on how many
    // traces came before or on the memo budget.
    std::vector<trace::Instr> captureBuf;
    trace::PackedTrace::Scratch packScratch;
    const auto acquireTrace = [&](TraceGroup &g) {
        const SweepPoint &p = points[g.points.front()];
        {
            // Packed-trace tier probe (and, on a hit, the disk read);
            // arg = bytes served. Span guards are malloc-free, so
            // bracketing the capture window is safe by construction.
            obs::Span probe(obs::Phase::CacheLookup);
            trace::PackedTrace t;
            if (cfg.cache &&
                cfg.cache->lookupTrace(traceKeyFor(p), &t, &g.mix)) {
                probe.addArg(t.byteSize());
                g.trace =
                    std::make_shared<trace::PackedTrace>(std::move(t));
                return;
            }
        }
        auto w = p.spec->make(p.options);
        {
            obs::Span capture(obs::Phase::Capture);
            core::Runner::captureInto(*w, p.impl, p.vecBits,
                                      &captureBuf);
            capture.addArg(captureBuf.size());
        }
        g.mix.addTrace(captureBuf);
        {
            obs::Span pack(obs::Phase::Pack);
            g.trace = std::make_shared<trace::PackedTrace>(
                trace::PackedTrace::pack(captureBuf, &packScratch));
            pack.addArg(g.trace->byteSize());
        }
        if (cfg.cache)
            cfg.cache->storeTrace(traceKeyFor(p), *g.trace, g.mix);
        g.captured = true;
    };

    // Spill one group's packed bytes and release the mmap storage.
    // Runs between captures: syscalls only, zero heap traffic.
    const auto spillGroup = [&](size_t gi) -> bool {
        TraceGroup &g = groups[gi];
        if (!spillDir[0])
            return false;
        obs::Span spill(obs::Phase::Spill, g.trace->byteSize());
#ifdef SWAN_POOL_HAVE_PTHREAD
        if (!spillDirMade) {
            if (::mkdir(spillDir, 0700) != 0 && errno != EEXIST)
                return false;
            spillDirMade = true;
        }
        char path[3328];
        if (!spillPathFor(gi, path, sizeof path))
            return false;
        const int fd =
            ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0600);
        if (fd < 0)
            return false;
        bool ok = g.trace->writePayload(fd);
        ok = (::close(fd) == 0) && ok;
#else
        if (!spillDirMade) {
            std::error_code ec;
            std::filesystem::create_directories(spillDir, ec);
            if (ec)
                return false;
            spillDirMade = true;
        }
        char path[3328];
        if (!spillPathFor(gi, path, sizeof path))
            return false;
        std::FILE *f = std::fopen(path, "wb");
        if (!f)
            return false;
        bool ok = g.trace->writePayload(f);
        ok = (std::fclose(f) == 0) && ok;
#endif
        if (!ok)
            return false;
        g.trace->releaseStorage();
        g.spilled = true;
        return true;
    };

    // Phase 1c: capture every group under the memo byte budget —
    // when live packed bytes exceed it, the oldest live traces spill
    // to disk (LRU for these single-use traces) until the budget
    // holds again. Peak trace memory is ~budget + one trace. A spill
    // failure (disk full) keeps the trace in memory: results stay
    // correct, only the cap degrades.
    // T0 pinned-trace serving is enabled only when this sweep will run
    // zero captures: a RAM hit skips the disk read's allocations, and
    // whether a trace is pinned depends on the byte budget — if any
    // capture followed a RAM hit, the budget would leak into the
    // capture-time heap layout. Probe the durable tiers for every
    // pending group first (heap-silent stat calls, cache.hh) and serve
    // from RAM only in the all-warm case, where no capture can follow.
    if (cfg.cache) {
        bool allWarm = true;
        for (const TraceGroup &g : groups)
            if (!cfg.cache->traceAvailable(
                    traceKeyFor(points[g.points.front()]))) {
                allWarm = false;
                break;
            }
        cfg.cache->setRamTraceServe(allWarm);
    }

    const uint64_t budget = cfg.traceMemoBytes;
    uint64_t liveBytes = 0;
    size_t spillCursor = 0;
    for (size_t g = 0; g < groups.size(); ++g) {
        acquireTrace(groups[g]);
        liveBytes += groups[g].trace->byteSize();
        while (budget && liveBytes > budget && spillCursor <= g) {
            const size_t victim = spillCursor++;
            const uint64_t bytes = groups[victim].trace->byteSize();
            if (spillGroup(victim))
                liveBytes -= bytes;
        }
    }

    // ---- Execution backend (phase 2) --------------------------------
    // Everything from here on happens strictly AFTER the last capture:
    // backend choice, shard bookkeeping and the merge may allocate
    // freely without touching the capture-time heap layout, which is
    // why no backend state exists any earlier (see sweep/backend.hh).

    if (cfg.cache) {
        // Captures are done; T0 serving is unconditionally safe again
        // for whoever probes the cache next.
        cfg.cache->setRamTraceServe(true);
        // Publish freshly captured traces to the far tier. Deferred to
        // here because a far write allocates (and is slow), so it must
        // never run inside storeTrace() during phase 1c. Warm groups
        // were never captured: their far copies already exist or are
        // promoted on demand. A spilled group publishes via its T1
        // file (publishTraceFar falls back to the in-memory payload
        // only when one exists).
        if (!cfg.cache->farDir().empty())
            for (TraceGroup &g : groups) {
                if (!g.captured)
                    continue;
                const SweepPoint &p = points[g.points.front()];
                cfg.cache->publishTraceFar(
                    traceKeyFor(p), g.trace ? g.trace.get() : nullptr,
                    g.mix);
            }
    }

    // Engage row streaming (allocates — post-capture on purpose) and
    // drain the leading cache hits.
    if (cfg.onRow) {
        rowState.assign(points.size(), 0);
        for (size_t i = 0; i < points.size(); ++i)
            if (results[i].cacheHit)
                rowState[i] = 1;
        std::lock_guard<std::mutex> lock(rowMu);
        rowFlush();
    }

    // Resolve the backend: shards > 1 upgrades the default threaded
    // backend to the sharded one; explicit Inline/Sharded always win.
    Backend kind = cfg.backend;
    if (kind == Backend::Threaded && cfg.shards > 1)
        kind = Backend::Sharded;

    // A sharded run needs a disk tier the shard children and the
    // parent share. When the session cache is memory-only (or absent),
    // a private per-run directory substitutes — it exists purely as
    // the shard transport and is deleted after the merge.
    std::optional<ResultCache> privateShare;
    std::string privateShareDir;
    if (kind == Backend::Sharded &&
        (!storeCache || storeCache->diskDir().empty())) {
        static std::atomic<uint64_t> shardRunSeq{0};
        std::error_code ec;
        const auto tmp = std::filesystem::temp_directory_path(ec);
        if (!ec) {
            privateShareDir =
                (tmp / ("swan-shards-" + std::to_string(processToken()) +
                        "-" + std::to_string(shardRunSeq++)))
                    .string();
            // The transport cache inherits the session's far tier so
            // the parent-side merge can still sync T2 (shard children
            // never publish far; see ResultCache::setFarPublishEnabled).
            privateShare.emplace(privateShareDir, uint64_t(0),
                                 cfg.cache ? cfg.cache->farDir()
                                           : std::string());
        }
        if (privateShare && !privateShare->diskDir().empty()) {
            storeCache = &*privateShare;
        } else {
            // Unusable temp directory: stay in-process (results are
            // byte-identical either way; only the fan-out is lost).
            kind = Backend::Threaded;
            privateShare.reset();
        }
    }

    // Stamp the run's shape on the active telemetry instance, now
    // that the backend choice is final.
    if (obs::Telemetry *t = obs::Telemetry::active()) {
        obs::RunMeta m;
        m.points = points.size();
        m.units = groups.size();
        m.jobs = jobs;
        m.shards = kind == Backend::Sharded
                       ? std::clamp(cfg.shards, 1,
                                    ShardedBackend::kMaxShards)
                       : 1;
        const std::string_view nm = name(kind);
        std::snprintf(m.backend, sizeof m.backend, "%.*s",
                      int(nm.size()), nm.data());
        t->setMeta(m);
    }

    // Content-stable unit identities for cross-process claims: a hash
    // of every point key the unit produces (kernel, impl, width,
    // config and options fingerprints, warm-up) — equal between any
    // two processes executing the same grid, distinct between grids.
    // Precomputed once (sharded runs only): the backend reads tokens
    // per unit per process, and the keys hash strings.
    std::vector<uint64_t> unitTokens;
    if (kind == Backend::Sharded) {
        unitTokens.resize(groups.size());
        for (size_t gi = 0; gi < groups.size(); ++gi) {
            uint64_t h = kFnv64Seed;
            for (size_t idx : groups[gi].points)
                h = fnvMix64(h,
                             keyFor(points[idx], cfg.warmupPasses).hash());
            unitTokens[gi] = h;
        }
    }
    const auto unitToken = [&](size_t gi) { return unitTokens[gi]; };

    // Parent-side merge of one unit from the shared disk tier —
    // quietly: these are results this very run computed in a shard
    // child, not cache traffic (the children's own counters are
    // absorbed separately). False when any point is missing; the
    // backend then re-executes the whole unit via executeGroup, which
    // overwrites every point and stores what the dead shard could not.
    const auto serveGroup = [&](size_t gi, int shard) -> bool {
        const TraceGroup &g = groups[gi];
        std::vector<CacheKey> keys;
        keys.reserve(g.points.size());
        // Probe every point before the commit loop below, so a
        // partially published unit never half-stores into the session
        // tier before recovery re-executes (and re-stores) all of it.
        for (size_t idx : g.points) {
            keys.push_back(keyFor(points[idx], cfg.warmupPasses));
            if (!storeCache->lookupQuiet(keys.back(), &results[idx].run))
                return false;
        }
        for (size_t j = 0; j < g.points.size(); ++j) {
            SweepResult &r = results[g.points[j]];
            r.cacheHit = false; // simulated by this run, in a child
            if (cfg.cache && cfg.cache != storeCache)
                cfg.cache->store(keys[j], r.run);
            // One far writer per entry: children publish to the shared
            // T1 only, the parent syncs T2 here, once per merged unit.
            storeCache->publishFar(keys[j]);
        }
        for (size_t idx : g.points)
            rowComplete(idx, uint16_t(4 + std::max(shard, -1)));
        return true;
    };

    {
        using Exec = decltype(executeGroup);
        using Token = decltype(unitToken);
        using Serve = decltype(serveGroup);
        struct Hooks
        {
            const Exec *exec;
            const Token *token;
            const Serve *serve;
        } hooks{&executeGroup, &unitToken, &serveGroup};

        BackendJob job;
        job.units = groups.size();
        job.jobs = jobs;
        job.arg = &hooks;
        job.execute = [](void *a, size_t u) {
            (*static_cast<const Hooks *>(a)->exec)(u);
        };
        job.token = [](void *a, size_t u) {
            return (*static_cast<const Hooks *>(a)->token)(u);
        };
        job.serve = [](void *a, size_t u, int shard) {
            return (*static_cast<const Hooks *>(a)->serve)(u, shard);
        };
        job.shareCache = kind == Backend::Sharded ? storeCache : nullptr;

        switch (kind) {
          case Backend::Inline: {
            InlineBackend backend;
            backend.run(job);
            break;
          }
          case Backend::Sharded: {
            ShardedBackend backend(cfg.shards, cfg.shardTimeoutMs,
                                   cfg.shardBatch);
            backend.run(job);
            break;
          }
          case Backend::Threaded:
          default: {
            ThreadedBackend backend;
            backend.run(job);
            break;
          }
        }
    }
    // Traces and group bookkeeping are freed when `groups` goes out of
    // scope — on this thread, in insertion order.

    if (privateShare) {
        // The sharded-run bookkeeping counters (stale-claim sweeps,
        // crash-recovered units) landed in the private transport
        // cache; carry them over so the session's stats see them
        // before the transport directory disappears.
        if (cfg.cache) {
            const CacheStats ps = privateShare->stats();
            if (ps.staleClaimsSwept || ps.recoveredUnits ||
                ps.corruptEntriesQuarantined || ps.farStores) {
                CacheStats d;
                d.staleClaimsSwept = ps.staleClaimsSwept;
                d.recoveredUnits = ps.recoveredUnits;
                d.corruptEntriesQuarantined = ps.corruptEntriesQuarantined;
                // Far publishes the parent merge made through the
                // transport cache belong to the session's story too.
                d.farStores = ps.farStores;
                cfg.cache->absorbStats(d);
            }
        }
        privateShare.reset();
        std::error_code ec;
        std::filesystem::remove_all(privateShareDir, ec);
    }
    if (spillDirMade) {
        std::error_code ec;
        std::filesystem::remove_all(spillDir, ec);
    }
    if (!firstError.empty())
        throw std::runtime_error("sweep worker failed: " + firstError);
    return results;
}

std::vector<SweepResult>
runSweep(const SweepSpec &spec, const SchedulerConfig &cfg, std::string *err)
{
    std::vector<SweepPoint> points;
    {
        obs::Span span(obs::Phase::GridExpand);
        points = expand(spec, err);
        span.addArg(points.size());
    }
    if (points.empty())
        return {};
    SchedulerConfig c = cfg;
    c.warmupPasses = spec.warmupPasses;
    return runSweep(points, c);
}

const SweepResult *
findResult(const std::vector<SweepResult> &results,
           std::string_view kernel_qualified, core::Impl impl, int vec_bits,
           std::string_view config, std::string_view working_set)
{
    for (const auto &r : results) {
        if (r.point.spec->info.qualifiedName() != kernel_qualified)
            continue;
        if (r.point.impl != impl || r.point.vecBits != vec_bits)
            continue;
        if (!config.empty() && r.point.configName != config)
            continue;
        if (!working_set.empty() && r.point.workingSetName != working_set)
            continue;
        return &r;
    }
    return nullptr;
}

} // namespace swan::sweep
