#include "sweep/scheduler.hh"

#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>
#include <tuple>

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <fcntl.h>
#include <pthread.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define SWAN_POOL_HAVE_PTHREAD 1
#endif

#include "core/registry.hh"
#include "sim/power.hh"
#include "trace/packed.hh"
#include "trace/stats.hh"

namespace swan::sweep
{

namespace
{

/**
 * One trace group: every pending point that shares a capture identity
 * (kernel, impl, width, working set). The group's packed trace streams
 * through all of its core configurations in a single fused traversal
 * (sim::simulateTraceMany -> sim::replay: one varint decode per
 * instruction, every config's model stepped from the same decoded
 * registers), so a Figure-5(b)-style six-config sweep point costs one
 * decode pass, not six — and zero Instr staging round-trips.
 *
 * Determinism notes (this is the TraceMemo of old, restructured):
 *
 *  - Captures stay serial on the calling thread in point-index order,
 *    and finish before any worker thread exists. Captured traces
 *    carry real buffer addresses and the cache models are
 *    address-sensitive, so the heap AND address-space evolution up to
 *    the last capture must be identical whatever `--jobs` or the memo
 *    budget is.
 *  - Packed-trace storage is mmap-backed (trace::PackedTrace), so
 *    evicting a trace mid-phase-1 under SWAN_TRACE_MEMO_BYTES is
 *    invisible to malloc — the buffer addresses captured by later
 *    points (and later sweeps in the same process) cannot shift.
 *  - Eviction spills the packed bytes to disk (oldest first — for
 *    single-use traces that is LRU order) and the executing worker
 *    reloads them; a reloaded trace is bit-identical to the evicted
 *    one (checksummed), so the budget cannot change any result by
 *    construction.
 *  - Workers never run on the calling thread: simulation allocates
 *    from worker-thread arenas, keeping the capture thread's malloc
 *    state a pure function of the capture sequence across the
 *    process's sweeps.
 */
struct TraceGroup
{
    std::shared_ptr<trace::PackedTrace> trace;
    trace::MixStats mix;                //!< shared by the group's points
    std::vector<size_t> points;         //!< point indices, ascending
    std::vector<sim::CoreConfig> configs; //!< parallel to points
    bool spilled = false; //!< storage evicted; reload from spill file
};

/** Capture identity: which points may share one trace. */
using GroupKey = std::tuple<std::string, int, int, uint64_t>;

GroupKey
groupKeyFor(const SweepPoint &p)
{
    return {p.spec->info.qualifiedName(), int(p.impl), p.vecBits,
            fingerprint(p.options)};
}

/** Process-unique token for the spill directory name. */
uint64_t
processToken()
{
#ifdef SWAN_POOL_HAVE_PTHREAD
    return uint64_t(::getpid());
#else
    static const int anchor = 0;
    return uint64_t(reinterpret_cast<uintptr_t>(&anchor));
#endif
}

/**
 * One worker's mutex-guarded ring of group indices. The ring storage
 * is a caller-provided slice of the pool's mmap arena — a WorkQueue
 * never touches malloc.
 */
struct WorkQueue
{
    std::mutex mu;
    size_t *ring = nullptr; //!< capacity cap entries, externally owned
    size_t cap = 0;
    size_t head = 0;
    size_t count = 0;

    void
    pushBack(size_t v)
    {
        std::lock_guard<std::mutex> lock(mu);
        ring[(head + count) % cap] = v;
        ++count;
    }

    bool
    popFront(size_t *out)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (count == 0)
            return false;
        *out = ring[head];
        head = (head + 1) % cap;
        --count;
        return true;
    }

    bool
    stealBack(size_t *out)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (count == 0)
            return false;
        --count;
        *out = ring[(head + count) % cap];
        return true;
    }

    size_t
    size()
    {
        std::lock_guard<std::mutex> lock(mu);
        return count;
    }
};

/**
 * Work-stealing pool for the simulation phase.
 *
 * The threads are created once per sweep, strictly AFTER the last
 * capture, and exit when the sweep ends. That placement is
 * load-bearing for determinism: thread stacks (and the worker arenas
 * glibc creates at each worker's first malloc) are jobs-count-many
 * mappings, and captured workload buffers above malloc's mmap
 * threshold are placed in whatever address-space layout exists at
 * capture time — spawning before captures would make those addresses,
 * and therefore the address-sensitive simulated cycle counts, a
 * function of `--jobs`. Workers never run on the calling thread:
 * simulation must allocate from worker arenas only, keeping the
 * capture thread's heap evolution a pure function of the capture
 * sequence across sweeps.
 *
 * For the same contract, the pool's own jobs-sized state (queues,
 * rings, worker slots, thread handles) lives in one anonymous mmap
 * region rather than on the heap, and on POSIX the threads are raw
 * pthreads fed from those slots: mmap keeps the pool's footprint
 * invisible to malloc, and std::thread is avoided because its invoke
 * state is parent-allocated but child-freed — a cross-thread free
 * whose chunks return to the parent's arena in thread-exit order,
 * i.e. nondeterministically.
 */
class WorkerPool
{
  public:
    /**
     * @param jobs  worker threads (>= 1)
     * @param cap   upper bound on groups per run() batch
     * @param fn    group executor; must not throw
     * @param ctx   opaque pointer handed back to @p fn
     */
    WorkerPool(int jobs, size_t cap, void (*fn)(void *, size_t),
               void *ctx)
        : execute_(fn), ctx_(ctx), jobs_(size_t(jobs))
    {
        cap = std::max<size_t>(cap, 1);
        const size_t queuesOff = 0;
        const size_t ringsOff =
            alignUp(queuesOff + jobs_ * sizeof(WorkQueue), 64);
        const size_t slotsOff =
            alignUp(ringsOff + jobs_ * cap * sizeof(size_t), 64);
        const size_t threadsOff =
            alignUp(slotsOff + jobs_ * sizeof(Slot), 64);
        const size_t total = threadsOff + jobs_ * sizeof(ThreadHandle);
        arena_ = mapArena(total);

        queues_ = reinterpret_cast<WorkQueue *>(arena_ + queuesOff);
        auto *rings = reinterpret_cast<size_t *>(arena_ + ringsOff);
        slots_ = reinterpret_cast<Slot *>(arena_ + slotsOff);
        threads_ = reinterpret_cast<ThreadHandle *>(arena_ + threadsOff);
        arenaBytes_ = total;

        for (size_t t = 0; t < jobs_; ++t) {
            WorkQueue *q = new (&queues_[t]) WorkQueue();
            q->ring = rings + t * cap;
            q->cap = cap;
            new (&slots_[t]) Slot{this, int(t)};
        }
        for (size_t t = 0; t < jobs_; ++t) {
            try {
                spawn(&threads_[t], &slots_[t]);
            } catch (...) {
                // Tear down the workers already running before the
                // members they block on are destroyed.
                shutdown(t);
                throw;
            }
        }
    }

    ~WorkerPool() { shutdown(jobs_); }

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Run groups [0, n); blocks until every one has executed. */
    void
    run(size_t n)
    {
        if (n == 0)
            return;
        {
            std::lock_guard<std::mutex> lock(mu_);
            // Deal indices round-robin so initial shares interleave
            // the grid (adjacent groups of one kernel tend to cost
            // the same).
            for (size_t i = 0; i < n; ++i)
                queues_[i % jobs_].pushBack(i);
            remaining_ = n;
            ++generation_;
        }
        wake_.notify_all();
        std::unique_lock<std::mutex> lock(mu_);
        done_.wait(lock, [this] { return remaining_ == 0; });
    }

  private:
    struct Slot
    {
        WorkerPool *pool;
        int self;
    };

    /** Stop and join the first @p spawned workers, then free state. */
    void
    shutdown(size_t spawned)
    {
        // Workers exit strictly in worker-index order (each waits for
        // its turn, and the next turn is granted only after the
        // previous thread fully terminated): thread teardown releases
        // allocator state back to shared lists, and an exit race would
        // leave those lists — and therefore the next sweep's capture
        // addresses — ordered by scheduling luck.
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
            exitTurn_ = 0;
        }
        wake_.notify_all();
        for (size_t t = 0; t < spawned; ++t) {
            join(&threads_[t]);
            std::lock_guard<std::mutex> lock(mu_);
            exitTurn_ = t + 1;
            wake_.notify_all();
        }
        for (size_t t = 0; t < jobs_; ++t)
            queues_[t].~WorkQueue();
        unmapArena(arena_, arenaBytes_);
    }

#ifdef SWAN_POOL_HAVE_PTHREAD
    using ThreadHandle = pthread_t;

    static void
    spawn(ThreadHandle *h, Slot *slot)
    {
        if (pthread_create(h, nullptr, &WorkerPool::entry, slot) != 0)
            throw std::runtime_error("sweep: cannot spawn worker");
    }
    static void join(ThreadHandle *h) { pthread_join(*h, nullptr); }
#else
    using ThreadHandle = std::thread;

    static void
    spawn(ThreadHandle *h, Slot *slot)
    {
        new (h) std::thread(&WorkerPool::entry, slot);
    }
    static void
    join(ThreadHandle *h)
    {
        h->join();
        h->~thread();
    }
#endif

    static size_t
    alignUp(size_t v, size_t a)
    {
        return (v + a - 1) / a * a;
    }

    uint8_t *
    mapArena(size_t n)
    {
#ifdef SWAN_POOL_HAVE_PTHREAD
        void *p = ::mmap(nullptr, n, PROT_READ | PROT_WRITE,
                         MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        if (p != MAP_FAILED) {
            arenaMapped_ = true;
            return static_cast<uint8_t *>(p);
        }
#endif
        return static_cast<uint8_t *>(::operator new(n));
    }

    void
    unmapArena(uint8_t *p, size_t n)
    {
#ifdef SWAN_POOL_HAVE_PTHREAD
        if (arenaMapped_) {
            ::munmap(p, n);
            return;
        }
#endif
        (void)n;
        ::operator delete(p);
    }

    static void *
    entry(void *arg)
    {
        auto *slot = static_cast<Slot *>(arg);
        slot->pool->workerLoop(slot->self);
        return nullptr;
    }

    void
    workerLoop(int self)
    {
        uint64_t seen = 0;
        while (true) {
            {
                std::unique_lock<std::mutex> lock(mu_);
                wake_.wait(lock, [&] {
                    return stop_ || generation_ != seen;
                });
                if (stop_) {
                    // Serialized teardown: see the destructor.
                    wake_.wait(lock, [&] {
                        return exitTurn_ == size_t(self);
                    });
                    return;
                }
                seen = generation_;
            }
            drain(self);
        }
    }

    void
    drain(int self)
    {
        size_t gi;
        while (true) {
            if (queues_[size_t(self)].popFront(&gi)) {
                finish(gi);
                continue;
            }
            // Own queue drained: steal from the fullest victim.
            int victim = -1;
            size_t most = 0;
            for (int v = 0; v < int(jobs_); ++v) {
                if (v == self)
                    continue;
                const size_t n = queues_[size_t(v)].size();
                if (n > most) {
                    most = n;
                    victim = v;
                }
            }
            // No queue had work at scan time: batch over for this
            // worker (nobody pushes mid-batch, so emptiness is stable
            // once observed).
            if (victim < 0)
                return;
            // Lost the steal race: rescan, another victim may still
            // hold work.
            if (!queues_[size_t(victim)].stealBack(&gi))
                continue;
            finish(gi);
        }
    }

    void
    finish(size_t gi)
    {
        // Must not throw; errors are recorded by the callback itself.
        execute_(ctx_, gi);
        std::lock_guard<std::mutex> lock(mu_);
        if (--remaining_ == 0)
            done_.notify_all();
    }

    void (*execute_)(void *, size_t);
    void *ctx_;
    size_t jobs_;
    uint8_t *arena_ = nullptr;
    size_t arenaBytes_ = 0;
    bool arenaMapped_ = false;
    WorkQueue *queues_ = nullptr;
    Slot *slots_ = nullptr;
    ThreadHandle *threads_ = nullptr;
    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable done_;
    uint64_t generation_ = 0;
    size_t remaining_ = 0;
    size_t exitTurn_ = 0;
    bool stop_ = false;
};

} // namespace

uint64_t
SchedulerConfig::envTraceMemoBytes()
{
    uint64_t n = 0;
    parseByteCount(std::getenv("SWAN_TRACE_MEMO_BYTES"), &n);
    return n;
}

std::vector<SweepResult>
runSweep(const std::vector<SweepPoint> &points, const SchedulerConfig &cfg)
{
    // Workers read KernelSpec references concurrently; freeze the
    // registry so the backing vector can never reallocate under them.
    core::Registry::instance().closeRegistration();

    std::vector<SweepResult> results(points.size());
    if (points.empty())
        return results;

    int jobs = cfg.jobs;
    if (jobs <= 0)
        jobs = int(std::thread::hardware_concurrency());
    if (jobs < 1)
        jobs = 1;

    // Phase 1a (serial, point-index order): result-cache lookups.
    std::vector<size_t> pending;
    for (size_t i = 0; i < points.size(); ++i) {
        const SweepPoint &p = points[i];
        SweepResult &r = results[i];
        r.point = p;
        if (cfg.cache &&
            cfg.cache->lookup(keyFor(p, cfg.warmupPasses), &r.run)) {
            r.cacheHit = true;
            continue;
        }
        pending.push_back(i);
    }
    if (pending.empty())
        return results;

    // Phase 1b: group the pending points by capture identity, in
    // first-occurrence order (which is point-index order).
    std::vector<TraceGroup> groups;
    {
        std::map<GroupKey, size_t> groupOf;
        for (size_t idx : pending) {
            const SweepPoint &p = points[idx];
            auto [it, inserted] =
                groupOf.emplace(groupKeyFor(p), groups.size());
            if (inserted)
                groups.emplace_back();
            TraceGroup &g = groups[it->second];
            g.points.push_back(idx);
            g.configs.push_back(p.config);
        }
    }
    jobs = int(std::min<size_t>(size_t(jobs), groups.size()));

    std::mutex errMu;
    std::string firstError;
    const auto recordError = [&](const char *what) {
        std::lock_guard<std::mutex> lock(errMu);
        if (firstError.empty())
            firstError = what;
    };

    // Private spill directory for memo-budget evictions, independent
    // of the result cache so eviction works with or without a cache
    // dir. The name is resolved HERE, before any capture, into a
    // fixed stack buffer, and the spill I/O itself uses raw
    // syscalls + stack-built paths: eviction happens between
    // captures, where even a balanced malloc/free pair can split or
    // coalesce allocator bins and shift the addresses later captures
    // record — the budget must leave the capture thread's allocator
    // bit-untouched so results cannot depend on it.
    char spillDir[3072];
    spillDir[0] = '\0';
    bool spillDirMade = false;
    {
        std::error_code ec;
        const auto tmp = std::filesystem::temp_directory_path(ec);
        if (!ec) {
            const int w = std::snprintf(
                spillDir, sizeof spillDir, "%s/swan-memo-%llu",
                tmp.string().c_str(),
                static_cast<unsigned long long>(processToken()));
            if (w <= 0 || size_t(w) >= sizeof spillDir)
                spillDir[0] = '\0';
        }
    }
    const auto spillPathFor = [&](size_t gi, char *buf, size_t buf_len) {
        const int w = std::snprintf(buf, buf_len, "%s/g%zu.swtp",
                                    spillDir, gi);
        return w > 0 && size_t(w) < buf_len;
    };

    // Phase 2 worker: replay one group's trace through all of its
    // configurations in a single pass; results land by point index.
    // Evicted traces are reloaded from their spill file (bit-identical
    // by checksum, so eviction cannot change any result).
    const auto executeGroup = [&](size_t gi) {
        try {
            TraceGroup &g = groups[gi];
            trace::PackedTrace reloaded;
            const trace::PackedTrace *t = g.trace.get();
            if (g.spilled) {
                // Worker-side reload; worker-arena allocations are
                // free to happen here (captures are long done).
                char path[3328];
                std::string blob;
                std::error_code ec;
                if (spillPathFor(gi, path, sizeof path)) {
                    const auto size = std::filesystem::file_size(path, ec);
                    if (!ec) {
                        blob.resize(size);
                        std::ifstream in(path, std::ios::binary);
                        if (!in.read(blob.data(), std::streamsize(size)))
                            blob.clear();
                    }
                }
                if (blob.empty() ||
                    !trace::PackedTrace::parsePayload(
                        reinterpret_cast<const uint8_t *>(blob.data()),
                        blob.size(), &reloaded)) {
                    recordError("evicted trace spill lost or corrupt");
                    return;
                }
                t = &reloaded;
            }
            auto sims = sim::simulateTraceMany(*t, g.configs,
                                               cfg.warmupPasses);
            for (size_t j = 0; j < g.points.size(); ++j) {
                const size_t idx = g.points[j];
                const SweepPoint &p = points[idx];
                SweepResult &r = results[idx];
                r.run = core::KernelRun{};
                r.run.mix = g.mix;
                r.run.sim = std::move(sims[j]);
                sim::applyPowerModel(
                    r.run.sim, sim::PowerParams::forConfig(p.config));
                if (cfg.cache)
                    cfg.cache->store(keyFor(p, cfg.warmupPasses), r.run);
            }
        } catch (const std::exception &e) {
            recordError(e.what());
        }
    };

    // Acquire one group's packed trace: the on-disk trace tier when
    // warm, a fresh capture otherwise. Serial, capture-thread only.
    // The capture and pack scratch buffers persist across all groups
    // (freed once, here, when the sweep ends): steady-state captures
    // then leave the capture thread's malloc state untouched, so the
    // workload buffer addresses later captures record — which the
    // address-sensitive cache models feel — cannot depend on how many
    // traces came before or on the memo budget.
    std::vector<trace::Instr> captureBuf;
    trace::PackedTrace::Scratch packScratch;
    const auto acquireTrace = [&](TraceGroup &g) {
        const SweepPoint &p = points[g.points.front()];
        trace::PackedTrace t;
        if (cfg.cache &&
            cfg.cache->lookupTrace(traceKeyFor(p), &t, &g.mix)) {
            g.trace = std::make_shared<trace::PackedTrace>(std::move(t));
            return;
        }
        auto w = p.spec->make(p.options);
        core::Runner::captureInto(*w, p.impl, p.vecBits, &captureBuf);
        g.mix.addTrace(captureBuf);
        g.trace = std::make_shared<trace::PackedTrace>(
            trace::PackedTrace::pack(captureBuf, &packScratch));
        if (cfg.cache)
            cfg.cache->storeTrace(traceKeyFor(p), *g.trace, g.mix);
    };

    // Spill one group's packed bytes and release the mmap storage.
    // Runs between captures: syscalls only, zero heap traffic.
    const auto spillGroup = [&](size_t gi) -> bool {
        TraceGroup &g = groups[gi];
        if (!spillDir[0])
            return false;
#ifdef SWAN_POOL_HAVE_PTHREAD
        if (!spillDirMade) {
            if (::mkdir(spillDir, 0700) != 0 && errno != EEXIST)
                return false;
            spillDirMade = true;
        }
        char path[3328];
        if (!spillPathFor(gi, path, sizeof path))
            return false;
        const int fd =
            ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0600);
        if (fd < 0)
            return false;
        bool ok = g.trace->writePayload(fd);
        ok = (::close(fd) == 0) && ok;
#else
        if (!spillDirMade) {
            std::error_code ec;
            std::filesystem::create_directories(spillDir, ec);
            if (ec)
                return false;
            spillDirMade = true;
        }
        char path[3328];
        if (!spillPathFor(gi, path, sizeof path))
            return false;
        std::FILE *f = std::fopen(path, "wb");
        if (!f)
            return false;
        bool ok = g.trace->writePayload(f);
        ok = (std::fclose(f) == 0) && ok;
#endif
        if (!ok)
            return false;
        g.trace->releaseStorage();
        g.spilled = true;
        return true;
    };

    // Phase 1c: capture every group under the memo byte budget —
    // when live packed bytes exceed it, the oldest live traces spill
    // to disk (LRU for these single-use traces) until the budget
    // holds again. Peak trace memory is ~budget + one trace. A spill
    // failure (disk full) keeps the trace in memory: results stay
    // correct, only the cap degrades.
    const uint64_t budget = cfg.traceMemoBytes;
    uint64_t liveBytes = 0;
    size_t spillCursor = 0;
    for (size_t g = 0; g < groups.size(); ++g) {
        acquireTrace(groups[g]);
        liveBytes += groups[g].trace->byteSize();
        while (budget && liveBytes > budget && spillCursor <= g) {
            const size_t victim = spillCursor++;
            const uint64_t bytes = groups[victim].trace->byteSize();
            if (spillGroup(victim))
                liveBytes -= bytes;
        }
    }

    // Phase 2: the worker pool spawns only now, after the last
    // capture (see WorkerPool on why that ordering matters), and
    // work-steals over the groups.
    {
        using Exec = decltype(executeGroup);
        WorkerPool pool(jobs, groups.size(),
                        [](void *ctx, size_t gi) {
                            (*static_cast<const Exec *>(ctx))(gi);
                        },
                        const_cast<void *>(
                            static_cast<const void *>(&executeGroup)));
        pool.run(groups.size());
    }
    // Traces and group bookkeeping are freed when `groups` goes out of
    // scope — on this thread, in insertion order.

    if (spillDirMade) {
        std::error_code ec;
        std::filesystem::remove_all(spillDir, ec);
    }
    if (!firstError.empty())
        throw std::runtime_error("sweep worker failed: " + firstError);
    return results;
}

std::vector<SweepResult>
runSweep(const SweepSpec &spec, const SchedulerConfig &cfg, std::string *err)
{
    auto points = expand(spec, err);
    if (points.empty())
        return {};
    SchedulerConfig c = cfg;
    c.warmupPasses = spec.warmupPasses;
    return runSweep(points, c);
}

const SweepResult *
findResult(const std::vector<SweepResult> &results,
           std::string_view kernel_qualified, core::Impl impl, int vec_bits,
           std::string_view config, std::string_view working_set)
{
    for (const auto &r : results) {
        if (r.point.spec->info.qualifiedName() != kernel_qualified)
            continue;
        if (r.point.impl != impl || r.point.vecBits != vec_bits)
            continue;
        if (!config.empty() && r.point.configName != config)
            continue;
        if (!working_set.empty() && r.point.workingSetName != working_set)
            continue;
        return &r;
    }
    return nullptr;
}

} // namespace swan::sweep
