#include "sweep/scheduler.hh"

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <tuple>

#include "core/registry.hh"
#include "sim/power.hh"

namespace swan::sweep
{

namespace
{

/**
 * Per-sweep trace memo: multi-config sweeps (Figure 5(b): six core
 * configs over one trace) capture each (kernel, impl, width, working
 * set) once and replay it per config. Filled serially in phase 1;
 * phase-2 workers only read (the lock makes those reads safe).
 *
 * All traces are held until the sweep ends and freed on one thread,
 * deliberately: freeing each trace as its last simulation finishes
 * would release heap blocks in thread-scheduling order, making the
 * allocator state after the sweep — and therefore the buffer
 * addresses captured by any LATER sweep in the same process —
 * nondeterministic, which breaks the byte-identical-reports contract
 * across job counts. The cost is that peak memory is the sum of the
 * grid's distinct traces; a size cap / eviction policy for
 * paper-scale grids is tracked in ROADMAP.md.
 */
class TraceMemo
{
  public:
    using Key = std::tuple<std::string, int, int, uint64_t>;
    using Trace = std::shared_ptr<const std::vector<trace::Instr>>;

    Trace
    find(const Key &key)
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        return it == map_.end() ? nullptr : it->second;
    }

    Trace
    insert(const Key &key, std::vector<trace::Instr> instrs)
    {
        auto sp = std::make_shared<const std::vector<trace::Instr>>(
            std::move(instrs));
        std::lock_guard<std::mutex> lock(mu_);
        auto [it, inserted] = map_.emplace(key, sp);
        (void)inserted;
        return it->second;
    }

  private:
    std::mutex mu_;
    std::map<Key, Trace> map_;
};

TraceMemo::Key
memoKey(const SweepPoint &p)
{
    return {p.spec->info.qualifiedName(), int(p.impl), p.vecBits,
            fingerprint(p.options)};
}

/** One worker's mutex-guarded deque of point indices. */
struct WorkQueue
{
    std::mutex mu;
    std::deque<size_t> q;

    bool
    popFront(size_t *out)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (q.empty())
            return false;
        *out = q.front();
        q.pop_front();
        return true;
    }

    bool
    stealBack(size_t *out)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (q.empty())
            return false;
        *out = q.back();
        q.pop_back();
        return true;
    }

    size_t
    size()
    {
        std::lock_guard<std::mutex> lock(mu);
        return q.size();
    }
};

} // namespace

std::vector<SweepResult>
runSweep(const std::vector<SweepPoint> &points, const SchedulerConfig &cfg)
{
    // Workers read KernelSpec references concurrently; freeze the
    // registry so the backing vector can never reallocate under them.
    core::Registry::instance().closeRegistration();

    std::vector<SweepResult> results(points.size());
    if (points.empty())
        return results;

    int jobs = cfg.jobs;
    if (jobs <= 0)
        jobs = int(std::thread::hardware_concurrency());
    if (jobs < 1)
        jobs = 1;
    jobs = int(std::min<size_t>(size_t(jobs), points.size()));

    // Phase 1 (serial, point-index order): cache lookups and trace
    // captures. Captured traces carry real buffer addresses, and the
    // cache models are address-sensitive, so the heap must evolve
    // identically whatever --jobs is; capturing on one thread in a
    // fixed order guarantees that. Each distinct (kernel, impl, width,
    // working set) is captured once and shared across core configs.
    TraceMemo memo;
    std::vector<size_t> pending;
    for (size_t i = 0; i < points.size(); ++i) {
        const SweepPoint &p = points[i];
        SweepResult &r = results[i];
        r.point = p;
        if (cfg.cache &&
            cfg.cache->lookup(keyFor(p, cfg.warmupPasses), &r.run)) {
            r.cacheHit = true;
            continue;
        }
        if (!memo.find(memoKey(p))) {
            auto w = p.spec->make(p.options);
            memo.insert(memoKey(p),
                        core::Runner::capture(*w, p.impl, p.vecBits));
        }
        pending.push_back(i);
    }
    if (pending.empty())
        return results;
    jobs = int(std::min<size_t>(size_t(jobs), pending.size()));

    // Phase 2 (parallel): simulate pending points. Simulation is a
    // pure function of (trace, config), so the fan-out cannot affect
    // the numbers, only the wall clock.
    // Deal indices round-robin so initial shares interleave the grid
    // (adjacent points of one kernel tend to cost the same).
    std::vector<WorkQueue> queues(jobs);
    for (size_t i = 0; i < pending.size(); ++i)
        queues[i % jobs].q.push_back(pending[i]);

    std::mutex errMu;
    std::string firstError;

    const auto worker = [&](int self) {
        const auto execute = [&](size_t idx) {
            const SweepPoint &p = points[idx];
            SweepResult &r = results[idx];
            const auto trace = memo.find(memoKey(p));
            r.run = core::KernelRun{};
            r.run.mix.addTrace(*trace);
            r.run.sim =
                sim::simulateTrace(*trace, p.config, cfg.warmupPasses);
            sim::applyPowerModel(r.run.sim,
                                 sim::PowerParams::forConfig(p.config));
            if (cfg.cache)
                cfg.cache->store(keyFor(p, cfg.warmupPasses), r.run);
        };
        try {
            size_t idx;
            while (true) {
                if (queues[self].popFront(&idx)) {
                    execute(idx);
                    continue;
                }
                // Own deque drained: steal from the fullest victim.
                int victim = -1;
                size_t most = 0;
                for (int v = 0; v < int(queues.size()); ++v) {
                    if (v == self)
                        continue;
                    const size_t n = queues[v].size();
                    if (n > most) {
                        most = n;
                        victim = v;
                    }
                }
                // No queue had work at scan time: done (workers never
                // push new work, so emptiness is stable once observed).
                if (victim < 0)
                    break;
                // Lost the steal race: rescan, another victim may
                // still hold work.
                if (!queues[victim].stealBack(&idx))
                    continue;
                execute(idx);
            }
        } catch (const std::exception &e) {
            std::lock_guard<std::mutex> lock(errMu);
            if (firstError.empty())
                firstError = e.what();
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(jobs - 1);
    for (int t = 1; t < jobs; ++t)
        threads.emplace_back(worker, t);
    worker(0);
    for (auto &t : threads)
        t.join();

    if (!firstError.empty())
        throw std::runtime_error("sweep worker failed: " + firstError);
    return results;
}

std::vector<SweepResult>
runSweep(const SweepSpec &spec, const SchedulerConfig &cfg, std::string *err)
{
    auto points = expand(spec, err);
    if (points.empty())
        return {};
    SchedulerConfig c = cfg;
    c.warmupPasses = spec.warmupPasses;
    return runSweep(points, c);
}

const SweepResult *
findResult(const std::vector<SweepResult> &results,
           std::string_view kernel_qualified, core::Impl impl, int vec_bits,
           std::string_view config, std::string_view working_set)
{
    for (const auto &r : results) {
        if (r.point.spec->info.qualifiedName() != kernel_qualified)
            continue;
        if (r.point.impl != impl || r.point.vecBits != vec_bits)
            continue;
        if (!config.empty() && r.point.configName != config)
            continue;
        if (!working_set.empty() && r.point.workingSetName != working_set)
            continue;
        return &r;
    }
    return nullptr;
}

} // namespace swan::sweep
