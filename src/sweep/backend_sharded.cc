/**
 * @file
 * ShardedBackend: multi-process sweep execution on top of the on-disk
 * cache tier. The parent has already captured every packed trace
 * (phase 1 is backend-agnostic), so the children fork *after* the last
 * capture and inherit the traces copy-on-write; each child runs the
 * ordinary threaded pool, gated per unit by an atomic lockfile claim
 * in the shared cache directory, and publishes results as the cache
 * tier's ordinary checksummed `.swr` entries. The parent then merges
 * the entries back in unit order and re-executes whatever a dead shard
 * claimed but never stored. Because a work unit is a pure function of
 * (trace, configs) and the `.swr` format round-trips doubles bit-exactly
 * (hexfloat), the merged output is byte-identical to a threaded run —
 * including after crash recovery.
 *
 * File naming in the shared directory (`<h>` = 16 hex digits):
 *
 *   c<run>-<token>.claim    unit claim; content "pid <pid>\nshard <N>\n"
 *   s<run>-<pid>-<N>.stats  shard N's cache-counter delta, absorbed and
 *                           deleted by its parent <pid>; content
 *                           "pid <pid>\n" + one counter line
 *   o<run>-<pid>-<N>.obsnap shard N's telemetry-span snapshot (written
 *                           only when a collector is active — see
 *                           obs/telemetry.hh), absorbed and deleted by
 *                           its parent <pid>; "pid <pid>\n" header too
 *
 * `<run>` is a content hash of every unit token, so two identical
 * concurrent commands share claims (each unit simulated once across
 * both fleets) while different grids sharing one cache directory never
 * interfere. Claims are removed when the run's parent finishes; claim,
 * stats or snapshot files whose pid no longer exists are swept at the
 * start of the next sharded run (stale-claim cleanup, counted in
 * CacheStats::staleClaimsSwept), so a crashed fleet can never poison
 * the directory.
 */

#include "sweep/backend.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.hh"
#include "sweep/cache.hh"

#if defined(__unix__) || defined(__APPLE__)
#define SWAN_BACKEND_HAVE_FORK 1
#include <cerrno>
#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace swan::sweep
{

ShardedBackend::ShardedBackend(int shards, uint64_t timeout_ms, int batch)
    : shards_(std::clamp(shards, 1, kMaxShards)), timeoutMs_(timeout_ms),
      batch_(std::max(batch, 1))
{
}

#ifndef SWAN_BACKEND_HAVE_FORK

void
ShardedBackend::run(const BackendJob &job)
{
    // No fork() on this platform: degrade to the in-process pool.
    // Results are byte-identical either way; only the process fan-out
    // is lost.
    ThreadedBackend().run(job);
}

#else

namespace
{

bool
claimPath(char *buf, size_t n, const char *dir, uint64_t run,
          uint64_t token)
{
    const int w = std::snprintf(buf, n, "%s/c%016llx-%016llx.claim", dir,
                                static_cast<unsigned long long>(run),
                                static_cast<unsigned long long>(token));
    return w > 0 && size_t(w) < n;
}

bool
statsPath(char *buf, size_t n, const char *dir, uint64_t run,
          long parent_pid, int shard)
{
    const int w = std::snprintf(buf, n, "%s/s%016llx-%ld-%d.stats", dir,
                                static_cast<unsigned long long>(run),
                                parent_pid, shard);
    return w > 0 && size_t(w) < n;
}

bool
obsPath(char *buf, size_t n, const char *dir, uint64_t run,
        long parent_pid, int shard)
{
    const int w = std::snprintf(buf, n, "%s/o%016llx-%ld-%d.obsnap", dir,
                                static_cast<unsigned long long>(run),
                                parent_pid, shard);
    return w > 0 && size_t(w) < n;
}

/**
 * Atomically claim the file at @p path for this process: O_CREAT|O_EXCL
 * either creates it (claim won) or fails with EEXIST (another shard —
 * possibly of a concurrent identical run — owns the unit).
 */
bool
tryClaim(const char *path, int shard)
{
    const int fd = ::open(path, O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0)
        return false;
    char line[64];
    const int w = std::snprintf(line, sizeof line, "pid %ld\nshard %d\n",
                                static_cast<long>(::getpid()), shard);
    if (w > 0) {
        // The pid is advisory (stale-claim liveness probes, merge-time
        // shard attribution); a short write only makes the claim look
        // stale earlier than it is.
        [[maybe_unused]] ssize_t rc = ::write(fd, line, size_t(w));
    }
    ::close(fd);
    return true;
}

/** The claiming shard recorded in a claim file, -1 when unknown (a
 *  pre-shard-line writer, a mid-write race, or no claim at all). */
int
readClaimShard(const char *path)
{
    std::ifstream in(path);
    std::string tag;
    long pid = 0;
    int shard = -1;
    if (!(in >> tag >> pid) || tag != "pid")
        return -1;
    if (!(in >> tag >> shard) || tag != "shard" || shard < 0)
        return -1;
    return shard;
}

/**
 * Remove `.claim`/`.stats`/`.obsnap` files owned by processes that no
 * longer exist; @return how many were removed (surfaced as
 * CacheStats::staleClaimsSwept). All three kinds open with a
 * "pid <n>" line. Claims of live processes — this run's concurrent
 * twin, or another grid mid-flight — are left alone. A claim with no
 * readable pid line is only stale once it is old: tryClaim's create
 * and pid write are two syscalls, so a freshly created claim can
 * legitimately be observed mid-write by a concurrent run's cleanup
 * and must not be deleted under a live claimant.
 */
uint64_t
cleanStaleClaims(const std::string &dir)
{
    constexpr auto kMidWriteGrace = std::chrono::minutes(1);
    uint64_t swept = 0;
    std::error_code ec;
    for (std::filesystem::directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
        const auto &p = it->path();
        const auto ext = p.extension();
        if (ext != ".claim" && ext != ".stats" && ext != ".obsnap")
            continue;
        long pid = -1;
        {
            std::ifstream in(p);
            std::string tag;
            if (!(in >> tag >> pid) || tag != "pid")
                pid = -1;
        }
        bool stale = false;
        if (pid > 0) {
            stale = ::kill(pid_t(pid), 0) != 0 && errno == ESRCH;
        } else {
            // No owner pid readable: fall back to an age check. The
            // one sanctioned wall-clock read near the cache tiers — it
            // arbitrates foreign garbage files, never entry placement,
            // so no result or eviction order depends on it.
            std::error_code mec;
            // swan-lint: allow(nondet) stale-claim age check, not eviction policy
            const auto mtime = std::filesystem::last_write_time(p, mec);
            // swan-lint: allow(nondet) stale-claim age check, not eviction policy
            const auto now = std::filesystem::file_time_type::clock::now();
            const auto age = now - mtime;
            stale = !mec && age > kMidWriteGrace;
        }
        if (stale) {
            std::error_code rec;
            if (std::filesystem::remove(p, rec) && !rec)
                ++swept;
        }
    }
    return swept;
}

/**
 * Claim identity of batch @p b under @p batch units per claim: the
 * unit's own token when batching is off (claim filenames unchanged
 * from per-unit runs), otherwise the FNV fold of the member unit
 * tokens — content-stable like the members, and distinct from any raw
 * unit token's filename only by value, so per-unit and batched runs
 * of the same grid never alias each other's claims.
 */
uint64_t
batchToken(const BackendJob &job, size_t batch, size_t b)
{
    const size_t lo = b * batch;
    if (batch == 1)
        return job.token(job.arg, lo);
    const size_t hi = std::min(job.units, lo + batch);
    uint64_t t = kFnv64Seed;
    for (size_t u = lo; u < hi; ++u)
        t = fnvMix64(t, job.token(job.arg, u));
    return t;
}

/** Per-batch claim resolution states (ClaimCtx::batchState). */
enum : uint8_t
{
    kBatchNew = 0,       //!< nobody in this process has tried yet
    kBatchResolving = 1, //!< one worker is mid-claim (two syscalls)
    kBatchWon = 2,       //!< this process owns the batch
    kBatchLost = 3,      //!< another shard owns the batch
};

struct ClaimCtx
{
    const BackendJob *job;
    const char *dir;
    uint64_t run;
    int shard;
    size_t batch;                     //!< units per claim (>= 1)
    std::atomic<uint8_t> *batchState; //!< one slot per batch
};

/**
 * Claim-gated unit executor: the first process to create the batch's
 * claim file simulates all of its units; everyone else skips them.
 * The claim verdict is resolved once per process and cached in
 * batchState — a lost open(O_CREAT|O_EXCL) cannot distinguish "another
 * shard owns it" from "another worker thread of THIS process just won
 * it", so exactly one worker performs the open and the rest read the
 * cached verdict (yielding through the two-syscall resolving window).
 */
void
claimedExecute(void *arg, size_t u)
{
    const auto *c = static_cast<const ClaimCtx *>(arg);
    std::atomic<uint8_t> &st = c->batchState[u / c->batch];
    uint8_t s = st.load(std::memory_order_acquire);
    if (s == kBatchNew) {
        uint8_t expect = kBatchNew;
        if (st.compare_exchange_strong(expect, kBatchResolving,
                                       std::memory_order_acq_rel)) {
            char path[3584];
            const bool won =
                claimPath(path, sizeof path, c->dir, c->run,
                          batchToken(*c->job, c->batch, u / c->batch)) &&
                tryClaim(path, c->shard);
            s = won ? kBatchWon : kBatchLost;
            st.store(s, std::memory_order_release);
        } else {
            s = expect;
        }
    }
    while (s == kBatchResolving) {
        std::this_thread::yield();
        s = st.load(std::memory_order_acquire);
    }
    if (s != kBatchWon)
        return;
    c->job->execute(c->job->arg, u);
}

CacheStats
statsDelta(const CacheStats &now, const CacheStats &before)
{
    CacheStats d;
    d.hits = now.hits - before.hits;
    d.diskHits = now.diskHits - before.diskHits;
    d.misses = now.misses - before.misses;
    d.stores = now.stores - before.stores;
    d.traceHits = now.traceHits - before.traceHits;
    d.traceMisses = now.traceMisses - before.traceMisses;
    d.traceStores = now.traceStores - before.traceStores;
    d.traceRamHits = now.traceRamHits - before.traceRamHits;
    d.evictions = now.evictions - before.evictions;
    d.farHits = now.farHits - before.farHits;
    d.farMisses = now.farMisses - before.farMisses;
    d.farStores = now.farStores - before.farStores;
    d.farPromotions = now.farPromotions - before.farPromotions;
    d.ramPromotions = now.ramPromotions - before.ramPromotions;
    d.ramDemotions = now.ramDemotions - before.ramDemotions;
    d.corruptEntriesQuarantined =
        now.corruptEntriesQuarantined - before.corruptEntriesQuarantined;
    return d;
}

void
writeStats(const char *path, long parent_pid, const CacheStats &d)
{
    char buf[768];
    const int w = std::snprintf(
        buf, sizeof buf,
        "pid %ld\n%llu %llu %llu %llu %llu %llu %llu %llu %llu"
        " %llu %llu %llu %llu %llu %llu %llu\n",
        parent_pid, static_cast<unsigned long long>(d.hits),
        static_cast<unsigned long long>(d.diskHits),
        static_cast<unsigned long long>(d.misses),
        static_cast<unsigned long long>(d.stores),
        static_cast<unsigned long long>(d.traceHits),
        static_cast<unsigned long long>(d.traceMisses),
        static_cast<unsigned long long>(d.traceStores),
        static_cast<unsigned long long>(d.evictions),
        static_cast<unsigned long long>(d.corruptEntriesQuarantined),
        static_cast<unsigned long long>(d.traceRamHits),
        static_cast<unsigned long long>(d.farHits),
        static_cast<unsigned long long>(d.farMisses),
        static_cast<unsigned long long>(d.farStores),
        static_cast<unsigned long long>(d.farPromotions),
        static_cast<unsigned long long>(d.ramPromotions),
        static_cast<unsigned long long>(d.ramDemotions));
    if (w <= 0 || size_t(w) >= sizeof buf)
        return;
    const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return;
    [[maybe_unused]] ssize_t rc = ::write(fd, buf, size_t(w));
    ::close(fd);
}

bool
readStats(const char *path, CacheStats *out)
{
    std::ifstream in(path);
    std::string tag;
    long pid = 0;
    if (!(in >> tag >> pid) || tag != "pid")
        return false;
    CacheStats d;
    if (!(in >> d.hits >> d.diskHits >> d.misses >> d.stores >>
          d.traceHits >> d.traceMisses >> d.traceStores >> d.evictions >>
          d.corruptEntriesQuarantined))
        return false;
    // Tier-transition counters, appended after the original nine. The
    // writer and reader always belong to the same run (stats files are
    // scoped by run token and parent pid), so their absence means a
    // truncated file, not an old format.
    if (!(in >> d.traceRamHits >> d.farHits >> d.farMisses >>
          d.farStores >> d.farPromotions >> d.ramPromotions >>
          d.ramDemotions))
        return false;
    *out = d;
    return true;
}

/**
 * Order-insensitive fingerprint of the share directory (file names and
 * sizes, commutatively combined — directory_iterator order is
 * unspecified and may differ between scans of an unchanged directory).
 * Every kind of shard progress moves it: a new claim, a published
 * `.swr`/`.swtp` entry growing the tier, a stats or telemetry snapshot.
 * The watchdog compares successive fingerprints; only a fleet that
 * changes *nothing* for the whole deadline is declared wedged.
 */
uint64_t
shareDirSignature(const std::string &dir)
{
    uint64_t sig = 0;
    std::error_code ec;
    for (std::filesystem::directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
        uint64_t h = kFnv64Seed;
        for (const char ch : it->path().filename().string())
            h = (h ^ uint8_t(ch)) * 1099511628211ull;
        std::error_code sec;
        const auto sz = it->file_size(sec);
        sig += fnvMix64(h, sec ? 0 : uint64_t(sz));
    }
    return sig;
}

/**
 * One shard child's whole life. Runs the standard threaded pool over
 * every unit with the claim gate in front, then exports this child's
 * cache-counter delta for the parent to absorb. The caller _exit()s
 * with the return value — a child must never unwind into the parent's
 * atexit handlers or flush its inherited stdio buffers.
 */
int
childMain(const BackendJob &job, uint64_t run, const char *dir,
          int shard, size_t batch, long parent_pid,
          const CacheStats &before)
{
    // Tag this process (and its telemetry records) as shard `shard`;
    // also fences the fork-inherited span buffer so the snapshot
    // below exports only what this child recorded.
    obs::Telemetry::setShard(shard);

    // Shards publish to the shared local tier only; the parent syncs
    // the far tier once per merged unit (scheduler.cc) so a slow
    // shared directory sees one writer per entry, not a racing fleet.
    ResultCache::setFarPublishEnabled(false);

    const size_t nBatches = (job.units + batch - 1) / batch;

    // Test hook (tests/test_sweep_backend.cc): the named shard claims
    // one batch and dies without executing or recording anything,
    // exactly like a mid-simulation crash — the parent's recovery
    // path must re-execute every claimed unit.
    if (const char *crash = std::getenv("SWAN_SHARD_TEST_CRASH");
        crash && std::atoi(crash) == shard) {
        for (size_t b = 0; b < nBatches; ++b) {
            char path[3584];
            if (claimPath(path, sizeof path, dir, run,
                          batchToken(job, batch, b)) &&
                tryClaim(path, shard))
                break;
        }
        return 9;
    }

    // Test hook, sibling of the crash hook above: the named shard
    // claims one batch and then wedges — alive but making no progress,
    // the failure mode waitpid alone can never resolve. The parent's
    // deadline watchdog must SIGKILL it and recover the claimed units
    // through the ordinary crash path.
    if (const char *hang = std::getenv("SWAN_SHARD_TEST_HANG");
        hang && std::atoi(hang) == shard) {
        for (size_t b = 0; b < nBatches; ++b) {
            char path[3584];
            if (claimPath(path, sizeof path, dir, run,
                          batchToken(job, batch, b)) &&
                tryClaim(path, shard))
                break;
        }
        for (;;)
            ::pause();
    }

    {
        // One envelope span per shard child, so even a shard that
        // loses every claim race is visible in the trace. The claim
        // verdict cache allocates in the child, post-fork — the
        // parent's capture-phase heap is already sealed.
        obs::Span life(obs::Phase::Shard, uint64_t(job.units));
        std::unique_ptr<std::atomic<uint8_t>[]> verdicts(
            new std::atomic<uint8_t>[nBatches]());
        ClaimCtx ctx{&job, dir, run, shard, batch, verdicts.get()};
        BackendJob sub = job;
        sub.arg = &ctx;
        sub.execute = &claimedExecute;
        ThreadedBackend().run(sub);
    }

    char path[3584];
    if (statsPath(path, sizeof path, dir, run, parent_pid, shard))
        writeStats(path, parent_pid,
                   statsDelta(job.shareCache->stats(), before));
    if (const obs::Telemetry *t = obs::Telemetry::instance();
        t && obsPath(path, sizeof path, dir, run, parent_pid, shard))
        t->writeSnapshot(path);
    return 0;
}

} // namespace

void
ShardedBackend::run(const BackendJob &job)
{
    if (job.units == 0)
        return;
    if (!job.shareCache || job.shareCache->diskDir().empty() ||
        !job.token || !job.serve) {
        // No shared tier to claim/merge through: stay in-process.
        ThreadedBackend().run(job);
        return;
    }
    const std::string &dir = job.shareCache->diskDir();

    // Content hash of the whole run's unit tokens: scopes claims to
    // this grid, shared with concurrent identical commands only.
    uint64_t run = kFnv64Seed;
    for (size_t u = 0; u < job.units; ++u)
        run = fnvMix64(run, job.token(job.arg, u));

    if (const uint64_t swept = cleanStaleClaims(dir)) {
        CacheStats d;
        d.staleClaimsSwept = swept;
        job.shareCache->absorbStats(d);
    }

    // More shards than claims cannot win anything: clamp the fleet to
    // the batch count, not the unit count.
    const size_t batch = size_t(batch_);
    const size_t nBatches = (job.units + batch - 1) / batch;
    const int shards = int(std::min<size_t>(size_t(shards_), nBatches));
    const CacheStats before = job.shareCache->stats();
    const long parentPid = static_cast<long>(::getpid());
    pid_t pids[kMaxShards];
    for (int s = 0; s < shards; ++s) {
        const pid_t pid = ::fork();
        if (pid == 0) {
            // Child: straight to _exit — never unwind into the
            // parent's stack, atexit handlers or stdio buffers.
            ::_exit(childMain(job, run, dir.c_str(), s, batch, parentPid,
                              before));
        }
        // fork() failure leaves a negative pid: the units that shard
        // would have claimed fall through to parent recovery below.
        pids[s] = pid;
    }
    // Reap the fleet. Abnormal exits are not fatal either way: the
    // merge below detects any unit a shard failed to publish and
    // re-executes it. With a deadline configured the parent polls
    // (WNOHANG) and fingerprints the share directory between polls; a
    // fleet whose directory footprint sits still for the whole
    // deadline is wedged — SIGKILL turns it into the already-handled
    // crashed-shard case.
    if (timeoutMs_ == 0) {
        for (int s = 0; s < shards; ++s) {
            if (pids[s] <= 0)
                continue;
            int status = 0;
            while (::waitpid(pids[s], &status, 0) < 0 && errno == EINTR) {
            }
        }
    } else {
        const auto deadline = std::chrono::milliseconds(timeoutMs_);
        const uint64_t tickUs =
            std::clamp<uint64_t>(timeoutMs_ * 1000 / 8, 5000, 100000);
        int alive = 0;
        for (int s = 0; s < shards; ++s)
            alive += pids[s] > 0;
        uint64_t lastSig = shareDirSignature(dir);
        // swan-lint: allow(nondet) watchdog liveness clock; gates only SIGKILL of hung shards, never any result
        auto lastChange = std::chrono::steady_clock::now();
        bool killed = false;
        while (alive > 0) {
            for (int s = 0; s < shards; ++s) {
                if (pids[s] <= 0)
                    continue;
                int status = 0;
                const pid_t r = ::waitpid(pids[s], &status, WNOHANG);
                if (r == pids[s] ||
                    (r < 0 && errno != EINTR && errno != EAGAIN)) {
                    pids[s] = -1;
                    --alive;
                    // An exit is progress: the survivors now own the
                    // dead shard's share of the remaining units.
                    // swan-lint: allow(nondet) watchdog progress stamp; see lastChange above
                    lastChange = std::chrono::steady_clock::now();
                }
            }
            if (alive == 0)
                break;
            const uint64_t sig = shareDirSignature(dir);
            // swan-lint: allow(nondet) watchdog deadline comparison; crash recovery reruns the units deterministically
            const auto now = std::chrono::steady_clock::now();
            if (sig != lastSig) {
                lastSig = sig;
                lastChange = now;
            } else if (!killed && now - lastChange >= deadline) {
                for (int s = 0; s < shards; ++s)
                    if (pids[s] > 0)
                        ::kill(pids[s], SIGKILL);
                killed = true;
                // Keep looping: the kills still have to be reaped.
            }
            ::usleep(useconds_t(tickUs));
        }
    }

    // Aggregate the children's cache counters so Results::cacheStats()
    // reflects the whole fleet, then drop the transport files. The
    // telemetry snapshots ride the same channel: each shard's spans
    // are absorbed into the parent's registry so one flush sees the
    // whole fleet.
    for (int s = 0; s < shards; ++s) {
        char path[3584];
        if (!statsPath(path, sizeof path, dir.c_str(), run, parentPid, s))
            continue;
        CacheStats d;
        if (readStats(path, &d))
            job.shareCache->absorbStats(d);
        ::unlink(path);
    }
    for (int s = 0; s < shards; ++s) {
        char path[3584];
        if (!obsPath(path, sizeof path, dir.c_str(), run, parentPid, s))
            continue;
        if (obs::Telemetry *t = obs::Telemetry::instance())
            t->absorbSnapshot(path);
        ::unlink(path);
    }

    // Deterministic merge in unit order; whatever a dead shard (or a
    // concurrent run's still-working shard) left unpublished is
    // re-executed right here — the parent still holds every captured
    // trace, so recovery output is bit-identical to what the missing
    // shard would have produced.
    std::vector<size_t> missing;
    {
        obs::Span merge(obs::Phase::Merge, uint64_t(job.units));
        for (size_t u = 0; u < job.units; ++u) {
            char path[3584];
            int shard = -1;
            if (claimPath(path, sizeof path, dir.c_str(), run,
                          batchToken(job, batch, u / batch)))
                shard = readClaimShard(path);
            if (!job.serve(job.arg, u, shard))
                missing.push_back(u);
        }
    }
    if (!missing.empty()) {
        obs::Span recovery(obs::Phase::Recovery, missing.size());
        CacheStats d;
        d.recoveredUnits = missing.size();
        job.shareCache->absorbStats(d);
        struct Remap
        {
            const BackendJob *job;
            const size_t *units;
        } remap{&job, missing.data()};
        BackendJob sub;
        sub.units = missing.size();
        sub.jobs = job.jobs;
        sub.arg = &remap;
        sub.execute = [](void *a, size_t i) {
            const auto *r = static_cast<const Remap *>(a);
            r->job->execute(r->job->arg, r->units[i]);
        };
        ThreadedBackend().run(sub);
    }

    // Release this run's claims (idempotent against a concurrent
    // identical run's parent doing the same).
    for (size_t b = 0; b < nBatches; ++b) {
        char path[3584];
        if (claimPath(path, sizeof path, dir.c_str(), run,
                      batchToken(job, batch, b)))
            ::unlink(path);
    }
}

#endif // SWAN_BACKEND_HAVE_FORK

} // namespace swan::sweep
