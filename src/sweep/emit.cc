#include "sweep/emit.hh"

#include <ostream>

#include "core/report.hh"

namespace swan::sweep
{

namespace
{

/**
 * The shared row schema. Every emitter renders exactly these columns,
 * so switching --format never changes which data is reported.
 */
const std::vector<std::string> &
columns()
{
    static const std::vector<std::string> cols = {
        "kernel", "impl",    "bits",     "core",    "ws",
        "instrs", "cycles",  "ipc",      "time_us", "l1_mpki",
        "llc_mpki", "power_w", "energy_mj"};
    return cols;
}

std::vector<std::string>
cells(const SweepResult &r)
{
    const auto &s = r.run.sim;
    return {r.point.spec->info.qualifiedName(),
            std::string(core::name(r.point.impl)),
            std::to_string(r.point.vecBits),
            r.point.configName,
            r.point.workingSetName,
            std::to_string(r.run.mix.total()),
            std::to_string(s.cycles),
            core::fmt(s.ipc, 3),
            core::fmt(s.timeSec * 1e6, 2),
            core::fmt(s.l1Mpki, 2),
            core::fmt(s.llcMpki, 2),
            core::fmt(s.powerW, 3),
            core::fmt(s.energyJ * 1e3, 4)};
}

class TableEmitter : public Emitter
{
  public:
    TableEmitter() : table_(columns()) {}

    void point(std::ostream &, const SweepResult &r) override
    {
        table_.addRow(cells(r));
    }
    void end(std::ostream &os) override { table_.print(os); }

  private:
    core::Table table_;
};

class CsvEmitter : public Emitter
{
  public:
    void
    begin(std::ostream &os) override
    {
        writeRow(os, columns());
    }
    void
    point(std::ostream &os, const SweepResult &r) override
    {
        writeRow(os, cells(r));
    }

  private:
    static void
    writeRow(std::ostream &os, const std::vector<std::string> &row)
    {
        for (size_t i = 0; i < row.size(); ++i)
            os << (i ? "," : "") << row[i];
        os << "\n";
    }
};

class JsonLinesEmitter : public Emitter
{
  public:
    void
    point(std::ostream &os, const SweepResult &r) override
    {
        const auto &cols = columns();
        const auto vals = cells(r);
        os << "{";
        for (size_t i = 0; i < cols.size(); ++i) {
            os << (i ? "," : "") << "\"" << cols[i] << "\":";
            // The first five columns are identifiers; the rest numeric.
            if (i < 5)
                os << "\"" << vals[i] << "\"";
            else
                os << vals[i];
        }
        os << "}\n";
    }
};

} // namespace

bool
formatForName(const std::string &name, Format *out)
{
    if (name == "table")
        *out = Format::Table;
    else if (name == "csv")
        *out = Format::Csv;
    else if (name == "jsonl")
        *out = Format::JsonLines;
    else
        return false;
    return true;
}

std::unique_ptr<Emitter>
makeEmitter(Format format)
{
    switch (format) {
      case Format::Csv: return std::make_unique<CsvEmitter>();
      case Format::JsonLines: return std::make_unique<JsonLinesEmitter>();
      case Format::Table:
      default: return std::make_unique<TableEmitter>();
    }
}

void
emitResults(std::ostream &os, const std::vector<SweepResult> &results,
            Format format)
{
    auto emitter = makeEmitter(format);
    emitter->begin(os);
    for (const auto &r : results)
        emitter->point(os, r);
    emitter->end(os);
}

std::string
cacheSummary(const CacheStats &stats)
{
    std::string s = "cache: " + std::to_string(stats.hits) +
                    " memory hits, " + std::to_string(stats.diskHits) +
                    " disk hits, " + std::to_string(stats.misses) +
                    " misses, " + std::to_string(stats.stores) +
                    " stored";
    if (stats.traceHits || stats.traceStores)
        s += "; traces: " + std::to_string(stats.traceHits) +
             " disk hits, " + std::to_string(stats.traceStores) +
             " stored";
    if (stats.staleClaimsSwept || stats.recoveredUnits)
        s += "; sharded: " + std::to_string(stats.staleClaimsSwept) +
             " stale claims swept, " +
             std::to_string(stats.recoveredUnits) + " units recovered";
    return s;
}

} // namespace swan::sweep
