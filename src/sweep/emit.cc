#include "sweep/emit.hh"

#include <ostream>

#include "core/report.hh"

namespace swan::sweep
{

namespace
{

/**
 * The shared row schema. Every emitter renders exactly these columns,
 * so switching --format never changes which data is reported. The
 * fault column appears only when the sweep has a fault axis (some
 * point carries a scenario) — clean sweeps keep the historic schema
 * byte-for-byte.
 */
std::vector<std::string>
columns(bool with_fault)
{
    std::vector<std::string> cols = {"kernel", "impl", "bits", "core",
                                     "ws"};
    if (with_fault)
        cols.push_back("fault");
    const char *rest[] = {"instrs",   "cycles",  "ipc",      "time_us",
                          "l1_mpki",  "llc_mpki", "power_w", "energy_mj"};
    cols.insert(cols.end(), std::begin(rest), std::end(rest));
    return cols;
}

/** Identifier (string-typed) column count; the rest are numeric. */
size_t
idColumns(bool with_fault)
{
    return with_fault ? 6 : 5;
}

std::vector<std::string>
cells(const SweepResult &r, bool with_fault)
{
    const auto &s = r.run.sim;
    std::vector<std::string> row = {r.point.spec->info.qualifiedName(),
                                    std::string(core::name(r.point.impl)),
                                    std::to_string(r.point.vecBits),
                                    r.point.configName,
                                    r.point.workingSetName};
    if (with_fault)
        row.push_back(r.point.faultName());
    const std::string rest[] = {std::to_string(r.run.mix.total()),
                                std::to_string(s.cycles),
                                core::fmt(s.ipc, 3),
                                core::fmt(s.timeSec * 1e6, 2),
                                core::fmt(s.l1Mpki, 2),
                                core::fmt(s.llcMpki, 2),
                                core::fmt(s.powerW, 3),
                                core::fmt(s.energyJ * 1e3, 4)};
    row.insert(row.end(), std::begin(rest), std::end(rest));
    return row;
}

class TableEmitter : public Emitter
{
  public:
    explicit TableEmitter(bool with_fault)
        : withFault_(with_fault), table_(columns(with_fault))
    {
    }

    void point(std::ostream &, const SweepResult &r) override
    {
        table_.addRow(cells(r, withFault_));
    }
    void end(std::ostream &os) override { table_.print(os); }

  private:
    bool withFault_;
    core::Table table_;
};

class CsvEmitter : public Emitter
{
  public:
    explicit CsvEmitter(bool with_fault) : withFault_(with_fault) {}

    void
    begin(std::ostream &os) override
    {
        writeRow(os, columns(withFault_));
    }
    void
    point(std::ostream &os, const SweepResult &r) override
    {
        writeRow(os, cells(r, withFault_));
    }

  private:
    static void
    writeRow(std::ostream &os, const std::vector<std::string> &row)
    {
        for (size_t i = 0; i < row.size(); ++i)
            os << (i ? "," : "") << row[i];
        os << "\n";
    }

    bool withFault_;
};

class JsonLinesEmitter : public Emitter
{
  public:
    explicit JsonLinesEmitter(bool with_fault) : withFault_(with_fault) {}

    void
    point(std::ostream &os, const SweepResult &r) override
    {
        const auto cols = columns(withFault_);
        const auto vals = cells(r, withFault_);
        const size_t nid = idColumns(withFault_);
        os << "{";
        for (size_t i = 0; i < cols.size(); ++i) {
            os << (i ? "," : "") << "\"" << cols[i] << "\":";
            // Identifier columns are strings; the rest numeric.
            if (i < nid)
                os << "\"" << vals[i] << "\"";
            else
                os << vals[i];
        }
        os << "}\n";
    }

  private:
    bool withFault_;
};

} // namespace

bool
formatForName(const std::string &name, Format *out)
{
    if (name == "table")
        *out = Format::Table;
    else if (name == "csv")
        *out = Format::Csv;
    else if (name == "jsonl")
        *out = Format::JsonLines;
    else
        return false;
    return true;
}

std::unique_ptr<Emitter>
makeEmitter(Format format, bool fault_column)
{
    switch (format) {
      case Format::Csv:
        return std::make_unique<CsvEmitter>(fault_column);
      case Format::JsonLines:
        return std::make_unique<JsonLinesEmitter>(fault_column);
      case Format::Table:
      default:
        return std::make_unique<TableEmitter>(fault_column);
    }
}

bool
anyFaulted(const std::vector<SweepResult> &results)
{
    for (const auto &r : results)
        if (r.point.fault().enabled())
            return true;
    return false;
}

void
emitResults(std::ostream &os, const std::vector<SweepResult> &results,
            Format format)
{
    auto emitter = makeEmitter(format, anyFaulted(results));
    emitter->begin(os);
    for (const auto &r : results)
        emitter->point(os, r);
    emitter->end(os);
}

std::string
cacheSummary(const CacheStats &stats)
{
    std::string s = "cache: " + std::to_string(stats.hits) +
                    " memory hits, " + std::to_string(stats.diskHits) +
                    " disk hits, " + std::to_string(stats.misses) +
                    " misses, " + std::to_string(stats.stores) +
                    " stored";
    if (stats.traceHits || stats.traceStores || stats.traceRamHits) {
        s += "; traces: " + std::to_string(stats.traceHits) +
             " disk hits, " + std::to_string(stats.traceStores) +
             " stored";
        if (stats.traceRamHits)
            s += ", " + std::to_string(stats.traceRamHits) + " RAM hits";
    }
    if (stats.farHits || stats.farMisses || stats.farStores)
        s += "; far: " + std::to_string(stats.farHits) + " hits, " +
             std::to_string(stats.farMisses) + " misses, " +
             std::to_string(stats.farStores) + " stored";
    if (stats.farPromotions || stats.ramPromotions || stats.ramDemotions)
        s += "; tiering: " + std::to_string(stats.farPromotions) +
             " promoted to disk, " + std::to_string(stats.ramPromotions) +
             " pinned in RAM, " + std::to_string(stats.ramDemotions) +
             " RAM demotions";
    if (stats.staleClaimsSwept || stats.recoveredUnits)
        s += "; sharded: " + std::to_string(stats.staleClaimsSwept) +
             " stale claims swept, " +
             std::to_string(stats.recoveredUnits) + " units recovered";
    if (stats.corruptEntriesQuarantined)
        s += "; " + std::to_string(stats.corruptEntriesQuarantined) +
             " corrupt entries quarantined";
    return s;
}

} // namespace swan::sweep
