#include "sweep/grid.hh"

#include <algorithm>
#include <cctype>
#include <deque>
#include <mutex>
#include <stdexcept>

#include "core/registry.hh"

namespace swan::sweep
{

namespace
{

/**
 * Process-wide fault-scenario table behind SweepPoint::faultId.
 * Everything is lazily constructed and id 0 (clean) is served from
 * statics that never touch it, so a clean expansion performs zero
 * heap allocation here — the same capture-time heap-layout contract
 * that keeps sizeof(SweepPoint) fixed (see grid.hh). A deque gives
 * stable references, so accessors can return a reference that
 * outlives the lock while a concurrent expand() interns new entries.
 */
struct FaultEntry
{
    std::string name;
    sim::FaultSpec spec;
};

std::mutex &
faultTableMutex()
{
    static std::mutex m;
    return m;
}

std::deque<FaultEntry> &
faultTable()
{
    static std::deque<FaultEntry> t;
    return t;
}

const FaultEntry &
cleanFault()
{
    static const FaultEntry e{"none", sim::FaultSpec{}};
    return e;
}

/** Parse a Figure 5(b) name like "4W-2V"; false if not of that shape. */
bool
parseScalability(const std::string &name, int *ways, int *vunits)
{
    size_t i = 0;
    int w = 0, v = 0;
    // Valid values are <= 16; more than two digits cannot be valid and
    // unbounded accumulation would overflow on hostile CLI input.
    while (i < name.size() && std::isdigit(uint8_t(name[i]))) {
        if (i >= 2)
            return false;
        w = w * 10 + (name[i++] - '0');
    }
    if (i == 0 || i + 1 >= name.size() || name[i] != 'W' ||
        name[i + 1] != '-')
        return false;
    i += 2;
    const size_t vstart = i;
    while (i < name.size() && std::isdigit(uint8_t(name[i]))) {
        if (i - vstart >= 2)
            return false;
        v = v * 10 + (name[i++] - '0');
    }
    if (i == vstart || i + 1 != name.size() || name[i] != 'V')
        return false;
    if (w <= 0 || v <= 0 || w > 16 || v > 16)
        return false;
    *ways = w;
    *vunits = v;
    return true;
}

} // namespace

const sim::FaultSpec &
SweepPoint::fault() const
{
    if (faultId == 0)
        return cleanFault().spec;
    std::lock_guard<std::mutex> lock(faultTableMutex());
    return faultTable()[faultId - 1].spec;
}

const std::string &
SweepPoint::faultName() const
{
    if (faultId == 0)
        return cleanFault().name;
    std::lock_guard<std::mutex> lock(faultTableMutex());
    return faultTable()[faultId - 1].name;
}

uint16_t
internFault(const std::string &name, const sim::FaultSpec &spec)
{
    if (!spec.enabled() && (name.empty() || name == "none"))
        return 0;
    const uint64_t fp = spec.fingerprint();
    std::lock_guard<std::mutex> lock(faultTableMutex());
    auto &t = faultTable();
    for (size_t i = 0; i < t.size(); ++i)
        if (t[i].name == name && t[i].spec.fingerprint() == fp)
            return uint16_t(i + 1);
    if (t.size() >= 0xFFFF)
        throw std::length_error("fault-scenario table overflow");
    t.push_back({name, spec});
    return uint16_t(t.size());
}

bool
configForName(const std::string &name, int vec_bits, sim::CoreConfig *out)
{
    if (name == "prime")
        *out = sim::primeConfig();
    else if (name == "gold")
        *out = sim::goldConfig();
    else if (name == "silver")
        *out = sim::silverConfig();
    else if (name == "wider")
        *out = sim::widerVectorConfig(vec_bits);
    else {
        int ways = 0, vunits = 0;
        if (!parseScalability(name, &ways, &vunits))
            return false;
        *out = sim::scalabilityConfig(ways, vunits);
    }
    return true;
}

bool
workingSetForName(const std::string &name, core::Options *out)
{
    if (name == "default") {
        *out = core::Options::fromEnv();
    } else if (name == "full") {
        *out = core::Options::full();
    } else if (name == "tiny") {
        core::Options o;
        o.imageWidth = 96;
        o.imageHeight = 48;
        o.audioSamples = 1024;
        o.bufferBytes = 4 * 1024;
        o.gemmM = 32;
        o.gemmN = 32;
        o.gemmK = 32;
        o.videoBlocks = 16;
        *out = o;
    } else if (name == "scalability") {
        *out = scalabilityOptions(core::Options::fromEnv());
    } else {
        return false;
    }
    return true;
}

core::Options
scalabilityOptions(core::Options o)
{
    // Image kernels use up to 8 B/px across input+output, so 96x48
    // stays inside the 64 KiB L1 once warmed.
    o.imageWidth = std::min(o.imageWidth, 96);
    o.imageHeight = std::min(o.imageHeight, 48);
    o.bufferBytes = std::min(o.bufferBytes, 16 * 1024);
    o.audioSamples = std::min(o.audioSamples, 4096);
    o.videoBlocks = std::min(o.videoBlocks, 16);
    return o;
}

std::vector<SweepPoint>
expand(const SweepSpec &spec, std::string *err)
{
    const auto fail = [err](std::string msg) {
        if (err)
            *err = std::move(msg);
        return std::vector<SweepPoint>{};
    };
    const auto &reg = core::Registry::instance();

    // Resolve the kernel axis first so filter errors surface by name.
    std::vector<const core::KernelSpec *> kernels;
    if (!spec.kernels.names.empty()) {
        for (const auto &name : spec.kernels.names) {
            const auto *k = reg.find(name);
            if (!k)
                return fail("unknown kernel '" + name + "'");
            kernels.push_back(k);
        }
    } else {
        for (const auto &k : reg.kernels())
            kernels.push_back(&k);
    }
    kernels.erase(
        std::remove_if(
            kernels.begin(), kernels.end(),
            [&spec](const core::KernelSpec *k) {
                if (!spec.kernels.library.empty() &&
                    k->info.symbol != spec.kernels.library)
                    return true;
                if (spec.kernels.widerOnly && !k->info.widerWidths)
                    return true;
                // An explicit name list opts into study kernels.
                if (spec.kernels.names.empty() && k->info.excluded &&
                    !spec.kernels.includeExcluded)
                    return true;
                return false;
            }),
        kernels.end());
    if (kernels.empty())
        return fail("sweep grid matches no kernels");
    if (spec.impls.empty() || spec.vecBits.empty() ||
        spec.configs.empty() || spec.workingSets.empty())
        return fail("sweep grid has an empty axis");

    for (int bits : spec.vecBits)
        if (bits != 128 && bits != 256 && bits != 512 && bits != 1024)
            return fail("vector width must be 128/256/512/1024");

    std::vector<core::Options> wsOptions;
    for (const auto &ws : spec.workingSets) {
        core::Options o;
        if (!workingSetForName(ws, &o))
            return fail("unknown working set '" + ws + "'");
        wsOptions.push_back(o);
    }

    // Fault axis: an empty list is the historic clean grid — note the
    // clean path neither interns nor allocates (faultIds stays a
    // never-allocated empty vector), preserving the pre-fault heap
    // sequence ahead of capture. Otherwise every entry is validated
    // here so a typo'd scenario fails the whole expand with the
    // catalog attached (see FaultSpec::parse), before any capture or
    // simulation runs.
    std::vector<uint16_t> faultIds;
    for (const auto &fname : spec.faults) {
        sim::FaultSpec f;
        std::string ferr;
        if (!sim::FaultSpec::parse(fname, &f, &ferr))
            return fail(ferr);
        faultIds.push_back(internFault(fname, f));
    }
    const size_t faultCount = faultIds.empty() ? 1 : faultIds.size();

    std::vector<SweepPoint> points;
    for (const auto *k : kernels) {
        for (size_t wi = 0; wi < spec.workingSets.size(); ++wi) {
            for (size_t fi = 0; fi < faultCount; ++fi) {
                for (const auto &cfgName : spec.configs) {
                    for (core::Impl impl : spec.impls) {
                        bool emittedScalar = false;
                        for (int bits : spec.vecBits) {
                            // Scalar/Auto code has no width axis.
                            if (impl != core::Impl::Neon) {
                                if (emittedScalar)
                                    continue;
                                emittedScalar = true;
                                bits = 128;
                            } else if (bits != 128 &&
                                       !k->info.widerWidths) {
                                continue;
                            }
                            SweepPoint p;
                            p.index = points.size();
                            p.spec = k;
                            p.impl = impl;
                            p.vecBits = bits;
                            p.configName = cfgName;
                            if (!configForName(cfgName, bits, &p.config))
                                return fail("unknown core config '" +
                                            cfgName + "'");
                            p.workingSetName = spec.workingSets[wi];
                            p.options = wsOptions[wi];
                            p.faultId =
                                faultIds.empty() ? 0 : faultIds[fi];
                            points.push_back(std::move(p));
                        }
                    }
                }
            }
        }
    }
    if (points.empty())
        return fail("sweep grid expands to no runnable points");
    return points;
}

} // namespace swan::sweep
