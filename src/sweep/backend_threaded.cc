/**
 * @file
 * ThreadedBackend: the sweep engine's default in-process executor —
 * the two-phase scheduler's original work-stealing pool, re-homed
 * behind the ExecutionBackend seam with zero behavior change.
 */

#include "sweep/backend.hh"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <pthread.h>
#include <sys/mman.h>
#define SWAN_POOL_HAVE_PTHREAD 1
#endif

namespace swan::sweep
{

namespace
{

/**
 * One worker's mutex-guarded ring of unit indices. The ring storage
 * is a caller-provided slice of the pool's mmap arena — a WorkQueue
 * never touches malloc.
 */
struct WorkQueue
{
    std::mutex mu;
    size_t *ring = nullptr; //!< capacity cap entries, externally owned
    size_t cap = 0;
    size_t head = 0;
    size_t count = 0;

    void
    pushBack(size_t v)
    {
        std::lock_guard<std::mutex> lock(mu);
        ring[(head + count) % cap] = v;
        ++count;
    }

    bool
    popFront(size_t *out)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (count == 0)
            return false;
        *out = ring[head];
        head = (head + 1) % cap;
        --count;
        return true;
    }

    bool
    stealBack(size_t *out)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (count == 0)
            return false;
        --count;
        *out = ring[(head + count) % cap];
        return true;
    }

    size_t
    size()
    {
        std::lock_guard<std::mutex> lock(mu);
        return count;
    }
};

/**
 * Work-stealing pool for the simulation phase.
 *
 * The threads are created once per sweep, strictly AFTER the last
 * capture (the scheduler constructs the backend, and the backend this
 * pool, only then), and exit when the sweep ends. That placement is
 * load-bearing for determinism: thread stacks (and the worker arenas
 * glibc creates at each worker's first malloc) are jobs-count-many
 * mappings, and captured workload buffers above malloc's mmap
 * threshold are placed in whatever address-space layout exists at
 * capture time — spawning before captures would make those addresses,
 * and therefore the address-sensitive simulated cycle counts, a
 * function of `--jobs`. Workers never run on the calling thread:
 * simulation must allocate from worker arenas only, keeping the
 * capture thread's heap evolution a pure function of the capture
 * sequence across sweeps.
 *
 * For the same contract, the pool's own jobs-sized state (queues,
 * rings, worker slots, thread handles) lives in one anonymous mmap
 * region rather than on the heap, and on POSIX the threads are raw
 * pthreads fed from those slots: mmap keeps the pool's footprint
 * invisible to malloc, and std::thread is avoided because its invoke
 * state is parent-allocated but child-freed — a cross-thread free
 * whose chunks return to the parent's arena in thread-exit order,
 * i.e. nondeterministically.
 */
class WorkerPool
{
  public:
    /**
     * @param jobs  worker threads (>= 1)
     * @param cap   upper bound on units per run() batch
     * @param fn    unit executor; must not throw
     * @param ctx   opaque pointer handed back to @p fn
     */
    WorkerPool(int jobs, size_t cap, void (*fn)(void *, size_t),
               void *ctx)
        : execute_(fn), ctx_(ctx), jobs_(size_t(jobs))
    {
        cap = std::max<size_t>(cap, 1);
        const size_t queuesOff = 0;
        const size_t ringsOff =
            alignUp(queuesOff + jobs_ * sizeof(WorkQueue), 64);
        const size_t slotsOff =
            alignUp(ringsOff + jobs_ * cap * sizeof(size_t), 64);
        const size_t threadsOff =
            alignUp(slotsOff + jobs_ * sizeof(Slot), 64);
        const size_t total = threadsOff + jobs_ * sizeof(ThreadHandle);
        arena_ = mapArena(total);

        queues_ = reinterpret_cast<WorkQueue *>(arena_ + queuesOff);
        auto *rings = reinterpret_cast<size_t *>(arena_ + ringsOff);
        slots_ = reinterpret_cast<Slot *>(arena_ + slotsOff);
        threads_ = reinterpret_cast<ThreadHandle *>(arena_ + threadsOff);
        arenaBytes_ = total;

        for (size_t t = 0; t < jobs_; ++t) {
            WorkQueue *q = new (&queues_[t]) WorkQueue();
            q->ring = rings + t * cap;
            q->cap = cap;
            new (&slots_[t]) Slot{this, int(t)};
        }
        for (size_t t = 0; t < jobs_; ++t) {
            try {
                spawn(&threads_[t], &slots_[t]);
            } catch (...) {
                // Tear down the workers already running before the
                // members they block on are destroyed.
                shutdown(t);
                throw;
            }
        }
    }

    ~WorkerPool() { shutdown(jobs_); }

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Run units [0, n); blocks until every one has executed. */
    void
    run(size_t n)
    {
        if (n == 0)
            return;
        {
            std::lock_guard<std::mutex> lock(mu_);
            // Deal indices round-robin so initial shares interleave
            // the grid (adjacent groups of one kernel tend to cost
            // the same).
            for (size_t i = 0; i < n; ++i)
                queues_[i % jobs_].pushBack(i);
            remaining_ = n;
            ++generation_;
        }
        wake_.notify_all();
        std::unique_lock<std::mutex> lock(mu_);
        done_.wait(lock, [this] { return remaining_ == 0; });
    }

  private:
    struct Slot
    {
        WorkerPool *pool;
        int self;
    };

    /** Stop and join the first @p spawned workers, then free state. */
    void
    shutdown(size_t spawned)
    {
        // Workers exit strictly in worker-index order (each waits for
        // its turn, and the next turn is granted only after the
        // previous thread fully terminated): thread teardown releases
        // allocator state back to shared lists, and an exit race would
        // leave those lists — and therefore the next sweep's capture
        // addresses — ordered by scheduling luck.
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
            exitTurn_ = 0;
        }
        wake_.notify_all();
        for (size_t t = 0; t < spawned; ++t) {
            join(&threads_[t]);
            std::lock_guard<std::mutex> lock(mu_);
            exitTurn_ = t + 1;
            wake_.notify_all();
        }
        for (size_t t = 0; t < jobs_; ++t)
            queues_[t].~WorkQueue();
        unmapArena(arena_, arenaBytes_);
    }

#ifdef SWAN_POOL_HAVE_PTHREAD
    using ThreadHandle = pthread_t;

    static void
    spawn(ThreadHandle *h, Slot *slot)
    {
        if (pthread_create(h, nullptr, &WorkerPool::entry, slot) != 0)
            throw std::runtime_error("sweep: cannot spawn worker");
    }
    static void join(ThreadHandle *h) { pthread_join(*h, nullptr); }
#else
    using ThreadHandle = std::thread;

    static void
    spawn(ThreadHandle *h, Slot *slot)
    {
        new (h) std::thread(&WorkerPool::entry, slot);
    }
    static void
    join(ThreadHandle *h)
    {
        h->join();
        h->~thread();
    }
#endif

    static size_t
    alignUp(size_t v, size_t a)
    {
        return (v + a - 1) / a * a;
    }

    uint8_t *
    mapArena(size_t n)
    {
#ifdef SWAN_POOL_HAVE_PTHREAD
        void *p = ::mmap(nullptr, n, PROT_READ | PROT_WRITE,
                         MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        if (p != MAP_FAILED) {
            arenaMapped_ = true;
            return static_cast<uint8_t *>(p);
        }
#endif
        return static_cast<uint8_t *>(::operator new(n));
    }

    void
    unmapArena(uint8_t *p, size_t n)
    {
#ifdef SWAN_POOL_HAVE_PTHREAD
        if (arenaMapped_) {
            ::munmap(p, n);
            return;
        }
#endif
        (void)n;
        ::operator delete(p);
    }

    static void *
    entry(void *arg)
    {
        auto *slot = static_cast<Slot *>(arg);
        slot->pool->workerLoop(slot->self);
        return nullptr;
    }

    void
    workerLoop(int self)
    {
        uint64_t seen = 0;
        while (true) {
            {
                std::unique_lock<std::mutex> lock(mu_);
                wake_.wait(lock, [&] {
                    return stop_ || generation_ != seen;
                });
                if (stop_) {
                    // Serialized teardown: see the destructor.
                    wake_.wait(lock, [&] {
                        return exitTurn_ == size_t(self);
                    });
                    return;
                }
                seen = generation_;
            }
            drain(self);
        }
    }

    void
    drain(int self)
    {
        size_t gi;
        while (true) {
            if (queues_[size_t(self)].popFront(&gi)) {
                finish(gi);
                continue;
            }
            // Own queue drained: steal from the fullest victim.
            int victim = -1;
            size_t most = 0;
            for (int v = 0; v < int(jobs_); ++v) {
                if (v == self)
                    continue;
                const size_t n = queues_[size_t(v)].size();
                if (n > most) {
                    most = n;
                    victim = v;
                }
            }
            // No queue had work at scan time: batch over for this
            // worker (nobody pushes mid-batch, so emptiness is stable
            // once observed).
            if (victim < 0)
                return;
            // Lost the steal race: rescan, another victim may still
            // hold work.
            if (!queues_[size_t(victim)].stealBack(&gi))
                continue;
            finish(gi);
        }
    }

    void
    finish(size_t gi)
    {
        // Must not throw; errors are recorded by the callback itself.
        execute_(ctx_, gi);
        std::lock_guard<std::mutex> lock(mu_);
        if (--remaining_ == 0)
            done_.notify_all();
    }

    void (*execute_)(void *, size_t);
    void *ctx_;
    size_t jobs_;
    uint8_t *arena_ = nullptr;
    size_t arenaBytes_ = 0;
    bool arenaMapped_ = false;
    WorkQueue *queues_ = nullptr;
    Slot *slots_ = nullptr;
    ThreadHandle *threads_ = nullptr;
    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable done_;
    uint64_t generation_ = 0;
    size_t remaining_ = 0;
    size_t exitTurn_ = 0;
    bool stop_ = false;
};

} // namespace

void
ThreadedBackend::run(const BackendJob &job)
{
    if (job.units == 0)
        return;
    // The scheduler resolves the job count; re-clamp to the unit count
    // here because sub-jobs (sharded recovery) can be narrower.
    const int jobs = std::max(
        1, int(std::min<size_t>(size_t(std::max(1, job.jobs)),
                                job.units)));
    WorkerPool pool(jobs, job.units, job.execute, job.arg);
    pool.run(job.units);
}

} // namespace swan::sweep
