/**
 * @file
 * Sweep result cache — a unified three-tier hierarchy. An experiment
 * point is keyed by (kernel qualified name, implementation, vector
 * width, core-config fingerprint, working-set fingerprint, warm-up
 * passes), and a finished KernelRun is served to any later point with
 * the same key without re-simulation:
 *
 *   T0  RAM      in-process result map + a fixed-slot pinned-trace
 *                memo (hot packed traces held decoded-ready in
 *                anonymous mmap, budgeted in bytes)
 *   T1  disk     one `.swr` / `.swtp` file per key in the local cache
 *                directory (SWAN_SWEEP_CACHE_DIR)
 *   T2  far      an optional shared/far directory (SWAN_CACHE_FAR_DIR)
 *                — the slow, durable tier a sweep service would share
 *                across hosts. Far hits are write-through-promoted to
 *                T1; stores write through to T2 (parent process only).
 *
 * Placement is driven by per-entry *hotness*: a decayed access count
 * bumped only by lookup traffic (never by wall-clock or file mtimes),
 * held in a side table keyed by the 64-bit key hash so CacheKey itself
 * never grows. Entries promote upward on their Nth hit (hot packed
 * traces are pinned in RAM up to the byte budget) and every capped
 * tier evicts cold-first: eviction order is (hotness asc, first-lookup
 * order asc, name asc) — a pure function of the lookup history, so a
 * given directory state and lookup sequence always prunes the same way
 * on every platform. See docs/cache.md for the tier diagram and the
 * full promotion/demotion policy.
 *
 * Precision of the contract: capture and simulation are deterministic
 * given the key *and* the process's heap layout at capture time —
 * traces carry real buffer addresses and the cache models are
 * address-sensitive. The scheduler serializes captures so the layout
 * is a pure function of which captures run and in what order; a
 * partially warm cache therefore changes the layout seen by the
 * remaining points, which can shift their absolute cycle counts by
 * ~0.1% relative to a fully cold run. Every stored result is a valid
 * simulation of its point; byte-identity is guaranteed across --jobs
 * values, backends, shard counts, memo budgets and far-dir on/off,
 * across reruns of the same command against the same cache state, and
 * between a cold run and a fully warm replay of it. The promotion
 * machinery honors the same rule: pinned traces live in anonymous
 * mmap (invisible to malloc) and the RAM-memo bookkeeping is
 * fixed-slot, so tier transitions never perturb the capture heap.
 */

#ifndef SWAN_SWEEP_CACHE_HH
#define SWAN_SWEEP_CACHE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/runner.hh"
#include "swan/internal/contracts.hh"
#include "sweep/grid.hh"
#include "trace/packed.hh"
#include "trace/stats.hh"

namespace swan::sweep
{

/** Order-sensitive FNV-1a fingerprint of every timing-relevant field. */
uint64_t fingerprint(const sim::CoreConfig &cfg);
uint64_t fingerprint(const core::Options &opts);

/** FNV-1a seed shared by every 64-bit hash in the sweep engine. */
constexpr uint64_t kFnv64Seed = 1469598103934665603ull;

/** Continue an FNV-1a hash over the 8 bytes of @p v (little-endian
 *  byte order, same constants as the cache-key hashes). Seed with
 *  kFnv64Seed. Used to derive the sharded backend's content-stable
 *  unit/run tokens from cache-key hashes. */
uint64_t fnvMix64(uint64_t h, uint64_t v);

/**
 * Parse a non-negative decimal byte count (the SWAN_* budget/cap
 * variables and their CLI flags share this one parser so format rules
 * cannot drift). Rejects negatives — strtoull alone would wrap "-1"
 * to 2^64-1. @return false on null/empty/unparsable input, leaving
 * @p out untouched.
 */
bool parseByteCount(const char *s, uint64_t *out);

/** Identity of one experiment point's result. Capture-phase type —
 *  size pinned in swan/internal/layout.hh. */
struct SWAN_CAPTURE_TYPE CacheKey
{
    std::string kernel;     //!< qualified name, e.g. "ZL/adler32"
    core::Impl impl = core::Impl::Neon;
    int vecBits = 128;
    uint64_t configFp = 0;
    uint64_t optionsFp = 0;
    int warmupPasses = 1;
    /**
     * 32-bit fold of sim::FaultSpec::fingerprint() (keyFor keeps it
     * nonzero for any enabled scenario); 0 = clean. Nonzero values
     * join the hash, so faulted and clean points can never collide in
     * either tier, while clean keys (and their on-disk file stems and
     * bodies) are unchanged from pre-fault builds. uint32_t in what
     * was padding after warmupPasses: memory-tier nodes are allocated
     * while a sweep is still capturing, so sizeof(CacheKey) must not
     * grow (the same capture-time heap-layout contract as
     * SweepPoint::faultId). Tier/hotness state lives in side tables
     * keyed by hash() for the same reason.
     */
    uint32_t faultFp = 0;

    bool operator==(const CacheKey &o) const
    {
        return kernel == o.kernel && impl == o.impl &&
               vecBits == o.vecBits && configFp == o.configFp &&
               optionsFp == o.optionsFp &&
               warmupPasses == o.warmupPasses && faultFp == o.faultFp;
    }

    uint64_t hash() const;
    /** 16-hex-digit form of hash(); the on-disk file stem. */
    std::string hex() const;
};

CacheKey keyFor(const SweepPoint &point, int warmup_passes);

/**
 * Identity of one captured trace: the capture-relevant subset of
 * CacheKey (no core config, no warm-up count — a trace is replayed
 * against any number of configurations).
 */
struct TraceKey
{
    std::string kernel;     //!< qualified name, e.g. "ZL/adler32"
    core::Impl impl = core::Impl::Neon;
    int vecBits = 128;
    uint64_t optionsFp = 0;

    bool operator==(const TraceKey &o) const
    {
        return kernel == o.kernel && impl == o.impl &&
               vecBits == o.vecBits && optionsFp == o.optionsFp;
    }

    uint64_t hash() const;
    /** 16-hex-digit form of hash(); the on-disk file stem. */
    std::string hex() const;
};

TraceKey traceKeyFor(const SweepPoint &point);

/** Aggregate counters for one cache over its lifetime. */
struct CacheStats
{
    uint64_t hits = 0;       //!< served from the in-process map (T0)
    uint64_t diskHits = 0;   //!< served from the local disk tier (T1)
    uint64_t misses = 0;     //!< absent everywhere; caller simulates
    uint64_t stores = 0;     //!< results inserted

    // Packed-trace tier.
    uint64_t traceHits = 0;   //!< capture skipped, trace read off disk
    uint64_t traceMisses = 0; //!< caller captures (and stores)
    uint64_t traceStores = 0; //!< packed traces written
    /** Traces served from the T0 pinned-trace memo (no disk read, no
     *  payload re-validation — the hot-traffic fast path). */
    uint64_t traceRamHits = 0;

    /** T1 entries pruned by the size cap (cold-first, .swr + .swtp) —
     *  the disk tier's demotions. */
    uint64_t evictions = 0;

    // Tier-transition traffic (see docs/cache.md).
    uint64_t farHits = 0;       //!< served from the far tier (T2)
    uint64_t farMisses = 0;     //!< probes that reached T2 and missed
    uint64_t farStores = 0;     //!< entries published to T2
    /** T2 hits write-through-promoted into the local disk tier. */
    uint64_t farPromotions = 0;
    /** Entries promoted into RAM: packed traces pinned on their Nth
     *  hit under the T0 byte budget. */
    uint64_t ramPromotions = 0;
    /** T0 evictions: pinned traces unpinned (budget pressure) and
     *  result-memo entries dropped under the RAM cap, cold-first. */
    uint64_t ramDemotions = 0;

    /** Structurally corrupt on-disk entries (bad magic, truncation,
     *  checksum mismatch) renamed to `<name>.quarantined` and served
     *  as misses — local and far tier combined. A wrong-but-well-formed
     *  entry (key echo mismatch under a hash collision) stays a plain
     *  miss — quarantine is for damaged bytes, not foreign entries. */
    uint64_t corruptEntriesQuarantined = 0;

    // Sharded-backend bookkeeping (parent-side; zero for in-process
    // runs). Surfaced here because the shared cache directory is where
    // the claim protocol lives and absorbStats() is how fleet counters
    // already travel.
    /** Stale `.claim`/`.stats`/`.obsnap` files (dead-pid owners) swept
     *  at the start of a sharded run. */
    uint64_t staleClaimsSwept = 0;
    /** Work units re-executed by the parent because the claiming
     *  shard died before publishing (crash recovery). */
    uint64_t recoveredUnits = 0;

    uint64_t total() const { return hits + diskHits + farHits + misses; }
};

/**
 * The three-tier result cache (see the file comment for the tier
 * diagram). Disk and far entries are validated against the full key
 * (not just its hash) and ignored on any mismatch or parse error, so a
 * stale or corrupt cache directory degrades to a miss, never to a
 * wrong result. Structurally damaged entries (truncation, checksum
 * mismatch, bad magic) are additionally renamed to `<name>.quarantined`
 * — counted in CacheStats::corruptEntriesQuarantined — so a bad sector
 * cannot cost a validation pass on every future lookup of that key.
 */
class ResultCache
{
  public:
    /** Hits after which a packed trace is pinned into the T0 memo. */
    static constexpr uint32_t kPinHits = 2;
    /** Lookup count between hotness decays (every counter halves),
     *  so stale popularity ages out as a function of traffic, not
     *  time. */
    static constexpr uint64_t kDecayPeriod = 1024;
    /** Fixed slot count of the T0 pinned-trace memo. Fixed so pin and
     *  unpin never touch malloc (the capture-heap contract). */
    static constexpr size_t kRamTraceSlots = 32;

    /**
     * @param disk_dir       Local disk tier (T1) directory; empty =
     *        no durable local tier.
     * @param max_disk_bytes Size cap for the T1 tier: after every
     *        store, the coldest entries (result .swr and packed-trace
     *        .swtp files, ordered by hotness, then first-lookup order,
     *        then file name — never mtime) are removed until the tier
     *        fits. 0 = unbounded.
     * @param far_dir        Far/shared tier (T2) directory; empty =
     *        no far tier. Lookups probe it after T1 and promote hits
     *        into T1; stores write through to it (unless far
     *        publishing is disabled, e.g. in shard children).
     * @param ram_max_bytes  Byte cap for the T0 in-RAM result memo
     *        (estimate-based; cold-first eviction). 0 = unbounded,
     *        the pre-tiering behavior.
     */
    explicit ResultCache(std::string disk_dir = {},
                         uint64_t max_disk_bytes = 0,
                         std::string far_dir = {},
                         uint64_t ram_max_bytes = 0);

    /** SWAN_SWEEP_CACHE_DIR, or empty when unset. */
    static std::string envDiskDir();

    /** SWAN_SWEEP_CACHE_MAX_BYTES, or 0 when unset/unparsable. */
    static uint64_t envMaxDiskBytes();

    /** SWAN_CACHE_FAR_DIR, or empty when unset. */
    static std::string envFarDir();

    /** SWAN_CACHE_RAM_BYTES, or 0 (unbounded) when unset/unparsable. */
    static uint64_t envRamMaxBytes();

    /** Memory-only unless SWAN_SWEEP_CACHE_DIR names a directory;
     *  capped when SWAN_SWEEP_CACHE_MAX_BYTES is set; far tier when
     *  SWAN_CACHE_FAR_DIR names a directory. */
    static ResultCache fromEnv()
    {
        return ResultCache(envDiskDir(), envMaxDiskBytes(), envFarDir(),
                           envRamMaxBytes());
    }

    /**
     * Process-wide far-publish gate. Shard children flip it off after
     * fork: shards publish to the shared local tier (T1) only, and the
     * parent syncs the far tier once per merged unit via publishFar()
     * — one writer per entry instead of a fleet racing over a slow
     * shared directory. Defaults to enabled.
     */
    static void setFarPublishEnabled(bool on);
    static bool farPublishEnabled();

    bool lookup(const CacheKey &key, core::KernelRun *out);
    void store(const CacheKey &key, const core::KernelRun &run);

    /**
     * lookup() without touching the hit/miss counters or the hotness
     * table: the sharded backend's parent-side merge reads results the
     * very same run just computed in a shard child, which must not
     * masquerade as cache traffic in the run's reported stats (or
     * heat entries the user never re-requested). Fills the in-memory
     * tier on a disk read like lookup().
     */
    bool lookupQuiet(const CacheKey &key, core::KernelRun *out);

    /**
     * Copy @p key's T1 entry (result and/or packed trace) into the far
     * tier if the far tier lacks it. The sharded parent calls this per
     * merged unit so T2 converges even though shard children never
     * write it. No-op without a far tier, when far publishing is
     * disabled, or when T2 already has the entry.
     */
    void publishFar(const CacheKey &key);

    /**
     * Add @p delta to this cache's counters. The sharded backend
     * collects each shard child's counter delta (the child's cache is
     * a fork-time copy, so its counters die with it) and feeds them
     * back through here, making stats() reflect the whole fleet.
     */
    void absorbStats(const CacheStats &delta);

    /**
     * Packed-trace tier: serve a previously captured trace so warm
     * reruns skip capture too. Probes the T0 pinned-trace memo first
     * (malloc-free: the pinned copy is cloned mmap-to-mmap), then the
     * local `.swtp` tier, then the far tier (checksummed and
     * key-verified everywhere; any mismatch degrades to a miss). On
     * the Nth hit the trace is pinned into T0 up to the byte budget
     * (setRamTraceBudget). The entry carries the trace's MixStats
     * counter snapshot so a warm hit does not have to decode the whole
     * trace just to recount it.
     */
    bool lookupTrace(const TraceKey &key, trace::PackedTrace *out,
                     trace::MixStats *mix);
    void storeTrace(const TraceKey &key, const trace::PackedTrace &t,
                    const trace::MixStats &mix);

    /** Byte budget for the T0 pinned-trace memo (0 = unbounded). The
     *  scheduler passes its SWAN_TRACE_MEMO_BYTES budget so RAM
     *  pinning and the capture memo answer to one knob. */
    void setRamTraceBudget(uint64_t bytes);

    /**
     * Gate for *serving* from the T0 pinned-trace memo (pinning stays
     * on either way). The scheduler disables it for the capture phase
     * of a sweep that will run at least one capture: a T0 hit skips
     * the disk read's allocations, so whether a trace is pinned —
     * which depends on the byte budget — would otherwise shift the
     * heap layout later captures see, breaking byte-identity across
     * budget values. When every pending group's trace is already
     * durable (traceAvailable), no capture can follow and T0 serving
     * is safe. Defaults to enabled.
     */
    void setRamTraceServe(bool on);

    /**
     * True when @p key's packed trace exists in a *durable* tier
     * (T1/T2 file present) — without reading, validating or counting
     * anything. The scheduler's pre-capture scan: if every pending
     * trace is available, the sweep runs zero captures and T0 serving
     * can stay on. T0 pin state is deliberately ignored: pinning
     * depends on the byte budget, and this answer gates behavior that
     * must be identical across budget values.
     */
    bool traceAvailable(const TraceKey &key) const;

    /**
     * Publish @p key's packed trace to the far tier: copy the T1
     * `.swtp` if present, else serialize @p t (may be null: then a
     * spilled-and-evicted trace is simply not published). Called by
     * the scheduler strictly after the capture phase — far stores
     * allocate freely, so they must never run inside storeTrace()
     * during phase 1c. No-op without a far tier or when far publishing
     * is disabled.
     */
    void publishTraceFar(const TraceKey &key,
                         const trace::PackedTrace *t,
                         const trace::MixStats &mix);

    const std::string &diskDir() const { return diskDir_; }
    const std::string &farDir() const { return farDir_; }
    uint64_t maxDiskBytes() const { return maxDiskBytes_; }

    /** Bytes currently held by the on-disk tier (.swr + .swtp). */
    uint64_t diskBytes() const;

    /** Current decayed hotness of a key hash (tests/introspection). */
    uint32_t hotness(uint64_t key_hash) const;

    /**
     * Deterministic text snapshot of where every entry lives: one
     * `<stem> <kind> mem=<0|1> disk=<0|1> far=<0|1> hot=<n>` line per
     * known entry, sorted by stem. Durable placement only — T0
     * *pinned-trace* state is deliberately excluded because pinning
     * depends on the byte budget, and the placement of entries must be
     * identical across budget values (the determinism matrix in
     * tests/test_cache_tiers.cc diffs this string across backend ×
     * jobs × shards × budget).
     */
    std::string placementMap() const;

    CacheStats stats() const;
    void resetStats();

  private:
    struct KeyHash
    {
        size_t operator()(const CacheKey &k) const { return k.hash(); }
    };

    /** Hotness-table entry: decayed access count plus first-lookup
     *  sequence number (the insertion-order eviction tiebreak). */
    struct Hot
    {
        uint32_t count = 0;
        uint64_t seq = 0;
    };

    /** One T0 pinned-trace slot. Fixed-size POD + mmap-backed trace:
     *  pin/unpin never touches malloc. Beyond the key hash the slot
     *  echoes the TraceKey's fields (kernel name in a fixed buffer —
     *  longer names simply never pin) so a hash collision degrades to
     *  a miss, mirroring the on-disk key-echo validation. */
    struct RamTrace
    {
        uint64_t keyHash = 0;
        uint64_t bytes = 0;
        trace::PackedTrace trace;
        trace::MixStats mix;
        char kernel[64] = {0};
        int32_t impl = 0;
        int32_t vecBits = 0;
        uint64_t optionsFp = 0;
        bool used = false;
    };

    /** Disk-tier lookup outcome: Corrupt means the entry's bytes are
     *  damaged (not merely foreign) — the caller quarantines it. */
    enum class DiskLoad
    {
        Miss,
        Hit,
        Corrupt,
    };

    /** Bump @p key_hash's hotness (assigning its first-lookup seq on
     *  first sight) and run the periodic decay. Called with mu_ held,
     *  on counted lookups only. @return the post-bump count. */
    uint32_t noteLookupLocked(uint64_t key_hash);
    uint32_t hotnessLocked(uint64_t key_hash) const;
    uint64_t seqLocked(uint64_t key_hash) const;

    DiskLoad loadDisk(const std::string &dir, const CacheKey &key,
                      core::KernelRun *out);
    /** @return bytes written (0 on failure), for the pruner's total. */
    uint64_t storeDisk(const std::string &dir, const CacheKey &key,
                       const core::KernelRun &run);

    DiskLoad loadTraceFrom(const std::string &dir, const TraceKey &key,
                           trace::PackedTrace *out,
                           trace::MixStats *mix);

    /** Copy one validated entry file between tiers (write-then-rename;
     *  the promotion/publish primitive). @return bytes copied, 0 on
     *  failure. */
    uint64_t copyEntry(const std::string &src_dir,
                       const std::string &dst_dir,
                       const std::string &name);

    /** Copy `name` from T1 to T2 if T2 lacks it; bumps farStores.
     *  Shared tail of publishFar()/publishTraceFar(). */
    void publishFarFile(const std::string &name);

    /**
     * Existence probe for `<dir>/<stem><ext>` that never touches the
     * heap on POSIX (stack-built path + ::stat): the far tier is
     * probed on the capture thread, and a *miss* there must leave the
     * heap exactly as a far-disabled build would — only a hit (which
     * ends the capture sequence for that group) may allocate.
     */
    static bool entryExists(const std::string &dir, uint64_t stem_hash,
                            const char *ext);

    /** Rename a damaged entry to `<path>.quarantined` so it is never
     *  re-served (still budget-counted and prunable); counts it only
     *  when this process won the rename race. Called with mu_ held. */
    void quarantineEntry(const std::string &path);

    /**
     * Enforce maxDiskBytes_ by deleting the coldest entries (hotness,
     * then first-lookup order, then name); no-op uncapped. Keeps a
     * running byte total so the common under-cap store costs one
     * counter update, not a directory walk; the walk (and the resync
     * with entries other processes wrote) happens only when the
     * running total crosses the cap.
     */
    void pruneDisk(uint64_t stored_bytes);

    /** Enforce ramMaxBytes_ on the result memo, cold-first. Called
     *  with mu_ held after insertions. */
    void pruneRamLocked();

    /** Pin @p t into a T0 slot if it earned it (post-bump hotness >=
     *  kPinHits), evicting strictly-colder pins to fit the byte
     *  budget. Called with mu_ held; mmap-only (no malloc). */
    void maybePinTraceLocked(const TraceKey &key, uint32_t hot_count,
                             const trace::PackedTrace &t,
                             const trace::MixStats &mix);

    std::string diskDir_;
    std::string farDir_;
    uint64_t maxDiskBytes_ = 0;
    uint64_t ramMaxBytes_ = 0;
    uint64_t ramTraceBudget_ = 0;
    mutable std::mutex mu_;
    uint64_t diskTotal_ = 0;      //!< running on-disk byte estimate
    bool diskTotalKnown_ = false; //!< diskTotal_ seeded by a full scan
    std::unordered_map<CacheKey, core::KernelRun, KeyHash> map_;
    uint64_t ramBytesEst_ = 0;    //!< result-memo byte estimate
    std::unordered_map<uint64_t, Hot> hot_;
    uint64_t lookupSeq_ = 0;      //!< counted lookups so far
    RamTrace ramTraces_[kRamTraceSlots];
    uint64_t ramTraceBytes_ = 0;  //!< pinned bytes across the slots
    bool ramServe_ = true;        //!< T0 trace serving gate
    CacheStats stats_;
};

} // namespace swan::sweep

#endif // SWAN_SWEEP_CACHE_HH
