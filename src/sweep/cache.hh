/**
 * @file
 * Sweep result cache. An experiment point is keyed by (kernel
 * qualified name, implementation, vector width, core-config
 * fingerprint, working-set fingerprint, warm-up passes), and a
 * finished KernelRun is served to any later point with the same key
 * without re-simulation — across benches in one process (in-memory
 * tier) and across processes (optional on-disk tier, enabled by a
 * cache directory, e.g. SWAN_SWEEP_CACHE_DIR). Hit/miss counters are
 * surfaced in sweep reports.
 *
 * Precision of the contract: capture and simulation are deterministic
 * given the key *and* the process's heap layout at capture time —
 * traces carry real buffer addresses and the cache models are
 * address-sensitive. The scheduler serializes captures so the layout
 * is a pure function of which captures run and in what order; a
 * partially warm cache therefore changes the layout seen by the
 * remaining points, which can shift their absolute cycle counts by
 * ~0.1% relative to a fully cold run. Every stored result is a valid
 * simulation of its point; byte-identity is guaranteed across --jobs
 * values, across reruns of the same command against the same cache
 * state, and between a cold run and a fully warm replay of it.
 */

#ifndef SWAN_SWEEP_CACHE_HH
#define SWAN_SWEEP_CACHE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/runner.hh"
#include "swan/internal/contracts.hh"
#include "sweep/grid.hh"
#include "trace/packed.hh"

namespace swan::sweep
{

/** Order-sensitive FNV-1a fingerprint of every timing-relevant field. */
uint64_t fingerprint(const sim::CoreConfig &cfg);
uint64_t fingerprint(const core::Options &opts);

/** FNV-1a seed shared by every 64-bit hash in the sweep engine. */
constexpr uint64_t kFnv64Seed = 1469598103934665603ull;

/** Continue an FNV-1a hash over the 8 bytes of @p v (little-endian
 *  byte order, same constants as the cache-key hashes). Seed with
 *  kFnv64Seed. Used to derive the sharded backend's content-stable
 *  unit/run tokens from cache-key hashes. */
uint64_t fnvMix64(uint64_t h, uint64_t v);

/**
 * Parse a non-negative decimal byte count (the SWAN_* budget/cap
 * variables and their CLI flags share this one parser so format rules
 * cannot drift). Rejects negatives — strtoull alone would wrap "-1"
 * to 2^64-1. @return false on null/empty/unparsable input, leaving
 * @p out untouched.
 */
bool parseByteCount(const char *s, uint64_t *out);

/** Identity of one experiment point's result. Capture-phase type —
 *  size pinned in swan/internal/layout.hh. */
struct SWAN_CAPTURE_TYPE CacheKey
{
    std::string kernel;     //!< qualified name, e.g. "ZL/adler32"
    core::Impl impl = core::Impl::Neon;
    int vecBits = 128;
    uint64_t configFp = 0;
    uint64_t optionsFp = 0;
    int warmupPasses = 1;
    /**
     * 32-bit fold of sim::FaultSpec::fingerprint() (keyFor keeps it
     * nonzero for any enabled scenario); 0 = clean. Nonzero values
     * join the hash, so faulted and clean points can never collide in
     * either tier, while clean keys (and their on-disk file stems and
     * bodies) are unchanged from pre-fault builds. uint32_t in what
     * was padding after warmupPasses: memory-tier nodes are allocated
     * while a sweep is still capturing, so sizeof(CacheKey) must not
     * grow (the same capture-time heap-layout contract as
     * SweepPoint::faultId).
     */
    uint32_t faultFp = 0;

    bool operator==(const CacheKey &o) const
    {
        return kernel == o.kernel && impl == o.impl &&
               vecBits == o.vecBits && configFp == o.configFp &&
               optionsFp == o.optionsFp &&
               warmupPasses == o.warmupPasses && faultFp == o.faultFp;
    }

    uint64_t hash() const;
    /** 16-hex-digit form of hash(); the on-disk file stem. */
    std::string hex() const;
};

CacheKey keyFor(const SweepPoint &point, int warmup_passes);

/**
 * Identity of one captured trace: the capture-relevant subset of
 * CacheKey (no core config, no warm-up count — a trace is replayed
 * against any number of configurations).
 */
struct TraceKey
{
    std::string kernel;     //!< qualified name, e.g. "ZL/adler32"
    core::Impl impl = core::Impl::Neon;
    int vecBits = 128;
    uint64_t optionsFp = 0;

    bool operator==(const TraceKey &o) const
    {
        return kernel == o.kernel && impl == o.impl &&
               vecBits == o.vecBits && optionsFp == o.optionsFp;
    }

    uint64_t hash() const;
    /** 16-hex-digit form of hash(); the on-disk file stem. */
    std::string hex() const;
};

TraceKey traceKeyFor(const SweepPoint &point);

/** Aggregate counters for one cache over its lifetime. */
struct CacheStats
{
    uint64_t hits = 0;       //!< served from the in-process map
    uint64_t diskHits = 0;   //!< served from the on-disk tier
    uint64_t misses = 0;     //!< absent everywhere; caller simulates
    uint64_t stores = 0;     //!< results inserted

    // Packed-trace tier (disk only; the scheduler's memo is the
    // in-memory tier).
    uint64_t traceHits = 0;   //!< capture skipped, trace read off disk
    uint64_t traceMisses = 0; //!< caller captures (and stores)
    uint64_t traceStores = 0; //!< packed traces written

    /** On-disk entries pruned by the size cap (LRU, .swr + .swtp). */
    uint64_t evictions = 0;

    /** Structurally corrupt on-disk entries (bad magic, truncation,
     *  checksum mismatch) renamed to `<name>.quarantined` and served
     *  as misses. A wrong-but-well-formed entry (key echo mismatch
     *  under a hash collision) stays a plain miss — quarantine is for
     *  damaged bytes, not foreign entries. */
    uint64_t corruptEntriesQuarantined = 0;

    // Sharded-backend bookkeeping (parent-side; zero for in-process
    // runs). Surfaced here because the shared cache directory is where
    // the claim protocol lives and absorbStats() is how fleet counters
    // already travel.
    /** Stale `.claim`/`.stats`/`.obsnap` files (dead-pid owners) swept
     *  at the start of a sharded run. */
    uint64_t staleClaimsSwept = 0;
    /** Work units re-executed by the parent because the claiming
     *  shard died before publishing (crash recovery). */
    uint64_t recoveredUnits = 0;

    uint64_t total() const { return hits + diskHits + misses; }
};

/**
 * Two-tier result cache: a mutex-guarded in-process map, plus an
 * optional on-disk tier of one small versioned text file per key.
 * Disk entries are validated against the full key (not just its hash)
 * and ignored on any mismatch or parse error, so a stale or corrupt
 * cache directory degrades to a miss, never to a wrong result.
 * Structurally damaged entries (truncation, checksum mismatch, bad
 * magic) are additionally renamed to `<name>.quarantined` — counted in
 * CacheStats::corruptEntriesQuarantined — so a bad sector cannot cost
 * a validation pass on every future lookup of that key.
 */
class ResultCache
{
  public:
    /**
     * @param disk_dir       On-disk tier directory; empty = memory only.
     * @param max_disk_bytes Size cap for the on-disk tier: after every
     *        store, least-recently-used entries (result .swr and
     *        packed-trace .swtp files; LRU stamp = file mtime, bumped
     *        on every disk hit, ties broken by file name so pruning is
     *        deterministic) are removed until the tier fits.
     *        0 = unbounded.
     */
    explicit ResultCache(std::string disk_dir = {},
                         uint64_t max_disk_bytes = 0);

    /** SWAN_SWEEP_CACHE_DIR, or empty when unset. */
    static std::string envDiskDir();

    /** SWAN_SWEEP_CACHE_MAX_BYTES, or 0 when unset/unparsable. */
    static uint64_t envMaxDiskBytes();

    /** Memory-only unless SWAN_SWEEP_CACHE_DIR names a directory;
     *  capped when SWAN_SWEEP_CACHE_MAX_BYTES is set. */
    static ResultCache fromEnv()
    {
        return ResultCache(envDiskDir(), envMaxDiskBytes());
    }

    bool lookup(const CacheKey &key, core::KernelRun *out);
    void store(const CacheKey &key, const core::KernelRun &run);

    /**
     * lookup() without touching the hit/miss counters (or the LRU
     * mtime stamp): the sharded backend's parent-side merge reads
     * results the very same run just computed in a shard child, which
     * must not masquerade as cache traffic in the run's reported
     * stats. Fills the in-memory tier on a disk read like lookup().
     */
    bool lookupQuiet(const CacheKey &key, core::KernelRun *out);

    /**
     * Add @p delta to this cache's counters. The sharded backend
     * collects each shard child's counter delta (the child's cache is
     * a fork-time copy, so its counters die with it) and feeds them
     * back through here, making stats() reflect the whole fleet.
     */
    void absorbStats(const CacheStats &delta);

    /**
     * Packed-trace tier: serve a previously captured trace off disk so
     * warm reruns skip capture too (one `<keyhash>.swtp` binary file
     * per trace, checksummed and key-verified; any mismatch degrades
     * to a miss). The entry carries the trace's MixStats counter
     * snapshot so a warm hit does not have to decode the whole trace
     * just to recount it. Disk-only — the scheduler's trace memo is
     * the in-memory tier — so both are no-ops without a cache
     * directory.
     */
    bool lookupTrace(const TraceKey &key, trace::PackedTrace *out,
                     trace::MixStats *mix);
    void storeTrace(const TraceKey &key, const trace::PackedTrace &t,
                    const trace::MixStats &mix);

    const std::string &diskDir() const { return diskDir_; }
    uint64_t maxDiskBytes() const { return maxDiskBytes_; }

    /** Bytes currently held by the on-disk tier (.swr + .swtp). */
    uint64_t diskBytes() const;

    CacheStats stats() const;
    void resetStats();

  private:
    struct KeyHash
    {
        size_t operator()(const CacheKey &k) const { return k.hash(); }
    };

    /** Disk-tier lookup outcome: Corrupt means the entry's bytes are
     *  damaged (not merely foreign) — the caller quarantines it. */
    enum class DiskLoad
    {
        Miss,
        Hit,
        Corrupt,
    };

    DiskLoad loadDisk(const CacheKey &key, core::KernelRun *out);
    /** @return bytes written (0 on failure), for the pruner's total. */
    uint64_t storeDisk(const CacheKey &key, const core::KernelRun &run);

    /** Rename a damaged entry to `<path>.quarantined` so it is never
     *  re-served (still budget-counted and prunable); counts it only
     *  when this process won the rename race. Called with mu_ held. */
    void quarantineEntry(const std::string &path);

    /**
     * Enforce maxDiskBytes_ by deleting LRU entries; no-op uncapped.
     * Keeps a running byte total so the common under-cap store costs
     * one counter update, not a directory walk; the walk (and the
     * resync with entries other processes wrote) happens only when the
     * running total crosses the cap.
     */
    void pruneDisk(uint64_t stored_bytes);

    std::string diskDir_;
    uint64_t maxDiskBytes_ = 0;
    mutable std::mutex mu_;
    uint64_t diskTotal_ = 0;      //!< running on-disk byte estimate
    bool diskTotalKnown_ = false; //!< diskTotal_ seeded by a full scan
    std::unordered_map<CacheKey, core::KernelRun, KeyHash> map_;
    CacheStats stats_;
};

} // namespace swan::sweep

#endif // SWAN_SWEEP_CACHE_HH
