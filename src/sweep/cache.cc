#include "sweep/cache.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

namespace swan::sweep
{

namespace
{

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

struct Fnv
{
    uint64_t h = kFnvOffset;

    void
    bytes(const void *p, size_t n)
    {
        const auto *b = static_cast<const unsigned char *>(p);
        for (size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= kFnvPrime;
        }
    }
    void u64(uint64_t v) { bytes(&v, sizeof v); }
    void i32(int32_t v) { bytes(&v, sizeof v); }
    void f64(double v) { bytes(&v, sizeof v); }
    void b(bool v) { u64(v ? 1 : 0); }
    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }
};

void
hashCache(Fnv &f, const sim::CacheConfig &c)
{
    f.i32(c.sizeBytes);
    f.i32(c.ways);
    f.i32(c.lineBytes);
    f.i32(c.latency);
    f.b(c.nextLinePrefetch);
}

/** v1 on-disk entry format version. */
constexpr const char *kMagic = "swan-sweep-result v1";

std::string
hex64(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Doubles round-trip bit-exactly as hexfloat. */
std::string
f64str(double v)
{
    std::ostringstream os;
    os << std::hexfloat << v;
    return os.str();
}

/**
 * Refresh an entry's LRU stamp (file mtime) after a disk hit, so the
 * size-cap pruner removes least-recently-*used* entries, not merely
 * least-recently-written ones. Best-effort: a failed touch only makes
 * the entry look older than it is.
 */
void
touchEntry(const std::filesystem::path &path)
{
    std::error_code ec;
    std::filesystem::last_write_time(
        path, std::filesystem::file_time_type::clock::now(), ec);
}

} // namespace

uint64_t
fnvMix64(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

uint64_t
fingerprint(const sim::CoreConfig &cfg)
{
    Fnv f;
    f.str(cfg.name);
    f.f64(cfg.freqGHz);
    f.b(cfg.outOfOrder);
    f.i32(cfg.robSize);
    f.i32(cfg.decodeWidth);
    f.i32(cfg.issueWidth);
    f.i32(cfg.commitWidth);
    f.i32(cfg.vecBits);
    for (int n : cfg.fuCount)
        f.i32(n);
    f.i32(cfg.mshrs);
    hashCache(f, cfg.l1d);
    hashCache(f, cfg.l2);
    hashCache(f, cfg.llc);
    f.f64(cfg.dramLatencyNs);
    f.f64(cfg.dramGBs);
    f.f64(cfg.l2ServiceCycles);
    f.f64(cfg.llcServiceCycles);
    f.f64(cfg.branchMispredictRate);
    f.i32(cfg.branchPenalty);
    f.i32(cfg.lsuCrackPerCycle);
    return f.h;
}

uint64_t
fingerprint(const core::Options &opts)
{
    Fnv f;
    f.i32(opts.imageWidth);
    f.i32(opts.imageHeight);
    f.i32(opts.audioSamples);
    f.i32(opts.audioFrame);
    f.i32(opts.bufferBytes);
    f.i32(opts.gemmM);
    f.i32(opts.gemmN);
    f.i32(opts.gemmK);
    f.f64(opts.spmmSparsity);
    f.i32(opts.videoBlocks);
    f.u64(opts.seed);
    return f.h;
}

uint64_t
CacheKey::hash() const
{
    Fnv f;
    f.str(kernel);
    f.i32(int(impl));
    f.i32(vecBits);
    f.u64(configFp);
    f.u64(optionsFp);
    f.i32(warmupPasses);
    // Clean points (faultFp == 0) hash exactly as they did before the
    // fault axis existed, so pre-fault disk tiers keep their hits;
    // faulted points get a disjoint hash (and file stem).
    if (faultFp)
        f.u64(faultFp);
    return f.h;
}

std::string
CacheKey::hex() const
{
    return hex64(hash());
}

CacheKey
keyFor(const SweepPoint &point, int warmup_passes)
{
    CacheKey k;
    k.kernel = point.spec->info.qualifiedName();
    k.impl = point.impl;
    k.vecBits = point.vecBits;
    k.configFp = fingerprint(point.config);
    k.optionsFp = fingerprint(point.options);
    k.warmupPasses = warmup_passes;
    // XOR-fold the 64-bit fingerprint; pin nonzero so an enabled
    // scenario can never alias the clean key even if the fold lands
    // on zero.
    const uint64_t fp = point.fault().fingerprint();
    k.faultFp = uint32_t(fp) ^ uint32_t(fp >> 32);
    if (fp != 0 && k.faultFp == 0)
        k.faultFp = 1;
    return k;
}

uint64_t
TraceKey::hash() const
{
    Fnv f;
    f.str("trace"); // never collides with a CacheKey file stem
    f.str(kernel);
    f.i32(int(impl));
    f.i32(vecBits);
    f.u64(optionsFp);
    return f.h;
}

std::string
TraceKey::hex() const
{
    return hex64(hash());
}

TraceKey
traceKeyFor(const SweepPoint &point)
{
    // No fault field: faults perturb replay, never capture, so faulted
    // and clean points share one captured trace.
    TraceKey k;
    k.kernel = point.spec->info.qualifiedName();
    k.impl = point.impl;
    k.vecBits = point.vecBits;
    k.optionsFp = fingerprint(point.options);
    return k;
}

ResultCache::ResultCache(std::string disk_dir, uint64_t max_disk_bytes)
    : diskDir_(std::move(disk_dir)), maxDiskBytes_(max_disk_bytes)
{
    if (!diskDir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(diskDir_, ec);
        if (ec)
            diskDir_.clear(); // unusable directory: memory-only
    }
}

std::string
ResultCache::envDiskDir()
{
    const char *v = std::getenv("SWAN_SWEEP_CACHE_DIR");
    return v ? std::string(v) : std::string();
}

bool
parseByteCount(const char *s, uint64_t *out)
{
    if (!s || !*s || *s == '-')
        return false;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(s, &end, 10);
    if (!end || *end != '\0')
        return false;
    *out = uint64_t(n);
    return true;
}

uint64_t
ResultCache::envMaxDiskBytes()
{
    uint64_t n = 0;
    parseByteCount(std::getenv("SWAN_SWEEP_CACHE_MAX_BYTES"), &n);
    return n;
}

bool
ResultCache::lookup(const CacheKey &key, core::KernelRun *out)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            *out = it->second;
            ++stats_.hits;
            return true;
        }
    }
    if (!diskDir_.empty()) {
        const auto path =
            std::filesystem::path(diskDir_) / (key.hex() + ".swr");
        switch (loadDisk(key, out)) {
        case DiskLoad::Hit: {
            touchEntry(path);
            std::lock_guard<std::mutex> lock(mu_);
            map_.emplace(key, *out);
            ++stats_.diskHits;
            return true;
        }
        case DiskLoad::Corrupt: {
            std::lock_guard<std::mutex> lock(mu_);
            quarantineEntry(path.string());
            break;
        }
        case DiskLoad::Miss:
            break;
        }
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return false;
}

void
ResultCache::store(const CacheKey &key, const core::KernelRun &run)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        map_.insert_or_assign(key, run);
        ++stats_.stores;
    }
    if (!diskDir_.empty())
        pruneDisk(storeDisk(key, run));
}

bool
ResultCache::lookupQuiet(const CacheKey &key, core::KernelRun *out)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            *out = it->second;
            return true;
        }
    }
    if (!diskDir_.empty()) {
        switch (loadDisk(key, out)) {
        case DiskLoad::Hit: {
            std::lock_guard<std::mutex> lock(mu_);
            map_.emplace(key, *out);
            return true;
        }
        case DiskLoad::Corrupt: {
            // Quiet about hit/miss traffic, not about damage: a
            // corrupt entry is quarantined (and counted) on whichever
            // path finds it first.
            const auto path =
                std::filesystem::path(diskDir_) / (key.hex() + ".swr");
            std::lock_guard<std::mutex> lock(mu_);
            quarantineEntry(path.string());
            break;
        }
        case DiskLoad::Miss:
            break;
        }
    }
    return false;
}

void
ResultCache::absorbStats(const CacheStats &delta)
{
    std::lock_guard<std::mutex> lock(mu_);
    stats_.hits += delta.hits;
    stats_.diskHits += delta.diskHits;
    stats_.misses += delta.misses;
    stats_.stores += delta.stores;
    stats_.traceHits += delta.traceHits;
    stats_.traceMisses += delta.traceMisses;
    stats_.traceStores += delta.traceStores;
    stats_.evictions += delta.evictions;
    stats_.corruptEntriesQuarantined += delta.corruptEntriesQuarantined;
    stats_.staleClaimsSwept += delta.staleClaimsSwept;
    stats_.recoveredUnits += delta.recoveredUnits;
}

void
ResultCache::quarantineEntry(const std::string &path)
{
    // Rename, never delete: the damaged bytes stay on disk for
    // post-mortem, out of the lookup namespace. The rename is the
    // cross-process race arbiter — every shard that trips over the
    // same bad entry tries it, exactly one succeeds and counts it.
    std::error_code ec;
    std::filesystem::rename(path, path + ".quarantined", ec);
    if (!ec)
        ++stats_.corruptEntriesQuarantined;
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
ResultCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = CacheStats{};
}

namespace
{

/** v2 on-disk packed-trace entry: magic, version, whole-blob FNV-1a
 *  checksum, key echo, mix counters, payload. The blob checksum covers
 *  everything after itself — the payload carries its own internal
 *  checksum, but the key echo and mix counters would otherwise be
 *  trusted unverified, and a flipped counter byte must quarantine the
 *  entry, not silently skew a warm run's instruction mix. */
constexpr char kTraceMagic[4] = {'S', 'W', 'T', 'P'};
constexpr uint32_t kTraceTierVersion = 2;

template <typename T>
void
appendRaw(std::string *out, T v)
{
    out->append(reinterpret_cast<const char *>(&v), sizeof v);
}

template <typename T>
bool
readRaw(const std::string &buf, size_t *at, T *v)
{
    if (buf.size() - *at < sizeof(T))
        return false;
    std::memcpy(v, buf.data() + *at, sizeof(T));
    *at += sizeof(T);
    return true;
}

} // namespace

bool
ResultCache::lookupTrace(const TraceKey &key, trace::PackedTrace *out,
                         trace::MixStats *mix)
{
    const auto miss = [this] {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.traceMisses;
        return false;
    };
    if (diskDir_.empty())
        return miss();
    const auto path =
        std::filesystem::path(diskDir_) / (key.hex() + ".swtp");
    // Structural damage (bad magic, truncation, checksum failure in
    // the payload) quarantines the entry so the next lookup does not
    // pay another full validation pass on the same bad bytes; a
    // well-formed foreign entry stays a plain miss.
    const auto corrupt = [this, &path] {
        std::lock_guard<std::mutex> lock(mu_);
        quarantineEntry(path.string());
        ++stats_.traceMisses;
        return false;
    };
    // Single sized read: a trace blob can be tens of MB, so avoid the
    // ostringstream route's extra full copies.
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec)
        return miss();
    std::string buf(size, '\0');
    {
        std::ifstream in(path, std::ios::binary);
        if (!in || !in.read(buf.data(), std::streamsize(size)))
            return miss();
    }

    size_t at = 0;
    char magic[4];
    uint32_t version = 0;
    if (!readRaw(buf, &at, &magic) ||
        std::memcmp(magic, kTraceMagic, 4) != 0 ||
        !readRaw(buf, &at, &version) || version != kTraceTierVersion)
        return corrupt();
    // Whole-blob checksum: any damaged byte after this field — key
    // echo, counters or payload — reads as corruption, never as data.
    uint64_t want = 0;
    if (!readRaw(buf, &at, &want))
        return corrupt();
    Fnv blobSum;
    blobSum.bytes(buf.data() + at, buf.size() - at);
    if (blobSum.h != want)
        return corrupt();
    // Key echo: a hash collision or stale rename must read as a miss.
    uint32_t kernelLen = 0;
    if (!readRaw(buf, &at, &kernelLen) || buf.size() - at < kernelLen)
        return corrupt();
    TraceKey seen;
    seen.kernel.assign(buf.data() + at, kernelLen);
    at += kernelLen;
    int32_t impl = -1;
    if (!readRaw(buf, &at, &impl) || !readRaw(buf, &at, &seen.vecBits) ||
        !readRaw(buf, &at, &seen.optionsFp))
        return corrupt();
    seen.impl = core::Impl(impl);
    if (!(seen == key))
        return miss();
    // Mix counter snapshot, so a warm hit skips a full trace decode.
    uint32_t mixLen = 0;
    if (!readRaw(buf, &at, &mixLen) ||
        (buf.size() - at) / sizeof(uint64_t) < mixLen)
        return corrupt();
    std::vector<uint64_t> counters(mixLen);
    for (auto &v : counters)
        if (!readRaw(buf, &at, &v))
            return corrupt();
    trace::MixStats seenMix;
    if (!trace::MixStats::fromCounters(counters, &seenMix))
        return corrupt();
    if (!trace::PackedTrace::parsePayload(
            reinterpret_cast<const uint8_t *>(buf.data()) + at,
            buf.size() - at, out))
        return corrupt();
    *mix = seenMix;
    touchEntry(path);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.traceHits;
    return true;
}

void
ResultCache::storeTrace(const TraceKey &key, const trace::PackedTrace &t,
                        const trace::MixStats &mix)
{
    if (diskDir_.empty())
        return;
    const auto counters = mix.counters();
    std::string blob;
    blob.reserve(t.byteSize() + key.kernel.size() +
                 counters.size() * sizeof(uint64_t) + 64);
    blob.append(kTraceMagic, 4);
    appendRaw(&blob, kTraceTierVersion);
    const size_t sumAt = blob.size();
    appendRaw(&blob, uint64_t(0)); // blob checksum, patched below
    appendRaw(&blob, uint32_t(key.kernel.size()));
    blob.append(key.kernel);
    appendRaw(&blob, int32_t(key.impl));
    appendRaw(&blob, int32_t(key.vecBits));
    appendRaw(&blob, key.optionsFp);
    appendRaw(&blob, uint32_t(counters.size()));
    for (uint64_t v : counters)
        appendRaw(&blob, v);
    t.appendPayload(&blob);
    {
        Fnv blobSum;
        blobSum.bytes(blob.data() + sumAt + sizeof(uint64_t),
                      blob.size() - sumAt - sizeof(uint64_t));
        std::memcpy(blob.data() + sumAt, &blobSum.h, sizeof blobSum.h);
    }

    const auto dir = std::filesystem::path(diskDir_);
    const auto path = dir / (key.hex() + ".swtp");
    // Write-then-rename so concurrent readers never see a torn entry.
    const auto tmp = dir / (key.hex() + ".swtp.tmp");
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return;
        os.write(blob.data(), std::streamsize(blob.size()));
        if (!os)
            return;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.traceStores;
    }
    pruneDisk(blob.size());
}

namespace
{

/** True for the pruner's unit of accounting: .swr results, .swtp
 *  packed traces, and .quarantined corpses (never served, but they
 *  hold disk and age out under the same LRU cap). Temporaries (.tmp)
 *  and foreign files are ignored. */
bool
isCacheEntry(const std::filesystem::path &p)
{
    const auto ext = p.extension();
    return ext == ".swr" || ext == ".swtp" || ext == ".quarantined";
}

} // namespace

uint64_t
ResultCache::diskBytes() const
{
    if (diskDir_.empty())
        return 0;
    uint64_t total = 0;
    std::error_code ec;
    for (std::filesystem::directory_iterator
             it(diskDir_, ec),
         end;
         !ec && it != end; it.increment(ec)) {
        if (!isCacheEntry(it->path()))
            continue;
        std::error_code fec;
        const auto size = std::filesystem::file_size(it->path(), fec);
        if (!fec)
            total += size;
    }
    return total;
}

void
ResultCache::pruneDisk(uint64_t stored_bytes)
{
    if (diskDir_.empty() || maxDiskBytes_ == 0)
        return;

    // Fast path: bump the running total and skip the directory walk
    // while it stays under the cap. Entries written by other processes
    // are only picked up at the next full scan, so a shared capped
    // directory can transiently overshoot by what the neighbors wrote
    // since this process last scanned.
    uint64_t baseline = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (diskTotalKnown_) {
            diskTotal_ += stored_bytes;
            if (diskTotal_ <= maxDiskBytes_)
                return;
        }
        baseline = diskTotal_;
    }

    struct Entry
    {
        std::filesystem::file_time_type mtime;
        std::string name;
        uint64_t size = 0;
    };
    std::vector<Entry> entries;
    uint64_t total = 0;
    std::error_code ec;
    for (std::filesystem::directory_iterator
             it(diskDir_, ec),
         end;
         !ec && it != end; it.increment(ec)) {
        const auto &p = it->path();
        if (!isCacheEntry(p))
            continue;
        std::error_code fec;
        Entry e;
        e.size = std::filesystem::file_size(p, fec);
        if (fec)
            continue;
        e.mtime = std::filesystem::last_write_time(p, fec);
        if (fec)
            continue;
        e.name = p.filename().string();
        total += e.size;
        entries.push_back(std::move(e));
    }
    // Resync the estimate. Stores racing with the scan bumped
    // diskTotal_ past `baseline`; re-apply that delta on top of the
    // scanned total (their files may also have been seen by the scan,
    // so this can double-count — a deliberate over-estimate: the worst
    // case is one extra scan, never a missed cap violation).
    const auto resync = [&](uint64_t scanned) {
        std::lock_guard<std::mutex> lock(mu_);
        diskTotal_ = scanned + (diskTotal_ - baseline);
        diskTotalKnown_ = true;
    };
    if (total <= maxDiskBytes_) {
        resync(total);
        return;
    }

    // Oldest first; mtime ties (coarse filesystem clocks) broken by
    // name so a given directory state always prunes the same way.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.name < b.name;
              });

    const auto dir = std::filesystem::path(diskDir_);
    uint64_t evicted = 0;
    for (const auto &e : entries) {
        if (total <= maxDiskBytes_)
            break;
        std::error_code rec;
        // A concurrent process may have removed it already; only count
        // (and discount) files this call actually deleted.
        if (std::filesystem::remove(dir / e.name, rec) && !rec) {
            total -= e.size;
            ++evicted;
        }
    }
    resync(total);
    std::lock_guard<std::mutex> lock(mu_);
    stats_.evictions += evicted;
}

ResultCache::DiskLoad
ResultCache::loadDisk(const CacheKey &key, core::KernelRun *out)
{
    const auto path =
        std::filesystem::path(diskDir_) / (key.hex() + ".swr");
    std::error_code ec;
    const auto fsize = std::filesystem::file_size(path, ec);
    if (ec)
        return DiskLoad::Miss; // absent: the ordinary cold-cache case
    std::string buf(fsize, '\0');
    {
        std::ifstream raw(path, std::ios::binary);
        if (!raw || !raw.read(buf.data(), std::streamsize(fsize)))
            return DiskLoad::Miss; // unreadable: cannot judge the bytes
    }

    size_t bodyStart = buf.find('\n');
    if (bodyStart == std::string::npos ||
        buf.compare(0, bodyStart, kMagic) != 0)
        return DiskLoad::Corrupt;
    ++bodyStart;
    // Self-checksum line (entries written since the quarantine tier;
    // older entries simply lack it and skip verification): FNV-1a over
    // every byte after this line, so any flipped bit or truncation in
    // the body is detected before a field of it is trusted.
    constexpr std::string_view kChecksumTag = "checksum ";
    if (buf.compare(bodyStart, kChecksumTag.size(), kChecksumTag) == 0) {
        const size_t eol = buf.find('\n', bodyStart);
        if (eol == std::string::npos)
            return DiskLoad::Corrupt;
        const std::string cs = buf.substr(
            bodyStart + kChecksumTag.size(),
            eol - bodyStart - kChecksumTag.size());
        char *endp = nullptr;
        const uint64_t want = std::strtoull(cs.c_str(), &endp, 16);
        if (endp == cs.c_str() || *endp != '\0')
            return DiskLoad::Corrupt;
        bodyStart = eol + 1;
        Fnv f;
        f.bytes(buf.data() + bodyStart, buf.size() - bodyStart);
        if (f.h != want)
            return DiskLoad::Corrupt;
    }

    std::istringstream in(buf.substr(bodyStart));
    std::string line;
    core::KernelRun run;
    CacheKey seen;
    std::vector<uint64_t> mixFlat;
    bool haveMix = false;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag))
            continue;
        auto &s = run.sim;
        const auto rd = [&ls](auto &field) { ls >> field; };
        // istream extraction does not accept hexfloat; go via strtod.
        const auto rdf = [&ls](double &field) {
            std::string tok;
            if (ls >> tok)
                field = std::strtod(tok.c_str(), nullptr);
        };
        if (tag == "kernel")
            rd(seen.kernel);
        else if (tag == "impl") {
            int v = -1;
            ls >> v;
            seen.impl = core::Impl(v);
        } else if (tag == "vec_bits")
            rd(seen.vecBits);
        else if (tag == "config_fp")
            ls >> std::hex >> seen.configFp >> std::dec;
        else if (tag == "options_fp")
            ls >> std::hex >> seen.optionsFp >> std::dec;
        else if (tag == "warmup")
            rd(seen.warmupPasses);
        else if (tag == "fault_fp")
            ls >> std::hex >> seen.faultFp >> std::dec;
        else if (tag == "sim.config")
            rd(s.config);
        else if (tag == "sim.instrs")
            rd(s.instrs);
        else if (tag == "sim.cycles")
            rd(s.cycles);
        else if (tag == "sim.ipc")
            rdf(s.ipc);
        else if (tag == "sim.time_sec")
            rdf(s.timeSec);
        else if (tag == "sim.l1_mpki")
            rdf(s.l1Mpki);
        else if (tag == "sim.l2_mpki")
            rdf(s.l2Mpki);
        else if (tag == "sim.llc_mpki")
            rdf(s.llcMpki);
        else if (tag == "sim.l1_hit_rate")
            rdf(s.l1HitRate);
        else if (tag == "sim.fe_stall_pct")
            rdf(s.feStallPct);
        else if (tag == "sim.be_stall_pct")
            rdf(s.beStallPct);
        else if (tag == "sim.dram_reads")
            rd(s.dramReads);
        else if (tag == "sim.dram_writes")
            rd(s.dramWrites);
        else if (tag == "sim.dram_per_kcycle")
            rdf(s.dramAccessPerKCycle);
        else if (tag == "sim.by_class") {
            for (auto &v : s.byClass)
                ls >> v;
        } else if (tag == "sim.vec_bytes")
            rd(s.vecBytes);
        else if (tag == "sim.l1_accesses")
            rd(s.l1Accesses);
        else if (tag == "sim.l2_accesses")
            rd(s.l2Accesses);
        else if (tag == "sim.llc_accesses")
            rd(s.llcAccesses);
        else if (tag == "sim.energy_j")
            rdf(s.energyJ);
        else if (tag == "sim.power_w")
            rdf(s.powerW);
        else if (tag == "mix") {
            uint64_t v;
            while (ls >> v)
                mixFlat.push_back(v);
            haveMix = true;
        }
    }
    // Structural damage first (a checksum-less legacy entry truncated
    // mid-body lands here), then the key echo: a hash collision or
    // stale rename is a foreign-but-intact entry — a plain miss.
    if (!haveMix || !trace::MixStats::fromCounters(mixFlat, &run.mix))
        return DiskLoad::Corrupt;
    if (!(seen == key))
        return DiskLoad::Miss;
    *out = run;
    return DiskLoad::Hit;
}

uint64_t
ResultCache::storeDisk(const CacheKey &key, const core::KernelRun &run)
{
    const auto dir = std::filesystem::path(diskDir_);
    const auto path = dir / (key.hex() + ".swr");
    // Write-then-rename so concurrent readers never see a torn entry.
    const auto tmp = dir / (key.hex() + ".tmp");
    // The body is built in memory first so the header can carry its
    // FNV-1a self-checksum (what loadDisk verifies before trusting a
    // single field).
    std::ostringstream os;
    {
        const auto &s = run.sim;
        os << "kernel " << key.kernel << "\n"
           << "impl " << int(key.impl) << "\n"
           << "vec_bits " << key.vecBits << "\n"
           << "config_fp " << hex64(key.configFp) << "\n"
           << "options_fp " << hex64(key.optionsFp) << "\n"
           << "warmup " << key.warmupPasses << "\n";
        // Written only for faulted keys: clean .swr bodies stay
        // byte-identical to pre-fault builds (the reader treats a
        // missing tag as faultFp 0).
        if (key.faultFp)
            os << "fault_fp " << hex64(uint64_t(key.faultFp)) << "\n";
        os << "sim.config " << s.config << "\n"
           << "sim.instrs " << s.instrs << "\n"
           << "sim.cycles " << s.cycles << "\n"
           << "sim.ipc " << f64str(s.ipc) << "\n"
           << "sim.time_sec " << f64str(s.timeSec) << "\n"
           << "sim.l1_mpki " << f64str(s.l1Mpki) << "\n"
           << "sim.l2_mpki " << f64str(s.l2Mpki) << "\n"
           << "sim.llc_mpki " << f64str(s.llcMpki) << "\n"
           << "sim.l1_hit_rate " << f64str(s.l1HitRate) << "\n"
           << "sim.fe_stall_pct " << f64str(s.feStallPct) << "\n"
           << "sim.be_stall_pct " << f64str(s.beStallPct) << "\n"
           << "sim.dram_reads " << s.dramReads << "\n"
           << "sim.dram_writes " << s.dramWrites << "\n"
           << "sim.dram_per_kcycle " << f64str(s.dramAccessPerKCycle)
           << "\n";
        os << "sim.by_class";
        for (auto v : s.byClass)
            os << " " << v;
        os << "\n"
           << "sim.vec_bytes " << s.vecBytes << "\n"
           << "sim.l1_accesses " << s.l1Accesses << "\n"
           << "sim.l2_accesses " << s.l2Accesses << "\n"
           << "sim.llc_accesses " << s.llcAccesses << "\n"
           << "sim.energy_j " << f64str(s.energyJ) << "\n"
           << "sim.power_w " << f64str(s.powerW) << "\n";
        os << "mix";
        for (auto v : run.mix.counters())
            os << " " << v;
        os << "\n";
    }
    const std::string body = os.str();
    Fnv sum;
    sum.bytes(body.data(), body.size());
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f)
            return 0;
        f << kMagic << "\n"
          << "checksum " << hex64(sum.h) << "\n";
        f.write(body.data(), std::streamsize(body.size()));
        if (!f)
            return 0;
    }
    std::error_code ec;
    const auto size = std::filesystem::file_size(tmp, ec);
    const uint64_t written = ec ? 0 : uint64_t(size);
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return 0;
    }
    return written;
}

} // namespace swan::sweep
