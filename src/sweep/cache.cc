#include "sweep/cache.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace swan::sweep
{

namespace
{

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

struct Fnv
{
    uint64_t h = kFnvOffset;

    void
    bytes(const void *p, size_t n)
    {
        const auto *b = static_cast<const unsigned char *>(p);
        for (size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= kFnvPrime;
        }
    }
    void u64(uint64_t v) { bytes(&v, sizeof v); }
    void i32(int32_t v) { bytes(&v, sizeof v); }
    void f64(double v) { bytes(&v, sizeof v); }
    void b(bool v) { u64(v ? 1 : 0); }
    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }
};

void
hashCache(Fnv &f, const sim::CacheConfig &c)
{
    f.i32(c.sizeBytes);
    f.i32(c.ways);
    f.i32(c.lineBytes);
    f.i32(c.latency);
    f.b(c.nextLinePrefetch);
}

/** v1 on-disk entry format version. */
constexpr const char *kMagic = "swan-sweep-result v1";

std::string
hex64(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Doubles round-trip bit-exactly as hexfloat. */
std::string
f64str(double v)
{
    std::ostringstream os;
    os << std::hexfloat << v;
    return os.str();
}

/**
 * Refresh an entry's LRU stamp (file mtime) after a disk hit, so the
 * size-cap pruner removes least-recently-*used* entries, not merely
 * least-recently-written ones. Best-effort: a failed touch only makes
 * the entry look older than it is.
 */
void
touchEntry(const std::filesystem::path &path)
{
    std::error_code ec;
    std::filesystem::last_write_time(
        path, std::filesystem::file_time_type::clock::now(), ec);
}

} // namespace

uint64_t
fnvMix64(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

uint64_t
fingerprint(const sim::CoreConfig &cfg)
{
    Fnv f;
    f.str(cfg.name);
    f.f64(cfg.freqGHz);
    f.b(cfg.outOfOrder);
    f.i32(cfg.robSize);
    f.i32(cfg.decodeWidth);
    f.i32(cfg.issueWidth);
    f.i32(cfg.commitWidth);
    f.i32(cfg.vecBits);
    for (int n : cfg.fuCount)
        f.i32(n);
    f.i32(cfg.mshrs);
    hashCache(f, cfg.l1d);
    hashCache(f, cfg.l2);
    hashCache(f, cfg.llc);
    f.f64(cfg.dramLatencyNs);
    f.f64(cfg.dramGBs);
    f.f64(cfg.l2ServiceCycles);
    f.f64(cfg.llcServiceCycles);
    f.f64(cfg.branchMispredictRate);
    f.i32(cfg.branchPenalty);
    f.i32(cfg.lsuCrackPerCycle);
    return f.h;
}

uint64_t
fingerprint(const core::Options &opts)
{
    Fnv f;
    f.i32(opts.imageWidth);
    f.i32(opts.imageHeight);
    f.i32(opts.audioSamples);
    f.i32(opts.audioFrame);
    f.i32(opts.bufferBytes);
    f.i32(opts.gemmM);
    f.i32(opts.gemmN);
    f.i32(opts.gemmK);
    f.f64(opts.spmmSparsity);
    f.i32(opts.videoBlocks);
    f.u64(opts.seed);
    return f.h;
}

uint64_t
CacheKey::hash() const
{
    Fnv f;
    f.str(kernel);
    f.i32(int(impl));
    f.i32(vecBits);
    f.u64(configFp);
    f.u64(optionsFp);
    f.i32(warmupPasses);
    return f.h;
}

std::string
CacheKey::hex() const
{
    return hex64(hash());
}

CacheKey
keyFor(const SweepPoint &point, int warmup_passes)
{
    CacheKey k;
    k.kernel = point.spec->info.qualifiedName();
    k.impl = point.impl;
    k.vecBits = point.vecBits;
    k.configFp = fingerprint(point.config);
    k.optionsFp = fingerprint(point.options);
    k.warmupPasses = warmup_passes;
    return k;
}

uint64_t
TraceKey::hash() const
{
    Fnv f;
    f.str("trace"); // never collides with a CacheKey file stem
    f.str(kernel);
    f.i32(int(impl));
    f.i32(vecBits);
    f.u64(optionsFp);
    return f.h;
}

std::string
TraceKey::hex() const
{
    return hex64(hash());
}

TraceKey
traceKeyFor(const SweepPoint &point)
{
    TraceKey k;
    k.kernel = point.spec->info.qualifiedName();
    k.impl = point.impl;
    k.vecBits = point.vecBits;
    k.optionsFp = fingerprint(point.options);
    return k;
}

ResultCache::ResultCache(std::string disk_dir, uint64_t max_disk_bytes)
    : diskDir_(std::move(disk_dir)), maxDiskBytes_(max_disk_bytes)
{
    if (!diskDir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(diskDir_, ec);
        if (ec)
            diskDir_.clear(); // unusable directory: memory-only
    }
}

std::string
ResultCache::envDiskDir()
{
    const char *v = std::getenv("SWAN_SWEEP_CACHE_DIR");
    return v ? std::string(v) : std::string();
}

bool
parseByteCount(const char *s, uint64_t *out)
{
    if (!s || !*s || *s == '-')
        return false;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(s, &end, 10);
    if (!end || *end != '\0')
        return false;
    *out = uint64_t(n);
    return true;
}

uint64_t
ResultCache::envMaxDiskBytes()
{
    uint64_t n = 0;
    parseByteCount(std::getenv("SWAN_SWEEP_CACHE_MAX_BYTES"), &n);
    return n;
}

bool
ResultCache::lookup(const CacheKey &key, core::KernelRun *out)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            *out = it->second;
            ++stats_.hits;
            return true;
        }
    }
    if (!diskDir_.empty() && loadDisk(key, out)) {
        touchEntry(std::filesystem::path(diskDir_) / (key.hex() + ".swr"));
        std::lock_guard<std::mutex> lock(mu_);
        map_.emplace(key, *out);
        ++stats_.diskHits;
        return true;
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return false;
}

void
ResultCache::store(const CacheKey &key, const core::KernelRun &run)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        map_.insert_or_assign(key, run);
        ++stats_.stores;
    }
    if (!diskDir_.empty())
        pruneDisk(storeDisk(key, run));
}

bool
ResultCache::lookupQuiet(const CacheKey &key, core::KernelRun *out)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            *out = it->second;
            return true;
        }
    }
    if (!diskDir_.empty() && loadDisk(key, out)) {
        std::lock_guard<std::mutex> lock(mu_);
        map_.emplace(key, *out);
        return true;
    }
    return false;
}

void
ResultCache::absorbStats(const CacheStats &delta)
{
    std::lock_guard<std::mutex> lock(mu_);
    stats_.hits += delta.hits;
    stats_.diskHits += delta.diskHits;
    stats_.misses += delta.misses;
    stats_.stores += delta.stores;
    stats_.traceHits += delta.traceHits;
    stats_.traceMisses += delta.traceMisses;
    stats_.traceStores += delta.traceStores;
    stats_.evictions += delta.evictions;
    stats_.staleClaimsSwept += delta.staleClaimsSwept;
    stats_.recoveredUnits += delta.recoveredUnits;
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
ResultCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = CacheStats{};
}

namespace
{

/** v1 on-disk packed-trace entry: magic, key echo, checksummed payload. */
constexpr char kTraceMagic[4] = {'S', 'W', 'T', 'P'};
constexpr uint32_t kTraceTierVersion = 1;

template <typename T>
void
appendRaw(std::string *out, T v)
{
    out->append(reinterpret_cast<const char *>(&v), sizeof v);
}

template <typename T>
bool
readRaw(const std::string &buf, size_t *at, T *v)
{
    if (buf.size() - *at < sizeof(T))
        return false;
    std::memcpy(v, buf.data() + *at, sizeof(T));
    *at += sizeof(T);
    return true;
}

} // namespace

bool
ResultCache::lookupTrace(const TraceKey &key, trace::PackedTrace *out,
                         trace::MixStats *mix)
{
    const auto miss = [this] {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.traceMisses;
        return false;
    };
    if (diskDir_.empty())
        return miss();
    const auto path =
        std::filesystem::path(diskDir_) / (key.hex() + ".swtp");
    // Single sized read: a trace blob can be tens of MB, so avoid the
    // ostringstream route's extra full copies.
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec)
        return miss();
    std::string buf(size, '\0');
    {
        std::ifstream in(path, std::ios::binary);
        if (!in || !in.read(buf.data(), std::streamsize(size)))
            return miss();
    }

    size_t at = 0;
    char magic[4];
    uint32_t version = 0;
    if (!readRaw(buf, &at, &magic) ||
        std::memcmp(magic, kTraceMagic, 4) != 0 ||
        !readRaw(buf, &at, &version) || version != kTraceTierVersion)
        return miss();
    // Key echo: a hash collision or stale rename must read as a miss.
    uint32_t kernelLen = 0;
    if (!readRaw(buf, &at, &kernelLen) || buf.size() - at < kernelLen)
        return miss();
    TraceKey seen;
    seen.kernel.assign(buf.data() + at, kernelLen);
    at += kernelLen;
    int32_t impl = -1;
    if (!readRaw(buf, &at, &impl) || !readRaw(buf, &at, &seen.vecBits) ||
        !readRaw(buf, &at, &seen.optionsFp))
        return miss();
    seen.impl = core::Impl(impl);
    if (!(seen == key))
        return miss();
    // Mix counter snapshot, so a warm hit skips a full trace decode.
    uint32_t mixLen = 0;
    if (!readRaw(buf, &at, &mixLen) ||
        (buf.size() - at) / sizeof(uint64_t) < mixLen)
        return miss();
    std::vector<uint64_t> counters(mixLen);
    for (auto &v : counters)
        if (!readRaw(buf, &at, &v))
            return miss();
    trace::MixStats seenMix;
    if (!trace::MixStats::fromCounters(counters, &seenMix))
        return miss();
    if (!trace::PackedTrace::parsePayload(
            reinterpret_cast<const uint8_t *>(buf.data()) + at,
            buf.size() - at, out))
        return miss();
    *mix = seenMix;
    touchEntry(path);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.traceHits;
    return true;
}

void
ResultCache::storeTrace(const TraceKey &key, const trace::PackedTrace &t,
                        const trace::MixStats &mix)
{
    if (diskDir_.empty())
        return;
    const auto counters = mix.counters();
    std::string blob;
    blob.reserve(t.byteSize() + key.kernel.size() +
                 counters.size() * sizeof(uint64_t) + 64);
    blob.append(kTraceMagic, 4);
    appendRaw(&blob, kTraceTierVersion);
    appendRaw(&blob, uint32_t(key.kernel.size()));
    blob.append(key.kernel);
    appendRaw(&blob, int32_t(key.impl));
    appendRaw(&blob, int32_t(key.vecBits));
    appendRaw(&blob, key.optionsFp);
    appendRaw(&blob, uint32_t(counters.size()));
    for (uint64_t v : counters)
        appendRaw(&blob, v);
    t.appendPayload(&blob);

    const auto dir = std::filesystem::path(diskDir_);
    const auto path = dir / (key.hex() + ".swtp");
    // Write-then-rename so concurrent readers never see a torn entry.
    const auto tmp = dir / (key.hex() + ".swtp.tmp");
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return;
        os.write(blob.data(), std::streamsize(blob.size()));
        if (!os)
            return;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.traceStores;
    }
    pruneDisk(blob.size());
}

namespace
{

/** True for the pruner's unit of accounting: .swr results and .swtp
 *  packed traces. Temporaries (.tmp) and foreign files are ignored. */
bool
isCacheEntry(const std::filesystem::path &p)
{
    const auto ext = p.extension();
    return ext == ".swr" || ext == ".swtp";
}

} // namespace

uint64_t
ResultCache::diskBytes() const
{
    if (diskDir_.empty())
        return 0;
    uint64_t total = 0;
    std::error_code ec;
    for (std::filesystem::directory_iterator
             it(diskDir_, ec),
         end;
         !ec && it != end; it.increment(ec)) {
        if (!isCacheEntry(it->path()))
            continue;
        std::error_code fec;
        const auto size = std::filesystem::file_size(it->path(), fec);
        if (!fec)
            total += size;
    }
    return total;
}

void
ResultCache::pruneDisk(uint64_t stored_bytes)
{
    if (diskDir_.empty() || maxDiskBytes_ == 0)
        return;

    // Fast path: bump the running total and skip the directory walk
    // while it stays under the cap. Entries written by other processes
    // are only picked up at the next full scan, so a shared capped
    // directory can transiently overshoot by what the neighbors wrote
    // since this process last scanned.
    uint64_t baseline = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (diskTotalKnown_) {
            diskTotal_ += stored_bytes;
            if (diskTotal_ <= maxDiskBytes_)
                return;
        }
        baseline = diskTotal_;
    }

    struct Entry
    {
        std::filesystem::file_time_type mtime;
        std::string name;
        uint64_t size = 0;
    };
    std::vector<Entry> entries;
    uint64_t total = 0;
    std::error_code ec;
    for (std::filesystem::directory_iterator
             it(diskDir_, ec),
         end;
         !ec && it != end; it.increment(ec)) {
        const auto &p = it->path();
        if (!isCacheEntry(p))
            continue;
        std::error_code fec;
        Entry e;
        e.size = std::filesystem::file_size(p, fec);
        if (fec)
            continue;
        e.mtime = std::filesystem::last_write_time(p, fec);
        if (fec)
            continue;
        e.name = p.filename().string();
        total += e.size;
        entries.push_back(std::move(e));
    }
    // Resync the estimate. Stores racing with the scan bumped
    // diskTotal_ past `baseline`; re-apply that delta on top of the
    // scanned total (their files may also have been seen by the scan,
    // so this can double-count — a deliberate over-estimate: the worst
    // case is one extra scan, never a missed cap violation).
    const auto resync = [&](uint64_t scanned) {
        std::lock_guard<std::mutex> lock(mu_);
        diskTotal_ = scanned + (diskTotal_ - baseline);
        diskTotalKnown_ = true;
    };
    if (total <= maxDiskBytes_) {
        resync(total);
        return;
    }

    // Oldest first; mtime ties (coarse filesystem clocks) broken by
    // name so a given directory state always prunes the same way.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.name < b.name;
              });

    const auto dir = std::filesystem::path(diskDir_);
    uint64_t evicted = 0;
    for (const auto &e : entries) {
        if (total <= maxDiskBytes_)
            break;
        std::error_code rec;
        // A concurrent process may have removed it already; only count
        // (and discount) files this call actually deleted.
        if (std::filesystem::remove(dir / e.name, rec) && !rec) {
            total -= e.size;
            ++evicted;
        }
    }
    resync(total);
    std::lock_guard<std::mutex> lock(mu_);
    stats_.evictions += evicted;
}

bool
ResultCache::loadDisk(const CacheKey &key, core::KernelRun *out)
{
    const auto path =
        std::filesystem::path(diskDir_) / (key.hex() + ".swr");
    std::ifstream in(path);
    if (!in)
        return false;

    std::string line;
    if (!std::getline(in, line) || line != kMagic)
        return false;

    core::KernelRun run;
    CacheKey seen;
    std::vector<uint64_t> mixFlat;
    bool haveMix = false;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag))
            continue;
        auto &s = run.sim;
        const auto rd = [&ls](auto &field) { ls >> field; };
        // istream extraction does not accept hexfloat; go via strtod.
        const auto rdf = [&ls](double &field) {
            std::string tok;
            if (ls >> tok)
                field = std::strtod(tok.c_str(), nullptr);
        };
        if (tag == "kernel")
            rd(seen.kernel);
        else if (tag == "impl") {
            int v = -1;
            ls >> v;
            seen.impl = core::Impl(v);
        } else if (tag == "vec_bits")
            rd(seen.vecBits);
        else if (tag == "config_fp")
            ls >> std::hex >> seen.configFp >> std::dec;
        else if (tag == "options_fp")
            ls >> std::hex >> seen.optionsFp >> std::dec;
        else if (tag == "warmup")
            rd(seen.warmupPasses);
        else if (tag == "sim.config")
            rd(s.config);
        else if (tag == "sim.instrs")
            rd(s.instrs);
        else if (tag == "sim.cycles")
            rd(s.cycles);
        else if (tag == "sim.ipc")
            rdf(s.ipc);
        else if (tag == "sim.time_sec")
            rdf(s.timeSec);
        else if (tag == "sim.l1_mpki")
            rdf(s.l1Mpki);
        else if (tag == "sim.l2_mpki")
            rdf(s.l2Mpki);
        else if (tag == "sim.llc_mpki")
            rdf(s.llcMpki);
        else if (tag == "sim.l1_hit_rate")
            rdf(s.l1HitRate);
        else if (tag == "sim.fe_stall_pct")
            rdf(s.feStallPct);
        else if (tag == "sim.be_stall_pct")
            rdf(s.beStallPct);
        else if (tag == "sim.dram_reads")
            rd(s.dramReads);
        else if (tag == "sim.dram_writes")
            rd(s.dramWrites);
        else if (tag == "sim.dram_per_kcycle")
            rdf(s.dramAccessPerKCycle);
        else if (tag == "sim.by_class") {
            for (auto &v : s.byClass)
                ls >> v;
        } else if (tag == "sim.vec_bytes")
            rd(s.vecBytes);
        else if (tag == "sim.l1_accesses")
            rd(s.l1Accesses);
        else if (tag == "sim.l2_accesses")
            rd(s.l2Accesses);
        else if (tag == "sim.llc_accesses")
            rd(s.llcAccesses);
        else if (tag == "sim.energy_j")
            rdf(s.energyJ);
        else if (tag == "sim.power_w")
            rdf(s.powerW);
        else if (tag == "mix") {
            uint64_t v;
            while (ls >> v)
                mixFlat.push_back(v);
            haveMix = true;
        }
    }
    // A hash collision or stale entry must read as a miss.
    if (!(seen == key) || !haveMix)
        return false;
    if (!trace::MixStats::fromCounters(mixFlat, &run.mix))
        return false;
    *out = run;
    return true;
}

uint64_t
ResultCache::storeDisk(const CacheKey &key, const core::KernelRun &run)
{
    const auto dir = std::filesystem::path(diskDir_);
    const auto path = dir / (key.hex() + ".swr");
    // Write-then-rename so concurrent readers never see a torn entry.
    const auto tmp = dir / (key.hex() + ".tmp");
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return 0;
        const auto &s = run.sim;
        os << kMagic << "\n"
           << "kernel " << key.kernel << "\n"
           << "impl " << int(key.impl) << "\n"
           << "vec_bits " << key.vecBits << "\n"
           << "config_fp " << hex64(key.configFp) << "\n"
           << "options_fp " << hex64(key.optionsFp) << "\n"
           << "warmup " << key.warmupPasses << "\n"
           << "sim.config " << s.config << "\n"
           << "sim.instrs " << s.instrs << "\n"
           << "sim.cycles " << s.cycles << "\n"
           << "sim.ipc " << f64str(s.ipc) << "\n"
           << "sim.time_sec " << f64str(s.timeSec) << "\n"
           << "sim.l1_mpki " << f64str(s.l1Mpki) << "\n"
           << "sim.l2_mpki " << f64str(s.l2Mpki) << "\n"
           << "sim.llc_mpki " << f64str(s.llcMpki) << "\n"
           << "sim.l1_hit_rate " << f64str(s.l1HitRate) << "\n"
           << "sim.fe_stall_pct " << f64str(s.feStallPct) << "\n"
           << "sim.be_stall_pct " << f64str(s.beStallPct) << "\n"
           << "sim.dram_reads " << s.dramReads << "\n"
           << "sim.dram_writes " << s.dramWrites << "\n"
           << "sim.dram_per_kcycle " << f64str(s.dramAccessPerKCycle)
           << "\n";
        os << "sim.by_class";
        for (auto v : s.byClass)
            os << " " << v;
        os << "\n"
           << "sim.vec_bytes " << s.vecBytes << "\n"
           << "sim.l1_accesses " << s.l1Accesses << "\n"
           << "sim.l2_accesses " << s.l2Accesses << "\n"
           << "sim.llc_accesses " << s.llcAccesses << "\n"
           << "sim.energy_j " << f64str(s.energyJ) << "\n"
           << "sim.power_w " << f64str(s.powerW) << "\n";
        os << "mix";
        for (auto v : run.mix.counters())
            os << " " << v;
        os << "\n";
        if (!os)
            return 0;
    }
    std::error_code ec;
    const auto size = std::filesystem::file_size(tmp, ec);
    const uint64_t written = ec ? 0 : uint64_t(size);
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return 0;
    }
    return written;
}

} // namespace swan::sweep
