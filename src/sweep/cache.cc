#include "sweep/cache.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string_view>
#include <vector>

#include "obs/telemetry.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#define SWAN_CACHE_HAVE_POSIX 1
#endif

namespace swan::sweep
{

namespace
{

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

struct Fnv
{
    uint64_t h = kFnvOffset;

    void
    bytes(const void *p, size_t n)
    {
        const auto *b = static_cast<const unsigned char *>(p);
        for (size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= kFnvPrime;
        }
    }
    void u64(uint64_t v) { bytes(&v, sizeof v); }
    void i32(int32_t v) { bytes(&v, sizeof v); }
    void f64(double v) { bytes(&v, sizeof v); }
    void b(bool v) { u64(v ? 1 : 0); }
    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }
};

void
hashCache(Fnv &f, const sim::CacheConfig &c)
{
    f.i32(c.sizeBytes);
    f.i32(c.ways);
    f.i32(c.lineBytes);
    f.i32(c.latency);
    f.b(c.nextLinePrefetch);
}

/** v1 on-disk entry format version. */
constexpr const char *kMagic = "swan-sweep-result v1";

std::string
hex64(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Doubles round-trip bit-exactly as hexfloat. */
std::string
f64str(double v)
{
    std::ostringstream os;
    os << std::hexfloat << v;
    return os.str();
}

/**
 * Parse the leading 16-hex-digit stem of a cache entry file name back
 * into its key hash, the join between on-disk entries and the in-RAM
 * hotness table. False for foreign names (which then carry hotness 0
 * and age out first).
 */
bool
parseStemHash(const std::string &name, uint64_t *out)
{
    if (name.size() < 16)
        return false;
    uint64_t h = 0;
    for (int i = 0; i < 16; ++i) {
        const char c = name[i];
        uint64_t d = 0;
        if (c >= '0' && c <= '9')
            d = uint64_t(c - '0');
        else if (c >= 'a' && c <= 'f')
            d = uint64_t(c - 'a') + 10;
        else
            return false;
        h = (h << 4) | d;
    }
    *out = h;
    return true;
}

/**
 * Stable per-entry cost of the T0 result memo. An estimate, not an
 * accounting of true heap bytes: the point is a platform-independent
 * figure so a given RAM cap evicts the same entries everywhere.
 */
uint64_t
entryRamCost(const CacheKey &key, const core::KernelRun &run)
{
    return sizeof(CacheKey) + sizeof(core::KernelRun) +
           key.kernel.size() + run.sim.config.size() + 64;
}

/** Deterministic strict order on full keys — the last eviction
 *  tiebreak, reached only under a 64-bit hash collision. */
bool
keyLess(const CacheKey &a, const CacheKey &b)
{
    if (a.kernel != b.kernel)
        return a.kernel < b.kernel;
    if (a.impl != b.impl)
        return int(a.impl) < int(b.impl);
    if (a.vecBits != b.vecBits)
        return a.vecBits < b.vecBits;
    if (a.configFp != b.configFp)
        return a.configFp < b.configFp;
    if (a.optionsFp != b.optionsFp)
        return a.optionsFp < b.optionsFp;
    if (a.warmupPasses != b.warmupPasses)
        return a.warmupPasses < b.warmupPasses;
    return a.faultFp < b.faultFp;
}

/** Process-wide far-publish gate (see the header): shard children
 *  flip it off right after fork, before any cache traffic. */
std::atomic<bool> g_farPublish{true};

} // namespace

uint64_t
fnvMix64(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

uint64_t
fingerprint(const sim::CoreConfig &cfg)
{
    Fnv f;
    f.str(cfg.name);
    f.f64(cfg.freqGHz);
    f.b(cfg.outOfOrder);
    f.i32(cfg.robSize);
    f.i32(cfg.decodeWidth);
    f.i32(cfg.issueWidth);
    f.i32(cfg.commitWidth);
    f.i32(cfg.vecBits);
    for (int n : cfg.fuCount)
        f.i32(n);
    f.i32(cfg.mshrs);
    hashCache(f, cfg.l1d);
    hashCache(f, cfg.l2);
    hashCache(f, cfg.llc);
    f.f64(cfg.dramLatencyNs);
    f.f64(cfg.dramGBs);
    f.f64(cfg.l2ServiceCycles);
    f.f64(cfg.llcServiceCycles);
    f.f64(cfg.branchMispredictRate);
    f.i32(cfg.branchPenalty);
    f.i32(cfg.lsuCrackPerCycle);
    return f.h;
}

uint64_t
fingerprint(const core::Options &opts)
{
    Fnv f;
    f.i32(opts.imageWidth);
    f.i32(opts.imageHeight);
    f.i32(opts.audioSamples);
    f.i32(opts.audioFrame);
    f.i32(opts.bufferBytes);
    f.i32(opts.gemmM);
    f.i32(opts.gemmN);
    f.i32(opts.gemmK);
    f.f64(opts.spmmSparsity);
    f.i32(opts.videoBlocks);
    f.u64(opts.seed);
    return f.h;
}

uint64_t
CacheKey::hash() const
{
    Fnv f;
    f.str(kernel);
    f.i32(int(impl));
    f.i32(vecBits);
    f.u64(configFp);
    f.u64(optionsFp);
    f.i32(warmupPasses);
    // Clean points (faultFp == 0) hash exactly as they did before the
    // fault axis existed, so pre-fault disk tiers keep their hits;
    // faulted points get a disjoint hash (and file stem).
    if (faultFp)
        f.u64(faultFp);
    return f.h;
}

std::string
CacheKey::hex() const
{
    return hex64(hash());
}

CacheKey
keyFor(const SweepPoint &point, int warmup_passes)
{
    CacheKey k;
    k.kernel = point.spec->info.qualifiedName();
    k.impl = point.impl;
    k.vecBits = point.vecBits;
    k.configFp = fingerprint(point.config);
    k.optionsFp = fingerprint(point.options);
    k.warmupPasses = warmup_passes;
    // XOR-fold the 64-bit fingerprint; pin nonzero so an enabled
    // scenario can never alias the clean key even if the fold lands
    // on zero.
    const uint64_t fp = point.fault().fingerprint();
    k.faultFp = uint32_t(fp) ^ uint32_t(fp >> 32);
    if (fp != 0 && k.faultFp == 0)
        k.faultFp = 1;
    return k;
}

uint64_t
TraceKey::hash() const
{
    Fnv f;
    f.str("trace"); // never collides with a CacheKey file stem
    f.str(kernel);
    f.i32(int(impl));
    f.i32(vecBits);
    f.u64(optionsFp);
    return f.h;
}

std::string
TraceKey::hex() const
{
    return hex64(hash());
}

TraceKey
traceKeyFor(const SweepPoint &point)
{
    // No fault field: faults perturb replay, never capture, so faulted
    // and clean points share one captured trace.
    TraceKey k;
    k.kernel = point.spec->info.qualifiedName();
    k.impl = point.impl;
    k.vecBits = point.vecBits;
    k.optionsFp = fingerprint(point.options);
    return k;
}

ResultCache::ResultCache(std::string disk_dir, uint64_t max_disk_bytes,
                         std::string far_dir, uint64_t ram_max_bytes)
    : diskDir_(std::move(disk_dir)), farDir_(std::move(far_dir)),
      maxDiskBytes_(max_disk_bytes), ramMaxBytes_(ram_max_bytes)
{
    if (!diskDir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(diskDir_, ec);
        if (ec)
            diskDir_.clear(); // unusable directory: memory-only
    }
    if (!farDir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(farDir_, ec);
        if (ec)
            farDir_.clear(); // unusable far tier: two-tier cache
    }
}

std::string
ResultCache::envDiskDir()
{
    const char *v = std::getenv("SWAN_SWEEP_CACHE_DIR");
    return v ? std::string(v) : std::string();
}

std::string
ResultCache::envFarDir()
{
    const char *v = std::getenv("SWAN_CACHE_FAR_DIR");
    return v ? std::string(v) : std::string();
}

bool
parseByteCount(const char *s, uint64_t *out)
{
    if (!s || !*s || *s == '-')
        return false;
    char *end = nullptr;
    const unsigned long long n = std::strtoull(s, &end, 10);
    if (!end || *end != '\0')
        return false;
    *out = uint64_t(n);
    return true;
}

uint64_t
ResultCache::envMaxDiskBytes()
{
    uint64_t n = 0;
    parseByteCount(std::getenv("SWAN_SWEEP_CACHE_MAX_BYTES"), &n);
    return n;
}

uint64_t
ResultCache::envRamMaxBytes()
{
    uint64_t n = 0;
    parseByteCount(std::getenv("SWAN_CACHE_RAM_BYTES"), &n);
    return n;
}

void
ResultCache::setFarPublishEnabled(bool on)
{
    g_farPublish.store(on, std::memory_order_relaxed);
}

bool
ResultCache::farPublishEnabled()
{
    return g_farPublish.load(std::memory_order_relaxed);
}

uint32_t
ResultCache::noteLookupLocked(uint64_t key_hash)
{
    ++lookupSeq_;
    Hot &hp = hot_[key_hash];
    if (hp.seq == 0)
        hp.seq = lookupSeq_; // first-lookup order: the eviction tiebreak
    if (hp.count != UINT32_MAX)
        ++hp.count;
    if (lookupSeq_ % kDecayPeriod == 0) {
        // Halve every counter so popularity ages out as a function of
        // traffic, never wall-clock. The traversal order of hot_ is
        // unspecified, but uniform halving is order-independent.
        for (auto &kv : hot_)
            kv.second.count >>= 1;
    }
    return hp.count;
}

uint32_t
ResultCache::hotnessLocked(uint64_t key_hash) const
{
    const auto it = hot_.find(key_hash);
    return it == hot_.end() ? 0 : it->second.count;
}

uint64_t
ResultCache::seqLocked(uint64_t key_hash) const
{
    const auto it = hot_.find(key_hash);
    return it == hot_.end() ? 0 : it->second.seq;
}

bool
ResultCache::entryExists(const std::string &dir, uint64_t stem_hash,
                         const char *ext)
{
#ifdef SWAN_CACHE_HAVE_POSIX
    // Stack-built path + ::stat, because this is the far tier's
    // *absence* probe and it runs on the capture thread: a miss must
    // leave the heap exactly as a far-disabled run would (only a hit
    // — which ends the capture story for its group — may allocate).
    char path[3072];
    const int n =
        std::snprintf(path, sizeof path, "%s/%016llx%s", dir.c_str(),
                      static_cast<unsigned long long>(stem_hash), ext);
    if (n > 0 && size_t(n) < sizeof path) {
        struct stat st;
        return ::stat(path, &st) == 0;
    }
#endif
    // Non-POSIX (or an absurdly long directory): correctness keeps
    // working, the heap-silence guarantee is POSIX-only.
    std::error_code ec;
    return std::filesystem::exists(
        std::filesystem::path(dir) / (hex64(stem_hash) + ext), ec);
}

bool
ResultCache::lookup(const CacheKey &key, core::KernelRun *out)
{
    const uint64_t h = key.hash();
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Hotness is charged per user-visible lookup, whichever tier
        // answers (or none): placement reflects demand, not luck.
        noteLookupLocked(h);
        auto it = map_.find(key);
        if (it != map_.end()) {
            *out = it->second;
            ++stats_.hits;
            return true;
        }
    }
    const std::string name = key.hex() + ".swr";
    if (!diskDir_.empty()) {
        switch (loadDisk(diskDir_, key, out)) {
        case DiskLoad::Hit: {
            std::lock_guard<std::mutex> lock(mu_);
            if (map_.emplace(key, *out).second)
                ramBytesEst_ += entryRamCost(key, *out);
            ++stats_.diskHits;
            // No RAM pruning here: lookups run on the capture thread,
            // and an eviction's free() would make the RAM cap a
            // capture-heap knob. The memo may transiently overshoot
            // until the next store() (strictly post-capture) prunes.
            return true;
        }
        case DiskLoad::Corrupt: {
            std::lock_guard<std::mutex> lock(mu_);
            quarantineEntry(
                (std::filesystem::path(diskDir_) / name).string());
            break;
        }
        case DiskLoad::Miss:
            break;
        }
    }
    if (!farDir_.empty()) {
        if (!entryExists(farDir_, h, ".swr")) {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.farMisses;
        } else {
            switch (loadDisk(farDir_, key, out)) {
            case DiskLoad::Hit: {
                // Write-through promotion: a far hit lands in T1 so
                // the next process on this host pays local latency.
                uint64_t copied = 0;
                if (!diskDir_.empty()) {
                    obs::Span span(obs::Phase::Promote);
                    copied = copyEntry(farDir_, diskDir_, name);
                    span.addArg(copied);
                }
                {
                    std::lock_guard<std::mutex> lock(mu_);
                    if (map_.emplace(key, *out).second)
                        ramBytesEst_ += entryRamCost(key, *out);
                    ++stats_.farHits;
                    if (copied)
                        ++stats_.farPromotions;
                }
                if (copied)
                    pruneDisk(copied);
                return true;
            }
            case DiskLoad::Corrupt: {
                std::lock_guard<std::mutex> lock(mu_);
                quarantineEntry(
                    (std::filesystem::path(farDir_) / name).string());
                ++stats_.farMisses;
                break;
            }
            case DiskLoad::Miss: {
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.farMisses;
                break;
            }
            }
        }
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return false;
}

void
ResultCache::store(const CacheKey &key, const core::KernelRun &run)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (map_.insert_or_assign(key, run).second)
            ramBytesEst_ += entryRamCost(key, run);
        ++stats_.stores;
        // The only place the RAM cap evicts: store() runs strictly
        // post-capture (phase 2 / the publish path), so the frees
        // cannot shift the capture heap.
        pruneRamLocked();
    }
    uint64_t wrote = 0;
    if (!diskDir_.empty())
        wrote = storeDisk(diskDir_, key, run);
    if (!farDir_.empty() && farPublishEnabled()) {
        obs::Span pub(obs::Phase::Publish);
        const uint64_t farWrote = storeDisk(farDir_, key, run);
        pub.addArg(farWrote);
        if (farWrote) {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.farStores;
        }
    }
    if (!diskDir_.empty())
        pruneDisk(wrote);
}

bool
ResultCache::lookupQuiet(const CacheKey &key, core::KernelRun *out)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            *out = it->second;
            return true;
        }
    }
    const std::string name = key.hex() + ".swr";
    if (!diskDir_.empty()) {
        switch (loadDisk(diskDir_, key, out)) {
        case DiskLoad::Hit: {
            std::lock_guard<std::mutex> lock(mu_);
            if (map_.emplace(key, *out).second)
                ramBytesEst_ += entryRamCost(key, *out);
            return true;
        }
        case DiskLoad::Corrupt: {
            // Quiet about hit/miss traffic, not about damage: a
            // corrupt entry is quarantined (and counted) on whichever
            // path finds it first.
            std::lock_guard<std::mutex> lock(mu_);
            quarantineEntry(
                (std::filesystem::path(diskDir_) / name).string());
            break;
        }
        case DiskLoad::Miss:
            break;
        }
    }
    // Far probe without counters, hotness or promotion: merge traffic
    // must neither masquerade as cache demand nor move entries around.
    if (!farDir_.empty() && entryExists(farDir_, key.hash(), ".swr")) {
        switch (loadDisk(farDir_, key, out)) {
        case DiskLoad::Hit: {
            std::lock_guard<std::mutex> lock(mu_);
            if (map_.emplace(key, *out).second)
                ramBytesEst_ += entryRamCost(key, *out);
            return true;
        }
        case DiskLoad::Corrupt: {
            std::lock_guard<std::mutex> lock(mu_);
            quarantineEntry(
                (std::filesystem::path(farDir_) / name).string());
            break;
        }
        case DiskLoad::Miss:
            break;
        }
    }
    return false;
}

void
ResultCache::publishFar(const CacheKey &key)
{
    publishFarFile(key.hex() + ".swr");
}

void
ResultCache::publishFarFile(const std::string &name)
{
    if (farDir_.empty() || diskDir_.empty() || !farPublishEnabled())
        return;
    std::error_code ec;
    if (std::filesystem::exists(std::filesystem::path(farDir_) / name,
                                ec))
        return; // T2 already converged for this entry
    if (!std::filesystem::exists(std::filesystem::path(diskDir_) / name,
                                 ec))
        return; // nothing local to publish (evicted or never stored)
    obs::Span pub(obs::Phase::Publish);
    const uint64_t copied = copyEntry(diskDir_, farDir_, name);
    pub.addArg(copied);
    if (copied) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.farStores;
    }
}

void
ResultCache::absorbStats(const CacheStats &delta)
{
    std::lock_guard<std::mutex> lock(mu_);
    stats_.hits += delta.hits;
    stats_.diskHits += delta.diskHits;
    stats_.misses += delta.misses;
    stats_.stores += delta.stores;
    stats_.traceHits += delta.traceHits;
    stats_.traceMisses += delta.traceMisses;
    stats_.traceStores += delta.traceStores;
    stats_.traceRamHits += delta.traceRamHits;
    stats_.evictions += delta.evictions;
    stats_.farHits += delta.farHits;
    stats_.farMisses += delta.farMisses;
    stats_.farStores += delta.farStores;
    stats_.farPromotions += delta.farPromotions;
    stats_.ramPromotions += delta.ramPromotions;
    stats_.ramDemotions += delta.ramDemotions;
    stats_.corruptEntriesQuarantined += delta.corruptEntriesQuarantined;
    stats_.staleClaimsSwept += delta.staleClaimsSwept;
    stats_.recoveredUnits += delta.recoveredUnits;
}

void
ResultCache::quarantineEntry(const std::string &path)
{
    // Rename, never delete: the damaged bytes stay on disk for
    // post-mortem, out of the lookup namespace. The rename is the
    // cross-process race arbiter — every shard that trips over the
    // same bad entry tries it, exactly one succeeds and counts it.
    std::error_code ec;
    std::filesystem::rename(path, path + ".quarantined", ec);
    if (!ec)
        ++stats_.corruptEntriesQuarantined;
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
ResultCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = CacheStats{};
}

uint32_t
ResultCache::hotness(uint64_t key_hash) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return hotnessLocked(key_hash);
}

void
ResultCache::setRamTraceBudget(uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    ramTraceBudget_ = bytes;
}

void
ResultCache::setRamTraceServe(bool on)
{
    std::lock_guard<std::mutex> lock(mu_);
    ramServe_ = on;
}

namespace
{

/** v2 on-disk packed-trace entry: magic, version, whole-blob FNV-1a
 *  checksum, key echo, mix counters, payload. The blob checksum covers
 *  everything after itself — the payload carries its own internal
 *  checksum, but the key echo and mix counters would otherwise be
 *  trusted unverified, and a flipped counter byte must quarantine the
 *  entry, not silently skew a warm run's instruction mix. */
constexpr char kTraceMagic[4] = {'S', 'W', 'T', 'P'};
constexpr uint32_t kTraceTierVersion = 2;

template <typename T>
void
appendRaw(std::string *out, T v)
{
    out->append(reinterpret_cast<const char *>(&v), sizeof v);
}

template <typename T>
bool
readRaw(const std::string &buf, size_t *at, T *v)
{
    if (buf.size() - *at < sizeof(T))
        return false;
    std::memcpy(v, buf.data() + *at, sizeof(T));
    *at += sizeof(T);
    return true;
}

/** Serialize one packed-trace entry into `<dir>/<stem>.swtp`
 *  (write-then-rename). Shared by the T1 store and the post-capture
 *  far publish. @return bytes written, 0 on failure. */
uint64_t
writeTraceBlob(const std::string &dir_s, const TraceKey &key,
               const trace::PackedTrace &t, const trace::MixStats &mix)
{
    const auto counters = mix.counters();
    std::string blob;
    blob.reserve(t.byteSize() + key.kernel.size() +
                 counters.size() * sizeof(uint64_t) + 64);
    blob.append(kTraceMagic, 4);
    appendRaw(&blob, kTraceTierVersion);
    const size_t sumAt = blob.size();
    appendRaw(&blob, uint64_t(0)); // blob checksum, patched below
    appendRaw(&blob, uint32_t(key.kernel.size()));
    blob.append(key.kernel);
    appendRaw(&blob, int32_t(key.impl));
    appendRaw(&blob, int32_t(key.vecBits));
    appendRaw(&blob, key.optionsFp);
    appendRaw(&blob, uint32_t(counters.size()));
    for (uint64_t v : counters)
        appendRaw(&blob, v);
    t.appendPayload(&blob);
    {
        Fnv blobSum;
        blobSum.bytes(blob.data() + sumAt + sizeof(uint64_t),
                      blob.size() - sumAt - sizeof(uint64_t));
        std::memcpy(blob.data() + sumAt, &blobSum.h, sizeof blobSum.h);
    }

    const auto dir = std::filesystem::path(dir_s);
    const auto path = dir / (key.hex() + ".swtp");
    // Write-then-rename so concurrent readers never see a torn entry.
    const auto tmp = dir / (key.hex() + ".swtp.tmp");
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return 0;
        os.write(blob.data(), std::streamsize(blob.size()));
        if (!os)
            return 0;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return 0;
    }
    return blob.size();
}

} // namespace

bool
ResultCache::lookupTrace(const TraceKey &key, trace::PackedTrace *out,
                         trace::MixStats *mix)
{
    const uint64_t h = key.hash();
    uint32_t hot = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        hot = noteLookupLocked(h);
        if (ramServe_) {
            // T0: serve the pinned copy. Runs on the capture thread,
            // hence the no-alloc bracket: clone() is mmap + memcpy and
            // MixStats is POD, so a RAM hit is heap-silent.
            for (RamTrace &slot : ramTraces_) {
                if (!slot.used || slot.keyHash != h)
                    continue;
                SWAN_NOALLOC_BEGIN("cache T0 pinned-trace serve");
                const bool match =
                    std::strncmp(slot.kernel, key.kernel.c_str(),
                                 sizeof slot.kernel) == 0 &&
                    slot.impl == int32_t(key.impl) &&
                    slot.vecBits == key.vecBits &&
                    slot.optionsFp == key.optionsFp;
                if (match) {
                    *out = slot.trace.clone();
                    *mix = slot.mix;
                }
                SWAN_NOALLOC_END();
                if (match) {
                    ++stats_.traceRamHits;
                    return true;
                }
                // Key-echo mismatch under a hash collision: fall
                // through to the durable tiers, like on-disk foreign
                // entries.
            }
        }
    }
    const std::string name = key.hex() + ".swtp";
    if (!diskDir_.empty()) {
        switch (loadTraceFrom(diskDir_, key, out, mix)) {
        case DiskLoad::Hit: {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.traceHits;
            maybePinTraceLocked(key, hot, *out, *mix);
            return true;
        }
        case DiskLoad::Corrupt: {
            std::lock_guard<std::mutex> lock(mu_);
            quarantineEntry(
                (std::filesystem::path(diskDir_) / name).string());
            break;
        }
        case DiskLoad::Miss:
            break;
        }
    }
    if (!farDir_.empty()) {
        if (!entryExists(farDir_, h, ".swtp")) {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.farMisses;
        } else {
            switch (loadTraceFrom(farDir_, key, out, mix)) {
            case DiskLoad::Hit: {
                uint64_t copied = 0;
                if (!diskDir_.empty()) {
                    obs::Span span(obs::Phase::Promote);
                    copied = copyEntry(farDir_, diskDir_, name);
                    span.addArg(copied);
                }
                {
                    std::lock_guard<std::mutex> lock(mu_);
                    ++stats_.farHits;
                    if (copied)
                        ++stats_.farPromotions;
                    maybePinTraceLocked(key, hot, *out, *mix);
                }
                if (copied)
                    pruneDisk(copied);
                return true;
            }
            case DiskLoad::Corrupt: {
                std::lock_guard<std::mutex> lock(mu_);
                quarantineEntry(
                    (std::filesystem::path(farDir_) / name).string());
                ++stats_.farMisses;
                break;
            }
            case DiskLoad::Miss: {
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.farMisses;
                break;
            }
            }
        }
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.traceMisses;
    return false;
}

ResultCache::DiskLoad
ResultCache::loadTraceFrom(const std::string &dir, const TraceKey &key,
                           trace::PackedTrace *out,
                           trace::MixStats *mix)
{
    const auto path =
        std::filesystem::path(dir) / (key.hex() + ".swtp");
    // Single sized read: a trace blob can be tens of MB, so avoid the
    // ostringstream route's extra full copies.
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec)
        return DiskLoad::Miss;
    std::string buf(size, '\0');
    {
        std::ifstream in(path, std::ios::binary);
        if (!in || !in.read(buf.data(), std::streamsize(size)))
            return DiskLoad::Miss; // unreadable: cannot judge the bytes
    }

    size_t at = 0;
    char magic[4];
    uint32_t version = 0;
    if (!readRaw(buf, &at, &magic) ||
        std::memcmp(magic, kTraceMagic, 4) != 0 ||
        !readRaw(buf, &at, &version) || version != kTraceTierVersion)
        return DiskLoad::Corrupt;
    // Whole-blob checksum: any damaged byte after this field — key
    // echo, counters or payload — reads as corruption, never as data.
    uint64_t want = 0;
    if (!readRaw(buf, &at, &want))
        return DiskLoad::Corrupt;
    Fnv blobSum;
    blobSum.bytes(buf.data() + at, buf.size() - at);
    if (blobSum.h != want)
        return DiskLoad::Corrupt;
    // Key echo: a hash collision or stale rename must read as a miss.
    uint32_t kernelLen = 0;
    if (!readRaw(buf, &at, &kernelLen) || buf.size() - at < kernelLen)
        return DiskLoad::Corrupt;
    TraceKey seen;
    seen.kernel.assign(buf.data() + at, kernelLen);
    at += kernelLen;
    int32_t impl = -1;
    if (!readRaw(buf, &at, &impl) || !readRaw(buf, &at, &seen.vecBits) ||
        !readRaw(buf, &at, &seen.optionsFp))
        return DiskLoad::Corrupt;
    seen.impl = core::Impl(impl);
    if (!(seen == key))
        return DiskLoad::Miss;
    // Mix counter snapshot, so a warm hit skips a full trace decode.
    uint32_t mixLen = 0;
    if (!readRaw(buf, &at, &mixLen) ||
        (buf.size() - at) / sizeof(uint64_t) < mixLen)
        return DiskLoad::Corrupt;
    std::vector<uint64_t> counters(mixLen);
    for (auto &v : counters)
        if (!readRaw(buf, &at, &v))
            return DiskLoad::Corrupt;
    trace::MixStats seenMix;
    if (!trace::MixStats::fromCounters(counters, &seenMix))
        return DiskLoad::Corrupt;
    if (!trace::PackedTrace::parsePayload(
            reinterpret_cast<const uint8_t *>(buf.data()) + at,
            buf.size() - at, out))
        return DiskLoad::Corrupt;
    *mix = seenMix;
    return DiskLoad::Hit;
}

void
ResultCache::storeTrace(const TraceKey &key, const trace::PackedTrace &t,
                        const trace::MixStats &mix)
{
    if (diskDir_.empty())
        return;
    // T1 only — never the far tier: storeTrace runs inside the capture
    // window (phase 1c), where a slow far write would also have to
    // allocate. The scheduler publishes captured traces to T2 strictly
    // post-capture via publishTraceFar().
    const uint64_t wrote = writeTraceBlob(diskDir_, key, t, mix);
    if (!wrote)
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.traceStores;
    }
    pruneDisk(wrote);
}

void
ResultCache::publishTraceFar(const TraceKey &key,
                             const trace::PackedTrace *t,
                             const trace::MixStats &mix)
{
    if (farDir_.empty() || !farPublishEnabled())
        return;
    const std::string name = key.hex() + ".swtp";
    std::error_code ec;
    if (std::filesystem::exists(std::filesystem::path(farDir_) / name,
                                ec))
        return;
    if (!diskDir_.empty() &&
        std::filesystem::exists(std::filesystem::path(diskDir_) / name,
                                ec)) {
        obs::Span pub(obs::Phase::Publish);
        const uint64_t copied = copyEntry(diskDir_, farDir_, name);
        pub.addArg(copied);
        if (copied) {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.farStores;
        }
        return;
    }
    if (!t || t->byteSize() == 0)
        return; // spilled with no durable copy: nothing to publish
    obs::Span pub(obs::Phase::Publish);
    const uint64_t wrote = writeTraceBlob(farDir_, key, *t, mix);
    pub.addArg(wrote);
    if (wrote) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.farStores;
    }
}

bool
ResultCache::traceAvailable(const TraceKey &key) const
{
    // Durable tiers only, deliberately: whether a trace is *pinned* in
    // T0 depends on the byte budget, and this probe gates behavior
    // (the scheduler's T0-serve decision) that must be identical
    // across budget values.
    const uint64_t h = key.hash();
    if (!diskDir_.empty() && entryExists(diskDir_, h, ".swtp"))
        return true;
    if (!farDir_.empty() && entryExists(farDir_, h, ".swtp"))
        return true;
    return false;
}

void
ResultCache::maybePinTraceLocked(const TraceKey &key, uint32_t hot_count,
                                 const trace::PackedTrace &t,
                                 const trace::MixStats &mix)
{
    // Runs on the capture thread: everything below is mmap + POD (no
    // malloc), because whether a pin happens depends on the byte
    // budget, and a budget-dependent allocation would break the
    // cross-budget byte-identity contract.
    if (hot_count < kPinHits)
        return;
    const uint64_t bytes = t.byteSize();
    if (bytes == 0)
        return;
    if (ramTraceBudget_ && bytes > ramTraceBudget_)
        return; // can never fit, even with every slot evicted
    if (key.kernel.size() >= sizeof ramTraces_[0].kernel)
        return; // no room for the full key echo: never pin
    for (const RamTrace &slot : ramTraces_)
        if (slot.used && slot.keyHash == key.hash())
            return; // already pinned
    const uint64_t keyHash = key.hash();
    const uint64_t mySeq = seqLocked(keyHash);
    for (;;) {
        RamTrace *freeSlot = nullptr;
        for (RamTrace &slot : ramTraces_)
            if (!slot.used) {
                freeSlot = &slot;
                break;
            }
        const bool overBudget =
            ramTraceBudget_ && ramTraceBytes_ + bytes > ramTraceBudget_;
        if (freeSlot && !overBudget) {
            obs::Span span(obs::Phase::Promote, bytes);
            freeSlot->keyHash = keyHash;
            freeSlot->bytes = bytes;
            freeSlot->trace = t.clone();
            freeSlot->mix = mix;
            std::memset(freeSlot->kernel, 0, sizeof freeSlot->kernel);
            std::memcpy(freeSlot->kernel, key.kernel.data(),
                        key.kernel.size());
            freeSlot->impl = int32_t(key.impl);
            freeSlot->vecBits = key.vecBits;
            freeSlot->optionsFp = key.optionsFp;
            freeSlot->used = true;
            ramTraceBytes_ += bytes;
            ++stats_.ramPromotions;
            return;
        }
        // Slot or budget pressure: evict the coldest pin, but only if
        // it is strictly colder than the candidate — a warm memo never
        // churns for an equally-warm newcomer.
        RamTrace *victim = nullptr;
        uint32_t vHot = 0;
        uint64_t vSeq = 0;
        for (RamTrace &slot : ramTraces_) {
            if (!slot.used)
                continue;
            const uint32_t sh = hotnessLocked(slot.keyHash);
            const uint64_t ss = seqLocked(slot.keyHash);
            const bool colderThanVictim =
                !victim || sh < vHot || (sh == vHot && ss < vSeq) ||
                (sh == vHot && ss == vSeq &&
                 slot.keyHash < victim->keyHash);
            if (colderThanVictim) {
                victim = &slot;
                vHot = sh;
                vSeq = ss;
            }
        }
        if (!victim)
            return;
        const bool colderThanUs =
            vHot < hot_count || (vHot == hot_count && vSeq < mySeq);
        if (!colderThanUs)
            return;
        obs::Span span(obs::Phase::Demote, victim->bytes);
        ramTraceBytes_ -= std::min(ramTraceBytes_, victim->bytes);
        victim->trace = trace::PackedTrace(); // munmap, not free()
        victim->used = false;
        victim->keyHash = 0;
        victim->bytes = 0;
        ++stats_.ramDemotions;
    }
}

void
ResultCache::pruneRamLocked()
{
    if (!ramMaxBytes_)
        return;
    while (ramBytesEst_ > ramMaxBytes_ && map_.size() > 1) {
        // Victim = the coldest entry, found by a min-reduction over
        // the unordered map: the strict total order on (hotness,
        // first-lookup seq, hash, key) makes the winner independent of
        // traversal order.
        auto victim = map_.end();
        uint32_t vHot = 0;
        uint64_t vSeq = 0;
        uint64_t vHash = 0;
        for (auto it = map_.begin(); it != map_.end(); ++it) {
            const uint64_t hsh = it->first.hash();
            const uint32_t hc = hotnessLocked(hsh);
            const uint64_t sq = seqLocked(hsh);
            bool colder = false;
            if (victim == map_.end())
                colder = true;
            else if (hc != vHot)
                colder = hc < vHot;
            else if (sq != vSeq)
                colder = sq < vSeq;
            else if (hsh != vHash)
                colder = hsh < vHash;
            else
                colder = keyLess(it->first, victim->first);
            if (colder) {
                victim = it;
                vHot = hc;
                vSeq = sq;
                vHash = hsh;
            }
        }
        if (victim == map_.end())
            return;
        const uint64_t cost =
            entryRamCost(victim->first, victim->second);
        obs::Span span(obs::Phase::Demote, cost);
        ramBytesEst_ -= std::min(ramBytesEst_, cost);
        map_.erase(victim);
        ++stats_.ramDemotions;
    }
}

namespace
{

/** True for the pruner's unit of accounting: .swr results, .swtp
 *  packed traces, and .quarantined corpses (never served, but they
 *  hold disk and age out under the same cold-first cap). Temporaries
 *  (.tmp) and foreign files are ignored. */
bool
isCacheEntry(const std::filesystem::path &p)
{
    const auto ext = p.extension();
    return ext == ".swr" || ext == ".swtp" || ext == ".quarantined";
}

} // namespace

uint64_t
ResultCache::diskBytes() const
{
    if (diskDir_.empty())
        return 0;
    uint64_t total = 0;
    std::error_code ec;
    for (std::filesystem::directory_iterator
             it(diskDir_, ec),
         end;
         !ec && it != end; it.increment(ec)) {
        if (!isCacheEntry(it->path()))
            continue;
        std::error_code fec;
        const auto size = std::filesystem::file_size(it->path(), fec);
        if (!fec)
            total += size;
    }
    return total;
}

uint64_t
ResultCache::copyEntry(const std::string &src_dir,
                       const std::string &dst_dir,
                       const std::string &name)
{
    const auto src = std::filesystem::path(src_dir) / name;
    std::error_code ec;
    const auto size = std::filesystem::file_size(src, ec);
    if (ec)
        return 0;
    std::string buf(size, '\0');
    {
        std::ifstream in(src, std::ios::binary);
        if (!in || !in.read(buf.data(), std::streamsize(size)))
            return 0;
    }
    const auto dst = std::filesystem::path(dst_dir) / name;
    // Write-then-rename, like every tier write: a reader (or a
    // concurrent promoter racing on the same entry) sees the old
    // state or the new one, never a torn copy.
    const auto tmp = std::filesystem::path(dst_dir) / (name + ".tmp");
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            return 0;
        os.write(buf.data(), std::streamsize(buf.size()));
        if (!os) {
            std::filesystem::remove(tmp, ec);
            return 0;
        }
    }
    std::filesystem::rename(tmp, dst, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return 0;
    }
    return uint64_t(buf.size());
}

void
ResultCache::pruneDisk(uint64_t stored_bytes)
{
    if (diskDir_.empty() || maxDiskBytes_ == 0)
        return;

    // Fast path: bump the running total and skip the directory walk
    // while it stays under the cap. Entries written by other processes
    // are only picked up at the next full scan, so a shared capped
    // directory can transiently overshoot by what the neighbors wrote
    // since this process last scanned.
    uint64_t baseline = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (diskTotalKnown_) {
            diskTotal_ += stored_bytes;
            if (diskTotal_ <= maxDiskBytes_)
                return;
        }
        baseline = diskTotal_;
    }

    struct Entry
    {
        uint32_t hot = 0;
        uint64_t seq = 0;
        uint64_t size = 0;
        std::string name;
    };
    std::vector<Entry> entries;
    uint64_t total = 0;
    std::error_code ec;
    for (std::filesystem::directory_iterator
             it(diskDir_, ec),
         end;
         !ec && it != end; it.increment(ec)) {
        const auto &p = it->path();
        if (!isCacheEntry(p))
            continue;
        std::error_code fec;
        Entry e;
        e.size = std::filesystem::file_size(p, fec);
        if (fec)
            continue;
        e.name = p.filename().string();
        total += e.size;
        entries.push_back(std::move(e));
    }
    {
        // Join each entry to its hotness/first-lookup record via the
        // file-name stem. Foreign stems stay (0, 0): entries this
        // process has no demand signal for age out first, in name
        // order.
        std::lock_guard<std::mutex> lock(mu_);
        for (Entry &e : entries) {
            uint64_t stem = 0;
            if (parseStemHash(e.name, &stem)) {
                e.hot = hotnessLocked(stem);
                e.seq = seqLocked(stem);
            }
        }
    }
    // Resync the estimate. Stores racing with the scan bumped
    // diskTotal_ past `baseline`; re-apply that delta on top of the
    // scanned total (their files may also have been seen by the scan,
    // so this can double-count — a deliberate over-estimate: the worst
    // case is one extra scan, never a missed cap violation).
    const auto resync = [&](uint64_t scanned) {
        std::lock_guard<std::mutex> lock(mu_);
        diskTotal_ = scanned + (diskTotal_ - baseline);
        diskTotalKnown_ = true;
    };
    if (total <= maxDiskBytes_) {
        resync(total);
        return;
    }

    // Coldest first: (hotness, first-lookup order, name). A pure
    // function of the lookup history — never file mtimes, whose
    // coarse, filesystem-dependent clocks would make two runs of the
    // same command prune different entries (and whose reads the
    // nondet lint now rejects in this file).
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.hot != b.hot)
                      return a.hot < b.hot;
                  if (a.seq != b.seq)
                      return a.seq < b.seq;
                  return a.name < b.name;
              });

    const auto dir = std::filesystem::path(diskDir_);
    uint64_t evicted = 0;
    obs::Span span(obs::Phase::Demote);
    for (const auto &e : entries) {
        if (total <= maxDiskBytes_)
            break;
        std::error_code rec;
        // A concurrent process may have removed it already; only count
        // (and discount) files this call actually deleted.
        if (std::filesystem::remove(dir / e.name, rec) && !rec) {
            total -= e.size;
            ++evicted;
            span.addArg(e.size);
        }
    }
    span.close();
    resync(total);
    std::lock_guard<std::mutex> lock(mu_);
    stats_.evictions += evicted;
}

std::string
ResultCache::placementMap() const
{
    struct Rec
    {
        bool mem = false;
        bool disk = false;
        bool far = false;
        bool trace = false;
    };
    std::map<std::string, Rec> recs;
    const auto scan = [&recs](const std::string &dir, bool is_far) {
        if (dir.empty())
            return;
        std::error_code ec;
        for (std::filesystem::directory_iterator it(dir, ec), end;
             !ec && it != end; it.increment(ec)) {
            const auto &p = it->path();
            const auto ext = p.extension();
            if (ext != ".swr" && ext != ".swtp")
                continue;
            Rec &r = recs[p.stem().string()];
            if (is_far)
                r.far = true;
            else
                r.disk = true;
            if (ext == ".swtp")
                r.trace = true;
        }
    };
    scan(diskDir_, false);
    scan(farDir_, true);
    std::ostringstream os;
    std::lock_guard<std::mutex> lock(mu_);
    // Fold the in-memory result tier in. Iterating the unordered map
    // only inserts into the ordered `recs`, so the rendered output is
    // independent of traversal order.
    for (const auto &kv : map_)
        recs[kv.first.hex()].mem = true;
    for (const auto &kv : recs) {
        uint64_t stem = 0;
        uint32_t hotc = 0;
        if (parseStemHash(kv.first, &stem))
            hotc = hotnessLocked(stem);
        os << kv.first << ' '
           << (kv.second.trace ? "trace" : "result")
           << " mem=" << (kv.second.mem ? 1 : 0)
           << " disk=" << (kv.second.disk ? 1 : 0)
           << " far=" << (kv.second.far ? 1 : 0) << " hot=" << hotc
           << '\n';
    }
    return os.str();
}

ResultCache::DiskLoad
ResultCache::loadDisk(const std::string &dir, const CacheKey &key,
                      core::KernelRun *out)
{
    const auto path =
        std::filesystem::path(dir) / (key.hex() + ".swr");
    std::error_code ec;
    const auto fsize = std::filesystem::file_size(path, ec);
    if (ec)
        return DiskLoad::Miss; // absent: the ordinary cold-cache case
    std::string buf(fsize, '\0');
    {
        std::ifstream raw(path, std::ios::binary);
        if (!raw || !raw.read(buf.data(), std::streamsize(fsize)))
            return DiskLoad::Miss; // unreadable: cannot judge the bytes
    }

    size_t bodyStart = buf.find('\n');
    if (bodyStart == std::string::npos ||
        buf.compare(0, bodyStart, kMagic) != 0)
        return DiskLoad::Corrupt;
    ++bodyStart;
    // Self-checksum line (entries written since the quarantine tier;
    // older entries simply lack it and skip verification): FNV-1a over
    // every byte after this line, so any flipped bit or truncation in
    // the body is detected before a field of it is trusted.
    constexpr std::string_view kChecksumTag = "checksum ";
    if (buf.compare(bodyStart, kChecksumTag.size(), kChecksumTag) == 0) {
        const size_t eol = buf.find('\n', bodyStart);
        if (eol == std::string::npos)
            return DiskLoad::Corrupt;
        const std::string cs = buf.substr(
            bodyStart + kChecksumTag.size(),
            eol - bodyStart - kChecksumTag.size());
        char *endp = nullptr;
        const uint64_t want = std::strtoull(cs.c_str(), &endp, 16);
        if (endp == cs.c_str() || *endp != '\0')
            return DiskLoad::Corrupt;
        bodyStart = eol + 1;
        Fnv f;
        f.bytes(buf.data() + bodyStart, buf.size() - bodyStart);
        if (f.h != want)
            return DiskLoad::Corrupt;
    }

    std::istringstream in(buf.substr(bodyStart));
    std::string line;
    core::KernelRun run;
    CacheKey seen;
    std::vector<uint64_t> mixFlat;
    bool haveMix = false;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag))
            continue;
        auto &s = run.sim;
        const auto rd = [&ls](auto &field) { ls >> field; };
        // istream extraction does not accept hexfloat; go via strtod.
        const auto rdf = [&ls](double &field) {
            std::string tok;
            if (ls >> tok)
                field = std::strtod(tok.c_str(), nullptr);
        };
        if (tag == "kernel")
            rd(seen.kernel);
        else if (tag == "impl") {
            int v = -1;
            ls >> v;
            seen.impl = core::Impl(v);
        } else if (tag == "vec_bits")
            rd(seen.vecBits);
        else if (tag == "config_fp")
            ls >> std::hex >> seen.configFp >> std::dec;
        else if (tag == "options_fp")
            ls >> std::hex >> seen.optionsFp >> std::dec;
        else if (tag == "warmup")
            rd(seen.warmupPasses);
        else if (tag == "fault_fp")
            ls >> std::hex >> seen.faultFp >> std::dec;
        else if (tag == "sim.config")
            rd(s.config);
        else if (tag == "sim.instrs")
            rd(s.instrs);
        else if (tag == "sim.cycles")
            rd(s.cycles);
        else if (tag == "sim.ipc")
            rdf(s.ipc);
        else if (tag == "sim.time_sec")
            rdf(s.timeSec);
        else if (tag == "sim.l1_mpki")
            rdf(s.l1Mpki);
        else if (tag == "sim.l2_mpki")
            rdf(s.l2Mpki);
        else if (tag == "sim.llc_mpki")
            rdf(s.llcMpki);
        else if (tag == "sim.l1_hit_rate")
            rdf(s.l1HitRate);
        else if (tag == "sim.fe_stall_pct")
            rdf(s.feStallPct);
        else if (tag == "sim.be_stall_pct")
            rdf(s.beStallPct);
        else if (tag == "sim.dram_reads")
            rd(s.dramReads);
        else if (tag == "sim.dram_writes")
            rd(s.dramWrites);
        else if (tag == "sim.dram_per_kcycle")
            rdf(s.dramAccessPerKCycle);
        else if (tag == "sim.by_class") {
            for (auto &v : s.byClass)
                ls >> v;
        } else if (tag == "sim.vec_bytes")
            rd(s.vecBytes);
        else if (tag == "sim.l1_accesses")
            rd(s.l1Accesses);
        else if (tag == "sim.l2_accesses")
            rd(s.l2Accesses);
        else if (tag == "sim.llc_accesses")
            rd(s.llcAccesses);
        else if (tag == "sim.energy_j")
            rdf(s.energyJ);
        else if (tag == "sim.power_w")
            rdf(s.powerW);
        else if (tag == "mix") {
            uint64_t v;
            while (ls >> v)
                mixFlat.push_back(v);
            haveMix = true;
        }
    }
    // Structural damage first (a checksum-less legacy entry truncated
    // mid-body lands here), then the key echo: a hash collision or
    // stale rename is a foreign-but-intact entry — a plain miss.
    if (!haveMix || !trace::MixStats::fromCounters(mixFlat, &run.mix))
        return DiskLoad::Corrupt;
    if (!(seen == key))
        return DiskLoad::Miss;
    *out = run;
    return DiskLoad::Hit;
}

uint64_t
ResultCache::storeDisk(const std::string &dir_s, const CacheKey &key,
                       const core::KernelRun &run)
{
    const auto dir = std::filesystem::path(dir_s);
    const auto path = dir / (key.hex() + ".swr");
    // Write-then-rename so concurrent readers never see a torn entry.
    const auto tmp = dir / (key.hex() + ".tmp");
    // The body is built in memory first so the header can carry its
    // FNV-1a self-checksum (what loadDisk verifies before trusting a
    // single field).
    std::ostringstream os;
    {
        const auto &s = run.sim;
        os << "kernel " << key.kernel << "\n"
           << "impl " << int(key.impl) << "\n"
           << "vec_bits " << key.vecBits << "\n"
           << "config_fp " << hex64(key.configFp) << "\n"
           << "options_fp " << hex64(key.optionsFp) << "\n"
           << "warmup " << key.warmupPasses << "\n";
        // Written only for faulted keys: clean .swr bodies stay
        // byte-identical to pre-fault builds (the reader treats a
        // missing tag as faultFp 0).
        if (key.faultFp)
            os << "fault_fp " << hex64(uint64_t(key.faultFp)) << "\n";
        os << "sim.config " << s.config << "\n"
           << "sim.instrs " << s.instrs << "\n"
           << "sim.cycles " << s.cycles << "\n"
           << "sim.ipc " << f64str(s.ipc) << "\n"
           << "sim.time_sec " << f64str(s.timeSec) << "\n"
           << "sim.l1_mpki " << f64str(s.l1Mpki) << "\n"
           << "sim.l2_mpki " << f64str(s.l2Mpki) << "\n"
           << "sim.llc_mpki " << f64str(s.llcMpki) << "\n"
           << "sim.l1_hit_rate " << f64str(s.l1HitRate) << "\n"
           << "sim.fe_stall_pct " << f64str(s.feStallPct) << "\n"
           << "sim.be_stall_pct " << f64str(s.beStallPct) << "\n"
           << "sim.dram_reads " << s.dramReads << "\n"
           << "sim.dram_writes " << s.dramWrites << "\n"
           << "sim.dram_per_kcycle " << f64str(s.dramAccessPerKCycle)
           << "\n";
        os << "sim.by_class";
        for (auto v : s.byClass)
            os << " " << v;
        os << "\n"
           << "sim.vec_bytes " << s.vecBytes << "\n"
           << "sim.l1_accesses " << s.l1Accesses << "\n"
           << "sim.l2_accesses " << s.l2Accesses << "\n"
           << "sim.llc_accesses " << s.llcAccesses << "\n"
           << "sim.energy_j " << f64str(s.energyJ) << "\n"
           << "sim.power_w " << f64str(s.powerW) << "\n";
        os << "mix";
        for (auto v : run.mix.counters())
            os << " " << v;
        os << "\n";
    }
    const std::string body = os.str();
    Fnv sum;
    sum.bytes(body.data(), body.size());
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f)
            return 0;
        f << kMagic << "\n"
          << "checksum " << hex64(sum.h) << "\n";
        f.write(body.data(), std::streamsize(body.size()));
        if (!f)
            return 0;
    }
    std::error_code ec;
    const auto size = std::filesystem::file_size(tmp, ec);
    const uint64_t written = ec ? 0 : uint64_t(size);
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return 0;
    }
    return written;
}

} // namespace swan::sweep
