/**
 * @file
 * Pluggable sweep-report emitters. One SweepResult stream feeds three
 * formats: the existing core::Table console text, CSV (header + one
 * row per point) and JSON-lines (one object per point). Emitters see
 * results in point-index order, so every format is byte-stable across
 * thread counts. The cache summary goes through a separate call so
 * callers can route it to a diagnostic stream and keep the data stream
 * comparable between cold and warm runs.
 */

#ifndef SWAN_SWEEP_EMIT_HH
#define SWAN_SWEEP_EMIT_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sweep/scheduler.hh"

namespace swan::sweep
{

/** Report formats. */
enum class Format
{
    Table,
    Csv,
    JsonLines,
};

/** Parse "table" / "csv" / "jsonl"; false on anything else. */
bool formatForName(const std::string &name, Format *out);

/** Streaming report sink. */
class Emitter
{
  public:
    virtual ~Emitter() = default;

    virtual void begin(std::ostream &os) { (void)os; }
    virtual void point(std::ostream &os, const SweepResult &r) = 0;
    virtual void end(std::ostream &os) { (void)os; }
};

/** @param fault_column include the "fault" identifier column (set iff
 *  the sweep had a fault axis — see anyFaulted; clean sweeps keep the
 *  historic schema byte-for-byte). */
std::unique_ptr<Emitter> makeEmitter(Format format,
                                     bool fault_column = false);

/** Does any result carry an enabled fault scenario? (Decides the
 *  fault column for a whole report.) */
bool anyFaulted(const std::vector<SweepResult> &results);

/** begin + every point in index order + end. */
void emitResults(std::ostream &os, const std::vector<SweepResult> &results,
                 Format format);

/** One-line cache summary, e.g. "cache: 12 hits, 3 misses, ...". */
std::string cacheSummary(const CacheStats &stats);

} // namespace swan::sweep

#endif // SWAN_SWEEP_EMIT_HH
