#include "sweep/backend.hh"

namespace swan::sweep
{

bool
backendForName(const std::string &name, Backend *out)
{
    if (name == "threaded")
        *out = Backend::Threaded;
    else if (name == "inline")
        *out = Backend::Inline;
    else if (name == "sharded")
        *out = Backend::Sharded;
    else
        return false;
    return true;
}

std::string_view
name(Backend backend)
{
    switch (backend) {
      case Backend::Inline: return "inline";
      case Backend::Sharded: return "sharded";
      case Backend::Threaded:
      default: return "threaded";
    }
}

void
InlineBackend::run(const BackendJob &job)
{
    for (size_t u = 0; u < job.units; ++u)
        job.execute(job.arg, u);
}

} // namespace swan::sweep
