/**
 * @file
 * Parallel sweep executor, in two phases. Phase 1 (serial, point-index
 * order): cache lookups and trace captures — traces carry real buffer
 * addresses and the cache models are address-sensitive, so the heap
 * must evolve identically whatever the job count; each distinct
 * (kernel, impl, width, working set) is captured once and shared
 * across core configs. Phase 2 (parallel): simulations fan out over a
 * work-stealing thread pool — each worker owns a deque of point
 * indices, pops from its own front and steals from the back of the
 * fullest victim when it drains. Simulation is a pure function of
 * (trace, config) and results land in a pre-sized vector at their
 * point index, so `--jobs 1` and `--jobs 8` produce byte-equal
 * reports; the same determinism (seeded inputs, trace-driven model)
 * is what makes the result cache sound.
 */

#ifndef SWAN_SWEEP_SCHEDULER_HH
#define SWAN_SWEEP_SCHEDULER_HH

#include <string_view>
#include <vector>

#include "core/runner.hh"
#include "sweep/cache.hh"
#include "sweep/grid.hh"

namespace swan::sweep
{

/** One finished experiment point. */
struct SweepResult
{
    SweepPoint point;
    core::KernelRun run;
    bool cacheHit = false;  //!< served by the cache, not simulated
};

/** Scheduler knobs. */
struct SchedulerConfig
{
    /** Worker threads; <= 0 means std::thread::hardware_concurrency. */
    int jobs = 1;
    /** Optional result cache shared across sweeps / benches. */
    ResultCache *cache = nullptr;
    /** Cache warm-up passes fed to the core model (paper Section 4.3). */
    int warmupPasses = 1;
};

/**
 * Execute every point. Closes kernel registration (see Registry) before
 * workers may touch the registry concurrently. Within one sweep, points
 * sharing a (kernel, impl, width, working set) capture reuse one trace
 * across core configs, so a Figure-5(b)-style sweep captures each
 * kernel once, not once per config. Throws std::runtime_error if a
 * worker fails.
 *
 * @return one SweepResult per input point, in point-index order.
 */
std::vector<SweepResult> runSweep(const std::vector<SweepPoint> &points,
                                  const SchedulerConfig &cfg = {});

/** expand() + runSweep() in one call; empty + *err on a bad spec. */
std::vector<SweepResult> runSweep(const SweepSpec &spec,
                                  const SchedulerConfig &cfg,
                                  std::string *err);

/**
 * First result matching the given axes; null if absent. Empty @p config
 * / @p working_set match any value (the common single-config case).
 */
const SweepResult *
findResult(const std::vector<SweepResult> &results,
           std::string_view kernel_qualified, core::Impl impl, int vec_bits,
           std::string_view config = {}, std::string_view working_set = {});

} // namespace swan::sweep

#endif // SWAN_SWEEP_SCHEDULER_HH
