/**
 * @file
 * Parallel sweep executor, in two phases. Phase 1 (serial, point-index
 * order): cache lookups, then one packed-trace capture per distinct
 * (kernel, impl, width, working set) — traces carry real buffer
 * addresses and the cache models are address-sensitive, so the heap
 * must evolve identically whatever the job count. Phase 2: the pending
 * points are grouped by capture identity and every group replays its
 * trace through all of its core configurations in a single traversal
 * (sim::simulateTraceMany); the groups are handed as opaque work units
 * to a pluggable ExecutionBackend (sweep/backend.hh) — serial inline,
 * the default work-stealing thread pool, or a fleet of forked shard
 * processes claiming units in the on-disk cache tier. Simulation is a
 * pure function of (trace, configs) and results land in a pre-sized
 * vector at their point index, so every backend, every `--jobs` value
 * and every shard count produces byte-equal reports; the same
 * determinism (seeded inputs, trace-driven model) is what makes the
 * result cache sound.
 *
 * The trace memo holds packed traces (trace::PackedTrace, mmap-backed)
 * under an optional byte budget (SWAN_TRACE_MEMO_BYTES): when live
 * packed bytes would exceed it, the oldest live traces (LRU for these
 * single-use traces) spill to a private disk directory — raw
 * syscalls, zero heap traffic — and their mmap storage is released;
 * the executing worker reloads the checksummed bytes in phase 2. That
 * bounds peak trace memory for paper-scale (`--ws full`) grids at
 * ~budget + one trace while keeping results byte-identical for any
 * budget and any job count (a reloaded trace is bit-identical to the
 * evicted one, so the budget cannot change results by construction;
 * see the TraceGroup notes in scheduler.cc).
 */

#ifndef SWAN_SWEEP_SCHEDULER_HH
#define SWAN_SWEEP_SCHEDULER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/runner.hh"
#include "sweep/backend.hh"
#include "sweep/cache.hh"
#include "sweep/grid.hh"

namespace swan::sweep
{

/** One finished experiment point. */
struct SweepResult
{
    SweepPoint point;
    core::KernelRun run;
    bool cacheHit = false;  //!< served by the cache, not simulated
};

/** Where a streamed row's result came from (SchedulerConfig::onRow). */
struct RowOrigin
{
    enum class Kind
    {
        Cache,    //!< served by the result cache, not simulated
        Computed, //!< simulated in this process (any in-process
                  //!< backend, or sharded crash recovery)
        Shard,    //!< simulated by shard `shard`, merged by the parent
    };

    Kind kind = Kind::Computed;
    int shard = -1;  //!< valid for Kind::Shard; -1 = unknown shard
    size_t done = 0; //!< rows emitted so far, this one included
    size_t total = 0;
};

/** "cache", "computed" or "shard N", for tickers and logs. */
std::string describe(const RowOrigin &origin);

/**
 * Row-streaming callback: one finished point, in point-index order.
 * See SchedulerConfig::onRow for the invocation contract.
 */
using RowCallback =
    std::function<void(const SweepResult &, const RowOrigin &)>;

/** Scheduler knobs. */
struct SchedulerConfig
{
    /** Worker threads; <= 0 means std::thread::hardware_concurrency.
     *  In a sharded run this is the pool width of every shard child
     *  (and of the parent's recovery pool). */
    int jobs = 1;
    /**
     * Execution backend for the simulation phase (sweep/backend.hh).
     * Threaded is upgraded to Sharded when shards > 1; an explicit
     * Inline or Sharded choice always wins. Results are byte-identical
     * whatever the choice.
     */
    Backend backend = Backend::Threaded;
    /**
     * Worker processes for the sharded backend; 1 = in-process. A
     * sharded run claims work units in the on-disk cache tier (the
     * configured cache directory, or a private per-run directory when
     * the cache is memory-only). Session policy, not an engine env
     * var: SWAN_SHARDS is read by swan::Session::envDefaults, never
     * here.
     */
    int shards = 1;
    /** Optional result cache shared across sweeps / benches. */
    ResultCache *cache = nullptr;
    /** Cache warm-up passes fed to the core model (paper Section 4.3). */
    int warmupPasses = 1;
    /**
     * Trace-memo byte budget: maximum bytes of live packed traces
     * before the scheduler spills the oldest to disk (LRU,
     * deterministic; results are byte-identical for any value).
     * 0 = unlimited. Defaults to SWAN_TRACE_MEMO_BYTES (bytes).
     */
    uint64_t traceMemoBytes = envTraceMemoBytes();

    /**
     * Sharded-backend deadline watchdog: if no shard makes publish/
     * claim progress (observed as changes in the share directory) for
     * this many milliseconds, the remaining shard children are killed
     * and their claimed units recovered through the ordinary
     * bit-identical crash-recovery path. 0 = disabled (wait forever).
     * Session policy: SWAN_SHARD_TIMEOUT_MS is read by
     * swan::Session::envDefaults, never here.
     */
    uint64_t shardTimeoutMs = 0;

    /**
     * Units per sharded claim: consecutive work units share one claim
     * lockfile (token = FNV fold of the member unit tokens),
     * amortizing the filesystem round-trip when units are small.
     * 1 = one claim per unit (default; preserves claim filenames).
     * Results are byte-identical for any value. Session policy:
     * SWAN_SHARD_BATCH is read by swan::Session::envDefaults, never
     * here.
     */
    int shardBatch = 1;

    /**
     * Stream every finished row, strictly in point-index order, as
     * results land (cache hits first, then each computed/merged point
     * as soon as every lower-indexed point is done). Invoked from
     * worker threads (or the parent merge thread in a sharded run,
     * which is also where shard-computed rows surface — never from a
     * shard child), serialized by the scheduler: implementations need
     * no locking of their own but must not block for long. The
     * callback fires strictly after the capture phase, so it may
     * allocate freely without touching the determinism contract.
     * Null = no streaming (zero overhead).
     */
    RowCallback onRow;

    /** Parse SWAN_TRACE_MEMO_BYTES; 0 when unset or unparsable. */
    static uint64_t envTraceMemoBytes();
};

/**
 * Execute every point. Closes kernel registration (see Registry) before
 * workers may touch the registry concurrently. Within one sweep, points
 * sharing a (kernel, impl, width, working set) capture reuse one trace
 * across core configs, so a Figure-5(b)-style sweep captures each
 * kernel once, not once per config. Throws std::runtime_error if a
 * worker fails.
 *
 * @return one SweepResult per input point, in point-index order.
 */
std::vector<SweepResult> runSweep(const std::vector<SweepPoint> &points,
                                  const SchedulerConfig &cfg = {});

/** expand() + runSweep() in one call; empty + *err on a bad spec. */
std::vector<SweepResult> runSweep(const SweepSpec &spec,
                                  const SchedulerConfig &cfg,
                                  std::string *err);

/**
 * First result matching the given axes; null if absent. Empty @p config
 * / @p working_set match any value (the common single-config case).
 */
const SweepResult *
findResult(const std::vector<SweepResult> &results,
           std::string_view kernel_qualified, core::Impl impl, int vec_bits,
           std::string_view config = {}, std::string_view working_set = {});

} // namespace swan::sweep

#endif // SWAN_SWEEP_SCHEDULER_HH
