/**
 * @file
 * Declarative sweep grids. A SweepSpec names a cartesian product over
 * the experiment axes the paper's figures vary — kernel (registry
 * filters), implementation, vector width, core configuration preset and
 * working-set preset — and expand() flattens it into an ordered vector
 * of SweepPoints for the scheduler. The flat index is the contract that
 * makes parallel execution reproducible: results land by point index,
 * so output order never depends on thread interleaving.
 */

#ifndef SWAN_SWEEP_GRID_HH
#define SWAN_SWEEP_GRID_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/kernel.hh"
#include "core/runner.hh"
#include "sim/configs.hh"
#include "sim/faults.hh"
#include "swan/internal/contracts.hh"

namespace swan::sweep
{

/** Which registered kernels a sweep covers. */
struct KernelFilter
{
    /**
     * Explicit kernels (qualified "ZL/adler32" or plain "adler32").
     * Empty means every registered kernel (subject to the filters
     * below). Explicitly named kernels bypass the excluded flag, like
     * the DES study kernel.
     */
    std::vector<std::string> names;
    std::string library;        //!< Table-2 symbol, e.g. "ZL"; empty = all
    bool widerOnly = false;     //!< only the eight Figure-5 kernels
    bool includeExcluded = false;
};

/**
 * A declarative experiment grid. Core configurations and working sets
 * are named presets (configForName / workingSetForName) so a spec is a
 * pure value: hashable, printable, and buildable from CLI flags.
 */
struct SweepSpec
{
    KernelFilter kernels;
    std::vector<core::Impl> impls{core::Impl::Neon};
    std::vector<int> vecBits{128};
    std::vector<std::string> configs{"prime"};
    std::vector<std::string> workingSets{"default"};
    /**
     * Fault-scenario axis (sim::FaultSpec::parse syntax; see
     * sim/faults.hh). Empty means clean-only — the historic grid,
     * expanded without a fault dimension. "none" is an explicit clean
     * point inside a fault sweep.
     */
    std::vector<std::string> faults;
    int warmupPasses = 1;
};

/** One fully-resolved experiment point of the flattened grid.
 *  Capture-phase type — size pinned in swan/internal/layout.hh. */
struct SWAN_CAPTURE_TYPE SweepPoint
{
    size_t index = 0;           //!< position in the expanded grid
    const core::KernelSpec *spec = nullptr;
    core::Impl impl = core::Impl::Neon;
    uint16_t vecBits = 128;     //!< 128..1024 (uint16_t: see faultId)
    /**
     * Interned fault-scenario id (internFault); 0 = clean. An id into
     * a process-wide table rather than an embedded sim::FaultSpec +
     * label, packed into what was padding next to vecBits, so
     * sizeof(SweepPoint) is unchanged from the pre-fault grid. That
     * is a determinism requirement, not thrift: the expanded points
     * vector (and every SweepResult) is allocated while a sweep is
     * still capturing, and captured traces record real buffer
     * addresses — growing the struct shifts the capture-time heap
     * layout and with it the address-sensitive cycle counts of clean
     * sweeps that must stay byte-identical to pre-fault builds.
     */
    uint16_t faultId = 0;
    std::string configName;
    sim::CoreConfig config;
    std::string workingSetName;
    core::Options options;

    /** Parsed scenario (a disabled spec when clean). */
    const sim::FaultSpec &fault() const;
    /** Axis label ("none" when clean). */
    const std::string &faultName() const;
};

/**
 * Intern a parsed fault scenario into the process-wide table and
 * return its SweepPoint::faultId. A disabled spec labelled "none" (or
 * unlabelled) interns as 0 — the clean id — without touching the
 * table, so clean expansions allocate nothing. Thread-safe; ids are
 * stable for the life of the process (shard children inherit the
 * table through fork).
 */
uint16_t internFault(const std::string &name, const sim::FaultSpec &spec);

/**
 * Resolve a core-configuration preset: "prime", "gold", "silver",
 * "wider" (Figure 5(a): the Prime datapath widened to the point's
 * vector width), or a Figure 5(b) scalability name like "4W-2V".
 * @return false if the name is not a preset.
 */
bool configForName(const std::string &name, int vec_bits,
                   sim::CoreConfig *out);

/**
 * Resolve a working-set preset: "default" (Options::fromEnv), "full"
 * (paper Section 4.1 sizes), "tiny" (SWAN_FAST sizes), "scalability"
 * (default clamped LLC-resident, the Figure-5 protocol).
 * @return false if the name is not a preset.
 */
bool workingSetForName(const std::string &name, core::Options *out);

/**
 * Clamp @p base so every kernel's working set stays LLC-resident — the
 * software analogue of the paper's Section 4.3 cache warm-up protocol
 * for the scalability studies, where register-width and issue-width
 * effects must not be masked by DRAM bandwidth.
 */
core::Options scalabilityOptions(core::Options base);

/**
 * Flatten @p spec into ordered points: kernel-major, then working set,
 * fault scenario, core config, implementation, vector width.
 * Combinations that cannot
 * run are dropped, not errors: widths above 128 on kernels without a
 * width-generic Neon implementation, and duplicate (Scalar, Auto)
 * points that differ only in vector width (scalar code has no width
 * axis; width is normalized to 128).
 *
 * @return the points, or an empty vector with @p err set when the spec
 *         names an unknown kernel/config/working set or matches nothing.
 */
std::vector<SweepPoint> expand(const SweepSpec &spec, std::string *err);

} // namespace swan::sweep

#endif // SWAN_SWEEP_GRID_HH
