/**
 * @file
 * Compiler auto-vectorization legality/cost model. Encodes the Section 5.2
 * failure taxonomy the paper derives from LLVM's loop vectorizer, and the
 * Table 4 census machinery that buckets each kernel's Auto implementation
 * against its Scalar and Neon implementations by measured speedup.
 */

#ifndef SWAN_AUTOVEC_LEGALITY_HH
#define SWAN_AUTOVEC_LEGALITY_HH

#include <cstdint>
#include <string_view>
#include <vector>

namespace swan::autovec
{

/**
 * Reasons LLVM fails to vectorize a loop (bitmask; a kernel can trip
 * several). Matches the paper's Examples 1-3 plus the other-legality and
 * cost-model buckets.
 */
enum class Fail : uint32_t
{
    None = 0,
    Uncountable = 1u << 0,      //!< loop trip count not computable
    IndirectMemory = 1u << 1,   //!< A[B[i]] defeats aliasing checks
    ComplexPhi = 1u << 2,       //!< loop-carried dependence via PHI nodes
    OtherLegality = 1u << 3,    //!< FP reorder, calls, switches, unsafe mem
    CostModel = 1u << 4,        //!< legal but judged unprofitable
};

inline uint32_t
operator|(Fail a, Fail b)
{
    return uint32_t(a) | uint32_t(b);
}
inline uint32_t
operator|(uint32_t a, Fail b)
{
    return a | uint32_t(b);
}
inline bool
has(uint32_t mask, Fail f)
{
    return (mask & uint32_t(f)) != 0;
}

std::string_view name(Fail f);

/** Per-kernel auto-vectorization verdict. */
struct Verdict
{
    bool vectorizes = false;    //!< LLVM vectorizes the scalar loop
    uint32_t failReasons = 0;   //!< Fail bitmask when !vectorizes
};

/** Table 4 census buckets. */
struct Table4
{
    int autoApproxScalar = 0;
    int autoBelowScalar = 0;
    int autoAboveScalar = 0;    //!< "#Boosted kernels"
    // Of the boosted kernels:
    int autoApproxNeon = 0;
    int autoBelowNeon = 0;
    int autoAboveNeon = 0;
};

/** One kernel's measured speedups relative to Scalar. */
struct SpeedupPair
{
    double autoSpeedup = 1.0;
    double neonSpeedup = 1.0;
};

/**
 * Bucket kernels like Table 4: "approximately equal" means within
 * @p tolerance (default 5%).
 */
Table4 census(const std::vector<SpeedupPair> &pairs,
              double tolerance = 0.05);

} // namespace swan::autovec

#endif // SWAN_AUTOVEC_LEGALITY_HH
