#include "autovec/legality.hh"

namespace swan::autovec
{

std::string_view
name(Fail f)
{
    switch (f) {
      case Fail::Uncountable: return "uncountable-loop";
      case Fail::IndirectMemory: return "indirect-memory";
      case Fail::ComplexPhi: return "complex-phi";
      case Fail::OtherLegality: return "other-legality";
      case Fail::CostModel: return "cost-model";
      default: return "none";
    }
}

Table4
census(const std::vector<SpeedupPair> &pairs, double tolerance)
{
    Table4 t;
    for (const auto &p : pairs) {
        const double rel_scalar = p.autoSpeedup;
        if (rel_scalar > 1.0 + tolerance) {
            ++t.autoAboveScalar;
            const double rel_neon = p.autoSpeedup / p.neonSpeedup;
            if (rel_neon > 1.0 + tolerance)
                ++t.autoAboveNeon;
            else if (rel_neon < 1.0 - tolerance)
                ++t.autoBelowNeon;
            else
                ++t.autoApproxNeon;
        } else if (rel_scalar < 1.0 - tolerance) {
            ++t.autoBelowScalar;
        } else {
            ++t.autoApproxScalar;
        }
    }
    return t;
}

} // namespace swan::autovec
