/**
 * @file
 * ACLE-style compatibility layer: the familiar Arm Neon type and
 * intrinsic names (uint8x16_t, vaddq_u8, vld1q_f32, ...) mapped onto the
 * width-generic emulation. New kernels can be written verbatim against
 * the 128-bit Neon API and still run (and be traced/simulated) anywhere.
 * Only the families the Swan kernels use are aliased; the width-generic
 * API in vec*.hh remains the primary interface.
 */

#ifndef SWAN_SIMD_NEON_COMPAT_HH
#define SWAN_SIMD_NEON_COMPAT_HH

#include "simd/simd.hh"

namespace swan::simd::neon
{

// Vector types (quad-register forms).
using uint8x16_t = Vec<uint8_t, 128>;
using int8x16_t = Vec<int8_t, 128>;
using uint16x8_t = Vec<uint16_t, 128>;
using int16x8_t = Vec<int16_t, 128>;
using uint32x4_t = Vec<uint32_t, 128>;
using int32x4_t = Vec<int32_t, 128>;
using uint64x2_t = Vec<uint64_t, 128>;
using int64x2_t = Vec<int64_t, 128>;
using float32x4_t = Vec<float, 128>;
using float16x8_t = Vec<Half, 128>;

// Multi-register aggregates (VLD2/3/4 results).
using uint8x16x2_t = std::array<uint8x16_t, 2>;
using uint8x16x3_t = std::array<uint8x16_t, 3>;
using uint8x16x4_t = std::array<uint8x16_t, 4>;
using float32x4x2_t = std::array<float32x4_t, 2>;

#define SWAN_NEON_BINARY(neon_name, generic, ty)                           \
    inline ty neon_name(const ty &a, const ty &b)                          \
    {                                                                      \
        return generic(a, b);                                              \
    }

SWAN_NEON_BINARY(vaddq_u8, vadd, uint8x16_t)
SWAN_NEON_BINARY(vaddq_u16, vadd, uint16x8_t)
SWAN_NEON_BINARY(vaddq_s16, vadd, int16x8_t)
SWAN_NEON_BINARY(vaddq_u32, vadd, uint32x4_t)
SWAN_NEON_BINARY(vaddq_s32, vadd, int32x4_t)
SWAN_NEON_BINARY(vaddq_f32, vadd, float32x4_t)
SWAN_NEON_BINARY(vsubq_u8, vsub, uint8x16_t)
SWAN_NEON_BINARY(vsubq_s16, vsub, int16x8_t)
SWAN_NEON_BINARY(vsubq_f32, vsub, float32x4_t)
SWAN_NEON_BINARY(vmulq_s16, vmul, int16x8_t)
SWAN_NEON_BINARY(vmulq_f32, vmul, float32x4_t)
SWAN_NEON_BINARY(vminq_f32, vmin, float32x4_t)
SWAN_NEON_BINARY(vmaxq_f32, vmax, float32x4_t)
SWAN_NEON_BINARY(vminq_u8, vmin, uint8x16_t)
SWAN_NEON_BINARY(vmaxq_u8, vmax, uint8x16_t)
SWAN_NEON_BINARY(vabdq_u8, vabd, uint8x16_t)
SWAN_NEON_BINARY(vqaddq_u8, vqadd, uint8x16_t)
SWAN_NEON_BINARY(vqaddq_s16, vqadd, int16x8_t)
SWAN_NEON_BINARY(vqsubq_s16, vqsub, int16x8_t)
SWAN_NEON_BINARY(vhaddq_u8, vhadd, uint8x16_t)
SWAN_NEON_BINARY(vrhaddq_u8, vrhadd, uint8x16_t)
SWAN_NEON_BINARY(vandq_u32, vand, uint32x4_t)
SWAN_NEON_BINARY(vorrq_u32, vorr, uint32x4_t)
SWAN_NEON_BINARY(veorq_u8, veor, uint8x16_t)
SWAN_NEON_BINARY(veorq_u32, veor, uint32x4_t)
SWAN_NEON_BINARY(vbicq_u32, vbic, uint32x4_t)
SWAN_NEON_BINARY(vzip1q_u8, vzip1, uint8x16_t)
SWAN_NEON_BINARY(vzip2q_u8, vzip2, uint8x16_t)
SWAN_NEON_BINARY(vuzp1q_u8, vuzp1, uint8x16_t)
SWAN_NEON_BINARY(vuzp2q_u8, vuzp2, uint8x16_t)
SWAN_NEON_BINARY(vtrn1q_s16, vtrn1, int16x8_t)
SWAN_NEON_BINARY(vtrn2q_s16, vtrn2, int16x8_t)
SWAN_NEON_BINARY(vqdmulhq_s16, vqdmulh, int16x8_t)

#undef SWAN_NEON_BINARY

// Fused / ternary forms.
inline float32x4_t
vmlaq_f32(const float32x4_t &acc, const float32x4_t &a,
          const float32x4_t &b)
{
    return vmla(acc, a, b);
}
inline float32x4_t
vfmaq_f32(const float32x4_t &acc, const float32x4_t &a,
          const float32x4_t &b)
{
    return vmla(acc, a, b);
}
inline uint16x8_t
vmlal_u8(const uint16x8_t &acc, const uint8x16_t &a, const uint8x16_t &b)
{
    return vmlal_lo(acc, a, b);
}
inline uint16x8_t
vmlal_high_u8(const uint16x8_t &acc, const uint8x16_t &a,
              const uint8x16_t &b)
{
    return vmlal_hi(acc, a, b);
}

// Broadcast / lanes.
inline uint8x16_t vdupq_n_u8(uint8_t c) { return vdup<uint8_t, 128>(c); }
inline int16x8_t vdupq_n_s16(int16_t c) { return vdup<int16_t, 128>(c); }
inline uint32x4_t vdupq_n_u32(uint32_t c)
{
    return vdup<uint32_t, 128>(c);
}
inline float32x4_t vdupq_n_f32(float c) { return vdup<float, 128>(c); }

// Memory.
inline uint8x16_t vld1q_u8(const uint8_t *p) { return vld1<128>(p); }
inline int16x8_t vld1q_s16(const int16_t *p) { return vld1<128>(p); }
inline uint32x4_t vld1q_u32(const uint32_t *p) { return vld1<128>(p); }
inline float32x4_t vld1q_f32(const float *p) { return vld1<128>(p); }
inline void vst1q_u8(uint8_t *p, const uint8x16_t &v) { vst1(p, v); }
inline void vst1q_s16(int16_t *p, const int16x8_t &v) { vst1(p, v); }
inline void vst1q_u32(uint32_t *p, const uint32x4_t &v) { vst1(p, v); }
inline void vst1q_f32(float *p, const float32x4_t &v) { vst1(p, v); }
inline uint8x16x2_t vld2q_u8(const uint8_t *p) { return vld2<128>(p); }
inline uint8x16x3_t vld3q_u8(const uint8_t *p) { return vld3<128>(p); }
inline uint8x16x4_t vld4q_u8(const uint8_t *p) { return vld4<128>(p); }
inline void vst2q_u8(uint8_t *p, const uint8x16x2_t &v) { vst2(p, v); }
inline void vst4q_u8(uint8_t *p, const uint8x16x4_t &v) { vst4(p, v); }
inline float32x4x2_t vld2q_f32(const float *p) { return vld2<128>(p); }

// Widen / narrow (the AArch64 low/high-half forms).
inline uint16x8_t vmovl_u8(const uint8x16_t &v) { return vmovl_lo(v); }
inline uint16x8_t vmovl_high_u8(const uint8x16_t &v)
{
    return vmovl_hi(v);
}
inline uint16x8_t
vmull_u8(const uint8x16_t &a, const uint8x16_t &b)
{
    return vmull_lo(a, b);
}
inline uint16x8_t
vmull_high_u8(const uint8x16_t &a, const uint8x16_t &b)
{
    return vmull_hi(a, b);
}

// Pairwise / across.
inline uint16x8_t vpaddlq_u8(const uint8x16_t &v) { return vpaddl(v); }
inline uint16x8_t
vpadalq_u8(const uint16x8_t &acc, const uint8x16_t &v)
{
    return vpadal(acc, v);
}
inline Sc<uint32_t> vaddlvq_u16(const uint16x8_t &v) { return vaddlv(v); }
inline Sc<float> vaddvq_f32(const float32x4_t &v) { return vaddv(v); }
inline Sc<uint8_t> vmaxvq_u8(const uint8x16_t &v) { return vmaxv(v); }
inline Sc<uint8_t> vminvq_u8(const uint8x16_t &v) { return vminv(v); }

// Crypto.
inline uint8x16_t
vaeseq_u8(const uint8x16_t &state, const uint8x16_t &key)
{
    return vaese(state, key);
}
inline uint8x16_t vaesmcq_u8(const uint8x16_t &state)
{
    return vaesmc(state);
}

} // namespace swan::simd::neon

#endif // SWAN_SIMD_NEON_COMPAT_HH
