/**
 * @file
 * Instrumented scalar value type. Scalar reference implementations of the
 * Swan kernels are written against Sc<T> so that the same trace/timing
 * machinery measures them (the paper compiles the scalar code with
 * vectorization disabled and traces it with DynamoRIO; our substitute is
 * this wrapper, which emits one instruction record per scalar operation).
 *
 * Conventions:
 *  - constructing from a plain constant carries no provenance (constants
 *    are materialized for free, like immediate operands);
 *  - arithmetic/logic operators emit one S-Integer or S-Float instruction;
 *  - relational operators emit a compare and a branch, since in the
 *    benchmarked kernels scalar comparisons feed control flow;
 *  - sload/sstore emit scalar memory instructions with real addresses;
 *  - ctl::loop() accounts for the loop induction update and back-edge.
 */

#ifndef SWAN_SIMD_SCALAR_HH
#define SWAN_SIMD_SCALAR_HH

#include <cstdint>
#include <type_traits>

#include "simd/emit.hh"
#include "simd/half.hh"

namespace swan::simd
{

template <typename T>
constexpr bool isFloatLike =
    std::is_floating_point_v<T> || std::is_same_v<T, Half>;

/** Instrumented scalar value: payload plus producer instruction id. */
template <typename T>
struct Sc
{
    T v{};
    uint64_t src = 0;

    Sc() = default;
    Sc(T value) : v(value) {}
    Sc(T value, uint64_t producer) : v(value), src(producer) {}

    /** Reinterpret/convert to another scalar type (register move; free). */
    template <typename U>
    Sc<U>
    to() const
    {
        if constexpr (isFloatLike<U> != isFloatLike<T>) {
            // int<->float conversion occupies the FP pipe.
            uint64_t id = emitOp(InstrClass::SFloat, Fu::SFp, Lat::sFp, src);
            if constexpr (std::is_same_v<U, Half>)
                return Sc<U>(U(float(v)), id);
            else
                return Sc<U>(U(v), id);
        } else {
            return Sc<U>(U(v), src);
        }
    }
};

namespace detail
{

template <typename T>
inline uint64_t
emitScalarArith(uint64_t d0, uint64_t d1, bool is_mul = false,
                bool is_div = false)
{
    if constexpr (isFloatLike<T>) {
        return emitOp(InstrClass::SFloat, Fu::SFp,
                      is_div ? Lat::sFdiv : Lat::sFp, d0, d1);
    } else {
        if (is_div)
            return emitOp(InstrClass::SInt, Fu::SMul, Lat::sDiv, d0, d1);
        if (is_mul)
            return emitOp(InstrClass::SInt, Fu::SMul, Lat::sMul, d0, d1);
        return emitOp(InstrClass::SInt, Fu::SAlu, Lat::sAlu, d0, d1);
    }
}

/** Wraparound arithmetic that avoids signed-overflow UB. */
template <typename T>
inline T
wrapAdd(T a, T b)
{
    if constexpr (std::is_integral_v<T>)
        return T(uint64_t(a) + uint64_t(b));
    else
        return a + b;
}
template <typename T>
inline T
wrapSub(T a, T b)
{
    if constexpr (std::is_integral_v<T>)
        return T(uint64_t(a) - uint64_t(b));
    else
        return a - b;
}
template <typename T>
inline T
wrapMul(T a, T b)
{
    if constexpr (std::is_integral_v<T>)
        return T(uint64_t(a) * uint64_t(b));
    else
        return a * b;
}

} // namespace detail

template <typename T>
inline Sc<T>
operator+(Sc<T> a, Sc<T> b)
{
    return {detail::wrapAdd(a.v, b.v),
            detail::emitScalarArith<T>(a.src, b.src)};
}
template <typename T>
inline Sc<T>
operator-(Sc<T> a, Sc<T> b)
{
    return {detail::wrapSub(a.v, b.v),
            detail::emitScalarArith<T>(a.src, b.src)};
}
template <typename T>
inline Sc<T>
operator*(Sc<T> a, Sc<T> b)
{
    return {detail::wrapMul(a.v, b.v),
            detail::emitScalarArith<T>(a.src, b.src, true)};
}
template <typename T>
inline Sc<T>
operator/(Sc<T> a, Sc<T> b)
{
    return {T(a.v / b.v),
            detail::emitScalarArith<T>(a.src, b.src, false, true)};
}
template <typename T>
inline Sc<T>
operator%(Sc<T> a, Sc<T> b)
{
    static_assert(std::is_integral_v<T>);
    return {T(a.v % b.v),
            detail::emitScalarArith<T>(a.src, b.src, false, true)};
}
template <typename T>
inline Sc<T>
operator-(Sc<T> a)
{
    return {detail::wrapSub(T{}, a.v), detail::emitScalarArith<T>(a.src, 0)};
}

template <typename T>
inline Sc<T>
operator&(Sc<T> a, Sc<T> b)
{
    return {T(a.v & b.v), detail::emitScalarArith<T>(a.src, b.src)};
}
template <typename T>
inline Sc<T>
operator|(Sc<T> a, Sc<T> b)
{
    return {T(a.v | b.v), detail::emitScalarArith<T>(a.src, b.src)};
}
template <typename T>
inline Sc<T>
operator^(Sc<T> a, Sc<T> b)
{
    return {T(a.v ^ b.v), detail::emitScalarArith<T>(a.src, b.src)};
}
template <typename T>
inline Sc<T>
operator~(Sc<T> a)
{
    return {T(~a.v), detail::emitScalarArith<T>(a.src, 0)};
}
template <typename T>
inline Sc<T>
operator<<(Sc<T> a, int n)
{
    return {T(uint64_t(a.v) << n), detail::emitScalarArith<T>(a.src, 0)};
}
template <typename T>
inline Sc<T>
operator>>(Sc<T> a, int n)
{
    return {T(a.v >> n), detail::emitScalarArith<T>(a.src, 0)};
}

template <typename T> inline Sc<T> &operator+=(Sc<T> &a, Sc<T> b)
{ a = a + b; return a; }
template <typename T> inline Sc<T> &operator-=(Sc<T> &a, Sc<T> b)
{ a = a - b; return a; }
template <typename T> inline Sc<T> &operator*=(Sc<T> &a, Sc<T> b)
{ a = a * b; return a; }
template <typename T> inline Sc<T> &operator^=(Sc<T> &a, Sc<T> b)
{ a = a ^ b; return a; }
template <typename T> inline Sc<T> &operator|=(Sc<T> &a, Sc<T> b)
{ a = a | b; return a; }
template <typename T> inline Sc<T> &operator&=(Sc<T> &a, Sc<T> b)
{ a = a & b; return a; }

namespace detail
{

template <typename T>
inline void
emitCompareBranch(uint64_t d0, uint64_t d1)
{
    uint64_t cmp;
    if constexpr (isFloatLike<T>)
        cmp = emitOp(InstrClass::SFloat, Fu::SFp, Lat::sFp, d0, d1);
    else
        cmp = emitOp(InstrClass::SInt, Fu::SAlu, Lat::sAlu, d0, d1);
    emitOp(InstrClass::Branch, Fu::Branch, Lat::branch, cmp);
}

} // namespace detail

template <typename T>
inline bool
operator<(Sc<T> a, Sc<T> b)
{
    detail::emitCompareBranch<T>(a.src, b.src);
    return a.v < b.v;
}
template <typename T>
inline bool
operator<=(Sc<T> a, Sc<T> b)
{
    detail::emitCompareBranch<T>(a.src, b.src);
    return a.v <= b.v;
}
template <typename T>
inline bool
operator>(Sc<T> a, Sc<T> b)
{
    detail::emitCompareBranch<T>(a.src, b.src);
    return a.v > b.v;
}
template <typename T>
inline bool
operator>=(Sc<T> a, Sc<T> b)
{
    detail::emitCompareBranch<T>(a.src, b.src);
    return a.v >= b.v;
}
template <typename T>
inline bool
operator==(Sc<T> a, Sc<T> b)
{
    detail::emitCompareBranch<T>(a.src, b.src);
    return a.v == b.v;
}
template <typename T>
inline bool
operator!=(Sc<T> a, Sc<T> b)
{
    detail::emitCompareBranch<T>(a.src, b.src);
    return a.v != b.v;
}

/** Branch-free scalar select (CSEL): no branch emitted. */
template <typename T>
inline Sc<T>
sselect(bool cond, Sc<T> a, Sc<T> b)
{
    uint64_t id = emitOp(InstrClass::SInt, Fu::SAlu, Lat::sAlu, a.src, b.src);
    return {cond ? a.v : b.v, id};
}

/** Scalar min/max helpers (single compare-select instruction). */
template <typename T>
inline Sc<T>
smin(Sc<T> a, Sc<T> b)
{
    return {a.v < b.v ? a.v : b.v,
            detail::emitScalarArith<T>(a.src, b.src)};
}
template <typename T>
inline Sc<T>
smax(Sc<T> a, Sc<T> b)
{
    return {a.v > b.v ? a.v : b.v,
            detail::emitScalarArith<T>(a.src, b.src)};
}
template <typename T>
inline Sc<T>
sabs(Sc<T> a)
{
    return {a.v < T{} ? detail::wrapSub(T{}, a.v) : a.v,
            detail::emitScalarArith<T>(a.src, 0)};
}

/** Scalar fused multiply-add a*b+c (MADD / FMADD: one instruction). */
template <typename T>
inline Sc<T>
smadd(Sc<T> a, Sc<T> b, Sc<T> c)
{
    uint64_t id;
    if constexpr (isFloatLike<T>)
        id = emitOp(InstrClass::SFloat, Fu::SFp, Lat::sFma,
                    a.src, b.src, c.src);
    else
        id = emitOp(InstrClass::SInt, Fu::SMul, Lat::sMul,
                    a.src, b.src, c.src);
    return {detail::wrapAdd(detail::wrapMul(a.v, b.v), c.v), id};
}

/** Instrumented scalar load. */
template <typename T>
inline Sc<T>
sload(const T *p)
{
    uint64_t id = emitMem(InstrClass::SLoad, p, sizeof(T), Lat::load);
    return {*p, id};
}

/** Instrumented scalar store. */
template <typename T>
inline void
sstore(T *p, Sc<T> x)
{
    emitMem(InstrClass::SStore, p, sizeof(T), Lat::store, x.src);
    *p = x.v;
}

namespace ctl
{

/**
 * Account for one loop iteration's control overhead: the induction
 * variable update and the back-edge branch.
 */
inline void
loop()
{
    uint64_t add = emitOp(InstrClass::SInt, Fu::SAlu, Lat::sAlu);
    emitOp(InstrClass::Branch, Fu::Branch, Lat::branch, add);
}

/** Account for a standalone branch (e.g. an early-exit check). */
inline void
branch(uint64_t dep = 0)
{
    emitOp(InstrClass::Branch, Fu::Branch, Lat::branch, dep);
}

/** Account for n address-computation instructions (non-trivial indexing). */
inline uint64_t
addr(int n = 1, uint64_t dep = 0)
{
    uint64_t id = dep;
    for (int i = 0; i < n; ++i)
        id = emitOp(InstrClass::SInt, Fu::SAlu, Lat::sAlu, id);
    return id;
}

} // namespace ctl

} // namespace swan::simd

#endif // SWAN_SIMD_SCALAR_HH
