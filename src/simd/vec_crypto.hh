/**
 * @file
 * Emulated Armv8 Cryptography Extension instructions used by the ZL and BS
 * libraries: AESE/AESMC (AES round acceleration), SHA256H/H2/SU0/SU1
 * (SHA-256 rounds and message schedule), PMULL (carry-less multiply for
 * GHASH), and the CRC32 ACLE instructions.
 *
 * SHA256H/H2 are implemented as the textbook four-round SHA-256 update for
 * the canonical usage pattern (state halves ABCD/EFGH plus W+K); this is
 * functionally equivalent to the Arm definition when used that way, which
 * is how the kernels (and real boringssl) use them.
 */

#ifndef SWAN_SIMD_VEC_CRYPTO_HH
#define SWAN_SIMD_VEC_CRYPTO_HH

#include "simd/vec.hh"

namespace swan::simd
{

namespace crypto
{

/** AES forward S-box. */
extern const uint8_t kAesSbox[256];

/** GF(2^8) multiply-by-2 used by MixColumns. */
inline uint8_t
xtime(uint8_t x)
{
    return uint8_t((x << 1) ^ ((x >> 7) * 0x1b));
}

inline uint32_t
rotr32(uint32_t x, int n)
{
    return (x >> n) | (x << (32 - n));
}

} // namespace crypto

/**
 * AESE: AddRoundKey (state ^ key), then SubBytes and ShiftRows.
 * State bytes use the standard AES column-major layout.
 */
inline Vec<uint8_t, 128>
vaese(const Vec<uint8_t, 128> &state, const Vec<uint8_t, 128> &key)
{
    uint8_t tmp[16];
    for (int i = 0; i < 16; ++i)
        tmp[i] = crypto::kAesSbox[state.lane[size_t(i)] ^
                                  key.lane[size_t(i)]];
    Vec<uint8_t, 128> r;
    // ShiftRows: out[row + 4*col] = in[row + 4*((col + row) % 4)].
    for (int col = 0; col < 4; ++col)
        for (int row = 0; row < 4; ++row)
            r.lane[size_t(row + 4 * col)] = tmp[row + 4 * ((col + row) % 4)];
    r.src = emitOp(InstrClass::VCrypto, Fu::VUnit, Lat::vCrypto, state.src,
                   key.src, 0, 16, 16, 16);
    return r;
}

/** AESMC: AES MixColumns. */
inline Vec<uint8_t, 128>
vaesmc(const Vec<uint8_t, 128> &state)
{
    Vec<uint8_t, 128> r;
    for (int col = 0; col < 4; ++col) {
        const uint8_t *s = &state.lane[size_t(4 * col)];
        uint8_t t = uint8_t(s[0] ^ s[1] ^ s[2] ^ s[3]);
        for (int row = 0; row < 4; ++row) {
            uint8_t x = uint8_t(s[row] ^ s[(row + 1) % 4]);
            r.lane[size_t(4 * col + row)] =
                uint8_t(s[row] ^ t ^ crypto::xtime(x));
        }
    }
    r.src = emitOp(InstrClass::VCrypto, Fu::VUnit, Lat::vCrypto, state.src,
                   0, 0, 16, 16, 16);
    return r;
}

namespace detail
{

inline void
sha256Rounds4(uint32_t s[8], const uint32_t wk[4])
{
    using crypto::rotr32;
    for (int i = 0; i < 4; ++i) {
        uint32_t a = s[0], b = s[1], c = s[2], d = s[3];
        uint32_t e = s[4], f = s[5], g = s[6], h = s[7];
        uint32_t big1 = rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25);
        uint32_t ch = (e & f) ^ (~e & g);
        uint32_t t1 = h + big1 + ch + wk[i];
        uint32_t big0 = rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22);
        uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        uint32_t t2 = big0 + maj;
        s[7] = g; s[6] = f; s[5] = e; s[4] = d + t1;
        s[3] = c; s[2] = b; s[1] = a; s[0] = t1 + t2;
    }
}

} // namespace detail

/**
 * SHA256H: four SHA-256 rounds; returns the updated ABCD state half.
 * Lane order: lane 0 = A (resp. E).
 */
inline Vec<uint32_t, 128>
vsha256h(const Vec<uint32_t, 128> &abcd, const Vec<uint32_t, 128> &efgh,
         const Vec<uint32_t, 128> &wk)
{
    uint32_t s[8] = {abcd.lane[0], abcd.lane[1], abcd.lane[2], abcd.lane[3],
                     efgh.lane[0], efgh.lane[1], efgh.lane[2], efgh.lane[3]};
    detail::sha256Rounds4(s, wk.lane.data());
    Vec<uint32_t, 128> r;
    for (int i = 0; i < 4; ++i)
        r.lane[size_t(i)] = s[i];
    r.src = emitOp(InstrClass::VCrypto, Fu::VUnit, 4, abcd.src, efgh.src,
                   wk.src, 16, 4, 4);
    return r;
}

/** SHA256H2: four SHA-256 rounds; returns the updated EFGH state half. */
inline Vec<uint32_t, 128>
vsha256h2(const Vec<uint32_t, 128> &efgh, const Vec<uint32_t, 128> &abcd,
          const Vec<uint32_t, 128> &wk)
{
    uint32_t s[8] = {abcd.lane[0], abcd.lane[1], abcd.lane[2], abcd.lane[3],
                     efgh.lane[0], efgh.lane[1], efgh.lane[2], efgh.lane[3]};
    detail::sha256Rounds4(s, wk.lane.data());
    Vec<uint32_t, 128> r;
    for (int i = 0; i < 4; ++i)
        r.lane[size_t(i)] = s[4 + i];
    r.src = emitOp(InstrClass::VCrypto, Fu::VUnit, 4, efgh.src, abcd.src,
                   wk.src, 16, 4, 4);
    return r;
}

/**
 * SHA256SU0: message-schedule part 1. With w0 = W[t-16..t-13] and
 * w1 = W[t-12..t-9], returns w0[i] + sigma0(concat(w0,w1)[i+1]).
 */
inline Vec<uint32_t, 128>
vsha256su0(const Vec<uint32_t, 128> &w0, const Vec<uint32_t, 128> &w1)
{
    using crypto::rotr32;
    auto sig0 = [](uint32_t x) {
        return rotr32(x, 7) ^ rotr32(x, 18) ^ (x >> 3);
    };
    Vec<uint32_t, 128> r;
    for (int i = 0; i < 4; ++i) {
        uint32_t next = i < 3 ? w0.lane[size_t(i + 1)] : w1.lane[0];
        r.lane[size_t(i)] = w0.lane[size_t(i)] + sig0(next);
    }
    r.src = emitOp(InstrClass::VCrypto, Fu::VUnit, Lat::vCrypto, w0.src,
                   w1.src, 0, 16, 4, 4);
    return r;
}

/**
 * SHA256SU1: message-schedule part 2. With x = SHA256SU0(W[t-16..],
 * W[t-12..]), c = W[t-8..t-5], d = W[t-4..t-1], returns W[t..t+3].
 */
inline Vec<uint32_t, 128>
vsha256su1(const Vec<uint32_t, 128> &x, const Vec<uint32_t, 128> &c,
           const Vec<uint32_t, 128> &d)
{
    using crypto::rotr32;
    auto sig1 = [](uint32_t v) {
        return rotr32(v, 17) ^ rotr32(v, 19) ^ (v >> 10);
    };
    Vec<uint32_t, 128> r;
    r.lane[0] = x.lane[0] + sig1(d.lane[2]) + c.lane[1];
    r.lane[1] = x.lane[1] + sig1(d.lane[3]) + c.lane[2];
    r.lane[2] = x.lane[2] + sig1(r.lane[0]) + c.lane[3];
    r.lane[3] = x.lane[3] + sig1(r.lane[1]) + d.lane[0];
    r.src = emitOp(InstrClass::VCrypto, Fu::VUnit, 4, x.src, c.src, d.src,
                   16, 4, 4);
    return r;
}

namespace detail
{

inline void
clmul64(uint64_t a, uint64_t b, uint64_t &lo, uint64_t &hi)
{
    lo = 0;
    hi = 0;
    for (int i = 0; i < 64; ++i) {
        if ((b >> i) & 1) {
            lo ^= a << i;
            if (i > 0)
                hi ^= a >> (64 - i);
        }
    }
}

} // namespace detail

/**
 * PMULL: carry-less multiply of the low 64-bit lanes of a and b; the
 * 128-bit product fills lanes {lo, hi} of the result.
 */
inline Vec<uint64_t, 128>
vpmull_lo(const Vec<uint64_t, 128> &a, const Vec<uint64_t, 128> &b)
{
    Vec<uint64_t, 128> r;
    detail::clmul64(a.lane[0], b.lane[0], r.lane[0], r.lane[1]);
    r.src = emitOp(InstrClass::VCrypto, Fu::VUnit, Lat::vCrypto, a.src,
                   b.src, 0, 16, 2, 2);
    return r;
}

/** PMULL2: carry-less multiply of the high 64-bit lanes. */
inline Vec<uint64_t, 128>
vpmull_hi(const Vec<uint64_t, 128> &a, const Vec<uint64_t, 128> &b)
{
    Vec<uint64_t, 128> r;
    detail::clmul64(a.lane[1], b.lane[1], r.lane[0], r.lane[1]);
    r.src = emitOp(InstrClass::VCrypto, Fu::VUnit, Lat::vCrypto, a.src,
                   b.src, 0, 16, 2, 2);
    return r;
}

namespace detail
{

/** Reflected CRC-32 (polynomial 0xEDB88320), bit-serial reference. */
inline uint32_t
crc32Update(uint32_t crc, uint64_t data, int bytes)
{
    for (int b = 0; b < bytes; ++b) {
        crc ^= uint32_t((data >> (8 * b)) & 0xff);
        for (int i = 0; i < 8; ++i)
            crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
    return crc;
}

} // namespace detail

/** CRC32B/H/W/X: the Armv8 CRC32 instructions (one per data width). */
inline Sc<uint32_t>
vcrc32b(Sc<uint32_t> crc, Sc<uint8_t> data)
{
    uint64_t id = emitOp(InstrClass::VCrypto, Fu::SMul, 2, crc.src,
                         data.src);
    return {detail::crc32Update(crc.v, data.v, 1), id};
}
inline Sc<uint32_t>
vcrc32h(Sc<uint32_t> crc, Sc<uint16_t> data)
{
    uint64_t id = emitOp(InstrClass::VCrypto, Fu::SMul, 2, crc.src,
                         data.src);
    return {detail::crc32Update(crc.v, data.v, 2), id};
}
inline Sc<uint32_t>
vcrc32w(Sc<uint32_t> crc, Sc<uint32_t> data)
{
    uint64_t id = emitOp(InstrClass::VCrypto, Fu::SMul, 2, crc.src,
                         data.src);
    return {detail::crc32Update(crc.v, data.v, 4), id};
}
inline Sc<uint32_t>
vcrc32x(Sc<uint32_t> crc, Sc<uint64_t> data)
{
    uint64_t id = emitOp(InstrClass::VCrypto, Fu::SMul, 2, crc.src,
                         data.src);
    return {detail::crc32Update(crc.v, data.v, 8), id};
}

} // namespace swan::simd

#endif // SWAN_SIMD_VEC_CRYPTO_HH
