/**
 * @file
 * Future-ISA vector extension layer: the operations the paper's Section 9
 * names as future work because Arm Neon lacks them — SVE/RVV-style
 * predication (WHILELT + merging ops), indexed gather/scatter memory
 * accesses (Section 6.2's missing look-up-table intrinsics), arbitrary-
 * stride loads/stores (Section 6.3's RVV remark), and the Armv8.3 complex
 * multiply-accumulate family (Section 6.5's FCMLA/FCADD discussion).
 *
 * Everything emits through the same instrumentation as the Neon layer, so
 * the extension kernels trace, simulate, and report identically. The
 * timing model cracks gather/scatter/strided accesses into per-element
 * cache accesses, two per cycle (sim::CoreModel::memCompleteMulti);
 * FCMLA/FCADD take the two-cycle latency the Cortex-A710 Software
 * Optimization Guide reports.
 */

#ifndef SWAN_SIMD_VEC_SVE_HH
#define SWAN_SIMD_VEC_SVE_HH

#include <algorithm>

#include "simd/vec.hh"
#include "simd/vec_mem.hh"

namespace swan::simd
{

// ---------------------------------------------------------------------
// Predicates (SVE-style governing masks).
// ---------------------------------------------------------------------

/**
 * Governing predicate for a Vec<T, kBits>: one boolean per lane plus
 * dataflow provenance, produced by PTRUE/WHILELT-style instructions and
 * consumed by masked memory and merging arithmetic ops.
 */
template <typename T, int kBits = 128>
struct Pred
{
    static constexpr int kLanes = Vec<T, kBits>::kLanes;

    std::array<bool, kLanes> lane{};
    uint64_t src = 0;       //!< producer instruction id

    bool operator[](int i) const { return lane[size_t(i)]; }

    /** Active lane count (no instruction emitted; use pcount for that). */
    int
    count() const
    {
        int n = 0;
        for (bool b : lane)
            n += b ? 1 : 0;
        return n;
    }
};

/** All-true predicate (PTRUE). */
template <typename T, int B = 128>
inline Pred<T, B>
ptrue()
{
    Pred<T, B> p;
    p.lane.fill(true);
    p.src = emitOp(InstrClass::VInt, Fu::VUnit, Lat::vPred, 0, 0, 0,
                   Vec<T, B>::kBytes, Pred<T, B>::kLanes,
                   Pred<T, B>::kLanes);
    return p;
}

/**
 * While-less-than predicate (WHILELT): lane i is active when
 * @p i + i < @p n. The SVE tail-handling idiom — a loop over n elements
 * runs full-width vectors with the final partial iteration masked instead
 * of falling back to narrower registers (the Section 7.1 GEMM
 * utilization problem).
 */
template <typename T, int B = 128>
inline Pred<T, B>
whilelt(int64_t i, int64_t n)
{
    Pred<T, B> p;
    int active = 0;
    for (int k = 0; k < Pred<T, B>::kLanes; ++k) {
        p.lane[size_t(k)] = i + k < n;
        active += p.lane[size_t(k)] ? 1 : 0;
    }
    p.src = emitOp(InstrClass::VInt, Fu::VUnit, Lat::vPred, 0, 0, 0,
                   Vec<T, B>::kBytes, Pred<T, B>::kLanes, active);
    return p;
}

/** Predicate AND. */
template <typename T, int B>
inline Pred<T, B>
pand(const Pred<T, B> &a, const Pred<T, B> &b)
{
    Pred<T, B> r;
    for (int i = 0; i < Pred<T, B>::kLanes; ++i)
        r.lane[size_t(i)] = a.lane[size_t(i)] && b.lane[size_t(i)];
    r.src = emitOp(InstrClass::VInt, Fu::VUnit, Lat::vPred, a.src, b.src, 0,
                   Vec<T, B>::kBytes, Pred<T, B>::kLanes, r.count());
    return r;
}

/** Predicate OR. */
template <typename T, int B>
inline Pred<T, B>
por(const Pred<T, B> &a, const Pred<T, B> &b)
{
    Pred<T, B> r;
    for (int i = 0; i < Pred<T, B>::kLanes; ++i)
        r.lane[size_t(i)] = a.lane[size_t(i)] || b.lane[size_t(i)];
    r.src = emitOp(InstrClass::VInt, Fu::VUnit, Lat::vPred, a.src, b.src, 0,
                   Vec<T, B>::kBytes, Pred<T, B>::kLanes, r.count());
    return r;
}

/** Active-lane count to a scalar register (CNTP). */
template <typename T, int B>
inline Sc<int64_t>
pcount(const Pred<T, B> &p)
{
    uint64_t id = emitOp(InstrClass::VMisc, Fu::VUnit, Lat::laneMove, p.src,
                         0, 0, Vec<T, B>::kBytes, Pred<T, B>::kLanes, 1);
    return {int64_t(p.count()), id};
}

/** True when any lane is active (PTEST-style loop-exit check). */
template <typename T, int B>
inline bool
ptest(const Pred<T, B> &p)
{
    emitOp(InstrClass::Branch, Fu::Branch, Lat::branch, p.src);
    return p.count() > 0;
}

// ---------------------------------------------------------------------
// Masked contiguous memory (LD1/ST1 with a governing predicate).
// ---------------------------------------------------------------------

/** Masked unit-stride load: inactive lanes are zero (SVE zeroing form). */
template <int B = 128, typename T>
inline Vec<T, B>
vld1_m(const T *p, const Pred<T, B> &pg)
{
    Vec<T, B> r;
    int active = 0;
    for (int i = 0; i < Vec<T, B>::kLanes; ++i) {
        if (pg.lane[size_t(i)]) {
            r.lane[size_t(i)] = p[i];
            ++active;
        }
    }
    r.active = uint8_t(active);
    r.src = emitMem(InstrClass::VLoad, p,
                    uint32_t(active * int(sizeof(T))), Lat::vLoad, pg.src,
                    0, Vec<T, B>::kBytes, Vec<T, B>::kLanes, active);
    return r;
}

/** Masked unit-stride store: only active lanes write memory. */
template <typename T, int B>
inline void
vst1_m(T *p, const Vec<T, B> &v, const Pred<T, B> &pg)
{
    int active = 0;
    for (int i = 0; i < Vec<T, B>::kLanes; ++i) {
        if (pg.lane[size_t(i)]) {
            p[i] = v.lane[size_t(i)];
            ++active;
        }
    }
    emitMem(InstrClass::VStore, p, uint32_t(active * int(sizeof(T))),
            Lat::vStore, v.src, pg.src, Vec<T, B>::kBytes,
            Vec<T, B>::kLanes, active);
}

// ---------------------------------------------------------------------
// Merging (predicated) arithmetic.
// ---------------------------------------------------------------------

namespace detail
{

/** Merging binary op: active lanes compute, inactive keep @p a's value. */
template <typename T, int B, typename F>
inline Vec<T, B>
mapm(InstrClass cls, int lat, const Pred<T, B> &pg, const Vec<T, B> &a,
     const Vec<T, B> &b, F &&f)
{
    Vec<T, B> r;
    int active = 0;
    for (int i = 0; i < Vec<T, B>::kLanes; ++i) {
        const bool on = pg.lane[size_t(i)];
        r.lane[size_t(i)] = on ? f(a.lane[size_t(i)], b.lane[size_t(i)])
                               : a.lane[size_t(i)];
        active += on ? 1 : 0;
    }
    r.active = uint8_t(active);
    r.src = emitOp(cls, Fu::VUnit, lat, pg.src, a.src, b.src,
                   Vec<T, B>::kBytes, Vec<T, B>::kLanes, active);
    return r;
}

} // namespace detail

/** Merging add (ADD z, pg/m): inactive lanes pass @p a through. */
template <typename T, int B>
inline Vec<T, B>
vadd_m(const Pred<T, B> &pg, const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::mapm(detail::arithClass<T>(), detail::arithLat<T>(), pg,
                        a, b,
                        [](T x, T y) { return detail::wrapAdd(x, y); });
}

/** Merging subtract. */
template <typename T, int B>
inline Vec<T, B>
vsub_m(const Pred<T, B> &pg, const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::mapm(detail::arithClass<T>(), detail::arithLat<T>(), pg,
                        a, b,
                        [](T x, T y) { return detail::wrapSub(x, y); });
}

/** Merging multiply. */
template <typename T, int B>
inline Vec<T, B>
vmul_m(const Pred<T, B> &pg, const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::mapm(detail::arithClass<T>(), detail::arithLat<T>(true),
                        pg, a, b,
                        [](T x, T y) { return detail::wrapMul(x, y); });
}

/** Merging multiply-accumulate acc + a*b on active lanes. */
template <typename T, int B>
inline Vec<T, B>
vmla_m(const Pred<T, B> &pg, const Vec<T, B> &acc, const Vec<T, B> &a,
       const Vec<T, B> &b)
{
    Vec<T, B> r;
    int active = 0;
    for (int i = 0; i < Vec<T, B>::kLanes; ++i) {
        const bool on = pg.lane[size_t(i)];
        r.lane[size_t(i)] =
            on ? detail::wrapAdd(acc.lane[size_t(i)],
                                 detail::wrapMul(a.lane[size_t(i)],
                                                 b.lane[size_t(i)]))
               : acc.lane[size_t(i)];
        active += on ? 1 : 0;
    }
    r.active = uint8_t(active);
    const int lat = isFloatLike<T> ? Lat::vFma : Lat::vMul;
    r.src = emitOp(detail::arithClass<T>(), Fu::VUnit, lat, pg.src, acc.src,
                   a.src, Vec<T, B>::kBytes, Vec<T, B>::kLanes, active);
    return r;
}

/** Predicate-driven select (SEL): active lanes from @p a, rest from @p b. */
template <typename T, int B>
inline Vec<T, B>
vsel(const Pred<T, B> &pg, const Vec<T, B> &a, const Vec<T, B> &b)
{
    Vec<T, B> r;
    for (int i = 0; i < Vec<T, B>::kLanes; ++i) {
        r.lane[size_t(i)] =
            pg.lane[size_t(i)] ? a.lane[size_t(i)] : b.lane[size_t(i)];
    }
    r.active = std::min(a.active, b.active);
    r.src = emitOp(InstrClass::VInt, Fu::VUnit, Lat::vAlu, pg.src, a.src,
                   b.src, Vec<T, B>::kBytes, Vec<T, B>::kLanes, r.active);
    return r;
}

// ---------------------------------------------------------------------
// First-faulting loads (SVE LDFF1 + FFR; the Section 5.2 "uncountable
// loop" enabler).
// ---------------------------------------------------------------------

/** Result of a first-faulting load: data plus the valid-lane FFR. */
template <typename T, int kBits = 128>
struct FfLoad
{
    Vec<T, kBits> data;
    Pred<T, kBits> valid;
};

/**
 * First-faulting contiguous load (LDFF1 + RDFFR): lanes load until the
 * fault boundary @p limit; the returned predicate marks the lanes that
 * loaded. The caller must guarantee p < limit (SVE faults on the first
 * element too). This is what lets a vectorized loop scan an
 * unknown-length buffer — strlen/memchr-style uncountable loops, which
 * Section 5.2 lists as an auto-vectorization blocker on Neon — without
 * the page-guarded over-read trick.
 *
 * Emits two instructions: the load and the FFR read.
 */
template <int B = 128, typename T>
inline FfLoad<T, B>
vldff1(const T *p, const T *limit)
{
    FfLoad<T, B> r;
    int active = 0;
    for (int i = 0; i < Vec<T, B>::kLanes; ++i) {
        if (p + i < limit) {
            r.data.lane[size_t(i)] = p[i];
            r.valid.lane[size_t(i)] = true;
            ++active;
        }
    }
    r.data.active = uint8_t(active);
    uint64_t ld = emitMem(InstrClass::VLoad, p,
                          uint32_t(active * int(sizeof(T))), Lat::vLoad,
                          0, 0, Vec<T, B>::kBytes, Vec<T, B>::kLanes,
                          active);
    r.data.src = ld;
    // RDFFR: read the first-fault register into a predicate.
    r.valid.src = emitOp(InstrClass::VInt, Fu::VUnit, Lat::vPred, ld, 0,
                         0, Vec<T, B>::kBytes, Vec<T, B>::kLanes, active);
    return r;
}

/** Predicated compare-to-immediate (CMPEQ z, pg/z, #imm) to a predicate. */
template <typename T, int B>
inline Pred<T, B>
cmpeq_p(const Pred<T, B> &pg, const Vec<T, B> &v, T imm)
{
    Pred<T, B> r;
    int active = 0;
    for (int i = 0; i < Vec<T, B>::kLanes; ++i) {
        r.lane[size_t(i)] =
            pg.lane[size_t(i)] && v.lane[size_t(i)] == imm;
        active += r.lane[size_t(i)] ? 1 : 0;
    }
    r.src = emitOp(InstrClass::VInt, Fu::VUnit, Lat::vAlu, pg.src, v.src,
                   0, Vec<T, B>::kBytes, Pred<T, B>::kLanes, active);
    return r;
}

/**
 * Index of the first active lane, or -1 when none (BRKB + CNTP in real
 * SVE; one instruction here).
 */
template <typename T, int B>
inline Sc<int64_t>
pfirstIdx(const Pred<T, B> &p)
{
    int64_t idx = -1;
    for (int i = 0; i < Pred<T, B>::kLanes; ++i) {
        if (p.lane[size_t(i)]) {
            idx = i;
            break;
        }
    }
    uint64_t id = emitOp(InstrClass::VMisc, Fu::VUnit, Lat::laneMove,
                         p.src, 0, 0, Vec<T, B>::kBytes,
                         Pred<T, B>::kLanes, 1);
    return {idx, id};
}

// ---------------------------------------------------------------------
// Gather / scatter (the Section 6.2 look-up-table intrinsics).
// ---------------------------------------------------------------------

/**
 * Indexed gather load: r[i] = base[idx[i]] in one instruction (SVE
 * LD1 [z], RVV vluxei). Index and data lanes must agree, so sizeof(I)
 * must equal sizeof(T). The emitted record carries the touched address
 * range; the timing model cracks it into per-element cache accesses.
 */
template <typename T, int B, typename I>
inline Vec<T, B>
vgather(const T *base, const Vec<I, B> &idx)
{
    static_assert(sizeof(I) == sizeof(T),
                  "gather index width must match data width");
    static_assert(std::is_integral_v<I>, "gather indices are integers");
    Vec<T, B> r;
    const T *lo = nullptr;
    const T *hi = nullptr;
    const int lanes = std::max<int>(idx.active, 1);
    for (int i = 0; i < lanes; ++i) {
        const T *a = base + uint64_t(idx.lane[size_t(i)]);
        r.lane[size_t(i)] = *a;
        lo = (!lo || a < lo) ? a : lo;
        hi = (!hi || a > hi) ? a : hi;
    }
    r.active = uint8_t(lanes);
    auto *rec = trace::currentRecorder();
    if (rec) {
        trace::Instr instr;
        instr.cls = InstrClass::VLoad;
        instr.fu = Fu::Load;
        instr.latency = Lat::vGather;
        instr.dep0 = idx.src;
        instr.addr = reinterpret_cast<uint64_t>(lo);
        instr.addr2 = reinterpret_cast<uint64_t>(hi);
        instr.size = uint32_t(lanes * int(sizeof(T)));
        instr.vecBytes = uint8_t(Vec<T, B>::kBytes);
        instr.lanes = uint8_t(Vec<T, B>::kLanes);
        instr.activeLanes = uint8_t(lanes);
        instr.stride = StrideKind::Gather;
        r.src = rec->emit(instr);
    }
    return r;
}

/**
 * Indexed scatter store: base[idx[i]] = v[i] in one instruction (SVE
 * ST1 [z], RVV vsuxei). Overlapping indices write in lane order.
 */
template <typename T, int B, typename I>
inline void
vscatter(T *base, const Vec<I, B> &idx, const Vec<T, B> &v)
{
    static_assert(sizeof(I) == sizeof(T),
                  "scatter index width must match data width");
    static_assert(std::is_integral_v<I>, "scatter indices are integers");
    T *lo = nullptr;
    T *hi = nullptr;
    const int lanes = std::max<int>(std::min(idx.active, v.active), 1);
    for (int i = 0; i < lanes; ++i) {
        T *a = base + uint64_t(idx.lane[size_t(i)]);
        *a = v.lane[size_t(i)];
        lo = (!lo || a < lo) ? a : lo;
        hi = (!hi || a > hi) ? a : hi;
    }
    auto *rec = trace::currentRecorder();
    if (rec) {
        trace::Instr instr;
        instr.cls = InstrClass::VStore;
        instr.fu = Fu::Store;
        instr.latency = Lat::vScatter;
        instr.dep0 = idx.src;
        instr.dep1 = v.src;
        instr.addr = reinterpret_cast<uint64_t>(lo);
        instr.addr2 = reinterpret_cast<uint64_t>(hi);
        instr.size = uint32_t(lanes * int(sizeof(T)));
        instr.vecBytes = uint8_t(Vec<T, B>::kBytes);
        instr.lanes = uint8_t(Vec<T, B>::kLanes);
        instr.activeLanes = uint8_t(lanes);
        instr.stride = StrideKind::Scatter;
        rec->emit(instr);
    }
}

// ---------------------------------------------------------------------
// Arbitrary-stride memory (RVV vlse/vsse).
// ---------------------------------------------------------------------

/**
 * Strided load: r[i] = p[i * stride_elems] in one instruction. Unlike
 * Neon's VLD2/3/4 (stride <= 4, all R registers filled), the stride is
 * arbitrary and one register is produced — the RVV vlse semantics the
 * paper's Section 6.3 points to for higher-stride access patterns.
 */
template <int B = 128, typename T>
inline Vec<T, B>
vlds(const T *p, int64_t stride_elems)
{
    Vec<T, B> r;
    for (int i = 0; i < Vec<T, B>::kLanes; ++i)
        r.lane[size_t(i)] = p[int64_t(i) * stride_elems];
    auto *rec = trace::currentRecorder();
    if (rec) {
        trace::Instr instr;
        instr.cls = InstrClass::VLoad;
        instr.fu = Fu::Load;
        instr.latency = Lat::vStrided;
        instr.addr = reinterpret_cast<uint64_t>(p);
        instr.addr2 = reinterpret_cast<uint64_t>(
            p + int64_t(Vec<T, B>::kLanes - 1) * stride_elems);
        instr.size = uint32_t(Vec<T, B>::kBytes);
        instr.elemStride = int32_t(stride_elems * int64_t(sizeof(T)));
        instr.vecBytes = uint8_t(Vec<T, B>::kBytes);
        instr.lanes = uint8_t(Vec<T, B>::kLanes);
        instr.activeLanes = uint8_t(Vec<T, B>::kLanes);
        instr.stride = StrideKind::LdS;
        r.src = rec->emit(instr);
    }
    return r;
}

/** Strided store: p[i * stride_elems] = v[i] (RVV vsse). */
template <typename T, int B>
inline void
vsts(T *p, int64_t stride_elems, const Vec<T, B> &v)
{
    for (int i = 0; i < Vec<T, B>::kLanes; ++i)
        p[int64_t(i) * stride_elems] = v.lane[size_t(i)];
    auto *rec = trace::currentRecorder();
    if (rec) {
        trace::Instr instr;
        instr.cls = InstrClass::VStore;
        instr.fu = Fu::Store;
        instr.latency = Lat::vStoreN;
        instr.dep0 = v.src;
        instr.addr = reinterpret_cast<uint64_t>(p);
        instr.addr2 = reinterpret_cast<uint64_t>(
            p + int64_t(Vec<T, B>::kLanes - 1) * stride_elems);
        instr.size = uint32_t(Vec<T, B>::kBytes);
        instr.elemStride = int32_t(stride_elems * int64_t(sizeof(T)));
        instr.vecBytes = uint8_t(Vec<T, B>::kBytes);
        instr.lanes = uint8_t(Vec<T, B>::kLanes);
        instr.activeLanes = uint8_t(Vec<T, B>::kLanes);
        instr.stride = StrideKind::StS;
        rec->emit(instr);
    }
}

// ---------------------------------------------------------------------
// Armv8.3 complex arithmetic (FCMLA / FCADD, Section 6.5).
// ---------------------------------------------------------------------

/**
 * Complex fused multiply-accumulate with rotation (FCMLA #rot). Lanes
 * pair up as (real, imag); a full complex multiply-accumulate is FCMLA #0
 * followed by FCMLA #90 — two instructions and four cycles where the
 * portable-API recipe needs six instructions and eight cycles
 * (Section 6.5).
 *
 * @tparam kRot rotation in degrees: 0, 90, 180 or 270.
 */
template <int kRot, typename T, int B>
inline Vec<T, B>
vcmla(const Vec<T, B> &acc, const Vec<T, B> &a, const Vec<T, B> &b)
{
    static_assert(kRot == 0 || kRot == 90 || kRot == 180 || kRot == 270,
                  "FCMLA rotation must be 0/90/180/270");
    static_assert(isFloatLike<T>, "FCMLA is floating-point only");
    static_assert(Vec<T, B>::kLanes % 2 == 0);
    Vec<T, B> r;
    for (int i = 0; i + 1 < Vec<T, B>::kLanes; i += 2) {
        const T ar = a.lane[size_t(i)], ai = a.lane[size_t(i + 1)];
        const T br = b.lane[size_t(i)], bi = b.lane[size_t(i + 1)];
        T re = acc.lane[size_t(i)], im = acc.lane[size_t(i + 1)];
        if constexpr (kRot == 0) {
            re = T(re + ar * br);
            im = T(im + ar * bi);
        } else if constexpr (kRot == 90) {
            re = T(re - ai * bi);
            im = T(im + ai * br);
        } else if constexpr (kRot == 180) {
            re = T(re - ar * br);
            im = T(im - ar * bi);
        } else {
            re = T(re + ai * bi);
            im = T(im - ai * br);
        }
        r.lane[size_t(i)] = re;
        r.lane[size_t(i + 1)] = im;
    }
    r.active = std::min({acc.active, a.active, b.active});
    r.src = emitOp(InstrClass::VFloat, Fu::VUnit, Lat::vCmla, acc.src,
                   a.src, b.src, Vec<T, B>::kBytes, Vec<T, B>::kLanes,
                   r.active);
    return r;
}

/**
 * Complex add with rotation (FCADD #rot): b is rotated by 90 or 270
 * degrees in the complex plane before the add.
 */
template <int kRot, typename T, int B>
inline Vec<T, B>
vcadd(const Vec<T, B> &a, const Vec<T, B> &b)
{
    static_assert(kRot == 90 || kRot == 270,
                  "FCADD rotation must be 90 or 270");
    static_assert(isFloatLike<T>, "FCADD is floating-point only");
    static_assert(Vec<T, B>::kLanes % 2 == 0);
    Vec<T, B> r;
    for (int i = 0; i + 1 < Vec<T, B>::kLanes; i += 2) {
        const T br = b.lane[size_t(i)], bi = b.lane[size_t(i + 1)];
        if constexpr (kRot == 90) {
            r.lane[size_t(i)] = T(a.lane[size_t(i)] - bi);
            r.lane[size_t(i + 1)] = T(a.lane[size_t(i + 1)] + br);
        } else {
            r.lane[size_t(i)] = T(a.lane[size_t(i)] + bi);
            r.lane[size_t(i + 1)] = T(a.lane[size_t(i + 1)] - br);
        }
    }
    r.active = std::min(a.active, b.active);
    r.src = emitOp(InstrClass::VFloat, Fu::VUnit, Lat::vCmla, a.src, b.src,
                   0, Vec<T, B>::kBytes, Vec<T, B>::kLanes, r.active);
    return r;
}

} // namespace swan::simd

#endif // SWAN_SIMD_VEC_SVE_HH
