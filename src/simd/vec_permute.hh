/**
 * @file
 * Emulated Neon permutation operations: interleave (ZIP1/ZIP2),
 * de-interleave (UZP1/UZP2), transpose (TRN1/TRN2, the matrix-transposition
 * primitive of Section 6.4), byte extract (EXT), element reversal (REV),
 * and register table lookup (TBL, Section 6.2).
 */

#ifndef SWAN_SIMD_VEC_PERMUTE_HH
#define SWAN_SIMD_VEC_PERMUTE_HH

#include "simd/vec.hh"

namespace swan::simd
{

namespace detail
{

template <typename T, int B, typename F>
inline Vec<T, B>
permute2(const Vec<T, B> &a, const Vec<T, B> &b, StrideKind sk, F &&fill)
{
    Vec<T, B> r;
    fill(r);
    r.active = std::min(a.active, b.active);
    r.src = emitOp(InstrClass::VMisc, Fu::VUnit, Lat::vPerm, a.src, b.src, 0,
                   Vec<T, B>::kBytes, Vec<T, B>::kLanes, r.active, sk);
    return r;
}

} // namespace detail

/** ZIP1: interleave the low halves of a and b. */
template <typename T, int B>
inline Vec<T, B>
vzip1(const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::permute2(a, b, StrideKind::Zip, [&](Vec<T, B> &r) {
        for (int i = 0; i < Vec<T, B>::kLanes / 2; ++i) {
            r.lane[size_t(2 * i)] = a.lane[size_t(i)];
            r.lane[size_t(2 * i + 1)] = b.lane[size_t(i)];
        }
    });
}

/** ZIP2: interleave the high halves of a and b. */
template <typename T, int B>
inline Vec<T, B>
vzip2(const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::permute2(a, b, StrideKind::Zip, [&](Vec<T, B> &r) {
        const int half = Vec<T, B>::kLanes / 2;
        for (int i = 0; i < half; ++i) {
            r.lane[size_t(2 * i)] = a.lane[size_t(half + i)];
            r.lane[size_t(2 * i + 1)] = b.lane[size_t(half + i)];
        }
    });
}

/** UZP1: concatenate the even-indexed elements of a then b. */
template <typename T, int B>
inline Vec<T, B>
vuzp1(const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::permute2(a, b, StrideKind::Uzp, [&](Vec<T, B> &r) {
        const int half = Vec<T, B>::kLanes / 2;
        for (int i = 0; i < half; ++i) {
            r.lane[size_t(i)] = a.lane[size_t(2 * i)];
            r.lane[size_t(half + i)] = b.lane[size_t(2 * i)];
        }
    });
}

/** UZP2: concatenate the odd-indexed elements of a then b. */
template <typename T, int B>
inline Vec<T, B>
vuzp2(const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::permute2(a, b, StrideKind::Uzp, [&](Vec<T, B> &r) {
        const int half = Vec<T, B>::kLanes / 2;
        for (int i = 0; i < half; ++i) {
            r.lane[size_t(i)] = a.lane[size_t(2 * i + 1)];
            r.lane[size_t(half + i)] = b.lane[size_t(2 * i + 1)];
        }
    });
}

/** TRN1: even-indexed element pairs from a and b (transpose primitive). */
template <typename T, int B>
inline Vec<T, B>
vtrn1(const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::permute2(a, b, StrideKind::Trn, [&](Vec<T, B> &r) {
        for (int i = 0; i < Vec<T, B>::kLanes / 2; ++i) {
            r.lane[size_t(2 * i)] = a.lane[size_t(2 * i)];
            r.lane[size_t(2 * i + 1)] = b.lane[size_t(2 * i)];
        }
    });
}

/** TRN2: odd-indexed element pairs from a and b. */
template <typename T, int B>
inline Vec<T, B>
vtrn2(const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::permute2(a, b, StrideKind::Trn, [&](Vec<T, B> &r) {
        for (int i = 0; i < Vec<T, B>::kLanes / 2; ++i) {
            r.lane[size_t(2 * i)] = a.lane[size_t(2 * i + 1)];
            r.lane[size_t(2 * i + 1)] = b.lane[size_t(2 * i + 1)];
        }
    });
}

/** EXT: r = a[n..] ++ b[..n) — byte/element extract-and-concatenate. */
template <typename T, int B>
inline Vec<T, B>
vext(const Vec<T, B> &a, const Vec<T, B> &b, int n)
{
    return detail::permute2(a, b, StrideKind::None, [&](Vec<T, B> &r) {
        const int lanes = Vec<T, B>::kLanes;
        for (int i = 0; i < lanes; ++i) {
            int j = i + n;
            r.lane[size_t(i)] = j < lanes ? a.lane[size_t(j)]
                                          : b.lane[size_t(j - lanes)];
        }
    });
}

namespace detail
{

template <typename T, int B>
inline Vec<T, B>
revGroups(const Vec<T, B> &a, int group)
{
    Vec<T, B> r;
    for (int g = 0; g < Vec<T, B>::kLanes; g += group)
        for (int i = 0; i < group; ++i)
            r.lane[size_t(g + i)] = a.lane[size_t(g + group - 1 - i)];
    r.active = a.active;
    r.src = emitOp(InstrClass::VMisc, Fu::VUnit, Lat::vPerm, a.src, 0, 0,
                   Vec<T, B>::kBytes, Vec<T, B>::kLanes, r.active);
    return r;
}

} // namespace detail

/** REV64: reverse elements within each 64-bit group. */
template <typename T, int B>
inline Vec<T, B>
vrev64(const Vec<T, B> &a)
{
    return detail::revGroups(a, 8 / int(sizeof(T)));
}

/** REV32: reverse elements within each 32-bit group. */
template <typename T, int B>
inline Vec<T, B>
vrev32(const Vec<T, B> &a)
{
    static_assert(sizeof(T) <= 2);
    return detail::revGroups(a, 4 / int(sizeof(T)));
}

/** REV16: reverse bytes within each 16-bit group. */
template <typename T, int B>
inline Vec<T, B>
vrev16(const Vec<T, B> &a)
{
    static_assert(sizeof(T) == 1);
    return detail::revGroups(a, 2);
}

namespace detail
{

template <int N, int B>
inline Vec<uint8_t, B>
tblN(const std::array<Vec<uint8_t, B>, N> &table, const Vec<uint8_t, B> &idx)
{
    Vec<uint8_t, B> r;
    constexpr int kTableBytes = N * Vec<uint8_t, B>::kLanes;
    for (int i = 0; i < Vec<uint8_t, B>::kLanes; ++i) {
        const int j = idx.lane[size_t(i)];
        if (j < kTableBytes) {
            r.lane[size_t(i)] =
                table[size_t(j / Vec<uint8_t, B>::kLanes)]
                    .lane[size_t(j % Vec<uint8_t, B>::kLanes)];
        } else {
            r.lane[size_t(i)] = 0; // out-of-range TBL yields zero
        }
    }
    r.active = idx.active;
    r.src = emitOp(InstrClass::VMisc, Fu::VUnit, Lat::vPerm, table[0].src,
                   table[N - 1].src, idx.src, Vec<uint8_t, B>::kBytes,
                   Vec<uint8_t, B>::kLanes, r.active);
    return r;
}

} // namespace detail

/**
 * Concatenate two half-width registers (VCOMBINE / register move pair).
 * Used by wider-register kernels to pack short rows of multi-dimensional
 * data into wide registers — the packing overhead Section 7.1 blames for
 * SAD/TM-Prediction not scaling.
 */
template <typename T, int B>
inline Vec<T, 2 * B>
vcombine(const Vec<T, B> &lo, const Vec<T, B> &hi)
{
    Vec<T, 2 * B> r;
    for (int i = 0; i < Vec<T, B>::kLanes; ++i) {
        r.lane[size_t(i)] = lo.lane[size_t(i)];
        r.lane[size_t(Vec<T, B>::kLanes + i)] = hi.lane[size_t(i)];
    }
    r.active = uint8_t(std::min<int>(lo.active + hi.active,
                                     Vec<T, 2 * B>::kLanes));
    r.src = emitOp(InstrClass::VMisc, Fu::VUnit, Lat::vPerm, lo.src, hi.src,
                   0, Vec<T, 2 * B>::kBytes, Vec<T, 2 * B>::kLanes,
                   r.active);
    return r;
}

/**
 * Sum the two halves of a wide register into a half-width register: the
 * multi-step reduction the paper uses instead of extending U/SADDLV to
 * wider registers (Section 7.1).
 */
template <typename T, int B>
inline Vec<T, B / 2>
vadd_halves(const Vec<T, B> &a)
{
    static_assert(B >= 128, "vadd_halves needs a splittable register");
    Vec<T, B / 2> r;
    constexpr int kHalf = Vec<T, B / 2>::kLanes;
    for (int i = 0; i < kHalf; ++i) {
        r.lane[size_t(i)] = detail::wrapAdd(
            a.lane[size_t(i)], a.lane[size_t(kHalf + i)]);
    }
    r.src = emitOp(detail::arithClass<T>(), Fu::VUnit,
                   detail::arithLat<T>(), a.src, 0, 0,
                   Vec<T, B / 2>::kBytes, kHalf, kHalf);
    return r;
}

/** TBL with a 1-register table (in-register look-up, Section 6.2). */
template <int B>
inline Vec<uint8_t, B>
vqtbl1(const Vec<uint8_t, B> &table, const Vec<uint8_t, B> &idx)
{
    return detail::tblN<1, B>({table}, idx);
}

/** TBL with a 2-register table. */
template <int B>
inline Vec<uint8_t, B>
vqtbl2(const std::array<Vec<uint8_t, B>, 2> &table,
       const Vec<uint8_t, B> &idx)
{
    return detail::tblN<2, B>(table, idx);
}

/** TBL with a 4-register table (up to 64 bytes at 128-bit width). */
template <int B>
inline Vec<uint8_t, B>
vqtbl4(const std::array<Vec<uint8_t, B>, 4> &table,
       const Vec<uint8_t, B> &idx)
{
    return detail::tblN<4, B>(table, idx);
}

} // namespace swan::simd

#endif // SWAN_SIMD_VEC_PERMUTE_HH
