/**
 * @file
 * Width-changing and reducing emulated Neon operations: widening
 * (VMOVL/VADDL/VMULL/VMLAL and friends), narrowing (XTN/SQXTN/SHRN pairs),
 * pairwise operations (VPADD/VPADDL/VPADAL), across-vector reductions
 * (ADDV/ADDLV/MAXV/MINV, Section 6.1) and lane-type conversions.
 *
 * Widening ops follow AArch64: the _lo form consumes the low half of the
 * source register(s), the _hi form the high half; each is one instruction.
 * Narrowing ops take two wide registers and produce one narrow register in
 * two instructions (XTN + XTN2), which the emulation emits explicitly.
 */

#ifndef SWAN_SIMD_VEC_WIDE_HH
#define SWAN_SIMD_VEC_WIDE_HH

#include "simd/vec.hh"

namespace swan::simd
{

namespace detail
{

/** Generic one-instruction widening: narrow half -> full wide vector. */
template <typename T, int B, typename F>
inline Vec<Wider<T>, B>
widenHalf(const Vec<T, B> &a, const Vec<T, B> &b, bool hi, F &&f,
          InstrClass cls)
{
    using W = Wider<T>;
    Vec<W, B> r;
    const int base = hi ? Vec<W, B>::kLanes : 0;
    for (int i = 0; i < Vec<W, B>::kLanes; ++i) {
        r.lane[size_t(i)] =
            f(a.lane[size_t(base + i)], b.lane[size_t(base + i)]);
    }
    r.src = emitOp(cls, Fu::VUnit, Lat::vAlu, a.src, b.src, 0,
                   Vec<W, B>::kBytes, Vec<W, B>::kLanes, Vec<W, B>::kLanes);
    return r;
}

} // namespace detail

/** Widen the low (high) half of @p a (USHLL/SSHLL #0 a.k.a. VMOVL). */
template <typename T, int B>
inline Vec<Wider<T>, B>
vmovl_lo(const Vec<T, B> &a)
{
    return detail::widenHalf(a, a, false,
                             [](T x, T) { return Wider<T>(x); },
                             InstrClass::VMisc);
}
template <typename T, int B>
inline Vec<Wider<T>, B>
vmovl_hi(const Vec<T, B> &a)
{
    return detail::widenHalf(a, a, true,
                             [](T x, T) { return Wider<T>(x); },
                             InstrClass::VMisc);
}

/** Widening shift-left of the low (high) half (VSHLL). */
template <typename T, int B>
inline Vec<Wider<T>, B>
vshll_lo(const Vec<T, B> &a, int n)
{
    return detail::widenHalf(
        a, a, false,
        [n](T x, T) { return Wider<T>(Wider<T>(x) << n); },
        InstrClass::VInt);
}
template <typename T, int B>
inline Vec<Wider<T>, B>
vshll_hi(const Vec<T, B> &a, int n)
{
    return detail::widenHalf(
        a, a, true, [n](T x, T) { return Wider<T>(Wider<T>(x) << n); },
        InstrClass::VInt);
}

/** Widening add/subtract of narrow halves (VADDL/VSUBL). */
template <typename T, int B>
inline Vec<Wider<T>, B>
vaddl_lo(const Vec<T, B> &a, const Vec<T, B> &b)
{
    using W = Wider<T>;
    return detail::widenHalf(a, b, false,
                             [](T x, T y) { return W(W(x) + W(y)); },
                             detail::arithClass<W>());
}
template <typename T, int B>
inline Vec<Wider<T>, B>
vaddl_hi(const Vec<T, B> &a, const Vec<T, B> &b)
{
    using W = Wider<T>;
    return detail::widenHalf(a, b, true,
                             [](T x, T y) { return W(W(x) + W(y)); },
                             detail::arithClass<W>());
}
template <typename T, int B>
inline Vec<Wider<T>, B>
vsubl_lo(const Vec<T, B> &a, const Vec<T, B> &b)
{
    using W = Wider<T>;
    return detail::widenHalf(
        a, b, false,
        [](T x, T y) { return detail::wrapSub(W(x), W(y)); },
        detail::arithClass<W>());
}
template <typename T, int B>
inline Vec<Wider<T>, B>
vsubl_hi(const Vec<T, B> &a, const Vec<T, B> &b)
{
    using W = Wider<T>;
    return detail::widenHalf(
        a, b, true, [](T x, T y) { return detail::wrapSub(W(x), W(y)); },
        detail::arithClass<W>());
}

/** Widening multiply of narrow halves (VMULL). */
template <typename T, int B>
inline Vec<Wider<T>, B>
vmull_lo(const Vec<T, B> &a, const Vec<T, B> &b)
{
    using W = Wider<T>;
    return detail::widenHalf(
        a, b, false,
        [](T x, T y) { return detail::wrapMul(W(x), W(y)); },
        detail::arithClass<W>());
}
template <typename T, int B>
inline Vec<Wider<T>, B>
vmull_hi(const Vec<T, B> &a, const Vec<T, B> &b)
{
    using W = Wider<T>;
    return detail::widenHalf(
        a, b, true, [](T x, T y) { return detail::wrapMul(W(x), W(y)); },
        detail::arithClass<W>());
}

namespace detail
{

template <typename T, int B, typename F>
inline Vec<Wider<T>, B>
widenAcc(const Vec<Wider<T>, B> &acc, const Vec<T, B> &a, const Vec<T, B> &b,
         bool hi, F &&f)
{
    using W = Wider<T>;
    Vec<W, B> r;
    const int base = hi ? Vec<W, B>::kLanes : 0;
    for (int i = 0; i < Vec<W, B>::kLanes; ++i) {
        r.lane[size_t(i)] = f(acc.lane[size_t(i)], a.lane[size_t(base + i)],
                              b.lane[size_t(base + i)]);
    }
    r.active = acc.active;
    r.src = emitOp(detail::arithClass<W>(), Fu::VUnit, Lat::vMacFwd,
                   acc.src, a.src, b.src, Vec<W, B>::kBytes,
                   Vec<W, B>::kLanes, r.active);
    return r;
}

} // namespace detail

/** Widening multiply-accumulate acc + lo/hi(a)*lo/hi(b) (VMLAL). */
template <typename T, int B>
inline Vec<Wider<T>, B>
vmlal_lo(const Vec<Wider<T>, B> &acc, const Vec<T, B> &a, const Vec<T, B> &b)
{
    using W = Wider<T>;
    return detail::widenAcc(acc, a, b, false, [](W c, T x, T y) {
        return detail::wrapAdd(c, detail::wrapMul(W(x), W(y)));
    });
}
template <typename T, int B>
inline Vec<Wider<T>, B>
vmlal_hi(const Vec<Wider<T>, B> &acc, const Vec<T, B> &a, const Vec<T, B> &b)
{
    using W = Wider<T>;
    return detail::widenAcc(acc, a, b, true, [](W c, T x, T y) {
        return detail::wrapAdd(c, detail::wrapMul(W(x), W(y)));
    });
}

/** Widening multiply-subtract (VMLSL). */
template <typename T, int B>
inline Vec<Wider<T>, B>
vmlsl_lo(const Vec<Wider<T>, B> &acc, const Vec<T, B> &a, const Vec<T, B> &b)
{
    using W = Wider<T>;
    return detail::widenAcc(acc, a, b, false, [](W c, T x, T y) {
        return detail::wrapSub(c, detail::wrapMul(W(x), W(y)));
    });
}
template <typename T, int B>
inline Vec<Wider<T>, B>
vmlsl_hi(const Vec<Wider<T>, B> &acc, const Vec<T, B> &a, const Vec<T, B> &b)
{
    using W = Wider<T>;
    return detail::widenAcc(acc, a, b, true, [](W c, T x, T y) {
        return detail::wrapSub(c, detail::wrapMul(W(x), W(y)));
    });
}

/** Wide + widened-narrow-half add (VADDW). */
template <typename T, int B>
inline Vec<Wider<T>, B>
vaddw_lo(const Vec<Wider<T>, B> &w, const Vec<T, B> &a)
{
    using W = Wider<T>;
    Vec<W, B> r;
    for (int i = 0; i < Vec<W, B>::kLanes; ++i) {
        r.lane[size_t(i)] =
            detail::wrapAdd(w.lane[size_t(i)], W(a.lane[size_t(i)]));
    }
    r.active = w.active;
    r.src = emitOp(detail::arithClass<W>(), Fu::VUnit, Lat::vAlu, w.src,
                   a.src, 0, Vec<W, B>::kBytes, Vec<W, B>::kLanes, r.active);
    return r;
}

/** Wide + widened high-half add (VADDW2). */
template <typename T, int B>
inline Vec<Wider<T>, B>
vaddw_hi(const Vec<Wider<T>, B> &w, const Vec<T, B> &a)
{
    using W = Wider<T>;
    Vec<W, B> r;
    const int base = Vec<W, B>::kLanes;
    for (int i = 0; i < Vec<W, B>::kLanes; ++i) {
        r.lane[size_t(i)] = detail::wrapAdd(
            w.lane[size_t(i)], W(a.lane[size_t(base + i)]));
    }
    r.active = w.active;
    r.src = emitOp(detail::arithClass<W>(), Fu::VUnit, Lat::vAlu, w.src,
                   a.src, 0, Vec<W, B>::kBytes, Vec<W, B>::kLanes,
                   r.active);
    return r;
}

namespace detail
{

/**
 * Narrowing pair: wide lo + wide hi -> one narrow register. Emits the two
 * instructions (XTN + XTN2 style) a Neon build issues.
 */
template <typename W, int B, typename F>
inline Vec<Narrower<W>, B>
narrowPair(const Vec<W, B> &lo, const Vec<W, B> &hi, F &&f, InstrClass cls)
{
    using N = Narrower<W>;
    Vec<N, B> r;
    const int half = Vec<W, B>::kLanes;
    for (int i = 0; i < half; ++i) {
        r.lane[size_t(i)] = f(lo.lane[size_t(i)]);
        r.lane[size_t(half + i)] = f(hi.lane[size_t(i)]);
    }
    uint64_t id0 = emitOp(cls, Fu::VUnit, Lat::vAlu, lo.src, 0, 0,
                          Vec<N, B>::kBytes, Vec<N, B>::kLanes,
                          Vec<N, B>::kLanes / 2);
    uint64_t id1 = emitOp(cls, Fu::VUnit, Lat::vAlu, hi.src, id0, 0,
                          Vec<N, B>::kBytes, Vec<N, B>::kLanes,
                          Vec<N, B>::kLanes / 2);
    r.src = id1;
    return r;
}

} // namespace detail

/** Truncating narrow (XTN/XTN2 pair). */
template <typename W, int B>
inline Vec<Narrower<W>, B>
vmovn(const Vec<W, B> &lo, const Vec<W, B> &hi)
{
    using N = Narrower<W>;
    return detail::narrowPair(lo, hi, [](W x) { return N(x); },
                              InstrClass::VMisc);
}

/** Saturating narrow (SQXTN/UQXTN pair). */
template <typename W, int B>
inline Vec<Narrower<W>, B>
vqmovn(const Vec<W, B> &lo, const Vec<W, B> &hi)
{
    using N = Narrower<W>;
    return detail::narrowPair(
        lo, hi, [](W x) { return detail::saturate<N>(int64_t(x)); },
        InstrClass::VInt);
}

/** Signed-to-unsigned saturating narrow (SQXTUN pair). */
template <typename W, int B>
inline Vec<std::make_unsigned_t<Narrower<W>>, B>
vqmovun(const Vec<W, B> &lo, const Vec<W, B> &hi)
{
    static_assert(std::is_signed_v<W>);
    using N = std::make_unsigned_t<Narrower<W>>;
    using NS = Narrower<W>;
    (void)sizeof(NS);
    Vec<N, B> r;
    const int half = Vec<W, B>::kLanes;
    auto sat = [](W x) {
        int64_t v = int64_t(x);
        int64_t hi_lim = int64_t(std::numeric_limits<N>::max());
        return N(std::clamp<int64_t>(v, 0, hi_lim));
    };
    for (int i = 0; i < half; ++i) {
        r.lane[size_t(i)] = sat(lo.lane[size_t(i)]);
        r.lane[size_t(half + i)] = sat(hi.lane[size_t(i)]);
    }
    uint64_t id0 = emitOp(InstrClass::VInt, Fu::VUnit, Lat::vAlu, lo.src, 0,
                          0, Vec<N, B>::kBytes, Vec<N, B>::kLanes,
                          Vec<N, B>::kLanes / 2);
    r.src = emitOp(InstrClass::VInt, Fu::VUnit, Lat::vAlu, hi.src, id0, 0,
                   Vec<N, B>::kBytes, Vec<N, B>::kLanes,
                   Vec<N, B>::kLanes / 2);
    return r;
}

/** Narrowing right shift (SHRN pair). */
template <typename W, int B>
inline Vec<Narrower<W>, B>
vshrn(const Vec<W, B> &lo, const Vec<W, B> &hi, int n)
{
    using N = Narrower<W>;
    return detail::narrowPair(lo, hi, [n](W x) { return N(x >> n); },
                              InstrClass::VInt);
}

/** Rounding narrowing right shift (RSHRN pair). */
template <typename W, int B>
inline Vec<Narrower<W>, B>
vrshrn(const Vec<W, B> &lo, const Vec<W, B> &hi, int n)
{
    using N = Narrower<W>;
    return detail::narrowPair(
        lo, hi,
        [n](W x) {
            int64_t v = int64_t(x) + (int64_t(1) << (n - 1));
            return N(v >> n);
        },
        InstrClass::VInt);
}

/** Saturating rounding narrowing right shift, unsigned result (SQRSHRUN). */
template <typename W, int B>
inline Vec<std::make_unsigned_t<Narrower<W>>, B>
vqrshrun(const Vec<W, B> &lo, const Vec<W, B> &hi, int n)
{
    static_assert(std::is_signed_v<W>);
    using N = std::make_unsigned_t<Narrower<W>>;
    Vec<N, B> r;
    const int half = Vec<W, B>::kLanes;
    auto f = [n](W x) {
        int64_t v = (int64_t(x) + (int64_t(1) << (n - 1))) >> n;
        return N(std::clamp<int64_t>(
            v, 0, int64_t(std::numeric_limits<N>::max())));
    };
    for (int i = 0; i < half; ++i) {
        r.lane[size_t(i)] = f(lo.lane[size_t(i)]);
        r.lane[size_t(half + i)] = f(hi.lane[size_t(i)]);
    }
    uint64_t id0 = emitOp(InstrClass::VInt, Fu::VUnit, Lat::vAlu, lo.src, 0,
                          0, Vec<N, B>::kBytes, Vec<N, B>::kLanes,
                          Vec<N, B>::kLanes / 2);
    r.src = emitOp(InstrClass::VInt, Fu::VUnit, Lat::vAlu, hi.src, id0, 0,
                   Vec<N, B>::kBytes, Vec<N, B>::kLanes,
                   Vec<N, B>::kLanes / 2);
    return r;
}

// ---------------------------------------------------------------------
// Pairwise and across-vector operations.
// ---------------------------------------------------------------------

/** Pairwise add of concatenated a:b (ADDP). */
template <typename T, int B>
inline Vec<T, B>
vpadd(const Vec<T, B> &a, const Vec<T, B> &b)
{
    Vec<T, B> r;
    const int half = Vec<T, B>::kLanes / 2;
    for (int i = 0; i < half; ++i) {
        r.lane[size_t(i)] = detail::wrapAdd(a.lane[size_t(2 * i)],
                                            a.lane[size_t(2 * i + 1)]);
        r.lane[size_t(half + i)] = detail::wrapAdd(
            b.lane[size_t(2 * i)], b.lane[size_t(2 * i + 1)]);
    }
    r.active = std::min(a.active, b.active);
    r.src = emitOp(detail::arithClass<T>(), Fu::VUnit, Lat::vAlu, a.src,
                   b.src, 0, Vec<T, B>::kBytes, Vec<T, B>::kLanes, r.active);
    return r;
}

/** Pairwise add long: adjacent pairs summed into wider lanes (VPADDL). */
template <typename T, int B>
inline Vec<Wider<T>, B>
vpaddl(const Vec<T, B> &a)
{
    using W = Wider<T>;
    Vec<W, B> r;
    for (int i = 0; i < Vec<W, B>::kLanes; ++i) {
        r.lane[size_t(i)] = detail::wrapAdd(W(a.lane[size_t(2 * i)]),
                                            W(a.lane[size_t(2 * i + 1)]));
    }
    r.src = emitOp(detail::arithClass<W>(), Fu::VUnit, Lat::vAlu, a.src, 0,
                   0, Vec<W, B>::kBytes, Vec<W, B>::kLanes,
                   Vec<W, B>::kLanes);
    return r;
}

/** Pairwise add-long accumulate (VPADAL). */
template <typename T, int B>
inline Vec<Wider<T>, B>
vpadal(const Vec<Wider<T>, B> &acc, const Vec<T, B> &a)
{
    using W = Wider<T>;
    Vec<W, B> r;
    for (int i = 0; i < Vec<W, B>::kLanes; ++i) {
        W pair = detail::wrapAdd(W(a.lane[size_t(2 * i)]),
                                 W(a.lane[size_t(2 * i + 1)]));
        r.lane[size_t(i)] = detail::wrapAdd(acc.lane[size_t(i)], pair);
    }
    r.active = acc.active;
    r.src = emitOp(detail::arithClass<W>(), Fu::VUnit, Lat::vAlu, acc.src,
                   a.src, 0, Vec<W, B>::kBytes, Vec<W, B>::kLanes, r.active);
    return r;
}

/** Across-vector sum into a scalar (ADDV). */
template <typename T, int B>
inline Sc<T>
vaddv(const Vec<T, B> &a)
{
    T sum{};
    for (int i = 0; i < Vec<T, B>::kLanes; ++i)
        sum = detail::wrapAdd(sum, a.lane[size_t(i)]);
    uint64_t id = emitOp(detail::arithClass<T>(), Fu::VUnit, Lat::vAcross,
                         a.src, 0, 0, Vec<T, B>::kBytes, Vec<T, B>::kLanes,
                         a.active);
    return {sum, id};
}

/** Across-vector widening sum (ADDLV / U/SADDLV, Section 7.1). */
template <typename T, int B>
inline Sc<Wider<T>>
vaddlv(const Vec<T, B> &a)
{
    using W = Wider<T>;
    W sum{};
    for (int i = 0; i < Vec<T, B>::kLanes; ++i)
        sum = detail::wrapAdd(sum, W(a.lane[size_t(i)]));
    uint64_t id = emitOp(detail::arithClass<W>(), Fu::VUnit, Lat::vAcross,
                         a.src, 0, 0, Vec<T, B>::kBytes, Vec<T, B>::kLanes,
                         a.active);
    return {sum, id};
}

/** Across-vector maximum (MAXV). */
template <typename T, int B>
inline Sc<T>
vmaxv(const Vec<T, B> &a)
{
    T m = a.lane[0];
    for (int i = 1; i < Vec<T, B>::kLanes; ++i)
        m = a.lane[size_t(i)] > m ? a.lane[size_t(i)] : m;
    uint64_t id = emitOp(detail::arithClass<T>(), Fu::VUnit, Lat::vAcross,
                         a.src, 0, 0, Vec<T, B>::kBytes, Vec<T, B>::kLanes,
                         a.active);
    return {m, id};
}

/** Across-vector minimum (MINV). */
template <typename T, int B>
inline Sc<T>
vminv(const Vec<T, B> &a)
{
    T m = a.lane[0];
    for (int i = 1; i < Vec<T, B>::kLanes; ++i)
        m = a.lane[size_t(i)] < m ? a.lane[size_t(i)] : m;
    uint64_t id = emitOp(detail::arithClass<T>(), Fu::VUnit, Lat::vAcross,
                         a.src, 0, 0, Vec<T, B>::kBytes, Vec<T, B>::kLanes,
                         a.active);
    return {m, id};
}

// ---------------------------------------------------------------------
// Conversions.
// ---------------------------------------------------------------------

/** Lane-wise int<->float conversion with same lane width (FCVT/SCVTF). */
template <typename To, typename From, int B>
inline Vec<To, B>
vcvt(const Vec<From, B> &a)
{
    static_assert(sizeof(To) == sizeof(From));
    Vec<To, B> r;
    for (int i = 0; i < Vec<From, B>::kLanes; ++i)
        r.lane[size_t(i)] = To(a.lane[size_t(i)]);
    r.active = a.active;
    r.src = emitOp(InstrClass::VFloat, Fu::VUnit, Lat::vFp, a.src, 0, 0,
                   Vec<To, B>::kBytes, Vec<To, B>::kLanes, r.active);
    return r;
}

/** FP16 -> FP32 widening conversion of the low (high) half (FCVTL). */
template <int B>
inline Vec<float, B>
vcvt_f32_lo(const Vec<Half, B> &a)
{
    return detail::widenHalf(a, a, false,
                             [](Half x, Half) { return float(x); },
                             InstrClass::VFloat);
}
template <int B>
inline Vec<float, B>
vcvt_f32_hi(const Vec<Half, B> &a)
{
    return detail::widenHalf(a, a, true,
                             [](Half x, Half) { return float(x); },
                             InstrClass::VFloat);
}

/** FP32 pair -> FP16 narrowing conversion (FCVTN pair). */
template <int B>
inline Vec<Half, B>
vcvt_f16(const Vec<float, B> &lo, const Vec<float, B> &hi)
{
    return detail::narrowPair(lo, hi, [](float x) { return Half(x); },
                              InstrClass::VFloat);
}

} // namespace swan::simd

#endif // SWAN_SIMD_VEC_WIDE_HH
