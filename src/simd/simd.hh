/**
 * @file
 * Umbrella header for the Swan portable Neon emulation layer.
 */

#ifndef SWAN_SIMD_SIMD_HH
#define SWAN_SIMD_SIMD_HH

#include "simd/half.hh"       // IWYU pragma: export
#include "simd/scalar.hh"     // IWYU pragma: export
#include "simd/vec.hh"        // IWYU pragma: export
#include "simd/vec_crypto.hh" // IWYU pragma: export
#include "simd/vec_mem.hh"    // IWYU pragma: export
#include "simd/vec_permute.hh"// IWYU pragma: export
#include "simd/vec_sve.hh"    // IWYU pragma: export
#include "simd/vec_wasm.hh"   // IWYU pragma: export
#include "simd/vec_wide.hh"   // IWYU pragma: export

#endif // SWAN_SIMD_SIMD_HH
