#include "simd/emit.hh"

// Emission helpers are header-inline; this translation unit intentionally
// only anchors the target.
