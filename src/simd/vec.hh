/**
 * @file
 * Width-generic functional emulation of Arm Neon vector registers and the
 * arithmetic/logic intrinsic families. This is the "fake Arm Neon library"
 * of the paper's Section 7 methodology, generalized to 128/256/512/1024-bit
 * registers and instrumented so every intrinsic appends one dynamic
 * instruction record (see trace/instr.hh).
 *
 * Values carry provenance: Vec::src is the id of the producing instruction,
 * and Vec::active tracks how many lanes hold useful data (SIMD lane
 * utilization, Section 7.1). Operations propagate both.
 *
 * Naming follows Neon without the type suffix (the element type and width
 * are template parameters): vaddq_u8(a, b) is written vadd(a, b) on
 * Vec<uint8_t, 128>.
 */

#ifndef SWAN_SIMD_VEC_HH
#define SWAN_SIMD_VEC_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>
#include <type_traits>

#include "simd/emit.hh"
#include "simd/half.hh"
#include "simd/scalar.hh"

namespace swan::simd
{

/** Supported emulated register widths in bits. */
constexpr bool
validWidth(int bits)
{
    return bits == 64 || bits == 128 || bits == 256 || bits == 512 ||
           bits == 1024;
}

/**
 * Emulated vector register: kBits wide, holding kBits/8/sizeof(T) lanes
 * of element type T.
 */
template <typename T, int kBits = 128>
struct Vec
{
    static_assert(validWidth(kBits), "unsupported vector width");
    static constexpr int kLanes = kBits / int(8 * sizeof(T));
    static constexpr int kBytes = kBits / 8;
    static_assert(kLanes >= 1);

    std::array<T, kLanes> lane{};
    uint64_t src = 0;               //!< producer instruction id
    uint8_t active = kLanes;        //!< lanes carrying useful data

    T operator[](int i) const { return lane[size_t(i)]; }
};

// ---------------------------------------------------------------------
// Element-type traits.
// ---------------------------------------------------------------------

template <typename T> struct WiderOf;
template <> struct WiderOf<uint8_t> { using type = uint16_t; };
template <> struct WiderOf<int8_t> { using type = int16_t; };
template <> struct WiderOf<uint16_t> { using type = uint32_t; };
template <> struct WiderOf<int16_t> { using type = int32_t; };
template <> struct WiderOf<uint32_t> { using type = uint64_t; };
template <> struct WiderOf<int32_t> { using type = int64_t; };
template <> struct WiderOf<Half> { using type = float; };
template <typename T> using Wider = typename WiderOf<T>::type;

template <typename T> struct NarrowerOf;
template <> struct NarrowerOf<uint16_t> { using type = uint8_t; };
template <> struct NarrowerOf<int16_t> { using type = int8_t; };
template <> struct NarrowerOf<uint32_t> { using type = uint16_t; };
template <> struct NarrowerOf<int32_t> { using type = int16_t; };
template <> struct NarrowerOf<uint64_t> { using type = uint32_t; };
template <> struct NarrowerOf<int64_t> { using type = int32_t; };
template <> struct NarrowerOf<float> { using type = Half; };
template <typename T> using Narrower = typename NarrowerOf<T>::type;

/** Same-size unsigned type used for comparison masks and bit-selects. */
template <typename T> struct MaskOf { using type = std::make_unsigned_t<T>; };
template <> struct MaskOf<float> { using type = uint32_t; };
template <> struct MaskOf<double> { using type = uint64_t; };
template <> struct MaskOf<Half> { using type = uint16_t; };
template <typename T> using Mask = typename MaskOf<T>::type;

namespace detail
{

template <typename T>
inline InstrClass
arithClass()
{
    return isFloatLike<T> ? InstrClass::VFloat : InstrClass::VInt;
}

template <typename T>
inline int
arithLat(bool is_mul = false, bool is_div = false)
{
    if constexpr (isFloatLike<T>)
        return is_div ? Lat::vFdiv : (is_mul ? Lat::vFp : Lat::vFp);
    else
        return is_mul ? Lat::vMul : Lat::vAlu;
}

/** Elementwise unary op with one emitted instruction. */
template <typename T, int B, typename F>
inline Vec<T, B>
map1(InstrClass cls, int lat, const Vec<T, B> &a, F &&f,
     StrideKind sk = StrideKind::None)
{
    Vec<T, B> r;
    for (int i = 0; i < Vec<T, B>::kLanes; ++i)
        r.lane[size_t(i)] = f(a.lane[size_t(i)]);
    r.active = a.active;
    r.src = emitOp(cls, Fu::VUnit, lat, a.src, 0, 0, Vec<T, B>::kBytes,
                   Vec<T, B>::kLanes, r.active, sk);
    return r;
}

/** Elementwise binary op with one emitted instruction. */
template <typename T, int B, typename F>
inline Vec<T, B>
map2(InstrClass cls, int lat, const Vec<T, B> &a, const Vec<T, B> &b, F &&f,
     StrideKind sk = StrideKind::None)
{
    Vec<T, B> r;
    for (int i = 0; i < Vec<T, B>::kLanes; ++i)
        r.lane[size_t(i)] = f(a.lane[size_t(i)], b.lane[size_t(i)]);
    r.active = std::min(a.active, b.active);
    r.src = emitOp(cls, Fu::VUnit, lat, a.src, b.src, 0, Vec<T, B>::kBytes,
                   Vec<T, B>::kLanes, r.active, sk);
    return r;
}

/** Elementwise ternary op (accumulating forms) with one instruction. */
template <typename T, int B, typename F>
inline Vec<T, B>
map3(InstrClass cls, int lat, const Vec<T, B> &acc, const Vec<T, B> &a,
     const Vec<T, B> &b, F &&f)
{
    Vec<T, B> r;
    for (int i = 0; i < Vec<T, B>::kLanes; ++i) {
        r.lane[size_t(i)] =
            f(acc.lane[size_t(i)], a.lane[size_t(i)], b.lane[size_t(i)]);
    }
    r.active = std::min({acc.active, a.active, b.active});
    r.src = emitOp(cls, Fu::VUnit, lat, acc.src, a.src, b.src,
                   Vec<T, B>::kBytes, Vec<T, B>::kLanes, r.active);
    return r;
}

template <typename T>
inline T
saturate(int64_t x)
{
    constexpr int64_t lo = int64_t(std::numeric_limits<T>::min());
    constexpr int64_t hi = int64_t(std::numeric_limits<T>::max());
    return T(std::clamp<int64_t>(x, lo, hi));
}

} // namespace detail

// ---------------------------------------------------------------------
// Broadcast / lane access / reinterpret.
// ---------------------------------------------------------------------

/** Broadcast a compile-time/immediate constant (VDUP from immediate). */
template <typename T, int B = 128>
inline Vec<T, B>
vdup(T c)
{
    Vec<T, B> r;
    r.lane.fill(c);
    r.src = emitOp(InstrClass::VMisc, Fu::VUnit, Lat::vPerm, 0, 0, 0,
                   Vec<T, B>::kBytes, Vec<T, B>::kLanes, Vec<T, B>::kLanes);
    return r;
}

/** Broadcast an instrumented scalar (VDUP from general register). */
template <typename T, int B = 128>
inline Vec<T, B>
vdup(Sc<T> s)
{
    Vec<T, B> r;
    r.lane.fill(s.v);
    r.src = emitOp(InstrClass::VMisc, Fu::VUnit, Lat::laneMove, s.src, 0, 0,
                   Vec<T, B>::kBytes, Vec<T, B>::kLanes, Vec<T, B>::kLanes);
    return r;
}

/** Move one lane to a scalar register (UMOV/FMOV; costly, Section 6.2). */
template <typename T, int B>
inline Sc<T>
vget_lane(const Vec<T, B> &v, int i)
{
    uint64_t id = emitOp(InstrClass::VMisc, Fu::VUnit, Lat::laneMove, v.src,
                         0, 0, Vec<T, B>::kBytes, Vec<T, B>::kLanes, 1);
    return {v.lane[size_t(i)], id};
}

/** Insert a scalar into one lane. */
template <typename T, int B>
inline Vec<T, B>
vset_lane(const Vec<T, B> &v, int i, Sc<T> s)
{
    Vec<T, B> r = v;
    r.lane[size_t(i)] = s.v;
    r.src = emitOp(InstrClass::VMisc, Fu::VUnit, Lat::laneMove, v.src, s.src,
                   0, Vec<T, B>::kBytes, Vec<T, B>::kLanes, v.active);
    return r;
}

/** Broadcast lane @p i of @p v to all lanes (VDUP lane form). */
template <typename T, int B>
inline Vec<T, B>
vdup_lane(const Vec<T, B> &v, int i)
{
    Vec<T, B> r;
    r.lane.fill(v.lane[size_t(i)]);
    r.src = emitOp(InstrClass::VMisc, Fu::VUnit, Lat::vPerm, v.src, 0, 0,
                   Vec<T, B>::kBytes, Vec<T, B>::kLanes, Vec<T, B>::kLanes);
    return r;
}

/**
 * Reinterpret the register as another element type (free: register
 * aliasing, no instruction emitted).
 */
template <typename U, typename T, int B>
inline Vec<U, B>
vreinterpret(const Vec<T, B> &v)
{
    Vec<U, B> r;
    std::memcpy(r.lane.data(), v.lane.data(), size_t(Vec<T, B>::kBytes));
    r.src = v.src;
    r.active = uint8_t(Vec<U, B>::kLanes);
    return r;
}

// ---------------------------------------------------------------------
// Arithmetic.
// ---------------------------------------------------------------------

template <typename T, int B>
inline Vec<T, B>
vadd(const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::map2(detail::arithClass<T>(), detail::arithLat<T>(), a, b,
                        [](T x, T y) { return detail::wrapAdd(x, y); });
}

template <typename T, int B>
inline Vec<T, B>
vsub(const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::map2(detail::arithClass<T>(), detail::arithLat<T>(), a, b,
                        [](T x, T y) { return detail::wrapSub(x, y); });
}

template <typename T, int B>
inline Vec<T, B>
vmul(const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::map2(detail::arithClass<T>(), detail::arithLat<T>(true),
                        a, b,
                        [](T x, T y) { return detail::wrapMul(x, y); });
}

/** Multiply by scalar (the *_n_* intrinsic forms). */
template <typename T, int B>
inline Vec<T, B>
vmul_n(const Vec<T, B> &a, Sc<T> s)
{
    Vec<T, B> r;
    for (int i = 0; i < Vec<T, B>::kLanes; ++i)
        r.lane[size_t(i)] = detail::wrapMul(a.lane[size_t(i)], s.v);
    r.active = a.active;
    r.src = emitOp(detail::arithClass<T>(), Fu::VUnit,
                   detail::arithLat<T>(true), a.src, s.src, 0,
                   Vec<T, B>::kBytes, Vec<T, B>::kLanes, r.active);
    return r;
}

template <typename T, int B>
inline Vec<T, B>
vdiv(const Vec<T, B> &a, const Vec<T, B> &b)
{
    static_assert(isFloatLike<T>, "vdiv is FP-only on Neon");
    return detail::map2(InstrClass::VFloat, Lat::vFdiv, a, b,
                        [](T x, T y) { return T(x / y); });
}

/** Fused/accumulating multiply-add: acc + a*b (VMLA / VFMA). */
template <typename T, int B>
inline Vec<T, B>
vmla(const Vec<T, B> &acc, const Vec<T, B> &a, const Vec<T, B> &b)
{
    int lat = Lat::vMacFwd;
    return detail::map3(detail::arithClass<T>(), lat, acc, a, b,
                        [](T c, T x, T y) {
                            return detail::wrapAdd(c, detail::wrapMul(x, y));
                        });
}

/** acc - a*b (VMLS / VFMS). */
template <typename T, int B>
inline Vec<T, B>
vmls(const Vec<T, B> &acc, const Vec<T, B> &a, const Vec<T, B> &b)
{
    int lat = Lat::vMacFwd;
    return detail::map3(detail::arithClass<T>(), lat, acc, a, b,
                        [](T c, T x, T y) {
                            return detail::wrapSub(c, detail::wrapMul(x, y));
                        });
}

/** acc + a*scalar (VMLA lane/scalar form). */
template <typename T, int B>
inline Vec<T, B>
vmla_n(const Vec<T, B> &acc, const Vec<T, B> &a, Sc<T> s)
{
    Vec<T, B> r;
    for (int i = 0; i < Vec<T, B>::kLanes; ++i) {
        r.lane[size_t(i)] = detail::wrapAdd(
            acc.lane[size_t(i)], detail::wrapMul(a.lane[size_t(i)], s.v));
    }
    r.active = std::min(acc.active, a.active);
    r.src = emitOp(detail::arithClass<T>(), Fu::VUnit, Lat::vMacFwd,
                   acc.src, a.src, s.src, Vec<T, B>::kBytes,
                   Vec<T, B>::kLanes, r.active);
    return r;
}

template <typename T, int B>
inline Vec<T, B>
vneg(const Vec<T, B> &a)
{
    return detail::map1(detail::arithClass<T>(), detail::arithLat<T>(), a,
                        [](T x) { return detail::wrapSub(T{}, x); });
}

template <typename T, int B>
inline Vec<T, B>
vabs(const Vec<T, B> &a)
{
    return detail::map1(detail::arithClass<T>(), detail::arithLat<T>(), a,
                        [](T x) {
                            return x < T{} ? detail::wrapSub(T{}, x) : x;
                        });
}

template <typename T, int B>
inline Vec<T, B>
vmin(const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::map2(detail::arithClass<T>(), detail::arithLat<T>(), a, b,
                        [](T x, T y) { return x < y ? x : y; });
}

template <typename T, int B>
inline Vec<T, B>
vmax(const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::map2(detail::arithClass<T>(), detail::arithLat<T>(), a, b,
                        [](T x, T y) { return x > y ? x : y; });
}

/** Absolute difference |a-b| (VABD). */
template <typename T, int B>
inline Vec<T, B>
vabd(const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::map2(detail::arithClass<T>(), detail::arithLat<T>(), a, b,
                        [](T x, T y) {
                            return x > y ? detail::wrapSub(x, y)
                                         : detail::wrapSub(y, x);
                        });
}

/** Absolute-difference accumulate acc + |a-b| (VABA). */
template <typename T, int B>
inline Vec<T, B>
vaba(const Vec<T, B> &acc, const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::map3(detail::arithClass<T>(), detail::arithLat<T>(), acc,
                        a, b, [](T c, T x, T y) {
                            T d = x > y ? detail::wrapSub(x, y)
                                        : detail::wrapSub(y, x);
                            return detail::wrapAdd(c, d);
                        });
}

/** Halving add (a+b)>>1 without overflow (VHADD). */
template <typename T, int B>
inline Vec<T, B>
vhadd(const Vec<T, B> &a, const Vec<T, B> &b)
{
    static_assert(std::is_integral_v<T>);
    return detail::map2(InstrClass::VInt, Lat::vAlu, a, b, [](T x, T y) {
        return T((int64_t(x) + int64_t(y)) >> 1);
    });
}

/** Rounding halving add (a+b+1)>>1 (VRHADD). */
template <typename T, int B>
inline Vec<T, B>
vrhadd(const Vec<T, B> &a, const Vec<T, B> &b)
{
    static_assert(std::is_integral_v<T>);
    return detail::map2(InstrClass::VInt, Lat::vAlu, a, b, [](T x, T y) {
        return T((int64_t(x) + int64_t(y) + 1) >> 1);
    });
}

// Saturating arithmetic.

template <typename T, int B>
inline Vec<T, B>
vqadd(const Vec<T, B> &a, const Vec<T, B> &b)
{
    static_assert(std::is_integral_v<T>);
    return detail::map2(InstrClass::VInt, Lat::vAlu, a, b, [](T x, T y) {
        return detail::saturate<T>(int64_t(x) + int64_t(y));
    });
}

template <typename T, int B>
inline Vec<T, B>
vqsub(const Vec<T, B> &a, const Vec<T, B> &b)
{
    static_assert(std::is_integral_v<T>);
    return detail::map2(InstrClass::VInt, Lat::vAlu, a, b, [](T x, T y) {
        return detail::saturate<T>(int64_t(x) - int64_t(y));
    });
}

/** Saturating doubling multiply returning high half (VQDMULH). */
template <typename T, int B>
inline Vec<T, B>
vqdmulh(const Vec<T, B> &a, const Vec<T, B> &b)
{
    static_assert(std::is_same_v<T, int16_t> || std::is_same_v<T, int32_t>);
    constexpr int kShift = sizeof(T) * 8;
    return detail::map2(InstrClass::VInt, Lat::vMul, a, b, [](T x, T y) {
        int64_t p = (int64_t(x) * int64_t(y)) * 2;
        return detail::saturate<T>(p >> kShift);
    });
}

/** Rounding saturating doubling multiply high (VQRDMULH). */
template <typename T, int B>
inline Vec<T, B>
vqrdmulh(const Vec<T, B> &a, const Vec<T, B> &b)
{
    static_assert(std::is_same_v<T, int16_t> || std::is_same_v<T, int32_t>);
    constexpr int kShift = sizeof(T) * 8;
    return detail::map2(InstrClass::VInt, Lat::vMul, a, b, [](T x, T y) {
        int64_t p = (int64_t(x) * int64_t(y)) * 2 + (int64_t(1) << (kShift - 1));
        return detail::saturate<T>(p >> kShift);
    });
}

// ---------------------------------------------------------------------
// Logic and shifts.
// ---------------------------------------------------------------------

template <typename T, int B>
inline Vec<T, B>
vand(const Vec<T, B> &a, const Vec<T, B> &b)
{
    static_assert(std::is_integral_v<T>);
    return detail::map2(InstrClass::VInt, Lat::vAlu, a, b,
                        [](T x, T y) { return T(x & y); });
}

template <typename T, int B>
inline Vec<T, B>
vorr(const Vec<T, B> &a, const Vec<T, B> &b)
{
    static_assert(std::is_integral_v<T>);
    return detail::map2(InstrClass::VInt, Lat::vAlu, a, b,
                        [](T x, T y) { return T(x | y); });
}

template <typename T, int B>
inline Vec<T, B>
veor(const Vec<T, B> &a, const Vec<T, B> &b)
{
    static_assert(std::is_integral_v<T>);
    return detail::map2(InstrClass::VInt, Lat::vAlu, a, b,
                        [](T x, T y) { return T(x ^ y); });
}

/** a & ~b (VBIC). */
template <typename T, int B>
inline Vec<T, B>
vbic(const Vec<T, B> &a, const Vec<T, B> &b)
{
    static_assert(std::is_integral_v<T>);
    return detail::map2(InstrClass::VInt, Lat::vAlu, a, b,
                        [](T x, T y) { return T(x & ~y); });
}

template <typename T, int B>
inline Vec<T, B>
vmvn(const Vec<T, B> &a)
{
    static_assert(std::is_integral_v<T>);
    return detail::map1(InstrClass::VInt, Lat::vAlu, a,
                        [](T x) { return T(~x); });
}

/** Left shift by immediate. */
template <typename T, int B>
inline Vec<T, B>
vshl(const Vec<T, B> &a, int n)
{
    static_assert(std::is_integral_v<T>);
    return detail::map1(InstrClass::VInt, Lat::vAlu, a, [n](T x) {
        return T(uint64_t(std::make_unsigned_t<T>(x)) << n);
    });
}

/** Right shift by immediate (arithmetic for signed T). */
template <typename T, int B>
inline Vec<T, B>
vshr(const Vec<T, B> &a, int n)
{
    static_assert(std::is_integral_v<T>);
    return detail::map1(InstrClass::VInt, Lat::vAlu, a,
                        [n](T x) { return T(x >> n); });
}

/** Rounding right shift by immediate (VRSHR). */
template <typename T, int B>
inline Vec<T, B>
vrshr(const Vec<T, B> &a, int n)
{
    static_assert(std::is_integral_v<T>);
    return detail::map1(InstrClass::VInt, Lat::vAlu, a, [n](T x) {
        int64_t v = int64_t(x) + (int64_t(1) << (n - 1));
        return T(v >> n);
    });
}

/** Shift-right accumulate acc + (a >> n) (VSRA). */
template <typename T, int B>
inline Vec<T, B>
vsra(const Vec<T, B> &acc, const Vec<T, B> &a, int n)
{
    static_assert(std::is_integral_v<T>);
    return detail::map2(InstrClass::VInt, Lat::vAlu, acc, a, [n](T c, T x) {
        return detail::wrapAdd(c, T(x >> n));
    });
}

// ---------------------------------------------------------------------
// Comparisons and bit select.
// ---------------------------------------------------------------------

namespace detail
{

template <typename T, int B, typename F>
inline Vec<Mask<T>, B>
cmp(const Vec<T, B> &a, const Vec<T, B> &b, F &&f)
{
    Vec<Mask<T>, B> r;
    for (int i = 0; i < Vec<T, B>::kLanes; ++i) {
        r.lane[size_t(i)] =
            f(a.lane[size_t(i)], b.lane[size_t(i)]) ? Mask<T>(~Mask<T>(0))
                                                    : Mask<T>(0);
    }
    r.active = std::min(a.active, b.active);
    r.src = emitOp(arithClass<T>(), Fu::VUnit, Lat::vAlu, a.src, b.src, 0,
                   Vec<T, B>::kBytes, Vec<T, B>::kLanes, r.active);
    return r;
}

} // namespace detail

template <typename T, int B>
inline Vec<Mask<T>, B>
vceq(const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::cmp(a, b, [](T x, T y) { return x == y; });
}
template <typename T, int B>
inline Vec<Mask<T>, B>
vcgt(const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::cmp(a, b, [](T x, T y) { return x > y; });
}
template <typename T, int B>
inline Vec<Mask<T>, B>
vcge(const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::cmp(a, b, [](T x, T y) { return x >= y; });
}
template <typename T, int B>
inline Vec<Mask<T>, B>
vclt(const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::cmp(a, b, [](T x, T y) { return x < y; });
}
template <typename T, int B>
inline Vec<Mask<T>, B>
vcle(const Vec<T, B> &a, const Vec<T, B> &b)
{
    return detail::cmp(a, b, [](T x, T y) { return x <= y; });
}

/**
 * Bitwise select (VBSL): for each bit, take @p a where the mask is 1 and
 * @p b where it is 0. The If-Conversion primitive of Section 5.4.
 */
template <typename T, int B>
inline Vec<T, B>
vbsl(const Vec<Mask<T>, B> &mask, const Vec<T, B> &a, const Vec<T, B> &b)
{
    Vec<T, B> r;
    for (int i = 0; i < Vec<T, B>::kLanes; ++i) {
        Mask<T> m = mask.lane[size_t(i)];
        Mask<T> x = std::bit_cast<Mask<T>>(a.lane[size_t(i)]);
        Mask<T> y = std::bit_cast<Mask<T>>(b.lane[size_t(i)]);
        r.lane[size_t(i)] = std::bit_cast<T>(Mask<T>((x & m) | (y & ~m)));
    }
    r.active = std::min({mask.active, a.active, b.active});
    r.src = emitOp(InstrClass::VInt, Fu::VUnit, Lat::vAlu, mask.src, a.src,
                   b.src, Vec<T, B>::kBytes, Vec<T, B>::kLanes, r.active);
    return r;
}

} // namespace swan::simd

#endif // SWAN_SIMD_VEC_HH
