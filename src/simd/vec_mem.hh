/**
 * @file
 * Emulated Neon vector memory operations: unit-stride loads/stores (VLD1/
 * VST1, with partial-vector forms modelling tail handling) and the
 * de-interleaving / interleaving multi-register accesses VLD2/3/4 and
 * VST2/3/4 (the strided-access pattern of Section 6.3, censused by
 * Table 6).
 */

#ifndef SWAN_SIMD_VEC_MEM_HH
#define SWAN_SIMD_VEC_MEM_HH

#include <array>

#include "simd/vec.hh"

namespace swan::simd
{

/** Unit-stride vector load of a full register from @p p. */
template <int B = 128, typename T>
inline Vec<T, B>
vld1(const T *p)
{
    Vec<T, B> r;
    for (int i = 0; i < Vec<T, B>::kLanes; ++i)
        r.lane[size_t(i)] = p[i];
    r.src = emitMem(InstrClass::VLoad, p, uint32_t(Vec<T, B>::kBytes),
                    Lat::vLoad, 0, 0, Vec<T, B>::kBytes, Vec<T, B>::kLanes,
                    Vec<T, B>::kLanes);
    return r;
}

/**
 * Partial vector load of @p n lanes (remaining lanes zeroed). Models the
 * narrower-register tail handling that drops SIMD utilization when the
 * trip count is not divisible by the lane count (Section 7.1).
 */
template <int B = 128, typename T>
inline Vec<T, B>
vld1_partial(const T *p, int n)
{
    Vec<T, B> r;
    for (int i = 0; i < n; ++i)
        r.lane[size_t(i)] = p[i];
    r.active = uint8_t(n);
    r.src = emitMem(InstrClass::VLoad, p, uint32_t(n * int(sizeof(T))),
                    Lat::vLoad, 0, 0, Vec<T, B>::kBytes, Vec<T, B>::kLanes,
                    n);
    return r;
}

/** Unit-stride vector store of a full register to @p p. */
template <typename T, int B>
inline void
vst1(T *p, const Vec<T, B> &v)
{
    for (int i = 0; i < Vec<T, B>::kLanes; ++i)
        p[i] = v.lane[size_t(i)];
    emitMem(InstrClass::VStore, p, uint32_t(Vec<T, B>::kBytes), Lat::vStore,
            v.src, 0, Vec<T, B>::kBytes, Vec<T, B>::kLanes,
            Vec<T, B>::kLanes);
}

/** Partial vector store of the first @p n lanes. */
template <typename T, int B>
inline void
vst1_partial(T *p, const Vec<T, B> &v, int n)
{
    for (int i = 0; i < n; ++i)
        p[i] = v.lane[size_t(i)];
    emitMem(InstrClass::VStore, p, uint32_t(n * int(sizeof(T))), Lat::vStore,
            v.src, 0, Vec<T, B>::kBytes, Vec<T, B>::kLanes, n);
}

namespace detail
{

template <int N, int B, typename T>
inline std::array<Vec<T, B>, N>
vldN(const T *p, StrideKind sk)
{
    std::array<Vec<T, B>, N> r;
    const T *q = p;
    for (int e = 0; e < Vec<T, B>::kLanes; ++e)
        for (int reg = 0; reg < N; ++reg)
            r[size_t(reg)].lane[size_t(e)] = *q++;
    uint64_t id = emitMem(InstrClass::VLoad, p,
                          uint32_t(N * Vec<T, B>::kBytes), Lat::vLoadN, 0, 0,
                          Vec<T, B>::kBytes, Vec<T, B>::kLanes,
                          Vec<T, B>::kLanes, sk);
    for (auto &v : r)
        v.src = id;
    return r;
}

template <int N, typename T, int B>
inline void
vstN(T *p, const std::array<Vec<T, B>, N> &v, StrideKind sk)
{
    T *q = p;
    for (int e = 0; e < Vec<T, B>::kLanes; ++e)
        for (int reg = 0; reg < N; ++reg)
            *q++ = v[size_t(reg)].lane[size_t(e)];
    emitMem(InstrClass::VStore, p, uint32_t(N * Vec<T, B>::kBytes),
            Lat::vStoreN, v[0].src, v[N - 1].src, Vec<T, B>::kBytes,
            Vec<T, B>::kLanes, Vec<T, B>::kLanes, sk);
}

} // namespace detail

/** De-interleaving stride-2 load (VLD2): r[0]=p[0,2,4..], r[1]=p[1,3,5..] */
template <int B = 128, typename T>
inline std::array<Vec<T, B>, 2>
vld2(const T *p)
{
    return detail::vldN<2, B>(p, StrideKind::Ld2);
}

/** De-interleaving stride-3 load (VLD3), e.g. packed RGB pixels. */
template <int B = 128, typename T>
inline std::array<Vec<T, B>, 3>
vld3(const T *p)
{
    return detail::vldN<3, B>(p, StrideKind::Ld3);
}

/** De-interleaving stride-4 load (VLD4), e.g. packed RGBA pixels. */
template <int B = 128, typename T>
inline std::array<Vec<T, B>, 4>
vld4(const T *p)
{
    return detail::vldN<4, B>(p, StrideKind::Ld4);
}

/** Interleaving stride-2 store (VST2). */
template <typename T, int B>
inline void
vst2(T *p, const std::array<Vec<T, B>, 2> &v)
{
    detail::vstN<2>(p, v, StrideKind::St2);
}

/** Interleaving stride-3 store (VST3). */
template <typename T, int B>
inline void
vst3(T *p, const std::array<Vec<T, B>, 3> &v)
{
    detail::vstN<3>(p, v, StrideKind::St3);
}

/** Interleaving stride-4 store (VST4). */
template <typename T, int B>
inline void
vst4(T *p, const std::array<Vec<T, B>, 4> &v)
{
    detail::vstN<4>(p, v, StrideKind::St4);
}

} // namespace swan::simd

#endif // SWAN_SIMD_VEC_MEM_HH
