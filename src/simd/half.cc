#include "simd/half.hh"

#include <bit>
#include <cmath>

namespace swan::simd
{

float
Half::toFloat() const
{
    const uint32_t sign = uint32_t(bits >> 15) & 1;
    const uint32_t exp = uint32_t(bits >> 10) & 0x1f;
    const uint32_t frac = uint32_t(bits) & 0x3ff;

    uint32_t out;
    if (exp == 0) {
        if (frac == 0) {
            out = sign << 31; // signed zero
        } else {
            // Subnormal: normalize into float.
            int e = -1;
            uint32_t f = frac;
            do {
                ++e;
                f <<= 1;
            } while ((f & 0x400) == 0);
            out = (sign << 31) | uint32_t(127 - 15 - e) << 23 |
                  ((f & 0x3ff) << 13);
        }
    } else if (exp == 0x1f) {
        out = (sign << 31) | 0x7f800000u | (frac << 13); // inf / NaN
    } else {
        out = (sign << 31) | ((exp - 15 + 127) << 23) | (frac << 13);
    }
    return std::bit_cast<float>(out);
}

uint16_t
Half::fromFloat(float f)
{
    const uint32_t in = std::bit_cast<uint32_t>(f);
    const uint32_t sign = (in >> 31) & 1;
    int32_t exp = int32_t((in >> 23) & 0xff) - 127 + 15;
    uint32_t frac = in & 0x7fffff;

    if (((in >> 23) & 0xff) == 0xff) {
        // Inf or NaN; preserve NaN-ness.
        uint16_t payload = frac ? uint16_t(0x200 | (frac >> 13)) : 0;
        return uint16_t((sign << 15) | (0x1f << 10) | payload);
    }
    if (exp >= 0x1f)
        return uint16_t((sign << 15) | (0x1f << 10)); // overflow -> inf
    if (exp <= 0) {
        if (exp < -10)
            return uint16_t(sign << 15); // underflow -> signed zero
        // Subnormal half: shift with round-to-nearest-even.
        frac |= 0x800000;
        const int shift = 14 - exp + 13 - 13; // bits to drop: 13 + (1-exp)
        const int drop = 13 + 1 - exp;
        const uint32_t kept = frac >> drop;
        const uint32_t rem = frac & ((1u << drop) - 1);
        const uint32_t halfway = 1u << (drop - 1);
        uint32_t r = kept;
        if (rem > halfway || (rem == halfway && (kept & 1)))
            ++r;
        (void)shift;
        return uint16_t((sign << 15) | r);
    }
    // Normal: round 23-bit fraction to 10 bits, nearest-even.
    uint32_t r = frac >> 13;
    const uint32_t rem = frac & 0x1fff;
    if (rem > 0x1000 || (rem == 0x1000 && (r & 1)))
        ++r;
    if (r == 0x400) {
        r = 0;
        ++exp;
        if (exp >= 0x1f)
            return uint16_t((sign << 15) | (0x1f << 10));
    }
    return uint16_t((sign << 15) | (uint32_t(exp) << 10) | r);
}

} // namespace swan::simd
