/**
 * @file
 * Emission helpers shared by the scalar instrumentation and the vector
 * emulation: they append instruction records to the thread-local
 * trace::Recorder (if any) and return the new instruction id so values can
 * carry dataflow provenance.
 *
 * Execution latencies follow the Arm Cortex-A76 Software Optimization
 * Guide in spirit (integer ALU 1, multiply 3, FP 3-4, ASIMD 2-4, loads 4
 * cycles L1-hit, across-vector reductions 5).
 */

#ifndef SWAN_SIMD_EMIT_HH
#define SWAN_SIMD_EMIT_HH

#include <cstdint>

#include "trace/instr.hh"
#include "trace/recorder.hh"

namespace swan::simd
{

using trace::Fu;
using trace::Instr;
using trace::InstrClass;
using trace::StrideKind;

/** Latency classes (cycles) used when emitting instructions. */
struct Lat
{
    static constexpr int sAlu = 1;      //!< scalar integer ALU op
    static constexpr int sMul = 3;      //!< scalar integer multiply
    static constexpr int sDiv = 12;     //!< scalar integer divide
    static constexpr int sFp = 3;       //!< scalar FP add/mul
    static constexpr int sFma = 4;      //!< scalar fused multiply-add
    static constexpr int sFdiv = 10;    //!< scalar FP divide
    static constexpr int branch = 1;
    static constexpr int load = 4;      //!< L1-hit load-to-use
    static constexpr int store = 1;
    static constexpr int vAlu = 2;      //!< ASIMD integer add/logic/compare
    static constexpr int vMul = 4;      //!< ASIMD integer multiply / MLA
    static constexpr int vFp = 3;       //!< ASIMD FP add/mul
    static constexpr int vFma = 4;      //!< ASIMD FP fused multiply-add
    /**
     * Accumulating multiply forms (MLA/MLAL/FMLA): the Cortex-A76
     * forwards the accumulator between back-to-back multiply-accumulates
     * (SOG "multiply-accumulate pipeline" forwarding), so a MAC chain
     * sees ~2-cycle effective latency rather than the full multiply
     * latency. Applied as the op latency — the accumulation chain is
     * the overwhelmingly common consumer in the Swan kernels (GEMM,
     * convolution, autocorrelation), and this forwarding is what lets
     * the paper's 8-accumulator GEMM scale with more ASIMD units
     * (Figure 5(b)).
     */
    static constexpr int vMacFwd = 2;
    static constexpr int vFdiv = 10;    //!< ASIMD FP divide (unpipelined)
    static constexpr int vPerm = 2;     //!< permute/duplicate/extract
    static constexpr int vCrypto = 2;   //!< AES/SHA/PMULL
    static constexpr int vAcross = 5;   //!< across-vector reduction
    static constexpr int vLoad = 4;     //!< vector load, L1 hit
    static constexpr int vLoadN = 6;    //!< de-interleaving ld2/ld3/ld4
    static constexpr int vStore = 1;
    static constexpr int vStoreN = 2;   //!< interleaving st2/st3/st4
    static constexpr int laneMove = 4;  //!< vector-lane <-> scalar transfer
    // Future-ISA extension ops (vec_sve.hh); elements additionally crack
    // at two per cycle in the timing model's LSU.
    static constexpr int vGather = 6;   //!< indexed vector load, L1 hit
    static constexpr int vScatter = 2;  //!< indexed vector store
    static constexpr int vStrided = 6;  //!< arbitrary-stride load, L1 hit
    static constexpr int vPred = 1;     //!< predicate-generating ops
    static constexpr int vCmla = 2;     //!< FCMLA/FCADD (Cortex-A710 SOG)
};

/** Append a non-memory instruction; returns its id (0 when not tracing). */
inline uint64_t
emitOp(InstrClass cls, Fu fu, int lat, uint64_t d0 = 0, uint64_t d1 = 0,
       uint64_t d2 = 0, int vec_bytes = 0, int lanes = 0, int active = 0,
       StrideKind stride = StrideKind::None)
{
    auto *rec = trace::currentRecorder();
    if (!rec)
        return 0;
    Instr instr;
    instr.cls = cls;
    instr.fu = fu;
    instr.latency = uint8_t(lat);
    instr.dep0 = d0;
    instr.dep1 = d1;
    instr.dep2 = d2;
    instr.vecBytes = uint8_t(vec_bytes);
    instr.lanes = uint8_t(lanes);
    instr.activeLanes = uint8_t(active);
    instr.stride = stride;
    return rec->emit(instr);
}

/** Append a memory instruction; returns its id (0 when not tracing). */
inline uint64_t
emitMem(InstrClass cls, const void *addr, uint32_t size, int lat,
        uint64_t d0 = 0, uint64_t d1 = 0, int vec_bytes = 0, int lanes = 0,
        int active = 0, StrideKind stride = StrideKind::None)
{
    auto *rec = trace::currentRecorder();
    if (!rec)
        return 0;
    Instr instr;
    instr.cls = cls;
    instr.fu = (cls == InstrClass::SStore || cls == InstrClass::VStore)
                   ? Fu::Store : Fu::Load;
    instr.latency = uint8_t(lat);
    instr.dep0 = d0;
    instr.dep1 = d1;
    instr.addr = reinterpret_cast<uint64_t>(addr);
    instr.size = size;
    instr.vecBytes = uint8_t(vec_bytes);
    instr.lanes = uint8_t(lanes);
    instr.activeLanes = uint8_t(active);
    instr.stride = stride;
    return rec->emit(instr);
}

/** True when tracing is active on this thread. */
inline bool
tracing()
{
    return trace::currentRecorder() != nullptr;
}

} // namespace swan::simd

#endif // SWAN_SIMD_EMIT_HH
