/**
 * @file
 * WebAssembly SIMD128 instruction-set model (the paper's Section 9
 * "Vectorized Mobile Web Applications" future work). The names and
 * semantics follow the WebAssembly SIMD proposal (wasm_simd128.h spelling
 * without the wasm_ prefix), and the set is deliberately *restricted* to
 * what the proposal provides:
 *
 *  - one untyped 128-bit register type (v128) and shaped operations
 *    (i8x16/i16x8/i32x4/f32x4);
 *  - no de-interleaving multi-register loads (Neon VLD2/3/4): structured
 *    data must be loaded unit-stride and rearranged with i8x16_shuffle;
 *  - no across-vector reductions (Neon ADDV/SADDLV): horizontal sums are
 *    composed from shuffles and adds;
 *  - no cryptography instructions (Neon AESE/SHA256H/PMULL);
 *  - no fused multiply-add in the base proposal; the relaxed-simd
 *    extension adds f32x4_relaxed_madd.
 *
 * Cost model: we assume an ideal JIT that maps each wasm operation to one
 * native ASIMD instruction of the matching class — this is how V8 lowers
 * the proposal on AArch64 for all ops modelled here except the boolean
 * extractions (any_true/all_true/bitmask), which V8 lowers to a short
 * across-vector + lane-move sequence; those emit the realistic multi-op
 * sequence (documented per function). Under this assumption the measured
 * WASM-vs-Neon gaps are *lower bounds*: a real engine adds bounds checks
 * and weaker scheduling on top.
 *
 * The Section 9 study (workloads/ext/wasm_study.cc, bench/ext_wasm_simd)
 * ports four representative kernels to this set and quantifies where the
 * missing instructions hurt.
 */

#ifndef SWAN_SIMD_VEC_WASM_HH
#define SWAN_SIMD_VEC_WASM_HH

#include <cstdint>

#include "simd/vec.hh"
#include "simd/vec_mem.hh"
#include "simd/vec_permute.hh"
#include "simd/vec_wide.hh"

namespace swan::simd::wasm
{

/**
 * The single WebAssembly vector type: 128 untyped bits. Shaped operations
 * reinterpret it on use, exactly like wasm_simd128.h's v128_t.
 */
using v128 = Vec<uint8_t, 128>;

namespace detail
{

/** Reinterpret the untyped register with a lane shape (free). */
template <typename T>
inline Vec<T, 128>
as(const v128 &v)
{
    return vreinterpret<T>(v);
}

/** Drop the lane shape back to untyped bits (free). */
template <typename T>
inline v128
bits(const Vec<T, 128> &v)
{
    return vreinterpret<uint8_t>(v);
}

} // namespace detail

// ---------------------------------------------------------------------
// Memory and constants.
// ---------------------------------------------------------------------

/** v128.load: 16 bytes from @p p, any element type. */
template <typename T>
inline v128
v128_load(const T *p)
{
    return detail::bits(vld1<128>(p));
}

/** v128.store: 16 bytes to @p p. */
template <typename T>
inline void
v128_store(T *p, const v128 &v)
{
    vst1(p, detail::as<T>(v));
}

/** i8x16.splat / i16x8.splat / i32x4.splat / f32x4.splat. */
template <typename T>
inline v128
splat(T c)
{
    return detail::bits(vdup<T, 128>(c));
}

/** Splat of an instrumented scalar (register-sourced DUP). */
template <typename T>
inline v128
splat(Sc<T> s)
{
    return detail::bits(vdup<T, 128>(s));
}

/** tXxN.extract_lane (one vector-to-scalar move; costly, Section 6.2). */
template <typename T>
inline Sc<T>
extract_lane(const v128 &v, int i)
{
    return vget_lane(detail::as<T>(v), i);
}

/** tXxN.replace_lane. */
template <typename T>
inline v128
replace_lane(const v128 &v, int i, Sc<T> s)
{
    return detail::bits(vset_lane(detail::as<T>(v), i, s));
}

// ---------------------------------------------------------------------
// Bitwise (shape-free v128 operations).
// ---------------------------------------------------------------------

inline v128
v128_and(const v128 &a, const v128 &b)
{
    return vand(a, b);
}

inline v128
v128_or(const v128 &a, const v128 &b)
{
    return vorr(a, b);
}

inline v128
v128_xor(const v128 &a, const v128 &b)
{
    return veor(a, b);
}

inline v128
v128_not(const v128 &a)
{
    return vmvn(a);
}

/** v128.andnot: a & ~b. */
inline v128
v128_andnot(const v128 &a, const v128 &b)
{
    return vbic(a, b);
}

/** v128.bitselect: bits of @p a where @p mask is 1, else @p b (= BSL). */
inline v128
v128_bitselect(const v128 &a, const v128 &b, const v128 &mask)
{
    return vbsl(mask, a, b);
}

/**
 * v128.any_true. V8's AArch64 lowering is UMAXP/UMAXV plus a lane move,
 * so this emits one across-vector op and one vector-to-scalar move.
 */
inline Sc<uint32_t>
v128_any_true(const v128 &a)
{
    Sc<uint8_t> m = vmaxv(a);
    return {m.v != 0 ? 1u : 0u, m.src};
}

// ---------------------------------------------------------------------
// Integer arithmetic. Shapes mirror the proposal: the _s/_u suffix picks
// the signed/unsigned interpretation where semantics differ.
// ---------------------------------------------------------------------

namespace detail
{

template <typename T>
inline v128
add(const v128 &a, const v128 &b)
{
    return bits(vadd(as<T>(a), as<T>(b)));
}

template <typename T>
inline v128
sub(const v128 &a, const v128 &b)
{
    return bits(vsub(as<T>(a), as<T>(b)));
}

} // namespace detail

inline v128 i8x16_add(const v128 &a, const v128 &b)
{ return detail::add<uint8_t>(a, b); }
inline v128 i16x8_add(const v128 &a, const v128 &b)
{ return detail::add<uint16_t>(a, b); }
inline v128 i32x4_add(const v128 &a, const v128 &b)
{ return detail::add<uint32_t>(a, b); }

inline v128 i8x16_sub(const v128 &a, const v128 &b)
{ return detail::sub<uint8_t>(a, b); }
inline v128 i16x8_sub(const v128 &a, const v128 &b)
{ return detail::sub<uint16_t>(a, b); }
inline v128 i32x4_sub(const v128 &a, const v128 &b)
{ return detail::sub<uint32_t>(a, b); }

/** i16x8.mul / i32x4.mul (low half of the product, like Neon MUL). */
inline v128
i16x8_mul(const v128 &a, const v128 &b)
{
    return detail::bits(vmul(detail::as<uint16_t>(a),
                             detail::as<uint16_t>(b)));
}

inline v128
i32x4_mul(const v128 &a, const v128 &b)
{
    return detail::bits(vmul(detail::as<uint32_t>(a),
                             detail::as<uint32_t>(b)));
}

inline v128
i8x16_add_sat_u(const v128 &a, const v128 &b)
{
    return detail::bits(vqadd(detail::as<uint8_t>(a),
                              detail::as<uint8_t>(b)));
}

inline v128
i8x16_sub_sat_u(const v128 &a, const v128 &b)
{
    return detail::bits(vqsub(detail::as<uint8_t>(a),
                              detail::as<uint8_t>(b)));
}

inline v128
i16x8_add_sat_s(const v128 &a, const v128 &b)
{
    return detail::bits(vqadd(detail::as<int16_t>(a),
                              detail::as<int16_t>(b)));
}

/** i16x8.q15mulr_sat_s (= Neon SQRDMULH). */
inline v128
i16x8_q15mulr_sat_s(const v128 &a, const v128 &b)
{
    return detail::bits(vqrdmulh(detail::as<int16_t>(a),
                                 detail::as<int16_t>(b)));
}

inline v128
i8x16_min_u(const v128 &a, const v128 &b)
{
    return detail::bits(vmin(detail::as<uint8_t>(a),
                             detail::as<uint8_t>(b)));
}

inline v128
i8x16_max_u(const v128 &a, const v128 &b)
{
    return detail::bits(vmax(detail::as<uint8_t>(a),
                             detail::as<uint8_t>(b)));
}

inline v128
i16x8_min_s(const v128 &a, const v128 &b)
{
    return detail::bits(vmin(detail::as<int16_t>(a),
                             detail::as<int16_t>(b)));
}

inline v128
i16x8_max_s(const v128 &a, const v128 &b)
{
    return detail::bits(vmax(detail::as<int16_t>(a),
                             detail::as<int16_t>(b)));
}

inline v128
i32x4_min_s(const v128 &a, const v128 &b)
{
    return detail::bits(vmin(detail::as<int32_t>(a),
                             detail::as<int32_t>(b)));
}

inline v128
i32x4_max_s(const v128 &a, const v128 &b)
{
    return detail::bits(vmax(detail::as<int32_t>(a),
                             detail::as<int32_t>(b)));
}

/** i8x16.avgr_u (rounding average, = Neon URHADD). */
inline v128
i8x16_avgr_u(const v128 &a, const v128 &b)
{
    return detail::bits(vrhadd(detail::as<uint8_t>(a),
                               detail::as<uint8_t>(b)));
}

inline v128
i8x16_neg(const v128 &a)
{
    return detail::bits(vneg(detail::as<int8_t>(a)));
}

inline v128
i16x8_abs(const v128 &a)
{
    return detail::bits(vabs(detail::as<int16_t>(a)));
}

// Shifts (by a scalar amount, like the proposal).

inline v128
i16x8_shl(const v128 &a, int n)
{
    return detail::bits(vshl(detail::as<uint16_t>(a), n));
}

inline v128
i16x8_shr_u(const v128 &a, int n)
{
    return detail::bits(vshr(detail::as<uint16_t>(a), n));
}

inline v128
i16x8_shr_s(const v128 &a, int n)
{
    return detail::bits(vshr(detail::as<int16_t>(a), n));
}

inline v128
i32x4_shl(const v128 &a, int n)
{
    return detail::bits(vshl(detail::as<uint32_t>(a), n));
}

inline v128
i32x4_shr_u(const v128 &a, int n)
{
    return detail::bits(vshr(detail::as<uint32_t>(a), n));
}

inline v128
i32x4_shr_s(const v128 &a, int n)
{
    return detail::bits(vshr(detail::as<int32_t>(a), n));
}

// Comparisons (all-ones / all-zeros lane masks, like Neon).

inline v128
i8x16_eq(const v128 &a, const v128 &b)
{
    return detail::bits(vceq(detail::as<uint8_t>(a),
                             detail::as<uint8_t>(b)));
}

inline v128
i16x8_gt_s(const v128 &a, const v128 &b)
{
    return detail::bits(vcgt(detail::as<int16_t>(a),
                             detail::as<int16_t>(b)));
}

inline v128
i32x4_gt_s(const v128 &a, const v128 &b)
{
    return detail::bits(vcgt(detail::as<int32_t>(a),
                             detail::as<int32_t>(b)));
}

// ---------------------------------------------------------------------
// Widening / narrowing / pairwise (the proposal's extmul, extadd_pairwise,
// extend and narrow families — wasm has these, but *not* Neon's fused
// widening multiply-accumulate VMLAL or fused shift-narrow VSHRN).
// ---------------------------------------------------------------------

inline v128
i16x8_extend_low_u8x16(const v128 &a)
{
    return detail::bits(vmovl_lo(detail::as<uint8_t>(a)));
}

inline v128
i16x8_extend_high_u8x16(const v128 &a)
{
    return detail::bits(vmovl_hi(detail::as<uint8_t>(a)));
}

inline v128
i32x4_extend_low_u16x8(const v128 &a)
{
    return detail::bits(vmovl_lo(detail::as<uint16_t>(a)));
}

inline v128
i32x4_extend_high_u16x8(const v128 &a)
{
    return detail::bits(vmovl_hi(detail::as<uint16_t>(a)));
}

inline v128
i16x8_extmul_low_u8x16(const v128 &a, const v128 &b)
{
    return detail::bits(vmull_lo(detail::as<uint8_t>(a),
                                 detail::as<uint8_t>(b)));
}

inline v128
i16x8_extmul_high_u8x16(const v128 &a, const v128 &b)
{
    return detail::bits(vmull_hi(detail::as<uint8_t>(a),
                                 detail::as<uint8_t>(b)));
}

inline v128
i32x4_extmul_low_u16x8(const v128 &a, const v128 &b)
{
    return detail::bits(vmull_lo(detail::as<uint16_t>(a),
                                 detail::as<uint16_t>(b)));
}

inline v128
i32x4_extmul_high_u16x8(const v128 &a, const v128 &b)
{
    return detail::bits(vmull_hi(detail::as<uint16_t>(a),
                                 detail::as<uint16_t>(b)));
}

inline v128
i16x8_extadd_pairwise_u8x16(const v128 &a)
{
    return detail::bits(vpaddl(detail::as<uint8_t>(a)));
}

inline v128
i32x4_extadd_pairwise_u16x8(const v128 &a)
{
    return detail::bits(vpaddl(detail::as<uint16_t>(a)));
}

/**
 * i32x4.dot_i16x8_s: r[i] = a[2i]*b[2i] + a[2i+1]*b[2i+1] with signed
 * 16-bit inputs (= Neon SDOT-adjacent; one multiply-class instruction).
 */
inline v128
i32x4_dot_i16x8_s(const v128 &a, const v128 &b)
{
    const auto sa = detail::as<int16_t>(a);
    const auto sb = detail::as<int16_t>(b);
    Vec<int32_t, 128> r;
    for (int i = 0; i < 4; ++i) {
        const int32_t p0 = int32_t(sa.lane[size_t(2 * i)]) *
                           int32_t(sb.lane[size_t(2 * i)]);
        const int32_t p1 = int32_t(sa.lane[size_t(2 * i + 1)]) *
                           int32_t(sb.lane[size_t(2 * i + 1)]);
        r.lane[size_t(i)] = p0 + p1;
    }
    r.active = 4;
    r.src = emitOp(InstrClass::VInt, Fu::VUnit, Lat::vMul, a.src, b.src, 0,
                   16, 4, 4);
    return detail::bits(r);
}

/** i8x16.narrow_i16x8_u: saturate signed 16-bit lanes into [0,255]. */
inline v128
i8x16_narrow_i16x8_u(const v128 &lo, const v128 &hi)
{
    return detail::bits(vqmovun(detail::as<int16_t>(lo),
                                detail::as<int16_t>(hi)));
}

/** i16x8.narrow_i32x4_s: saturate signed 32-bit lanes into i16. */
inline v128
i16x8_narrow_i32x4_s(const v128 &lo, const v128 &hi)
{
    return detail::bits(vqmovn(detail::as<int32_t>(lo),
                               detail::as<int32_t>(hi)));
}

// ---------------------------------------------------------------------
// Floating point (f32x4).
// ---------------------------------------------------------------------

inline v128
f32x4_add(const v128 &a, const v128 &b)
{
    return detail::bits(vadd(detail::as<float>(a), detail::as<float>(b)));
}

inline v128
f32x4_sub(const v128 &a, const v128 &b)
{
    return detail::bits(vsub(detail::as<float>(a), detail::as<float>(b)));
}

inline v128
f32x4_mul(const v128 &a, const v128 &b)
{
    return detail::bits(vmul(detail::as<float>(a), detail::as<float>(b)));
}

inline v128
f32x4_div(const v128 &a, const v128 &b)
{
    return detail::bits(vdiv(detail::as<float>(a), detail::as<float>(b)));
}

inline v128
f32x4_min(const v128 &a, const v128 &b)
{
    return detail::bits(vmin(detail::as<float>(a), detail::as<float>(b)));
}

inline v128
f32x4_max(const v128 &a, const v128 &b)
{
    return detail::bits(vmax(detail::as<float>(a), detail::as<float>(b)));
}

inline v128
f32x4_abs(const v128 &a)
{
    return detail::bits(vabs(detail::as<float>(a)));
}

inline v128
f32x4_neg(const v128 &a)
{
    return detail::bits(vneg(detail::as<float>(a)));
}

inline v128
f32x4_gt(const v128 &a, const v128 &b)
{
    return detail::bits(vcgt(detail::as<float>(a), detail::as<float>(b)));
}

/** f32x4.convert_i32x4_s (int-to-float, FP pipe). */
inline v128
f32x4_convert_i32x4_s(const v128 &a)
{
    const auto sa = detail::as<int32_t>(a);
    Vec<float, 128> r;
    for (int i = 0; i < 4; ++i)
        r.lane[size_t(i)] = float(sa.lane[size_t(i)]);
    r.active = 4;
    r.src = emitOp(InstrClass::VFloat, Fu::VUnit, Lat::vFp, a.src, 0, 0,
                   16, 4, 4);
    return detail::bits(r);
}

/** i32x4.trunc_sat_f32x4_s (float-to-int with saturation, FP pipe). */
inline v128
i32x4_trunc_sat_f32x4_s(const v128 &a)
{
    const auto fa = detail::as<float>(a);
    Vec<int32_t, 128> r;
    for (int i = 0; i < 4; ++i) {
        const float x = fa.lane[size_t(i)];
        if (x != x)
            r.lane[size_t(i)] = 0; // NaN -> 0 per the proposal
        else if (x >= 2147483648.0f)
            r.lane[size_t(i)] = INT32_MAX;
        else if (x < -2147483648.0f)
            r.lane[size_t(i)] = INT32_MIN;
        else
            r.lane[size_t(i)] = int32_t(x);
    }
    r.active = 4;
    r.src = emitOp(InstrClass::VFloat, Fu::VUnit, Lat::vFp, a.src, 0, 0,
                   16, 4, 4);
    return detail::bits(r);
}

// ---------------------------------------------------------------------
// Relaxed-simd extension.
// ---------------------------------------------------------------------

/**
 * f32x4.relaxed_madd: a*b + c as one fused op. Only the relaxed-simd
 * extension provides this; the base proposal forces separate mul + add
 * (the Section 6.5 "portable API" instruction-budget problem, recreated
 * at the wasm layer).
 */
inline v128
f32x4_relaxed_madd(const v128 &a, const v128 &b, const v128 &c)
{
    return detail::bits(vmla(detail::as<float>(c), detail::as<float>(a),
                             detail::as<float>(b)));
}

/** f32x4.relaxed_nmadd: c - a*b. */
inline v128
f32x4_relaxed_nmadd(const v128 &a, const v128 &b, const v128 &c)
{
    return detail::bits(vmls(detail::as<float>(c), detail::as<float>(a),
                             detail::as<float>(b)));
}

// ---------------------------------------------------------------------
// Shuffles — the only data-rearrangement tools the proposal has. No
// VLD2/3/4, no ZIP/UZP/TRN: everything is built from these two.
// ---------------------------------------------------------------------

/**
 * i8x16.swizzle: runtime byte selection from one register; out-of-range
 * indices yield zero (exactly Neon TBL1).
 */
inline v128
i8x16_swizzle(const v128 &a, const v128 &idx)
{
    return vqtbl1<128>(a, idx);
}

/**
 * i8x16.shuffle: compile-time byte selection from the 32-byte
 * concatenation a:b (indices 0-15 pick from @p a, 16-31 from @p b).
 * Lowers to TBL2 with a constant index vector on AArch64; modelled as
 * one permute instruction (the constant is hoisted out of loops).
 */
template <int... kIdx>
inline v128
i8x16_shuffle(const v128 &a, const v128 &b)
{
    static_assert(sizeof...(kIdx) == 16, "i8x16.shuffle takes 16 indices");
    constexpr int kIndices[16] = {kIdx...};
    v128 r;
    for (int i = 0; i < 16; ++i) {
        const int j = kIndices[i];
        static_assert(((kIdx >= 0 && kIdx < 32) && ...),
                      "shuffle indices must be in [0, 32)");
        r.lane[size_t(i)] = j < 16 ? a.lane[size_t(j)]
                                   : b.lane[size_t(j - 16)];
    }
    r.active = 16;
    r.src = emitOp(InstrClass::VMisc, Fu::VUnit, Lat::vPerm, a.src, b.src,
                   0, 16, 16, 16);
    return r;
}

// ---------------------------------------------------------------------
// Horizontal helpers the proposal does NOT have as instructions; they
// compose shuffles and adds through the public API, so their full cost
// appears in the trace. Provided as conveniences for ports.
// ---------------------------------------------------------------------

/**
 * Sum the four u32 lanes to a scalar: two shuffle+add folding steps plus
 * one lane extraction — five instructions where Neon ADDV needs one
 * (plus the implicit transfer).
 */
inline Sc<uint32_t>
hsum_u32x4(const v128 &v)
{
    // Fold the upper 64 bits onto the lower.
    v128 t = i8x16_shuffle<8, 9, 10, 11, 12, 13, 14, 15,
                           8, 9, 10, 11, 12, 13, 14, 15>(v, v);
    v128 s = i32x4_add(v, t);
    // Fold lane 1 onto lane 0.
    t = i8x16_shuffle<4, 5, 6, 7, 4, 5, 6, 7,
                      12, 13, 14, 15, 12, 13, 14, 15>(s, s);
    s = i32x4_add(s, t);
    return extract_lane<uint32_t>(s, 0);
}

/** Sum the four f32 lanes to a scalar (same folding shape). */
inline Sc<float>
hsum_f32x4(const v128 &v)
{
    v128 t = i8x16_shuffle<8, 9, 10, 11, 12, 13, 14, 15,
                           8, 9, 10, 11, 12, 13, 14, 15>(v, v);
    v128 s = f32x4_add(v, t);
    t = i8x16_shuffle<4, 5, 6, 7, 4, 5, 6, 7,
                      12, 13, 14, 15, 12, 13, 14, 15>(s, s);
    s = f32x4_add(s, t);
    return extract_lane<float>(s, 0);
}

} // namespace swan::simd::wasm

#endif // SWAN_SIMD_VEC_WASM_HH
