/**
 * @file
 * IEEE 754 binary16 value type used to emulate the Arm FP16 extension
 * (the XP GEMM/SpMM FP16 kernels). Arithmetic is performed in float and
 * rounded back per operation, which matches hardware FP16 semantics up to
 * double rounding (documented in DESIGN.md limitations).
 */

#ifndef SWAN_SIMD_HALF_HH
#define SWAN_SIMD_HALF_HH

#include <cstdint>

namespace swan::simd
{

/** IEEE binary16 storage type with float-mediated arithmetic. */
struct Half
{
    uint16_t bits = 0;

    Half() = default;
    explicit Half(float f) : bits(fromFloat(f)) {}

    /** Convert to float (exact). */
    float toFloat() const;
    operator float() const { return toFloat(); }

    /** Round-to-nearest-even conversion from float. */
    static uint16_t fromFloat(float f);

    friend Half operator+(Half a, Half b) { return Half(float(a)+float(b)); }
    friend Half operator-(Half a, Half b) { return Half(float(a)-float(b)); }
    friend Half operator*(Half a, Half b) { return Half(float(a)*float(b)); }
    friend Half operator/(Half a, Half b) { return Half(float(a)/float(b)); }
    friend Half operator-(Half a) { return Half(-float(a)); }
    friend bool operator==(Half a, Half b) { return float(a) == float(b); }
    friend bool operator!=(Half a, Half b) { return float(a) != float(b); }
    friend bool operator<(Half a, Half b) { return float(a) < float(b); }
    friend bool operator<=(Half a, Half b) { return float(a) <= float(b); }
    friend bool operator>(Half a, Half b) { return float(a) > float(b); }
    friend bool operator>=(Half a, Half b) { return float(a) >= float(b); }
};

static_assert(sizeof(Half) == 2, "Half must be 2 bytes");

} // namespace swan::simd

#endif // SWAN_SIMD_HALF_HH
