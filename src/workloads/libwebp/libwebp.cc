/**
 * @file
 * libwebp workloads (symbol LW, Image Processing). WebP intra prediction
 * filters for (de)compression — DC, TrueMotion (one of the eight Figure-5
 * wider-register kernels: its 16-byte block rows do not fill wider
 * registers, so packing overhead eats the gains), Vertical and Horizontal
 * — plus the Sharp-YUV update filter and 4:2:0 chroma upsampling
 * (Section 3.2).
 *
 * Predictors run per 16x16 block over many blocks; block pixel rows are
 * contiguous so the working set and access patterns match libwebp's.
 */

#include "workloads/common.hh"

namespace swan::workloads::libwebp
{

using namespace swan::simd;
using core::Domain;
using core::Options;
using core::Pattern;
using core::Workload;

constexpr int kBlock = 16;

namespace
{

/** Shared state: per-block top rows (with corner) and left columns. */
class PredictorKernel : public Workload
{
  public:
    PredictorKernel(const Options &opts, uint64_t salt)
        : blocks_((opts.imageWidth / kBlock) * (opts.imageHeight / kBlock))
    {
        Rng rng(opts.seed ^ salt);
        // top_ has kBlock+2 entries per block: [corner, t0..t15, t16].
        top_ = randomInts<uint8_t>(rng, size_t(blocks_) * (kBlock + 2));
        left_ = randomInts<uint8_t>(rng, size_t(blocks_) * (kBlock + 1));
        outScalar_.assign(size_t(blocks_) * kBlock * kBlock, 0);
        outNeon_.assign(outScalar_.size(), 1);
    }

    bool verify() override { return outScalar_ == outNeon_; }

  protected:
    const uint8_t *topOf(int b) const
    {
        return &top_[size_t(b) * (kBlock + 2) + 1];
    }
    uint8_t corner(int b) const
    {
        return top_[size_t(b) * (kBlock + 2)];
    }
    const uint8_t *leftOf(int b) const
    {
        return &left_[size_t(b) * (kBlock + 1) + 1];
    }
    uint8_t *blockOut(std::vector<uint8_t> &buf, int b)
    {
        return &buf[size_t(b) * kBlock * kBlock];
    }

    int blocks_;
    std::vector<uint8_t> top_, left_, outScalar_, outNeon_;
};

} // namespace

// ---------------------------------------------------------------------
// predict_dc: fill the block with (sum(top) + sum(left) + 16) >> 5
// ---------------------------------------------------------------------

class PredictDc : public PredictorKernel
{
  public:
    explicit PredictDc(const Options &opts) : PredictorKernel(opts, 0x3b01)
    {
    }

    void
    runScalar() override
    {
        for (int b = 0; b < blocks_; ++b) {
            Sc<uint32_t> sum(16u);
            for (int i = 0; i < kBlock; ++i) {
                sum += sload(topOf(b) + i).to<uint32_t>();
                sum += sload(leftOf(b) + i).to<uint32_t>();
                ctl::loop();
            }
            Sc<uint8_t> dc = (sum >> 5).to<uint8_t>();
            uint8_t *out = blockOut(outScalar_, b);
            for (int i = 0; i < kBlock * kBlock; ++i) {
                sstore(out + i, dc);
                ctl::loop();
            }
        }
    }

    void
    runNeon(int) override
    {
        for (int b = 0; b < blocks_; ++b) {
            auto t = vld1<128>(topOf(b));
            auto l = vld1<128>(leftOf(b));
            Sc<uint16_t> st = vaddlv(t);
            Sc<uint16_t> sl = vaddlv(l);
            Sc<uint16_t> dc16 = (st + sl + Sc<uint16_t>(uint16_t(16)))
                >> 5;
            auto fill = vdup<uint8_t, 128>(dc16.to<uint8_t>());
            uint8_t *out = blockOut(outNeon_, b);
            for (int y = 0; y < kBlock; ++y) {
                vst1(out + y * kBlock, fill);
                ctl::loop();
            }
        }
    }

  private:
};

// ---------------------------------------------------------------------
// predict_tm (TrueMotion): out[y][x] = clip(left[y] + top[x] - corner)
// ---------------------------------------------------------------------

class PredictTm : public PredictorKernel
{
  public:
    explicit PredictTm(const Options &opts) : PredictorKernel(opts, 0x3b02)
    {
    }

    void
    runScalar() override
    {
        for (int b = 0; b < blocks_; ++b) {
            Sc<int32_t> tl = Sc<int32_t>(int32_t(corner(b)));
            uint8_t *out = blockOut(outScalar_, b);
            for (int y = 0; y < kBlock; ++y) {
                Sc<int32_t> l = sload(leftOf(b) + y).to<int32_t>();
                Sc<int32_t> base = l - tl;
                for (int x = 0; x < kBlock; ++x) {
                    Sc<int32_t> v = base +
                                    sload(topOf(b) + x).to<int32_t>();
                    v = smax(v, Sc<int32_t>(0));
                    v = smin(v, Sc<int32_t>(255));
                    sstore(out + y * kBlock + x, v.to<uint8_t>());
                    ctl::loop();
                }
                ctl::loop();
            }
        }
    }

    void
    runNeon(int vec_bits) override
    {
        switch (vec_bits) {
          case 256: neonImpl<256>(); break;
          case 512: neonImpl<512>(); break;
          case 1024: neonImpl<1024>(); break;
          default: neonImpl<128>(); break;
        }
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    /** Widen a 128-bit register to B bits by replication (packing). */
    template <int B>
    static Vec<uint8_t, B>
    replicate(const Vec<uint8_t, 128> &v)
    {
        if constexpr (B == 128) {
            return v;
        } else {
            auto half = replicate<B / 2>(v);
            return vcombine(half, half);
        }
    }

    template <int B>
    void
    neonImpl()
    {
        constexpr int kRowsPerVec = B / 128;
        for (int b = 0; b < blocks_; ++b) {
            auto t128 = vld1<128>(topOf(b));
            auto t = replicate<B>(t128);
            const auto tl = vdup<int16_t, B>(int16_t(corner(b)));
            // top - corner, widened to s16.
            auto w_lo = vsub(vreinterpret<int16_t>(vmovl_lo(t)), tl);
            auto w_hi = vsub(vreinterpret<int16_t>(vmovl_hi(t)), tl);
            uint8_t *out = blockOut(outNeon_, b);
            for (int y = 0; y < kBlock; y += kRowsPerVec) {
                // Pack per-row left values: one DUP per row plus a
                // combine tree (the Section 7.1 packing overhead).
                auto lv = packLeft<B>(b, y);
                auto s_lo = vadd(w_lo,
                                 vreinterpret<int16_t>(vmovl_lo(lv)));
                auto s_hi = vadd(w_hi,
                                 vreinterpret<int16_t>(vmovl_hi(lv)));
                vst1(out + y * kBlock, vqmovun(s_lo, s_hi));
                ctl::loop();
            }
        }
    }

    template <int B>
    Vec<uint8_t, B>
    packLeft(int b, int y)
    {
        if constexpr (B == 128) {
            Sc<uint8_t> l = sload(leftOf(b) + y);
            return vdup<uint8_t, 128>(l);
        } else {
            auto lo = packLeft<B / 2>(b, y);
            auto hi = packLeft<B / 2>(b, y + (B / 256));
            return vcombine(lo, hi);
        }
    }

    std::vector<uint8_t> dummy_;
};

// ---------------------------------------------------------------------
// predict_vertical: every row = avg3-smoothed top row
// ---------------------------------------------------------------------

class PredictVertical : public PredictorKernel
{
  public:
    explicit PredictVertical(const Options &opts)
        : PredictorKernel(opts, 0x3b03)
    {
        outAuto_.assign(outScalar_.size(), 2);
    }

    void
    runScalar() override
    {
        for (int b = 0; b < blocks_; ++b) {
            uint8_t *out = blockOut(outScalar_, b);
            // avg3(t[-1], t[x], t[x+1]) with rounding.
            for (int x = 0; x < kBlock; ++x) {
                Sc<uint32_t> a =
                    sload(topOf(b) + x - 1).to<uint32_t>();
                Sc<uint32_t> c = sload(topOf(b) + x).to<uint32_t>();
                Sc<uint32_t> d =
                    sload(topOf(b) + x + 1).to<uint32_t>();
                Sc<uint32_t> v = (a + c + c + d + Sc<uint32_t>(2u)) >> 2;
                sstore(out + x, v.to<uint8_t>());
                ctl::loop();
            }
            for (int y = 1; y < kBlock; ++y) {
                for (int x = 0; x < kBlock; ++x) {
                    sstore(out + y * kBlock + x, sload(out + x));
                    ctl::loop();
                }
            }
        }
    }

    void runNeon(int) override { vecBody(outNeon_); }
    void runAuto() override { vecBody(outAuto_); } // vectorizes (~= Neon)

  private:
    void
    vecBody(std::vector<uint8_t> &buf)
    {
        const auto c2 = vdup<uint16_t, 128>(uint16_t(2));
        for (int b = 0; b < blocks_; ++b) {
            uint8_t *out = blockOut(buf, b);
            auto a = vld1<128>(topOf(b) - 1);
            auto c = vld1<128>(topOf(b));
            auto d = vld1<128>(topOf(b) + 1);
            auto lo = vadd(vaddl_lo(a, d), vadd(vshll_lo(c, 1), c2));
            auto hi = vadd(vaddl_hi(a, d), vadd(vshll_hi(c, 1), c2));
            auto row = vshrn(lo, hi, 2);
            for (int y = 0; y < kBlock; ++y) {
                vst1(out + y * kBlock, row);
                ctl::loop();
            }
        }
    }

    std::vector<uint8_t> outAuto_;
};

// ---------------------------------------------------------------------
// predict_horizontal: row y filled with avg3(left[y-1],left[y],left[y+1])
// ---------------------------------------------------------------------

class PredictHorizontal : public PredictorKernel
{
  public:
    explicit PredictHorizontal(const Options &opts)
        : PredictorKernel(opts, 0x3b04)
    {
    }

    void
    runScalar() override
    {
        for (int b = 0; b < blocks_; ++b) {
            uint8_t *out = blockOut(outScalar_, b);
            for (int y = 0; y < kBlock; ++y) {
                Sc<uint32_t> a =
                    sload(leftOf(b) + y - 1).to<uint32_t>();
                Sc<uint32_t> c = sload(leftOf(b) + y).to<uint32_t>();
                Sc<uint32_t> d = y + 1 < kBlock
                    ? sload(leftOf(b) + y + 1).to<uint32_t>()
                    : sload(leftOf(b) + y).to<uint32_t>();
                Sc<uint8_t> v =
                    ((a + c + c + d + Sc<uint32_t>(2u)) >> 2)
                        .to<uint8_t>();
                for (int x = 0; x < kBlock; ++x) {
                    sstore(out + y * kBlock + x, v);
                    ctl::loop();
                }
            }
        }
    }

    void
    runNeon(int) override
    {
        for (int b = 0; b < blocks_; ++b) {
            uint8_t *out = blockOut(outNeon_, b);
            for (int y = 0; y < kBlock; ++y) {
                Sc<uint32_t> a =
                    sload(leftOf(b) + y - 1).to<uint32_t>();
                Sc<uint32_t> c = sload(leftOf(b) + y).to<uint32_t>();
                Sc<uint32_t> d = y + 1 < kBlock
                    ? sload(leftOf(b) + y + 1).to<uint32_t>()
                    : sload(leftOf(b) + y).to<uint32_t>();
                Sc<uint8_t> v =
                    ((a + c + c + d + Sc<uint32_t>(2u)) >> 2)
                        .to<uint8_t>();
                vst1(out + y * kBlock, vdup<uint8_t, 128>(v));
                ctl::loop();
            }
        }
    }

  private:
};

// ---------------------------------------------------------------------
// sharp_yuv_update: out = clip(ref + (src - filtered), 0, 1023) on 10-bit
// ---------------------------------------------------------------------

class SharpYuvUpdate : public Workload
{
  public:
    explicit SharpYuvUpdate(const Options &opts)
        : n_(opts.imageWidth * opts.imageHeight)
    {
        Rng rng(opts.seed ^ 0x3b05);
        ref_.resize(size_t(n_));
        src_.resize(size_t(n_));
        filt_.resize(size_t(n_));
        for (int i = 0; i < n_; ++i) {
            ref_[size_t(i)] = uint16_t(rng.range(0, 1023));
            src_[size_t(i)] = uint16_t(rng.range(0, 1023));
            filt_[size_t(i)] = uint16_t(rng.range(0, 1023));
        }
        outScalar_.assign(size_t(n_), 0);
        outNeon_.assign(size_t(n_), 1);
    }

    void
    runScalar() override
    {
        for (int i = 0; i < n_; ++i) {
            Sc<int32_t> r = sload(&ref_[size_t(i)]).to<int32_t>();
            Sc<int32_t> s = sload(&src_[size_t(i)]).to<int32_t>();
            Sc<int32_t> f = sload(&filt_[size_t(i)]).to<int32_t>();
            Sc<int32_t> v = r + s - f;
            v = smax(v, Sc<int32_t>(0));
            v = smin(v, Sc<int32_t>(1023));
            sstore(&outScalar_[size_t(i)], v.to<uint16_t>());
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        const auto zero = vdup<int16_t, 128>(int16_t(0));
        const auto maxv = vdup<int16_t, 128>(int16_t(1023));
        int i = 0;
        for (; i + 8 <= n_; i += 8) {
            auto r = vreinterpret<int16_t>(vld1<128>(&ref_[size_t(i)]));
            auto s = vreinterpret<int16_t>(vld1<128>(&src_[size_t(i)]));
            auto f = vreinterpret<int16_t>(vld1<128>(&filt_[size_t(i)]));
            auto v = vqsub(vqadd(r, s), f);
            v = vmin(vmax(v, zero), maxv);
            vst1(&outNeon_[size_t(i)], vreinterpret<uint16_t>(v));
            ctl::loop();
        }
        for (; i < n_; ++i) {
            Sc<int32_t> r = sload(&ref_[size_t(i)]).to<int32_t>();
            Sc<int32_t> s = sload(&src_[size_t(i)]).to<int32_t>();
            Sc<int32_t> f = sload(&filt_[size_t(i)]).to<int32_t>();
            Sc<int32_t> v = r + s - f;
            v = smax(v, Sc<int32_t>(0));
            v = smin(v, Sc<int32_t>(1023));
            sstore(&outNeon_[size_t(i)], v.to<uint16_t>());
            ctl::loop();
        }
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    int n_;
    std::vector<uint16_t> ref_, src_, filt_, outScalar_, outNeon_;
};

// ---------------------------------------------------------------------
// upsample_yuv444: out[2x] = (3*cur + prev + 2) >> 2 horizontal chroma
// pair upsampling (one output row of the 4:2:0 -> 4:4:4 fancy upsampler)
// ---------------------------------------------------------------------

class UpsampleYuv444 : public Workload
{
  public:
    explicit UpsampleYuv444(const Options &opts)
        : n_(opts.imageWidth * opts.imageHeight / 2)
    {
        Rng rng(opts.seed ^ 0x3b06);
        src_ = randomInts<uint8_t>(rng, size_t(n_) + 2);
        // Shared zero fill: edge pixels are replicated by callers.
        outScalar_.assign(size_t(n_) * 2, 0);
        outNeon_.assign(size_t(n_) * 2, 0);
        outAuto_.assign(size_t(n_) * 2, 0);
    }

    void
    runScalar() override
    {
        for (int x = 1; x + 1 < n_; ++x) {
            Sc<uint32_t> s = sload(&src_[size_t(x)]).to<uint32_t>();
            Sc<uint32_t> sm = sload(&src_[size_t(x - 1)]).to<uint32_t>();
            Sc<uint32_t> sp = sload(&src_[size_t(x + 1)]).to<uint32_t>();
            Sc<uint32_t> t = s * Sc<uint32_t>(3u);
            sstore(&outScalar_[size_t(2 * x)],
                   ((t + sm + Sc<uint32_t>(2u)) >> 2).to<uint8_t>());
            sstore(&outScalar_[size_t(2 * x + 1)],
                   ((t + sp + Sc<uint32_t>(1u)) >> 2).to<uint8_t>());
            ctl::loop();
        }
    }

    void runNeon(int) override { vecBody(outNeon_); }
    void
    runAuto() override
    {
        // Vectorizes; emits separate even/odd stores with ZIPs instead
        // of ST2 plus a re-load of the shifted vector (Auto < Neon).
        const auto three = vdup<uint16_t, 128>(uint16_t(3));
        const auto c1 = vdup<uint16_t, 128>(uint16_t(1));
        const auto c2 = vdup<uint16_t, 128>(uint16_t(2));
        int x = 1;
        for (; x + 17 <= n_; x += 16) {
            auto s = vld1<128>(&src_[size_t(x)]);
            auto sm = vld1<128>(&src_[size_t(x - 1)]);
            auto sp = vld1<128>(&src_[size_t(x + 1)]);
            auto t_lo = vmul(vmovl_lo(s), three);
            auto t_hi = vmul(vmovl_hi(s), three);
            auto e_lo = vshr(vadd(vaddw_lo(t_lo, sm), c2), 2);
            auto e_hi = vshr(vadd(vaddw_hi(t_hi, sm), c2), 2);
            auto o_lo = vshr(vadd(vaddw_lo(t_lo, sp), c1), 2);
            auto o_hi = vshr(vadd(vaddw_hi(t_hi, sp), c1), 2);
            auto evens = vmovn(e_lo, e_hi);
            auto odds = vmovn(o_lo, o_hi);
            vst1(&outAuto_[size_t(2 * x)], vzip1(evens, odds));
            vst1(&outAuto_[size_t(2 * x) + 16], vzip2(evens, odds));
            // Compiler re-checks the runtime trip bound per block.
            ctl::addr(2);
            ctl::loop();
        }
        for (; x + 1 < n_; ++x)
            scalarTail(x, outAuto_);
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    void
    vecBody(std::vector<uint8_t> &buf)
    {
        const auto three = vdup<uint16_t, 128>(uint16_t(3));
        const auto c1 = vdup<uint16_t, 128>(uint16_t(1));
        const auto c2 = vdup<uint16_t, 128>(uint16_t(2));
        int x = 1;
        for (; x + 17 <= n_; x += 16) {
            auto s = vld1<128>(&src_[size_t(x)]);
            auto sm = vld1<128>(&src_[size_t(x - 1)]);
            auto sp = vld1<128>(&src_[size_t(x + 1)]);
            auto t_lo = vmul(vmovl_lo(s), three);
            auto t_hi = vmul(vmovl_hi(s), three);
            auto e_lo = vshr(vadd(vaddw_lo(t_lo, sm), c2), 2);
            auto e_hi = vshr(vadd(vaddw_hi(t_hi, sm), c2), 2);
            auto o_lo = vshr(vadd(vaddw_lo(t_lo, sp), c1), 2);
            auto o_hi = vshr(vadd(vaddw_hi(t_hi, sp), c1), 2);
            auto evens = vmovn(e_lo, e_hi);
            auto odds = vmovn(o_lo, o_hi);
            vst2(&buf[size_t(2 * x)],
                 std::array<Vec<uint8_t, 128>, 2>{evens, odds});
            ctl::loop();
        }
        for (; x + 1 < n_; ++x)
            scalarTail(x, buf);
    }

    void
    scalarTail(int x, std::vector<uint8_t> &buf)
    {
        Sc<uint32_t> s = sload(&src_[size_t(x)]).to<uint32_t>();
        Sc<uint32_t> sm = sload(&src_[size_t(x - 1)]).to<uint32_t>();
        Sc<uint32_t> sp = sload(&src_[size_t(x + 1)]).to<uint32_t>();
        Sc<uint32_t> t = s * Sc<uint32_t>(3u);
        sstore(&buf[size_t(2 * x)],
               ((t + sm + Sc<uint32_t>(2u)) >> 2).to<uint8_t>());
        sstore(&buf[size_t(2 * x + 1)],
               ((t + sp + Sc<uint32_t>(1u)) >> 2).to<uint8_t>());
        ctl::loop();
    }

    int n_;
    std::vector<uint8_t> src_, outScalar_, outNeon_, outAuto_;
};

// ---------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------

SWAN_REGISTER_LIBRARY((core::LibraryUsage{
    "libwebp", "LW", Domain::ImageProcessing,
    true, false, false, true, 7.3, 1.7}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libwebp", "LW", "predict_dc",
                     Domain::ImageProcessing,
                     uint32_t(Pattern::Reduction),
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::CostModel)},
                     false, 0},
    [](const Options &o) { return std::make_unique<PredictDc>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libwebp", "LW", "predict_tm",
                     Domain::ImageProcessing, 0,
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::CostModel)},
                     /*widerWidths=*/true, 0},
    [](const Options &o) { return std::make_unique<PredictTm>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libwebp", "LW", "predict_vertical",
                     Domain::ImageProcessing, 0,
                     autovec::Verdict{true, 0}, false, 0},
    [](const Options &o) {
        return std::make_unique<PredictVertical>(o);
    }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libwebp", "LW", "predict_horizontal",
                     Domain::ImageProcessing, 0,
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::CostModel)},
                     false, 0},
    [](const Options &o) {
        return std::make_unique<PredictHorizontal>(o);
    }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libwebp", "LW", "sharp_yuv_update",
                     Domain::ImageProcessing, 0,
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::OtherLegality)},
                     false, 0},
    [](const Options &o) {
        return std::make_unique<SharpYuvUpdate>(o);
    }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libwebp", "LW", "upsample_yuv444",
                     Domain::ImageProcessing,
                     uint32_t(Pattern::StridedAccess),
                     autovec::Verdict{true, 0}, false, 0},
    [](const Options &o) {
        return std::make_unique<UpsampleYuv444>(o);
    }}));

} // namespace swan::workloads::libwebp
