/**
 * @file
 * libjpeg-turbo workloads (symbol LJ; the paper's figures label this
 * library LT). JPEG (de)compression hot spots: RGB <-> YCbCr color-space
 * conversion (RGB-to-YCbCr is one of the eight Figure-5 wider-register
 * kernels; 99% SIMD lane utilization), 2x2 chroma downsampling (the
 * Section 5.2 Example 3 kernel: the alternating rounding bias is a
 * loop-carried PHI that defeats the auto-vectorizer, while the Neon code
 * uses a constant bias vector), fancy 2x1 upsampling, and a 3-tap row
 * smoother.
 */

#include "workloads/common.hh"

namespace swan::workloads::libjpeg
{

using namespace swan::simd;
using core::Domain;
using core::Options;
using core::Pattern;
using core::Workload;

// Fixed-point BT.601 luma coefficients at 14-bit scale (sum = 16384),
// the scale libjpeg-turbo's Neon path uses so products fit u16 x u16.
constexpr uint32_t kYR = 4899, kYG = 9617, kYB = 1868;
constexpr int kShift = 14;
constexpr uint32_t kBias = 1u << (kShift - 1);

// ---------------------------------------------------------------------
// rgb_to_ycbcr (luma plane): Y = (cR*R + cG*G + cB*B + 2^15) >> 16
// ---------------------------------------------------------------------

class RgbToYcbcr : public Workload
{
  public:
    explicit RgbToYcbcr(const Options &opts)
        : pixels_(opts.imageWidth * opts.imageHeight)
    {
        Rng rng(opts.seed ^ 0x4a01);
        rgb_ = randomInts<uint8_t>(rng, size_t(pixels_) * 3);
        outScalar_.assign(size_t(pixels_), 0);
        outNeon_.assign(size_t(pixels_), 1);
        outAuto_.assign(size_t(pixels_), 2);
    }

    void
    runScalar() override
    {
        for (int p = 0; p < pixels_; ++p) {
            const size_t base = size_t(p) * 3;
            Sc<uint32_t> r = sload(&rgb_[base]).to<uint32_t>();
            Sc<uint32_t> g = sload(&rgb_[base + 1]).to<uint32_t>();
            Sc<uint32_t> b = sload(&rgb_[base + 2]).to<uint32_t>();
            Sc<uint32_t> y = smadd(r, Sc<uint32_t>(kYR),
                                   Sc<uint32_t>(kBias));
            y = smadd(g, Sc<uint32_t>(kYG), y);
            y = smadd(b, Sc<uint32_t>(kYB), y);
            sstore(&outScalar_[size_t(p)], (y >> kShift).to<uint8_t>());
            ctl::loop();
        }
    }

    void
    runNeon(int vec_bits) override
    {
        switch (vec_bits) {
          case 256: neonImpl<256>(); break;
          case 512: neonImpl<512>(); break;
          case 1024: neonImpl<1024>(); break;
          default: neonImpl<128>(); break;
        }
    }

    void
    runAuto() override
    {
        // Vectorizes, but without VLD3 de-interleaving: three overlapping
        // loads plus a TBL-based shuffle cascade per 16 pixels, and
        // conservative 32-bit accumulation (Auto < Neon).
        int p = 0;
        for (; p + 16 <= pixels_; p += 16) {
            const size_t base = size_t(p) * 3;
            // Gather R/G/B planes with scalarized strided loads.
            auto rv = vdup<uint8_t, 128>(uint8_t(0));
            auto gv = rv, bv = rv;
            for (int j = 0; j < 16; ++j) {
                rv = vset_lane(rv, j, sload(&rgb_[base + size_t(3 * j)]));
                gv = vset_lane(gv, j,
                               sload(&rgb_[base + size_t(3 * j) + 1]));
                bv = vset_lane(bv, j,
                               sload(&rgb_[base + size_t(3 * j) + 2]));
            }
            computeY<128>(rv, gv, bv, &outAuto_[size_t(p)]);
            ctl::loop();
        }
        for (; p < pixels_; ++p)
            scalarPixel(p, outAuto_);
    }

    bool verify() override { return outScalar_ == outNeon_; }
    uint64_t flops() const override { return uint64_t(pixels_) * 6; }

  private:
    template <int B>
    void
    computeY(const Vec<uint8_t, B> &r, const Vec<uint8_t, B> &g,
             const Vec<uint8_t, B> &b, uint8_t *out)
    {
        // u16 x u16 -> u32 widening multiply-accumulates against the
        // 14-bit-scale coefficients (libjpeg-turbo's Neon strategy).
        auto r16 = vmovl_lo(r), r16h = vmovl_hi(r);
        auto g16 = vmovl_lo(g), g16h = vmovl_hi(g);
        auto b16 = vmovl_lo(b), b16h = vmovl_hi(b);
        const auto cr = vdup<uint16_t, B>(uint16_t(kYR));
        const auto cg = vdup<uint16_t, B>(uint16_t(kYG));
        const auto cb = vdup<uint16_t, B>(uint16_t(kYB));
        const auto bias = vdup<uint32_t, B>(kBias);

        auto y00 = vmlal_lo(bias, r16, cr);
        y00 = vmlal_lo(y00, g16, cg);
        y00 = vmlal_lo(y00, b16, cb);
        auto y01 = vmlal_hi(bias, r16, cr);
        y01 = vmlal_hi(y01, g16, cg);
        y01 = vmlal_hi(y01, b16, cb);
        auto y10 = vmlal_lo(bias, r16h, cr);
        y10 = vmlal_lo(y10, g16h, cg);
        y10 = vmlal_lo(y10, b16h, cb);
        auto y11 = vmlal_hi(bias, r16h, cr);
        y11 = vmlal_hi(y11, g16h, cg);
        y11 = vmlal_hi(y11, b16h, cb);

        auto n_lo = vshrn(y00, y01, kShift);
        auto n_hi = vshrn(y10, y11, kShift);
        vst1(out, vmovn(n_lo, n_hi));
    }

    template <int B>
    void
    neonImpl()
    {
        constexpr int kLanes = Vec<uint8_t, B>::kLanes;
        int p = 0;
        for (; p + kLanes <= pixels_; p += kLanes) {
            auto rgb = vld3<B>(&rgb_[size_t(p) * 3]);
            computeY<B>(rgb[0], rgb[1], rgb[2], &outNeon_[size_t(p)]);
            ctl::loop();
        }
        for (; p < pixels_; ++p)
            scalarPixel(p, outNeon_);
    }

    void
    scalarPixel(int p, std::vector<uint8_t> &out)
    {
        const size_t base = size_t(p) * 3;
        Sc<uint32_t> r = sload(&rgb_[base]).to<uint32_t>();
        Sc<uint32_t> g = sload(&rgb_[base + 1]).to<uint32_t>();
        Sc<uint32_t> b = sload(&rgb_[base + 2]).to<uint32_t>();
        Sc<uint32_t> y = smadd(r, Sc<uint32_t>(kYR),
                               Sc<uint32_t>(kBias));
        y = smadd(g, Sc<uint32_t>(kYG), y);
        y = smadd(b, Sc<uint32_t>(kYB), y);
        sstore(&out[size_t(p)], (y >> kShift).to<uint8_t>());
        ctl::loop();
    }

    int pixels_;
    std::vector<uint8_t> rgb_, outScalar_, outNeon_, outAuto_;
};

// ---------------------------------------------------------------------
// ycbcr_to_rgb (red channel): R = clamp(Y + 1.402*(Cr-128))
// ---------------------------------------------------------------------

class YcbcrToRgb : public Workload
{
  public:
    explicit YcbcrToRgb(const Options &opts)
        : pixels_(opts.imageWidth * opts.imageHeight)
    {
        Rng rng(opts.seed ^ 0x4a02);
        y_ = randomInts<uint8_t>(rng, size_t(pixels_));
        cr_ = randomInts<uint8_t>(rng, size_t(pixels_));
        outScalar_.assign(size_t(pixels_), 0);
        outNeon_.assign(size_t(pixels_), 1);
        outAuto_.assign(size_t(pixels_), 2);
    }

    void
    runScalar() override
    {
        scalarBody(outScalar_);
    }

    void
    runNeon(int) override
    {
        // R = clamp(Y + (91881*(Cr-128) + 2^15 >> 16)), via s16 mul-high.
        const auto c = vdup<int16_t, 128>(int16_t(11485)); // 1.402 * 2^13
        const auto off = vdup<int16_t, 128>(int16_t(128));
        int p = 0;
        for (; p + 16 <= pixels_; p += 16) {
            auto yv = vld1<128>(&y_[size_t(p)]);
            auto crv = vld1<128>(&cr_[size_t(p)]);
            auto cr_lo = vsub(vreinterpret<int16_t>(vmovl_lo(crv)), off);
            auto cr_hi = vsub(vreinterpret<int16_t>(vmovl_hi(crv)), off);
            // (cr * 11485 * 2) >> 16 ~= cr * 1.402 >> 2 ... use QDMULH
            // then round-shift as libjpeg-turbo's ycc_rgb does.
            auto d_lo = vqdmulh(cr_lo, c);
            auto d_hi = vqdmulh(cr_hi, c);
            auto y_lo = vreinterpret<int16_t>(vmovl_lo(yv));
            auto y_hi = vreinterpret<int16_t>(vmovl_hi(yv));
            auto r_lo = vadd(y_lo, vrshr(d_lo, 2));
            auto r_hi = vadd(y_hi, vrshr(d_hi, 2));
            vst1(&outNeon_[size_t(p)], vqmovun(r_lo, r_hi));
            ctl::loop();
        }
        for (; p < pixels_; ++p)
            scalarPixel(p, outNeon_);
    }

    void
    runAuto() override
    {
        // Vectorizes with an s32 inner type and explicit min/max clamps
        // instead of the saturating narrow (Auto < Neon).
        int p = 0;
        const auto c32 = vdup<int32_t, 128>(11485);
        const auto off32 = vdup<int32_t, 128>(128);
        const auto zero = vdup<int32_t, 128>(0);
        const auto v255 = vdup<int32_t, 128>(255);
        for (; p + 16 <= pixels_; p += 16) {
            auto yv = vld1<128>(&y_[size_t(p)]);
            auto crv = vld1<128>(&cr_[size_t(p)]);
            auto y16l = vmovl_lo(yv), y16h = vmovl_hi(yv);
            auto c16l = vmovl_lo(crv), c16h = vmovl_hi(crv);
            std::array<Vec<int32_t, 128>, 4> ys = {
                vreinterpret<int32_t>(vmovl_lo(y16l)),
                vreinterpret<int32_t>(vmovl_hi(y16l)),
                vreinterpret<int32_t>(vmovl_lo(y16h)),
                vreinterpret<int32_t>(vmovl_hi(y16h))};
            std::array<Vec<int32_t, 128>, 4> cs = {
                vreinterpret<int32_t>(vmovl_lo(c16l)),
                vreinterpret<int32_t>(vmovl_hi(c16l)),
                vreinterpret<int32_t>(vmovl_lo(c16h)),
                vreinterpret<int32_t>(vmovl_hi(c16h))};
            std::array<Vec<int32_t, 128>, 4> rs;
            for (int k = 0; k < 4; ++k) {
                auto d = vmul(vsub(cs[size_t(k)], off32), c32);
                d = vrshr(d, 13);
                auto r = vadd(ys[size_t(k)], d);
                rs[size_t(k)] = vmin(vmax(r, zero), v255);
            }
            auto n0 = vmovn(vreinterpret<uint32_t>(rs[0]),
                            vreinterpret<uint32_t>(rs[1]));
            auto n1 = vmovn(vreinterpret<uint32_t>(rs[2]),
                            vreinterpret<uint32_t>(rs[3]));
            vst1(&outAuto_[size_t(p)], vmovn(n0, n1));
            ctl::loop();
        }
        for (; p < pixels_; ++p)
            scalarPixel(p, outAuto_);
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    void
    scalarBody(std::vector<uint8_t> &out)
    {
        for (int p = 0; p < pixels_; ++p)
            scalarPixel(p, out);
    }

    void
    scalarPixel(int p, std::vector<uint8_t> &out)
    {
        Sc<int32_t> y = sload(&y_[size_t(p)]).to<int32_t>();
        Sc<int32_t> cr = sload(&cr_[size_t(p)]).to<int32_t>();
        // Match the Neon fixed-point pipeline bit-exactly:
        // d = rshr(qdmulh16(cr - 128, 11485), 2).
        Sc<int32_t> diff = cr - Sc<int32_t>(128);
        Sc<int32_t> prod = diff * Sc<int32_t>(11485);
        Sc<int32_t> mulhi = (prod + prod) >> 16;       // QDMULH
        Sc<int32_t> d = (mulhi + Sc<int32_t>(2)) >> 2; // VRSHR #2
        Sc<int32_t> r = y + d;
        r = smax(r, Sc<int32_t>(0));
        r = smin(r, Sc<int32_t>(255));
        sstore(&out[size_t(p)], r.to<uint8_t>());
        ctl::loop();
    }

    int pixels_;
    std::vector<uint8_t> y_, cr_, outScalar_, outNeon_, outAuto_;
};

// ---------------------------------------------------------------------
// downsample_h2v2: out[x] = (p00+p01+p10+p11 + bias) >> 2, bias = 1,2,1,2
// ---------------------------------------------------------------------

class DownsampleH2V2 : public Workload
{
  public:
    explicit DownsampleH2V2(const Options &opts)
        : width_(opts.imageWidth & ~31), rows_(opts.imageHeight & ~1)
    {
        Rng rng(opts.seed ^ 0x4a03);
        src_ = randomInts<uint8_t>(rng, size_t(width_) * size_t(rows_));
        const size_t out_n =
            size_t(width_ / 2) * size_t(rows_ / 2);
        outScalar_.assign(out_n, 0);
        outNeon_.assign(out_n, 1);
    }

    void
    runScalar() override
    {
        // The alternating bias is carried across iterations: the PHI
        // node LLVM cannot resolve (Section 5.2, Example 3).
        for (int y = 0; y < rows_; y += 2) {
            const uint8_t *r0 = &src_[size_t(y) * size_t(width_)];
            const uint8_t *r1 = r0 + width_;
            uint8_t *out =
                &outScalar_[size_t(y / 2) * size_t(width_ / 2)];
            Sc<uint32_t> bias(1u);
            for (int x = 0; x < width_; x += 2) {
                Sc<uint32_t> sum = sload(r0 + x).to<uint32_t>() +
                                   sload(r0 + x + 1).to<uint32_t>() +
                                   sload(r1 + x).to<uint32_t>() +
                                   sload(r1 + x + 1).to<uint32_t>();
                sstore(out + x / 2, ((sum + bias) >> 2).to<uint8_t>());
                bias = bias ^ Sc<uint32_t>(3u); // 1 <-> 2
                ctl::loop();
            }
        }
    }

    void
    runNeon(int) override
    {
        // Constant bias vector {1,2,1,2,...} (the Neon fix the paper
        // describes), horizontal pair-add then vertical add.
        uint16_t bias_mem[8];
        for (int i = 0; i < 8; ++i)
            bias_mem[i] = uint16_t(i % 2 ? 2 : 1);
        const auto bias = vld1<128>(bias_mem);
        for (int y = 0; y < rows_; y += 2) {
            const uint8_t *r0 = &src_[size_t(y) * size_t(width_)];
            const uint8_t *r1 = r0 + width_;
            uint8_t *out = &outNeon_[size_t(y / 2) * size_t(width_ / 2)];
            int x = 0;
            for (; x + 16 <= width_; x += 16) {
                auto d0 = vld1<128>(r0 + x);
                auto d1 = vld1<128>(r1 + x);
                auto h0 = vpaddl(d0);            // u16 pair sums
                auto h1 = vpaddl(d1);
                auto sum = vadd(vadd(h0, h1), bias);
                auto n = vshrn(sum, sum, 2);     // low half valid
                vst1_partial(out + x / 2, n, 8);
                ctl::loop();
            }
        }
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    int width_, rows_;
    std::vector<uint8_t> src_, outScalar_, outNeon_;
};

// ---------------------------------------------------------------------
// upsample_h2v1_fancy: out[2x] = (3*s[x] + s[x-1] + 2) >> 2,
//                      out[2x+1] = (3*s[x] + s[x+1] + 1) >> 2
// ---------------------------------------------------------------------

class UpsampleH2V1 : public Workload
{
  public:
    explicit UpsampleH2V1(const Options &opts)
        : n_(opts.imageWidth * opts.imageHeight)
    {
        Rng rng(opts.seed ^ 0x4a04);
        src_ = randomInts<uint8_t>(rng, size_t(n_) + 2);
        // All output buffers share the zero fill: the first/last output
        // pixels are edge-replicated by callers and stay untouched here.
        outScalar_.assign(size_t(n_) * 2, 0);
        outNeon_.assign(size_t(n_) * 2, 0);
        outAuto_.assign(size_t(n_) * 2, 0);
    }

    void
    runScalar() override
    {
        for (int x = 1; x + 1 < n_; ++x) {
            Sc<uint32_t> s = sload(&src_[size_t(x)]).to<uint32_t>();
            Sc<uint32_t> sm = sload(&src_[size_t(x - 1)]).to<uint32_t>();
            Sc<uint32_t> sp = sload(&src_[size_t(x + 1)]).to<uint32_t>();
            Sc<uint32_t> t = s * Sc<uint32_t>(3u);
            sstore(&outScalar_[size_t(2 * x)],
                   ((t + sm + Sc<uint32_t>(2u)) >> 2).to<uint8_t>());
            sstore(&outScalar_[size_t(2 * x + 1)],
                   ((t + sp + Sc<uint32_t>(1u)) >> 2).to<uint8_t>());
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        vecBody(outNeon_, false);
    }

    void
    runAuto() override
    {
        // Vectorizes; the interleaved store becomes two stores plus ZIPs
        // either way, but the compiler re-widens to 16-bit lanes twice
        // (Auto < Neon, modeled as an extra widen/narrow round trip).
        vecBody(outAuto_, true);
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    void
    vecBody(std::vector<uint8_t> &out_buf, bool conservative)
    {
        const auto three = vdup<uint16_t, 128>(uint16_t(3));
        const auto c1 = vdup<uint16_t, 128>(uint16_t(1));
        const auto c2 = vdup<uint16_t, 128>(uint16_t(2));
        int x = 1;
        for (; x + 17 <= n_; x += 16) {
            auto s = vld1<128>(&src_[size_t(x)]);
            auto sm = vld1<128>(&src_[size_t(x - 1)]);
            auto sp = vld1<128>(&src_[size_t(x + 1)]);
            auto t_lo = vmul(vmovl_lo(s), three);
            auto t_hi = vmul(vmovl_hi(s), three);
            if (conservative) {
                // Extra widen/narrow round trip the compiler emits.
                auto widened = vmovl_lo(t_lo);
                auto widened2 = vmovl_hi(t_lo);
                t_lo = vmovn(widened, widened2);
                auto widened3 = vmovl_lo(t_hi);
                auto widened4 = vmovl_hi(t_hi);
                t_hi = vmovn(widened3, widened4);
            }
            auto e_lo = vshr(vadd(vaddw_lo(t_lo, sm), c2), 2);
            auto e_hi = vshr(vadd(vaddw_hi(t_hi, sm), c2), 2);
            auto o_lo = vshr(vadd(vaddw_lo(t_lo, sp), c1), 2);
            auto o_hi = vshr(vadd(vaddw_hi(t_hi, sp), c1), 2);
            auto evens = vmovn(e_lo, e_hi);
            auto odds = vmovn(o_lo, o_hi);
            vst2(&out_buf[size_t(2 * x)],
                 std::array<Vec<uint8_t, 128>, 2>{evens, odds});
            ctl::loop();
        }
        for (; x + 1 < n_; ++x) {
            Sc<uint32_t> s = sload(&src_[size_t(x)]).to<uint32_t>();
            Sc<uint32_t> sm = sload(&src_[size_t(x - 1)]).to<uint32_t>();
            Sc<uint32_t> sp = sload(&src_[size_t(x + 1)]).to<uint32_t>();
            Sc<uint32_t> t = s * Sc<uint32_t>(3u);
            sstore(&out_buf[size_t(2 * x)],
                   ((t + sm + Sc<uint32_t>(2u)) >> 2).to<uint8_t>());
            sstore(&out_buf[size_t(2 * x + 1)],
                   ((t + sp + Sc<uint32_t>(1u)) >> 2).to<uint8_t>());
            ctl::loop();
        }
    }

    int n_;
    std::vector<uint8_t> src_, outScalar_, outNeon_, outAuto_;
};

// ---------------------------------------------------------------------
// smooth_row: out[x] = (s[x-1] + 2*s[x] + s[x+1] + 2) >> 2
// ---------------------------------------------------------------------

class SmoothRow : public Workload
{
  public:
    explicit SmoothRow(const Options &opts)
        : n_(opts.imageWidth * opts.imageHeight)
    {
        Rng rng(opts.seed ^ 0x4a05);
        src_ = randomInts<uint8_t>(rng, size_t(n_) + 2);
        outScalar_.assign(size_t(n_), 0);
        outNeon_.assign(size_t(n_), 1);
        outAuto_.assign(size_t(n_), 2);
    }

    void
    runScalar() override
    {
        for (int x = 0; x < n_; ++x) {
            Sc<uint32_t> a = sload(&src_[size_t(x)]).to<uint32_t>();
            Sc<uint32_t> b = sload(&src_[size_t(x + 1)]).to<uint32_t>();
            Sc<uint32_t> c = sload(&src_[size_t(x + 2)]).to<uint32_t>();
            Sc<uint32_t> sum = a + b + b + c + Sc<uint32_t>(2u);
            sstore(&outScalar_[size_t(x)], (sum >> 2).to<uint8_t>());
            ctl::loop();
        }
    }

    void runNeon(int) override { vecBody(outNeon_, false); }

    void
    runAuto() override
    {
        // Vectorizes with conservative 32-bit arithmetic (the compiler
        // cannot prove the 16-bit sums do not overflow), doubling the
        // vector work (Auto < Neon).
        vecBody(outAuto_, true);
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    void
    vecBody(std::vector<uint8_t> &out_buf, bool conservative)
    {
        const auto c2 = vdup<uint16_t, 128>(uint16_t(2));
        int x = 0;
        for (; x + 16 <= n_; x += 16) {
            auto a = vld1<128>(&src_[size_t(x)]);
            auto b = vld1<128>(&src_[size_t(x + 1)]);
            auto c = vld1<128>(&src_[size_t(x + 2)]);
            auto lo = vadd(vaddl_lo(a, c), vadd(vshll_lo(b, 1), c2));
            auto hi = vadd(vaddl_hi(a, c), vadd(vshll_hi(b, 1), c2));
            if (conservative) {
                // s32 round trip per half (compiler-widened arithmetic).
                auto w0 = vmovl_lo(lo), w1 = vmovl_hi(lo);
                auto w2 = vmovl_lo(hi), w3 = vmovl_hi(hi);
                lo = vmovn(vshr(w0, 0), vshr(w1, 0));
                hi = vmovn(vshr(w2, 0), vshr(w3, 0));
            }
            vst1(&out_buf[size_t(x)], vshrn(lo, hi, 2));
            ctl::loop();
        }
        for (; x < n_; ++x) {
            Sc<uint32_t> a = sload(&src_[size_t(x)]).to<uint32_t>();
            Sc<uint32_t> b = sload(&src_[size_t(x + 1)]).to<uint32_t>();
            Sc<uint32_t> c = sload(&src_[size_t(x + 2)]).to<uint32_t>();
            Sc<uint32_t> sum = a + b + b + c + Sc<uint32_t>(2u);
            sstore(&out_buf[size_t(x)], (sum >> 2).to<uint8_t>());
            ctl::loop();
        }
    }

    int n_;
    std::vector<uint8_t> src_, outScalar_, outNeon_, outAuto_;
};

// ---------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------

SWAN_REGISTER_LIBRARY((core::LibraryUsage{
    "libjpeg-turbo", "LJ", Domain::ImageProcessing,
    true, false, false, true, 6.8, 2.4}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libjpeg-turbo", "LJ", "rgb_to_ycbcr",
                     Domain::ImageProcessing,
                     uint32_t(Pattern::StridedAccess),
                     autovec::Verdict{true, 0}, /*widerWidths=*/true, 0},
    [](const Options &o) { return std::make_unique<RgbToYcbcr>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libjpeg-turbo", "LJ", "ycbcr_to_rgb",
                     Domain::ImageProcessing, 0,
                     autovec::Verdict{true, 0}, false, 0},
    [](const Options &o) { return std::make_unique<YcbcrToRgb>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libjpeg-turbo", "LJ", "downsample_h2v2",
                     Domain::ImageProcessing, 0,
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::ComplexPhi)},
                     false, 0},
    [](const Options &o) {
        return std::make_unique<DownsampleH2V2>(o);
    }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libjpeg-turbo", "LJ", "upsample_h2v1_fancy",
                     Domain::ImageProcessing,
                     uint32_t(Pattern::StridedAccess),
                     autovec::Verdict{true, 0}, false, 0},
    [](const Options &o) { return std::make_unique<UpsampleH2V1>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libjpeg-turbo", "LJ", "smooth_row",
                     Domain::ImageProcessing, 0,
                     autovec::Verdict{true, 0}, false, 0},
    [](const Options &o) { return std::make_unique<SmoothRow>(o); }}));

} // namespace swan::workloads::libjpeg
