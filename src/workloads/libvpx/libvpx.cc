/**
 * @file
 * libvpx workloads (symbol LV, Video Processing). Kernels common to most
 * video codecs (Section 3.2): forward/inverse 8x8 DCT (the Section 6.4
 * matrix-transposition pattern: each pass transposes the block with
 * TRN1/TRN2 chains, ~24% of LV instructions), 16x16 SAD (one of the eight
 * Figure-5 wider-register kernels, manually unrolled into independent
 * accumulators for ILP, Section 7.2), coefficient quantization, 16x16
 * variance, and residual block subtraction.
 *
 * The DCT butterfly math is shared between the Scalar and Neon
 * implementations through a small policy template, so outputs are
 * bit-exact by construction (fixed-point cospi constants, 14-bit rounds,
 * as in vpx_dsp).
 */

#include "workloads/common.hh"

namespace swan::workloads::libvpx
{

using namespace swan::simd;
using core::Domain;
using core::Options;
using core::Pattern;
using core::Workload;

// vpx_dsp fixed-point cosine constants (x * 2^14).
constexpr int32_t kCospi4 = 16069, kCospi8 = 15137, kCospi12 = 13623;
constexpr int32_t kCospi16 = 11585, kCospi20 = 9102, kCospi24 = 6270;
constexpr int32_t kCospi28 = 3196;

// ---------------------------------------------------------------------
// Butterfly policies: identical math over Sc<int32_t> or Vec<int32_t>.
// ---------------------------------------------------------------------

struct ScalarOps
{
    using V = Sc<int32_t>;
    static V add(V a, V b) { return a + b; }
    static V sub(V a, V b) { return a - b; }
    /** round-shift-14 of a*c. */
    static V
    mulrs(V a, int32_t c)
    {
        V p = a * V(c);
        return (p + V(8192)) >> 14;
    }
    /** round-shift-14 of a*ca + b*cb. */
    static V
    mulrs2(V a, int32_t ca, V b, int32_t cb)
    {
        V p = a * V(ca) + b * V(cb);
        return (p + V(8192)) >> 14;
    }
};

struct VecOps
{
    using V = Vec<int32_t, 128>;
    static V add(const V &a, const V &b) { return vadd(a, b); }
    static V sub(const V &a, const V &b) { return vsub(a, b); }
    static V
    mulrs(const V &a, int32_t c)
    {
        auto p = vmul_n(a, Sc<int32_t>(c));
        return vrshr(p, 14);
    }
    static V
    mulrs2(const V &a, int32_t ca, const V &b, int32_t cb)
    {
        auto p = vmla_n(vmul_n(a, Sc<int32_t>(ca)), b, Sc<int32_t>(cb));
        return vrshr(p, 14);
    }
};

/** 8-point forward DCT (vpx_dsp structure) on 8 values. */
template <class Ops>
void
fdct8(std::array<typename Ops::V, 8> &x)
{
    using V = typename Ops::V;
    V s0 = Ops::add(x[0], x[7]), s7 = Ops::sub(x[0], x[7]);
    V s1 = Ops::add(x[1], x[6]), s6 = Ops::sub(x[1], x[6]);
    V s2 = Ops::add(x[2], x[5]), s5 = Ops::sub(x[2], x[5]);
    V s3 = Ops::add(x[3], x[4]), s4 = Ops::sub(x[3], x[4]);

    V e0 = Ops::add(s0, s3), e3 = Ops::sub(s0, s3);
    V e1 = Ops::add(s1, s2), e2 = Ops::sub(s1, s2);

    x[0] = Ops::mulrs(Ops::add(e0, e1), kCospi16);
    x[4] = Ops::mulrs(Ops::sub(e0, e1), kCospi16);
    x[2] = Ops::mulrs2(e2, kCospi24, e3, kCospi8);
    x[6] = Ops::mulrs2(e3, kCospi24, e2, -kCospi8);

    V t2 = Ops::mulrs(Ops::sub(s6, s5), kCospi16);
    V t3 = Ops::mulrs(Ops::add(s6, s5), kCospi16);
    V o0 = Ops::add(s4, t2), o1 = Ops::sub(s4, t2);
    V o2 = Ops::sub(s7, t3), o3 = Ops::add(s7, t3);

    x[1] = Ops::mulrs2(o0, kCospi28, o3, kCospi4);
    x[7] = Ops::mulrs2(o3, kCospi28, o0, -kCospi4);
    x[5] = Ops::mulrs2(o1, kCospi12, o2, kCospi20);
    x[3] = Ops::mulrs2(o2, kCospi12, o1, -kCospi20);
}

/** 8-point inverse DCT (vpx_dsp structure). */
template <class Ops>
void
idct8(std::array<typename Ops::V, 8> &x)
{
    using V = typename Ops::V;
    V s0 = Ops::mulrs(Ops::add(x[0], x[4]), kCospi16);
    V s1 = Ops::mulrs(Ops::sub(x[0], x[4]), kCospi16);
    V s2 = Ops::mulrs2(x[2], kCospi24, x[6], -kCospi8);
    V s3 = Ops::mulrs2(x[2], kCospi8, x[6], kCospi24);
    V s4 = Ops::mulrs2(x[1], kCospi28, x[7], -kCospi4);
    V s7 = Ops::mulrs2(x[1], kCospi4, x[7], kCospi28);
    V s5 = Ops::mulrs2(x[5], kCospi12, x[3], -kCospi20);
    V s6 = Ops::mulrs2(x[5], kCospi20, x[3], kCospi12);

    V e0 = Ops::add(s0, s3), e3 = Ops::sub(s0, s3);
    V e1 = Ops::add(s1, s2), e2 = Ops::sub(s1, s2);
    V o0 = Ops::add(s4, s5), o1 = Ops::sub(s4, s5);
    V o3 = Ops::add(s7, s6), o2 = Ops::sub(s7, s6);

    V p1 = Ops::mulrs(Ops::sub(o2, o1), kCospi16);
    V p2 = Ops::mulrs(Ops::add(o2, o1), kCospi16);

    x[0] = Ops::add(e0, o3);
    x[7] = Ops::sub(e0, o3);
    x[1] = Ops::add(e1, p2);
    x[6] = Ops::sub(e1, p2);
    x[2] = Ops::add(e2, p1);
    x[5] = Ops::sub(e2, p1);
    x[3] = Ops::add(e3, o0);
    x[4] = Ops::sub(e3, o0);
}

namespace
{

/** Transpose an 8x8 block of s16 held in 8 vectors (TRN chains). */
void
transpose8x8(std::array<Vec<int16_t, 128>, 8> &r)
{
    // 16-bit pairs.
    auto a0 = vtrn1(r[0], r[1]), a1 = vtrn2(r[0], r[1]);
    auto a2 = vtrn1(r[2], r[3]), a3 = vtrn2(r[2], r[3]);
    auto a4 = vtrn1(r[4], r[5]), a5 = vtrn2(r[4], r[5]);
    auto a6 = vtrn1(r[6], r[7]), a7 = vtrn2(r[6], r[7]);
    // 32-bit pairs.
    auto b0 = vreinterpret<int16_t>(
        vtrn1(vreinterpret<int32_t>(a0), vreinterpret<int32_t>(a2)));
    auto b2 = vreinterpret<int16_t>(
        vtrn2(vreinterpret<int32_t>(a0), vreinterpret<int32_t>(a2)));
    auto b1 = vreinterpret<int16_t>(
        vtrn1(vreinterpret<int32_t>(a1), vreinterpret<int32_t>(a3)));
    auto b3 = vreinterpret<int16_t>(
        vtrn2(vreinterpret<int32_t>(a1), vreinterpret<int32_t>(a3)));
    auto b4 = vreinterpret<int16_t>(
        vtrn1(vreinterpret<int32_t>(a4), vreinterpret<int32_t>(a6)));
    auto b6 = vreinterpret<int16_t>(
        vtrn2(vreinterpret<int32_t>(a4), vreinterpret<int32_t>(a6)));
    auto b5 = vreinterpret<int16_t>(
        vtrn1(vreinterpret<int32_t>(a5), vreinterpret<int32_t>(a7)));
    auto b7 = vreinterpret<int16_t>(
        vtrn2(vreinterpret<int32_t>(a5), vreinterpret<int32_t>(a7)));
    // 64-bit pairs.
    r[0] = vreinterpret<int16_t>(
        vtrn1(vreinterpret<int64_t>(b0), vreinterpret<int64_t>(b4)));
    r[4] = vreinterpret<int16_t>(
        vtrn2(vreinterpret<int64_t>(b0), vreinterpret<int64_t>(b4)));
    r[1] = vreinterpret<int16_t>(
        vtrn1(vreinterpret<int64_t>(b1), vreinterpret<int64_t>(b5)));
    r[5] = vreinterpret<int16_t>(
        vtrn2(vreinterpret<int64_t>(b1), vreinterpret<int64_t>(b5)));
    r[2] = vreinterpret<int16_t>(
        vtrn1(vreinterpret<int64_t>(b2), vreinterpret<int64_t>(b6)));
    r[6] = vreinterpret<int16_t>(
        vtrn2(vreinterpret<int64_t>(b2), vreinterpret<int64_t>(b6)));
    r[3] = vreinterpret<int16_t>(
        vtrn1(vreinterpret<int64_t>(b3), vreinterpret<int64_t>(b7)));
    r[7] = vreinterpret<int16_t>(
        vtrn2(vreinterpret<int64_t>(b3), vreinterpret<int64_t>(b7)));
}

/** Base for the 8x8 transform kernels. */
class DctKernel : public Workload
{
  public:
    DctKernel(const Options &opts, uint64_t salt) : blocks_(opts.videoBlocks)
    {
        Rng rng(opts.seed ^ salt);
        in_.resize(size_t(blocks_) * 64);
        for (auto &v : in_)
            v = int16_t(rng.range(-255, 255));
        outScalar_.assign(in_.size(), 0);
        outNeon_.assign(in_.size(), 1);
    }

    bool verify() override { return outScalar_ == outNeon_; }
    uint64_t flops() const override { return in_.size() * 16; }

  protected:
    /** Scalar two-pass transform with an explicit transpose between. */
    template <bool kForward>
    void
    scalarTransform()
    {
        for (int b = 0; b < blocks_; ++b) {
            const int16_t *src = &in_[size_t(b) * 64];
            int16_t *dst = &outScalar_[size_t(b) * 64];
            std::array<std::array<Sc<int32_t>, 8>, 8> m;
            for (int r = 0; r < 8; ++r)
                for (int c = 0; c < 8; ++c) {
                    m[size_t(r)][size_t(c)] =
                        sload(src + r * 8 + c).to<int32_t>();
                    ctl::loop();
                }
            // Pass 1 on columns.
            for (int c = 0; c < 8; ++c) {
                std::array<Sc<int32_t>, 8> col;
                for (int r = 0; r < 8; ++r)
                    col[size_t(r)] = m[size_t(r)][size_t(c)];
                if constexpr (kForward)
                    fdct8<ScalarOps>(col);
                else
                    idct8<ScalarOps>(col);
                for (int r = 0; r < 8; ++r)
                    m[size_t(r)][size_t(c)] = col[size_t(r)];
                ctl::loop();
            }
            // Pass 2 on rows.
            for (int r = 0; r < 8; ++r) {
                if constexpr (kForward)
                    fdct8<ScalarOps>(m[size_t(r)]);
                else
                    idct8<ScalarOps>(m[size_t(r)]);
                for (int c = 0; c < 8; ++c)
                    sstore(dst + r * 8 + c,
                           m[size_t(r)][size_t(c)].to<int16_t>());
                ctl::loop();
            }
        }
    }

    /** Vector two-pass transform; lanes are columns, TRN transposes. */
    template <bool kForward>
    void
    vecTransform()
    {
        for (int b = 0; b < blocks_; ++b) {
            const int16_t *src = &in_[size_t(b) * 64];
            int16_t *dst = &outNeon_[size_t(b) * 64];
            std::array<Vec<int16_t, 128>, 8> rows;
            for (int r = 0; r < 8; ++r)
                rows[size_t(r)] = vld1<128>(src + r * 8);

            auto pass = [&]() {
                std::array<Vec<int32_t, 128>, 8> lo, hi;
                for (int r = 0; r < 8; ++r) {
                    lo[size_t(r)] = vmovl_lo(rows[size_t(r)]);
                    hi[size_t(r)] = vmovl_hi(rows[size_t(r)]);
                }
                if constexpr (kForward) {
                    fdct8<VecOps>(lo);
                    fdct8<VecOps>(hi);
                } else {
                    idct8<VecOps>(lo);
                    idct8<VecOps>(hi);
                }
                for (int r = 0; r < 8; ++r)
                    rows[size_t(r)] =
                        vmovn(lo[size_t(r)], hi[size_t(r)]);
            };

            pass();                 // columns (lanes)
            transpose8x8(rows);     // Section 6.4 primitive
            pass();                 // rows (now in lanes)
            transpose8x8(rows);     // restore row-major layout
            for (int r = 0; r < 8; ++r) {
                vst1(dst + r * 8, rows[size_t(r)]);
                ctl::loop();
            }
        }
    }

    int blocks_;
    std::vector<int16_t> in_, outScalar_, outNeon_;
};

} // namespace

class Fdct8x8 : public DctKernel
{
  public:
    explicit Fdct8x8(const Options &opts) : DctKernel(opts, 0x6001) {}
    void runScalar() override { scalarTransform<true>(); }
    void runNeon(int) override { vecTransform<true>(); }
};

class Idct8x8 : public DctKernel
{
  public:
    explicit Idct8x8(const Options &opts) : DctKernel(opts, 0x6002) {}
    void runScalar() override { scalarTransform<false>(); }
    void runNeon(int) override { vecTransform<false>(); }
};

// ---------------------------------------------------------------------
// sad16x16: sum of absolute differences between two 16x16 blocks
// ---------------------------------------------------------------------

class Sad16x16 : public Workload
{
  public:
    explicit Sad16x16(const Options &opts) : blocks_(opts.videoBlocks)
    {
        Rng rng(opts.seed ^ 0x6003);
        src_ = randomInts<uint8_t>(rng, size_t(blocks_) * 256);
        ref_ = randomInts<uint8_t>(rng, size_t(blocks_) * 256);
        outScalar_.assign(size_t(blocks_), 0);
        outNeon_.assign(size_t(blocks_), 1);
    }

    void
    runScalar() override
    {
        for (int b = 0; b < blocks_; ++b) {
            const uint8_t *s = &src_[size_t(b) * 256];
            const uint8_t *r = &ref_[size_t(b) * 256];
            Sc<uint32_t> sad(0u);
            for (int i = 0; i < 256; ++i) {
                Sc<int32_t> d = sload(s + i).to<int32_t>() -
                                sload(r + i).to<int32_t>();
                sad += sabs(d).to<uint32_t>();
                ctl::loop();
            }
            sstore(&outScalar_[size_t(b)], sad);
            ctl::loop();
        }
    }

    void
    runNeon(int vec_bits) override
    {
        switch (vec_bits) {
          case 256: neonImpl<256>(); break;
          case 512: neonImpl<512>(); break;
          case 1024: neonImpl<1024>(); break;
          default: neonImpl<128>(); break;
        }
    }

    bool verify() override { return outScalar_ == outNeon_; }
    uint64_t flops() const override { return uint64_t(blocks_) * 512; }

  private:
    /**
     * Pack kRows 16-byte rows into one wide register. For B > 128 the
     * row loads must be combined (Section 7.1 packing overhead: Neon
     * cannot encode the 2-D access in one instruction).
     */
    template <int B>
    Vec<uint8_t, B>
    loadRows(const uint8_t *p)
    {
        if constexpr (B == 128) {
            return vld1<128>(p);
        } else {
            auto lo = loadRows<B / 2>(p);
            auto hi = loadRows<B / 2>(p + Vec<uint8_t, B / 2>::kLanes);
            return vcombine(lo, hi);
        }
    }

    template <int B>
    void
    neonImpl()
    {
        constexpr int kBytes = Vec<uint8_t, B>::kLanes;
        for (int b = 0; b < blocks_; ++b) {
            const uint8_t *s = &src_[size_t(b) * 256];
            const uint8_t *r = &ref_[size_t(b) * 256];
            // Four independent accumulators for ILP (Section 7.2).
            std::array<Vec<uint16_t, B>, 4> acc = {
                vdup<uint16_t, B>(uint16_t(0)),
                vdup<uint16_t, B>(uint16_t(0)),
                vdup<uint16_t, B>(uint16_t(0)),
                vdup<uint16_t, B>(uint16_t(0))};
            int i = 0;
            int lane = 0;
            for (; i + kBytes <= 256; i += kBytes) {
                auto a = loadRows<B>(s + i);
                auto bb = loadRows<B>(r + i);
                auto ab_lo = vabd(vmovl_lo(a), vmovl_lo(bb));
                auto ab_hi = vabd(vmovl_hi(a), vmovl_hi(bb));
                acc[size_t(lane % 4)] =
                    vadd(acc[size_t(lane % 4)], ab_lo);
                acc[size_t((lane + 1) % 4)] =
                    vadd(acc[size_t((lane + 1) % 4)], ab_hi);
                lane += 2;
                ctl::loop();
            }
            auto t0 = vadd(acc[0], acc[1]);
            auto t1 = vadd(acc[2], acc[3]);
            Sc<uint32_t> sad = vaddlv(vadd(t0, t1));
            sstore(&outNeon_[size_t(b)], sad.to<uint32_t>());
            ctl::loop();
        }
    }

    int blocks_;
    std::vector<uint8_t> src_, ref_;
    std::vector<uint32_t> outScalar_, outNeon_;
};

// ---------------------------------------------------------------------
// quantize_block: q = sign(c) * ((|c| + round) * quant >> 16), zeroed
// below the zero-bin threshold
// ---------------------------------------------------------------------

class QuantizeBlock : public Workload
{
  public:
    explicit QuantizeBlock(const Options &opts)
        : blocks_(opts.videoBlocks)
    {
        Rng rng(opts.seed ^ 0x6004);
        in_.resize(size_t(blocks_) * 64);
        for (auto &v : in_)
            v = int16_t(rng.range(-1024, 1024));
        outScalar_.assign(in_.size(), 0);
        outNeon_.assign(in_.size(), 1);
    }

    void
    runScalar() override
    {
        for (size_t i = 0; i < in_.size(); ++i) {
            Sc<int32_t> c = sload(&in_[i]).to<int32_t>();
            Sc<int32_t> a = sabs(c);
            if (a.v < kZbin) {
                sstore(&outScalar_[i], Sc<int16_t>(int16_t(0)));
                ctl::branch();
            } else {
                Sc<int32_t> q = ((a + Sc<int32_t>(kRound)) *
                                 Sc<int32_t>(kQuant)) >> 16;
                Sc<int32_t> sign_applied =
                    sselect(c.v < 0, Sc<int32_t>(0) - q, q);
                sstore(&outScalar_[i], sign_applied.to<int16_t>());
            }
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        const auto zbin = vdup<int16_t, 128>(int16_t(kZbin));
        const auto round = vdup<int16_t, 128>(int16_t(kRound));
        const auto quant = vdup<int32_t, 128>(kQuant);
        size_t i = 0;
        for (; i + 8 <= in_.size(); i += 8) {
            auto c = vld1<128>(&in_[i]);
            auto a = vabs(c);
            auto keep = vcge(a, zbin);
            auto biased = vqadd(a, round);
            auto p_lo = vmul(vmovl_lo(biased), quant);
            auto p_hi = vmul(vmovl_hi(biased), quant);
            auto q16 = vshrn(p_lo, p_hi, 16);
            // Restore sign: (q ^ sign) - sign with sign = c >> 15.
            auto sign = vshr(c, 15);
            auto signed_q = vsub(veor(q16, sign), sign);
            auto masked = vbsl(keep, signed_q,
                               vdup<int16_t, 128>(int16_t(0)));
            vst1(&outNeon_[i], masked);
            ctl::loop();
        }
        for (; i < in_.size(); ++i) {
            Sc<int32_t> c = sload(&in_[i]).to<int32_t>();
            Sc<int32_t> a = sabs(c);
            if (a.v < kZbin) {
                sstore(&outNeon_[i], Sc<int16_t>(int16_t(0)));
                ctl::branch();
            } else {
                Sc<int32_t> q = ((a + Sc<int32_t>(kRound)) *
                                 Sc<int32_t>(kQuant)) >> 16;
                Sc<int32_t> s = sselect(c.v < 0, Sc<int32_t>(0) - q, q);
                sstore(&outNeon_[i], s.to<int16_t>());
            }
            ctl::loop();
        }
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    static constexpr int32_t kZbin = 24, kRound = 48, kQuant = 21845;
    int blocks_;
    std::vector<int16_t> in_, outScalar_, outNeon_;
};

// ---------------------------------------------------------------------
// variance16x16: var = sse - mean^2 over a 16x16 block
// ---------------------------------------------------------------------

class Variance16x16 : public Workload
{
  public:
    explicit Variance16x16(const Options &opts) : blocks_(opts.videoBlocks)
    {
        Rng rng(opts.seed ^ 0x6005);
        src_ = randomInts<uint8_t>(rng, size_t(blocks_) * 256);
        outScalar_.assign(size_t(blocks_), 0);
        outNeon_.assign(size_t(blocks_), 1);
        outAuto_.assign(size_t(blocks_), 2);
    }

    void
    runScalar() override
    {
        for (int b = 0; b < blocks_; ++b) {
            const uint8_t *s = &src_[size_t(b) * 256];
            Sc<uint32_t> sum(0u), sse(0u);
            for (int i = 0; i < 256; ++i) {
                Sc<uint32_t> v = sload(s + i).to<uint32_t>();
                sum += v;
                sse = smadd(v, v, sse);
                ctl::loop();
            }
            Sc<uint32_t> var = sse - ((sum * sum) >> 8);
            sstore(&outScalar_[size_t(b)], var);
            ctl::loop();
        }
    }

    void runNeon(int) override { vecBody(outNeon_, 2); }

    void
    runAuto() override
    {
        // Integer reductions vectorize; interleave 1 instead of the
        // hand-unrolled accumulators (Auto < Neon).
        vecBody(outAuto_, 1);
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    void
    vecBody(std::vector<uint32_t> &out, int unroll)
    {
        for (int b = 0; b < blocks_; ++b) {
            const uint8_t *s = &src_[size_t(b) * 256];
            auto sum0 = vdup<uint16_t, 128>(uint16_t(0));
            auto sum1 = sum0;
            auto sse0 = vdup<uint32_t, 128>(0u);
            auto sse1 = sse0;
            for (int i = 0; i < 256; i += 16 * unroll) {
                for (int u = 0; u < unroll; ++u) {
                    auto d = vld1<128>(s + i + 16 * u);
                    auto lo = vmovl_lo(d), hi = vmovl_hi(d);
                    auto &sm = u == 0 ? sum0 : sum1;
                    auto &se = u == 0 ? sse0 : sse1;
                    sm = vadd(sm, vpadd(lo, hi));
                    se = vmlal_lo(se, lo, lo);
                    se = vmlal_hi(se, lo, lo);
                    se = vmlal_lo(se, hi, hi);
                    se = vmlal_hi(se, hi, hi);
                }
                ctl::loop();
            }
            Sc<uint32_t> sum = vaddlv(vadd(sum0, sum1)).to<uint32_t>();
            Sc<uint32_t> sse =
                vaddv(vadd(sse0, sse1)).to<uint32_t>();
            Sc<uint32_t> var = sse - ((sum * sum) >> 8);
            sstore(&out[size_t(b)], var);
            ctl::loop();
        }
    }

    int blocks_;
    std::vector<uint8_t> src_;
    std::vector<uint32_t> outScalar_, outNeon_, outAuto_;
};

// ---------------------------------------------------------------------
// subtract_block: residual[i] = src[i] - pred[i] (u8 -> s16)
// ---------------------------------------------------------------------

class SubtractBlock : public Workload
{
  public:
    explicit SubtractBlock(const Options &opts)
        : n_(opts.videoBlocks * 256)
    {
        Rng rng(opts.seed ^ 0x6006);
        src_ = randomInts<uint8_t>(rng, size_t(n_));
        pred_ = randomInts<uint8_t>(rng, size_t(n_));
        outScalar_.assign(size_t(n_), 0);
        outNeon_.assign(size_t(n_), 1);
        outAuto_.assign(size_t(n_), 2);
    }

    void
    runScalar() override
    {
        for (int i = 0; i < n_; ++i) {
            Sc<int32_t> d = sload(&src_[size_t(i)]).to<int32_t>() -
                            sload(&pred_[size_t(i)]).to<int32_t>();
            sstore(&outScalar_[size_t(i)], d.to<int16_t>());
            ctl::loop();
        }
    }

    void runNeon(int) override { vecBody(outNeon_); }
    void runAuto() override { vecBody(outAuto_); } // vectorizes (~= Neon)

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    void
    vecBody(std::vector<int16_t> &out)
    {
        int i = 0;
        for (; i + 16 <= n_; i += 16) {
            auto s = vld1<128>(&src_[size_t(i)]);
            auto p = vld1<128>(&pred_[size_t(i)]);
            // u8 - u8 widening subtract (USUBL), stored as s16.
            auto u_lo = vsubl_lo(s, p);
            auto u_hi = vsubl_hi(s, p);
            vst1(&out[size_t(i)], vreinterpret<int16_t>(u_lo));
            vst1(&out[size_t(i) + 8], vreinterpret<int16_t>(u_hi));
            ctl::loop();
        }
        for (; i < n_; ++i) {
            Sc<int32_t> d = sload(&src_[size_t(i)]).to<int32_t>() -
                            sload(&pred_[size_t(i)]).to<int32_t>();
            sstore(&out[size_t(i)], d.to<int16_t>());
            ctl::loop();
        }
    }

    int n_;
    std::vector<uint8_t> src_, pred_;
    std::vector<int16_t> outScalar_, outNeon_, outAuto_;
};

// ---------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------

SWAN_REGISTER_LIBRARY((core::LibraryUsage{
    "libvpx", "LV", Domain::VideoProcessing,
    true, true, true, false, 0.0, 0.0}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libvpx", "LV", "fdct8x8", Domain::VideoProcessing,
                     uint32_t(Pattern::Transpose),
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::OtherLegality)},
                     false, 0},
    [](const Options &o) { return std::make_unique<Fdct8x8>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libvpx", "LV", "idct8x8", Domain::VideoProcessing,
                     uint32_t(Pattern::Transpose),
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::OtherLegality)},
                     false, 0},
    [](const Options &o) { return std::make_unique<Idct8x8>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libvpx", "LV", "sad16x16", Domain::VideoProcessing,
                     uint32_t(Pattern::Reduction),
                     autovec::Verdict{true, 0}, /*widerWidths=*/true, 0},
    [](const Options &o) { return std::make_unique<Sad16x16>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libvpx", "LV", "quantize_block",
                     Domain::VideoProcessing, 0,
                     autovec::Verdict{false,
                                      autovec::Fail::OtherLegality |
                                          autovec::Fail::CostModel},
                     false, 0},
    [](const Options &o) {
        return std::make_unique<QuantizeBlock>(o);
    }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libvpx", "LV", "variance16x16",
                     Domain::VideoProcessing,
                     uint32_t(Pattern::Reduction),
                     autovec::Verdict{true, 0}, false, 0},
    [](const Options &o) {
        return std::make_unique<Variance16x16>(o);
    }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libvpx", "LV", "subtract_block",
                     Domain::VideoProcessing, 0,
                     autovec::Verdict{true, 0}, false, 0},
    [](const Options &o) {
        return std::make_unique<SubtractBlock>(o);
    }}));

} // namespace swan::workloads::libvpx
