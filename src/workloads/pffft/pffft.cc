/**
 * @file
 * PFFFT workloads (symbol PF, Audio Processing). A "pretty fast FFT" in
 * the PFFFT style: split (structure-of-arrays) real/imaginary storage,
 * butterflies expressed through a small portable vector API, and the
 * naive 6-instruction complex multiply the paper calls out in Section 6.5
 * (portable APIs cannot use FCMLA-style fused complex arithmetic).
 * The early short-span stages run scalar, which is why PF has the
 * largest scalar fraction in Figure 1 and only ~2.3x Neon speedup.
 *
 * Kernels: fft_forward, fft_inverse (DIT radix-2 with precomputed
 * twiddles and bit-reversal reorder), and zconvolve_accumulate
 * (frequency-domain pointwise complex multiply-accumulate, the WebAudio
 * convolution engine's workhorse).
 */

#include "workloads/common.hh"

namespace swan::workloads::pffft
{

using namespace swan::simd;
using core::Domain;
using core::Options;
using core::Pattern;
using core::Workload;

constexpr int kFftSize = 512;

namespace
{

/** Precomputed per-stage twiddle tables (host-side constants). */
struct Twiddles
{
    // For stage with half-length h: wr/wi arrays of length h.
    std::vector<std::vector<float>> wr, wi;

    explicit Twiddles(bool inverse)
    {
        for (int len = 2; len <= kFftSize; len <<= 1) {
            const int half = len / 2;
            std::vector<float> re(static_cast<size_t>(half), 0.0f);
            std::vector<float> im(static_cast<size_t>(half), 0.0f);
            const double sign = inverse ? 1.0 : -1.0;
            for (int j = 0; j < half; ++j) {
                const double ang = sign * 2.0 * M_PI * j / len;
                re[size_t(j)] = float(std::cos(ang));
                im[size_t(j)] = float(std::sin(ang));
            }
            wr.push_back(std::move(re));
            wi.push_back(std::move(im));
        }
    }
};

/** Bit-reversal permutation table. */
std::vector<int>
bitrevTable(int n)
{
    std::vector<int> t(size_t(n), 0);
    int bits = 0;
    while ((1 << bits) < n)
        ++bits;
    for (int i = 0; i < n; ++i) {
        int r = 0;
        for (int b = 0; b < bits; ++b)
            r |= ((i >> b) & 1) << (bits - 1 - b);
        t[size_t(i)] = r;
    }
    return t;
}

/** Base class for the two transform kernels. */
class FftKernel : public Workload
{
  public:
    FftKernel(const Options &opts, uint64_t salt, bool inverse)
        : inverse_(inverse), tw_(inverse),
          frames_(std::max(1, opts.audioSamples / kFftSize)),
          rev_(bitrevTable(kFftSize))
    {
        Rng rng(opts.seed ^ salt);
        inRe_ = randomFloats(rng, size_t(frames_) * kFftSize);
        inIm_ = randomFloats(rng, size_t(frames_) * kFftSize);
        sRe_.assign(inRe_.size(), 0);
        sIm_.assign(inRe_.size(), 0);
        nRe_.assign(inRe_.size(), -7.0f);
        nIm_.assign(inRe_.size(), -7.0f);
    }

    void
    runScalar() override
    {
        for (int f = 0; f < frames_; ++f)
            scalarFft(f);
    }

    void
    runNeon(int) override
    {
        for (int f = 0; f < frames_; ++f)
            neonFft(f);
    }

    bool
    verify() override
    {
        return approxOutputs(sRe_, nRe_, 5e-3f) &&
               approxOutputs(sIm_, nIm_, 5e-3f);
    }

  protected:
    void
    scalarFft(int frame)
    {
        const size_t off = size_t(frame) * kFftSize;
        // Bit-reversal reorder (the address-heavy pre-processing the
        // paper attributes PF's scalar fraction to).
        for (int i = 0; i < kFftSize; ++i) {
            ctl::addr(2);
            sstore(&sRe_[off + size_t(rev_[size_t(i)])],
                   sload(&inRe_[off + size_t(i)]));
            sstore(&sIm_[off + size_t(rev_[size_t(i)])],
                   sload(&inIm_[off + size_t(i)]));
            ctl::loop();
        }
        int stage = 0;
        for (int len = 2; len <= kFftSize; len <<= 1, ++stage) {
            const int half = len / 2;
            for (int i = 0; i < kFftSize; i += len) {
                for (int j = 0; j < half; ++j) {
                    Sc<float> wr = sload(&tw_.wr[size_t(stage)]
                                             [size_t(j)]);
                    Sc<float> wi = sload(&tw_.wi[size_t(stage)]
                                             [size_t(j)]);
                    float *ar = &sRe_[off + size_t(i + j)];
                    float *ai = &sIm_[off + size_t(i + j)];
                    float *br = &sRe_[off + size_t(i + j + half)];
                    float *bi = &sIm_[off + size_t(i + j + half)];
                    Sc<float> xr = sload(ar), xi = sload(ai);
                    Sc<float> yr = sload(br), yi = sload(bi);
                    // Naive complex multiply.
                    Sc<float> pr = yr * wr - yi * wi;
                    Sc<float> pi = yr * wi + yi * wr;
                    sstore(ar, xr + pr);
                    sstore(ai, xi + pi);
                    sstore(br, xr - pr);
                    sstore(bi, xi - pi);
                    ctl::loop();
                }
            }
        }
        if (inverse_)
            scaleScalar(off);
    }

    void
    scaleScalar(size_t off)
    {
        const Sc<float> inv(1.0f / kFftSize);
        for (int i = 0; i < kFftSize; ++i) {
            sstore(&sRe_[off + size_t(i)],
                   sload(&sRe_[off + size_t(i)]) * inv);
            sstore(&sIm_[off + size_t(i)],
                   sload(&sIm_[off + size_t(i)]) * inv);
            ctl::loop();
        }
    }

    void
    neonFft(int frame)
    {
        const size_t off = size_t(frame) * kFftSize;
        // Reorder stays scalar (gather pattern).
        for (int i = 0; i < kFftSize; ++i) {
            ctl::addr(2);
            sstore(&nRe_[off + size_t(rev_[size_t(i)])],
                   sload(&inRe_[off + size_t(i)]));
            sstore(&nIm_[off + size_t(rev_[size_t(i)])],
                   sload(&inIm_[off + size_t(i)]));
            ctl::loop();
        }
        int stage = 0;
        for (int len = 2; len <= kFftSize; len <<= 1, ++stage) {
            const int half = len / 2;
            if (len == 2) {
                // First stage (twiddle = 1): adjacent pairs, handled
                // with UZP/ZIP perfect shuffles — the register
                // transposition PFFFT uses in its pre-processing
                // (Section 6.4).
                for (float *arr : {&nRe_[off], &nIm_[off]}) {
                    for (int i = 0; i + 8 <= kFftSize; i += 8) {
                        auto v0 = vld1<128>(arr + i);
                        auto v1 = vld1<128>(arr + i + 4);
                        auto evens = vuzp1(v0, v1);
                        auto odds = vuzp2(v0, v1);
                        auto sum = vadd(evens, odds);
                        auto diff = vsub(evens, odds);
                        vst1(arr + i, vzip1(sum, diff));
                        vst1(arr + i + 4, vzip2(sum, diff));
                        ctl::loop();
                    }
                }
                continue;
            }
            if (half < 4) {
                // Remaining short spans: scalar butterflies (the PFFFT
                // scalar portion).
                for (int i = 0; i < kFftSize; i += len) {
                    for (int j = 0; j < half; ++j)
                        scalarButterfly(off, stage, i, j, half);
                }
                continue;
            }
            for (int i = 0; i < kFftSize; i += len) {
                for (int j = 0; j < half; j += 4) {
                    auto wr = vld1<128>(&tw_.wr[size_t(stage)]
                                            [size_t(j)]);
                    auto wi = vld1<128>(&tw_.wi[size_t(stage)]
                                            [size_t(j)]);
                    float *ar = &nRe_[off + size_t(i + j)];
                    float *ai = &nIm_[off + size_t(i + j)];
                    float *br = &nRe_[off + size_t(i + j + half)];
                    float *bi = &nIm_[off + size_t(i + j + half)];
                    auto xr = vld1<128>(ar);
                    auto xi = vld1<128>(ai);
                    auto yr = vld1<128>(br);
                    auto yi = vld1<128>(bi);
                    // Naive complex multiply: 6 vector API calls.
                    auto pr = vmls(vmul(yr, wr), yi, wi);
                    auto pi = vmla(vmul(yr, wi), yi, wr);
                    vst1(ar, vadd(xr, pr));
                    vst1(ai, vadd(xi, pi));
                    vst1(br, vsub(xr, pr));
                    vst1(bi, vsub(xi, pi));
                    ctl::loop();
                }
            }
        }
        if (inverse_) {
            const Sc<float> inv(1.0f / kFftSize);
            for (int i = 0; i < kFftSize; i += 4) {
                vst1(&nRe_[off + size_t(i)],
                     vmul_n(vld1<128>(&nRe_[off + size_t(i)]), inv));
                vst1(&nIm_[off + size_t(i)],
                     vmul_n(vld1<128>(&nIm_[off + size_t(i)]), inv));
                ctl::loop();
            }
        }
    }

    void
    scalarButterfly(size_t off, int stage, int i, int j, int half)
    {
        Sc<float> wr = sload(&tw_.wr[size_t(stage)][size_t(j)]);
        Sc<float> wi = sload(&tw_.wi[size_t(stage)][size_t(j)]);
        float *ar = &nRe_[off + size_t(i + j)];
        float *ai = &nIm_[off + size_t(i + j)];
        float *br = &nRe_[off + size_t(i + j + half)];
        float *bi = &nIm_[off + size_t(i + j + half)];
        Sc<float> xr = sload(ar), xi = sload(ai);
        Sc<float> yr = sload(br), yi = sload(bi);
        Sc<float> pr = yr * wr - yi * wi;
        Sc<float> pi = yr * wi + yi * wr;
        sstore(ar, xr + pr);
        sstore(ai, xi + pi);
        sstore(br, xr - pr);
        sstore(bi, xi - pi);
        ctl::loop();
    }

    bool inverse_;
    Twiddles tw_;
    int frames_;
    std::vector<int> rev_;
    std::vector<float> inRe_, inIm_, sRe_, sIm_, nRe_, nIm_;
};

} // namespace

class FftForward : public FftKernel
{
  public:
    explicit FftForward(const Options &opts)
        : FftKernel(opts, 0x0f01, false)
    {
    }
};

class FftInverse : public FftKernel
{
  public:
    explicit FftInverse(const Options &opts)
        : FftKernel(opts, 0x0f02, true)
    {
    }
};

// ---------------------------------------------------------------------
// zconvolve_accumulate: out += a * b (pointwise complex, split storage)
// ---------------------------------------------------------------------

class ZConvolve : public Workload
{
  public:
    explicit ZConvolve(const Options &opts)
        : n_((opts.audioSamples / 4) & ~3)
    {
        Rng rng(opts.seed ^ 0x0f03);
        aRe_ = randomFloats(rng, size_t(n_));
        aIm_ = randomFloats(rng, size_t(n_));
        bRe_ = randomFloats(rng, size_t(n_));
        bIm_ = randomFloats(rng, size_t(n_));
        accInit_ = randomFloats(rng, size_t(n_) * 2);
        sRe_.assign(accInit_.begin(), accInit_.begin() + n_);
        sIm_.assign(accInit_.begin() + n_, accInit_.end());
        nRe_ = sRe_;
        nIm_ = sIm_;
        aAutoRe_ = sRe_;
        aAutoIm_ = sIm_;
    }

    void
    runScalar() override
    {
        for (int i = 0; i < n_; ++i) {
            Sc<float> ar = sload(&aRe_[size_t(i)]);
            Sc<float> ai = sload(&aIm_[size_t(i)]);
            Sc<float> br = sload(&bRe_[size_t(i)]);
            Sc<float> bi = sload(&bIm_[size_t(i)]);
            sstore(&sRe_[size_t(i)],
                   sload(&sRe_[size_t(i)]) + (ar * br - ai * bi));
            sstore(&sIm_[size_t(i)],
                   sload(&sIm_[size_t(i)]) + (ar * bi + ai * br));
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        for (int i = 0; i + 4 <= n_; i += 4) {
            auto ar = vld1<128>(&aRe_[size_t(i)]);
            auto ai = vld1<128>(&aIm_[size_t(i)]);
            auto br = vld1<128>(&bRe_[size_t(i)]);
            auto bi = vld1<128>(&bIm_[size_t(i)]);
            auto re = vmls(vmul(ar, br), ai, bi);
            auto im = vmla(vmul(ar, bi), ai, br);
            vst1(&nRe_[size_t(i)],
                 vadd(vld1<128>(&nRe_[size_t(i)]), re));
            vst1(&nIm_[size_t(i)],
                 vadd(vld1<128>(&nIm_[size_t(i)]), im));
            ctl::loop();
        }
    }

    void
    runAuto() override
    {
        // Vectorizes, but without fusing multiply-accumulate (separate
        // mul + add/sub, no FMA contraction across statements): two more
        // vector ops per iteration than Neon (Auto < Neon).
        for (int i = 0; i + 4 <= n_; i += 4) {
            auto ar = vld1<128>(&aRe_[size_t(i)]);
            auto ai = vld1<128>(&aIm_[size_t(i)]);
            auto br = vld1<128>(&bRe_[size_t(i)]);
            auto bi = vld1<128>(&bIm_[size_t(i)]);
            auto re = vsub(vmul(ar, br), vmul(ai, bi));
            auto im = vadd(vmul(ar, bi), vmul(ai, br));
            vst1(&aAutoRe_[size_t(i)],
                 vadd(vld1<128>(&aAutoRe_[size_t(i)]), re));
            vst1(&aAutoIm_[size_t(i)],
                 vadd(vld1<128>(&aAutoIm_[size_t(i)]), im));
            ctl::loop();
        }
    }

    bool
    verify() override
    {
        return approxOutputs(sRe_, nRe_, 1e-3f) &&
               approxOutputs(sIm_, nIm_, 1e-3f);
    }
    uint64_t flops() const override { return uint64_t(n_) * 8; }

  private:
    int n_;
    std::vector<float> aRe_, aIm_, bRe_, bIm_, accInit_;
    std::vector<float> sRe_, sIm_, nRe_, nIm_, aAutoRe_, aAutoIm_;
};

// ---------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------

SWAN_REGISTER_LIBRARY((core::LibraryUsage{
    "PFFFT", "PF", Domain::AudioProcessing,
    true, true, true, false, 5.6, 1.3}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"PFFFT", "PF", "fft_forward",
                     Domain::AudioProcessing,
                     Pattern::Transpose | Pattern::VectorApi |
                         Pattern::RandomAccess,
                     autovec::Verdict{false,
                                      autovec::Fail::IndirectMemory |
                                          autovec::Fail::OtherLegality},
                     false, 0},
    [](const Options &o) { return std::make_unique<FftForward>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"PFFFT", "PF", "fft_inverse",
                     Domain::AudioProcessing,
                     Pattern::Transpose | Pattern::VectorApi |
                         Pattern::RandomAccess,
                     autovec::Verdict{false,
                                      autovec::Fail::IndirectMemory |
                                          autovec::Fail::OtherLegality},
                     false, 0},
    [](const Options &o) { return std::make_unique<FftInverse>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"PFFFT", "PF", "zconvolve_accumulate",
                     Domain::AudioProcessing,
                     uint32_t(Pattern::VectorApi),
                     autovec::Verdict{true, 0}, false, 0},
    [](const Options &o) { return std::make_unique<ZConvolve>(o); }}));

} // namespace swan::workloads::pffft
