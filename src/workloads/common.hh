/**
 * @file
 * Shared helpers for the workload libraries: deterministic input
 * generation (the paper generates random inputs sized per Section 4.1) and
 * output comparison utilities used by Workload::verify().
 */

#ifndef SWAN_WORKLOADS_COMMON_HH
#define SWAN_WORKLOADS_COMMON_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/kernel.hh"
#include "core/options.hh"
#include "core/registry.hh"
#include "simd/simd.hh"

namespace swan::workloads
{

/** SplitMix64-based deterministic RNG for input generation. */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull)
    {
    }

    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    uint32_t u32() { return uint32_t(next()); }
    uint8_t u8() { return uint8_t(next()); }

    /** Uniform in [lo, hi]. */
    int
    range(int lo, int hi)
    {
        return lo + int(next() % uint64_t(hi - lo + 1));
    }

    /** Uniform float in [lo, hi). */
    float
    f32(float lo = -1.0f, float hi = 1.0f)
    {
        const double u = double(next() >> 11) / double(1ull << 53);
        return lo + float(u) * (hi - lo);
    }

  private:
    uint64_t state_;
};

/** Fill a byte/int vector with random data. */
template <typename T>
std::vector<T>
randomInts(Rng &rng, size_t n)
{
    std::vector<T> v(n);
    for (auto &x : v)
        x = T(rng.next());
    return v;
}

/** Fill a float vector with uniform values. */
inline std::vector<float>
randomFloats(Rng &rng, size_t n, float lo = -1.0f, float hi = 1.0f)
{
    std::vector<float> v(n);
    for (auto &x : v)
        x = rng.f32(lo, hi);
    return v;
}

/** Exact comparison of integer outputs. */
template <typename T>
bool
equalOutputs(const std::vector<T> &a, const std::vector<T> &b)
{
    return a == b;
}

/** Relative/absolute tolerance comparison for float outputs. */
inline bool
approxOutputs(const std::vector<float> &a, const std::vector<float> &b,
              float tol = 1e-4f)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        const float diff = std::fabs(a[i] - b[i]);
        const float mag = std::max(std::fabs(a[i]), std::fabs(b[i]));
        if (diff > tol * std::max(1.0f, mag))
            return false;
    }
    return true;
}

} // namespace swan::workloads

#endif // SWAN_WORKLOADS_COMMON_HH
