/**
 * @file
 * libopus workloads (symbol LO, Audio Processing). Opus/SILK/CELT coder
 * kernels operating on audio frames (Section 3.2): the LPC synthesis
 * filter and ARMA biquad (recurrent filters: the serial dependence keeps
 * Neon gains modest, matching the paper's LO speedup of ~2.2x), pitch
 * autocorrelation (float; one of the eight Figure-5 wider-register
 * kernels), the CELT fixed-point frequency autocorrelation, and the CELT
 * inner product. LO mixes data types heavily, which is why the paper
 * reports it as the heaviest user of V-Misc register-manipulation
 * instructions.
 */

#include "workloads/common.hh"

namespace swan::workloads::libopus
{

using namespace swan::simd;
using core::Domain;
using core::Options;
using core::Pattern;
using core::Workload;

constexpr int kOrder = 16; //!< LPC order

// ---------------------------------------------------------------------
// lpc_filter: y[n] = sat16(x[n] + (sum_k a[k] * y[n-k]) >> 12)
// ---------------------------------------------------------------------

class LpcFilter : public Workload
{
  public:
    explicit LpcFilter(const Options &opts) : n_(opts.audioSamples)
    {
        Rng rng(opts.seed ^ 0x0a01);
        x_.resize(size_t(n_));
        for (auto &v : x_)
            v = int16_t(rng.range(-8192, 8191));
        for (auto &c : coeff_)
            c = int16_t(rng.range(-255, 255));
        outScalar_.assign(size_t(n_) + kOrder, 0);
        outNeon_.assign(size_t(n_) + kOrder, 1);
    }

    void
    runScalar() override
    {
        int16_t *y = outScalar_.data() + kOrder;
        for (int i = 0; i < kOrder; ++i)
            outScalar_[size_t(i)] = 0;
        for (int n = 0; n < n_; ++n) {
            Sc<int32_t> acc(0);
            for (int k = 0; k < kOrder; ++k) {
                Sc<int32_t> h = sload(y + n - 1 - k).to<int32_t>();
                acc = smadd(h, Sc<int32_t>(int32_t(coeff_[size_t(k)])),
                            acc);
                ctl::loop();
            }
            Sc<int32_t> v = sload(&x_[size_t(n)]).to<int32_t>() +
                            (acc >> 12);
            v = smax(smin(v, Sc<int32_t>(32767)), Sc<int32_t>(-32768));
            sstore(y + n, v.to<int16_t>());
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        int16_t *y = outNeon_.data() + kOrder;
        for (int i = 0; i < kOrder; ++i)
            outNeon_[size_t(i)] = 0;
        // Coefficients reversed so lanes line up with history order.
        int16_t rev[kOrder];
        for (int k = 0; k < kOrder; ++k)
            rev[size_t(k)] = coeff_[size_t(kOrder - 1 - k)];
        auto c0 = vld1<128>(rev);          // taps 16..9 (s16x8)
        auto c1 = vld1<128>(rev + 8);      // taps 8..1
        for (int n = 0; n < n_; ++n) {
            // History y[n-16..n-1] as two vectors (serial recurrence:
            // each output feeds the next iteration's history load).
            auto h0 = vld1<128>(y + n - kOrder);
            auto h1 = vld1<128>(y + n - kOrder + 8);
            auto acc = vmull_lo(h0, c0);
            acc = vmlal_hi(acc, h0, c0);
            acc = vmlal_lo(acc, h1, c1);
            acc = vmlal_hi(acc, h1, c1);
            Sc<int32_t> dot = vaddv(acc);
            Sc<int32_t> v = sload(&x_[size_t(n)]).to<int32_t>() +
                            (dot >> 12);
            v = smax(smin(v, Sc<int32_t>(32767)), Sc<int32_t>(-32768));
            sstore(y + n, v.to<int16_t>());
            ctl::loop();
        }
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    int n_;
    std::vector<int16_t> x_, outScalar_, outNeon_;
    std::array<int16_t, kOrder> coeff_{};
};

// ---------------------------------------------------------------------
// arma_biquad: 4-channel biquad y = b0 x + b1 x1 + b2 x2 - a1 y1 - a2 y2
// ---------------------------------------------------------------------

class ArmaBiquad : public Workload
{
  public:
    explicit ArmaBiquad(const Options &opts) : frames_(opts.audioSamples)
    {
        Rng rng(opts.seed ^ 0x0a02);
        x_ = randomFloats(rng, size_t(frames_) * 4);
        outScalar_.assign(x_.size(), 0.0f);
        outNeon_.assign(x_.size(), -7.0f);
        outAuto_.assign(x_.size(), -7.0f);
    }

    void
    runScalar() override
    {
        for (int ch = 0; ch < 4; ++ch) {
            Sc<float> x1(0.0f), x2(0.0f), y1(0.0f), y2(0.0f);
            for (int n = 0; n < frames_; ++n) {
                Sc<float> x = sload(&x_[size_t(4 * n + ch)]);
                Sc<float> y = smadd(Sc<float>(kB0), x,
                                    smadd(Sc<float>(kB1), x1,
                                          smadd(Sc<float>(kB2), x2,
                                                smadd(Sc<float>(-kA1), y1,
                                                      Sc<float>(-kA2) *
                                                          y2))));
                sstore(&outScalar_[size_t(4 * n + ch)], y);
                x2 = x1;
                x1 = x;
                y2 = y1;
                y1 = y;
                ctl::loop();
            }
        }
    }

    void
    runNeon(int) override
    {
        // All 4 channels in one vector (inter-channel parallelism).
        auto x1 = vdup<float, 128>(0.0f), x2 = x1, y1 = x1, y2 = x1;
        const Sc<float> b0(kB0), b1(kB1), b2(kB2), a1(-kA1), a2(-kA2);
        for (int n = 0; n < frames_; ++n) {
            auto x = vld1<128>(&x_[size_t(4 * n)]);
            auto acc = vmul_n(y2, a2);
            acc = vmla_n(acc, y1, a1);
            acc = vmla_n(acc, x2, b2);
            acc = vmla_n(acc, x1, b1);
            acc = vmla_n(acc, x, b0);
            vst1(&outNeon_[size_t(4 * n)], acc);
            x2 = x1;
            x1 = x;
            y2 = y1;
            y1 = acc;
            ctl::loop();
        }
    }

    void
    runAuto() override
    {
        // The SLP vectorizer packs the 4 channels but scalarizes the
        // loads/stores (lane inserts/extracts each sample); the packing
        // overhead makes Auto slower than Scalar (the second Auto <
        // Scalar kernel of Table 4).
        auto x1 = vdup<float, 128>(0.0f), x2 = x1, y1 = x1, y2 = x1;
        const Sc<float> b0(kB0), b1(kB1), b2(kB2), a1(-kA1), a2(-kA2);
        for (int n = 0; n < frames_; ++n) {
            auto x = vdup<float, 128>(0.0f);
            for (int ch = 0; ch < 4; ++ch)
                x = vset_lane(x, ch, sload(&x_[size_t(4 * n + ch)]));
            auto acc = vmul_n(y2, a2);
            acc = vmla_n(acc, y1, a1);
            acc = vmla_n(acc, x2, b2);
            acc = vmla_n(acc, x1, b1);
            acc = vmla_n(acc, x, b0);
            for (int ch = 0; ch < 4; ++ch)
                sstore(&outAuto_[size_t(4 * n + ch)],
                       vget_lane(acc, ch));
            x2 = x1;
            x1 = x;
            y2 = y1;
            y1 = acc;
            ctl::loop();
        }
    }

    bool
    verify() override
    {
        return approxOutputs(outScalar_, outNeon_, 1e-3f);
    }

  private:
    static constexpr float kB0 = 0.2929f, kB1 = 0.5858f, kB2 = 0.2929f;
    static constexpr float kA1 = -0.0f, kA2 = 0.1716f;
    int frames_;
    std::vector<float> x_, outScalar_, outNeon_, outAuto_;
};

// ---------------------------------------------------------------------
// pitch_autocorr: r[lag] = sum_n x[n] * x[n-lag], float, lags 0..15
// ---------------------------------------------------------------------

class PitchAutocorr : public Workload
{
  public:
    explicit PitchAutocorr(const Options &opts) : n_(opts.audioSamples)
    {
        Rng rng(opts.seed ^ 0x0a03);
        x_ = randomFloats(rng, size_t(n_) + kOrder);
        outScalar_.assign(kOrder, 0.0f);
        outNeon_.assign(kOrder, -1.0f);
    }

    void
    runScalar() override
    {
        const float *x = x_.data() + kOrder;
        for (int lag = 0; lag < kOrder; ++lag) {
            Sc<float> acc(0.0f);
            for (int n = 0; n < n_; ++n) {
                acc = smadd(sload(x + n), sload(x + n - lag), acc);
                ctl::loop();
            }
            sstore(&outScalar_[size_t(lag)], acc);
            ctl::loop();
        }
    }

    void
    runNeon(int vec_bits) override
    {
        switch (vec_bits) {
          case 256: neonImpl<256>(); break;
          case 512: neonImpl<512>(); break;
          case 1024: neonImpl<1024>(); break;
          default: neonImpl<128>(); break;
        }
    }

    bool
    verify() override
    {
        return approxOutputs(outScalar_, outNeon_, 2e-2f);
    }
    uint64_t flops() const override
    {
        return uint64_t(n_) * kOrder * 2;
    }

  private:
    template <int B>
    void
    neonImpl()
    {
        using VF = Vec<float, B>;
        constexpr int kLanes = VF::kLanes;
        const float *x = x_.data() + kOrder;
        for (int lag = 0; lag < kOrder; ++lag) {
            // Two independent accumulators hide the FMA latency.
            auto acc0 = vdup<float, B>(0.0f);
            auto acc1 = acc0;
            int n = 0;
            for (; n + 2 * kLanes <= n_; n += 2 * kLanes) {
                auto a0 = vld1<B>(x + n);
                auto b0 = vld1<B>(x + n - lag);
                auto a1 = vld1<B>(x + n + kLanes);
                auto b1 = vld1<B>(x + n + kLanes - lag);
                acc0 = vmla(acc0, a0, b0);
                acc1 = vmla(acc1, a1, b1);
                ctl::loop();
            }
            Sc<float> acc = reduceAll(vadd(acc0, acc1));
            for (; n < n_; ++n) {
                acc = smadd(sload(x + n), sload(x + n - lag), acc);
                ctl::loop();
            }
            sstore(&outNeon_[size_t(lag)], acc);
            ctl::loop();
        }
    }

    static Sc<float>
    reduceAll(const Vec<float, 128> &v)
    {
        return vaddv(v);
    }
    template <int B>
    static Sc<float>
    reduceAll(const Vec<float, B> &v)
    {
        return reduceAll(vadd_halves(v));
    }

    int n_;
    std::vector<float> x_, outScalar_, outNeon_;
};

// ---------------------------------------------------------------------
// celt_freq_autocorr: fixed-point s16 autocorrelation with shift
// ---------------------------------------------------------------------

class CeltFreqAutocorr : public Workload
{
  public:
    explicit CeltFreqAutocorr(const Options &opts)
        : n_(std::min(opts.audioSamples, 2048))
    {
        Rng rng(opts.seed ^ 0x0a04);
        x_.resize(size_t(n_) + kOrder);
        for (auto &v : x_)
            v = int16_t(rng.range(-181, 181));
        outScalar_.assign(kOrder, 0);
        outNeon_.assign(kOrder, 1);
    }

    void
    runScalar() override
    {
        const int16_t *x = x_.data() + kOrder;
        for (int lag = 0; lag < kOrder; ++lag) {
            Sc<int32_t> acc(0);
            for (int n = 0; n < n_; ++n) {
                Sc<int32_t> a = sload(x + n).to<int32_t>();
                Sc<int32_t> b = sload(x + n - lag).to<int32_t>();
                acc = smadd(a, b, acc);
                ctl::loop();
            }
            sstore(&outScalar_[size_t(lag)], acc >> 6);
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        const int16_t *x = x_.data() + kOrder;
        for (int lag = 0; lag < kOrder; ++lag) {
            auto acc = vdup<int32_t, 128>(0);
            int n = 0;
            for (; n + 8 <= n_; n += 8) {
                auto a = vld1<128>(x + n);
                auto b = vld1<128>(x + n - lag);
                acc = vmlal_lo(acc, a, b);
                acc = vmlal_hi(acc, a, b);
                ctl::loop();
            }
            Sc<int32_t> dot = vaddv(acc);
            for (; n < n_; ++n) {
                Sc<int32_t> a = sload(x + n).to<int32_t>();
                Sc<int32_t> b = sload(x + n - lag).to<int32_t>();
                dot = smadd(a, b, dot);
                ctl::loop();
            }
            sstore(&outNeon_[size_t(lag)], dot >> 6);
            ctl::loop();
        }
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    int n_;
    std::vector<int16_t> x_;
    std::vector<int32_t> outScalar_, outNeon_;
};

// ---------------------------------------------------------------------
// inner_product: s32 dot product of two s16 streams
// ---------------------------------------------------------------------

class InnerProduct : public Workload
{
  public:
    explicit InnerProduct(const Options &opts)
        : n_(std::min(opts.audioSamples, 4096))
    {
        Rng rng(opts.seed ^ 0x0a05);
        a_.resize(size_t(n_));
        b_.resize(size_t(n_));
        for (int i = 0; i < n_; ++i) {
            a_[size_t(i)] = int16_t(rng.range(-181, 181));
            b_[size_t(i)] = int16_t(rng.range(-181, 181));
        }
    }

    void
    runScalar() override
    {
        Sc<int32_t> acc(0);
        for (int i = 0; i < n_; ++i) {
            Sc<int32_t> x = sload(&a_[size_t(i)]).to<int32_t>();
            Sc<int32_t> y = sload(&b_[size_t(i)]).to<int32_t>();
            acc = smadd(x, y, acc);
            ctl::loop();
        }
        outScalar_ = acc.v;
    }

    void
    runNeon(int) override
    {
        auto acc0 = vdup<int32_t, 128>(0);
        auto acc1 = acc0;
        int i = 0;
        for (; i + 16 <= n_; i += 16) {
            auto x0 = vld1<128>(&a_[size_t(i)]);
            auto y0 = vld1<128>(&b_[size_t(i)]);
            auto x1 = vld1<128>(&a_[size_t(i) + 8]);
            auto y1 = vld1<128>(&b_[size_t(i) + 8]);
            acc0 = vmlal_lo(acc0, x0, y0);
            acc0 = vmlal_hi(acc0, x0, y0);
            acc1 = vmlal_lo(acc1, x1, y1);
            acc1 = vmlal_hi(acc1, x1, y1);
            ctl::loop();
        }
        Sc<int32_t> dot = vaddv(vadd(acc0, acc1));
        for (; i < n_; ++i) {
            Sc<int32_t> x = sload(&a_[size_t(i)]).to<int32_t>();
            Sc<int32_t> y = sload(&b_[size_t(i)]).to<int32_t>();
            dot = smadd(x, y, dot);
            ctl::loop();
        }
        outNeon_ = dot.v;
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    int n_;
    std::vector<int16_t> a_, b_;
    int32_t outScalar_ = 0, outNeon_ = 1;
};

// ---------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------

SWAN_REGISTER_LIBRARY((core::LibraryUsage{
    "libopus", "LO", Domain::AudioProcessing,
    true, true, true, false, 0.0, 0.0}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libopus", "LO", "lpc_filter",
                     Domain::AudioProcessing,
                     uint32_t(Pattern::Reduction),
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::ComplexPhi)},
                     false, 0},
    [](const Options &o) { return std::make_unique<LpcFilter>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libopus", "LO", "arma_biquad",
                     Domain::AudioProcessing, 0,
                     autovec::Verdict{false,
                                      autovec::Fail::ComplexPhi |
                                          autovec::Fail::OtherLegality},
                     false, 0},
    [](const Options &o) { return std::make_unique<ArmaBiquad>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libopus", "LO", "pitch_autocorr",
                     Domain::AudioProcessing,
                     uint32_t(Pattern::Reduction),
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::OtherLegality)},
                     /*widerWidths=*/true, 0},
    [](const Options &o) {
        return std::make_unique<PitchAutocorr>(o);
    }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libopus", "LO", "celt_freq_autocorr",
                     Domain::AudioProcessing,
                     uint32_t(Pattern::Reduction),
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::CostModel)},
                     false, 0},
    [](const Options &o) {
        return std::make_unique<CeltFreqAutocorr>(o);
    }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libopus", "LO", "inner_product",
                     Domain::AudioProcessing,
                     uint32_t(Pattern::Reduction),
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::OtherLegality)},
                     false, 0},
    [](const Options &o) {
        return std::make_unique<InnerProduct>(o);
    }}));

} // namespace swan::workloads::libopus
