/**
 * @file
 * Section 6.2 look-up-table kernels with future-ISA gather intrinsics.
 *
 * The paper observes that all seven random-access kernels in the suite
 * gather values from look-up tables, that Neon has no general-purpose
 * intrinsic for this (TBL tops out at 64 byte-entries), and that the
 * workaround — export each key lane to a scalar register, load from the
 * table, re-insert the value — is so costly that four kernels abandon
 * their look-up tables and DES abandons vectorization entirely (11%
 * slower than scalar, 73% of instructions spent on look-up traffic).
 * Section 9 names SVE/RVV gathers as the fix; these two workloads
 * measure exactly that fix.
 */

#include "workloads/ext/ext.hh"

#include "workloads/common.hh"

namespace swan::workloads::ext
{

using namespace swan::simd;
using core::Options;
using core::Workload;

namespace
{

// ---------------------------------------------------------------------
// LU_TBL: vals[i] = table[keys[i]] (the paper's Section 6.2 listing).
// ---------------------------------------------------------------------

class LutTransform : public Workload
{
  public:
    static constexpr uint32_t kTableSize = 1024; // > 64: TBL inapplicable

    LutTransform(const Options &opts, LutImpl impl) : impl_(impl)
    {
        Rng rng(opts.seed ^ 0x107b1ull);
        table_ = randomInts<uint32_t>(rng, kTableSize);
        const size_t n = size_t(opts.bufferBytes) / sizeof(uint32_t);
        keys_.resize(n);
        for (auto &k : keys_)
            k = rng.u32() % kTableSize;
        outScalar_.assign(n, 0);
        outNeon_.assign(n, 1);
    }

    void
    runScalar() override
    {
        for (size_t i = 0; i < keys_.size(); ++i) {
            Sc<uint32_t> key = sload(&keys_[i]);
            Sc<uint32_t> val = sload(&table_[key.v]);
            sstore(&outScalar_[i], val);
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        constexpr int kL = Vec<uint32_t, 128>::kLanes;
        for (size_t i = 0; i + kL <= keys_.size(); i += kL) {
            auto keys = vld1<128>(&keys_[i]);
            Vec<uint32_t, 128> vals;
            if (impl_ == LutImpl::Gather) {
                vals = vgather(table_.data(), keys);
            } else {
                vals = vdup<uint32_t, 128>(0u);
                for (int lane = 0; lane < kL; ++lane) {
                    Sc<uint32_t> k = vget_lane(keys, lane);
                    Sc<uint32_t> v = sload(&table_[k.v]);
                    vals = vset_lane(vals, lane, v);
                }
            }
            vst1(&outNeon_[i], vals);
            ctl::loop();
        }
    }

    bool verify() override { return outScalar_ == outNeon_; }
    uint64_t flops() const override { return keys_.size(); }

  private:
    LutImpl impl_;
    std::vector<uint32_t> table_;
    std::vector<uint32_t> keys_;
    std::vector<uint32_t> outScalar_, outNeon_;
};

// ---------------------------------------------------------------------
// DES-like Feistel cipher with gathered S-boxes.
// ---------------------------------------------------------------------

/**
 * Mirrors the structure of the suite's BS/des_lut kernel (16 Feistel
 * rounds, eight 4-bit S-boxes per round) with 32-bit S-box entries so
 * the gather index and data lanes line up (RVV vluxei32 semantics).
 */
class DesGather : public Workload
{
  public:
    DesGather(const Options &opts, LutImpl impl) : impl_(impl)
    {
        Rng rng(opts.seed ^ 0xde59a7ull);
        data_ = randomInts<uint8_t>(rng, size_t(opts.bufferBytes) & ~7ull);
        for (auto &box : sbox_)
            for (auto &e : box)
                e = uint32_t(rng.range(0, 15));
        for (auto &k : keys_)
            k = rng.u32();
        outScalar_.assign(data_.size() / 8, 0);
        outNeon_.assign(data_.size() / 8, 1);
    }

    void
    runScalar() override
    {
        for (size_t b = 0; b * 8 + 8 <= data_.size(); ++b) {
            uint32_t halves[2];
            std::memcpy(halves, &data_[b * 8], 8);
            uint64_t id =
                emitMem(InstrClass::SLoad, &data_[b * 8], 8, Lat::load);
            Sc<uint32_t> l(halves[0], id), r(halves[1], id);
            for (int round = 0; round < 16; ++round) {
                Sc<uint32_t> f = feistelScalar(r, keys_[size_t(round)]);
                Sc<uint32_t> nl = r;
                r = l ^ f;
                l = nl;
                ctl::loop();
            }
            emitMem(InstrClass::SStore, &outScalar_[b], 8, Lat::store,
                    l.src ? l.src : r.src);
            outScalar_[b] = (uint64_t(l.v) << 32) | r.v;
        }
    }

    void
    runNeon(int) override
    {
        constexpr int kL = Vec<uint32_t, 128>::kLanes; // 4 blocks/vector
        const size_t nblk = data_.size() / 8;
        for (size_t b = 0; b + kL <= nblk; b += kL) {
            auto l = vdup<uint32_t, 128>(0u);
            auto r = vdup<uint32_t, 128>(0u);
            for (int j = 0; j < kL; ++j) {
                uint32_t halves[2];
                std::memcpy(halves, &data_[(b + size_t(j)) * 8], 8);
                uint64_t id = emitMem(InstrClass::SLoad,
                                      &data_[(b + size_t(j)) * 8], 8,
                                      Lat::load);
                l = vset_lane(l, j, Sc<uint32_t>(halves[0], id));
                r = vset_lane(r, j, Sc<uint32_t>(halves[1], id));
            }
            for (int round = 0; round < 16; ++round) {
                auto f = feistelVec(r, keys_[size_t(round)]);
                auto nl = r;
                r = veor(l, f);
                l = nl;
                ctl::loop();
            }
            for (int j = 0; j < kL; ++j) {
                Sc<uint32_t> lv = vget_lane(l, j);
                Sc<uint32_t> rv = vget_lane(r, j);
                emitMem(InstrClass::SStore, &outNeon_[b + size_t(j)], 8,
                        Lat::store, lv.src);
                outNeon_[b + size_t(j)] = (uint64_t(lv.v) << 32) | rv.v;
            }
            ctl::loop();
        }
    }

    bool verify() override { return outScalar_ == outNeon_; }
    uint64_t flops() const override
    {
        return (data_.size() / 8) * 16 * 8;
    }

  private:
    Sc<uint32_t>
    feistelScalar(Sc<uint32_t> r, uint32_t key)
    {
        Sc<uint32_t> x = r ^ Sc<uint32_t>(key);
        Sc<uint32_t> out(0u);
        for (int s = 0; s < 8; ++s) {
            Sc<uint32_t> chunk = (x >> (4 * s)) & Sc<uint32_t>(0xfu);
            Sc<uint32_t> v = sload(&sbox_[size_t(s)][chunk.v]);
            out = out | (v << (4 * s));
        }
        return out;
    }

    Vec<uint32_t, 128>
    feistelVec(const Vec<uint32_t, 128> &r, uint32_t key)
    {
        constexpr int kL = Vec<uint32_t, 128>::kLanes;
        auto x = veor(r, vdup<uint32_t, 128>(key));
        auto out = vdup<uint32_t, 128>(0u);
        for (int s = 0; s < 8; ++s) {
            auto chunk = vand(vshr(x, 4 * s), vdup<uint32_t, 128>(0xfu));
            Vec<uint32_t, 128> looked;
            if (impl_ == LutImpl::Gather) {
                looked = vgather(sbox_[size_t(s)].data(), chunk);
            } else {
                looked = vdup<uint32_t, 128>(0u);
                for (int lane = 0; lane < kL; ++lane) {
                    Sc<uint32_t> c = vget_lane(chunk, lane);
                    Sc<uint32_t> t = sload(&sbox_[size_t(s)][c.v]);
                    looked = vset_lane(looked, lane, t);
                }
            }
            out = vorr(out, vshl(looked, 4 * s));
        }
        return out;
    }

    LutImpl impl_;
    std::vector<uint8_t> data_;
    std::array<std::array<uint32_t, 16>, 8> sbox_{};
    std::array<uint32_t, 16> keys_{};
    std::vector<uint64_t> outScalar_, outNeon_;
};

} // namespace

std::unique_ptr<Workload>
makeLutTransform(const Options &opts, LutImpl impl)
{
    return std::make_unique<LutTransform>(opts, impl);
}

std::unique_ptr<Workload>
makeDesGather(const Options &opts, LutImpl impl)
{
    return std::make_unique<DesGather>(opts, impl);
}

} // namespace swan::workloads::ext
