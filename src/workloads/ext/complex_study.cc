/**
 * @file
 * Section 6.5 complex multiply-accumulate study. PFFFT's portable vector
 * API restricts its frequency-domain convolution (zconvolve) to basic
 * intrinsics: the paper counts six instructions and eight Cortex-A76
 * cycles per complex multiplication, four instructions and five cycles
 * with Armv8.2 fused multiply-add/subtract, and a two-cycle FCMLA on
 * Armv8.3 (Cortex-A710) that no portable API exposes. This workload
 * implements the same ab += a*b spectrum convolution on interleaved
 * (re, im) data — the layout audio APIs hand over — with each of the
 * three instruction budgets:
 *
 *  - Portable: TRN1/TRN2/REV64/EOR to split and sign-flip the operands,
 *    then plain multiplies and adds (eight vector ops per register of
 *    complex pairs).
 *  - Fmla: the same permute preamble, but fused multiply-adds into the
 *    accumulator (six ops).
 *  - Fcmla: FCMLA #0 + FCMLA #90 — two ops, no permutes.
 */

#include "workloads/ext/ext.hh"

#include "workloads/common.hh"

namespace swan::workloads::ext
{

using namespace swan::simd;
using core::Options;
using core::Workload;

namespace
{

class ZConvolve : public Workload
{
  public:
    ZConvolve(const Options &opts, ComplexImpl impl) : impl_(impl)
    {
        Rng rng(opts.seed ^ 0x2c07ull);
        // One complex bin per audio sample; interleaved (re, im).
        n_ = size_t(std::max(opts.audioSamples, 64)) & ~7ull;
        a_ = randomFloats(rng, 2 * n_);
        b_ = randomFloats(rng, 2 * n_);
        acc0_ = randomFloats(rng, 2 * n_);
        // Sign mask flipping even (real) lanes: (-0.0f, +0.0f, ...).
        for (size_t i = 0; i < kL; i += 2) {
            signMask_[i] = 0x80000000u;
            signMask_[i + 1] = 0u;
        }
        outScalar_.assign(2 * n_, 0.0f);
        outNeon_.assign(2 * n_, 1.0f);
    }

    void
    runScalar() override
    {
        for (size_t i = 0; i < n_; ++i) {
            Sc<float> ar = sload(&a_[2 * i]), ai = sload(&a_[2 * i + 1]);
            Sc<float> br = sload(&b_[2 * i]), bi = sload(&b_[2 * i + 1]);
            Sc<float> re = sload(&acc0_[2 * i]);
            Sc<float> im = sload(&acc0_[2 * i + 1]);
            re = re + ar * br - ai * bi;
            im = im + ar * bi + ai * br;
            sstore(&outScalar_[2 * i], re);
            sstore(&outScalar_[2 * i + 1], im);
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        switch (impl_) {
          case ComplexImpl::Portable:
            runPermuted(/*fused=*/false);
            break;
          case ComplexImpl::Fmla:
            runPermuted(/*fused=*/true);
            break;
          case ComplexImpl::Fcmla:
            runFcmla();
            break;
        }
    }

    bool
    verify() override
    {
        return approxOutputs(outScalar_, outNeon_);
    }

    uint64_t flops() const override { return 8 * n_; }

  private:
    static constexpr size_t kL = size_t(Vec<float, 128>::kLanes);

    /**
     * Interleaved complex MAC from basic intrinsics. Per register of
     * kL/2 complex pairs: TRN1, TRN2, REV64, EOR + either
     * MUL/MUL/ADD/ADD (portable, 8 ops) or FMLA/FMLA (fused, 6 ops).
     */
    void
    runPermuted(bool fused)
    {
        const auto mask = vld1<128>(signMask_.data());
        for (size_t i = 0; 2 * i + kL <= 2 * n_; i += kL / 2) {
            auto av = vld1<128>(&a_[2 * i]);
            auto bv = vld1<128>(&b_[2 * i]);
            auto acc = vld1<128>(&acc0_[2 * i]);
            auto bre = vtrn1(bv, bv);           // (br, br) per pair
            auto bim = vtrn2(bv, bv);           // (bi, bi)
            auto asw = vrev64(vreinterpret<uint32_t>(av));
            auto aswf = vreinterpret<float>(asw); // (ai, ar)
            // Sign-flip even lanes of bim: (-bi, bi).
            auto bims = vreinterpret<float>(
                veor(vreinterpret<uint32_t>(bim), mask));
            if (fused) {
                acc = vmla(acc, av, bre);       // += (ar*br, ai*br)
                acc = vmla(acc, aswf, bims);    // += (-ai*bi, ar*bi)
            } else {
                auto u = vmul(av, bre);
                auto w = vmul(aswf, bims);
                acc = vadd(acc, vadd(u, w));
            }
            vst1(&outNeon_[2 * i], acc);
            ctl::loop();
        }
    }

    /** Armv8.3: two FCMLA rotations, no permutes, no sign tricks. */
    void
    runFcmla()
    {
        for (size_t i = 0; 2 * i + kL <= 2 * n_; i += kL / 2) {
            auto av = vld1<128>(&a_[2 * i]);
            auto bv = vld1<128>(&b_[2 * i]);
            auto acc = vld1<128>(&acc0_[2 * i]);
            acc = vcmla<0>(acc, av, bv);
            acc = vcmla<90>(acc, av, bv);
            vst1(&outNeon_[2 * i], acc);
            ctl::loop();
        }
    }

    ComplexImpl impl_;
    size_t n_ = 0;
    std::vector<float> a_, b_, acc0_;
    std::array<uint32_t, kL> signMask_{};
    std::vector<float> outScalar_, outNeon_;
};

} // namespace

std::unique_ptr<Workload>
makeZConvolve(const Options &opts, ComplexImpl impl)
{
    return std::make_unique<ZConvolve>(opts, impl);
}

} // namespace swan::workloads::ext
