/**
 * @file
 * Section 5.2 uncountable-loop study. Loops whose trip count the
 * compiler cannot establish (strlen-style scans with a data-dependent
 * break) block auto-vectorization in eight Swan kernels; the hand-
 * written Neon workaround loads full vectors — legal only when the
 * buffer is padded or page-guarded — reduces to detect a match, and
 * exports lanes one by one to locate it. SVE's first-faulting loads
 * (LDFF1 + FFR) vectorize the same loop safely and locate matches with
 * one predicate instruction. This workload scans a batch of NUL-
 * terminated strings with both strategies.
 */

#include "workloads/ext/ext.hh"

#include "workloads/common.hh"

namespace swan::workloads::ext
{

using namespace swan::simd;
using core::Options;
using core::Workload;

namespace
{

class StrlenScan : public Workload
{
  public:
    StrlenScan(const Options &opts, ScanImpl impl) : impl_(impl)
    {
        Rng rng(opts.seed ^ 0xff57ull);
        // A buffer of strings, lengths 8..120, plus zero padding so the
        // Neon over-read stays in bounds (SVE needs no padding; the
        // fault limit below is the true data end).
        const size_t total = size_t(opts.bufferBytes);
        data_.reserve(total + 16);
        while (data_.size() + 130 < total) {
            const int len = rng.range(8, 120);
            for (int i = 0; i < len; ++i)
                data_.push_back(uint8_t(rng.range(1, 255)));
            data_.push_back(0);
        }
        dataEnd_ = data_.size();
        data_.resize(data_.size() + 16, 0); // over-read pad
        outScalar_ = 0;
        outNeon_ = 1;
    }

    void
    runScalar() override
    {
        // The uncountable loop: while (*p) ++p;
        uint64_t sum = 0;
        size_t s = 0;
        while (s < dataEnd_) {
            size_t i = s;
            for (;;) {
                Sc<uint8_t> c = sload(&data_[i]);
                if (c == Sc<uint8_t>(0u))
                    break;
                ++i;
                ctl::loop();
            }
            sum += i - s;
            s = i + 1;
            ctl::loop();
        }
        outScalar_ = sum;
    }

    void
    runNeon(int) override
    {
        outNeon_ = impl_ == ScanImpl::SveFirstFault ? sveScan()
                                                    : neonScan();
    }

    bool verify() override { return outScalar_ == outNeon_; }
    uint64_t flops() const override { return dataEnd_; }

  private:
    /**
     * Arm Optimized Routines strategy: full-vector loads (over-reading
     * into the pad), MAXV reduction to detect a NUL, then a lane-export
     * scan to locate it.
     */
    uint64_t
    neonScan()
    {
        const auto zero = vdup<uint8_t, 128>(uint8_t(0));
        uint64_t sum = 0;
        size_t s = 0;
        while (s < dataEnd_) {
            size_t i = s;
            size_t term = dataEnd_;
            for (;;) {
                auto d = vld1<128>(&data_[i]); // may over-read the pad
                auto eq = vceq(d, zero);
                Sc<uint8_t> any = vmaxv(eq);
                if (any != Sc<uint8_t>(0u)) {
                    for (int j = 0; j < 16; ++j) {
                        Sc<uint8_t> lane = vget_lane(eq, j);
                        if (lane != Sc<uint8_t>(0u)) {
                            term = i + size_t(j);
                            break;
                        }
                        ctl::loop();
                    }
                    break;
                }
                i += 16;
                ctl::loop();
            }
            sum += term - s;
            s = term + 1;
            ctl::loop();
        }
        return sum;
    }

    /**
     * SVE strategy: LDFF1-governed loop bounded by the true data end
     * (no padding requirement), CMPEQ to a predicate, BRKB/CNTP-style
     * first-index extraction.
     */
    uint64_t
    sveScan()
    {
        const uint8_t *limit = data_.data() + dataEnd_ + 1;
        uint64_t sum = 0;
        size_t s = 0;
        while (s < dataEnd_) {
            size_t i = s;
            size_t term = dataEnd_;
            for (;;) {
                auto ff = vldff1<128>(&data_[i], limit);
                auto m = cmpeq_p(ff.valid, ff.data, uint8_t(0));
                if (ptest(m)) {
                    term = i + size_t(pfirstIdx(m).v);
                    break;
                }
                i += size_t(pcount(ff.valid).v); // INCP
                ctl::loop();
            }
            sum += term - s;
            s = term + 1;
            ctl::loop();
        }
        return sum;
    }

    ScanImpl impl_;
    size_t dataEnd_ = 0;
    std::vector<uint8_t> data_;
    uint64_t outScalar_ = 0, outNeon_ = 0;
};

} // namespace

std::unique_ptr<Workload>
makeStrlenScan(const Options &opts, ScanImpl impl)
{
    return std::make_unique<StrlenScan>(opts, impl);
}

} // namespace swan::workloads::ext
