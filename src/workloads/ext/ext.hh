/**
 * @file
 * Future-ISA extension studies (DESIGN.md "Extensions"; the paper's
 * Section 9 future work). Each study is a Workload whose runNeon()
 * executes a selected implementation variant, so the standard
 * core::Runner measurement flow applies unchanged:
 *
 *  - LutTransform / DesGather: the Section 6.2 look-up-table kernels
 *    re-implemented with SVE/RVV-style vgather instead of Neon's
 *    export-lane/scalar-load/re-insert sequence.
 *  - ZConvolve: PFFFT's frequency-domain complex multiply-accumulate with
 *    the three instruction budgets of Section 6.5 (portable vector API,
 *    Armv8.2 fused multiply-add/subtract, Armv8.3 FCMLA).
 *  - Deinterleave8 / ChannelExtract: stride-8 audio access, Neon
 *    VLD4+UZP composition vs an RVV-style arbitrary-stride load
 *    (Section 6.3).
 *  - AxpyTail: loop tails when the trip count is not divisible by the
 *    lane count — Neon narrower-register tails vs SVE WHILELT
 *    predication (the Section 7.1 GEMM utilization problem).
 *
 * These kernels are deliberately *not* registered in the global registry:
 * the paper's headline results cover 59 Neon kernels, and the extension
 * studies would skew the library geomeans. Benches and tests construct
 * them through the factories below.
 */

#ifndef SWAN_WORKLOADS_EXT_EXT_HH
#define SWAN_WORKLOADS_EXT_EXT_HH

#include <memory>

#include "core/kernel.hh"
#include "core/options.hh"

namespace swan::workloads::ext
{

/** Vectorized look-up-table strategy (Section 6.2 / Section 9). */
enum class LutImpl
{
    LaneExport,     //!< Neon: export lane, scalar load, re-insert
    Gather,         //!< future ISA: one indexed vector load
};

/**
 * The paper's Section 6.2 LU_TBL kernel: vals[i] = table[keys[i]] over a
 * 1024-entry 32-bit table (too large for Neon TBL registers).
 */
std::unique_ptr<core::Workload> makeLutTransform(const core::Options &,
                                                 LutImpl impl);

/**
 * DES-like Feistel cipher (the paper's excluded BS kernel) with the
 * eight S-box look-ups per round implemented per @p impl.
 */
std::unique_ptr<core::Workload> makeDesGather(const core::Options &,
                                              LutImpl impl);

/** Complex multiply-accumulate instruction budget (Section 6.5). */
enum class ComplexImpl
{
    Portable,   //!< basic vector API only: mul/sub/add on split re/im
    Fmla,       //!< Armv8.2 fused multiply-add/subtract on split re/im
    Fcmla,      //!< Armv8.3 FCMLA rot0+rot90 on interleaved data
};

/**
 * PFFFT-style frequency-domain convolution ab += a*b over a complex
 * spectrum, with the complex MAC built from @p impl's instruction set.
 */
std::unique_ptr<core::Workload> makeZConvolve(const core::Options &,
                                              ComplexImpl impl);

/** Strategy for memory access with stride above Neon's maximum of 4. */
enum class StrideImpl
{
    NeonUnzip,      //!< compose VLD4 pairs + UZP stages
    StridedLoad,    //!< RVV-style single arbitrary-stride load
};

/** Fully de-interleave an 8-channel 16-bit audio stream. */
std::unique_ptr<core::Workload> makeDeinterleave8(const core::Options &,
                                                  StrideImpl impl);

/** Extract one channel of an 8-channel stream (stride-8 sparse use). */
std::unique_ptr<core::Workload> makeChannelExtract(const core::Options &,
                                                   StrideImpl impl);

/** Vectorization strategy for uncountable scan loops (Section 5.2). */
enum class ScanImpl
{
    NeonOverread,   //!< full-vector loads + reduce + lane-export locate
    SveFirstFault,  //!< LDFF1/RDFFR governed loop, no over-read
};

/**
 * Batched strlen over a buffer of NUL-terminated strings — the
 * uncountable-loop pattern that blocks auto-vectorization in eight
 * kernels (Section 5.2, Example 1).
 */
std::unique_ptr<core::Workload> makeStrlenScan(const core::Options &,
                                               ScanImpl impl);

/**
 * Target instruction set for the WebAssembly SIMD porting study (the
 * paper's Section 9 "Vectorized Mobile Web Applications" future work).
 */
enum class WasmIsa
{
    NeonNative,     //!< full Arm Neon (VLD3, ADDV, VMLAL, SHA256, FMLA)
    Simd128,        //!< the fixed WebAssembly SIMD128 proposal
    Relaxed,        //!< SIMD128 + relaxed-simd (adds fused madd)
};

/**
 * libjpeg-turbo's RGB-to-Y conversion ported to @p isa: wasm has no
 * de-interleaving VLD3, so the RGB planes are separated with shuffle
 * cascades, and no widening multiply-accumulate, so VMLAL splits into
 * extmul + add (Section 6.3's strided-access gap at the wasm layer).
 */
std::unique_ptr<core::Workload> makeWasmRgbToY(const core::Options &,
                                               WasmIsa isa);

/**
 * zlib's Adler-32 ported to @p isa: wasm has no across-vector reduction
 * (ADDV/SADDLV) or pairwise-accumulate (VPADAL); horizontal sums fold via
 * shuffle+add cascades (Section 6.1's reduction pattern).
 */
std::unique_ptr<core::Workload> makeWasmAdler32(const core::Options &,
                                                WasmIsa isa);

/**
 * A WebAudio-style 4-tap FIR filter ported to @p isa: the base proposal
 * has no fused multiply-add (mul + add per tap); relaxed-simd's
 * f32x4.relaxed_madd restores Neon FMLA parity (Section 6.5's
 * portable-API instruction budget, recreated at the wasm layer).
 */
std::unique_ptr<core::Workload> makeWasmFirFilter(const core::Options &,
                                                  WasmIsa isa);

/**
 * boringssl's SHA-256 ported to @p isa: wasm exposes no cryptography
 * instructions and the round dependence chain defeats generic SIMD, so
 * the wasm port runs scalar rounds — quantifying how much of ZL/BS's
 * standout Figure-2 speedup is the crypto extension (Section 5.1).
 */
std::unique_ptr<core::Workload> makeWasmSha256(const core::Options &,
                                               WasmIsa isa);

/** Loop-tail strategy when the trip count is not lane-divisible. */
enum class TailImpl
{
    NarrowTail,     //!< Neon: full-width body + partial-vector tail
    Predicated,     //!< SVE: WHILELT-governed full-width loop
};

/**
 * Row-wise y += a*x over rows whose length is deliberately not divisible
 * by any vector lane count. Width-generic (KernelInfo::widerWidths
 * analogue): runNeon(vec_bits) accepts 128/256/512/1024.
 */
std::unique_ptr<core::Workload> makeAxpyTail(const core::Options &,
                                             TailImpl impl);

} // namespace swan::workloads::ext

#endif // SWAN_WORKLOADS_EXT_EXT_HH
