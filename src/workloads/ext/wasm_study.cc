/**
 * @file
 * Section 9 WebAssembly SIMD porting study. The paper's future work
 * plans WASM-SIMD versions of the suite because V8 executes a large
 * share of mobile browser time; this study ports four representative
 * kernels to the SIMD128 instruction set (simd/vec_wasm.hh) and
 * measures what each missing Neon feature costs:
 *
 *  - WasmRgbToY: no VLD3 de-interleave -> shuffle cascades, and no
 *    VMLAL -> extmul + add (the Section 6.3 strided-access gap).
 *  - WasmAdler32: no ADDV/VPADAL -> shuffle+add horizontal folding
 *    (the Section 6.1 reduction pattern).
 *  - WasmFirFilter: no fused multiply-add in the base proposal ->
 *    mul + add per tap; relaxed-simd restores FMLA parity (the
 *    Section 6.5 portable-API instruction budget).
 *  - WasmSha256: no cryptography instructions -> scalar rounds (the
 *    crypto share of ZL/BS's standout Figure-2 speedup).
 *
 * Like the other extension studies these kernels are not registered in
 * the global registry; bench/ext_wasm_simd and the tests construct them
 * through the ext.hh factories.
 */

#include "workloads/ext/ext.hh"

#include <utility>

#include "workloads/common.hh"

namespace swan::workloads::ext
{

using namespace swan::simd;
namespace ws = swan::simd::wasm;
using core::Options;
using core::Workload;
using ws::v128;

namespace
{

// ---------------------------------------------------------------------
// Shuffle-index machinery: i8x16_shuffle takes its 16 byte indices as
// template arguments (they are immediates in the wasm encoding), so the
// de-interleave patterns are computed constexpr and expanded with an
// index sequence.
// ---------------------------------------------------------------------

template <std::array<int, 16> kIdx, size_t... kSeq>
inline v128
shuffleArrImpl(const v128 &a, const v128 &b, std::index_sequence<kSeq...>)
{
    return ws::i8x16_shuffle<kIdx[kSeq]...>(a, b);
}

/** i8x16.shuffle with the indices supplied as a constexpr array. */
template <std::array<int, 16> kIdx>
inline v128
shuffleArr(const v128 &a, const v128 &b)
{
    return shuffleArrImpl<kIdx>(a, b, std::make_index_sequence<16>{});
}

/** Bytes of channel @p c that live in the first two registers (< 32). */
constexpr int
chanSplit(int c)
{
    int n = 0;
    for (int i = 0; i < 16; ++i) {
        if (c + 3 * i < 32)
            ++n;
    }
    return n;
}

/** Stage A: gather channel-@p kC bytes of v0:v1 into lanes [0, split). */
template <int kC>
constexpr std::array<int, 16>
chanStageA()
{
    std::array<int, 16> idx{};
    int n = 0;
    for (int i = 0; i < 16; ++i) {
        const int p = kC + 3 * i;
        if (p < 32)
            idx[size_t(n++)] = p;
    }
    return idx;
}

/** Stage B: keep stage A's lanes, fill the tail from v2. */
template <int kC>
constexpr std::array<int, 16>
chanStageB()
{
    std::array<int, 16> idx{};
    int n = chanSplit(kC);
    for (int i = 0; i < n; ++i)
        idx[size_t(i)] = i;
    for (int i = 0; i < 16; ++i) {
        const int p = kC + 3 * i;
        if (p >= 32)
            idx[size_t(n++)] = 16 + (p - 32);
    }
    return idx;
}

/**
 * De-interleave channel @p kC of 16 packed RGB pixels held in three
 * registers: two dependent shuffles, where Neon VLD3 does the whole
 * separation inside the load.
 */
template <int kC>
inline v128
deinterleaveChannel(const v128 &v0, const v128 &v1, const v128 &v2)
{
    const v128 partial = shuffleArr<chanStageA<kC>()>(v0, v1);
    return shuffleArr<chanStageB<kC>()>(partial, v2);
}

// ---------------------------------------------------------------------
// RGB -> Y (libjpeg-turbo port).
// ---------------------------------------------------------------------

constexpr uint32_t kYR = 4899, kYG = 9617, kYB = 1868;
constexpr int kShift = 14;
constexpr uint32_t kBias = 1u << (kShift - 1);

class WasmRgbToY : public Workload
{
  public:
    WasmRgbToY(const Options &opts, WasmIsa isa)
        : isa_(isa), pixels_(opts.imageWidth * opts.imageHeight)
    {
        Rng rng(opts.seed ^ 0x3a5e01u);
        rgb_ = randomInts<uint8_t>(rng, size_t(pixels_) * 3);
        outScalar_.assign(size_t(pixels_), 0);
        outNeon_.assign(size_t(pixels_), 1);
    }

    void
    runScalar() override
    {
        for (int p = 0; p < pixels_; ++p)
            scalarPixel(p, outScalar_);
    }

    void
    runNeon(int) override
    {
        if (isa_ == WasmIsa::NeonNative)
            neonImpl();
        else
            wasmImpl();
    }

    bool verify() override { return outScalar_ == outNeon_; }
    uint64_t flops() const override { return uint64_t(pixels_) * 6; }

  private:
    void
    scalarPixel(int p, std::vector<uint8_t> &out)
    {
        const size_t base = size_t(p) * 3;
        Sc<uint32_t> r = sload(&rgb_[base]).to<uint32_t>();
        Sc<uint32_t> g = sload(&rgb_[base + 1]).to<uint32_t>();
        Sc<uint32_t> b = sload(&rgb_[base + 2]).to<uint32_t>();
        Sc<uint32_t> y = smadd(r, Sc<uint32_t>(kYR), Sc<uint32_t>(kBias));
        y = smadd(g, Sc<uint32_t>(kYG), y);
        y = smadd(b, Sc<uint32_t>(kYB), y);
        sstore(&out[size_t(p)], (y >> kShift).to<uint8_t>());
        ctl::loop();
    }

    /** Native Neon: VLD3 + widening multiply-accumulate + VSHRN. */
    void
    neonImpl()
    {
        const auto cr = vdup<uint16_t, 128>(uint16_t(kYR));
        const auto cg = vdup<uint16_t, 128>(uint16_t(kYG));
        const auto cb = vdup<uint16_t, 128>(uint16_t(kYB));
        const auto bias = vdup<uint32_t, 128>(kBias);
        int p = 0;
        for (; p + 16 <= pixels_; p += 16) {
            auto rgb = vld3<128>(&rgb_[size_t(p) * 3]);
            auto r16 = vmovl_lo(rgb[0]), r16h = vmovl_hi(rgb[0]);
            auto g16 = vmovl_lo(rgb[1]), g16h = vmovl_hi(rgb[1]);
            auto b16 = vmovl_lo(rgb[2]), b16h = vmovl_hi(rgb[2]);
            auto y00 = vmlal_lo(bias, r16, cr);
            y00 = vmlal_lo(y00, g16, cg);
            y00 = vmlal_lo(y00, b16, cb);
            auto y01 = vmlal_hi(bias, r16, cr);
            y01 = vmlal_hi(y01, g16, cg);
            y01 = vmlal_hi(y01, b16, cb);
            auto y10 = vmlal_lo(bias, r16h, cr);
            y10 = vmlal_lo(y10, g16h, cg);
            y10 = vmlal_lo(y10, b16h, cb);
            auto y11 = vmlal_hi(bias, r16h, cr);
            y11 = vmlal_hi(y11, g16h, cg);
            y11 = vmlal_hi(y11, b16h, cb);
            auto n_lo = vshrn(y00, y01, kShift);
            auto n_hi = vshrn(y10, y11, kShift);
            vst1(&outNeon_[size_t(p)], vmovn(n_lo, n_hi));
            ctl::loop();
        }
        for (; p < pixels_; ++p)
            scalarPixel(p, outNeon_);
    }

    /**
     * One u32x4 quarter of the Y computation: extmul + add per
     * coefficient (wasm has no widening multiply-accumulate).
     */
    static v128
    wasmQuarter(const v128 &bias, const v128 &cr, const v128 &cg,
                const v128 &cb, const v128 &r16, const v128 &g16,
                const v128 &b16, bool high)
    {
        auto ext = [high](const v128 &x, const v128 &c) {
            return high ? ws::i32x4_extmul_high_u16x8(x, c)
                        : ws::i32x4_extmul_low_u16x8(x, c);
        };
        v128 y = ws::i32x4_add(bias, ext(r16, cr));
        y = ws::i32x4_add(y, ext(g16, cg));
        y = ws::i32x4_add(y, ext(b16, cb));
        return ws::i32x4_shr_u(y, kShift);
    }

    /** SIMD128: 3 loads + 6 shuffles replace VLD3; mul+add replace MLAL. */
    void
    wasmImpl()
    {
        const v128 cr = ws::splat(uint16_t(kYR));
        const v128 cg = ws::splat(uint16_t(kYG));
        const v128 cb = ws::splat(uint16_t(kYB));
        const v128 bias = ws::splat(kBias);
        int p = 0;
        for (; p + 16 <= pixels_; p += 16) {
            const size_t base = size_t(p) * 3;
            const v128 v0 = ws::v128_load(&rgb_[base]);
            const v128 v1 = ws::v128_load(&rgb_[base + 16]);
            const v128 v2 = ws::v128_load(&rgb_[base + 32]);
            const v128 r = deinterleaveChannel<0>(v0, v1, v2);
            const v128 g = deinterleaveChannel<1>(v0, v1, v2);
            const v128 b = deinterleaveChannel<2>(v0, v1, v2);

            const v128 r16l = ws::i16x8_extend_low_u8x16(r);
            const v128 r16h = ws::i16x8_extend_high_u8x16(r);
            const v128 g16l = ws::i16x8_extend_low_u8x16(g);
            const v128 g16h = ws::i16x8_extend_high_u8x16(g);
            const v128 b16l = ws::i16x8_extend_low_u8x16(b);
            const v128 b16h = ws::i16x8_extend_high_u8x16(b);

            const v128 y0 =
                wasmQuarter(bias, cr, cg, cb, r16l, g16l, b16l, false);
            const v128 y1 =
                wasmQuarter(bias, cr, cg, cb, r16l, g16l, b16l, true);
            const v128 y2 =
                wasmQuarter(bias, cr, cg, cb, r16h, g16h, b16h, false);
            const v128 y3 =
                wasmQuarter(bias, cr, cg, cb, r16h, g16h, b16h, true);

            const v128 n_lo = ws::i16x8_narrow_i32x4_s(y0, y1);
            const v128 n_hi = ws::i16x8_narrow_i32x4_s(y2, y3);
            ws::v128_store(&outNeon_[size_t(p)],
                           ws::i8x16_narrow_i16x8_u(n_lo, n_hi));
            ctl::loop();
        }
        for (; p < pixels_; ++p)
            scalarPixel(p, outNeon_);
    }

    WasmIsa isa_;
    int pixels_;
    std::vector<uint8_t> rgb_, outScalar_, outNeon_;
};

// ---------------------------------------------------------------------
// Adler-32 (zlib port).
// ---------------------------------------------------------------------

constexpr uint32_t kAdlerBase = 65521;
constexpr size_t kAdlerNmax = 5552;

class WasmAdler32 : public Workload
{
  public:
    WasmAdler32(const Options &opts, WasmIsa isa) : isa_(isa)
    {
        Rng rng(opts.seed ^ 0x3a5e02u);
        data_ = randomInts<uint8_t>(rng, size_t(opts.bufferBytes));
    }

    void
    runScalar() override
    {
        Sc<uint32_t> s1(1u), s2(0u);
        size_t i = 0;
        const size_t n = data_.size();
        while (i < n) {
            const size_t end = std::min(n, i + kAdlerNmax);
            for (; i < end; ++i) {
                Sc<uint8_t> b = sload(&data_[i]);
                s1 += b.to<uint32_t>();
                s2 += s1;
                ctl::loop();
            }
            s1 = s1 % Sc<uint32_t>(kAdlerBase);
            s2 = s2 % Sc<uint32_t>(kAdlerBase);
        }
        outScalar_ = (s2.v << 16) | s1.v;
    }

    void
    runNeon(int) override
    {
        outNeon_ = isa_ == WasmIsa::NeonNative ? neonImpl() : wasmImpl();
    }

    bool verify() override { return outScalar_ == outNeon_; }
    uint64_t flops() const override { return 2 * data_.size(); }

  private:
    /** Native Neon: VMULL + VPADAL accumulate, ADDV reduce. */
    uint32_t
    neonImpl()
    {
        uint8_t taps_mem[16];
        for (int i = 0; i < 16; ++i)
            taps_mem[i] = uint8_t(16 - i);
        const auto taps = vld1<128>(taps_mem);

        uint32_t s1 = 1, s2 = 0;
        size_t i = 0;
        const size_t n = data_.size();
        while (i + 16 <= n) {
            const size_t block_end = std::min(n - 15, i + kAdlerNmax);
            auto vs1 = vset_lane(vdup<uint32_t, 128>(0u), 0,
                                 Sc<uint32_t>(s1));
            auto vs2 = vset_lane(vdup<uint32_t, 128>(0u), 0,
                                 Sc<uint32_t>(s2));
            for (; i + 16 <= n && i < block_end; i += 16) {
                vs2 = vadd(vs2, vshl(vs1, 4));
                auto d = vld1<128>(&data_[i]);
                vs2 = vpadal(vs2, vmull_lo(d, taps));
                vs2 = vpadal(vs2, vmull_hi(d, taps));
                vs1 = vpadal(vs1, vpaddl(d));
                ctl::loop();
            }
            s1 = vaddv(vs1).v % kAdlerBase;
            s2 = vaddv(vs2).v % kAdlerBase;
        }
        return finishScalar(s1, s2, i);
    }

    /**
     * SIMD128: the same loop shape, but pairwise accumulation costs
     * extadd + add (no VPADAL) and the block reduction folds with
     * shuffle+add cascades (no ADDV).
     */
    uint32_t
    wasmImpl()
    {
        uint8_t taps_mem[16];
        for (int i = 0; i < 16; ++i)
            taps_mem[i] = uint8_t(16 - i);
        const v128 taps = ws::v128_load(taps_mem);

        uint32_t s1 = 1, s2 = 0;
        size_t i = 0;
        const size_t n = data_.size();
        while (i + 16 <= n) {
            const size_t block_end = std::min(n - 15, i + kAdlerNmax);
            v128 vs1 = ws::replace_lane(ws::splat(0u), 0,
                                        Sc<uint32_t>(s1));
            v128 vs2 = ws::replace_lane(ws::splat(0u), 0,
                                        Sc<uint32_t>(s2));
            for (; i + 16 <= n && i < block_end; i += 16) {
                vs2 = ws::i32x4_add(vs2, ws::i32x4_shl(vs1, 4));
                const v128 d = ws::v128_load(&data_[i]);
                const v128 p_lo = ws::i16x8_extmul_low_u8x16(d, taps);
                const v128 p_hi = ws::i16x8_extmul_high_u8x16(d, taps);
                vs2 = ws::i32x4_add(
                    vs2, ws::i32x4_extadd_pairwise_u16x8(p_lo));
                vs2 = ws::i32x4_add(
                    vs2, ws::i32x4_extadd_pairwise_u16x8(p_hi));
                vs1 = ws::i32x4_add(
                    vs1, ws::i32x4_extadd_pairwise_u16x8(
                             ws::i16x8_extadd_pairwise_u8x16(d)));
                ctl::loop();
            }
            s1 = ws::hsum_u32x4(vs1).v % kAdlerBase;
            s2 = ws::hsum_u32x4(vs2).v % kAdlerBase;
        }
        return finishScalar(s1, s2, i);
    }

    uint32_t
    finishScalar(uint32_t s1, uint32_t s2, size_t i)
    {
        Sc<uint32_t> t1(s1), t2(s2);
        for (; i < data_.size(); ++i) {
            Sc<uint8_t> b = sload(&data_[i]);
            t1 += b.to<uint32_t>();
            t2 += t1;
            ctl::loop();
        }
        t1 = t1 % Sc<uint32_t>(kAdlerBase);
        t2 = t2 % Sc<uint32_t>(kAdlerBase);
        return (t2.v << 16) | t1.v;
    }

    WasmIsa isa_;
    std::vector<uint8_t> data_;
    uint32_t outScalar_ = 0;
    uint32_t outNeon_ = 1;
};

// ---------------------------------------------------------------------
// 4-tap FIR filter (WebAudio-style f32 streaming MAC).
// ---------------------------------------------------------------------

constexpr float kFirTaps[4] = {0.1f, 0.4f, 0.4f, 0.1f};

class WasmFirFilter : public Workload
{
  public:
    WasmFirFilter(const Options &opts, WasmIsa isa) : isa_(isa)
    {
        Rng rng(opts.seed ^ 0x3a5e03u);
        n_ = size_t(std::max(opts.audioSamples, 64));
        in_ = randomFloats(rng, n_ + 3);
        outScalar_.assign(n_, 0.0f);
        outNeon_.assign(n_, 1.0f);
    }

    void
    runScalar() override
    {
        for (size_t i = 0; i < n_; ++i) {
            Sc<float> acc(0.0f);
            for (int k = 0; k < 4; ++k) {
                acc = smadd(sload(&in_[i + size_t(k)]),
                            Sc<float>(kFirTaps[k]), acc);
            }
            sstore(&outScalar_[i], acc);
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        switch (isa_) {
          case WasmIsa::NeonNative:
            neonImpl();
            break;
          case WasmIsa::Simd128:
            wasmImpl(/*fused=*/false);
            break;
          case WasmIsa::Relaxed:
            wasmImpl(/*fused=*/true);
            break;
        }
    }

    bool verify() override { return approxOutputs(outScalar_, outNeon_); }
    uint64_t flops() const override { return n_ * 8; }

  private:
    /** Native Neon: one FMLA per tap. */
    void
    neonImpl()
    {
        std::array<Vec<float, 128>, 4> taps;
        for (int k = 0; k < 4; ++k)
            taps[size_t(k)] = vdup<float, 128>(kFirTaps[k]);
        size_t i = 0;
        for (; i + 4 <= n_; i += 4) {
            auto acc = vmul(vld1<128>(&in_[i]), taps[0]);
            for (int k = 1; k < 4; ++k)
                acc = vmla(acc, vld1<128>(&in_[i + size_t(k)]),
                           taps[size_t(k)]);
            vst1(&outNeon_[i], acc);
            ctl::loop();
        }
        scalarTail(i);
    }

    /**
     * SIMD128: mul + add per tap (7 FP ops per vector of outputs);
     * relaxed-simd's f32x4.relaxed_madd restores the Neon budget (4).
     */
    void
    wasmImpl(bool fused)
    {
        std::array<v128, 4> taps;
        for (int k = 0; k < 4; ++k)
            taps[size_t(k)] = ws::splat(kFirTaps[k]);
        size_t i = 0;
        for (; i + 4 <= n_; i += 4) {
            v128 acc = ws::f32x4_mul(ws::v128_load(&in_[i]), taps[0]);
            for (int k = 1; k < 4; ++k) {
                const v128 x = ws::v128_load(&in_[i + size_t(k)]);
                if (fused) {
                    acc = ws::f32x4_relaxed_madd(x, taps[size_t(k)], acc);
                } else {
                    acc = ws::f32x4_add(
                        acc, ws::f32x4_mul(x, taps[size_t(k)]));
                }
            }
            ws::v128_store(&outNeon_[i], acc);
            ctl::loop();
        }
        scalarTail(i);
    }

    void
    scalarTail(size_t i)
    {
        for (; i < n_; ++i) {
            Sc<float> acc(0.0f);
            for (int k = 0; k < 4; ++k) {
                acc = smadd(sload(&in_[i + size_t(k)]),
                            Sc<float>(kFirTaps[k]), acc);
            }
            sstore(&outNeon_[i], acc);
            ctl::loop();
        }
    }

    WasmIsa isa_;
    size_t n_ = 0;
    std::vector<float> in_, outScalar_, outNeon_;
};

// ---------------------------------------------------------------------
// SHA-256 (boringssl port).
// ---------------------------------------------------------------------

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

class WasmSha256 : public Workload
{
  public:
    WasmSha256(const Options &opts, WasmIsa isa) : isa_(isa)
    {
        Rng rng(opts.seed ^ 0x3a5e04u);
        data_ = randomInts<uint8_t>(rng,
                                    size_t(opts.bufferBytes) & ~63ull);
    }

    void runScalar() override { scalarRounds(outScalar_); }

    void
    runNeon(int) override
    {
        if (isa_ == WasmIsa::NeonNative)
            neonImpl();
        else
            scalarRounds(outNeon_); // wasm has no crypto instructions
    }

    bool
    verify() override
    {
        return std::memcmp(outScalar_, outNeon_, sizeof(outScalar_)) == 0;
    }

    uint64_t flops() const override { return data_.size() / 64 * 64 * 8; }

  private:
    static Sc<uint32_t>
    ror(Sc<uint32_t> x, int n)
    {
        return (x >> n) | (x << (32 - n));
    }

    /** Pure scalar rounds — all a wasm engine can issue for SHA-256. */
    void
    scalarRounds(uint32_t (&out)[8])
    {
        uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                         0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
        for (size_t blk = 0; blk + 64 <= data_.size(); blk += 64) {
            Sc<uint32_t> w[64];
            for (int i = 0; i < 16; ++i) {
                uint32_t word;
                std::memcpy(&word, &data_[blk + size_t(4 * i)], 4);
                uint64_t id = emitMem(InstrClass::SLoad,
                                      &data_[blk + size_t(4 * i)], 4,
                                      Lat::load);
                uint64_t rid = emitOp(InstrClass::SInt, Fu::SAlu,
                                      Lat::sAlu, id);
                w[i] = Sc<uint32_t>(__builtin_bswap32(word), rid);
            }
            for (int i = 16; i < 64; ++i) {
                Sc<uint32_t> s0 = ror(w[i - 15], 7) ^
                                  ror(w[i - 15], 18) ^ (w[i - 15] >> 3);
                Sc<uint32_t> s1 = ror(w[i - 2], 17) ^
                                  ror(w[i - 2], 19) ^ (w[i - 2] >> 10);
                w[i] = w[i - 16] + s0 + w[i - 7] + s1;
                ctl::loop();
            }
            Sc<uint32_t> a(h[0]), b(h[1]), c(h[2]), d(h[3]);
            Sc<uint32_t> e(h[4]), f(h[5]), g(h[6]), hh(h[7]);
            for (int i = 0; i < 64; ++i) {
                Sc<uint32_t> k = sload(&kK[i]);
                Sc<uint32_t> big1 = ror(e, 6) ^ ror(e, 11) ^ ror(e, 25);
                Sc<uint32_t> ch = (e & f) ^ (~e & g);
                Sc<uint32_t> t1 = hh + big1 + ch + k + w[i];
                Sc<uint32_t> big0 = ror(a, 2) ^ ror(a, 13) ^ ror(a, 22);
                Sc<uint32_t> maj = (a & b) ^ (a & c) ^ (b & c);
                Sc<uint32_t> t2 = big0 + maj;
                hh = g; g = f; f = e; e = d + t1;
                d = c; c = b; b = a; a = t1 + t2;
                ctl::loop();
            }
            h[0] += a.v; h[1] += b.v; h[2] += c.v; h[3] += d.v;
            h[4] += e.v; h[5] += f.v; h[6] += g.v; h[7] += hh.v;
            ctl::loop();
        }
        std::memcpy(out, h, sizeof(h));
    }

    /** Native Neon SHA-256 extension (SHA256H/H2/SU0/SU1). */
    void
    neonImpl()
    {
        uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                         0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
        for (size_t blk = 0; blk + 64 <= data_.size(); blk += 64) {
            auto abcd = vld1<128>(h);
            auto efgh = vld1<128>(h + 4);
            std::array<Vec<uint32_t, 128>, 4> w;
            for (int i = 0; i < 4; ++i) {
                auto bytes = vld1<128>(&data_[blk + size_t(16 * i)]);
                w[size_t(i)] = vreinterpret<uint32_t>(vrev32(bytes));
            }
            auto a0 = abcd, e0 = efgh;
            for (int r = 0; r < 16; ++r) {
                auto wk = vadd(w[0], vld1<128>(&kK[4 * r]));
                auto new_abcd = vsha256h(abcd, efgh, wk);
                efgh = vsha256h2(efgh, abcd, wk);
                abcd = new_abcd;
                if (r < 15) {
                    Vec<uint32_t, 128> next{};
                    if (r < 12) {
                        auto part = vsha256su0(w[0], w[1]);
                        next = vsha256su1(part, w[2], w[3]);
                    }
                    w[0] = w[1];
                    w[1] = w[2];
                    w[2] = w[3];
                    if (r < 12)
                        w[3] = next;
                }
                ctl::loop();
            }
            abcd = vadd(abcd, a0);
            efgh = vadd(efgh, e0);
            uint32_t tmp[8];
            vst1(tmp, abcd);
            vst1(tmp + 4, efgh);
            std::memcpy(h, tmp, sizeof(h));
            ctl::loop();
        }
        std::memcpy(outNeon_, h, sizeof(outNeon_));
    }

    WasmIsa isa_;
    std::vector<uint8_t> data_;
    uint32_t outScalar_[8] = {};
    uint32_t outNeon_[8] = {1};
};

} // namespace

std::unique_ptr<Workload>
makeWasmRgbToY(const Options &opts, WasmIsa isa)
{
    return std::make_unique<WasmRgbToY>(opts, isa);
}

std::unique_ptr<Workload>
makeWasmAdler32(const Options &opts, WasmIsa isa)
{
    return std::make_unique<WasmAdler32>(opts, isa);
}

std::unique_ptr<Workload>
makeWasmFirFilter(const Options &opts, WasmIsa isa)
{
    return std::make_unique<WasmFirFilter>(opts, isa);
}

std::unique_ptr<Workload>
makeWasmSha256(const Options &opts, WasmIsa isa)
{
    return std::make_unique<WasmSha256>(opts, isa);
}

} // namespace swan::workloads::ext
