/**
 * @file
 * Section 7.1 tail-handling study. The paper's wider-register GEMM loses
 * SIMD utilization (98% at 128 bits down to 89% at 1024 bits) because
 * the output column count is not evenly divisible by the lane count, so
 * Neon falls back to narrower registers for the remainder. SVE's WHILELT
 * predication runs the tail at full width under a governing mask. This
 * workload isolates that effect: row-wise y += a*x over rows whose
 * length leaves a remainder at every supported width, comparing the
 * Neon narrow-tail and SVE predicated strategies from 128 to 1024 bits.
 */

#include "workloads/ext/ext.hh"

#include "workloads/common.hh"

namespace swan::workloads::ext
{

using namespace swan::simd;
using core::Options;
using core::Workload;

namespace
{

class AxpyTail : public Workload
{
  public:
    /** Row length with a remainder at widths 4..32 lanes of f32. */
    static constexpr size_t kRowLen = 27;

    AxpyTail(const Options &opts, TailImpl impl) : impl_(impl)
    {
        Rng rng(opts.seed ^ 0xa17ull);
        rows_ = std::max<size_t>(
            size_t(opts.bufferBytes) / (kRowLen * sizeof(float)), 8);
        x_ = randomFloats(rng, rows_ * kRowLen);
        y0_ = randomFloats(rng, rows_ * kRowLen);
        a_ = rng.f32(0.5f, 2.0f);
        outScalar_.assign(rows_ * kRowLen, 0.0f);
        outNeon_.assign(rows_ * kRowLen, 1.0f);
    }

    void
    runScalar() override
    {
        Sc<float> a(a_);
        for (size_t r = 0; r < rows_; ++r) {
            const size_t base = r * kRowLen;
            for (size_t i = 0; i < kRowLen; ++i) {
                Sc<float> xv = sload(&x_[base + i]);
                Sc<float> yv = sload(&y0_[base + i]);
                sstore(&outScalar_[base + i], yv + a * xv);
                ctl::loop();
            }
            ctl::loop();
        }
    }

    void
    runNeon(int vec_bits) override
    {
        switch (vec_bits) {
          case 256:
            neonImpl<256>();
            break;
          case 512:
            neonImpl<512>();
            break;
          case 1024:
            neonImpl<1024>();
            break;
          default:
            neonImpl<128>();
            break;
        }
    }

    bool
    verify() override
    {
        return approxOutputs(outScalar_, outNeon_);
    }

    uint64_t flops() const override { return 2 * rows_ * kRowLen; }

  private:
    template <int B>
    void
    neonImpl()
    {
        if (impl_ == TailImpl::Predicated)
            predicated<B>();
        else
            narrowTail<B>();
    }

    /**
     * Neon strategy (what the paper's wide GEMM does, Section 7.1):
     * full vectors while they fit, then the remainder cascades through
     * narrower registers (..., 128-bit Q, 64-bit D) and finishes with
     * scalar iterations. Every tail op runs far below machine width.
     */
    template <int B>
    void
    narrowTail()
    {
        for (size_t r = 0; r < rows_; ++r) {
            const size_t base = r * kRowLen;
            size_t i = chunkAt<B>(base, 0);
            // Scalar remainder (< 2 lanes).
            Sc<float> a(a_);
            for (; i < kRowLen; ++i) {
                Sc<float> xv = sload(&x_[base + i]);
                Sc<float> yv = sload(&y0_[base + i]);
                sstore(&outNeon_[base + i], yv + a * xv);
                ctl::loop();
            }
            ctl::loop();
        }
    }

    /** Run full W-bit vectors from @p i, then recurse to W/2. */
    template <int W>
    size_t
    chunkAt(size_t base, size_t i)
    {
        constexpr size_t kL = size_t(Vec<float, W>::kLanes);
        if (kRowLen - i >= kL) {
            const auto av = vdup<float, W>(a_);
            for (; i + kL <= kRowLen; i += kL) {
                auto xv = vld1<W>(&x_[base + i]);
                auto yv = vld1<W>(&y0_[base + i]);
                vst1(&outNeon_[base + i], vmla(yv, av, xv));
                ctl::loop();
            }
        }
        if constexpr (W > 64)
            return chunkAt<W / 2>(base, i);
        else
            return i;
    }

    /**
     * SVE strategy: a single WHILELT-governed loop; the final iteration
     * runs at full width with inactive lanes masked off.
     */
    template <int B>
    void
    predicated()
    {
        constexpr size_t kL = size_t(Vec<float, B>::kLanes);
        const auto av = vdup<float, B>(a_);
        for (size_t r = 0; r < rows_; ++r) {
            const size_t base = r * kRowLen;
            for (size_t i = 0; i < kRowLen; i += kL) {
                auto pg = whilelt<float, B>(int64_t(i), int64_t(kRowLen));
                auto xv = vld1_m(&x_[base + i], pg);
                auto yv = vld1_m(&y0_[base + i], pg);
                vst1_m(&outNeon_[base + i], vmla_m(pg, yv, av, xv), pg);
                ctl::loop();
            }
            ctl::loop();
        }
    }

    TailImpl impl_;
    size_t rows_ = 0;
    float a_ = 1.0f;
    std::vector<float> x_, y0_;
    std::vector<float> outScalar_, outNeon_;
};

} // namespace

std::unique_ptr<Workload>
makeAxpyTail(const Options &opts, TailImpl impl)
{
    return std::make_unique<AxpyTail>(opts, impl);
}

} // namespace swan::workloads::ext
