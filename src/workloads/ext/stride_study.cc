/**
 * @file
 * Section 6.3 arbitrary-stride study. Neon's structure loads stop at
 * stride 4 (VLD4/VST4); beyond that, kernels must compose multiple
 * structure loads with UZP stages, loading — and discarding — data they
 * do not need. RVV's strided loads (vlse) encode any stride in one
 * instruction. Two workloads over an 8-channel interleaved 16-bit audio
 * stream (stride 8):
 *
 *  - Deinterleave8: split all eight channels. The Neon composition
 *    (2x VLD4 + 8x UZP per vector of samples) uses every loaded byte,
 *    so the strided-load win is modest — instruction count only.
 *  - ChannelExtract: produce one channel. Neon still pays the full
 *    2x VLD4 (8x the useful memory traffic) plus an UZP; the strided
 *    load fetches exactly the wanted elements.
 */

#include "workloads/ext/ext.hh"

#include "workloads/common.hh"

namespace swan::workloads::ext
{

using namespace swan::simd;
using core::Options;
using core::Workload;

namespace
{

constexpr int kChannels = 8;

/** Interleaved 8-channel stream sized from the audio options. */
std::vector<int16_t>
makeStream(const Options &opts, uint64_t salt, size_t &samples_out)
{
    Rng rng(opts.seed ^ salt);
    const size_t samples =
        (size_t(std::max(opts.audioSamples, 64)) & ~7ull);
    samples_out = samples;
    return randomInts<int16_t>(rng, samples * kChannels);
}

// ---------------------------------------------------------------------
// Deinterleave8
// ---------------------------------------------------------------------

class Deinterleave8 : public Workload
{
  public:
    Deinterleave8(const Options &opts, StrideImpl impl) : impl_(impl)
    {
        stream_ = makeStream(opts, 0xd318ull, samples_);
        outScalar_.assign(size_t(kChannels) * samples_, 0);
        outNeon_.assign(size_t(kChannels) * samples_, 1);
    }

    void
    runScalar() override
    {
        for (size_t i = 0; i < samples_; ++i) {
            for (int c = 0; c < kChannels; ++c) {
                Sc<int16_t> v =
                    sload(&stream_[i * kChannels + size_t(c)]);
                sstore(&outScalar_[size_t(c) * samples_ + i], v);
            }
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        constexpr int kL = Vec<int16_t, 128>::kLanes; // 8 samples/vector
        for (size_t i = 0; i + kL <= samples_; i += kL) {
            const int16_t *p = &stream_[i * kChannels];
            if (impl_ == StrideImpl::StridedLoad) {
                // One arbitrary-stride load per channel (RVV vlse16).
                for (int c = 0; c < kChannels; ++c) {
                    auto v = vlds<128>(p + c, kChannels);
                    vst1(&outNeon_[size_t(c) * samples_ + i], v);
                }
            } else {
                // VLD4 pairs + UZP: A[r]/B[r] interleave channels r and
                // r+4; UZP1/UZP2 split them.
                auto a = vld4<128>(p);
                auto b = vld4<128>(p + 4 * kL);
                for (int r = 0; r < 4; ++r) {
                    auto lo = vuzp1(a[size_t(r)], b[size_t(r)]);
                    auto hi = vuzp2(a[size_t(r)], b[size_t(r)]);
                    vst1(&outNeon_[size_t(r) * samples_ + i], lo);
                    vst1(&outNeon_[size_t(r + 4) * samples_ + i], hi);
                }
            }
            ctl::loop();
        }
    }

    bool verify() override { return outScalar_ == outNeon_; }
    uint64_t flops() const override
    {
        return samples_ * size_t(kChannels);
    }

  private:
    StrideImpl impl_;
    size_t samples_ = 0;
    std::vector<int16_t> stream_;
    std::vector<int16_t> outScalar_, outNeon_;
};

// ---------------------------------------------------------------------
// ChannelExtract
// ---------------------------------------------------------------------

class ChannelExtract : public Workload
{
  public:
    static constexpr int kChannel = 5; // r = 1, odd half (exercises UZP2)

    ChannelExtract(const Options &opts, StrideImpl impl) : impl_(impl)
    {
        stream_ = makeStream(opts, 0xce57ull, samples_);
        outScalar_.assign(samples_, 0);
        outNeon_.assign(samples_, 1);
    }

    void
    runScalar() override
    {
        for (size_t i = 0; i < samples_; ++i) {
            Sc<int16_t> v =
                sload(&stream_[i * kChannels + kChannel]);
            sstore(&outScalar_[i], v);
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        constexpr int kL = Vec<int16_t, 128>::kLanes;
        for (size_t i = 0; i + kL <= samples_; i += kL) {
            const int16_t *p = &stream_[i * kChannels];
            if (impl_ == StrideImpl::StridedLoad) {
                auto v = vlds<128>(p + kChannel, kChannels);
                vst1(&outNeon_[i], v);
            } else {
                // The wanted channel rides in register kChannel%4 of a
                // VLD4 pair; 7/8 of the loaded bytes are discarded.
                constexpr int r = kChannel % 4;
                auto a = vld4<128>(p);
                auto b = vld4<128>(p + 4 * kL);
                auto v = kChannel < 4 ? vuzp1(a[r], b[r])
                                      : vuzp2(a[r], b[r]);
                vst1(&outNeon_[i], v);
            }
            ctl::loop();
        }
    }

    bool verify() override { return outScalar_ == outNeon_; }
    uint64_t flops() const override { return samples_; }

  private:
    StrideImpl impl_;
    size_t samples_ = 0;
    std::vector<int16_t> stream_;
    std::vector<int16_t> outScalar_, outNeon_;
};

} // namespace

std::unique_ptr<Workload>
makeDeinterleave8(const Options &opts, StrideImpl impl)
{
    return std::make_unique<Deinterleave8>(opts, impl);
}

std::unique_ptr<Workload>
makeChannelExtract(const Options &opts, StrideImpl impl)
{
    return std::make_unique<ChannelExtract>(opts, impl);
}

} // namespace swan::workloads::ext
