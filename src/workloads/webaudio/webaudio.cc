/**
 * @file
 * WebAudio workloads (symbol WA, Audio Processing). The Webaudio modules
 * of Chromium/WebRTC process "render quanta" (2 channels x 128 float
 * samples) through fine-grain portable vector APIs (Section 6.5): each API
 * loads its operands from memory, applies one simple operation, and stores
 * the result, so ~59% of WA's vector instructions are loads/stores and the
 * instruction reduction saturates around 3.4x. The Neon implementations
 * here deliberately mirror that API structure; the Auto implementations
 * vectorize the plain loop and therefore beat the API-based Neon code for
 * the simplest kernels (the paper's five Auto > Neon cases come from this
 * effect).
 *
 * Kernels: gain_node (VSMUL), vadd, vmul, vclip, audible (frame energy,
 * the Section 6.1 intra-reduction example and a Figure-5 wider-register
 * kernel), deinterleave_channels.
 */

#include "workloads/common.hh"

namespace swan::workloads::webaudio
{

using namespace swan::simd;
using core::Domain;
using core::Options;
using core::Pattern;
using core::Workload;

namespace
{

/** Base for kernels mapping one float array to another. */
class UnaryFloatKernel : public Workload
{
  public:
    UnaryFloatKernel(const Options &opts, uint64_t salt)
    {
        Rng rng(opts.seed ^ salt);
        in_ = randomFloats(rng, size_t(opts.audioSamples) * 2, -1.2f, 1.2f);
        outScalar_.assign(in_.size(), 0.0f);
        outNeon_.assign(in_.size(), -7.0f);
        outAuto_.assign(in_.size(), -7.0f);
    }

    bool verify() override { return approxOutputs(outScalar_, outNeon_); }
    uint64_t flops() const override { return in_.size(); }

  protected:
    std::vector<float> in_, outScalar_, outNeon_, outAuto_;
};

} // namespace

// ---------------------------------------------------------------------
// gain_node: out[i] = in[i] * gain  (the GainNode volume API)
// ---------------------------------------------------------------------

class GainNode : public UnaryFloatKernel
{
  public:
    explicit GainNode(const Options &opts) : UnaryFloatKernel(opts, 0x11)
    {
    }

    void
    runScalar() override
    {
        Sc<float> gain(kGain);
        for (size_t i = 0; i < in_.size(); ++i) {
            sstore(&outScalar_[i], sload(&in_[i]) * gain);
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        // Vector API style: one load / one multiply / one store per call.
        Sc<float> gain(kGain);
        size_t i = 0;
        for (; i + 4 <= in_.size(); i += 4) {
            auto v = vld1<128>(&in_[i]);
            vst1(&outNeon_[i], vmul_n(v, gain));
            ctl::addr(2); // vector-API pointer bookkeeping (Section 6.5)
            ctl::loop();
        }
        for (; i < in_.size(); ++i) {
            sstore(&outNeon_[i], sload(&in_[i]) * gain);
            ctl::loop();
        }
    }

    void
    runAuto() override
    {
        // Clang vectorizes and interleaves by 4 (Auto > Neon case).
        Sc<float> gain(kGain);
        size_t i = 0;
        for (; i + 16 <= in_.size(); i += 16) {
            for (int u = 0; u < 4; ++u) {
                auto v = vld1<128>(&in_[i + size_t(4 * u)]);
                vst1(&outAuto_[i + size_t(4 * u)], vmul_n(v, gain));
            }
            ctl::loop();
        }
        for (; i < in_.size(); ++i) {
            sstore(&outAuto_[i], sload(&in_[i]) * gain);
            ctl::loop();
        }
    }

  private:
    static constexpr float kGain = 0.7071f;
};

// ---------------------------------------------------------------------
// vadd / vmul: out[i] = a[i] op b[i]
// ---------------------------------------------------------------------

namespace
{

template <bool kMul>
class BinaryFloatKernel : public Workload
{
  public:
    BinaryFloatKernel(const Options &opts, uint64_t salt)
    {
        Rng rng(opts.seed ^ salt);
        a_ = randomFloats(rng, size_t(opts.audioSamples) * 2);
        b_ = randomFloats(rng, a_.size());
        outScalar_.assign(a_.size(), 0.0f);
        outNeon_.assign(a_.size(), -7.0f);
        outAuto_.assign(a_.size(), -7.0f);
    }

    void
    runScalar() override
    {
        for (size_t i = 0; i < a_.size(); ++i) {
            Sc<float> x = sload(&a_[i]);
            Sc<float> y = sload(&b_[i]);
            sstore(&outScalar_[i], kMul ? x * y : x + y);
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        size_t i = 0;
        for (; i + 4 <= a_.size(); i += 4) {
            auto x = vld1<128>(&a_[i]);
            auto y = vld1<128>(&b_[i]);
            vst1(&outNeon_[i], kMul ? vmul(x, y) : vadd(x, y));
            ctl::addr(3); // vector-API pointer bookkeeping (Section 6.5)
            ctl::loop();
        }
        for (; i < a_.size(); ++i) {
            Sc<float> x = sload(&a_[i]);
            Sc<float> y = sload(&b_[i]);
            sstore(&outNeon_[i], kMul ? x * y : x + y);
            ctl::loop();
        }
    }

    void
    runAuto() override
    {
        size_t i = 0;
        for (; i + 16 <= a_.size(); i += 16) {
            for (int u = 0; u < 4; ++u) {
                const size_t j = i + size_t(4 * u);
                auto x = vld1<128>(&a_[j]);
                auto y = vld1<128>(&b_[j]);
                vst1(&outAuto_[j], kMul ? vmul(x, y) : vadd(x, y));
            }
            ctl::loop();
        }
        for (; i < a_.size(); ++i) {
            Sc<float> x = sload(&a_[i]);
            Sc<float> y = sload(&b_[i]);
            sstore(&outAuto_[i], kMul ? x * y : x + y);
            ctl::loop();
        }
    }

    bool verify() override { return approxOutputs(outScalar_, outNeon_); }
    uint64_t flops() const override { return a_.size(); }

  private:
    std::vector<float> a_, b_, outScalar_, outNeon_, outAuto_;
};

} // namespace

class VAdd : public BinaryFloatKernel<false>
{
  public:
    explicit VAdd(const Options &o) : BinaryFloatKernel(o, 0x22) {}
};

class VMul : public BinaryFloatKernel<true>
{
  public:
    explicit VMul(const Options &o) : BinaryFloatKernel(o, 0x33) {}
};

// ---------------------------------------------------------------------
// vclip: out[i] = clamp(in[i], lo, hi)
// ---------------------------------------------------------------------

class VClip : public UnaryFloatKernel
{
  public:
    explicit VClip(const Options &opts) : UnaryFloatKernel(opts, 0x44) {}

    void
    runScalar() override
    {
        Sc<float> lo(-1.0f), hi(1.0f);
        for (size_t i = 0; i < in_.size(); ++i) {
            Sc<float> x = sload(&in_[i]);
            sstore(&outScalar_[i], smin(smax(x, lo), hi));
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        const auto lo = vdup<float, 128>(-1.0f);
        const auto hi = vdup<float, 128>(1.0f);
        size_t i = 0;
        for (; i + 4 <= in_.size(); i += 4) {
            auto v = vld1<128>(&in_[i]);
            vst1(&outNeon_[i], vmin(vmax(v, lo), hi));
            ctl::addr(2); // vector-API pointer bookkeeping (Section 6.5)
            ctl::loop();
        }
        for (; i < in_.size(); ++i) {
            Sc<float> x = sload(&in_[i]);
            sstore(&outNeon_[i], smin(smax(x, Sc<float>(-1.0f)),
                                      Sc<float>(1.0f)));
            ctl::loop();
        }
    }

    void
    runAuto() override
    {
        // Vectorizes, same shape as Neon (Auto ~= Neon case).
        const auto lo = vdup<float, 128>(-1.0f);
        const auto hi = vdup<float, 128>(1.0f);
        size_t i = 0;
        for (; i + 4 <= in_.size(); i += 4) {
            auto v = vld1<128>(&in_[i]);
            vst1(&outAuto_[i], vmin(vmax(v, lo), hi));
            ctl::loop();
        }
        for (; i < in_.size(); ++i) {
            Sc<float> x = sload(&in_[i]);
            sstore(&outAuto_[i], smin(smax(x, Sc<float>(-1.0f)),
                                      Sc<float>(1.0f)));
            ctl::loop();
        }
    }
};

// ---------------------------------------------------------------------
// audible: per-frame energy sum(s^2) (Section 6.1 intra-reduction)
// ---------------------------------------------------------------------

class Audible : public Workload
{
  public:
    explicit Audible(const Options &opts) : frame_(opts.audioFrame)
    {
        Rng rng(opts.seed ^ 0x55);
        in_ = randomFloats(rng, size_t(opts.audioSamples) * 2);
        const size_t frames = in_.size() / size_t(frame_);
        outScalar_.assign(frames, 0.0f);
        outNeon_.assign(frames, -1.0f);
    }

    void
    runScalar() override
    {
        const size_t frames = outScalar_.size();
        for (size_t f = 0; f < frames; ++f) {
            Sc<float> energy(0.0f);
            const float *p = &in_[f * size_t(frame_)];
            for (int i = 0; i < frame_; ++i) {
                Sc<float> s = sload(p + i);
                energy = smadd(s, s, energy);
                ctl::loop();
            }
            sstore(&outScalar_[f], energy);
            ctl::loop();
        }
    }

    void
    runNeon(int vec_bits) override
    {
        switch (vec_bits) {
          case 256:
            neonImpl<256>();
            break;
          case 512:
            neonImpl<512>();
            break;
          case 1024:
            neonImpl<1024>();
            break;
          default:
            neonImpl<128>();
            break;
        }
    }

    // FP reduction requires reassociation; Clang will not vectorize it
    // without fast-math (OtherLegality), so Auto stays scalar.

    bool
    verify() override
    {
        return approxOutputs(outScalar_, outNeon_, 1e-3f);
    }
    uint64_t flops() const override { return 2 * in_.size(); }

  private:
    template <int B>
    void
    neonImpl()
    {
        using VF = Vec<float, B>;
        constexpr int kLanes = VF::kLanes;
        const size_t frames = outNeon_.size();
        for (size_t f = 0; f < frames; ++f) {
            const float *p = &in_[f * size_t(frame_)];
            auto acc = vdup<float, B>(0.0f);
            int i = 0;
            for (; i + kLanes <= frame_; i += kLanes) {
                auto v = vld1<B>(p + i);
                acc = vmla(acc, v, v);
                ctl::addr(1); // vector-API pointer bookkeeping
                ctl::loop();
            }
            // Reduce wide registers stepwise (Section 7.1: U/SADDLV is
            // not extended to wider registers).
            Sc<float> energy = reduceAll(acc);
            for (; i < frame_; ++i) {
                Sc<float> s = sload(p + i);
                energy = smadd(s, s, energy);
                ctl::loop();
            }
            sstore(&outNeon_[f], energy);
            ctl::loop();
        }
    }

    static Sc<float>
    reduceAll(const Vec<float, 128> &v)
    {
        return vaddv(v);
    }
    template <int B>
    static Sc<float>
    reduceAll(const Vec<float, B> &v)
    {
        return reduceAll(vadd_halves(v));
    }

    int frame_;
    std::vector<float> in_, outScalar_, outNeon_;
};

// ---------------------------------------------------------------------
// deinterleave_channels: LRLR... -> L..L / R..R (VLD2)
// ---------------------------------------------------------------------

class Deinterleave : public Workload
{
  public:
    explicit Deinterleave(const Options &opts)
    {
        Rng rng(opts.seed ^ 0x66);
        in_ = randomFloats(rng, size_t(opts.audioSamples) * 2);
        const size_t n = in_.size() / 2;
        lScalar_.assign(n, 0);
        rScalar_.assign(n, 0);
        lNeon_.assign(n, -7.0f);
        rNeon_.assign(n, -7.0f);
        lAuto_.assign(n, -7.0f);
        rAuto_.assign(n, -7.0f);
    }

    void
    runScalar() override
    {
        const size_t n = lScalar_.size();
        for (size_t i = 0; i < n; ++i) {
            sstore(&lScalar_[i], sload(&in_[2 * i]));
            sstore(&rScalar_[i], sload(&in_[2 * i + 1]));
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        const size_t n = lNeon_.size();
        size_t i = 0;
        for (; i + 4 <= n; i += 4) {
            auto lr = vld2<128>(&in_[2 * i]);
            vst1(&lNeon_[i], lr[0]);
            vst1(&rNeon_[i], lr[1]);
            ctl::addr(3); // vector-API pointer bookkeeping (Section 6.5)
            ctl::loop();
        }
        for (; i < n; ++i) {
            sstore(&lNeon_[i], sload(&in_[2 * i]));
            sstore(&rNeon_[i], sload(&in_[2 * i + 1]));
            ctl::loop();
        }
    }

    void
    runAuto() override
    {
        // Clang vectorizes the strided access with shuffles (~= Neon).
        const size_t n = lAuto_.size();
        size_t i = 0;
        for (; i + 4 <= n; i += 4) {
            auto even = vld1<128>(&in_[2 * i]);
            auto odd = vld1<128>(&in_[2 * i + 4]);
            vst1(&lAuto_[i], vuzp1(even, odd));
            vst1(&rAuto_[i], vuzp2(even, odd));
            ctl::loop();
        }
        for (; i < n; ++i) {
            sstore(&lAuto_[i], sload(&in_[2 * i]));
            sstore(&rAuto_[i], sload(&in_[2 * i + 1]));
            ctl::loop();
        }
    }

    bool
    verify() override
    {
        return approxOutputs(lScalar_, lNeon_) &&
               approxOutputs(rScalar_, rNeon_);
    }

  private:
    std::vector<float> in_, lScalar_, rScalar_, lNeon_, rNeon_, lAuto_,
        rAuto_;
};

// ---------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------

SWAN_REGISTER_LIBRARY((core::LibraryUsage{
    "WebAudio", "WA", Domain::AudioProcessing,
    true, false, true, false, 16.3, 2.5}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"WebAudio", "WA", "gain_node",
                     Domain::AudioProcessing,
                     uint32_t(Pattern::VectorApi),
                     autovec::Verdict{true, 0}, false, 0},
    [](const Options &o) { return std::make_unique<GainNode>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"WebAudio", "WA", "vadd", Domain::AudioProcessing,
                     uint32_t(Pattern::VectorApi),
                     autovec::Verdict{true, 0}, false, 0},
    [](const Options &o) { return std::make_unique<VAdd>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"WebAudio", "WA", "vmul", Domain::AudioProcessing,
                     uint32_t(Pattern::VectorApi),
                     autovec::Verdict{true, 0}, false, 0},
    [](const Options &o) { return std::make_unique<VMul>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"WebAudio", "WA", "vclip", Domain::AudioProcessing,
                     uint32_t(Pattern::VectorApi),
                     autovec::Verdict{true, 0}, false, 0},
    [](const Options &o) { return std::make_unique<VClip>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"WebAudio", "WA", "audible",
                     Domain::AudioProcessing,
                     Pattern::Reduction | Pattern::VectorApi,
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::OtherLegality)},
                     /*widerWidths=*/true, 0},
    [](const Options &o) { return std::make_unique<Audible>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"WebAudio", "WA", "deinterleave_channels",
                     Domain::AudioProcessing,
                     Pattern::StridedAccess | Pattern::VectorApi,
                     autovec::Verdict{true, 0}, false, 0},
    [](const Options &o) { return std::make_unique<Deinterleave>(o); }}));

} // namespace swan::workloads::webaudio
