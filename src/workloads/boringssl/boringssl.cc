/**
 * @file
 * boringssl workloads (symbol BS, Cryptography). Low-level primitives
 * accelerated by the Armv8 Cryptography Extension (Section 3.2): AES-128
 * encryption (AESE/AESMC vs the scalar S-box look-up implementation),
 * ChaCha20 (pure add/xor/rotate, no crypto instructions needed), SHA-256
 * (SHA256H/H2/SU0/SU1 vs textbook rounds), and a GHASH-style carry-less
 * MAC (PMULL vs the scalar 4-bit-nibble table method). The GF(2^64)
 * variant of GHASH is used so both implementations stay readable; the
 * 128-bit version differs only in operand widths (DESIGN.md).
 *
 * A DES-like Feistel kernel (excluded from headline geomeans, like the
 * paper's DES) exists solely for the Section 6.2 look-up-table study:
 * its Neon implementation must export lanes to scalar registers for every
 * S-box access, which makes it *slower* than scalar (the paper measures
 * an 11% slowdown, with 73% of instructions spent on table look-ups).
 */

#include "workloads/common.hh"

namespace swan::workloads::boringssl
{

using namespace swan::simd;
using core::Domain;
using core::Options;
using core::Pattern;
using core::Workload;

// ---------------------------------------------------------------------
// AES-128 (ECB over the buffer)
// ---------------------------------------------------------------------

class AesEncrypt : public Workload
{
  public:
    explicit AesEncrypt(const Options &opts)
    {
        Rng rng(opts.seed ^ 0xae5);
        data_ = randomInts<uint8_t>(rng,
                                    size_t(opts.bufferBytes) & ~15ull);
        // Round keys: random (a real schedule does not change the
        // kernel's instruction profile; keys are inputs here).
        for (auto &rk : roundKeys_)
            for (auto &b : rk)
                b = rng.u8();
        outScalar_.assign(data_.size(), 0);
        outNeon_.assign(data_.size(), 1);
        buildTTables();
    }

    void
    runScalar() override
    {
        // T-table implementation (boringssl's scalar path): one 32-bit
        // table look-up per state byte folds SubBytes, ShiftRows and
        // MixColumns together — the A[B[i]] pattern that defeats the
        // auto-vectorizer (Section 6.2).
        for (size_t blk = 0; blk + 16 <= data_.size(); blk += 16) {
            std::array<Sc<uint32_t>, 4> col;
            for (int c = 0; c < 4; ++c)
                col[size_t(c)] = loadCol(&data_[blk + size_t(4 * c)]);
            for (int round = 0; round < 9; ++round) {
                std::array<Sc<uint32_t>, 4> x;
                for (int c = 0; c < 4; ++c) {
                    x[size_t(c)] = col[size_t(c)] ^
                                   Sc<uint32_t>(keyWord(round, c));
                }
                for (int c = 0; c < 4; ++c) {
                    Sc<uint32_t> acc(0u);
                    for (int r = 0; r < 4; ++r) {
                        Sc<uint32_t> byte =
                            (x[size_t((c + r) % 4)] >> (8 * r)) &
                            Sc<uint32_t>(0xffu);
                        acc = acc ^ sload(&ttab_[size_t(r)][byte.v]);
                    }
                    col[size_t(c)] = acc;
                }
                ctl::loop();
            }
            // Final round: SubBytes + ShiftRows + AddRoundKey, bytewise.
            std::array<Sc<uint32_t>, 4> x;
            for (int c = 0; c < 4; ++c)
                x[size_t(c)] = col[size_t(c)] ^
                               Sc<uint32_t>(keyWord(9, c));
            for (int c = 0; c < 4; ++c) {
                Sc<uint32_t> out(0u);
                for (int r = 0; r < 4; ++r) {
                    Sc<uint32_t> byte =
                        (x[size_t((c + r) % 4)] >> (8 * r)) &
                        Sc<uint32_t>(0xffu);
                    Sc<uint8_t> sub = sload(&crypto::kAesSbox[byte.v]);
                    out = out | (sub.to<uint32_t>() << (8 * r));
                }
                out = out ^ Sc<uint32_t>(keyWord(10, c));
                storeCol(&outScalar_[blk + size_t(4 * c)], out);
            }
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        std::array<Vec<uint8_t, 128>, 11> rk;
        for (int r = 0; r < 11; ++r)
            rk[size_t(r)] = vld1<128>(roundKeys_[size_t(r)].data());
        for (size_t blk = 0; blk + 16 <= data_.size(); blk += 16) {
            auto state = vld1<128>(&data_[blk]);
            for (int round = 0; round < 9; ++round)
                state = vaesmc(vaese(state, rk[size_t(round)]));
            state = vaese(state, rk[9]);
            state = veor(state, rk[10]);
            vst1(&outNeon_[blk], state);
            ctl::loop();
        }
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    /** Build the four round T-tables from the S-box (host constants). */
    void
    buildTTables()
    {
        auto x2 = [](uint8_t v) { return crypto::xtime(v); };
        for (uint32_t v = 0; v < 256; ++v) {
            const uint8_t sb = crypto::kAesSbox[v];
            const uint8_t s2 = x2(sb);
            const uint8_t s3 = uint8_t(s2 ^ sb);
            // MixColumns rows [2 3 1 1; 1 2 3 1; 1 1 2 3; 3 1 1 2];
            // T[r][v] is the contribution of shifted-row byte r.
            ttab_[0][v] = uint32_t(s2) | uint32_t(sb) << 8 |
                          uint32_t(sb) << 16 | uint32_t(s3) << 24;
            ttab_[1][v] = uint32_t(s3) | uint32_t(s2) << 8 |
                          uint32_t(sb) << 16 | uint32_t(sb) << 24;
            ttab_[2][v] = uint32_t(sb) | uint32_t(s3) << 8 |
                          uint32_t(s2) << 16 | uint32_t(sb) << 24;
            ttab_[3][v] = uint32_t(sb) | uint32_t(sb) << 8 |
                          uint32_t(s3) << 16 | uint32_t(s2) << 24;
        }
    }

    uint32_t
    keyWord(int round, int c) const
    {
        uint32_t w;
        std::memcpy(&w, &roundKeys_[size_t(round)][size_t(4 * c)], 4);
        return w;
    }

    static Sc<uint32_t>
    loadCol(const uint8_t *p)
    {
        uint32_t w;
        std::memcpy(&w, p, 4);
        uint64_t id = emitMem(InstrClass::SLoad, p, 4, Lat::load);
        return {w, id};
    }

    static void
    storeCol(uint8_t *p, Sc<uint32_t> v)
    {
        emitMem(InstrClass::SStore, p, 4, Lat::store, v.src);
        std::memcpy(p, &v.v, 4);
    }

    std::vector<uint8_t> data_, outScalar_, outNeon_;
    std::array<std::array<uint8_t, 16>, 11> roundKeys_{};
    std::array<std::array<uint32_t, 256>, 4> ttab_{};
};

// ---------------------------------------------------------------------
// ChaCha20 block function (keystream XOR over the buffer)
// ---------------------------------------------------------------------

class ChaCha20 : public Workload
{
  public:
    explicit ChaCha20(const Options &opts)
    {
        Rng rng(opts.seed ^ 0xcaca);
        data_ = randomInts<uint8_t>(rng,
                                    size_t(opts.bufferBytes) & ~63ull);
        for (auto &w : state0_)
            w = rng.u32();
        outScalar_.assign(data_.size(), 0);
        outNeon_.assign(data_.size(), 1);
    }

    void
    runScalar() override
    {
        uint32_t counter = 0;
        for (size_t blk = 0; blk + 64 <= data_.size(); blk += 64) {
            Sc<uint32_t> x[16];
            for (int i = 0; i < 16; ++i)
                x[i] = Sc<uint32_t>(state0_[size_t(i)]);
            x[12] = Sc<uint32_t>(state0_[12] + counter);
            for (int round = 0; round < 10; ++round) {
                qr(x[0], x[4], x[8], x[12]);
                qr(x[1], x[5], x[9], x[13]);
                qr(x[2], x[6], x[10], x[14]);
                qr(x[3], x[7], x[11], x[15]);
                qr(x[0], x[5], x[10], x[15]);
                qr(x[1], x[6], x[11], x[12]);
                qr(x[2], x[7], x[8], x[13]);
                qr(x[3], x[4], x[9], x[14]);
                ctl::loop();
            }
            for (int i = 0; i < 16; ++i) {
                Sc<uint32_t> ks =
                    x[i] + Sc<uint32_t>(state0_[size_t(i)] +
                                        (i == 12 ? counter : 0));
                uint32_t word;
                std::memcpy(&word, &data_[blk + size_t(4 * i)], 4);
                uint64_t id = emitMem(InstrClass::SLoad,
                                      &data_[blk + size_t(4 * i)], 4,
                                      Lat::load);
                Sc<uint32_t> d(word, id);
                Sc<uint32_t> o = d ^ ks;
                emitMem(InstrClass::SStore,
                        &outScalar_[blk + size_t(4 * i)], 4, Lat::store,
                        o.src);
                std::memcpy(&outScalar_[blk + size_t(4 * i)], &o.v, 4);
            }
            ++counter;
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        uint32_t counter = 0;
        for (size_t blk = 0; blk + 64 <= data_.size(); blk += 64) {
            std::array<Vec<uint32_t, 128>, 4> v;
            uint32_t init[16];
            for (int i = 0; i < 16; ++i)
                init[i] = state0_[size_t(i)];
            init[12] += counter;
            for (int r = 0; r < 4; ++r)
                v[size_t(r)] = vld1<128>(init + 4 * r);
            auto v0_init = v[0], v1_init = v[1], v2_init = v[2],
                 v3_init = v[3];
            for (int round = 0; round < 10; ++round) {
                vqr(v[0], v[1], v[2], v[3]);
                // Diagonalize.
                v[1] = vext(v[1], v[1], 1);
                v[2] = vext(v[2], v[2], 2);
                v[3] = vext(v[3], v[3], 3);
                vqr(v[0], v[1], v[2], v[3]);
                v[1] = vext(v[1], v[1], 3);
                v[2] = vext(v[2], v[2], 2);
                v[3] = vext(v[3], v[3], 1);
                ctl::loop();
            }
            v[0] = vadd(v[0], v0_init);
            v[1] = vadd(v[1], v1_init);
            v[2] = vadd(v[2], v2_init);
            v[3] = vadd(v[3], v3_init);
            for (int r = 0; r < 4; ++r) {
                const uint8_t *src = &data_[blk + size_t(16 * r)];
                auto d = vld1<128>(src);
                auto ks = vreinterpret<uint8_t>(v[size_t(r)]);
                vst1(&outNeon_[blk + size_t(16 * r)], veor(d, ks));
            }
            ++counter;
            ctl::loop();
        }
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    static void
    qr(Sc<uint32_t> &a, Sc<uint32_t> &b, Sc<uint32_t> &c,
       Sc<uint32_t> &d)
    {
        auto rotl = [](Sc<uint32_t> x, int n) {
            return (x << n) | (x >> (32 - n));
        };
        a += b;
        d = rotl(d ^ a, 16);
        c += d;
        b = rotl(b ^ c, 12);
        a += b;
        d = rotl(d ^ a, 8);
        c += d;
        b = rotl(b ^ c, 7);
    }

    static void
    vqr(Vec<uint32_t, 128> &a, Vec<uint32_t, 128> &b,
        Vec<uint32_t, 128> &c, Vec<uint32_t, 128> &d)
    {
        auto rotl = [](const Vec<uint32_t, 128> &x, int n) {
            if (n == 16) {
                // REV32 on 16-bit lanes rotates every word by 16.
                return vreinterpret<uint32_t>(
                    vrev32(vreinterpret<uint16_t>(x)));
            }
            return vorr(vshl(x, n), vshr(x, 32 - n));
        };
        a = vadd(a, b);
        d = rotl(veor(d, a), 16);
        c = vadd(c, d);
        b = rotl(veor(b, c), 12);
        a = vadd(a, b);
        d = rotl(veor(d, a), 8);
        c = vadd(c, d);
        b = rotl(veor(b, c), 7);
    }

    std::vector<uint8_t> data_, outScalar_, outNeon_;
    std::array<uint32_t, 16> state0_{};
};

// ---------------------------------------------------------------------
// SHA-256 over the buffer
// ---------------------------------------------------------------------

/** SHA-256 round constants. */
extern const uint32_t kSha256K[64];
const uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
    0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
    0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
    0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
    0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
    0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
    0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
    0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

class Sha256 : public Workload
{
  public:
    explicit Sha256(const Options &opts)
    {
        Rng rng(opts.seed ^ 0x5a25);
        data_ = randomInts<uint8_t>(rng,
                                    size_t(opts.bufferBytes) & ~63ull);
    }

    void
    runScalar() override
    {
        uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                         0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
        for (size_t blk = 0; blk + 64 <= data_.size(); blk += 64) {
            Sc<uint32_t> w[64];
            for (int i = 0; i < 16; ++i) {
                uint32_t word;
                std::memcpy(&word, &data_[blk + size_t(4 * i)], 4);
                uint64_t id = emitMem(InstrClass::SLoad,
                                      &data_[blk + size_t(4 * i)], 4,
                                      Lat::load);
                // REV byte swap (1 scalar op).
                uint64_t rid = emitOp(InstrClass::SInt, Fu::SAlu,
                                      Lat::sAlu, id);
                w[i] = Sc<uint32_t>(__builtin_bswap32(word), rid);
            }
            for (int i = 16; i < 64; ++i) {
                Sc<uint32_t> s0 = ror(w[i - 15], 7) ^
                                  ror(w[i - 15], 18) ^ (w[i - 15] >> 3);
                Sc<uint32_t> s1 = ror(w[i - 2], 17) ^
                                  ror(w[i - 2], 19) ^ (w[i - 2] >> 10);
                w[i] = w[i - 16] + s0 + w[i - 7] + s1;
                ctl::loop();
            }
            Sc<uint32_t> a(h[0]), b(h[1]), c(h[2]), d(h[3]);
            Sc<uint32_t> e(h[4]), f(h[5]), g(h[6]), hh(h[7]);
            for (int i = 0; i < 64; ++i) {
                Sc<uint32_t> k = sload(&kSha256K[i]);
                Sc<uint32_t> big1 =
                    ror(e, 6) ^ ror(e, 11) ^ ror(e, 25);
                Sc<uint32_t> ch = (e & f) ^ (~e & g);
                Sc<uint32_t> t1 = hh + big1 + ch + k + w[i];
                Sc<uint32_t> big0 =
                    ror(a, 2) ^ ror(a, 13) ^ ror(a, 22);
                Sc<uint32_t> maj = (a & b) ^ (a & c) ^ (b & c);
                Sc<uint32_t> t2 = big0 + maj;
                hh = g; g = f; f = e; e = d + t1;
                d = c; c = b; b = a; a = t1 + t2;
                ctl::loop();
            }
            h[0] += a.v; h[1] += b.v; h[2] += c.v; h[3] += d.v;
            h[4] += e.v; h[5] += f.v; h[6] += g.v; h[7] += hh.v;
            ctl::loop();
        }
        std::memcpy(outScalar_, h, sizeof(h));
    }

    void
    runNeon(int) override
    {
        uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                         0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
        for (size_t blk = 0; blk + 64 <= data_.size(); blk += 64) {
            auto abcd = vld1<128>(h);
            auto efgh = vld1<128>(h + 4);
            std::array<Vec<uint32_t, 128>, 4> w;
            for (int i = 0; i < 4; ++i) {
                auto bytes = vld1<128>(&data_[blk + size_t(16 * i)]);
                auto swapped = vrev32(bytes); // REV32.16B byte swap
                w[size_t(i)] = vreinterpret<uint32_t>(swapped);
            }
            auto a0 = abcd, e0 = efgh;
            for (int r = 0; r < 16; ++r) {
                auto wk = vadd(w[0], vld1<128>(&kSha256K[4 * r]));
                auto new_abcd = vsha256h(abcd, efgh, wk);
                efgh = vsha256h2(efgh, abcd, wk);
                abcd = new_abcd;
                if (r < 15) {
                    // Message schedule: W[t..t+3] from the last 16;
                    // the window keeps sliding after generation stops.
                    Vec<uint32_t, 128> next{};
                    if (r < 12) {
                        auto part = vsha256su0(w[0], w[1]);
                        next = vsha256su1(part, w[2], w[3]);
                    }
                    w[0] = w[1];
                    w[1] = w[2];
                    w[2] = w[3];
                    if (r < 12)
                        w[3] = next;
                }
                ctl::loop();
            }
            abcd = vadd(abcd, a0);
            efgh = vadd(efgh, e0);
            uint32_t tmp[8];
            vst1(tmp, abcd);
            vst1(tmp + 4, efgh);
            std::memcpy(h, tmp, sizeof(h));
            ctl::loop();
        }
        std::memcpy(outNeon_, h, sizeof(h));
    }

    bool
    verify() override
    {
        return std::memcmp(outScalar_, outNeon_, sizeof(outScalar_)) == 0;
    }

  private:
    static Sc<uint32_t>
    ror(Sc<uint32_t> x, int n)
    {
        return (x >> n) | (x << (32 - n));
    }

    std::vector<uint8_t> data_;
    uint32_t outScalar_[8] = {};
    uint32_t outNeon_[8] = {1};
};

// ---------------------------------------------------------------------
// GHASH-style carry-less MAC over GF(2^64)
// ---------------------------------------------------------------------

class GhashPmull : public Workload
{
  public:
    explicit GhashPmull(const Options &opts)
    {
        Rng rng(opts.seed ^ 0x64a5);
        data_ = randomInts<uint8_t>(rng,
                                    size_t(opts.bufferBytes) & ~7ull);
        h_ = rng.next() | 1;
        // 4-bit nibble table: T[i] = clmul(i, H), 68-bit results.
        for (uint64_t i = 0; i < 16; ++i) {
            uint64_t lo = 0, hi = 0;
            for (int b = 0; b < 4; ++b) {
                if ((i >> b) & 1) {
                    lo ^= h_ << b;
                    if (b > 0)
                        hi ^= h_ >> (64 - b);
                }
            }
            tabLo_[i] = lo;
            tabHi_[i] = hi;
        }
    }

    void
    runScalar() override
    {
        // 4-bit table method (gcm_gmult_4bit style): table look-ups per
        // nibble — the Section 6.2 look-up pattern.
        Sc<uint64_t> x(0ull);
        for (size_t i = 0; i + 8 <= data_.size(); i += 8) {
            x = x ^ loadWord(&data_[i]);
            // 128-bit accumulator acc = X * H, nibble at a time.
            Sc<uint64_t> acc_lo(0ull), acc_hi(0ull);
            for (int nib = 15; nib >= 0; --nib) {
                // acc <<= 4 (128-bit).
                acc_hi = (acc_hi << 4) | (acc_lo >> 60);
                acc_lo = acc_lo << 4;
                Sc<uint64_t> idx = (x >> (4 * nib)) &
                                   Sc<uint64_t>(uint64_t(0xf));
                acc_lo = acc_lo ^ sload(&tabLo_[idx.v]);
                acc_hi = acc_hi ^ sload(&tabHi_[idx.v]);
                ctl::loop();
            }
            x = reduceScalar(acc_lo, acc_hi);
            ctl::loop();
        }
        outScalar_ = x.v;
    }

    void
    runNeon(int) override
    {
        auto h = vdup<uint64_t, 128>(Sc<uint64_t>(h_));
        auto fold_c = vdup<uint64_t, 128>(uint64_t(0x1b));
        auto x = vdup<uint64_t, 128>(uint64_t(0));
        const auto zero = vdup<uint64_t, 128>(uint64_t(0));
        for (size_t i = 0; i + 8 <= data_.size(); i += 8) {
            auto d = vld1_partial<128>(
                reinterpret_cast<const uint64_t *>(&data_[i]), 1);
            auto xin = veor(x, d);
            auto prod = vpmull_lo(xin, h);           // [lo, hi]
            // Fold hi: hi * 0x1b, then the 4-bit spill once more.
            auto hi = vext(prod, zero, 1);           // lane0 = hi
            auto f1 = vpmull_lo(hi, fold_c);         // [f1lo, f1hi]
            auto f1hi = vext(f1, zero, 1);
            auto f2 = vpmull_lo(f1hi, fold_c);
            x = veor(veor(prod, f1), f2);
            // Clear lane1 (keep the reduced 64-bit value in lane0).
            x = vset_lane(x, 1, Sc<uint64_t>(uint64_t(0)));
            ctl::loop();
        }
        outNeon_ = vget_lane(x, 0).v;
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    static Sc<uint64_t>
    loadWord(const uint8_t *p)
    {
        uint64_t word;
        std::memcpy(&word, p, 8);
        uint64_t id = emitMem(InstrClass::SLoad, p, 8, Lat::load);
        return {word, id};
    }

    /** Reduce a 128-bit carry-less product mod x^64+x^4+x^3+x+1. */
    static Sc<uint64_t>
    reduceScalar(Sc<uint64_t> lo, Sc<uint64_t> hi)
    {
        Sc<uint64_t> f = (hi << 4) ^ (hi << 3) ^ (hi << 1) ^ hi;
        Sc<uint64_t> carry =
            (hi >> 60) ^ (hi >> 61) ^ (hi >> 63);
        Sc<uint64_t> f2 = (carry << 4) ^ (carry << 3) ^ (carry << 1) ^
                          carry;
        return lo ^ f ^ f2;
    }

    std::vector<uint8_t> data_;
    uint64_t h_ = 0;
    uint64_t tabLo_[16] = {}, tabHi_[16] = {};
    uint64_t outScalar_ = 0, outNeon_ = 1;
};

// ---------------------------------------------------------------------
// DES-like Feistel cipher (Section 6.2 study kernel; excluded from
// headline results). S-boxes are synthetic 6->4-bit tables.
// ---------------------------------------------------------------------

class DesLut : public Workload
{
  public:
    explicit DesLut(const Options &opts, bool use_lut = true)
        : useLut_(use_lut)
    {
        Rng rng(opts.seed ^ 0xde5);
        data_ = randomInts<uint8_t>(rng,
                                    size_t(opts.bufferBytes) & ~7ull);
        for (auto &box : sbox_)
            for (auto &e : box)
                e = uint8_t(rng.range(0, 15));
        for (auto &k : keys_)
            k = rng.u32();
        outScalar_.assign(data_.size() / 8, 0);
        outNeon_.assign(data_.size() / 8, 1);
    }

    void
    runScalar() override
    {
        for (size_t b = 0; b * 8 + 8 <= data_.size(); ++b) {
            uint32_t halves[2];
            std::memcpy(halves, &data_[b * 8], 8);
            uint64_t id = emitMem(InstrClass::SLoad, &data_[b * 8], 8,
                                  Lat::load);
            Sc<uint32_t> l(halves[0], id), r(halves[1], id);
            for (int round = 0; round < 16; ++round) {
                Sc<uint32_t> f = feistelScalar(r, keys_[size_t(round)]);
                Sc<uint32_t> nl = r;
                r = l ^ f;
                l = nl;
                ctl::loop();
            }
            sstore(&outScalar_[b], (uint64_t(l.v) << 32) | r.v,
                   l.src ? l : r);
        }
    }

    void
    runNeon(int) override
    {
        // Four blocks per vector; every S-box access exports the lane to
        // a scalar register, looks the value up, and re-inserts it
        // (Section 6.2: ~73% of instructions are table look-ups).
        const size_t nblk = data_.size() / 8;
        size_t b = 0;
        for (; b + 4 <= nblk; b += 4) {
            auto l = vdup<uint32_t, 128>(0u);
            auto r = vdup<uint32_t, 128>(0u);
            for (int j = 0; j < 4; ++j) {
                uint32_t halves[2];
                std::memcpy(halves, &data_[(b + size_t(j)) * 8], 8);
                uint64_t id = emitMem(InstrClass::SLoad,
                                      &data_[(b + size_t(j)) * 8], 8,
                                      Lat::load);
                l = vset_lane(l, j, Sc<uint32_t>(halves[0], id));
                r = vset_lane(r, j, Sc<uint32_t>(halves[1], id));
            }
            for (int round = 0; round < 16; ++round) {
                auto f = useLut_ ? feistelVecLut(r, keys_[size_t(round)])
                                 : feistelVecNoLut(r,
                                                   keys_[size_t(round)]);
                auto nl = r;
                r = veor(l, f);
                l = nl;
                ctl::loop();
            }
            for (int j = 0; j < 4; ++j) {
                Sc<uint32_t> lv = vget_lane(l, j);
                Sc<uint32_t> rv = vget_lane(r, j);
                sstore(&outNeon_[b + size_t(j)],
                       (uint64_t(lv.v) << 32) | rv.v, lv);
            }
            ctl::loop();
        }
    }

    bool verify() override { return outScalar_ == outNeon_; }

    /** Switch both implementations to the arithmetic S-box variant. */
    void setUseLut(bool use_lut) { useLut_ = use_lut; }

    /** Fraction of Neon instructions spent on look-up lane traffic. */
    static constexpr const char *kNote =
        "see bench/sec62_des_lut for the Section 6.2 study";

    void
    runScalarNoLut()
    {
        const bool saved = useLut_;
        useLut_ = false;
        runScalarImpl();
        useLut_ = saved;
    }

  private:
    void
    runScalarImpl()
    {
        runScalar();
    }

    static void
    sstore(uint64_t *p, uint64_t v, Sc<uint32_t> dep)
    {
        emitMem(InstrClass::SStore, p, 8, Lat::store, dep.src);
        *p = v;
    }

    Sc<uint32_t>
    feistelScalar(Sc<uint32_t> r, uint32_t key)
    {
        Sc<uint32_t> x = r ^ Sc<uint32_t>(key);
        Sc<uint32_t> out(0u);
        for (int s = 0; s < 8; ++s) {
            Sc<uint32_t> chunk = (x >> (4 * s)) &
                                 Sc<uint32_t>(0x3fu & 0xfu);
            Sc<uint32_t> v;
            if (useLut_) {
                Sc<uint8_t> t =
                    sload(&sbox_[size_t(s)][chunk.v & 0x3f]);
                v = t.to<uint32_t>();
            } else {
                // Arithmetic substitute for the S-box.
                v = ((chunk * Sc<uint32_t>(193u) + Sc<uint32_t>(7u)) >>
                     2) & Sc<uint32_t>(0xfu);
            }
            out = out | (v << (4 * s));
        }
        return out;
    }

    Vec<uint32_t, 128>
    feistelVecLut(const Vec<uint32_t, 128> &r, uint32_t key)
    {
        auto x = veor(r, vdup<uint32_t, 128>(key));
        auto out = vdup<uint32_t, 128>(0u);
        for (int s = 0; s < 8; ++s) {
            auto chunk = vand(vshr(x, 4 * s), vdup<uint32_t, 128>(0xfu));
            // Export each lane, look up, re-insert (the costly path).
            auto looked = vdup<uint32_t, 128>(0u);
            for (int lane = 0; lane < 4; ++lane) {
                Sc<uint32_t> c = vget_lane(chunk, lane);
                Sc<uint8_t> t = sload(&sbox_[size_t(s)][c.v & 0x3f]);
                looked = vset_lane(looked, lane, t.to<uint32_t>());
            }
            out = vorr(out, vshl(looked, 4 * s));
        }
        return out;
    }

    Vec<uint32_t, 128>
    feistelVecNoLut(const Vec<uint32_t, 128> &r, uint32_t key)
    {
        auto x = veor(r, vdup<uint32_t, 128>(key));
        auto out = vdup<uint32_t, 128>(0u);
        for (int s = 0; s < 8; ++s) {
            auto chunk = vand(vshr(x, 4 * s), vdup<uint32_t, 128>(0xfu));
            auto v = vmul(chunk, vdup<uint32_t, 128>(193u));
            v = vadd(v, vdup<uint32_t, 128>(7u));
            v = vand(vshr(v, 2), vdup<uint32_t, 128>(0xfu));
            out = vorr(out, vshl(v, 4 * s));
        }
        return out;
    }

    bool useLut_;
    std::vector<uint8_t> data_;
    std::array<std::array<uint8_t, 64>, 8> sbox_{};
    std::array<uint32_t, 16> keys_{};
    std::vector<uint64_t> outScalar_, outNeon_;
};

/** Factory used by the Section 6.2 bench. */
std::unique_ptr<Workload>
makeDesLut(const Options &opts, bool use_lut)
{
    return std::make_unique<DesLut>(opts, use_lut);
}

// ---------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------

SWAN_REGISTER_LIBRARY((core::LibraryUsage{
    "boringssl", "BS", Domain::Cryptography,
    true, true, true, false, 0.9, 0.6}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"boringssl", "BS", "aes_encrypt",
                     Domain::Cryptography,
                     uint32_t(Pattern::RandomAccess),
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::IndirectMemory)},
                     false, 0},
    [](const Options &o) { return std::make_unique<AesEncrypt>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"boringssl", "BS", "chacha20",
                     Domain::Cryptography, 0,
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::OtherLegality)},
                     false, 0},
    [](const Options &o) { return std::make_unique<ChaCha20>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"boringssl", "BS", "sha256", Domain::Cryptography,
                     uint32_t(Pattern::Reduction),
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::ComplexPhi)},
                     false, 0},
    [](const Options &o) { return std::make_unique<Sha256>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"boringssl", "BS", "ghash_pmull",
                     Domain::Cryptography,
                     uint32_t(Pattern::RandomAccess),
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::IndirectMemory)},
                     false, 0},
    [](const Options &o) { return std::make_unique<GhashPmull>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"boringssl", "BS", "des_lut", Domain::Cryptography,
                     uint32_t(Pattern::RandomAccess),
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::IndirectMemory)},
                     false, 0, /*excluded=*/true},
    [](const Options &o) { return std::make_unique<DesLut>(o); }}));

} // namespace swan::workloads::boringssl
