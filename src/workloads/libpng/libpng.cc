/**
 * @file
 * libpng workloads (symbol LP, Image Processing). PNG row de-filtering
 * for 4-byte (RGBA) pixels: Sub, Up, Avg and Paeth reconstruction filters
 * plus indexed-color palette expansion (Section 3.2: "color code (PNG's
 * true and indexed color)").
 *
 * Sub/Avg/Paeth carry a dependence on the previous reconstructed pixel,
 * which defeats the auto-vectorizer (complex PHI, Section 5.2 Example 3);
 * the Neon versions either build a prefix sum with EXT/ADD chains (Sub)
 * or walk pixel-by-pixel with 4 active lanes (Avg/Paeth, the libpng
 * upstream approach). Up is embarrassingly parallel and auto-vectorizes.
 * Palette expansion is the A[B[i]] look-up-table pattern (Section 6.2).
 */

#include "workloads/common.hh"

namespace swan::workloads::libpng
{

using namespace swan::simd;
using core::Domain;
using core::Options;
using core::Pattern;
using core::Workload;

constexpr int kBpp = 4; //!< bytes per pixel (RGBA)

namespace
{

/** Base: a filtered row, the previous (reconstructed) row, outputs. */
class DefilterKernel : public Workload
{
  public:
    DefilterKernel(const Options &opts, uint64_t salt)
        : rowBytes_(opts.imageWidth * kBpp), rows_(opts.imageHeight)
    {
        Rng rng(opts.seed ^ salt);
        filtered_ =
            randomInts<uint8_t>(rng, size_t(rowBytes_) * size_t(rows_));
        prev_ = randomInts<uint8_t>(rng, size_t(rowBytes_));
        outScalar_.assign(filtered_.size(), 0);
        outNeon_.assign(filtered_.size(), 1);
        outAuto_.assign(filtered_.size(), 2);
    }

    bool verify() override { return outScalar_ == outNeon_; }

  protected:
    int rowBytes_, rows_;
    std::vector<uint8_t> filtered_, prev_, outScalar_, outNeon_, outAuto_;
};

} // namespace

// ---------------------------------------------------------------------
// defilter_sub: out[i] = in[i] + out[i - 4]
// ---------------------------------------------------------------------

class DefilterSub : public DefilterKernel
{
  public:
    explicit DefilterSub(const Options &opts)
        : DefilterKernel(opts, 0x7001)
    {
    }

    void
    runScalar() override
    {
        for (int y = 0; y < rows_; ++y) {
            const uint8_t *in = &filtered_[size_t(y) * size_t(rowBytes_)];
            uint8_t *out = &outScalar_[size_t(y) * size_t(rowBytes_)];
            for (int i = 0; i < kBpp; ++i)
                sstore(out + i, sload(in + i));
            for (int i = kBpp; i < rowBytes_; ++i) {
                sstore(out + i, sload(in + i) + sload(out + i - kBpp));
                ctl::loop();
            }
        }
    }

    void
    runNeon(int) override
    {
        // 16-byte prefix sum over 4-byte groups: two EXT+ADD steps plus
        // the carried last pixel of the previous vector.
        const auto zero = vdup<uint8_t, 128>(uint8_t(0));
        for (int y = 0; y < rows_; ++y) {
            const uint8_t *in = &filtered_[size_t(y) * size_t(rowBytes_)];
            uint8_t *out = &outNeon_[size_t(y) * size_t(rowBytes_)];
            auto carry = vdup<uint8_t, 128>(uint8_t(0));
            int i = 0;
            for (; i + 16 <= rowBytes_; i += 16) {
                auto d = vld1<128>(in + i);
                auto s1 = vadd(d, vext(zero, d, 12));
                auto s2 = vadd(s1, vext(zero, s1, 8));
                // Broadcast the carried pixel (last 4 output bytes).
                auto v = vadd(s2, carry);
                vst1(out + i, v);
                auto v32 = vreinterpret<uint32_t>(v);
                carry = vreinterpret<uint8_t>(vdup_lane(v32, 3));
                ctl::loop();
            }
            // Scalar tail.
            for (; i < rowBytes_; ++i) {
                if (i < kBpp)
                    sstore(out + i, sload(in + i));
                else
                    sstore(out + i,
                           sload(in + i) + sload(out + i - kBpp));
                ctl::loop();
            }
        }
    }

    bool
    verify() override
    {
        // The vector prefix sum treats the first pixel as carry 0, which
        // matches the scalar "copy first pixel" semantics.
        return outScalar_ == outNeon_;
    }
};

// ---------------------------------------------------------------------
// defilter_up: out[i] = in[i] + up[i]
// ---------------------------------------------------------------------

class DefilterUp : public DefilterKernel
{
  public:
    explicit DefilterUp(const Options &opts) : DefilterKernel(opts, 0x7002)
    {
    }

    void
    runScalar() override
    {
        for (int y = 0; y < rows_; ++y) {
            const uint8_t *in = &filtered_[size_t(y) * size_t(rowBytes_)];
            const uint8_t *up = upRow(y, outScalar_);
            uint8_t *out = &outScalar_[size_t(y) * size_t(rowBytes_)];
            for (int i = 0; i < rowBytes_; ++i) {
                sstore(out + i, sload(in + i) + sload(up + i));
                ctl::loop();
            }
        }
    }

    void runNeon(int) override { vecBody(outNeon_); }
    void runAuto() override { vecBody(outAuto_); } // vectorizes (~= Neon)

  private:
    const uint8_t *
    upRow(int y, const std::vector<uint8_t> &out) const
    {
        return y == 0 ? prev_.data()
                      : &out[size_t(y - 1) * size_t(rowBytes_)];
    }

    void
    vecBody(std::vector<uint8_t> &out_buf)
    {
        for (int y = 0; y < rows_; ++y) {
            const uint8_t *in = &filtered_[size_t(y) * size_t(rowBytes_)];
            const uint8_t *up = upRow(y, out_buf);
            uint8_t *out = &out_buf[size_t(y) * size_t(rowBytes_)];
            int i = 0;
            for (; i + 16 <= rowBytes_; i += 16) {
                vst1(out + i, vadd(vld1<128>(in + i), vld1<128>(up + i)));
                ctl::loop();
            }
            for (; i < rowBytes_; ++i) {
                sstore(out + i, sload(in + i) + sload(up + i));
                ctl::loop();
            }
        }
    }
};

// ---------------------------------------------------------------------
// defilter_avg: out[i] = in[i] + (out[i-4] + up[i]) / 2
// ---------------------------------------------------------------------

class DefilterAvg : public DefilterKernel
{
  public:
    explicit DefilterAvg(const Options &opts)
        : DefilterKernel(opts, 0x7003)
    {
    }

    void
    runScalar() override
    {
        for (int y = 0; y < rows_; ++y) {
            const uint8_t *in = &filtered_[size_t(y) * size_t(rowBytes_)];
            const uint8_t *up = y == 0
                ? prev_.data()
                : &outScalar_[size_t(y - 1) * size_t(rowBytes_)];
            uint8_t *out = &outScalar_[size_t(y) * size_t(rowBytes_)];
            for (int i = 0; i < rowBytes_; ++i) {
                Sc<uint32_t> left =
                    i < kBpp ? Sc<uint32_t>(0u)
                             : sload(out + i - kBpp).to<uint32_t>();
                Sc<uint32_t> u = sload(up + i).to<uint32_t>();
                Sc<uint8_t> avg = ((left + u) >> 1).to<uint8_t>();
                sstore(out + i, sload(in + i) + avg);
                ctl::loop();
            }
        }
    }

    void
    runNeon(int) override
    {
        // Pixel-at-a-time on 4 active lanes (libpng upstream strategy:
        // the carried dependence prevents full-width rows).
        for (int y = 0; y < rows_; ++y) {
            const uint8_t *in = &filtered_[size_t(y) * size_t(rowBytes_)];
            const uint8_t *up = y == 0
                ? prev_.data()
                : &outNeon_[size_t(y - 1) * size_t(rowBytes_)];
            uint8_t *out = &outNeon_[size_t(y) * size_t(rowBytes_)];
            auto left = vdup<uint8_t, 128>(uint8_t(0));
            for (int i = 0; i < rowBytes_; i += kBpp) {
                auto d = vld1_partial<128>(in + i, kBpp);
                auto u = vld1_partial<128>(up + i, kBpp);
                auto v = vadd(d, vhadd(left, u));
                vst1_partial(out + i, v, kBpp);
                left = v;
                ctl::loop();
            }
        }
    }

  private:
};

// ---------------------------------------------------------------------
// defilter_paeth: out[i] = in[i] + paeth(out[i-4], up[i], up[i-4])
// ---------------------------------------------------------------------

class DefilterPaeth : public DefilterKernel
{
  public:
    explicit DefilterPaeth(const Options &opts)
        : DefilterKernel(opts, 0x7004)
    {
    }

    void
    runScalar() override
    {
        scalarBody(outScalar_, false);
    }

    void
    runNeon(int) override
    {
        // Pixel-at-a-time with branch-free VABD/VCLE/VBSL selection
        // (If-Conversion, Section 5.4).
        for (int y = 0; y < rows_; ++y) {
            const uint8_t *in = &filtered_[size_t(y) * size_t(rowBytes_)];
            const uint8_t *up = y == 0
                ? prev_.data()
                : &outNeon_[size_t(y - 1) * size_t(rowBytes_)];
            uint8_t *out = &outNeon_[size_t(y) * size_t(rowBytes_)];
            auto a = vdup<uint8_t, 128>(uint8_t(0));  // left
            auto c = vdup<uint8_t, 128>(uint8_t(0));  // up-left
            for (int i = 0; i < rowBytes_; i += kBpp) {
                auto d = vld1_partial<128>(in + i, kBpp);
                auto b = vld1_partial<128>(up + i, kBpp);
                // 16-bit arithmetic avoids u8 overflow in p = a + b - c.
                auto a16 = vmovl_lo(a);
                auto b16 = vmovl_lo(b);
                auto c16 = vmovl_lo(c);
                auto pa = vabd(b16, c16);                 // |p - a|
                auto pb = vabd(a16, c16);                 // |p - b|
                auto pc = vabd(vadd(a16, b16),
                               vadd(c16, c16));           // |p - c|
                auto use_a = vand(vcle(pa, pb), vcle(pa, pc));
                auto use_b = vcle(pb, pc);
                auto sel16 = vbsl(use_a, a16,
                                  vbsl(use_b, b16, c16));
                auto sel = vmovn(sel16, sel16);
                auto v = vadd(d, sel);
                vst1_partial(out + i, v, kBpp);
                c = b;
                a = v;
                ctl::loop();
            }
        }
    }

    void
    runAuto() override
    {
        // The SLP vectorizer if-converts the predictor and packs each
        // 4-byte pixel into a vector, but the unaligned u8 accesses are
        // scalarized: every operand is assembled with 4 scalar loads +
        // lane inserts and every result is disassembled with lane
        // extracts. The packing overhead makes Auto slower than Scalar
        // (one of the two Auto < Scalar kernels of Table 4).
        for (int y = 0; y < rows_; ++y) {
            const uint8_t *in = &filtered_[size_t(y) * size_t(rowBytes_)];
            const uint8_t *up = y == 0
                ? prev_.data()
                : &outAuto_[size_t(y - 1) * size_t(rowBytes_)];
            uint8_t *out = &outAuto_[size_t(y) * size_t(rowBytes_)];
            auto gather4 = [](const uint8_t *p) {
                auto v = vdup<uint8_t, 128>(uint8_t(0));
                for (int j = 0; j < 4; ++j)
                    v = vset_lane(v, j, sload(p + j));
                return v;
            };
            auto a = vdup<uint8_t, 128>(uint8_t(0));  // left
            auto c = vdup<uint8_t, 128>(uint8_t(0));  // up-left
            for (int i = 0; i < rowBytes_; i += kBpp) {
                auto d = gather4(in + i);
                auto b = gather4(up + i);
                auto a16 = vmovl_lo(a);
                auto b16 = vmovl_lo(b);
                auto c16 = vmovl_lo(c);
                auto pa = vabd(b16, c16);
                auto pb = vabd(a16, c16);
                auto pc = vabd(vadd(a16, b16), vadd(c16, c16));
                auto use_a = vand(vcle(pa, pb), vcle(pa, pc));
                auto use_b = vcle(pb, pc);
                auto sel16 = vbsl(use_a, a16, vbsl(use_b, b16, c16));
                auto sel = vmovn(sel16, sel16);
                auto v = vadd(d, sel);
                for (int j = 0; j < 4; ++j)
                    sstore(out + i + j, vget_lane(v, j));
                c = b;
                a = v;
                ctl::loop();
            }
        }
    }

  private:
    void
    scalarBody(std::vector<uint8_t> &out_mat, bool versioning_overhead)
    {
        for (int y = 0; y < rows_; ++y) {
            const uint8_t *in = &filtered_[size_t(y) * size_t(rowBytes_)];
            const uint8_t *up = y == 0
                ? prev_.data()
                : &out_mat[size_t(y - 1) * size_t(rowBytes_)];
            uint8_t *out = &out_mat[size_t(y) * size_t(rowBytes_)];
            if (versioning_overhead) {
                // Pointer overlap checks emitted by the vectorizer.
                ctl::addr(6);
                ctl::branch();
                ctl::branch();
            }
            for (int i = 0; i < rowBytes_; ++i) {
                Sc<int32_t> a = i < kBpp
                    ? Sc<int32_t>(0)
                    : sload(out + i - kBpp).to<int32_t>();
                Sc<int32_t> b = sload(up + i).to<int32_t>();
                Sc<int32_t> c = i < kBpp
                    ? Sc<int32_t>(0)
                    : sload(up + i - kBpp).to<int32_t>();
                Sc<int32_t> p = a + b - c;
                Sc<int32_t> pa = sabs(p - a);
                Sc<int32_t> pb = sabs(p - b);
                Sc<int32_t> pc = sabs(p - c);
                Sc<int32_t> pred;
                if (pa <= pb && pa <= pc)
                    pred = a;
                else if (pb <= pc)
                    pred = b;
                else
                    pred = c;
                sstore(out + i,
                       sload(in + i) + pred.to<uint8_t>());
                ctl::loop();
                if (versioning_overhead && (i & 63) == 0)
                    ctl::addr(2); // loop-versioning bookkeeping
            }
        }
    }
};

// ---------------------------------------------------------------------
// expand_palette: out_rgba[i] = palette[idx[i]]
// ---------------------------------------------------------------------

class ExpandPalette : public Workload
{
  public:
    explicit ExpandPalette(const Options &opts)
        : n_(opts.imageWidth * opts.imageHeight)
    {
        Rng rng(opts.seed ^ 0x7005);
        idx_ = randomInts<uint8_t>(rng, size_t(n_));
        palette_ = randomInts<uint32_t>(rng, 256);
        outScalar_.assign(size_t(n_), 0);
        outNeon_.assign(size_t(n_), 1);
    }

    void
    runScalar() override
    {
        for (int i = 0; i < n_; ++i) {
            Sc<uint8_t> k = sload(&idx_[size_t(i)]);
            Sc<uint32_t> c = sload(&palette_[k.v]); // A[B[i]]
            sstore(&outScalar_[size_t(i)], c);
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        // The 256-entry table exceeds TBL's reach (Section 6.2): gather
        // through scalar lanes, then store the packed vector.
        int i = 0;
        for (; i + 4 <= n_; i += 4) {
            auto v = vdup<uint32_t, 128>(0u);
            for (int j = 0; j < 4; ++j) {
                Sc<uint8_t> k = sload(&idx_[size_t(i + j)]);
                Sc<uint32_t> c = sload(&palette_[k.v]);
                v = vset_lane(v, j, c);
            }
            vst1(&outNeon_[size_t(i)], v);
            ctl::loop();
        }
        for (; i < n_; ++i) {
            Sc<uint8_t> k = sload(&idx_[size_t(i)]);
            sstore(&outNeon_[size_t(i)], sload(&palette_[k.v]));
            ctl::loop();
        }
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    int n_;
    std::vector<uint8_t> idx_;
    std::vector<uint32_t> palette_, outScalar_, outNeon_;
};

// ---------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------

SWAN_REGISTER_LIBRARY((core::LibraryUsage{
    "libpng", "LP", Domain::ImageProcessing,
    true, false, false, true, 0.8, 0.3}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libpng", "LP", "defilter_sub",
                     Domain::ImageProcessing, 0,
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::ComplexPhi)},
                     false, 0},
    [](const Options &o) { return std::make_unique<DefilterSub>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libpng", "LP", "defilter_up",
                     Domain::ImageProcessing, 0,
                     autovec::Verdict{true, 0}, false, 0},
    [](const Options &o) { return std::make_unique<DefilterUp>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libpng", "LP", "defilter_avg",
                     Domain::ImageProcessing, 0,
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::ComplexPhi)},
                     false, 0},
    [](const Options &o) { return std::make_unique<DefilterAvg>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libpng", "LP", "defilter_paeth",
                     Domain::ImageProcessing, 0,
                     autovec::Verdict{false,
                                      autovec::Fail::ComplexPhi |
                                          autovec::Fail::OtherLegality},
                     false, 0},
    [](const Options &o) {
        return std::make_unique<DefilterPaeth>(o);
    }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"libpng", "LP", "expand_palette",
                     Domain::ImageProcessing,
                     uint32_t(Pattern::RandomAccess),
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::IndirectMemory)},
                     false, 0},
    [](const Options &o) {
        return std::make_unique<ExpandPalette>(o);
    }}));

} // namespace swan::workloads::libpng
