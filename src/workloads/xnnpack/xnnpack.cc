/**
 * @file
 * XNNPACK workloads (symbol XP, Machine Learning). GEMM and SpMM
 * micro-kernels in four precisions (FP32, FP16, INT32, INT16), as used by
 * TFLite/PyTorch back-ends (Section 3.2). The Neon GEMM uses the
 * MR=4 x NR=2-vector register-blocked micro-kernel with eight independent
 * accumulators — the high-ILP, manually-unrolled code that scales with
 * more ASIMD units in Figure 5(b). gemm_f32 is one of the eight
 * Figure-5 wider-register kernels; the default N is not divisible by the
 * wider lane counts, so SIMD utilization drops with width exactly as the
 * paper describes (98% at 128 bits to ~89% at 1024 bits).
 *
 * SpMM keeps the weight matrix in a CSR-like layout; the column indices
 * produce the indirect B-row loads that defeat the auto-vectorizer.
 *
 * Integer variants use wraparound accumulation in the element type, which
 * keeps Scalar and Neon bit-identical.
 */

#include "workloads/common.hh"

namespace swan::workloads::xnnpack
{

using namespace swan::simd;
using core::Domain;
using core::Options;
using core::Pattern;
using core::Workload;

namespace
{

template <typename T>
T
randomValue(Rng &rng)
{
    if constexpr (std::is_same_v<T, float>)
        return rng.f32(-1.0f, 1.0f);
    else if constexpr (std::is_same_v<T, Half>)
        return Half(rng.f32(-1.0f, 1.0f));
    else
        return T(rng.range(-64, 64));
}

template <typename T>
bool
outputsMatch(const std::vector<T> &a, const std::vector<T> &b)
{
    if constexpr (std::is_same_v<T, float>) {
        return approxOutputs(a, b, 1e-3f);
    } else if constexpr (std::is_same_v<T, Half>) {
        if (a.size() != b.size())
            return false;
        for (size_t i = 0; i < a.size(); ++i) {
            if (std::fabs(float(a[i]) - float(b[i])) >
                0.05f * std::max(1.0f, std::fabs(float(a[i]))))
                return false;
        }
        return true;
    } else {
        return a == b;
    }
}

} // namespace

// ---------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------

/** Dense C[M,N] = A[M,K] * B[K,N] in precision T. */
template <typename T>
class Gemm : public Workload
{
  public:
    Gemm(const Options &opts, uint64_t salt, bool wider)
        : m_(opts.gemmM), n_(opts.gemmN), k_(opts.gemmK), wider_(wider)
    {
        Rng rng(opts.seed ^ salt);
        a_.resize(size_t(m_) * size_t(k_));
        b_.resize(size_t(k_) * size_t(n_));
        for (auto &v : a_)
            v = randomValue<T>(rng);
        for (auto &v : b_)
            v = randomValue<T>(rng);
        cScalar_.assign(size_t(m_) * size_t(n_), T{});
        cNeon_.assign(cScalar_.size(), T{});
        cAuto_.assign(cScalar_.size(), T{});
    }

    void
    runScalar() override
    {
        runScalarInto(cScalar_);
    }

    void
    runNeon(int vec_bits) override
    {
        if (!wider_ || vec_bits == 128) {
            microKernel<128>(cNeon_);
            return;
        }
        switch (vec_bits) {
          case 256: microKernel<256>(cNeon_); break;
          case 512: microKernel<512>(cNeon_); break;
          case 1024: microKernel<1024>(cNeon_); break;
          default: microKernel<128>(cNeon_); break;
        }
    }

    void
    runAuto() override
    {
        if constexpr (std::is_integral_v<T>) {
            // The integer inner n-loop vectorizes, but C stays in
            // memory: one load + store of the C slice per k iteration
            // (no register blocking; Auto < Neon).
            constexpr int kLanes = Vec<T, 128>::kLanes;
            for (int m = 0; m < m_; ++m) {
                for (int k = 0; k < k_; ++k) {
                    Sc<T> av = sload(&a_[size_t(m) * size_t(k_) +
                                         size_t(k)]);
                    int n = 0;
                    for (; n + kLanes <= n_; n += kLanes) {
                        T *c = &cAuto_[size_t(m) * size_t(n_) +
                                       size_t(n)];
                        auto bv = vld1<128>(&b_[size_t(k) * size_t(n_) +
                                                size_t(n)]);
                        vst1(c, vmla_n(vld1<128>(c), bv, av));
                    }
                    for (; n < n_; ++n) {
                        T *c = &cAuto_[size_t(m) * size_t(n_) +
                                       size_t(n)];
                        Sc<T> bv = sload(&b_[size_t(k) * size_t(n_) +
                                             size_t(n)]);
                        sstore(c, smadd(av, bv, sload(c)));
                    }
                    ctl::loop();
                }
            }
        } else {
            // FP reductions do not vectorize without fast-math.
            runScalarInto(cAuto_);
        }
    }

    bool verify() override { return outputsMatch(cScalar_, cNeon_); }
    uint64_t
    flops() const override
    {
        return 2ull * uint64_t(m_) * uint64_t(n_) * uint64_t(k_);
    }

  private:
    /**
     * Scalar reference: XNNPACK's scalar micro-kernels block the output
     * (here 1x4) and keep four independent accumulators, amortizing the
     * A-load and loop overhead and exposing ILP — the paper notes the
     * scalar code is unrolled too (Section 5.4).
     */
    void
    runScalarInto(std::vector<T> &c)
    {
        for (int m = 0; m < m_; ++m) {
            for (int n0 = 0; n0 < n_; n0 += 4) {
                const int w = std::min(4, n_ - n0);
                std::array<Sc<T>, 4> acc{};
                for (int k = 0; k < k_; ++k) {
                    Sc<T> av = sload(&a_[size_t(m) * size_t(k_) +
                                         size_t(k)]);
                    const T *brow = &b_[size_t(k) * size_t(n_) +
                                        size_t(n0)];
                    for (int j = 0; j < w; ++j) {
                        acc[size_t(j)] =
                            smadd(av, sload(brow + j), acc[size_t(j)]);
                    }
                    ctl::loop();
                }
                for (int j = 0; j < w; ++j) {
                    sstore(&c[size_t(m) * size_t(n_) +
                              size_t(n0 + j)],
                           acc[size_t(j)]);
                }
                ctl::loop();
            }
        }
    }

    /** MR=4 x NR=2-vector register-blocked micro-kernel. */
    template <int B>
    void
    microKernel(std::vector<T> &c)
    {
        constexpr int kLanes = Vec<T, B>::kLanes;
        const int nr = 2 * kLanes;
        for (int m0 = 0; m0 < m_; m0 += 4) {
            const int mr = std::min(4, m_ - m0);
            for (int n0 = 0; n0 < n_; n0 += nr) {
                const int w0 = std::min(kLanes, n_ - n0);
                const int w1 = std::min(kLanes,
                                        std::max(0, n_ - n0 - kLanes));
                // 8 independent accumulators (4 rows x 2 vectors).
                std::array<Vec<T, B>, 8> acc{};
                for (auto &v : acc)
                    v = vdup<T, B>(T{});
                for (int k = 0; k < k_; ++k) {
                    const T *brow = &b_[size_t(k) * size_t(n_) +
                                        size_t(n0)];
                    auto b0 = vld1_partial<B>(brow, w0);
                    Vec<T, B> b1{};
                    if (w1 > 0)
                        b1 = vld1_partial<B>(brow + kLanes, w1);
                    for (int r = 0; r < mr; ++r) {
                        Sc<T> av = sload(&a_[size_t(m0 + r) *
                                                 size_t(k_) +
                                             size_t(k)]);
                        acc[size_t(2 * r)] =
                            vmla_n(acc[size_t(2 * r)], b0, av);
                        if (w1 > 0) {
                            acc[size_t(2 * r + 1)] =
                                vmla_n(acc[size_t(2 * r + 1)], b1, av);
                        }
                    }
                    ctl::loop();
                }
                for (int r = 0; r < mr; ++r) {
                    T *crow = &c[size_t(m0 + r) * size_t(n_) +
                                 size_t(n0)];
                    vst1_partial(crow, acc[size_t(2 * r)], w0);
                    if (w1 > 0) {
                        vst1_partial(crow + kLanes,
                                     acc[size_t(2 * r + 1)], w1);
                    }
                    ctl::loop();
                }
            }
        }
    }

    int m_, n_, k_;
    bool wider_;
    std::vector<T> a_, b_, cScalar_, cNeon_, cAuto_;
};

// ---------------------------------------------------------------------
// SpMM: C[M,N] = A_sparse[M,K] * B[K,N]
// ---------------------------------------------------------------------

template <typename T>
class Spmm : public Workload
{
  public:
    Spmm(const Options &opts, uint64_t salt)
        : m_(opts.gemmM), n_(opts.gemmN), k_(opts.gemmK)
    {
        Rng rng(opts.seed ^ salt);
        b_.resize(size_t(k_) * size_t(n_));
        for (auto &v : b_)
            v = randomValue<T>(rng);
        // CSR-like sparse A.
        rowPtr_.push_back(0);
        for (int m = 0; m < m_; ++m) {
            for (int k = 0; k < k_; ++k) {
                if (rng.f32(0.0f, 1.0f) >= float(opts.spmmSparsity)) {
                    values_.push_back(randomValue<T>(rng));
                    colIdx_.push_back(uint32_t(k));
                }
            }
            rowPtr_.push_back(uint32_t(values_.size()));
        }
        cScalar_.assign(size_t(m_) * size_t(n_), T{});
        cNeon_.assign(cScalar_.size(), T{});
    }

    void
    runScalar() override
    {
        for (int m = 0; m < m_; ++m) {
            for (int n = 0; n < n_; ++n)
                sstore(&cScalar_[size_t(m) * size_t(n_) + size_t(n)],
                       Sc<T>{T{}});
            for (uint32_t e = rowPtr_[size_t(m)];
                 e < rowPtr_[size_t(m) + 1]; ++e) {
                Sc<T> val = sload(&values_[e]);
                Sc<uint32_t> col = sload(&colIdx_[e]);
                const T *brow = &b_[size_t(col.v) * size_t(n_)];
                for (int n = 0; n < n_; ++n) {
                    T *c = &cScalar_[size_t(m) * size_t(n_) + size_t(n)];
                    sstore(c, smadd(val, sload(brow + n), sload(c)));
                    ctl::loop();
                }
                ctl::loop();
            }
        }
    }

    void
    runNeon(int) override
    {
        constexpr int kLanes = Vec<T, 128>::kLanes;
        for (int m = 0; m < m_; ++m) {
            int n0 = 0;
            for (; n0 < n_; n0 += 2 * kLanes) {
                const int w0 = std::min(kLanes, n_ - n0);
                const int w1 = std::min(kLanes,
                                        std::max(0, n_ - n0 - kLanes));
                auto acc0 = vdup<T, 128>(T{});
                auto acc1 = acc0;
                for (uint32_t e = rowPtr_[size_t(m)];
                     e < rowPtr_[size_t(m) + 1]; ++e) {
                    Sc<T> val = sload(&values_[e]);
                    Sc<uint32_t> col = sload(&colIdx_[e]);
                    const T *brow =
                        &b_[size_t(col.v) * size_t(n_) + size_t(n0)];
                    acc0 = vmla_n(acc0, vld1_partial<128>(brow, w0),
                                  val);
                    if (w1 > 0) {
                        acc1 = vmla_n(acc1,
                                      vld1_partial<128>(brow + kLanes,
                                                        w1),
                                      val);
                    }
                    ctl::loop();
                }
                T *crow = &cNeon_[size_t(m) * size_t(n_) + size_t(n0)];
                vst1_partial(crow, acc0, w0);
                if (w1 > 0)
                    vst1_partial(crow + kLanes, acc1, w1);
                ctl::loop();
            }
        }
    }

    bool verify() override { return outputsMatch(cScalar_, cNeon_); }
    uint64_t
    flops() const override
    {
        return 2ull * values_.size() * uint64_t(n_);
    }

  private:
    int m_, n_, k_;
    std::vector<T> b_, values_, cScalar_, cNeon_;
    std::vector<uint32_t> colIdx_;
    std::vector<uint32_t> rowPtr_;
};

// ---------------------------------------------------------------------
// Factories used by the Figure 6 bench (custom shapes).
// ---------------------------------------------------------------------

std::unique_ptr<Workload>
makeGemmF32(const Options &opts)
{
    return std::make_unique<Gemm<float>>(opts, 0x9901, true);
}

std::unique_ptr<Workload>
makeSpmmF32(const Options &opts)
{
    return std::make_unique<Spmm<float>>(opts, 0x9905);
}

// ---------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------

SWAN_REGISTER_LIBRARY((core::LibraryUsage{
    "XNNPACK", "XP", Domain::MachineLearning,
    true, true, false, false, 0.0, 0.0}));

namespace
{

core::KernelSpec
gemmSpec(const char *name, autovec::Verdict verdict, bool wider,
         std::function<std::unique_ptr<Workload>(const Options &)> make)
{
    core::KernelSpec spec;
    const bool sparse = std::string_view(name).substr(0, 4) == "spmm";
    // SpMM's column indices are the indirect (look-up) access pattern.
    const uint32_t patterns = sparse
        ? (Pattern::Reduction | Pattern::RandomAccess)
        : uint32_t(Pattern::Reduction);
    spec.info = core::KernelInfo{"XNNPACK", "XP", name,
                                 Domain::MachineLearning, patterns,
                                 verdict, wider, 0};
    spec.make = std::move(make);
    return spec;
}

} // namespace

SWAN_REGISTER_KERNEL(gemmSpec(
    "gemm_f32",
    autovec::Verdict{false, uint32_t(autovec::Fail::OtherLegality)},
    true, [](const Options &o) {
        return std::make_unique<Gemm<float>>(o, 0x9901, true);
    }));

SWAN_REGISTER_KERNEL(gemmSpec(
    "gemm_f16",
    autovec::Verdict{false, uint32_t(autovec::Fail::OtherLegality)},
    false, [](const Options &o) {
        return std::make_unique<Gemm<Half>>(o, 0x9902, false);
    }));

SWAN_REGISTER_KERNEL(gemmSpec(
    "gemm_s32", autovec::Verdict{true, 0}, false, [](const Options &o) {
        return std::make_unique<Gemm<int32_t>>(o, 0x9903, false);
    }));

SWAN_REGISTER_KERNEL(gemmSpec(
    "gemm_s16", autovec::Verdict{true, 0}, false, [](const Options &o) {
        return std::make_unique<Gemm<int16_t>>(o, 0x9904, false);
    }));

SWAN_REGISTER_KERNEL(gemmSpec(
    "spmm_f32",
    autovec::Verdict{false, uint32_t(autovec::Fail::IndirectMemory)},
    false, [](const Options &o) {
        return std::make_unique<Spmm<float>>(o, 0x9905);
    }));

SWAN_REGISTER_KERNEL(gemmSpec(
    "spmm_f16",
    autovec::Verdict{false, uint32_t(autovec::Fail::IndirectMemory)},
    false, [](const Options &o) {
        return std::make_unique<Spmm<Half>>(o, 0x9906);
    }));

SWAN_REGISTER_KERNEL(gemmSpec(
    "spmm_s32",
    autovec::Verdict{false, uint32_t(autovec::Fail::IndirectMemory)},
    false, [](const Options &o) {
        return std::make_unique<Spmm<int32_t>>(o, 0x9907);
    }));

SWAN_REGISTER_KERNEL(gemmSpec(
    "spmm_s16",
    autovec::Verdict{false, uint32_t(autovec::Fail::IndirectMemory)},
    false, [](const Options &o) {
        return std::make_unique<Spmm<int16_t>>(o, 0x9908);
    }));

} // namespace swan::workloads::xnnpack
