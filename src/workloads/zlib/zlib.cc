/**
 * @file
 * zlib workloads (symbol ZL, Data Compression). zlib's LZ77/Huffman stages
 * are scalar; its vector-processing hot spots are the two checksums
 * (Section 3.2): Adler-32 (the Section 6.1 loop-distribution reduction
 * example, also one of the eight wider-register kernels of Figure 5) and
 * CRC-32 (accelerated with the Armv8 CRC32 instructions; the scalar code
 * is the classic look-up-table implementation, which is exactly the
 * indirect-memory pattern that defeats auto-vectorization).
 */

#include "workloads/common.hh"

namespace swan::workloads::zlibw
{

using namespace swan::simd;
using core::Domain;
using core::Options;
using core::Pattern;
using core::Workload;

constexpr uint32_t kAdlerBase = 65521;
constexpr size_t kAdlerNmax = 5552; //!< bytes before deferred modulo

// ---------------------------------------------------------------------
// Adler-32
// ---------------------------------------------------------------------

/** Adler-32 checksum: s1 = 1 + sum(b_i), s2 = sum of running s1. */
class Adler32 : public Workload
{
  public:
    explicit Adler32(const Options &opts)
    {
        Rng rng(opts.seed);
        data_ = randomInts<uint8_t>(rng, size_t(opts.bufferBytes));
    }

    void
    runScalar() override
    {
        Sc<uint32_t> s1(1u), s2(0u);
        size_t i = 0;
        const size_t n = data_.size();
        while (i < n) {
            const size_t end = std::min(n, i + kAdlerNmax);
            for (; i < end; ++i) {
                Sc<uint8_t> b = sload(&data_[i]);
                s1 += b.to<uint32_t>();
                s2 += s1;
                ctl::loop();
            }
            s1 = s1 % Sc<uint32_t>(kAdlerBase);
            s2 = s2 % Sc<uint32_t>(kAdlerBase);
        }
        outScalar_ = (s2.v << 16) | s1.v;
    }

    void
    runNeon(int vec_bits) override
    {
        switch (vec_bits) {
          case 256:
            outNeon_ = neonImpl<256>();
            break;
          case 512:
            outNeon_ = neonImpl<512>();
            break;
          case 1024:
            outNeon_ = neonImpl<1024>();
            break;
          default:
            outNeon_ = neonImpl<128>();
            break;
        }
    }

    // The s2 recurrence is a complex PHI chain; LLVM does not vectorize
    // it without the loop-distribution rewrite (Section 6.1), so Auto
    // falls back to the scalar loop (the default runAuto()).

    bool verify() override { return outScalar_ == outNeon_; }
    uint64_t flops() const override { return 2 * data_.size(); }

  private:
    template <int B>
    uint32_t
    neonImpl()
    {
        using V8 = Vec<uint8_t, B>;
        constexpr int kLanes = V8::kLanes; // bytes per chunk
        constexpr int kShift = std::countr_zero(unsigned(kLanes));

        // taps[i] = kLanes - i, the per-position weight of a chunk.
        uint8_t taps_mem[size_t(kLanes)];
        for (int i = 0; i < kLanes; ++i)
            taps_mem[i] = uint8_t(kLanes - i);
        const V8 taps = vld1<B>(taps_mem);

        uint32_t s1 = 1, s2 = 0;
        size_t i = 0;
        const size_t n = data_.size();
        while (i + size_t(kLanes) <= n) {
            const size_t block_end =
                std::min(n - size_t(kLanes) + 1, i + kAdlerNmax);

            auto vs1 = vset_lane(vdup<uint32_t, B>(0u), 0,
                                 Sc<uint32_t>(s1));
            auto vs2 = vset_lane(vdup<uint32_t, B>(0u), 0,
                                 Sc<uint32_t>(s2));
            for (; i + size_t(kLanes) <= n && i < block_end;
                 i += size_t(kLanes)) {
                // s2 += kLanes * s1 (distributes over lanes).
                vs2 = vadd(vs2, vshl(vs1, kShift));
                V8 d = vld1<B>(&data_[i]);
                // s2 += sum((kLanes - j) * b_j) via widening MUL + PADAL.
                vs2 = vpadal(vs2, vmull_lo(d, taps));
                vs2 = vpadal(vs2, vmull_hi(d, taps));
                // s1 += sum(b_j).
                vs1 = vpadal(vs1, vpaddl(d));
                ctl::loop();
            }
            s1 = vaddv(vs1).v % kAdlerBase;
            s2 = vaddv(vs2).v % kAdlerBase;
        }
        // Scalar tail.
        Sc<uint32_t> t1(s1), t2(s2);
        for (; i < n; ++i) {
            Sc<uint8_t> b = sload(&data_[i]);
            t1 += b.to<uint32_t>();
            t2 += t1;
            ctl::loop();
        }
        t1 = t1 % Sc<uint32_t>(kAdlerBase);
        t2 = t2 % Sc<uint32_t>(kAdlerBase);
        return (t2.v << 16) | t1.v;
    }

    std::vector<uint8_t> data_;
    uint32_t outScalar_ = 0;
    uint32_t outNeon_ = 1;
};

// ---------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------

/** CRC-32 (zlib polynomial). */
class Crc32 : public Workload
{
  public:
    explicit Crc32(const Options &opts)
    {
        Rng rng(opts.seed ^ 0xc3c3c3c3u);
        data_ = randomInts<uint8_t>(rng, size_t(opts.bufferBytes));
        // Build the classic byte table (host-side, not traced: zlib's
        // table is a compile-time constant).
        for (uint32_t b = 0; b < 256; ++b) {
            uint32_t c = b;
            for (int k = 0; k < 8; ++k)
                c = (c >> 1) ^ (0xEDB88320u & (0u - (c & 1u)));
            table_[b] = c;
        }
    }

    void
    runScalar() override
    {
        // Table-driven byte-at-a-time CRC: the A[B[i]] indirect pattern.
        Sc<uint32_t> crc(0xffffffffu);
        for (size_t i = 0; i < data_.size(); ++i) {
            Sc<uint8_t> b = sload(&data_[i]);
            Sc<uint32_t> idx = (crc ^ b.to<uint32_t>()) &
                               Sc<uint32_t>(0xffu);
            Sc<uint32_t> t = sload(&table_[idx.v]);
            crc = (crc >> 8) ^ t;
            ctl::loop();
        }
        outScalar_ = ~crc.v;
    }

    void
    runNeon(int) override
    {
        // Armv8 CRC32 instructions, 8 bytes per step (the cryptography
        // acceleration the paper credits for ZL's large reduction).
        Sc<uint32_t> crc(0xffffffffu);
        size_t i = 0;
        const size_t n = data_.size();
        for (; i + 8 <= n; i += 8) {
            uint64_t word;
            std::memcpy(&word, &data_[i], 8);
            uint64_t id = emitMem(InstrClass::SLoad, &data_[i], 8,
                                  Lat::load);
            Sc<uint64_t> d(word, id);
            crc = vcrc32x(crc, d);
            ctl::loop();
        }
        for (; i < n; ++i) {
            Sc<uint8_t> b = sload(&data_[i]);
            crc = vcrc32b(crc, b);
            ctl::loop();
        }
        outNeon_ = ~crc.v;
    }

    bool verify() override { return outScalar_ == outNeon_; }
    uint64_t flops() const override { return data_.size(); }

  private:
    std::vector<uint8_t> data_;
    uint32_t table_[256] = {};
    uint32_t outScalar_ = 0;
    uint32_t outNeon_ = 1;
};

// ---------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------

SWAN_REGISTER_LIBRARY((core::LibraryUsage{
    "zlib", "ZL", Domain::DataCompression,
    true, true, false, true, 0.4, 0.2}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{
        "zlib", "ZL", "adler32", Domain::DataCompression,
        Pattern::Reduction | Pattern::LoopDistribution,
        autovec::Verdict{false, uint32_t(autovec::Fail::ComplexPhi)},
        /*widerWidths=*/true, /*flopsHint=*/0},
    [](const Options &o) { return std::make_unique<Adler32>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{
        "zlib", "ZL", "crc32", Domain::DataCompression,
        uint32_t(Pattern::RandomAccess),
        autovec::Verdict{false,
                         uint32_t(autovec::Fail::IndirectMemory)},
        false, 0},
    [](const Options &o) { return std::make_unique<Crc32>(o); }}));

} // namespace swan::workloads::zlibw
