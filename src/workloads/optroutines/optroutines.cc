/**
 * @file
 * Arm Optimized Routines workloads (symbol OR, String Utilities): memcpy,
 * memcmp, memchr and strlen (Section 3.2). The scalar versions are the
 * word-at-a-time implementations the library ships for plain AArch64; the
 * Neon versions use full vector registers with across-vector reductions to
 * detect the loop-break conditions (the Section 5.2 Example 1 pattern:
 * uncountable loops defeat the auto-vectorizer for the searching
 * routines, while memcpy's countable copy loop vectorizes).
 */

#include "workloads/common.hh"

namespace swan::workloads::optroutines
{

using namespace swan::simd;
using core::Domain;
using core::Options;
using core::Pattern;
using core::Workload;

namespace
{

/** Instrumented 8-byte scalar load from a byte buffer. */
Sc<uint64_t>
loadWord(const uint8_t *p)
{
    uint64_t word;
    std::memcpy(&word, p, 8);
    uint64_t id = emitMem(InstrClass::SLoad, p, 8, Lat::load);
    return {word, id};
}

/** Instrumented 8-byte scalar store to a byte buffer. */
void
storeWord(uint8_t *p, Sc<uint64_t> w)
{
    emitMem(InstrClass::SStore, p, 8, Lat::store, w.src);
    std::memcpy(p, &w.v, 8);
}

} // namespace

// ---------------------------------------------------------------------
// memcpy
// ---------------------------------------------------------------------

class Memcpy : public Workload
{
  public:
    explicit Memcpy(const Options &opts)
    {
        Rng rng(opts.seed ^ 0x0101u);
        src_ = randomInts<uint8_t>(rng, size_t(opts.bufferBytes));
        dstScalar_.assign(src_.size(), 0);
        dstNeon_.assign(src_.size(), 0xee);
        dstAuto_.assign(src_.size(), 0xaa);
    }

    void
    runScalar() override
    {
        // Word-at-a-time copy (LDR/STR pairs).
        size_t i = 0;
        for (; i + 8 <= src_.size(); i += 8) {
            storeWord(&dstScalar_[i], loadWord(&src_[i]));
            ctl::loop();
        }
        for (; i < src_.size(); ++i) {
            sstore(&dstScalar_[i], sload(&src_[i]));
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        // 64 bytes per iteration with four q-register pairs.
        size_t i = 0;
        const size_t n = src_.size();
        for (; i + 64 <= n; i += 64) {
            auto a = vld1<128>(&src_[i]);
            auto b = vld1<128>(&src_[i + 16]);
            auto c = vld1<128>(&src_[i + 32]);
            auto d = vld1<128>(&src_[i + 48]);
            vst1(&dstNeon_[i], a);
            vst1(&dstNeon_[i + 16], b);
            vst1(&dstNeon_[i + 32], c);
            vst1(&dstNeon_[i + 48], d);
            ctl::loop();
        }
        for (; i < n; ++i) {
            sstore(&dstNeon_[i], sload(&src_[i]));
            ctl::loop();
        }
    }

    void
    runAuto() override
    {
        // Clang recognizes the copy loop and emits a wide vector copy
        // with heavy interleaving (one of the five Auto > Neon kernels).
        size_t i = 0;
        const size_t n = src_.size();
        for (; i + 128 <= n; i += 128) {
            for (int u = 0; u < 8; ++u) {
                auto v = vld1<128>(&src_[i + size_t(16 * u)]);
                vst1(&dstAuto_[i + size_t(16 * u)], v);
            }
            ctl::loop();
        }
        for (; i < n; ++i) {
            sstore(&dstAuto_[i], sload(&src_[i]));
            ctl::loop();
        }
    }

    bool
    verify() override
    {
        return dstScalar_ == src_ && dstNeon_ == src_;
    }
    uint64_t flops() const override { return src_.size(); }

  private:
    std::vector<uint8_t> src_, dstScalar_, dstNeon_, dstAuto_;
};

// ---------------------------------------------------------------------
// memcmp
// ---------------------------------------------------------------------

class Memcmp : public Workload
{
  public:
    explicit Memcmp(const Options &opts)
    {
        Rng rng(opts.seed ^ 0x0202u);
        a_ = randomInts<uint8_t>(rng, size_t(opts.bufferBytes));
        b_ = a_;
        // Differ near the end so both implementations scan ~everything.
        b_[b_.size() - 3] = uint8_t(b_[b_.size() - 3] + 1);
    }

    void
    runScalar() override
    {
        // Word compare with early exit (uncountable loop).
        outScalar_ = 0;
        size_t i = 0;
        const size_t n = a_.size();
        for (; i + 8 <= n; i += 8) {
            Sc<uint64_t> x = loadWord(&a_[i]);
            Sc<uint64_t> y = loadWord(&b_[i]);
            if (x != y)
                break;
            ctl::loop();
        }
        for (; i < n; ++i) {
            Sc<uint8_t> x = sload(&a_[i]);
            Sc<uint8_t> y = sload(&b_[i]);
            if (x != y) {
                outScalar_ = x.v < y.v ? -1 : 1;
                return;
            }
            ctl::loop();
        }
        outScalar_ = 0;
    }

    void
    runNeon(int) override
    {
        // 16 bytes per step; MINV of the equality mask detects the break
        // condition (reduction-based loop exit, Section 5.2 Example 1).
        outNeon_ = 0;
        size_t i = 0;
        const size_t n = a_.size();
        for (; i + 16 <= n; i += 16) {
            auto x = vld1<128>(&a_[i]);
            auto y = vld1<128>(&b_[i]);
            auto eq = vceq(x, y);
            Sc<uint8_t> all = vminv(eq);
            if (Sc<uint8_t>(all.v, all.src) != Sc<uint8_t>(0xffu))
                break;
            ctl::loop();
        }
        for (; i < n; ++i) {
            Sc<uint8_t> x = sload(&a_[i]);
            Sc<uint8_t> y = sload(&b_[i]);
            if (x != y) {
                outNeon_ = x.v < y.v ? -1 : 1;
                return;
            }
            ctl::loop();
        }
        outNeon_ = 0;
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    std::vector<uint8_t> a_, b_;
    int outScalar_ = 9, outNeon_ = -9;
};

// ---------------------------------------------------------------------
// memchr
// ---------------------------------------------------------------------

class Memchr : public Workload
{
  public:
    explicit Memchr(const Options &opts)
    {
        Rng rng(opts.seed ^ 0x0303u);
        data_ = randomInts<uint8_t>(rng, size_t(opts.bufferBytes));
        // Ensure the needle only appears near the end.
        for (auto &c : data_)
            if (c == kNeedle)
                c = uint8_t(kNeedle + 1);
        data_[data_.size() - 7] = kNeedle;
    }

    void
    runScalar() override
    {
        outScalar_ = -1;
        for (size_t i = 0; i < data_.size(); ++i) {
            Sc<uint8_t> c = sload(&data_[i]);
            if (c == Sc<uint8_t>(kNeedle)) {
                outScalar_ = long(i);
                return;
            }
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        outNeon_ = -1;
        const auto needle = vdup<uint8_t, 128>(kNeedle);
        size_t i = 0;
        for (; i + 16 <= data_.size(); i += 16) {
            auto d = vld1<128>(&data_[i]);
            auto eq = vceq(d, needle);
            Sc<uint8_t> any = vmaxv(eq);
            if (any != Sc<uint8_t>(0u)) {
                // Locate the byte within the block.
                for (int j = 0; j < 16; ++j) {
                    Sc<uint8_t> lane = vget_lane(eq, j);
                    if (lane != Sc<uint8_t>(0u)) {
                        outNeon_ = long(i) + j;
                        return;
                    }
                    ctl::loop();
                }
            }
            ctl::loop();
        }
        for (; i < data_.size(); ++i) {
            Sc<uint8_t> c = sload(&data_[i]);
            if (c == Sc<uint8_t>(kNeedle)) {
                outNeon_ = long(i);
                return;
            }
            ctl::loop();
        }
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    static constexpr uint8_t kNeedle = 0x7f;
    std::vector<uint8_t> data_;
    long outScalar_ = -2, outNeon_ = -3;
};

// ---------------------------------------------------------------------
// strlen
// ---------------------------------------------------------------------

class Strlen : public Workload
{
  public:
    explicit Strlen(const Options &opts)
    {
        Rng rng(opts.seed ^ 0x0404u);
        data_.resize(size_t(opts.bufferBytes));
        for (auto &c : data_)
            c = uint8_t(rng.range(1, 255));
        data_.back() = 0;
    }

    void
    runScalar() override
    {
        outScalar_ = 0;
        for (size_t i = 0; i < data_.size(); ++i) {
            Sc<uint8_t> c = sload(&data_[i]);
            if (c == Sc<uint8_t>(0u)) {
                outScalar_ = long(i);
                return;
            }
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        outNeon_ = 0;
        const auto zero = vdup<uint8_t, 128>(uint8_t(0));
        size_t i = 0;
        for (; i + 16 <= data_.size(); i += 16) {
            auto d = vld1<128>(&data_[i]);
            auto eq = vceq(d, zero);
            Sc<uint8_t> any = vmaxv(eq);
            if (any != Sc<uint8_t>(0u)) {
                for (int j = 0; j < 16; ++j) {
                    Sc<uint8_t> lane = vget_lane(eq, j);
                    if (lane != Sc<uint8_t>(0u)) {
                        outNeon_ = long(i) + j;
                        return;
                    }
                    ctl::loop();
                }
            }
            ctl::loop();
        }
        for (; i < data_.size(); ++i) {
            Sc<uint8_t> c = sload(&data_[i]);
            if (c == Sc<uint8_t>(0u)) {
                outNeon_ = long(i);
                return;
            }
            ctl::loop();
        }
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    std::vector<uint8_t> data_;
    long outScalar_ = -2, outNeon_ = -3;
};

// ---------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------

SWAN_REGISTER_LIBRARY((core::LibraryUsage{
    "Opt. Routines", "OR", Domain::StringUtilities,
    true, true, true, true, 9.6, 1.2}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"Opt. Routines", "OR", "memcpy",
                     Domain::StringUtilities, 0,
                     autovec::Verdict{true, 0}, false, 0},
    [](const Options &o) { return std::make_unique<Memcpy>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"Opt. Routines", "OR", "memcmp",
                     Domain::StringUtilities,
                     uint32_t(Pattern::Reduction),
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::Uncountable)},
                     false, 0},
    [](const Options &o) { return std::make_unique<Memcmp>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"Opt. Routines", "OR", "memchr",
                     Domain::StringUtilities,
                     uint32_t(Pattern::Reduction),
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::Uncountable)},
                     false, 0},
    [](const Options &o) { return std::make_unique<Memchr>(o); }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"Opt. Routines", "OR", "strlen",
                     Domain::StringUtilities,
                     uint32_t(Pattern::Reduction),
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::Uncountable)},
                     false, 0},
    [](const Options &o) { return std::make_unique<Strlen>(o); }}));

} // namespace swan::workloads::optroutines
