/**
 * @file
 * Skia workloads (symbol SK, Graphics). Skia rasterizes paint operations
 * into pixel bitmaps; the CPU-side vector hot spots are the convolution
 * filters (used for image scaling; vertical convolution is one of the
 * eight Figure-5 wider-register kernels and a Section 6.1 inter-reduction
 * example), the src-over row blitter, rectangle fills, and RGBA
 * premultiplication (4-channel pixels: the stride-4 VLD4/VST4 pattern of
 * Section 6.3).
 */

#include "workloads/common.hh"

namespace swan::workloads::skia
{

using namespace swan::simd;
using core::Domain;
using core::Options;
using core::Pattern;
using core::Workload;

/** Fixed-point convolution taps (sum 256, blur-like). */
constexpr uint8_t kTaps[4] = {26, 102, 102, 26};

// ---------------------------------------------------------------------
// convolve_vertically: out[x] = (sum_k tap[k] * row_k[x]) >> 8
// ---------------------------------------------------------------------

class ConvolveVertically : public Workload
{
  public:
    explicit ConvolveVertically(const Options &opts)
        : width_(opts.imageWidth * 4), rows_(opts.imageHeight)
    {
        Rng rng(opts.seed ^ 0x5101);
        src_ = randomInts<uint8_t>(rng, size_t(width_) * size_t(rows_));
        const size_t out_n = size_t(width_) * size_t(rows_ - 3);
        outScalar_.assign(out_n, 0);
        outNeon_.assign(out_n, 1);
        outAuto_.assign(out_n, 2);
    }

    void
    runScalar() override
    {
        for (int y = 0; y + 3 < rows_; ++y) {
            const uint8_t *r0 = row(y);
            uint8_t *out = &outScalar_[size_t(y) * size_t(width_)];
            for (int x = 0; x < width_; ++x) {
                Sc<uint32_t> acc(128u);
                for (int k = 0; k < 4; ++k) {
                    Sc<uint8_t> p = sload(r0 + size_t(k) * size_t(width_) +
                                          size_t(x));
                    acc = smadd(p.to<uint32_t>(),
                                Sc<uint32_t>(uint32_t(kTaps[k])), acc);
                }
                sstore(out + x, (acc >> 8).to<uint8_t>());
                ctl::loop();
            }
        }
    }

    void
    runNeon(int vec_bits) override
    {
        switch (vec_bits) {
          case 256: neonImpl<256>(outNeon_); break;
          case 512: neonImpl<512>(outNeon_); break;
          case 1024: neonImpl<1024>(outNeon_); break;
          default: neonImpl<128>(outNeon_); break;
        }
    }

    void
    runAuto() override
    {
        // Vectorizes, but with conservative 32-bit accumulation (twice
        // the vector work of the hand-tuned 16-bit Neon code).
        autoImpl(outAuto_);
    }

    bool verify() override { return outScalar_ == outNeon_; }
    uint64_t flops() const override
    {
        return outScalar_.size() * 8;
    }

  private:
    const uint8_t *
    row(int y) const
    {
        return &src_[size_t(y) * size_t(width_)];
    }

    template <int B>
    void
    neonImpl(std::vector<uint8_t> &out_buf)
    {
        using V8 = Vec<uint8_t, B>;
        constexpr int kLanes = V8::kLanes;
        std::array<V8, 4> taps;
        for (int k = 0; k < 4; ++k)
            taps[size_t(k)] = vdup<uint8_t, B>(kTaps[k]);
        const auto bias = vdup<uint16_t, B>(uint16_t(128));

        for (int y = 0; y + 3 < rows_; ++y) {
            uint8_t *out = &out_buf[size_t(y) * size_t(width_)];
            int x = 0;
            for (; x + kLanes <= width_; x += kLanes) {
                auto acc_lo = bias;
                auto acc_hi = bias;
                for (int k = 0; k < 4; ++k) {
                    V8 d = vld1<B>(row(y) + size_t(k) * size_t(width_) +
                                   size_t(x));
                    acc_lo = vmlal_lo(acc_lo, d, taps[size_t(k)]);
                    acc_hi = vmlal_hi(acc_hi, d, taps[size_t(k)]);
                }
                vst1(out + x, vshrn(acc_lo, acc_hi, 8));
                ctl::loop();
            }
            for (; x < width_; ++x) {
                Sc<uint32_t> acc(128u);
                for (int k = 0; k < 4; ++k) {
                    Sc<uint8_t> p = sload(row(y) +
                                          size_t(k) * size_t(width_) +
                                          size_t(x));
                    acc = smadd(p.to<uint32_t>(),
                                Sc<uint32_t>(uint32_t(kTaps[k])), acc);
                }
                sstore(out + x, (acc >> 8).to<uint8_t>());
                ctl::loop();
            }
        }
    }

    void
    autoImpl(std::vector<uint8_t> &out_buf)
    {
        const auto bias = vdup<uint32_t, 128>(128u);
        for (int y = 0; y + 3 < rows_; ++y) {
            uint8_t *out = &out_buf[size_t(y) * size_t(width_)];
            int x = 0;
            for (; x + 16 <= width_; x += 16) {
                // Four u32 accumulators per 16 pixels (VF=4 widened).
                std::array<Vec<uint32_t, 128>, 4> acc = {bias, bias, bias,
                                                         bias};
                for (int k = 0; k < 4; ++k) {
                    auto d = vld1<128>(row(y) + size_t(k) * size_t(width_) +
                                       size_t(x));
                    auto w16_lo = vmovl_lo(d);
                    auto w16_hi = vmovl_hi(d);
                    auto t = vdup<uint32_t, 128>(uint32_t(kTaps[k]));
                    acc[0] = vmla(acc[0], vmovl_lo(w16_lo), t);
                    acc[1] = vmla(acc[1], vmovl_hi(w16_lo), t);
                    acc[2] = vmla(acc[2], vmovl_lo(w16_hi), t);
                    acc[3] = vmla(acc[3], vmovl_hi(w16_hi), t);
                }
                auto n16_lo = vshrn(acc[0], acc[1], 8);
                auto n16_hi = vshrn(acc[2], acc[3], 8);
                vst1(out + x, vmovn(n16_lo, n16_hi));
                ctl::loop();
            }
            for (; x < width_; ++x) {
                Sc<uint32_t> acc(128u);
                for (int k = 0; k < 4; ++k) {
                    Sc<uint8_t> p = sload(row(y) +
                                          size_t(k) * size_t(width_) +
                                          size_t(x));
                    acc = smadd(p.to<uint32_t>(),
                                Sc<uint32_t>(uint32_t(kTaps[k])), acc);
                }
                sstore(out + x, (acc >> 8).to<uint8_t>());
                ctl::loop();
            }
        }
    }

    int width_, rows_;
    std::vector<uint8_t> src_, outScalar_, outNeon_, outAuto_;
};

// ---------------------------------------------------------------------
// convolve_horizontally: out[x] = (sum_k tap[k] * src[x+k]) >> 8
// ---------------------------------------------------------------------

class ConvolveHorizontally : public Workload
{
  public:
    explicit ConvolveHorizontally(const Options &opts)
        : n_(opts.imageWidth * opts.imageHeight)
    {
        Rng rng(opts.seed ^ 0x5102);
        src_ = randomInts<uint8_t>(rng, size_t(n_) + 16);
        outScalar_.assign(size_t(n_), 0);
        outNeon_.assign(size_t(n_), 1);
    }

    void
    runScalar() override
    {
        for (int x = 0; x < n_; ++x) {
            Sc<uint32_t> acc(128u);
            for (int k = 0; k < 4; ++k) {
                Sc<uint8_t> p = sload(&src_[size_t(x + k)]);
                acc = smadd(p.to<uint32_t>(),
                            Sc<uint32_t>(uint32_t(kTaps[k])), acc);
            }
            sstore(&outScalar_[size_t(x)], (acc >> 8).to<uint8_t>());
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        // Sliding window via EXT on two consecutive vectors.
        std::array<Vec<uint8_t, 128>, 4> taps;
        for (int k = 0; k < 4; ++k)
            taps[size_t(k)] = vdup<uint8_t, 128>(kTaps[k]);
        const auto bias = vdup<uint16_t, 128>(uint16_t(128));
        int x = 0;
        for (; x + 16 <= n_; x += 16) {
            auto d0 = vld1<128>(&src_[size_t(x)]);
            auto d1 = vld1<128>(&src_[size_t(x + 16)]);
            auto acc_lo = bias;
            auto acc_hi = bias;
            for (int k = 0; k < 4; ++k) {
                auto dk = k == 0 ? d0 : vext(d0, d1, k);
                acc_lo = vmlal_lo(acc_lo, dk, taps[size_t(k)]);
                acc_hi = vmlal_hi(acc_hi, dk, taps[size_t(k)]);
            }
            vst1(&outNeon_[size_t(x)], vshrn(acc_lo, acc_hi, 8));
            ctl::loop();
        }
        for (; x < n_; ++x) {
            Sc<uint32_t> acc(128u);
            for (int k = 0; k < 4; ++k) {
                Sc<uint8_t> p = sload(&src_[size_t(x + k)]);
                acc = smadd(p.to<uint32_t>(),
                            Sc<uint32_t>(uint32_t(kTaps[k])), acc);
            }
            sstore(&outNeon_[size_t(x)], (acc >> 8).to<uint8_t>());
            ctl::loop();
        }
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    int n_;
    std::vector<uint8_t> src_, outScalar_, outNeon_;
};

// ---------------------------------------------------------------------
// blit_row_srcover: out = src + dst * (255 - src_a) / 255 on RGBA8888
// ---------------------------------------------------------------------

namespace
{

/** (x * y + 128) * 257 >> 16 — exact u8 divide-by-255 rounding. */
inline Sc<uint8_t>
mulDiv255(Sc<uint8_t> x, Sc<uint8_t> y)
{
    Sc<uint32_t> p = x.to<uint32_t>() * y.to<uint32_t>() +
                     Sc<uint32_t>(128u);
    return ((p + (p >> 8)) >> 8).to<uint8_t>();
}

} // namespace

class BlitRowSrcOver : public Workload
{
  public:
    explicit BlitRowSrcOver(const Options &opts)
        : pixels_(opts.imageWidth * opts.imageHeight)
    {
        Rng rng(opts.seed ^ 0x5103);
        src_ = randomInts<uint8_t>(rng, size_t(pixels_) * 4);
        dst_ = randomInts<uint8_t>(rng, size_t(pixels_) * 4);
        outScalar_.assign(dst_.size(), 0);
        outNeon_.assign(dst_.size(), 1);
        outAuto_.assign(dst_.size(), 2);
    }

    void
    runScalar() override
    {
        scalarBody(outScalar_);
    }

    void
    scalarBody(std::vector<uint8_t> &out)
    {
        for (int p = 0; p < pixels_; ++p) {
            const size_t base = size_t(p) * 4;
            Sc<uint8_t> sa = sload(&src_[base + 3]);
            Sc<uint8_t> inv = ~sa;
            for (int c = 0; c < 4; ++c) {
                Sc<uint8_t> s = sload(&src_[base + size_t(c)]);
                Sc<uint8_t> d = sload(&dst_[base + size_t(c)]);
                Sc<uint32_t> sum = s.to<uint32_t>() +
                                   mulDiv255(d, inv).to<uint32_t>();
                sstore(&out[base + size_t(c)],
                       smin(sum, Sc<uint32_t>(255u)).to<uint8_t>());
            }
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        // De-interleave 16 RGBA pixels with VLD4 (Section 6.3).
        int p = 0;
        for (; p + 16 <= pixels_; p += 16) {
            const size_t base = size_t(p) * 4;
            auto s = vld4<128>(&src_[base]);
            auto d = vld4<128>(&dst_[base]);
            auto inv = vmvn(s[3]);
            std::array<Vec<uint8_t, 128>, 4> out;
            for (int c = 0; c < 4; ++c) {
                // (d * inv + 128 + ((d*inv+128)>>8)) >> 8, then + src.
                auto lo = vmlal_lo(vdup<uint16_t, 128>(uint16_t(128)),
                                   d[size_t(c)], inv);
                auto hi = vmlal_hi(vdup<uint16_t, 128>(uint16_t(128)),
                                   d[size_t(c)], inv);
                lo = vadd(lo, vshr(lo, 8));
                hi = vadd(hi, vshr(hi, 8));
                auto blended = vshrn(lo, hi, 8);
                out[size_t(c)] = vqadd(s[size_t(c)], blended);
            }
            vst4(&outNeon_[base], out);
            ctl::loop();
        }
        for (; p < pixels_; ++p)
            scalarPixel(p, outNeon_);
    }

    void
    runAuto() override
    {
        // Vectorizes without VLD4: gathers channels with a UZP tree and
        // re-interleaves with ZIPs (more permutes than Neon).
        int p = 0;
        for (; p + 16 <= pixels_; p += 16) {
            const size_t base = size_t(p) * 4;
            std::array<Vec<uint8_t, 128>, 4> sv, dv;
            for (int v = 0; v < 4; ++v) {
                sv[size_t(v)] = vld1<128>(&src_[base + size_t(16 * v)]);
                dv[size_t(v)] = vld1<128>(&dst_[base + size_t(16 * v)]);
            }
            auto deinterleave = [](std::array<Vec<uint8_t, 128>, 4> &v) {
                auto a0 = vuzp1(v[0], v[1]), a1 = vuzp2(v[0], v[1]);
                auto a2 = vuzp1(v[2], v[3]), a3 = vuzp2(v[2], v[3]);
                auto b0 = vuzp1(a0, a2), b1 = vuzp2(a0, a2);
                auto b2 = vuzp1(a1, a3), b3 = vuzp2(a1, a3);
                v = {b0, b2, b1, b3};
            };
            deinterleave(sv);
            deinterleave(dv);
            auto inv = vmvn(sv[3]);
            std::array<Vec<uint8_t, 128>, 4> out;
            for (int c = 0; c < 4; ++c) {
                auto lo = vmlal_lo(vdup<uint16_t, 128>(uint16_t(128)),
                                   dv[size_t(c)], inv);
                auto hi = vmlal_hi(vdup<uint16_t, 128>(uint16_t(128)),
                                   dv[size_t(c)], inv);
                lo = vadd(lo, vshr(lo, 8));
                hi = vadd(hi, vshr(hi, 8));
                out[size_t(c)] = vqadd(sv[size_t(c)], vshrn(lo, hi, 8));
            }
            // Re-interleave with ZIPs.
            auto z0 = vzip1(out[0], out[2]), z1 = vzip2(out[0], out[2]);
            auto z2 = vzip1(out[1], out[3]), z3 = vzip2(out[1], out[3]);
            vst1(&outAuto_[base], vzip1(z0, z2));
            vst1(&outAuto_[base + 16], vzip2(z0, z2));
            vst1(&outAuto_[base + 32], vzip1(z1, z3));
            vst1(&outAuto_[base + 48], vzip2(z1, z3));
            ctl::loop();
        }
        for (; p < pixels_; ++p)
            scalarPixel(p, outAuto_);
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    void
    scalarPixel(int p, std::vector<uint8_t> &out)
    {
        const size_t base = size_t(p) * 4;
        Sc<uint8_t> sa = sload(&src_[base + 3]);
        Sc<uint8_t> inv = ~sa;
        for (int c = 0; c < 4; ++c) {
            Sc<uint8_t> s = sload(&src_[base + size_t(c)]);
            Sc<uint8_t> d = sload(&dst_[base + size_t(c)]);
            Sc<uint32_t> sum = s.to<uint32_t>() +
                               mulDiv255(d, inv).to<uint32_t>();
            sstore(&out[base + size_t(c)],
                   smin(sum, Sc<uint32_t>(255u)).to<uint8_t>());
        }
        ctl::loop();
    }

    int pixels_;
    std::vector<uint8_t> src_, dst_, outScalar_, outNeon_, outAuto_;
};

// ---------------------------------------------------------------------
// memset32_rect: fill a rectangle of 32-bit pixels with a color
// ---------------------------------------------------------------------

class Memset32Rect : public Workload
{
  public:
    explicit Memset32Rect(const Options &opts)
        : n_(opts.imageWidth * opts.imageHeight)
    {
        outScalar_.assign(size_t(n_), 0);
        outNeon_.assign(size_t(n_), 1);
        outAuto_.assign(size_t(n_), 2);
    }

    void
    runScalar() override
    {
        Sc<uint32_t> color(kColor);
        for (int i = 0; i < n_; ++i) {
            sstore(&outScalar_[size_t(i)], color);
            ctl::loop();
        }
    }

    void
    runNeon(int) override
    {
        const auto color = vdup<uint32_t, 128>(kColor);
        int i = 0;
        for (; i + 8 <= n_; i += 8) {
            vst1(&outNeon_[size_t(i)], color);
            vst1(&outNeon_[size_t(i) + 4], color);
            ctl::loop();
        }
        for (; i < n_; ++i) {
            sstore(&outNeon_[size_t(i)], Sc<uint32_t>(kColor));
            ctl::loop();
        }
    }

    void
    runAuto() override
    {
        // Clang turns this into a fully unrolled wide fill (Auto > Neon).
        const auto color = vdup<uint32_t, 128>(kColor);
        int i = 0;
        for (; i + 32 <= n_; i += 32) {
            for (int u = 0; u < 8; ++u)
                vst1(&outAuto_[size_t(i + 4 * u)], color);
            ctl::loop();
        }
        for (; i < n_; ++i) {
            sstore(&outAuto_[size_t(i)], Sc<uint32_t>(kColor));
            ctl::loop();
        }
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    static constexpr uint32_t kColor = 0xff33cc66u;
    int n_;
    std::vector<uint32_t> outScalar_, outNeon_, outAuto_;
};

// ---------------------------------------------------------------------
// rgba_premultiply: c' = c * a / 255 per channel (alpha unchanged)
// ---------------------------------------------------------------------

class RgbaPremultiply : public Workload
{
  public:
    explicit RgbaPremultiply(const Options &opts)
        : pixels_(opts.imageWidth * opts.imageHeight)
    {
        Rng rng(opts.seed ^ 0x5105);
        src_ = randomInts<uint8_t>(rng, size_t(pixels_) * 4);
        outScalar_.assign(src_.size(), 0);
        outNeon_.assign(src_.size(), 1);
        outAuto_.assign(src_.size(), 2);
    }

    void
    runScalar() override
    {
        for (int p = 0; p < pixels_; ++p) {
            const size_t base = size_t(p) * 4;
            Sc<uint8_t> a = sload(&src_[base + 3]);
            for (int c = 0; c < 3; ++c) {
                Sc<uint8_t> v = sload(&src_[base + size_t(c)]);
                sstore(&outScalar_[base + size_t(c)], mulDiv255(v, a));
            }
            sstore(&outScalar_[base + 3], a);
            ctl::loop();
        }
    }

    void runNeon(int) override { vecBody(outNeon_); }

    void
    runAuto() override
    {
        // Vectorizes cleanly with the same interleaved-access shape
        // (Auto ~= Neon case).
        vecBody(outAuto_);
    }

    bool verify() override { return outScalar_ == outNeon_; }

  private:
    void
    vecBody(std::vector<uint8_t> &out_buf)
    {
        int p = 0;
        for (; p + 16 <= pixels_; p += 16) {
            const size_t base = size_t(p) * 4;
            auto v = vld4<128>(&src_[base]);
            std::array<Vec<uint8_t, 128>, 4> out;
            for (int c = 0; c < 3; ++c) {
                auto lo = vmlal_lo(vdup<uint16_t, 128>(uint16_t(128)),
                                   v[size_t(c)], v[3]);
                auto hi = vmlal_hi(vdup<uint16_t, 128>(uint16_t(128)),
                                   v[size_t(c)], v[3]);
                lo = vadd(lo, vshr(lo, 8));
                hi = vadd(hi, vshr(hi, 8));
                out[size_t(c)] = vshrn(lo, hi, 8);
            }
            out[3] = v[3];
            vst4(&out_buf[base], out);
            ctl::loop();
        }
        for (; p < pixels_; ++p) {
            const size_t base = size_t(p) * 4;
            Sc<uint8_t> a = sload(&src_[base + 3]);
            for (int c = 0; c < 3; ++c) {
                Sc<uint8_t> v = sload(&src_[base + size_t(c)]);
                sstore(&out_buf[base + size_t(c)], mulDiv255(v, a));
            }
            sstore(&out_buf[base + 3], a);
            ctl::loop();
        }
    }

    int pixels_;
    std::vector<uint8_t> src_, outScalar_, outNeon_, outAuto_;
};

// ---------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------

SWAN_REGISTER_LIBRARY((core::LibraryUsage{
    "Skia", "SK", Domain::Graphics, true, true, false, true, 8.5, 4.6}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"Skia", "SK", "convolve_vertically",
                     Domain::Graphics, uint32_t(Pattern::Reduction),
                     autovec::Verdict{true, 0}, /*widerWidths=*/true, 0},
    [](const Options &o) {
        return std::make_unique<ConvolveVertically>(o);
    }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"Skia", "SK", "convolve_horizontally",
                     Domain::Graphics, uint32_t(Pattern::Reduction),
                     autovec::Verdict{
                         false, uint32_t(autovec::Fail::CostModel)},
                     false, 0},
    [](const Options &o) {
        return std::make_unique<ConvolveHorizontally>(o);
    }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"Skia", "SK", "blit_row_srcover", Domain::Graphics,
                     uint32_t(Pattern::StridedAccess),
                     autovec::Verdict{true, 0}, false, 0},
    [](const Options &o) {
        return std::make_unique<BlitRowSrcOver>(o);
    }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"Skia", "SK", "memset32_rect", Domain::Graphics, 0,
                     autovec::Verdict{true, 0}, false, 0},
    [](const Options &o) {
        return std::make_unique<Memset32Rect>(o);
    }}));

SWAN_REGISTER_KERNEL((core::KernelSpec{
    core::KernelInfo{"Skia", "SK", "rgba_premultiply", Domain::Graphics,
                     uint32_t(Pattern::StridedAccess),
                     autovec::Verdict{true, 0}, false, 0},
    [](const Options &o) {
        return std::make_unique<RgbaPremultiply>(o);
    }}));

} // namespace swan::workloads::skia
