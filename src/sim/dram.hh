/**
 * @file
 * Bandwidth/latency DRAM model (Ramulator-inspired, simplified): a fixed
 * access latency plus a single-channel service queue that bounds sustained
 * bandwidth. Substitutes for the Ramulator CPU-model back-end of the
 * paper's trace-driven simulator.
 */

#ifndef SWAN_SIM_DRAM_HH
#define SWAN_SIM_DRAM_HH

#include <algorithm>
#include <cstdint>

namespace swan::sim
{

/** Single-channel LPDDR4X-like DRAM timing model. */
class Dram
{
  public:
    /**
     * @param latency_cycles idle-access latency (row activate + CAS + bus)
     * @param service_cycles channel occupancy per 64-byte transfer
     */
    Dram(uint64_t latency_cycles, double service_cycles)
        : latency_(latency_cycles), service_(service_cycles)
    {
    }

    /**
     * Issue one line transfer at @p cycle; returns the data-ready cycle.
     * Back-to-back transfers queue behind each other (bandwidth bound).
     */
    uint64_t
    access(uint64_t cycle)
    {
        const double start = std::max(double(cycle), nextFree_);
        nextFree_ = start + service_;
        ++accesses_;
        return uint64_t(start) + latency_;
    }

    void
    reset()
    {
        nextFree_ = 0.0;
        accesses_ = 0;
    }

    uint64_t accesses() const { return accesses_; }

    uint64_t latency() const { return latency_; }

    /** Retime the idle-access latency mid-run. Fault-injection
     *  actuator (sim::ReplayObserver payloads model DRAM latency
     *  spikes with it); queued transfers keep their issue order, only
     *  the data-ready offset changes. */
    void setLatency(uint64_t latency_cycles) { latency_ = latency_cycles; }

  private:
    uint64_t latency_;
    double service_;
    double nextFree_ = 0.0;
    uint64_t accesses_ = 0;
};

} // namespace swan::sim

#endif // SWAN_SIM_DRAM_HH
