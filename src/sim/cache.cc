#include "sim/cache.hh"

#include <stdexcept>

namespace swan::sim
{

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg),
      numSets_(cfg.sizeBytes / (cfg.lineBytes * cfg.ways)),
      lines_(size_t(numSets_) * size_t(cfg.ways))
{
    // Hard contract, not an assert: the line/set/tag address splits
    // are shifts and masks, which silently map addresses to the wrong
    // lines for non-power-of-two geometry — a Release build must
    // reject such a config, not mis-simulate it.
    if (numSets_ <= 0 || (numSets_ & (numSets_ - 1)) != 0)
        throw std::invalid_argument(
            "swan: cache set count must be a power of two");
    if (cfg.lineBytes <= 0 ||
        (cfg.lineBytes & (cfg.lineBytes - 1)) != 0)
        throw std::invalid_argument(
            "swan: cache line size must be a power of two");
}

Cache::Result
Cache::access(uint64_t addr, bool is_write)
{
    ++accesses_;
    ++tick_;
    const uint64_t line = lineAddr(addr);
    const uint64_t set = line & uint64_t(numSets_ - 1);
    const uint64_t tag = tagOf(line);
    Line *base = &lines_[size_t(set) * size_t(cfg_.ways)];

    Result res;
    for (int w = 0; w < cfg_.ways; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lru = tick_;
            l.dirty = l.dirty || is_write;
            res.hit = true;
            return res;
        }
    }

    // Miss: pick the LRU (preferring invalid) way.
    Line *victim = base;
    for (int w = 1; w < cfg_.ways; ++w) {
        Line &l = base[w];
        if (!victim->valid)
            break;
        if (!l.valid || l.lru < victim->lru)
            victim = &l;
    }

    ++misses_;
    if (victim->valid && victim->dirty) {
        res.writeback = true;
        res.wbLineAddr =
            (victim->tag * uint64_t(numSets_) + set) *
            uint64_t(cfg_.lineBytes);
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = tick_;
    victim->dirty = is_write;
    return res;
}

bool
Cache::probe(uint64_t addr) const
{
    const uint64_t line = lineAddr(addr);
    const uint64_t set = line & uint64_t(numSets_ - 1);
    const uint64_t tag = tagOf(line);
    const Line *base = &lines_[size_t(set) * size_t(cfg_.ways)];
    for (int w = 0; w < cfg_.ways; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::reset()
{
    for (auto &l : lines_)
        l = Line{};
    tick_ = 0;
    resetStats();
}

void
Cache::resetStats()
{
    accesses_ = 0;
    misses_ = 0;
}

MemHierarchy::MemHierarchy(const CoreConfig &cfg)
    : cfg_(cfg), l1_(cfg.l1d), l2_(cfg.l2), llc_(cfg.llc),
      dram_(cfg.dramLatencyCycles(), cfg.dramServiceCycles()),
      mshrFree_(size_t(cfg.mshrs), 0)
{
}

MemHierarchy::FillResult
MemHierarchy::fillFrom(uint64_t addr, uint64_t cycle)
{

    // L1 already missed; walk L2 -> LLC -> DRAM, filling on the way back.
    // Each level has a service queue bounding its sustained fill
    // bandwidth (the cache-pressure effect of Section 5.4).
    FillResult res;
    const double start2 = std::max(double(cycle), l2Free_);
    l2Free_ = start2 + cfg_.l2ServiceCycles;
    res.extra = uint64_t(start2) - cycle;

    auto r2 = l2_.access(addr, false);
    if (r2.writeback)
        llc_.access(r2.wbLineAddr, true);
    if (r2.hit) {
        res.level = Level::L2;
        return res;
    }

    const double start3 = std::max(start2, llcFree_);
    llcFree_ = start3 + cfg_.llcServiceCycles;
    res.extra = uint64_t(start3) - cycle;

    auto r3 = llc_.access(addr, false);
    if (r3.writeback) {
        ++dramWrites_;
        dram_.access(uint64_t(start3));
    }
    if (r3.hit) {
        res.level = Level::Llc;
        return res;
    }

    ++dramReads_;
    res.level = Level::Dram;
    res.extra = uint64_t(start3) - cycle;
    return res;
}

MemHierarchy::Result
MemHierarchy::load(uint64_t addr, uint32_t size, uint64_t cycle)
{
    const uint64_t lb = uint64_t(l1_.lineBytes());
    const unsigned ls = unsigned(__builtin_ctzll(lb));
    const uint64_t first = addr >> ls;
    const uint64_t last = (addr + (size ? size - 1 : 0)) >> ls;

    Result out;
    out.latency = uint64_t(l1_.latency());
    for (uint64_t line = first; line <= last; ++line) {
        const uint64_t a = line * lb;
        auto r1 = l1_.access(a, false);
        if (r1.writeback)
            l2_.access(r1.wbLineAddr, true);
        if (r1.hit)
            continue;

        // Miss: allocate an MSHR (bounds memory-level parallelism).
        auto mshr = std::min_element(mshrFree_.begin(), mshrFree_.end());
        const uint64_t start = std::max(cycle, *mshr);

        auto fill = fillFrom(a, start);
        uint64_t lat;
        switch (fill.level) {
          case Level::L2:
            lat = uint64_t(l2_.latency());
            break;
          case Level::Llc:
            lat = uint64_t(llc_.latency());
            break;
          default:
            // dram_.access absorbs fill.extra into its start time, so
            // subtract it back out: the L2/LLC queue wait must be
            // charged exactly once (double-charging lets MSHR release
            // times outrun physical time and the bandwidth queues
            // ratchet off each other without bound).
            lat = dram_.access(start + fill.extra) -
                  (start + fill.extra) + uint64_t(llc_.latency());
            break;
        }
        const uint64_t ready = start + fill.extra + lat;
        *mshr = ready;
        out.latency = std::max(out.latency, ready - cycle);
        if (int(fill.level) > int(out.level))
            out.level = fill.level;

        // Simple next-line prefetch on demand miss (streaming helper);
        // the prefetch fill consumes real L2/LLC/DRAM bandwidth.
        if (cfg_.l1d.nextLinePrefetch) {
            const uint64_t next = a + lb;
            if (!l1_.probe(next)) {
                auto p1 = l1_.access(next, false);
                if (p1.writeback)
                    l2_.access(p1.wbLineAddr, true);
                auto pf = fillFrom(next, start);
                if (pf.level == Level::Dram)
                    dram_.access(start + pf.extra);
            }
        }
    }
    return out;
}

MemHierarchy::Result
MemHierarchy::store(uint64_t addr, uint32_t size, uint64_t cycle)
{
    const uint64_t lb = uint64_t(l1_.lineBytes());
    const unsigned ls = unsigned(__builtin_ctzll(lb));
    const uint64_t first = addr >> ls;
    const uint64_t last = (addr + (size ? size - 1 : 0)) >> ls;

    Result out;
    out.latency = 1;
    for (uint64_t line = first; line <= last; ++line) {
        const uint64_t a = line * lb;
        auto r1 = l1_.access(a, true);
        if (r1.writeback)
            l2_.access(r1.wbLineAddr, true);
        if (!r1.hit) {
            // Write-allocate: fetch the line; latency hidden by the
            // store buffer but traffic and MSHR occupancy are real.
            auto mshr = std::min_element(mshrFree_.begin(),
                                         mshrFree_.end());
            const uint64_t start = std::max(cycle, *mshr);
            auto fill = fillFrom(a, start);
            uint64_t lat;
            switch (fill.level) {
              case Level::L2:
                lat = uint64_t(l2_.latency());
                break;
              case Level::Llc:
                lat = uint64_t(llc_.latency());
                break;
              default:
                // Same single-charge rule as the load path.
                lat = dram_.access(start + fill.extra) -
                      (start + fill.extra) + uint64_t(llc_.latency());
                break;
            }
            *mshr = start + fill.extra + lat;
            if (int(fill.level) > int(out.level))
                out.level = fill.level;
        }
    }
    return out;
}

void
MemHierarchy::reset()
{
    l1_.reset();
    l2_.reset();
    llc_.reset();
    dram_.reset();
    std::fill(mshrFree_.begin(), mshrFree_.end(), 0);
    l2Free_ = 0.0;
    llcFree_ = 0.0;
    dramReads_ = 0;
    dramWrites_ = 0;
}

void
MemHierarchy::resetStats()
{
    l1_.resetStats();
    l2_.resetStats();
    llc_.resetStats();
    dramReads_ = 0;
    dramWrites_ = 0;
}

} // namespace swan::sim
