#include "sim/configs.hh"

#include <algorithm>

namespace swan::sim
{

using trace::Fu;

namespace
{

CacheConfig
l1dDefault()
{
    return {64 * 1024, 4, 64, 4, true};
}

CacheConfig
l2Default()
{
    return {512 * 1024, 8, 64, 9, true};
}

CacheConfig
llcDefault()
{
    return {2 * 1024 * 1024, 8, 64, 31, false};
}

} // namespace

CoreConfig
primeConfig()
{
    CoreConfig c;
    c.name = "prime";
    c.freqGHz = 2.8;
    c.outOfOrder = true;
    c.robSize = 128;
    c.decodeWidth = 4;
    c.issueWidth = 8;
    c.commitWidth = 4;
    c.fuCount[size_t(Fu::SAlu)] = 3;
    c.fuCount[size_t(Fu::SMul)] = 1;
    c.fuCount[size_t(Fu::SFp)] = 2;
    c.fuCount[size_t(Fu::Branch)] = 1;
    c.fuCount[size_t(Fu::Load)] = 2;
    c.fuCount[size_t(Fu::Store)] = 1;
    c.fuCount[size_t(Fu::VUnit)] = 2;
    c.l1d = l1dDefault();
    c.l2 = l2Default();
    c.llc = llcDefault();
    return c;
}

CoreConfig
goldConfig()
{
    CoreConfig c = primeConfig();
    c.name = "gold";
    c.freqGHz = 2.4;
    return c;
}

CoreConfig
silverConfig()
{
    CoreConfig c;
    c.name = "silver";
    c.freqGHz = 1.8;
    c.outOfOrder = false;
    c.robSize = 16; // in-flight window of the in-order pipe
    c.decodeWidth = 2;
    c.issueWidth = 2;
    c.commitWidth = 2;
    c.fuCount[size_t(Fu::SAlu)] = 2;
    c.fuCount[size_t(Fu::SMul)] = 1;
    c.fuCount[size_t(Fu::SFp)] = 1;
    c.fuCount[size_t(Fu::Branch)] = 1;
    c.fuCount[size_t(Fu::Load)] = 1;
    c.fuCount[size_t(Fu::Store)] = 1;
    c.fuCount[size_t(Fu::VUnit)] = 1;
    c.mshrs = 6;
    c.l1d = {32 * 1024, 4, 64, 3, true};
    c.l2 = {128 * 1024, 4, 64, 8, true};
    c.llc = llcDefault();
    c.branchPenalty = 8;
    return c;
}

CoreConfig
scalabilityConfig(int ways, int vunits)
{
    CoreConfig c = primeConfig();
    c.name = std::to_string(ways) + "W-" + std::to_string(vunits) + "V";
    c.decodeWidth = ways;
    c.commitWidth = ways;
    c.issueWidth = 2 * ways;
    c.fuCount[size_t(Fu::VUnit)] = vunits;
    // Scale the in-flight window and the LSU with the front end like
    // the paper's simulated cores: the study isolates vector-unit ILP,
    // so neither a starved decoder nor a fixed pair of load ports may
    // become the bottleneck (XP's GEMM issues one B-panel load per
    // multiply-accumulate and would otherwise saturate the AGUs).
    c.robSize = 128 * ways / 4;
    c.fuCount[size_t(Fu::Load)] =
        std::max(c.fuCount[size_t(Fu::Load)], ways / 2);
    c.fuCount[size_t(Fu::Store)] =
        std::max(c.fuCount[size_t(Fu::Store)], ways / 4);
    return c;
}

CoreConfig
widerVectorConfig(int vecBits)
{
    CoreConfig c = primeConfig();
    c.name = "prime-" + std::to_string(vecBits) + "b";
    c.vecBits = vecBits;
    return c;
}

} // namespace swan::sim
