#include "sim/power.hh"

namespace swan::sim
{

using trace::InstrClass;

PowerParams
PowerParams::forConfig(const CoreConfig &cfg)
{
    PowerParams p;
    if (!cfg.outOfOrder) {
        // Silver: in-order pipe, lower voltage/frequency point.
        p.eScalarInstr = 35e-12;
        p.eBranch = 25e-12;
        p.eVecInstr = 80e-12;
        p.eVecPerByte = 4e-12;
        p.staticW = 0.45;
    } else if (cfg.freqGHz < 2.6) {
        // Gold: same core, lower V/f point.
        p.eScalarInstr = 75e-12;
        p.eVecInstr = 120e-12;
        p.staticW = 0.70;
    }
    return p;
}

void
applyPowerModel(SimResult &r, const PowerParams &p)
{
    auto count = [&](InstrClass c) {
        return double(r.byClass[size_t(c)]);
    };
    const double scalar = count(InstrClass::SInt) +
                          count(InstrClass::SFloat) +
                          count(InstrClass::SLoad) +
                          count(InstrClass::SStore);
    const double branch = count(InstrClass::Branch);
    const double vec = count(InstrClass::VLoad) +
                       count(InstrClass::VStore) +
                       count(InstrClass::VInt) +
                       count(InstrClass::VFloat) +
                       count(InstrClass::VCrypto) +
                       count(InstrClass::VMisc);

    double e = 0.0;
    e += scalar * p.eScalarInstr;
    e += branch * p.eBranch;
    e += vec * p.eVecInstr;
    e += double(r.vecBytes) * p.eVecPerByte;
    e += double(r.l1Accesses) * p.eL1Access;
    e += double(r.l2Accesses) * p.eL2Access;
    e += double(r.llcAccesses) * p.eLlcAccess;
    e += double(r.dramReads + r.dramWrites) * p.eDramLine;
    e += p.staticW * r.timeSec;

    r.energyJ = e;
    r.powerW = r.timeSec > 0 ? e / r.timeSec : 0.0;
}

} // namespace swan::sim
