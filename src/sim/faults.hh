/**
 * @file
 * Fault-injection scenarios over the fused replay engine: deterministic,
 * seedable adversarial perturbations (DRAM latency spikes, cache-flush
 * storms, branch-mispredict bursts, firstfault-style partial progress)
 * delivered through the sim::ReplayObserver payload seam. Scenarios are
 * first-class sweep axes — a FaultSpec rides SweepSpec/SessionOptions/
 * `swan sweep --faults` and partitions the result cache (faulted and
 * clean points never collide). The design follows KEDR's
 * fault-simulation payloads: a scenario indicator (here: seeded
 * instruction-index windows) decides *when* to fault, an actuator
 * decides *what* the fault does. See docs/faults.md.
 */

#ifndef SWAN_SIM_FAULTS_HH
#define SWAN_SIM_FAULTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/core_model.hh"

namespace swan::sim
{

/** The fault scenario family (FaultSpec::catalog() documents each). */
enum class FaultScenario : uint8_t
{
    None = 0,         //!< clean run (the default axis value)
    DramSpike,        //!< DRAM latency multiplied during windows
    CacheFlush,       //!< all cache levels flushed, repeatedly, per window
    MispredictBurst,  //!< branch mispredict rate raised during windows
    FirstFault,       //!< multi-element vector ops truncated to a lane prefix
};

/**
 * One parsed fault scenario: what to inject, when, and how hard.
 *
 * Timing model: instruction indices are counted cumulatively across
 * every replay pass of a sweep point (warmups included), and divided
 * into slots of @ref period instructions. Window k opens at
 * `k*period + jitter(k)` — jitter is a splitmix64 hash of
 * `seed ^ k`, bounded so the window fits its slot — and stays open for
 * @ref duration instructions. Everything is a pure function of
 * (spec, instruction index), so identical seeds give byte-identical
 * results on any backend, job count, or shard count.
 */
struct FaultSpec
{
    FaultScenario scenario = FaultScenario::None;
    uint64_t seed = 1;
    uint64_t period = 50000;    //!< instructions per window slot
    uint64_t duration = 5000;   //!< instructions a window stays open
    /**
     * Scenario-specific strength; 0 selects the per-scenario default:
     * dram-spike = latency multiplier (default 8), cache-flush =
     * flushes per window (default 4), mispredict-burst = mispredict
     * rate while open (default 0.25), firstfault = element clamp
     * (default 1).
     */
    double intensity = 0.0;

    bool enabled() const { return scenario != FaultScenario::None; }

    /** Intensity with the per-scenario default applied. */
    double effectiveIntensity() const;

    /** Canonical short name of @p s ("none", "dram-spike", ...). */
    static const char *name(FaultScenario s);

    /**
     * Parse `scenario[:key=value]...` (keys: seed, period, duration,
     * intensity; e.g. "dram-spike:seed=7:intensity=16" — parameters
     * are colon-separated so specs can live in a comma-separated axis
     * list). "" and "none" give a disabled spec. On failure returns
     * false and sets @p err to a message that embeds the scenario
     * catalog().
     */
    static bool parse(const std::string &text, FaultSpec *out,
                      std::string *err);

    /** Canonical round-trippable form ("dram-spike:seed=7,..."). */
    std::string describe() const;

    /**
     * Stable identity of the scenario (FNV-1a over every field).
     * 0 if and only if disabled — CacheKey folds this in so faulted
     * and clean points can never share a cache entry, while clean
     * keys hash exactly as they did before faults existed.
     */
    uint64_t fingerprint() const;

    /** Human-readable scenario catalog (the --faults=help text). */
    static std::string catalog();
};

/**
 * The ReplayObserver payload realizing a FaultSpec: tracks the seeded
 * window schedule across passes and drives the CoreModel actuators at
 * window edges. One instance serves one sweep point (it accumulates
 * the cross-pass instruction offset in end()); models must be the
 * same span on every pass.
 */
class FaultObserver final : public ReplayObserver
{
  public:
    explicit FaultObserver(const FaultSpec &spec);

    void begin(std::span<CoreModel *const> models) override;
    uint64_t nextBoundary(uint64_t pos) override;
    void atBoundary(uint64_t pos,
                    std::span<CoreModel *const> models) override;
    void end(uint64_t total, std::span<CoreModel *const> models) override;
    uint32_t elemClamp() const override;

    /**
     * Revert any still-open window (a window may span the end of the
     * final pass): restores DRAM latency / mispredict rate baselines
     * so CoreModel::finish() runs against the clean configuration.
     * Called by simulateTraceMany(..., fault, ...) before finishing.
     */
    void restore(std::span<CoreModel *const> models);

  private:
    uint64_t windowStart(uint64_t k) const;
    /** Global position of the next pending event, or kNoBoundary. */
    uint64_t nextEventPos() const;
    /** Fire every event at or before global position @p g. */
    void runEventsThrough(uint64_t g, std::span<CoreModel *const> models);

    void applyWindow(std::span<CoreModel *const> models);
    void revertWindow(std::span<CoreModel *const> models);

    FaultSpec spec_;
    uint64_t base_ = 0;      //!< instructions consumed by finished passes
    uint64_t window_ = 0;    //!< index of the next (or open) window
    uint32_t flashIdx_ = 0;  //!< cache-flush storm: flushes fired so far
    uint32_t flashes_ = 1;   //!< cache-flush storm: flushes per window
    bool open_ = false;      //!< inside a fault window
    uint32_t clamp_ = 0;     //!< firstfault element clamp while open
    bool saved_ = false;     //!< baselines captured
    std::vector<uint64_t> baseDramLatency_;
    std::vector<double> baseMispredictRate_;
};

/**
 * simulateTraceMany with a fault scenario attached: same
 * warmup/measure/finish protocol, with @p fault injected across all
 * passes via a FaultObserver on the replay payload seam. A disabled
 * spec delegates to the clean simulateTraceMany, so clean sweep points
 * are bit-identical to a build without fault support.
 */
std::vector<SimResult>
simulateTraceMany(const trace::PackedTrace &trace,
                  const std::vector<CoreConfig> &cfgs,
                  const FaultSpec &fault, int warmup_passes = 1);

} // namespace swan::sim

#endif // SWAN_SIM_FAULTS_HH
