/**
 * @file
 * Event-energy power model: substitutes for the paper's battery
 * current/voltage measurement (Section 4.3). Total chip power = dynamic
 * event energy (per-instruction pipeline energy, datapath energy scaled by
 * vector width, cache accesses per level, DRAM line transfers) divided by
 * runtime, plus a per-core-config static/background term that includes
 * the rest of the SoC and DRAM standby (the paper measures whole-chip
 * power including main memory).
 *
 * The two first-order effects the paper reports emerge directly: higher
 * DRAM access *rate* raises Neon power (Section 5.3 / Figure 3), and
 * shorter runtime cuts energy (Figure 2).
 */

#ifndef SWAN_SIM_POWER_HH
#define SWAN_SIM_POWER_HH

#include "sim/core_model.hh"

namespace swan::sim
{

/** Per-event energies (joules) and static power (watts). */
struct PowerParams
{
    double eScalarInstr = 90e-12;  //!< fetch/decode/execute, scalar
    double eBranch = 60e-12;
    double eVecInstr = 140e-12;    //!< vector instruction overhead
    double eVecPerByte = 5e-12;    //!< vector datapath energy per byte
    double eL1Access = 25e-12;
    double eL2Access = 90e-12;
    double eLlcAccess = 240e-12;
    double eDramLine = 5e-9;       //!< 64-byte line incl. LPDDR IO
    double staticW = 0.80;         //!< SoC + DRAM background at load

    /** Static power presets per core type. */
    static PowerParams forConfig(const CoreConfig &cfg);
};

/**
 * Fill result.energyJ / result.powerW from the event counts.
 * CoreModel::finish already applies this with the per-config presets
 * (the power model is fused into the replay's finish path), so only
 * custom PowerParams studies need to call it; re-applying is
 * idempotent — the fields are recomputed from the counters.
 */
void applyPowerModel(SimResult &result, const PowerParams &params);

/** Convenience wrapper from before the power model was fused into
 *  CoreModel::finish; kept for API compatibility — now exactly
 *  simulateTrace(). */
inline SimResult
simulateWithPower(const std::vector<trace::Instr> &instrs,
                  const CoreConfig &cfg, int warmup_passes = 1)
{
    return simulateTrace(instrs, cfg, warmup_passes);
}

} // namespace swan::sim

#endif // SWAN_SIM_POWER_HH
