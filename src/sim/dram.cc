#include "sim/dram.hh"

// Dram is header-inline; this translation unit anchors the target.
