#include "sim/core_model.hh"

#include "obs/telemetry.hh"
#include "sim/power.hh"
#include "swan/internal/simd_dispatch.hh"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <memory>
#include <stdexcept>

#if defined(__x86_64__) && !defined(SWAN_SIMD_OFF)
#include <immintrin.h>
#endif

namespace swan::sim
{

using trace::Fu;
using trace::Instr;
using trace::InstrClass;

/** Latencies at or above this occupy their unit (divides, unpipelined). */
constexpr int kUnpipelinedLat = 10;

namespace
{

/** Branches between modeled mispredicts (>= 1; 0 = never). */
inline uint64_t
mispredictInterval(const CoreConfig &cfg)
{
    return uint64_t(1.0 / std::max(cfg.branchMispredictRate, 1e-6));
}

#if defined(__x86_64__) && !defined(SWAN_SIMD_OFF)

/** Whether the runtime dispatch selected the AVX2 issue-slot scan. */
inline bool
slotScanAvx2()
{
    static const bool on = swan::detail::simdDispatch().level ==
                           swan::detail::SimdLevel::Avx2;
    return on;
}

/**
 * AVX2 single-occupancy issue-slot scan: find the first cycle >= @p c
 * whose stamped slot is free. Four 16-byte slots ({uint64 cycle,
 * uint8 used, pad}; @p ring is the raw ring bytes, @p slot_mask its
 * index mask) load as two 256-bit vectors per step; unpacking splits
 * them into a cycle vector and a used vector in the permuted lane
 * order {0,2,1,3}, a stale stamp (cycle != expected) reads as used=0
 * exactly like the scalar probe, and a 16-entry table maps the free
 * mask back to the first free offset in true cycle order — so the
 * returned cycle is bit-identical to the scalar scan, four cycles per
 * compare instead of one. Windows straddling the ring seam step
 * scalar. Compiled with a target attribute: callers must check
 * slotScanAvx2() first.
 */
__attribute__((target("avx2"))) uint64_t
scanSlots4(const unsigned char *ring, uint64_t c, uint64_t slot_mask,
           uint8_t limit)
{
    // First free offset, in cycle order, for each free mask whose bits
    // are in lane order {c+0, c+2, c+1, c+3}; 4 = whole window full.
    static const uint8_t kFirst[16] = {4, 0, 2, 0, 1, 0, 1, 0,
                                       3, 0, 2, 0, 1, 0, 1, 0};
    const __m256i vlimit = _mm256_set1_epi64x(int64_t(limit));
    const __m256i vbyte = _mm256_set1_epi64x(0xff);
    const __m256i vperm = _mm256_setr_epi64x(0, 2, 1, 3);
    const __m256i vones = _mm256_set1_epi64x(-1);
    while (true) {
        const uint64_t idx = c & slot_mask;
        if (__builtin_expect(idx + 4 > slot_mask + 1, 0)) {
            // The 4-slot window straddles the ring seam: probe the
            // seam scalar, exactly like the portable loop.
            for (uint64_t k = 0; k < 4; ++k) {
                const unsigned char *s =
                    ring + ((c + k) & slot_mask) * 16;
                uint64_t cyc;
                std::memcpy(&cyc, s, 8);
                const uint8_t used = cyc == c + k ? s[8] : 0;
                if (used < limit)
                    return c + k;
            }
            c += 4;
            continue;
        }
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(ring + idx * 16));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(ring + idx * 16 + 32));
        // Per 128-bit half, unpack interleaves a/b: cycles and used
        // land in lane order {0, 2, 1, 3}.
        const __m256i cycles = _mm256_unpacklo_epi64(a, b);
        const __m256i used =
            _mm256_and_si256(_mm256_unpackhi_epi64(a, b), vbyte);
        const __m256i expect =
            _mm256_add_epi64(_mm256_set1_epi64x(int64_t(c)), vperm);
        const __m256i stamped = _mm256_cmpeq_epi64(cycles, expect);
        const __m256i below = _mm256_cmpgt_epi64(vlimit, used);
        // free = stale stamp (reads as used=0 < limit) or used < limit.
        const __m256i free_ = _mm256_or_si256(
            below, _mm256_xor_si256(stamped, vones));
        const int m =
            _mm256_movemask_pd(_mm256_castsi256_pd(free_));
        const uint64_t off = kFirst[m];
        if (off < 4)
            return c + off;
        c += 4;
    }
}

#endif // __x86_64__ && !SWAN_SIMD_OFF

} // namespace

CoreModel::CoreModel(const CoreConfig &cfg)
    : cfg_(cfg), mem_(cfg),
      readyRing_(kWindow, 0),
      robRing_(size_t(std::max(cfg.robSize, 1)), 0)
{
    for (size_t f = 0; f < fuFree_.size(); ++f) {
        int count = std::max(cfg_.fuCount[f], 1);
        fuFree_[f].assign(size_t(count), 0);
        fuSlots_[f].assign(kSlots, IssueSlot{});
    }
    st_.branchCountdown = mispredictInterval(cfg_);
}

uint64_t
CoreModel::findIssueSlot(uint8_t fu, uint64_t ready, int occupancy,
                         uint64_t *fu_frontier)
{
    IssueSlot *ring = fuSlots_[fu].data();
    const uint8_t limit = uint8_t(fuFree_[fu].size());
    const uint64_t frontier = fu_frontier[fu];
    // Cycles below the frontier are known full: skipping them cannot
    // change the found slot (issue counts never decrease), it only
    // bounds the scan — without it a saturated pool re-walks its whole
    // backlog (up to a ROB's worth of cycles) per instruction.
    uint64_t c = std::max(ready, frontier);
    if (occupancy == 1) {
        // Scalar probe of the start cycle first: an unsaturated pool
        // answers here, and the vectorized scan below only earns its
        // setup once at least one full cycle must be skipped.
        const auto &first = ring[c & (kSlots - 1)];
        if ((first.cycle == c ? first.used : 0) >= limit) {
#if defined(__x86_64__) && !defined(SWAN_SIMD_OFF)
            static_assert(sizeof(IssueSlot) == 16,
                          "scanSlots4 hardcodes the slot stride");
            if (slotScanAvx2()) {
                c = scanSlots4(
                    reinterpret_cast<const unsigned char *>(ring), c + 1,
                    kSlots - 1, limit);
            } else
#endif
            {
                ++c;
                while (true) {
                    const auto &slot = ring[c & (kSlots - 1)];
                    const uint8_t used = slot.cycle == c ? slot.used : 0;
                    if (used < limit)
                        break;
                    ++c;
                }
            }
        }
        // The scan proved [start, c) full; when it started at the
        // frontier, everything below c is now known full.
        if (ready <= frontier)
            fu_frontier[fu] = c;
    } else {
        while (true) {
            bool fits = true;
            for (int k = 0; k < occupancy && fits; ++k) {
                const auto &slot = ring[(c + uint64_t(k)) & (kSlots - 1)];
                const uint8_t used =
                    slot.cycle == c + uint64_t(k) ? slot.used : 0;
                fits = used < limit;
            }
            if (fits)
                break;
            ++c;
        }
    }
    // One unit is busy for `occupancy` consecutive cycles.
    for (int k = 0; k < occupancy; ++k) {
        auto &slot = ring[(c + uint64_t(k)) & (kSlots - 1)];
        if (slot.cycle != c + uint64_t(k)) {
            slot.cycle = c + uint64_t(k);
            slot.used = 0;
        }
        slot.used = uint8_t(std::min<int>(slot.used + 1, 255));
    }
    return c;
}

CoreModel::StepIn
CoreModel::stepInFor(const Instr &i)
{
    StepIn in;
    in.id = i.id;
    in.dep0 = i.dep0;
    in.dep1 = i.dep1;
    in.dep2 = i.dep2;
    in.addr = i.addr;
    in.addr2 = i.addr2;
    in.size = i.size;
    in.elemStride = i.elemStride;
    in.occBase = uint8_t(i.latency >= kUnpipelinedLat ? i.latency : 1);
    in.latency = i.latency;
    in.fu = uint8_t(i.fu);
    in.cls = uint8_t(i.cls);
    in.vecBytes = i.vecBytes;
    in.elems = uint8_t(std::max<int>(i.activeLanes, 1));
    uint8_t flags = 0;
    if (i.isLoad())
        flags |= kFlagLoad;
    if (i.isStore())
        flags |= kFlagStore;
    if (i.isMultiAddress())
        flags |= kFlagMulti;
    if (i.cls == InstrClass::Branch)
        flags |= kFlagBranch;
    in.flags = flags;
    return in;
}

void
CoreModel::onInstr(const Instr &instr)
{
    onBlock(&instr, 1);
}

void
CoreModel::onBlock(const Instr *instrs, size_t n)
{
    // Same step core as the fused path: predigest a chunk, then step
    // it. The issue frontier is scoped to this call (a zeroed
    // frontier is always valid — it only bounds the scan, never the
    // result).
    uint64_t frontier[size_t(Fu::NumFus)] = {};
    StepIn batch[trace::PackedTrace::kBlockInstrs];
    const StepBlockFn fn = cfg_.outOfOrder
                               ? &CoreModel::stepBlock<true, true>
                               : &CoreModel::stepBlock<false, true>;
    while (n) {
        const size_t nb =
            std::min<size_t>(n, trace::PackedTrace::kBlockInstrs);
        for (size_t k = 0; k < nb; ++k)
            batch[k] = stepInFor(instrs[k]);
        fn(*this, st_, frontier, batch, nb);
        instrs += nb;
        n -= nb;
    }
}

uint64_t
CoreModel::readyOf(const StepState &st, uint64_t dep) const
{
    if (dep == 0)
        return 0;
    const uint64_t eff = dep + st.idOffset;
    if (eff + kWindow <= st.n)
        return 0; // long since completed
    return readyRing_[eff & (kWindow - 1)];
}

uint64_t
CoreModel::reserveFu(uint8_t fu, uint64_t ready, int occupancy)
{
    auto &pool = fuFree_[fu];
    auto it = std::min_element(pool.begin(), pool.end());
    const uint64_t start = std::max(ready, *it);
    *it = start + uint64_t(occupancy);
    return start;
}

uint64_t
CoreModel::memComplete(const StepIn &in, uint64_t start)
{
    if (in.flags & kFlagMulti)
        return memCompleteMulti(in, start);
    if (in.flags & kFlagLoad) {
        uint64_t lat;
        if (mem_.loadHit(in.addr, in.size, &lat))
            return start + std::max<uint64_t>(in.latency, lat);
        auto r = mem_.load(in.addr, in.size, start);
        return start + std::max<uint64_t>(in.latency, r.latency);
    }
    if (in.flags & kFlagStore) {
        if (!mem_.storeHit(in.addr, in.size))
            mem_.store(in.addr, in.size, start);
        return start + in.latency;
    }
    return start + in.latency;
}

uint64_t
CoreModel::memCompleteMulti(const StepIn &in, uint64_t start)
{
    // SVE/RVV-style gather/scatter and arbitrary-stride accesses crack
    // into per-element cache accesses in the LSU, lsuCrackPerCycle at a
    // time. LdS/StS element addresses are exact (addr + i*elemStride);
    // gather/scatter addresses are data-dependent, so the elements are
    // spread evenly across the touched region [addr, addr2] recorded at
    // emit time — the right cache-line footprint for the uniform LUT
    // keys the Section 6.2 kernels generate.
    const uint64_t crack = uint64_t(std::max(cfg_.lsuCrackPerCycle, 1));
    const int elems = in.elems;
    const uint32_t elemBytes =
        std::max<uint32_t>(in.size / uint32_t(elems), 1);
    const bool isLoad = (in.flags & kFlagLoad) != 0;
    int64_t stride = in.elemStride;
    if (!stride) {
        stride = elems > 1
                     ? (int64_t(in.addr2) - int64_t(in.addr)) /
                           (elems - 1)
                     : 0;
    }
    uint64_t complete = start + in.latency;
    for (int i = 0; i < elems; ++i) {
        const uint64_t a = uint64_t(int64_t(in.addr) + i * stride);
        const uint64_t issue = start + uint64_t(i) / crack;
        if (isLoad) {
            auto r = mem_.load(a, elemBytes, issue);
            complete = std::max(complete,
                                issue + std::max<uint64_t>(in.latency,
                                                           r.latency));
        } else {
            mem_.store(a, elemBytes, issue);
            complete = std::max(complete, issue + in.latency);
        }
    }
    return complete;
}

template <bool OutOfOrder, bool CheckRestart>
void
CoreModel::stepBlock(CoreModel &m, StepState &io, uint64_t *fu_frontier,
                     const StepIn *ins, size_t n)
{
    // The whole batch runs on a local StepState copy: the
    // per-instruction recurrence (dispatch/commit cycles and
    // counters) stays in registers, with only the rings and the
    // memory hierarchy going through memory. The copy cannot escape,
    // so the compiler needs no aliasing proofs against the ring
    // stores.
    // The step core is a no-alloc region: it runs between captures on
    // the bench thread (onBlock path) and inside the fused replay
    // loop, where any heap traffic would shift later capture
    // addresses (swan/internal/contracts.hh; docs/lint.md).
    SWAN_NOALLOC_BEGIN("CoreModel::stepBlock");
    StepState st = io;
    const uint32_t robSize = uint32_t(m.robRing_.size());
    const int decodeWidth = m.cfg_.decodeWidth;
    const int issueWidth = m.cfg_.issueWidth;
    const int commitWidth = m.cfg_.commitWidth;
    uint64_t *const robRing = m.robRing_.data();
    uint64_t *const readyRing = m.readyRing_.data();
    (void)issueWidth; // only the in-order instantiation issues in order
    for (size_t k = 0; k < n; ++k) {
        const StepIn &in = ins[k];
        if constexpr (CheckRestart) {
            if (in.id <= st.lastSeenId) {
                // A new replayed pass started: re-base ids.
                st.idOffset = st.n;
            }
            st.lastSeenId = in.id;
        }
        ++st.n;
        if (++st.robIdx == robSize)
            st.robIdx = 0;

        // Dispatch: bounded by decode width and a free ROB slot (for
        // the in-order core the rob ring is its scoreboard-like
        // in-flight window). The ROB gate needs no "warmed past the
        // ring" guard — slots not written yet still hold their
        // initial 0, which cannot raise the max.
        uint64_t d = std::max(st.dispCycle, robRing[st.robIdx]);
        if (d > st.dispCycle) {
            st.dispCycle = d;
            st.dispCount = 0;
        }
        ++st.dispCount;
        if (st.dispCount > decodeWidth) {
            ++st.dispCycle;
            st.dispCount = 1;
        }
        d = st.dispCycle;

        // Operand readiness (dataflow); in-order issue additionally
        // never overtakes the program-order issue point.
        uint64_t ready = d;
        if constexpr (!OutOfOrder)
            ready = std::max(ready, st.lastIssue);
        ready = std::max(ready, m.readyOf(st, in.dep0));
        ready = std::max(ready, m.readyOf(st, in.dep1));
        ready = std::max(ready, m.readyOf(st, in.dep2));

        // Functional unit (divides occupy their unit for the full
        // latency).
        int occ = in.occBase;
        if (in.flags & kFlagMulti) {
            const int crack = std::max(m.cfg_.lsuCrackPerCycle, 1);
            occ = std::max(occ, (int(in.elems) + crack - 1) / crack);
        }

        uint64_t start;
        if constexpr (OutOfOrder) {
            // Out-of-order issue: younger ready instructions may take
            // earlier cycles than stalled older ones.
            start = m.findIssueSlot(in.fu, ready, occ, fu_frontier);
        } else {
            start = m.reserveFu(in.fu, ready, occ);
            // Program-order issue, at most issueWidth per cycle.
            if (start > st.lastIssue) {
                st.lastIssue = start;
                st.issueCount = 0;
            }
            ++st.issueCount;
            if (st.issueCount > issueWidth) {
                ++st.lastIssue;
                st.issueCount = 1;
                start = st.lastIssue;
            }
        }

        // Execute: pure compute completes inline; only memory
        // operations call into the hierarchy model.
        const uint64_t complete =
            in.flags & (kFlagLoad | kFlagStore | kFlagMulti)
                ? m.memComplete(in, start)
                : start + in.latency;

        // Branch handling: a fixed fraction mispredicts and redirects
        // the front-end after resolution (front-end stall
        // attribution).
        if (in.flags & kFlagBranch) {
            if (st.branchCountdown && --st.branchCountdown == 0) {
                st.branchCountdown = mispredictInterval(m.cfg_);
                const uint64_t redirect =
                    complete + uint64_t(m.cfg_.branchPenalty);
                if (redirect > st.dispCycle) {
                    st.feStallCycles += redirect - st.dispCycle;
                    st.dispCycle = redirect;
                    st.dispCount = 0;
                }
            }
        }

        // Retire: in-order commit, commitWidth per cycle.
        uint64_t c = std::max(complete, st.commitCycle);
        if (c > st.commitCycle) {
            st.commitCycle = c;
            st.commitCount = 0;
        }
        ++st.commitCount;
        if (st.commitCount > commitWidth) {
            ++st.commitCycle;
            st.commitCount = 1;
        }
        robRing[st.robIdx] = st.commitCycle;
        readyRing[st.n & (kWindow - 1)] = complete;

        ++m.byClass_[in.cls];
        m.vecBytes_ += in.vecBytes;
    }
    if constexpr (!CheckRestart) {
        // The caller proved ids strictly increase and start above
        // lastSeenId, so no restart could have fired; one update at
        // batch end keeps the resting state identical.
        if (n)
            st.lastSeenId = ins[n - 1].id;
    }
    io = st;
    SWAN_NOALLOC_END();
}

void
CoreModel::beginMeasurement()
{
    instr0_ = st_.n;
    cycle0_ = st_.commitCycle;
    feStall0_ = st_.feStallCycles;
    mem_.resetStats();
    byClass_.fill(0);
    vecBytes_ = 0;
}

SimResult
CoreModel::finish()
{
    SimResult r;
    r.config = cfg_.name;
    r.instrs = st_.n - instr0_;
    r.cycles = st_.commitCycle > cycle0_ ? st_.commitCycle - cycle0_ : 1;
    r.ipc = double(r.instrs) / double(r.cycles);
    r.timeSec = double(r.cycles) / (cfg_.freqGHz * 1e9);

    const double kilo = double(r.instrs) / 1000.0;
    r.l1Accesses = mem_.l1().accesses();
    r.l2Accesses = mem_.l2().accesses();
    r.llcAccesses = mem_.llc().accesses();
    if (kilo > 0) {
        r.l1Mpki = double(mem_.l1().misses()) / kilo;
        r.l2Mpki = double(mem_.l2().misses()) / kilo;
        r.llcMpki = double(mem_.llc().misses()) / kilo;
    }
    r.l1HitRate = 1.0 - mem_.l1().missRate();

    const uint64_t fe = st_.feStallCycles - feStall0_;
    r.feStallPct = 100.0 * double(fe) / double(r.cycles);
    const double slots = double(r.cycles) * double(cfg_.decodeWidth);
    const double lost =
        slots - double(r.instrs) - double(fe) * double(cfg_.decodeWidth);
    r.beStallPct = std::max(0.0, 100.0 * lost / slots);

    r.dramReads = mem_.dramReads();
    r.dramWrites = mem_.dramWrites();
    r.dramAccessPerKCycle =
        1000.0 * double(mem_.dramAccesses()) / double(r.cycles);

    r.byClass = byClass_;
    r.vecBytes = vecBytes_;
    // Power model fused into the finish path: the energy/power fields
    // are a closed-form function of the counters gathered above, so
    // computing them here makes every replay entry point emit
    // power-complete results in the same pass — no driver needs a
    // separate applyPowerModel() step (it stays available for custom
    // PowerParams; re-applying is idempotent).
    applyPowerModel(r, PowerParams::forConfig(cfg_));
    return r;
}

ReplayObserver::~ReplayObserver() = default;

void
ReplayObserver::begin(std::span<CoreModel *const>)
{
}

uint64_t
ReplayObserver::nextBoundary(uint64_t)
{
    return kNoBoundary;
}

void
ReplayObserver::atBoundary(uint64_t, std::span<CoreModel *const>)
{
}

void
ReplayObserver::end(uint64_t, std::span<CoreModel *const>)
{
}

uint32_t
ReplayObserver::elemClamp() const
{
    return 0;
}

uint64_t
ReplayObserver::dramLatency(const CoreModel &m)
{
    return m.mem_.dram().latency();
}

void
ReplayObserver::setDramLatency(CoreModel &m, uint64_t latency_cycles)
{
    m.mem_.dram().setLatency(latency_cycles);
}

void
ReplayObserver::flushCaches(CoreModel &m)
{
    m.mem_.flushCaches();
}

double
ReplayObserver::branchMispredictRate(const CoreModel &m)
{
    return m.cfg_.branchMispredictRate;
}

void
ReplayObserver::setBranchMispredictRate(CoreModel &m, double rate)
{
    m.cfg_.branchMispredictRate = rate;
    m.st_.branchCountdown = mispredictInterval(m.cfg_);
}

namespace detail
{

template <bool HasObserver>
void
replayWith(const trace::PackedTrace &trace,
           std::span<CoreModel *const> models, ReplayObserver *payload)
{
    if (models.empty())
        return;

    // Hoist the per-descriptor shape work out of the loop: one StepIn
    // prototype per deduplicated descriptor (class/FU predicates,
    // unpipelined occupancy, latency), built once per traversal. Both
    // this table and the lane blocks live on the stack for every
    // realistic span — the replay path then makes no heap allocation,
    // which benches that interleave capture and simulation on one
    // thread rely on (the cache models are address-sensitive; see
    // sweep/scheduler.cc).
    constexpr uint32_t kStackDescs = 512;
    const uint32_t dc = trace.descCount();
    CoreModel::StepIn stackProto[kStackDescs];
    std::vector<CoreModel::StepIn> heapProto;
    CoreModel::StepIn *proto = stackProto;
    if (dc > kStackDescs) {
        heapProto.resize(dc);
        proto = heapProto.data();
    }
    for (uint32_t i = 0; i < dc; ++i) {
        Instr shape;
        trace.expandDesc(i, &shape);
        proto[i] = CoreModel::stepInFor(shape);
    }

    // Configurations advance as vector lanes: each LaneBlock carries
    // up to kLanes configurations' step states, issue frontiers and
    // step-function table entries field-major (sim/core_model.hh), so
    // the per-batch lane walk touches one contiguous state span —
    // persistent across the whole pass, which is exactly what the
    // Sink-delivery path cannot offer (it has nowhere to keep
    // cross-call scratch without growing every model).
    constexpr size_t kBL = CoreModel::LaneBlock::kLanes;
    const size_t nm = models.size();
    CoreModel::LaneBlock stackBlock;
    std::vector<CoreModel::LaneBlock> heapBlocks;
    CoreModel::LaneBlock *blocks = &stackBlock;
    if (nm > kBL) {
        heapBlocks.resize((nm + kBL - 1) / kBL);
        blocks = heapBlocks.data();
    }
    for (size_t i = 0; i < nm; ++i) {
        CoreModel::LaneBlock &b = blocks[i / kBL];
        const size_t s = i % kBL;
        b.model[s] = models[i];
        if (models[i]->cfg_.outOfOrder) {
            b.fnChecked[s] = &CoreModel::stepBlock<true, true>;
            b.fnMono[s] = &CoreModel::stepBlock<true, false>;
        } else {
            b.fnChecked[s] = &CoreModel::stepBlock<false, true>;
            b.fnMono[s] = &CoreModel::stepBlock<false, false>;
        }
        b.st[s] = models[i]->st_;
        std::memset(b.frontier[s], 0, sizeof(b.frontier[s]));
    }

    // One decode, N models: each record is decoded into registers and
    // merged with its shape prototype exactly once — per *batch*, not
    // per model — and every lane then consumes the batch model-major.
    // The batch keeps a model's pipeline rings, cache arrays and
    // branch history hot across kBatch consecutive steps; strict
    // per-instruction interleave measures ~10% slower (N models
    // thrash each other out of the host's L1 and predictors). No
    // trace::Instr is ever materialized: the batch holds predigested
    // StepIn operands, built once for all configurations, where the
    // Sink path re-derives them per model per instruction.
    // Observer bookkeeping: the traversal position (instructions
    // stepped so far) and the next boundary the payload asked for.
    // Both exist only in the HasObserver instantiation — every use is
    // behind if constexpr, so the observer-free replay() stays the
    // exact historic loop.
    [[maybe_unused]] uint64_t pos = 0;
    [[maybe_unused]] uint64_t boundary = ReplayObserver::kNoBoundary;
    if constexpr (HasObserver) {
        payload->begin(models);
        boundary = payload->nextBoundary(0);
    }

    // From here to the end of the traversal the engine is heap-free —
    // the setup above (prototype table, lanes) took any allocations
    // it needed, and benches interleave replay with capture on one
    // thread, so heap traffic here would shift the addresses later
    // captures record. Statically checked by swan-lint; dynamically
    // by AllocGuard under -DSWAN_ALLOC_GUARD=ON. Payload callbacks
    // are foreign code and run under SWAN_NOALLOC_PAUSE — the
    // contract binds the engine, not the payload.
    SWAN_NOALLOC_BEGIN("sim::replay");
    constexpr size_t kBatch = 4 * trace::PackedTrace::kBlockInstrs;
    // Decode sub-batch: the batch kernels (Cursor::nextBatch) fill an
    // L1-resident Decoded span which the merge loop folds with the
    // prototype table into StepIn operands. Capture-phase scratch:
    // sized by the Decoded layout pin.
    constexpr size_t kDecodeChunk = 128;
    CoreModel::StepIn batch[kBatch];
    trace::PackedTrace::Decoded dbuf[kDecodeChunk];
    trace::PackedTrace::Cursor cur(trace);
    while (true) {
        size_t cap = kBatch;
        [[maybe_unused]] uint32_t clamp = 0;
        if constexpr (HasObserver) {
            // Never step across a requested boundary: cap the batch so
            // the callback fires exactly when pos reaches it (a stale
            // boundary at or before pos degrades to single stepping).
            if (boundary != ReplayObserver::kNoBoundary) {
                const uint64_t room = boundary > pos ? boundary - pos : 1;
                cap = size_t(std::min<uint64_t>(cap, room));
            }
            SWAN_NOALLOC_PAUSE();
            clamp = payload->elemClamp();
        }
        size_t nb = 0;
        uint64_t prevId = 0;
        bool mono = true;
        while (nb < cap) {
            // Batch decode straight into the Decoded span — the
            // runtime-dispatched kernel amortizes bounds checks and
            // keeps the decode recurrence in registers across the
            // whole chunk (trace/packed_batch.cc).
            const size_t got = cur.nextBatch(
                dbuf, std::min(cap - nb, kDecodeChunk));
            if (got == 0)
                break;
            for (size_t j = 0; j < got; ++j) {
                // Identity fields land as one 48-byte copy — Decoded
                // leads with StepIn's identity prefix in the same
                // order — and the shape tail (size/stride/occupancy/
                // flags) is one 16-byte copy from the descriptor
                // prototype.
                const trace::PackedTrace::Decoded &d = dbuf[j];
                CoreModel::StepIn &in = batch[nb++];
                static_assert(
                    offsetof(CoreModel::StepIn, size) == 48 &&
                        offsetof(trace::PackedTrace::Decoded, desc) ==
                            48,
                    "the merge copies Decoded's identity prefix "
                    "straight into StepIn");
                std::memcpy(&in, &d, offsetof(CoreModel::StepIn, size));
                std::memcpy(&in.size, &proto[d.desc].size,
                            sizeof(CoreModel::StepIn) -
                                offsetof(CoreModel::StepIn, size));
                if constexpr (HasObserver) {
                    // Firstfault-style partial progress: truncate a
                    // multi-element access to a prefix of its lanes,
                    // keeping the per-element footprint and stride
                    // invariant (addr2 is re-derived so the implied
                    // stride survives the element-count change).
                    if (clamp && (in.flags & CoreModel::kFlagMulti) &&
                        uint32_t(in.elems) > clamp) {
                        const uint32_t oldElems = in.elems;
                        const uint32_t elemBytes =
                            std::max<uint32_t>(in.size / oldElems, 1);
                        if (in.elemStride == 0 && oldElems > 1) {
                            const int64_t stride =
                                (int64_t(in.addr2) - int64_t(in.addr)) /
                                int64_t(oldElems - 1);
                            in.addr2 =
                                uint64_t(int64_t(in.addr) +
                                         stride * int64_t(clamp - 1));
                        }
                        in.elems = uint8_t(clamp);
                        in.size = elemBytes * clamp;
                    }
                }
                mono = mono && d.id > prevId;
                prevId = d.id;
            }
        }
        if (nb == 0)
            break;
        for (size_t i = 0; i < nm; ++i) {
            CoreModel::LaneBlock &b = blocks[i / kBL];
            const size_t s = i % kBL;
            // A batch with strictly increasing ids that start above
            // the lane's last seen id cannot contain a pass restart:
            // the per-instruction check is dead, so run the
            // instantiation without it.
            const bool noRestart =
                mono && batch[0].id > b.st[s].lastSeenId;
            (noRestart ? b.fnMono[s] : b.fnChecked[s])(
                *b.model[s], b.st[s], b.frontier[s], batch, nb);
        }
        if constexpr (HasObserver) {
            pos += nb;
            if (boundary != ReplayObserver::kNoBoundary &&
                pos >= boundary) {
                // Sync the register-resident lane state into the
                // models so the payload sees (and may perturb)
                // architectural state, then reload it.
                for (size_t i = 0; i < nm; ++i)
                    blocks[i / kBL].model[i % kBL]->st_ =
                        blocks[i / kBL].st[i % kBL];
                {
                    SWAN_NOALLOC_PAUSE();
                    payload->atBoundary(pos, models);
                }
                for (size_t i = 0; i < nm; ++i)
                    blocks[i / kBL].st[i % kBL] =
                        blocks[i / kBL].model[i % kBL]->st_;
                {
                    SWAN_NOALLOC_PAUSE();
                    boundary = payload->nextBoundary(pos);
                }
            }
        }
    }
    SWAN_NOALLOC_END();
    for (size_t i = 0; i < nm; ++i)
        blocks[i / kBL].model[i % kBL]->st_ = blocks[i / kBL].st[i % kBL];
    if constexpr (HasObserver)
        payload->end(pos, models);
    if (!cur.ok())
        throw std::runtime_error(
            "swan: malformed packed trace rejected by fused replay");
}

template void replayWith<false>(const trace::PackedTrace &,
                                std::span<CoreModel *const>,
                                ReplayObserver *);
template void replayWith<true>(const trace::PackedTrace &,
                               std::span<CoreModel *const>,
                               ReplayObserver *);

} // namespace detail

void
replay(const trace::PackedTrace &trace,
       std::span<CoreModel *const> models)
{
    detail::replayWith<false>(trace, models, nullptr);
}

void
replay(const trace::PackedTrace &trace, std::span<CoreModel *const> models,
       ReplayObserver &payload)
{
    detail::replayWith<true>(trace, models, &payload);
}

namespace
{

/**
 * Shared warmup/measure/finish protocol of all the replay entry
 * points. @p feedPass delivers one full pass of the trace to a span of
 * models; it is called warmup_passes + 1 times.
 */
template <typename FeedPass>
std::vector<SimResult>
replayPasses(const std::vector<CoreConfig> &cfgs, int warmup_passes,
             FeedPass &&feedPass)
{
    std::vector<std::unique_ptr<CoreModel>> models;
    models.reserve(cfgs.size());
    for (const auto &cfg : cfgs)
        models.push_back(std::make_unique<CoreModel>(cfg));
    for (int p = 0; p < warmup_passes; ++p)
        feedPass(models);
    for (auto &m : models)
        m->beginMeasurement();
    feedPass(models);
    std::vector<SimResult> out;
    out.reserve(models.size());
    for (auto &m : models)
        out.push_back(m->finish());
    return out;
}

} // namespace

SimResult
simulateTrace(const std::vector<Instr> &instrs, const CoreConfig &cfg,
              int warmup_passes)
{
    CoreModel model(cfg);
    for (int p = 0; p < warmup_passes; ++p)
        model.onBlock(instrs.data(), instrs.size());
    model.beginMeasurement();
    model.onBlock(instrs.data(), instrs.size());
    return model.finish();
}

SimResult
simulateTrace(const trace::PackedTrace &trace, const CoreConfig &cfg,
              int warmup_passes)
{
    return simulateTraceMany(trace, {cfg}, warmup_passes).front();
}

std::vector<SimResult>
simulateTraceMany(const trace::PackedTrace &trace,
                  const std::vector<CoreConfig> &cfgs, int warmup_passes)
{
    // One telemetry span per fused traversal set; arg = instruction
    // steps (decoded instructions x configs x passes). A single
    // relaxed load when no collector is attached — this is the hot
    // path the obs overhead bench gates (bench/obs_overhead.cc).
    obs::Span span(obs::Phase::Replay,
                   uint64_t(trace.size()) * cfgs.size() *
                       uint64_t(warmup_passes + 1));
    return replayPasses(cfgs, warmup_passes, [&](auto &models) {
        // Fused replay: decode once per pass, step every model per
        // decoded instruction (see replay()).
        CoreModel *ptrs[16];
        std::vector<CoreModel *> heapPtrs;
        CoreModel **base = ptrs;
        if (models.size() > 16) {
            heapPtrs.resize(models.size());
            base = heapPtrs.data();
        }
        for (size_t i = 0; i < models.size(); ++i)
            base[i] = models[i].get();
        replay(trace, std::span<CoreModel *const>(base, models.size()));
    });
}

std::vector<SimResult>
simulateTraceMany(const std::vector<Instr> &instrs,
                  const std::vector<CoreConfig> &cfgs, int warmup_passes)
{
    constexpr size_t kBlock = trace::PackedTrace::kBlockInstrs;
    obs::Span span(obs::Phase::Replay,
                   uint64_t(instrs.size()) * cfgs.size() *
                       uint64_t(warmup_passes + 1));
    return replayPasses(cfgs, warmup_passes, [&](auto &models) {
        for (size_t at = 0; at < instrs.size(); at += kBlock) {
            const size_t n = std::min(kBlock, instrs.size() - at);
            for (auto &m : models)
                m->onBlock(instrs.data() + at, n);
        }
    });
}

} // namespace swan::sim
