#include "sim/core_model.hh"

#include <algorithm>
#include <memory>

namespace swan::sim
{

using trace::Fu;
using trace::Instr;
using trace::InstrClass;

/** Latencies at or above this occupy their unit (divides, unpipelined). */
constexpr int kUnpipelinedLat = 10;

CoreModel::CoreModel(const CoreConfig &cfg)
    : cfg_(cfg), mem_(cfg), readyRing_(kWindow, 0),
      robRing_(size_t(std::max(cfg.robSize, 1)), 0)
{
    for (size_t f = 0; f < fuFree_.size(); ++f) {
        int count = std::max(cfg_.fuCount[f], 1);
        fuFree_[f].assign(size_t(count), 0);
        fuSlots_[f].assign(kSlots, IssueSlot{});
    }
}

uint64_t
CoreModel::findIssueSlot(trace::Fu fu, uint64_t ready, int occupancy)
{
    auto &ring = fuSlots_[size_t(fu)];
    const uint8_t limit = uint8_t(std::max(cfg_.fuCount[size_t(fu)], 1));
    uint64_t c = ready;
    while (true) {
        bool fits = true;
        for (int k = 0; k < occupancy && fits; ++k) {
            const auto &slot = ring[(c + uint64_t(k)) & (kSlots - 1)];
            const uint8_t used =
                slot.cycle == c + uint64_t(k) ? slot.used : 0;
            fits = used < limit;
        }
        if (fits)
            break;
        ++c;
    }
    // One unit is busy for `occupancy` consecutive cycles.
    for (int k = 0; k < occupancy; ++k) {
        auto &slot = ring[(c + uint64_t(k)) & (kSlots - 1)];
        if (slot.cycle != c + uint64_t(k)) {
            slot.cycle = c + uint64_t(k);
            slot.used = 0;
        }
        slot.used = uint8_t(std::min<int>(slot.used + 1, 255));
    }
    return c;
}

void
CoreModel::onInstr(const Instr &instr)
{
    onBlock(&instr, 1);
}

void
CoreModel::onBlock(const Instr *instrs, size_t n)
{
    if (cfg_.outOfOrder) {
        for (size_t k = 0; k < n; ++k) {
            const Instr &instr = instrs[k];
            if (instr.id <= lastSeenId_) {
                // A new replayed pass started: re-base ids.
                idOffset_ = n_;
            }
            lastSeenId_ = instr.id;
            stepOoO(instr);
        }
    } else {
        for (size_t k = 0; k < n; ++k) {
            const Instr &instr = instrs[k];
            if (instr.id <= lastSeenId_) {
                idOffset_ = n_;
            }
            lastSeenId_ = instr.id;
            stepInOrder(instr);
        }
    }
}

uint64_t
CoreModel::readyOf(uint64_t dep) const
{
    if (dep == 0)
        return 0;
    const uint64_t eff = dep + idOffset_;
    if (eff + kWindow <= n_)
        return 0; // long since completed
    return readyRing_[eff & (kWindow - 1)];
}

uint64_t
CoreModel::reserveFu(Fu fu, uint64_t ready, int occupancy)
{
    auto &pool = fuFree_[size_t(fu)];
    auto it = std::min_element(pool.begin(), pool.end());
    const uint64_t start = std::max(ready, *it);
    *it = start + uint64_t(occupancy);
    return start;
}

uint64_t
CoreModel::memComplete(const Instr &instr, uint64_t start)
{
    if (instr.isMultiAddress())
        return memCompleteMulti(instr, start);
    if (instr.isLoad()) {
        auto r = mem_.load(instr.addr, instr.size, start);
        return start + std::max<uint64_t>(instr.latency, r.latency);
    }
    if (instr.isStore()) {
        mem_.store(instr.addr, instr.size, start);
        return start + instr.latency;
    }
    return start + instr.latency;
}

uint64_t
CoreModel::memCompleteMulti(const Instr &instr, uint64_t start)
{
    // SVE/RVV-style gather/scatter and arbitrary-stride accesses crack
    // into per-element cache accesses in the LSU, lsuCrackPerCycle at a
    // time. LdS/StS element addresses are exact (addr + i*elemStride);
    // gather/scatter addresses are data-dependent, so the elements are
    // spread evenly across the touched region [addr, addr2] recorded at
    // emit time — the right cache-line footprint for the uniform LUT
    // keys the Section 6.2 kernels generate.
    const uint64_t crack = uint64_t(std::max(cfg_.lsuCrackPerCycle, 1));
    const int elems = std::max<int>(instr.activeLanes, 1);
    const uint32_t elemBytes = std::max<uint32_t>(
        instr.size / uint32_t(elems), 1);
    const bool isLoad = instr.isLoad();
    int64_t stride = instr.elemStride;
    if (!stride) {
        stride = elems > 1
                     ? (int64_t(instr.addr2) - int64_t(instr.addr)) /
                           (elems - 1)
                     : 0;
    }
    uint64_t complete = start + instr.latency;
    for (int i = 0; i < elems; ++i) {
        const uint64_t a = uint64_t(int64_t(instr.addr) + i * stride);
        const uint64_t issue = start + uint64_t(i) / crack;
        if (isLoad) {
            auto r = mem_.load(a, elemBytes, issue);
            complete = std::max(complete,
                                issue + std::max<uint64_t>(instr.latency,
                                                           r.latency));
        } else {
            mem_.store(a, elemBytes, issue);
            complete = std::max(complete, issue + instr.latency);
        }
    }
    return complete;
}

void
CoreModel::retire(const Instr &instr, uint64_t complete)
{
    // In-order commit, commitWidth per cycle.
    uint64_t c = std::max(complete, commitCycle_);
    if (c > commitCycle_) {
        commitCycle_ = c;
        commitCount_ = 0;
    }
    ++commitCount_;
    if (commitCount_ > cfg_.commitWidth) {
        ++commitCycle_;
        commitCount_ = 1;
    }
    robRing_[n_ % robRing_.size()] = commitCycle_;
    readyRing_[n_ & (kWindow - 1)] = complete;

    ++byClass_[size_t(instr.cls)];
    vecBytes_ += instr.vecBytes;
}

void
CoreModel::stepOoO(const Instr &instr)
{
    ++n_;

    // Dispatch: bounded by decode width and a free ROB slot.
    uint64_t d = dispCycle_;
    if (n_ > robRing_.size())
        d = std::max(d, robRing_[n_ % robRing_.size()]);
    if (d > dispCycle_) {
        dispCycle_ = d;
        dispCount_ = 0;
    }
    ++dispCount_;
    if (dispCount_ > cfg_.decodeWidth) {
        ++dispCycle_;
        dispCount_ = 1;
    }
    d = dispCycle_;

    // Operand readiness (dataflow).
    uint64_t ready = d;
    ready = std::max(ready, readyOf(instr.dep0));
    ready = std::max(ready, readyOf(instr.dep1));
    ready = std::max(ready, readyOf(instr.dep2));

    // Functional unit (divides occupy the unit for their full latency).
    // Issue is out of order: younger ready instructions may take earlier
    // cycles than stalled older ones.
    int occ = instr.latency >= kUnpipelinedLat ? instr.latency : 1;
    if (instr.isMultiAddress()) {
        const int crack = std::max(cfg_.lsuCrackPerCycle, 1);
        occ = std::max(occ, (std::max<int>(instr.activeLanes, 1) +
                             crack - 1) / crack);
    }
    const uint64_t start = findIssueSlot(instr.fu, ready, occ);

    const uint64_t complete = memComplete(instr, start);

    // Branch handling: a fixed fraction mispredicts and redirects the
    // front-end after resolution (front-end stall attribution).
    if (instr.cls == InstrClass::Branch) {
        ++branches_;
        const uint64_t interval =
            uint64_t(1.0 / std::max(cfg_.branchMispredictRate, 1e-6));
        if (interval && branches_ % interval == 0) {
            const uint64_t redirect =
                complete + uint64_t(cfg_.branchPenalty);
            if (redirect > dispCycle_) {
                feStallCycles_ += redirect - dispCycle_;
                dispCycle_ = redirect;
                dispCount_ = 0;
            }
        }
    }

    retire(instr, complete);
}

void
CoreModel::stepInOrder(const Instr &instr)
{
    ++n_;

    // Dispatch bound by decode width (no rename; small in-flight window
    // enforced through robRing_ like a scoreboard).
    uint64_t d = dispCycle_;
    if (n_ > robRing_.size())
        d = std::max(d, robRing_[n_ % robRing_.size()]);
    if (d > dispCycle_) {
        dispCycle_ = d;
        dispCount_ = 0;
    }
    ++dispCount_;
    if (dispCount_ > cfg_.decodeWidth) {
        ++dispCycle_;
        dispCount_ = 1;
    }
    d = dispCycle_;

    uint64_t ready = std::max(d, lastIssue_);
    ready = std::max(ready, readyOf(instr.dep0));
    ready = std::max(ready, readyOf(instr.dep1));
    ready = std::max(ready, readyOf(instr.dep2));

    int occ = instr.latency >= kUnpipelinedLat ? instr.latency : 1;
    if (instr.isMultiAddress()) {
        const int crack = std::max(cfg_.lsuCrackPerCycle, 1);
        occ = std::max(occ, (std::max<int>(instr.activeLanes, 1) +
                             crack - 1) / crack);
    }
    uint64_t start = reserveFu(instr.fu, ready, occ);

    // Program-order issue, at most issueWidth per cycle.
    if (start > lastIssue_) {
        lastIssue_ = start;
        issueCount_ = 0;
    }
    ++issueCount_;
    if (issueCount_ > cfg_.issueWidth) {
        ++lastIssue_;
        issueCount_ = 1;
        start = lastIssue_;
    }

    const uint64_t complete = memComplete(instr, start);

    if (instr.cls == InstrClass::Branch) {
        ++branches_;
        const uint64_t interval =
            uint64_t(1.0 / std::max(cfg_.branchMispredictRate, 1e-6));
        if (interval && branches_ % interval == 0) {
            const uint64_t redirect =
                complete + uint64_t(cfg_.branchPenalty);
            if (redirect > dispCycle_) {
                feStallCycles_ += redirect - dispCycle_;
                dispCycle_ = redirect;
                dispCount_ = 0;
            }
        }
    }

    retire(instr, complete);
}

void
CoreModel::beginMeasurement()
{
    instr0_ = n_;
    cycle0_ = commitCycle_;
    feStall0_ = feStallCycles_;
    mem_.resetStats();
    byClass_.fill(0);
    vecBytes_ = 0;
}

SimResult
CoreModel::finish()
{
    SimResult r;
    r.config = cfg_.name;
    r.instrs = n_ - instr0_;
    r.cycles = commitCycle_ > cycle0_ ? commitCycle_ - cycle0_ : 1;
    r.ipc = double(r.instrs) / double(r.cycles);
    r.timeSec = double(r.cycles) / (cfg_.freqGHz * 1e9);

    const double kilo = double(r.instrs) / 1000.0;
    r.l1Accesses = mem_.l1().accesses();
    r.l2Accesses = mem_.l2().accesses();
    r.llcAccesses = mem_.llc().accesses();
    if (kilo > 0) {
        r.l1Mpki = double(mem_.l1().misses()) / kilo;
        r.l2Mpki = double(mem_.l2().misses()) / kilo;
        r.llcMpki = double(mem_.llc().misses()) / kilo;
    }
    r.l1HitRate = 1.0 - mem_.l1().missRate();

    const uint64_t fe = feStallCycles_ - feStall0_;
    r.feStallPct = 100.0 * double(fe) / double(r.cycles);
    const double slots = double(r.cycles) * double(cfg_.decodeWidth);
    const double lost =
        slots - double(r.instrs) - double(fe) * double(cfg_.decodeWidth);
    r.beStallPct = std::max(0.0, 100.0 * lost / slots);

    r.dramReads = mem_.dramReads();
    r.dramWrites = mem_.dramWrites();
    r.dramAccessPerKCycle =
        1000.0 * double(mem_.dramAccesses()) / double(r.cycles);

    r.byClass = byClass_;
    r.vecBytes = vecBytes_;
    return r;
}

namespace
{

/**
 * Shared warmup/measure/finish protocol of all the replay entry
 * points. @p feedPass delivers one full pass of the trace to a span of
 * models; it is called warmup_passes + 1 times.
 */
template <typename FeedPass>
std::vector<SimResult>
replayPasses(const std::vector<CoreConfig> &cfgs, int warmup_passes,
             FeedPass &&feedPass)
{
    std::vector<std::unique_ptr<CoreModel>> models;
    models.reserve(cfgs.size());
    for (const auto &cfg : cfgs)
        models.push_back(std::make_unique<CoreModel>(cfg));
    for (int p = 0; p < warmup_passes; ++p)
        feedPass(models);
    for (auto &m : models)
        m->beginMeasurement();
    feedPass(models);
    std::vector<SimResult> out;
    out.reserve(models.size());
    for (auto &m : models)
        out.push_back(m->finish());
    return out;
}

} // namespace

SimResult
simulateTrace(const std::vector<Instr> &instrs, const CoreConfig &cfg,
              int warmup_passes)
{
    CoreModel model(cfg);
    for (int p = 0; p < warmup_passes; ++p)
        model.onBlock(instrs.data(), instrs.size());
    model.beginMeasurement();
    model.onBlock(instrs.data(), instrs.size());
    return model.finish();
}

SimResult
simulateTrace(const trace::PackedTrace &trace, const CoreConfig &cfg,
              int warmup_passes)
{
    return simulateTraceMany(trace, {cfg}, warmup_passes).front();
}

std::vector<SimResult>
simulateTraceMany(const trace::PackedTrace &trace,
                  const std::vector<CoreConfig> &cfgs, int warmup_passes)
{
    return replayPasses(cfgs, warmup_passes, [&](auto &models) {
        // Decode once per pass; every model consumes the same
        // cache-resident block.
        Instr block[trace::PackedTrace::kBlockInstrs];
        trace::PackedTrace::Cursor cur(trace);
        size_t n;
        while ((n = cur.next(block, trace::PackedTrace::kBlockInstrs)))
            for (auto &m : models)
                m->onBlock(block, n);
    });
}

std::vector<SimResult>
simulateTraceMany(const std::vector<Instr> &instrs,
                  const std::vector<CoreConfig> &cfgs, int warmup_passes)
{
    constexpr size_t kBlock = trace::PackedTrace::kBlockInstrs;
    return replayPasses(cfgs, warmup_passes, [&](auto &models) {
        for (size_t at = 0; at < instrs.size(); at += kBlock) {
            const size_t n = std::min(kBlock, instrs.size() - at);
            for (auto &m : models)
                m->onBlock(instrs.data() + at, n);
        }
    });
}

} // namespace swan::sim
