#include "sim/faults.hh"

#include "obs/telemetry.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

namespace swan::sim
{

namespace
{

/** splitmix64 — the standard seeded mixer; drives window jitter. */
inline uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

struct ScenarioInfo
{
    FaultScenario scenario;
    const char *name;
    double defaultIntensity;
};

constexpr ScenarioInfo kScenarios[] = {
    {FaultScenario::None, "none", 0.0},
    {FaultScenario::DramSpike, "dram-spike", 8.0},
    {FaultScenario::CacheFlush, "cache-flush", 4.0},
    {FaultScenario::MispredictBurst, "mispredict-burst", 0.25},
    {FaultScenario::FirstFault, "firstfault", 1.0},
};

const ScenarioInfo &
infoFor(FaultScenario s)
{
    for (const auto &i : kScenarios)
        if (i.scenario == s)
            return i;
    return kScenarios[0];
}

} // namespace

double
FaultSpec::effectiveIntensity() const
{
    return intensity > 0.0 ? intensity : infoFor(scenario).defaultIntensity;
}

const char *
FaultSpec::name(FaultScenario s)
{
    return infoFor(s).name;
}

bool
FaultSpec::parse(const std::string &text, FaultSpec *out, std::string *err)
{
    const auto fail = [&](const std::string &what) {
        if (err)
            *err = "bad fault scenario \"" + text + "\": " + what + "\n\n" +
                   catalog();
        return false;
    };

    FaultSpec spec;
    // Colon-separated so a spec can sit inside a comma-separated axis
    // list: scenario[:key=value]...
    std::vector<std::string> parts;
    size_t from = 0;
    while (true) {
        const size_t colon = text.find(':', from);
        parts.push_back(text.substr(from, colon - from));
        if (colon == std::string::npos)
            break;
        from = colon + 1;
    }

    const std::string &sname = parts[0];
    bool known = false;
    for (const auto &i : kScenarios) {
        if (sname == i.name || (sname.empty() && i.scenario ==
                                                     FaultScenario::None)) {
            spec.scenario = i.scenario;
            known = true;
            break;
        }
    }
    if (!known)
        return fail("unknown scenario \"" + sname + "\"");

    for (size_t i = 1; i < parts.size(); ++i) {
        const std::string &kv = parts[i];
        const size_t eq = kv.find('=');
        if (eq == std::string::npos)
            return fail("expected key=value, got \"" + kv + "\"");
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        char *endp = nullptr;
        if (key == "seed" || key == "period" || key == "duration") {
            const unsigned long long v = std::strtoull(val.c_str(), &endp, 10);
            if (endp == val.c_str() || *endp != '\0')
                return fail("bad integer for " + key + ": \"" + val + "\"");
            if (key == "seed")
                spec.seed = v;
            else if (key == "period")
                spec.period = v;
            else
                spec.duration = v;
        } else if (key == "intensity") {
            const double v = std::strtod(val.c_str(), &endp);
            if (endp == val.c_str() || *endp != '\0' || v < 0.0)
                return fail("bad intensity: \"" + val + "\"");
            spec.intensity = v;
        } else {
            return fail("unknown parameter \"" + key + "\"");
        }
    }

    if (spec.enabled()) {
        if (spec.period == 0)
            return fail("period must be >= 1");
        if (spec.duration == 0)
            return fail("duration must be >= 1");
        // A window must fit its slot (windows never overlap).
        spec.duration = std::min(spec.duration, spec.period);
    }
    if (out)
        *out = spec;
    return true;
}

std::string
FaultSpec::describe() const
{
    if (!enabled())
        return "none";
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%s:seed=%llu:period=%llu:duration=%llu:intensity=%g",
                  name(scenario), (unsigned long long)seed,
                  (unsigned long long)period, (unsigned long long)duration,
                  effectiveIntensity());
    return buf;
}

uint64_t
FaultSpec::fingerprint() const
{
    if (!enabled())
        return 0;
    // FNV-1a over the normalized fields (effective intensity, so an
    // explicit default and an elided one share an identity).
    uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix(uint64_t(scenario));
    mix(seed);
    mix(period);
    mix(duration);
    const double ei = effectiveIntensity();
    uint64_t bits;
    std::memcpy(&bits, &ei, sizeof bits);
    mix(bits);
    return h ? h : 1;
}

std::string
FaultSpec::catalog()
{
    return "fault scenario catalog (values for the --faults axis, "
           "comma-separated):\n"
           "  none              clean run (an explicit clean point in a "
           "fault sweep)\n"
           "  dram-spike        DRAM idle latency x intensity while a "
           "window is open\n"
           "                    (default intensity 8)\n"
           "  cache-flush       flush L1/L2/LLC <intensity> times per "
           "window (default 4)\n"
           "  mispredict-burst  branch mispredict rate = intensity while "
           "open (default 0.25)\n"
           "  firstfault        gather/scatter/strided ops truncated to "
           "<intensity>\n"
           "                    element(s) while open (default 1)\n"
           "\n"
           "parameters, colon-separated after the scenario name:\n"
           "  seed=N       window jitter seed            (default 1)\n"
           "  period=N     instructions per window slot  (default 50000)\n"
           "  duration=N   window length in instructions (default 5000)\n"
           "  intensity=X  scenario strength, see above\n"
           "\n"
           "Window k opens at k*period + splitmix64(seed^k) % (period - "
           "duration + 1)\n"
           "instructions (counted across all replay passes) and closes "
           "duration later.\n"
           "Same spec => byte-identical results on every backend/jobs/"
           "shards combination.\n"
           "\n"
           "example: swan sweep --kernels saxpy --faults "
           "none,dram-spike:seed=7:intensity=16\n";
}

FaultObserver::FaultObserver(const FaultSpec &spec) : spec_(spec)
{
    flashes_ = std::max<uint32_t>(
        1, spec_.scenario == FaultScenario::CacheFlush
               ? uint32_t(spec_.effectiveIntensity())
               : 1);
}

uint64_t
FaultObserver::windowStart(uint64_t k) const
{
    const uint64_t range = spec_.period - spec_.duration + 1;
    return k * spec_.period + splitmix64(spec_.seed ^ k) % range;
}

uint64_t
FaultObserver::nextEventPos() const
{
    if (!spec_.enabled())
        return kNoBoundary;
    const uint64_t open = windowStart(window_);
    if (!open_)
        return open;
    if (spec_.scenario == FaultScenario::CacheFlush &&
        flashIdx_ < flashes_) {
        const uint64_t stride =
            std::max<uint64_t>(spec_.duration / flashes_, 1);
        return open + flashIdx_ * stride;
    }
    return open + spec_.duration;
}

void
FaultObserver::applyWindow(std::span<CoreModel *const> models)
{
    switch (spec_.scenario) {
    case FaultScenario::DramSpike:
        for (size_t i = 0; i < models.size(); ++i) {
            const uint64_t spiked = std::max<uint64_t>(
                1, uint64_t(double(baseDramLatency_[i]) *
                            spec_.effectiveIntensity()));
            setDramLatency(*models[i], spiked);
        }
        break;
    case FaultScenario::CacheFlush:
        for (CoreModel *m : models)
            flushCaches(*m);
        flashIdx_ = 1;
        break;
    case FaultScenario::MispredictBurst:
        for (CoreModel *m : models)
            setBranchMispredictRate(*m, spec_.effectiveIntensity());
        break;
    case FaultScenario::FirstFault:
        clamp_ = std::max<uint32_t>(1, uint32_t(spec_.effectiveIntensity()));
        break;
    case FaultScenario::None:
        break;
    }
}

void
FaultObserver::revertWindow(std::span<CoreModel *const> models)
{
    switch (spec_.scenario) {
    case FaultScenario::DramSpike:
        for (size_t i = 0; i < models.size(); ++i)
            setDramLatency(*models[i], baseDramLatency_[i]);
        break;
    case FaultScenario::MispredictBurst:
        for (size_t i = 0; i < models.size(); ++i)
            setBranchMispredictRate(*models[i], baseMispredictRate_[i]);
        break;
    case FaultScenario::FirstFault:
        clamp_ = 0;
        break;
    case FaultScenario::CacheFlush:
    case FaultScenario::None:
        break;
    }
}

void
FaultObserver::runEventsThrough(uint64_t g,
                                std::span<CoreModel *const> models)
{
    while (true) {
        const uint64_t p = nextEventPos();
        if (p == kNoBoundary || p > g)
            break;
        if (!open_) {
            open_ = true;
            flashIdx_ = 0;
            applyWindow(models);
        } else if (spec_.scenario == FaultScenario::CacheFlush &&
                   flashIdx_ < flashes_) {
            for (CoreModel *m : models)
                flushCaches(*m);
            ++flashIdx_;
        } else {
            revertWindow(models);
            open_ = false;
            ++window_;
        }
    }
}

void
FaultObserver::begin(std::span<CoreModel *const> models)
{
    if (!saved_) {
        saved_ = true;
        baseDramLatency_.reserve(models.size());
        baseMispredictRate_.reserve(models.size());
        for (const CoreModel *m : models) {
            baseDramLatency_.push_back(dramLatency(*m));
            baseMispredictRate_.push_back(branchMispredictRate(*m));
        }
    }
    // A window opening exactly at this pass's first instruction must
    // be applied before that instruction is stepped.
    runEventsThrough(base_, models);
}

uint64_t
FaultObserver::nextBoundary(uint64_t pos)
{
    const uint64_t p = nextEventPos();
    if (p == kNoBoundary)
        return kNoBoundary;
    const uint64_t g = base_ + pos;
    return p > g ? p - base_ : pos + 1;
}

void
FaultObserver::atBoundary(uint64_t pos, std::span<CoreModel *const> models)
{
    runEventsThrough(base_ + pos, models);
}

void
FaultObserver::end(uint64_t total, std::span<CoreModel *const>)
{
    base_ += total;
}

uint32_t
FaultObserver::elemClamp() const
{
    return clamp_;
}

void
FaultObserver::restore(std::span<CoreModel *const> models)
{
    if (open_) {
        revertWindow(models);
        open_ = false;
        ++window_;
    }
}

std::vector<SimResult>
simulateTraceMany(const trace::PackedTrace &trace,
                  const std::vector<CoreConfig> &cfgs,
                  const FaultSpec &fault, int warmup_passes)
{
    if (!fault.enabled())
        return simulateTraceMany(trace, cfgs, warmup_passes);

    obs::Span span(obs::Phase::Replay,
                   uint64_t(trace.size()) * cfgs.size() *
                       uint64_t(warmup_passes + 1));
    FaultObserver payload(fault);
    std::vector<std::unique_ptr<CoreModel>> models;
    models.reserve(cfgs.size());
    for (const auto &cfg : cfgs)
        models.push_back(std::make_unique<CoreModel>(cfg));

    CoreModel *ptrs[16];
    std::vector<CoreModel *> heapPtrs;
    CoreModel **base = ptrs;
    if (models.size() > 16) {
        heapPtrs.resize(models.size());
        base = heapPtrs.data();
    }
    for (size_t i = 0; i < models.size(); ++i)
        base[i] = models[i].get();
    const std::span<CoreModel *const> ms(base, models.size());

    for (int p = 0; p < warmup_passes; ++p)
        replay(trace, ms, payload);
    for (auto &m : models)
        m->beginMeasurement();
    replay(trace, ms, payload);
    // A window may still be open at stream end; finish() must see the
    // clean baseline configuration.
    payload.restore(ms);

    std::vector<SimResult> out;
    out.reserve(models.size());
    for (auto &m : models)
        out.push_back(m->finish());
    return out;
}

} // namespace swan::sim
