/**
 * @file
 * Trace-driven core timing models. CoreModel consumes the dynamic
 * instruction stream (as a trace::Sink, so it works buffered or streaming)
 * and models either an out-of-order core (Cortex-A76-like Prime/Gold: ROB,
 * W-wide dispatch/commit, functional-unit pools, MSHR-limited memory-level
 * parallelism) or an in-order core (Cortex-A55-like Silver). This is the
 * substitute for the paper's Ramulator-based trace-driven simulator plus
 * the Simpleperf PMU measurements.
 */

#ifndef SWAN_SIM_CORE_MODEL_HH
#define SWAN_SIM_CORE_MODEL_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/cache.hh"
#include "sim/configs.hh"
#include "trace/instr.hh"
#include "trace/packed.hh"
#include "trace/recorder.hh"

namespace swan::sim
{

/** Metrics of one simulated run (the measured pass). */
struct SimResult
{
    std::string config;
    uint64_t instrs = 0;
    uint64_t cycles = 0;
    double ipc = 0.0;
    double timeSec = 0.0;

    double l1Mpki = 0.0;
    double l2Mpki = 0.0;
    double llcMpki = 0.0;
    double l1HitRate = 0.0;
    double feStallPct = 0.0;    //!< % cycles lost to the front-end
    double beStallPct = 0.0;    //!< % issue slots lost to the back-end

    uint64_t dramReads = 0;
    uint64_t dramWrites = 0;
    /** Main-memory accesses per kilo-cycle (the Section 5.3 rate). */
    double dramAccessPerKCycle = 0.0;

    // Event counts for the power model.
    std::array<uint64_t, size_t(trace::InstrClass::NumClasses)> byClass{};
    uint64_t vecBytes = 0;      //!< sum of vector datapath bytes
    uint64_t l1Accesses = 0;
    uint64_t l2Accesses = 0;
    uint64_t llcAccesses = 0;

    double energyJ = 0.0;       //!< filled by PowerModel
    double powerW = 0.0;        //!< filled by PowerModel
};

/** Incremental trace-driven core model. */
class CoreModel : public trace::Sink
{
  public:
    explicit CoreModel(const CoreConfig &cfg);

    void onInstr(const trace::Instr &instr) override;

    /**
     * Hot path: consumes a block with the in-order/out-of-order branch
     * hoisted out of the loop and no per-instruction virtual dispatch.
     * onInstr delegates here, so both entry points stay equivalent.
     */
    void onBlock(const trace::Instr *instrs, size_t n) override;

    /**
     * Mark the start of the measured region: statistics reset, cache and
     * pipeline state carry over (this is the paper's cache warm-up).
     * Instruction ids restart at 1 on each replayed pass; the model
     * re-bases them automatically.
     */
    void beginMeasurement();

    /** Finalize and return the metrics of the measured region. */
    SimResult finish();

    const CoreConfig &config() const { return cfg_; }

  private:
    void stepOoO(const trace::Instr &instr);
    void stepInOrder(const trace::Instr &instr);

    /** Completion cycle of producer @p dep (0 = long retired). */
    uint64_t readyOf(uint64_t dep) const;

    /** Earliest cycle >= @p ready with a free unit; reserves it.
     *  In-order issue: program-order head-of-line reservation. */
    uint64_t reserveFu(trace::Fu fu, uint64_t ready, int occupancy);

    /**
     * Out-of-order issue: find the earliest cycle >= @p ready with a
     * free slot in the pool's per-cycle issue table (younger
     * instructions may claim earlier cycles than stalled older ones).
     */
    uint64_t findIssueSlot(trace::Fu fu, uint64_t ready, int occupancy);

    /** Execute the memory side; returns the completion cycle. */
    uint64_t memComplete(const trace::Instr &instr, uint64_t start);

    /**
     * Gather/scatter and arbitrary-stride accesses (StrideKind::Gather/
     * Scatter/LdS/StS) crack into per-element cache accesses, two
     * elements per cycle; the instruction completes with its slowest
     * element.
     */
    uint64_t memCompleteMulti(const trace::Instr &instr, uint64_t start);

    /** Common post-execute bookkeeping (commit, stats). */
    void retire(const trace::Instr &instr, uint64_t complete);

    static constexpr int kWindowBits = 17;
    static constexpr uint64_t kWindow = uint64_t(1) << kWindowBits;

    CoreConfig cfg_;
    MemHierarchy mem_;

    uint64_t n_ = 0;            //!< instructions consumed (all passes)
    uint64_t idOffset_ = 0;     //!< re-bases per-pass instruction ids
    uint64_t lastSeenId_ = 0;

    static constexpr int kSlotBits = 14;
    static constexpr uint64_t kSlots = uint64_t(1) << kSlotBits;

    std::vector<uint64_t> readyRing_;
    std::vector<uint64_t> robRing_;
    std::array<std::vector<uint64_t>, size_t(trace::Fu::NumFus)> fuFree_;
    /**
     * Per-pool, per-cycle issued-op counts (OoO issue model). Slots are
     * stamped with the cycle they describe, so a stale entry from a
     * previous trip around the ring reads as zero without any clearing
     * sweep — host cost stays O(1) per instruction even when stall-heavy
     * variants advance the cycle frontier by thousands per instruction.
     */
    struct IssueSlot
    {
        uint64_t cycle = ~uint64_t(0);
        uint8_t used = 0;
    };
    std::array<std::vector<IssueSlot>, size_t(trace::Fu::NumFus)> fuSlots_;

    uint64_t dispCycle_ = 0;
    int dispCount_ = 0;
    uint64_t commitCycle_ = 0;
    int commitCount_ = 0;
    uint64_t lastIssue_ = 0;    //!< in-order program-order issue point
    int issueCount_ = 0;
    uint64_t branches_ = 0;
    uint64_t feStallCycles_ = 0;

    // Measurement snapshot.
    uint64_t instr0_ = 0;
    uint64_t cycle0_ = 0;
    uint64_t feStall0_ = 0;
    std::array<uint64_t, size_t(trace::InstrClass::NumClasses)> byClass_{};
    uint64_t vecBytes_ = 0;
};

/**
 * Simulate a buffered trace on @p cfg with @p warmup_passes cache-warming
 * replays before the measured pass (the paper warms caches before each
 * measured iteration).
 */
SimResult simulateTrace(const std::vector<trace::Instr> &instrs,
                        const CoreConfig &cfg, int warmup_passes = 1);

/** Same, replaying a packed trace (block-decoded, bit-identical). */
SimResult simulateTrace(const trace::PackedTrace &trace,
                        const CoreConfig &cfg, int warmup_passes = 1);

/**
 * Single-pass multi-config replay: stream the trace once per pass and
 * feed every configuration's CoreModel block by block, so an N-config
 * sweep point costs one trace traversal (and one decode) instead of N.
 * Each model's state evolution only depends on the instruction stream
 * it sees, so result i is bit-identical to simulateTrace(trace,
 * cfgs[i], warmup_passes).
 */
std::vector<SimResult>
simulateTraceMany(const trace::PackedTrace &trace,
                  const std::vector<CoreConfig> &cfgs,
                  int warmup_passes = 1);

/** AoS-buffer overload of the single-pass multi-config replay. */
std::vector<SimResult>
simulateTraceMany(const std::vector<trace::Instr> &instrs,
                  const std::vector<CoreConfig> &cfgs,
                  int warmup_passes = 1);

} // namespace swan::sim

#endif // SWAN_SIM_CORE_MODEL_HH
