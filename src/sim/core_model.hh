/**
 * @file
 * Trace-driven core timing models. CoreModel consumes the dynamic
 * instruction stream (as a trace::Sink, so it works buffered or streaming)
 * and models either an out-of-order core (Cortex-A76-like Prime/Gold: ROB,
 * W-wide dispatch/commit, functional-unit pools, MSHR-limited memory-level
 * parallelism) or an in-order core (Cortex-A55-like Silver). This is the
 * substitute for the paper's Ramulator-based trace-driven simulator plus
 * the Simpleperf PMU measurements.
 */

#ifndef SWAN_SIM_CORE_MODEL_HH
#define SWAN_SIM_CORE_MODEL_HH

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/cache.hh"
#include "sim/configs.hh"
#include "swan/internal/contracts.hh"
#include "trace/instr.hh"
#include "trace/packed.hh"
#include "trace/recorder.hh"

namespace swan::sim
{

/** Metrics of one simulated run (the measured pass). */
struct SimResult
{
    std::string config;
    uint64_t instrs = 0;
    uint64_t cycles = 0;
    double ipc = 0.0;
    double timeSec = 0.0;

    double l1Mpki = 0.0;
    double l2Mpki = 0.0;
    double llcMpki = 0.0;
    double l1HitRate = 0.0;
    double feStallPct = 0.0;    //!< % cycles lost to the front-end
    double beStallPct = 0.0;    //!< % issue slots lost to the back-end

    uint64_t dramReads = 0;
    uint64_t dramWrites = 0;
    /** Main-memory accesses per kilo-cycle (the Section 5.3 rate). */
    double dramAccessPerKCycle = 0.0;

    // Event counts for the power model.
    std::array<uint64_t, size_t(trace::InstrClass::NumClasses)> byClass{};
    uint64_t vecBytes = 0;      //!< sum of vector datapath bytes
    uint64_t l1Accesses = 0;
    uint64_t l2Accesses = 0;
    uint64_t llcAccesses = 0;

    double energyJ = 0.0;       //!< filled by PowerModel
    double powerW = 0.0;        //!< filled by PowerModel
};

class CoreModel;

/**
 * Fused replay: decode each packed instruction once — into registers,
 * with no Instr staging buffer and no Sink virtual hop — and
 * immediately step every model in @p models from the same decoded
 * fields. Per-descriptor shape lookups (class, FU, latency, occupancy)
 * are hoisted out of the loop into a prototype table built once per
 * call. Bit-identical to delivering the trace through onBlock/onInstr
 * to each model in turn. @throws std::runtime_error when the encoded
 * stream is malformed (Cursor checked decode).
 */
void replay(const trace::PackedTrace &trace,
            std::span<CoreModel *const> models);

/**
 * Payload seam on the fused replay engine: a ReplayObserver rides the
 * single decode pass and is called back at *instruction boundaries* it
 * chooses, without the engine paying anything when no observer is
 * attached — the observer-free replay() above compiles to the exact
 * loop it always was (the driver is a template on the presence of the
 * payload, and the empty instantiation is bit-identical; the
 * BENCH_sim_replay.json fused-over-block gates enforce it).
 *
 * Protocol, per traversal of replay(trace, models, payload):
 *  - begin(models) once, before any instruction is decoded;
 *  - nextBoundary(pos) returns the next instruction index (relative to
 *    this traversal; the first instruction is index 0, so "boundary b"
 *    fires after b instructions have been stepped) at which the
 *    observer wants control, or kNoBoundary for "never". The engine
 *    caps its decode batches so it never steps across a boundary;
 *    boundaries at or before pos are treated as pos + 1.
 *  - atBoundary(pos, models) runs with every model's architectural
 *    state synced (the engine writes its register-resident per-lane
 *    state back to the models first, and reloads it after), so the
 *    observer may freely inspect or perturb the models;
 *  - end(total, models) once, after the last instruction, state synced.
 *
 * Observers derive from this class; the protected statics below are
 * the *actuators* — the only sanctioned channel for perturbing a model
 * mid-replay (ReplayObserver is a friend of CoreModel so payloads
 * never grow ad-hoc friendships). sim/faults.hh builds the
 * fault-injection scenario family on exactly this surface.
 */
class ReplayObserver
{
  public:
    /** Sentinel for nextBoundary(): no further callbacks wanted. */
    static constexpr uint64_t kNoBoundary = ~uint64_t(0);

    virtual ~ReplayObserver();

    /** Traversal start; default does nothing. */
    virtual void begin(std::span<CoreModel *const> models);

    /** Next instruction boundary wanted; default kNoBoundary. */
    virtual uint64_t nextBoundary(uint64_t pos);

    /** Control at a requested boundary; default does nothing. */
    virtual void atBoundary(uint64_t pos, std::span<CoreModel *const> models);

    /** Traversal end after @p total instructions; default nothing. */
    virtual void end(uint64_t total, std::span<CoreModel *const> models);

    /**
     * Partial-progress regime: when nonzero, multi-element memory ops
     * (gather/scatter/strided) are truncated to at most this many
     * elements while decoding — a firstfault-style fault where a
     * vector op makes progress on a prefix of its lanes only. Sampled
     * once per decode batch (batches never cross a boundary, so a
     * boundary is where the clamp may change). Default 0 = off.
     */
    virtual uint32_t elemClamp() const;

  protected:
    //! @name Actuators (privileged CoreModel access for payloads)
    //!@{
    static uint64_t dramLatency(const CoreModel &m);
    static void setDramLatency(CoreModel &m, uint64_t latency_cycles);
    static void flushCaches(CoreModel &m);
    static double branchMispredictRate(const CoreModel &m);
    /** Set the modeled mispredict rate and restart the branch
     *  countdown so the new rate takes effect immediately. */
    static void setBranchMispredictRate(CoreModel &m, double rate);
    //!@}
};

/**
 * Fused replay with an attached payload. Decode order, step order and
 * model evolution are identical to the observer-free replay() as long
 * as the payload does not perturb the models; a perturbing payload
 * changes *model state only*, never the decoded stream.
 */
void replay(const trace::PackedTrace &trace,
            std::span<CoreModel *const> models, ReplayObserver &payload);

namespace detail
{
/** Shared driver behind both replay() overloads (defined in
 *  core_model.cc): HasObserver = false must compile to the historic
 *  observer-free loop, bit for bit. */
template <bool HasObserver>
void replayWith(const trace::PackedTrace &trace,
                std::span<CoreModel *const> models,
                ReplayObserver *payload);
} // namespace detail

/** Incremental trace-driven core model. Capture-phase type: replay
 *  drivers allocate it while benches interleave capture and
 *  simulation — its malloc size class is pinned in
 *  include/swan/internal/layout.hh. */
class SWAN_CAPTURE_TYPE CoreModel : public trace::Sink
{
  public:
    explicit CoreModel(const CoreConfig &cfg);

    CoreModel(const CoreModel &) = delete;
    CoreModel &operator=(const CoreModel &) = delete;

    /** Compatibility wrapper: one instruction through the step core. */
    void onInstr(const trace::Instr &instr) override;

    /**
     * Compatibility wrapper: feeds a block through the same step core
     * the fused replay engine drives (per-model step function resolved
     * once at construction, no per-instruction virtual dispatch), so
     * Sink delivery and fused replay are bit-identical by construction.
     */
    void onBlock(const trace::Instr *instrs, size_t n) override;

    /**
     * Mark the start of the measured region: statistics reset, cache and
     * pipeline state carry over (this is the paper's cache warm-up).
     * Instruction ids restart at 1 on each replayed pass; the model
     * re-bases them automatically.
     */
    void beginMeasurement();

    /** Finalize and return the metrics of the measured region. The
     *  power model is fused into this finish path: energyJ/powerW are
     *  computed from the final counters in the same pass
     *  (PowerParams::forConfig presets; see sim/power.hh), so every
     *  replay entry point returns power-complete results. */
    SimResult finish();

    const CoreConfig &config() const { return cfg_; }

  private:
    friend void replay(const trace::PackedTrace &trace,
                       std::span<CoreModel *const> models);
    template <bool HasObserver>
    friend void detail::replayWith(const trace::PackedTrace &trace,
                                   std::span<CoreModel *const> models,
                                   ReplayObserver *payload);
    friend class ReplayObserver;

    static constexpr uint8_t kFlagLoad = 1;
    static constexpr uint8_t kFlagStore = 2;
    static constexpr uint8_t kFlagMulti = 4;
    static constexpr uint8_t kFlagBranch = 8;

    /**
     * One instruction as the step core consumes it: identity fields
     * straight from the decoder, shape fields predigested (class/FU
     * predicates as flags, the unpipelined-occupancy rule applied).
     * Model-independent, so the fused loop builds one StepIn per
     * decoded instruction and feeds every configuration's model from
     * it; the onBlock/onInstr wrappers build it from a trace::Instr.
     */
    struct StepIn
    {
        uint64_t id;
        uint64_t dep0, dep1, dep2;
        uint64_t addr;
        uint64_t addr2;
        uint32_t size;
        int32_t elemStride;
        uint8_t occBase;    //!< FU occupancy before LSU cracking
        uint8_t latency;
        uint8_t fu;         //!< trace::Fu
        uint8_t cls;        //!< trace::InstrClass
        uint8_t vecBytes;
        uint8_t elems;      //!< max(activeLanes, 1)
        uint8_t flags;      //!< kFlag* predicates
    };

    /** Predigest @p instr for the step core. */
    static StepIn stepInFor(const trace::Instr &instr);

    struct StepState;

    /**
     * The step core: consume @p n predigested instructions. The
     * in-order/out-of-order split is a template parameter, resolved
     * per model into a step-function table entry (the fused loop
     * tables one per model at replay start; the wrappers pick once
     * per block). The core operates on a caller-owned StepState plus
     * a caller-owned per-FU issue frontier (see findIssueSlot) so the
     * fused loop can keep both hot — and persistent — across a whole
     * traversal; internally it runs the batch on a local StepState
     * copy, keeping the per-instruction recurrence (dispatch/commit
     * cycles, counters) in registers instead of memory.
     */
    /** CheckRestart: whether to test every instruction for a
     *  replayed-pass id restart. The Sink wrappers must (their stream
     *  is arbitrary); the fused driver proves batch monotonicity
     *  while decoding and picks the check-free instantiation. */
    template <bool OutOfOrder, bool CheckRestart>
    static void stepBlock(CoreModel &m, StepState &st,
                          uint64_t *fu_frontier, const StepIn *ins,
                          size_t n);
    using StepBlockFn = void (*)(CoreModel &m, StepState &st,
                                 uint64_t *fu_frontier,
                                 const StepIn *ins, size_t n);

    /** Completion cycle of producer @p dep (0 = long retired). */
    uint64_t readyOf(const StepState &st, uint64_t dep) const;

    /** Earliest cycle >= @p ready with a free unit; reserves it.
     *  In-order issue: program-order head-of-line reservation. */
    uint64_t reserveFu(uint8_t fu, uint64_t ready, int occupancy);

    /**
     * Out-of-order issue: find the earliest cycle >= @p ready with a
     * free slot in the pool's per-cycle issue table (younger
     * instructions may claim earlier cycles than stalled older ones).
     *
     * @p fu_frontier[fu] is a caller-owned monotone hint: every cycle
     * below it is known to be fully issued, so the search may start
     * there instead of at @p ready. A cycle's issue count never
     * decreases, so skipping provably-full cycles cannot change which
     * slot is found — results are bit-identical for any hint history,
     * the hint only bounds the scan (saturated FU pools otherwise cost
     * a ROB's worth of re-scanning per instruction). Single-cycle
     * scans advance the frontier; a zeroed array is always valid.
     */
    uint64_t findIssueSlot(uint8_t fu, uint64_t ready, int occupancy,
                           uint64_t *fu_frontier);

    /** Execute the memory side; returns the completion cycle. */
    uint64_t memComplete(const StepIn &in, uint64_t start);

    /**
     * Gather/scatter and arbitrary-stride accesses (StrideKind::Gather/
     * Scatter/LdS/StS) crack into per-element cache accesses, two
     * elements per cycle; the instruction completes with its slowest
     * element.
     */
    uint64_t memCompleteMulti(const StepIn &in, uint64_t start);

    static constexpr int kWindowBits = 17;
    static constexpr uint64_t kWindow = uint64_t(1) << kWindowBits;

    static constexpr int kSlotBits = 14;
    static constexpr uint64_t kSlots = uint64_t(1) << kSlotBits;

    /**
     * Per-pool, per-cycle issued-op counts (OoO issue model). Slots are
     * stamped with the cycle they describe, so a stale entry from a
     * previous trip around the ring reads as zero without any clearing
     * sweep — host cost stays O(1) per instruction even when stall-heavy
     * variants advance the cycle frontier by thousands per instruction.
     */
    struct IssueSlot
    {
        uint64_t cycle = ~uint64_t(0);
        uint8_t used = 0;
    };

    /**
     * The step core's per-instruction mutable scalars, one compact
     * 80-byte SoA block. Between calls it rests here in the model;
     * during a fused traversal the replay loop owns a dense array of
     * these (one per configuration, copied in at pass start and back
     * out at pass end), so stepping N models per decoded instruction
     * touches N adjacent lanes instead of N scattered member sets.
     * Two per-instruction recurrences are folded in so the loop never
     * divides: robIdx tracks n % robSize incrementally, and
     * branchCountdown counts branches down to the next modeled
     * mispredict (the 1/rate floating divide now runs once per
     * mispredict, not once per branch).
     *
     * Layout note: this struct replaces the old scattered scalars
     * byte-for-byte, keeping sizeof(CoreModel) — and with it the
     * replay drivers' transient heap-request sizes — in the same
     * allocator size class. Benches that interleave capture and
     * simulation on one thread depend on the simulator's heap traffic
     * staying stable, because captured traces carry real buffer
     * addresses and the cache models are address-sensitive (see
     * sweep/scheduler.cc).
     */
    struct SWAN_CAPTURE_TYPE StepState
    {
        uint64_t n = 0;           //!< instructions consumed (all passes)
        uint64_t idOffset = 0;    //!< re-bases per-pass instruction ids
        uint64_t lastSeenId = 0;
        uint64_t dispCycle = 0;
        uint64_t commitCycle = 0;
        uint64_t lastIssue = 0;   //!< in-order program-order issue point
        uint64_t feStallCycles = 0;
        uint64_t branchCountdown = 0; //!< branches to the next mispredict
        int dispCount = 0;
        int commitCount = 0;
        int issueCount = 0;
        uint32_t robIdx = 0;      //!< n % robSize, maintained incrementally
    };

    /**
     * One vector of configuration lanes in the fused replay engine:
     * the per-lane step state, issue frontiers, models and step
     * functions of up to kLanes configurations, field-major. The
     * engine advances every lane of a block over the same decoded
     * batch, so the hot per-lane recurrences (640 bytes of StepState,
     * 448 bytes of frontier hints) are one contiguous span instead of
     * N scattered 160-byte records — the lane loop walks adjacent
     * cache lines regardless of where the models themselves live.
     * Capture-phase type: replays > kLanes configurations heap a
     * dense block array while benches interleave capture and
     * simulation, so its size is pinned
     * (include/swan/internal/layout.hh).
     */
    struct SWAN_CAPTURE_TYPE LaneBlock
    {
        /** Lanes per block; replay() spans this wide on the stack. */
        static constexpr size_t kLanes = 8;

        StepState st[kLanes];
        uint64_t frontier[kLanes][size_t(trace::Fu::NumFus)];
        CoreModel *model[kLanes];
        StepBlockFn fnChecked[kLanes]; //!< restart check per instr
        StepBlockFn fnMono[kLanes];    //!< batch proven monotone
    };

  public:
    /** sizeof(StepState), exported so the centralized layout pin
     *  (include/swan/internal/layout.hh) can assert on a private
     *  nested type. The SoA lane arrays the fused loop copies per
     *  configuration are sized by this. */
    static constexpr size_t kStepStateBytes = sizeof(StepState);

    /** sizeof(LaneBlock), exported for the same layout pin. */
    static constexpr size_t kLaneBlockBytes = sizeof(LaneBlock);

  private:
    CoreConfig cfg_;
    MemHierarchy mem_;
    StepState st_;

    // Ring/pool storage. The per-pool vector layout (and construction
    // order) is part of the same capture-determinism contract as the
    // StepState layout note above.
    std::vector<uint64_t> readyRing_;
    std::vector<uint64_t> robRing_;
    std::array<std::vector<uint64_t>, size_t(trace::Fu::NumFus)> fuFree_;
    std::array<std::vector<IssueSlot>, size_t(trace::Fu::NumFus)> fuSlots_;

    // Measurement snapshot.
    uint64_t instr0_ = 0;
    uint64_t cycle0_ = 0;
    uint64_t feStall0_ = 0;
    std::array<uint64_t, size_t(trace::InstrClass::NumClasses)> byClass_{};
    uint64_t vecBytes_ = 0;
};

/**
 * Simulate a buffered trace on @p cfg with @p warmup_passes cache-warming
 * replays before the measured pass (the paper warms caches before each
 * measured iteration).
 */
SimResult simulateTrace(const std::vector<trace::Instr> &instrs,
                        const CoreConfig &cfg, int warmup_passes = 1);

/** Same, replaying a packed trace (block-decoded, bit-identical). */
SimResult simulateTrace(const trace::PackedTrace &trace,
                        const CoreConfig &cfg, int warmup_passes = 1);

/**
 * Single-pass multi-config replay on the fused engine (replay()): each
 * instruction is decoded once per pass, straight into registers, and
 * every configuration's model steps from the same decoded fields — an
 * N-config sweep point costs one trace traversal, one decode, and zero
 * staging-buffer round-trips. Each model's state evolution only
 * depends on the instruction stream it sees, so result i is
 * bit-identical to simulateTrace(trace, cfgs[i], warmup_passes).
 */
std::vector<SimResult>
simulateTraceMany(const trace::PackedTrace &trace,
                  const std::vector<CoreConfig> &cfgs,
                  int warmup_passes = 1);

/** AoS-buffer overload of the single-pass multi-config replay. */
std::vector<SimResult>
simulateTraceMany(const std::vector<trace::Instr> &instrs,
                  const std::vector<CoreConfig> &cfgs,
                  int warmup_passes = 1);

} // namespace swan::sim

#endif // SWAN_SIM_CORE_MODEL_HH
