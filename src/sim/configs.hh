/**
 * @file
 * Simulated machine configurations. The baseline mirrors Table 3 of the
 * paper (Snapdragon 855 Cortex-A76 Prime core); Gold and Silver mirror the
 * other two big.LITTLE core types used in Section 5.5, and the
 * scalability() factory produces the xW-yV configurations of Figure 5(b).
 */

#ifndef SWAN_SIM_CONFIGS_HH
#define SWAN_SIM_CONFIGS_HH

#include <array>
#include <cstdint>
#include <string>

#include "trace/instr.hh"

namespace swan::sim
{

/** One cache level. */
struct CacheConfig
{
    int sizeBytes = 64 * 1024;
    int ways = 4;
    int lineBytes = 64;
    int latency = 4;            //!< load-to-use latency on hit (cycles)
    bool nextLinePrefetch = false;
};

/** Core + memory-system configuration. */
struct CoreConfig
{
    std::string name = "prime";
    double freqGHz = 2.8;
    bool outOfOrder = true;
    int robSize = 128;
    int decodeWidth = 4;        //!< dispatch (decode/rename) width, "W"
    int issueWidth = 8;         //!< max instructions issued per cycle
    int commitWidth = 4;
    int vecBits = 128;          //!< ASIMD datapath/register width

    /** Functional-unit pool sizes, indexed by trace::Fu. */
    std::array<int, size_t(trace::Fu::NumFus)> fuCount{};

    int mshrs = 20;             //!< outstanding L1 misses
    CacheConfig l1d;
    CacheConfig l2;
    CacheConfig llc;
    double dramLatencyNs = 100.0;
    double dramGBs = 14.0;      //!< sustained DRAM bandwidth
    // Fill-bandwidth occupancies (~16 B/cycle L2, ~8 B/cycle LLC).
    double l2ServiceCycles = 4.0;   //!< L1-miss service occupancy at L2
    double llcServiceCycles = 8.0;  //!< L2-miss service occupancy at LLC
    double branchMispredictRate = 0.01;
    int branchPenalty = 12;
    /**
     * Elements per cycle a gather/scatter/strided access cracks into at
     * the LSU (extension ISA ops; SVE implementations ship 1-4).
     */
    int lsuCrackPerCycle = 2;

    int vunits() const { return fuCount[size_t(trace::Fu::VUnit)]; }
    uint64_t dramLatencyCycles() const
    {
        return uint64_t(dramLatencyNs * freqGHz);
    }
    /** Cycles of DRAM channel occupancy per 64-byte line. */
    double
    dramServiceCycles() const
    {
        return 64.0 / dramGBs * freqGHz;
    }
};

/** Table 3 baseline: Cortex-A76 Prime core at 2.8 GHz, 4W-2V. */
CoreConfig primeConfig();

/** Cortex-A76 Gold core at 2.4 GHz. */
CoreConfig goldConfig();

/** Cortex-A55 Silver core: 2-wide in-order, one ASIMD unit, 1.8 GHz. */
CoreConfig silverConfig();

/**
 * Figure 5(b) configurations: @p ways decode/commit ways and @p vunits
 * 128-bit ASIMD units on the Prime baseline (e.g. 4,2 = the baseline).
 */
CoreConfig scalabilityConfig(int ways, int vunits);

/** Figure 5(a): Prime baseline with @p vecBits -wide vector datapath. */
CoreConfig widerVectorConfig(int vecBits);

} // namespace swan::sim

#endif // SWAN_SIM_CONFIGS_HH
