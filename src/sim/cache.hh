/**
 * @file
 * Set-associative cache model with LRU replacement and write-back
 * write-allocate policy, plus the three-level hierarchy + MSHR + DRAM
 * timing used by the trace-driven core models (the cache parameters of
 * Table 3).
 */

#ifndef SWAN_SIM_CACHE_HH
#define SWAN_SIM_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/configs.hh"
#include "sim/dram.hh"

namespace swan::sim
{

/** One set-associative cache level. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    struct Result
    {
        bool hit = false;
        bool writeback = false;     //!< a dirty line was evicted
        uint64_t wbLineAddr = 0;
    };

    /** Look up (and on miss, fill) the line containing @p addr. */
    Result access(uint64_t addr, bool is_write);

    /**
     * Hit-only fast path: when the line is resident, perform exactly
     * the bookkeeping access() would (access/tick counters, LRU
     * stamp, dirty bit) and return true; on a miss, touch nothing and
     * return false so the caller can run the full access(). Inline so
     * the replay loop's dominant case never leaves the step code.
     */
    bool
    accessHit(uint64_t addr, bool is_write)
    {
        const uint64_t line = lineAddr(addr);
        const uint64_t set = line & uint64_t(numSets_ - 1);
        const uint64_t tag = tagOf(line);
        Line *base = &lines_[size_t(set) * size_t(cfg_.ways)];
        for (int w = 0; w < cfg_.ways; ++w) {
            Line &l = base[w];
            if (l.valid && l.tag == tag) {
                ++accesses_;
                ++tick_;
                l.lru = tick_;
                l.dirty = l.dirty || is_write;
                return true;
            }
        }
        return false;
    }

    /** Look up without filling or updating stats (used by prefetch). */
    bool probe(uint64_t addr) const;

    void reset();
    void resetStats();

    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }
    double
    missRate() const
    {
        return accesses_ ? double(misses_) / double(accesses_) : 0.0;
    }

    int lineBytes() const { return cfg_.lineBytes; }
    int latency() const { return cfg_.latency; }

    /**
     * Invalidate every line without touching the access/miss counters
     * or the LRU clock. Fault-injection actuator: a cache-flush storm
     * (sim::ReplayObserver payload) models an adversarial context
     * switch / cache-maintenance burst, so subsequent accesses re-miss
     * and the re-fill traffic shows up in the normal statistics.
     */
    void
    flushAll()
    {
        for (Line &l : lines_) {
            l.valid = false;
            l.dirty = false;
        }
    }

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lru = 0;
        bool valid = false;
        bool dirty = false;
    };

    // lineBytes and numSets are asserted powers of two at
    // construction, so the per-access address splits are shifts and
    // masks — a runtime-divisor integer division here costs more than
    // the rest of a hit lookup combined.
    uint64_t lineAddr(uint64_t addr) const
    {
        return addr >> unsigned(__builtin_ctz(uint32_t(cfg_.lineBytes)));
    }
    uint64_t tagOf(uint64_t line) const
    {
        return line >> unsigned(__builtin_ctz(uint32_t(numSets_)));
    }

    CacheConfig cfg_;
    int numSets_;
    std::vector<Line> lines_;   // numSets_ * ways, row-major by set
    uint64_t tick_ = 0;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
};

/**
 * Three-level hierarchy with MSHR-limited misses and a bandwidth-limited
 * DRAM behind the LLC. Returns load-to-use latencies; keeps the per-level
 * access/miss statistics the paper reports as MPKI (Table 5).
 */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const CoreConfig &cfg);

    /** Which level serviced an access. */
    enum class Level { L1, L2, Llc, Dram };

    struct Result
    {
        uint64_t latency = 0;   //!< load-to-use latency in cycles
        Level level = Level::L1;
    };

    /**
     * Timed load at @p cycle. Accesses spanning multiple lines pay the
     * slowest line. MSHRs bound the number of overlapping misses.
     */
    Result load(uint64_t addr, uint32_t size, uint64_t cycle);

    /**
     * Store: updates cache state and traffic counters. Store latency is
     * hidden by the store buffer; the returned latency is the commit-side
     * latency (1 cycle).
     */
    Result store(uint64_t addr, uint32_t size, uint64_t cycle);

    /**
     * Single-line L1-hit fast paths: bit-identical bookkeeping to
     * load()/store() for their dominant case, inline in the caller;
     * return false — touching nothing — when the access spans lines
     * or misses L1, so the full path can run instead.
     */
    bool
    loadHit(uint64_t addr, uint32_t size, uint64_t *latency)
    {
        const unsigned ls =
            unsigned(__builtin_ctz(uint32_t(l1_.lineBytes())));
        if ((addr >> ls) != ((addr + (size ? size - 1 : 0)) >> ls))
            return false;
        if (!l1_.accessHit(addr, false))
            return false;
        *latency = uint64_t(l1_.latency());
        return true;
    }
    bool
    storeHit(uint64_t addr, uint32_t size)
    {
        const unsigned ls =
            unsigned(__builtin_ctz(uint32_t(l1_.lineBytes())));
        if ((addr >> ls) != ((addr + (size ? size - 1 : 0)) >> ls))
            return false;
        return l1_.accessHit(addr, true);
    }

    void reset();
    void resetStats();

    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }
    const Cache &llc() const { return llc_; }

    /**
     * Fault-injection actuators (see sim/faults.hh). dram() exposes
     * the mutable DRAM model so payloads can retime it mid-replay;
     * flushCaches() invalidates all three levels at once. Statistics
     * are deliberately untouched — a fault perturbs *state*, and its
     * cost surfaces through the ordinary miss/traffic counters.
     */
    Dram &dram() { return dram_; }
    const Dram &dram() const { return dram_; }
    void
    flushCaches()
    {
        l1_.flushAll();
        l2_.flushAll();
        llc_.flushAll();
    }

    uint64_t dramReads() const { return dramReads_; }
    uint64_t dramWrites() const { return dramWrites_; }
    uint64_t dramAccesses() const { return dramReads_ + dramWrites_; }

  private:
    struct FillResult
    {
        Level level = Level::L2;
        uint64_t extra = 0; //!< bandwidth queueing beyond the hit latency
    };

    /** Fill below L1 at @p cycle; models L2/LLC/DRAM bandwidth queues. */
    FillResult fillFrom(uint64_t addr, uint64_t cycle);

    CoreConfig cfg_;
    Cache l1_, l2_, llc_;
    Dram dram_;
    std::vector<uint64_t> mshrFree_;
    double l2Free_ = 0.0;
    double llcFree_ = 0.0;
    uint64_t dramReads_ = 0;
    uint64_t dramWrites_ = 0;
};

} // namespace swan::sim

#endif // SWAN_SIM_CACHE_HH
