#include "tools/cli.hh"

#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>

// The CLI is a consumer of the public API, not of src/ internals: every
// command goes through the same include/swan/ surface an out-of-tree
// embedding would use (the sweep forms through Session/Experiment).
#include "swan/faults.hh"
#include "swan/internal/simd_dispatch.hh"
#include "swan/swan.hh"

namespace swan::tools
{

namespace
{

constexpr const char *kUsage = R"(usage: swan <command> [options]

commands:
  list [--library SYM]         list registered kernels (optionally one
                               library symbol, e.g. ZL)
  info <kernel>                metadata of one kernel ("ZL/adler32")
  run <kernel> [options]       trace + simulate one implementation
  compare <kernel> [options]   Scalar vs Auto vs Neon on one core
  simulate <trace.swt> [opts]  replay a stored trace on a core model
  sweep <kernel> --what X      sweep widths (Fig. 5a) or cores (Fig. 4)
  sweep [grid flags]           run a declarative experiment grid on the
                               parallel sweep engine (docs/sweep.md)
  version                      print the swan version (also --version, -V)
  help                         this text

options:
  --impl scalar|auto|neon      implementation for 'run' (default neon)
  --core prime|gold|silver     core model (default prime)
  --bits 128|256|512|1024      vector width for wider-register kernels
  --full                       paper-scale input sizes (Section 4.1)
  --dump-trace FILE            with 'run': also write the captured
                               dynamic instruction trace to FILE
  --what widths|cores          sweep axis for 'sweep <kernel>'

sweep grid flags (cartesian product of the axes):
  --kernels A,B                explicit kernels (default: all headline)
  --library SYM                restrict to one library symbol, e.g. ZL
  --wider                      only the eight Figure-5 kernels
  --impls scalar,auto,neon     implementation axis (default neon)
  --bits 128,256,...           vector-width axis (default 128)
  --cores prime,gold,4W-2V,..  core presets; also "wider" and "NW-MV"
  --ws default|full|tiny|scalability[,..]  working-set presets
  --faults LIST                fault-injection axis: comma-separated
                               scenario[:key=value]... specs, e.g.
                               "none,dram-spike:seed=7:intensity=16";
                               identical seeds give byte-identical
                               results on every backend, and faulted
                               points never share cache entries with
                               clean ones. --faults=help prints the
                               scenario catalog (docs/faults.md)
  --jobs N                     worker threads (default 1; same output
                               for any N)
  --shards N                   worker processes (default 1): fork N
                               shards that claim work units in the
                               on-disk cache tier and merge results
                               deterministically — byte-identical
                               output for any shards x jobs combo
                               (accepted by sweep and compare)
  --shard-timeout-ms N         sharded-run watchdog: kill shards that
                               make no observable progress for N ms
                               and recover their units bit-identically
                               (0 = wait forever, the default)
  --shard-batch N              units per sharded claim (default 1):
                               N consecutive work units share one
                               atomic claim lockfile, amortizing the
                               filesystem round-trip on grids with
                               many small units; byte-identical
                               output for any value
  --format table|csv|jsonl     report format (default table)
  --progress                   stream one line per finished row to
                               stderr, in deterministic point order,
                               tagged with its origin (cache, computed,
                               or shard N)
  --metrics-out STEM           collect swan::obs telemetry over the
                               sweep and write STEM.report.json
                               (per-phase times, throughput, cache and
                               shard traffic) plus STEM.trace.jsonl
                               (Chrome trace events — open in Perfetto
                               or chrome://tracing); results stay
                               byte-identical (docs/observability.md)
  --cache-dir DIR              on-disk result + packed-trace cache
                               (also honors SWAN_SWEEP_CACHE_DIR);
                               hit/miss counters go to stderr
  --cache-max-bytes N          size cap for the on-disk cache: after
                               every store, the coldest entries (by
                               lookup hotness, then first-lookup order
                               — never file mtimes) are pruned until
                               the cache fits (0 = unbounded)
  --cache-far-dir DIR          far/shared cache tier probed after the
                               local one; hits promote into
                               --cache-dir, stores write through
                               (also honors SWAN_CACHE_FAR_DIR;
                               docs/cache.md)

environment (defaults only; explicit flags win — docs/api.md):
  SWAN_JOBS                    default worker threads for sweeps
  SWAN_SHARDS                  default worker processes for sweeps
  SWAN_SHARD_TIMEOUT_MS        default --shard-timeout-ms
  SWAN_SHARD_BATCH             default --shard-batch
  SWAN_SWEEP_CACHE_DIR         default --cache-dir
  SWAN_SWEEP_CACHE_MAX_BYTES   default --cache-max-bytes
  SWAN_CACHE_FAR_DIR           default --cache-far-dir
  SWAN_CACHE_RAM_BYTES         byte cap for the in-RAM result memo;
                               coldest results drop first, results
                               byte-identical for any value
  SWAN_METRICS                 default --metrics-out stem
  SWAN_TRACE_MEMO_BYTES        cap the sweep's in-memory packed-trace
                               memo; over-budget traces spill to disk
                               during capture and reload for
                               simulation, byte-identical results for
                               any value (docs/trace.md)
)";

/** Split a comma-separated flag value; empty segments dropped. */
std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (start <= s.size()) {
        size_t comma = s.find(',', start);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > start)
            out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

struct Parsed
{
    std::string command;
    std::string kernel;
    std::string library;
    core::Impl impl = core::Impl::Neon;
    std::string coreName = "prime";
    int bits = 128;
    bool full = false;
    std::string dumpTrace;
    std::string what = "widths";

    // Sweep-grid flags.
    std::vector<std::string> kernelList;
    std::vector<std::string> implList;
    std::vector<int> bitsList;
    std::vector<std::string> coreList;
    std::vector<std::string> wsList;
    std::vector<std::string> faultList;
    bool faultsHelp = false;
    bool wider = false;
    uint64_t shardTimeoutMs = 0;
    bool shardTimeoutSet = false;
    int jobs = 1;
    bool jobsSet = false;
    int shards = 1;
    bool shardsSet = false;
    int shardBatch = 1;
    bool shardBatchSet = false;
    std::string format = "table";
    std::string cacheDir;
    std::string cacheFarDir;
    uint64_t cacheMaxBytes = 0;
    bool cacheMaxBytesSet = false;
    bool progress = false;
    std::string metricsOut;
};

/** Parse the argument vector; returns nullopt (after a message) on error. */
std::optional<Parsed>
parse(const std::vector<std::string> &args, std::ostream &err)
{
    Parsed p;
    if (args.empty()) {
        err << kUsage;
        return std::nullopt;
    }
    p.command = args[0];
    size_t i = 1;
    if ((p.command == "info" || p.command == "run" ||
         p.command == "compare" || p.command == "simulate")) {
        if (i >= args.size()) {
            err << "swan: '" << p.command << "' needs a "
                << (p.command == "simulate" ? "trace file" : "kernel name")
                << "\n";
            return std::nullopt;
        }
        p.kernel = args[i++];
    }
    // 'sweep' has two forms: the legacy per-kernel axis sweep
    // ("sweep ZL/adler32 --what cores") and the flag-only grid form.
    if (p.command == "sweep" && i < args.size() &&
        args[i].rfind("--", 0) != 0)
        p.kernel = args[i++];
    for (; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto value = [&]() -> const std::string * {
            if (i + 1 >= args.size()) {
                err << "swan: " << a << " needs a value\n";
                return nullptr;
            }
            return &args[++i];
        };
        if (a == "--full") {
            p.full = true;
        } else if (a == "--dump-trace") {
            const auto *v = value();
            if (!v)
                return std::nullopt;
            p.dumpTrace = *v;
        } else if (a == "--what") {
            const auto *v = value();
            if (!v)
                return std::nullopt;
            if (*v != "widths" && *v != "cores") {
                err << "swan: --what must be widths or cores\n";
                return std::nullopt;
            }
            p.what = *v;
        } else if (a == "--library") {
            const auto *v = value();
            if (!v)
                return std::nullopt;
            p.library = *v;
        } else if (a == "--impl") {
            const auto *v = value();
            if (!v)
                return std::nullopt;
            if (*v == "scalar")
                p.impl = core::Impl::Scalar;
            else if (*v == "auto")
                p.impl = core::Impl::Auto;
            else if (*v == "neon")
                p.impl = core::Impl::Neon;
            else {
                err << "swan: unknown --impl '" << *v << "'\n";
                return std::nullopt;
            }
        } else if (a == "--core") {
            const auto *v = value();
            if (!v)
                return std::nullopt;
            if (*v != "prime" && *v != "gold" && *v != "silver") {
                err << "swan: unknown --core '" << *v << "'\n";
                return std::nullopt;
            }
            p.coreName = *v;
        } else if (a == "--bits") {
            const auto *v = value();
            if (!v)
                return std::nullopt;
            // Single width for run/compare; a comma list is a sweep axis.
            for (const auto &tok : splitList(*v)) {
                const int bits = std::atoi(tok.c_str());
                if (bits != 128 && bits != 256 && bits != 512 &&
                    bits != 1024) {
                    err << "swan: --bits must be 128/256/512/1024\n";
                    return std::nullopt;
                }
                p.bitsList.push_back(bits);
            }
            if (p.bitsList.empty()) {
                err << "swan: --bits must be 128/256/512/1024\n";
                return std::nullopt;
            }
            p.bits = p.bitsList.front();
        } else if (a == "--kernels") {
            const auto *v = value();
            if (!v)
                return std::nullopt;
            p.kernelList = splitList(*v);
        } else if (a == "--impls") {
            const auto *v = value();
            if (!v)
                return std::nullopt;
            p.implList = splitList(*v);
        } else if (a == "--cores") {
            const auto *v = value();
            if (!v)
                return std::nullopt;
            p.coreList = splitList(*v);
        } else if (a == "--ws") {
            const auto *v = value();
            if (!v)
                return std::nullopt;
            p.wsList = splitList(*v);
        } else if (a == "--faults" || a == "--faults=help") {
            if (a == "--faults=help") {
                p.faultsHelp = true;
                continue;
            }
            const auto *v = value();
            if (!v)
                return std::nullopt;
            if (*v == "help") {
                p.faultsHelp = true;
                continue;
            }
            p.faultList = splitList(*v);
            // Validate here so a typo'd scenario prints the catalog
            // before any session or kernel work starts.
            for (const auto &spec : p.faultList) {
                sim::FaultSpec f;
                std::string ferr;
                if (!sim::FaultSpec::parse(spec, &f, &ferr)) {
                    err << "swan: " << ferr << "\n";
                    return std::nullopt;
                }
            }
        } else if (a == "--shard-timeout-ms") {
            const auto *v = value();
            if (!v)
                return std::nullopt;
            if (!sweep::parseByteCount(v->c_str(), &p.shardTimeoutMs)) {
                err << "swan: --shard-timeout-ms must be a number >= 0\n";
                return std::nullopt;
            }
            p.shardTimeoutSet = true;
        } else if (a == "--wider") {
            p.wider = true;
        } else if (a == "--jobs") {
            const auto *v = value();
            if (!v)
                return std::nullopt;
            char *end = nullptr;
            p.jobs = int(std::strtol(v->c_str(), &end, 10));
            if (end == v->c_str() || *end != '\0' || p.jobs < 0) {
                err << "swan: --jobs must be a number >= 0 "
                       "(0 = all cores)\n";
                return std::nullopt;
            }
            p.jobsSet = true;
        } else if (a == "--shards") {
            const auto *v = value();
            if (!v)
                return std::nullopt;
            char *end = nullptr;
            p.shards = int(std::strtol(v->c_str(), &end, 10));
            if (end == v->c_str() || *end != '\0' || p.shards < 1 ||
                p.shards > sweep::ShardedBackend::kMaxShards) {
                err << "swan: --shards must be a number in [1, "
                    << sweep::ShardedBackend::kMaxShards << "]\n";
                return std::nullopt;
            }
            p.shardsSet = true;
        } else if (a == "--shard-batch") {
            const auto *v = value();
            if (!v)
                return std::nullopt;
            char *end = nullptr;
            p.shardBatch = int(std::strtol(v->c_str(), &end, 10));
            if (end == v->c_str() || *end != '\0' || p.shardBatch < 1) {
                err << "swan: --shard-batch must be a number >= 1\n";
                return std::nullopt;
            }
            p.shardBatchSet = true;
        } else if (a == "--cache-max-bytes") {
            const auto *v = value();
            if (!v)
                return std::nullopt;
            if (!sweep::parseByteCount(v->c_str(), &p.cacheMaxBytes)) {
                err << "swan: --cache-max-bytes must be a byte count "
                       ">= 0\n";
                return std::nullopt;
            }
            p.cacheMaxBytesSet = true;
        } else if (a == "--format") {
            const auto *v = value();
            if (!v)
                return std::nullopt;
            sweep::Format f;
            if (!sweep::formatForName(*v, &f)) {
                err << "swan: --format must be table, csv or jsonl\n";
                return std::nullopt;
            }
            p.format = *v;
        } else if (a == "--cache-dir") {
            const auto *v = value();
            if (!v)
                return std::nullopt;
            p.cacheDir = *v;
        } else if (a == "--cache-far-dir") {
            const auto *v = value();
            if (!v)
                return std::nullopt;
            p.cacheFarDir = *v;
        } else if (a == "--progress") {
            p.progress = true;
        } else if (a == "--metrics-out") {
            const auto *v = value();
            if (!v)
                return std::nullopt;
            p.metricsOut = *v;
        } else {
            err << "swan: unknown argument '" << a << "'\n";
            return std::nullopt;
        }
    }
    return p;
}

sim::CoreConfig
coreFor(const std::string &name)
{
    if (name == "gold")
        return sim::goldConfig();
    if (name == "silver")
        return sim::silverConfig();
    return sim::primeConfig();
}

/**
 * Session for every command that executes kernels — the single-point
 * run/compare paths and both sweep forms. The SWAN_* environment
 * supplies the defaults, explicit flags override (explicit > env >
 * default); no command reads the environment directly.
 */
Session
sessionFor(const Parsed &p)
{
    SessionOptions opts = Session::envDefaults();
    if (p.jobsSet)
        opts.jobs = p.jobs == 0 ? -1 : p.jobs; // 0 = all cores
    if (p.shardsSet)
        opts.shards = p.shards;
    if (p.shardTimeoutSet)
        opts.shardTimeoutMs = p.shardTimeoutMs;
    if (p.shardBatchSet)
        opts.shardBatch = p.shardBatch;
    if (!p.faultList.empty())
        opts.faults = p.faultList;
    if (!p.cacheDir.empty())
        opts.cacheDir = p.cacheDir;
    if (!p.cacheFarDir.empty())
        opts.farCacheDir = p.cacheFarDir;
    if (p.cacheMaxBytesSet)
        opts.cacheMaxBytes = p.cacheMaxBytes;
    if (!p.metricsOut.empty())
        opts.metricsOut = p.metricsOut;
    if (p.full)
        opts.workload = core::Options::full();
    return Session(std::move(opts));
}

std::string
patternList(uint32_t mask)
{
    using core::Pattern;
    std::string out;
    for (Pattern pat : {Pattern::Reduction, Pattern::RandomAccess,
                        Pattern::StridedAccess, Pattern::Transpose,
                        Pattern::VectorApi, Pattern::LoopDistribution}) {
        if (core::has(mask, pat)) {
            if (!out.empty())
                out += ", ";
            out += std::string(core::name(pat));
        }
    }
    return out.empty() ? "-" : out;
}

int
cmdList(const Parsed &p, std::ostream &out, std::ostream &err)
{
    const auto &reg = core::Registry::instance();
    core::Table t({"Kernel", "Library", "Domain", "Patterns", "Wider",
                   "Auto-vec"});
    int rows = 0;
    for (const auto &k : reg.kernels()) {
        if (!p.library.empty() && k.info.symbol != p.library)
            continue;
        t.addRow({k.info.qualifiedName(), k.info.library,
                  std::string(core::name(k.info.domain)),
                  patternList(k.info.patterns),
                  k.info.widerWidths ? "yes" : "-",
                  k.info.autovec.vectorizes ? "yes" : "no"});
        ++rows;
    }
    if (rows == 0) {
        err << "swan: no kernels for library '" << p.library << "'\n";
        return 2;
    }
    t.print(out);
    out << rows << " kernels\n";
    return 0;
}

/** " (reason, reason)" suffix for a failing auto-vectorization verdict. */
std::string
failReasonList(const autovec::Verdict &v)
{
    using autovec::Fail;
    if (v.vectorizes)
        return "";
    std::string out;
    for (Fail f : {Fail::Uncountable, Fail::IndirectMemory,
                   Fail::ComplexPhi, Fail::OtherLegality,
                   Fail::CostModel}) {
        if (autovec::has(v.failReasons, f)) {
            out += out.empty() ? " (" : ", ";
            out += std::string(autovec::name(f));
        }
    }
    return out.empty() ? "" : out + ")";
}

int
cmdInfo(const Parsed &p, std::ostream &out, std::ostream &err)
{
    const auto *spec = core::Registry::instance().find(p.kernel);
    if (!spec) {
        err << "swan: unknown kernel '" << p.kernel << "'\n";
        return 2;
    }
    const auto &info = spec->info;
    out << "kernel:    " << info.qualifiedName() << "\n"
        << "library:   " << info.library << " (" << info.symbol << ")\n"
        << "domain:    " << core::name(info.domain) << "\n"
        << "patterns:  " << patternList(info.patterns) << "\n"
        << "wider:     " << (info.widerWidths ? "128-1024 bit" : "128 bit")
        << "\n"
        << "auto-vec:  " << (info.autovec.vectorizes ? "vectorizes" : "fails")
        << failReasonList(info.autovec) << "\n"
        << "excluded:  " << (info.excluded ? "yes (study kernel)" : "no")
        << "\n";
    return 0;
}

int
cmdRun(const Parsed &p, std::ostream &out, std::ostream &err)
{
    const auto *spec = core::Registry::instance().find(p.kernel);
    if (!spec) {
        err << "swan: unknown kernel '" << p.kernel << "'\n";
        return 2;
    }
    if (p.bits != 128 && !spec->info.widerWidths) {
        err << "swan: " << p.kernel
            << " has no wider-register implementation\n";
        return 2;
    }
    // One workload instance shared with the optional trace dump below:
    // a dumped trace must replay to the cycle count reported here, and
    // captured traces record real buffer addresses.
    Session session = sessionFor(p);
    auto w = spec->make(session.options().workload);
    auto r = session.run(*w, p.impl, coreFor(p.coreName), p.bits);

    if (!p.dumpTrace.empty()) {
        auto instrs = core::Runner::capture(*w, p.impl, p.bits);
        std::string werr;
        if (!trace::writeTrace(p.dumpTrace, instrs, &werr)) {
            err << "swan: " << werr << "\n";
            return 1;
        }
        out << "trace:         " << p.dumpTrace << " (" << instrs.size()
            << " records)\n";
    }

    out << "kernel:        " << spec->info.qualifiedName() << " ["
        << core::name(p.impl) << ", " << p.coreName << ", " << p.bits
        << "-bit]\n";
    out << "instructions:  " << r.mix.total() << "\n"
        << "cycles:        " << r.sim.cycles << "\n"
        << "IPC:           " << core::fmt(r.sim.ipc, 2) << "\n"
        << "time:          " << core::fmt(r.sim.timeSec * 1e6, 1)
        << " us\n"
        << "L1D MPKI:      " << core::fmt(r.sim.l1Mpki, 1) << "\n"
        << "L2 MPKI:       " << core::fmt(r.sim.l2Mpki, 1) << "\n"
        << "LLC MPKI:      " << core::fmt(r.sim.llcMpki, 1) << "\n"
        << "FE stalls:     " << core::fmtPct(r.sim.feStallPct) << "\n"
        << "BE stalls:     " << core::fmtPct(r.sim.beStallPct) << "\n"
        << "power:         " << core::fmt(r.sim.powerW, 2) << " W\n"
        << "energy:        " << core::fmt(r.sim.energyJ * 1e3, 3)
        << " mJ\n";
    return 0;
}

int
cmdCompare(const Parsed &p, std::ostream &out, std::ostream &err)
{
    const auto *spec = core::Registry::instance().find(p.kernel);
    if (!spec) {
        err << "swan: unknown kernel '" << p.kernel << "'\n";
        return 2;
    }
    Session session = sessionFor(p);
    auto cmp = session.compare(*spec, coreFor(p.coreName));

    core::Table t({"Impl", "Instructions", "Cycles", "IPC", "Speedup",
                   "Energy impr."});
    const auto row = [&](const char *nm, const core::KernelRun &r) {
        t.addRow({nm, std::to_string(r.mix.total()),
                  std::to_string(r.sim.cycles), core::fmt(r.sim.ipc, 2),
                  core::fmtX(double(cmp.scalar.sim.cycles) /
                             double(r.sim.cycles)),
                  core::fmtX(cmp.scalar.sim.energyJ / r.sim.energyJ)});
    };
    row("Scalar", cmp.scalar);
    row("Auto", cmp.autovec);
    row("Neon", cmp.neon);
    t.print(out);
    out << "instruction reduction (Scalar/Neon): "
        << core::fmtX(cmp.instrReduction()) << "\n"
        << "outputs verified: " << (cmp.verified ? "yes" : "NO") << "\n";
    return cmp.verified ? 0 : 1;
}

/** Execute an experiment; shared by both sweep forms. With
 *  --progress, stream one stderr line per finished row (deterministic
 *  point order, Experiment::onRow) tagged with the row's origin. */
Results
runEngine(Experiment &experiment, bool progress, std::ostream &err,
          std::string *engineErr)
{
    if (progress)
        experiment.onRow([&err](const sweep::SweepResult &r,
                                const sweep::RowOrigin &o) {
            err << "swan: [" << o.done << "/" << o.total << "] "
                << r.point.spec->info.qualifiedName() << " "
                << core::name(r.point.impl) << " " << r.point.vecBits
                << "-bit " << r.point.configName << " "
                << r.point.workingSetName << " <- " << sweep::describe(o)
                << "\n";
        });
    Results results = experiment.run(engineErr);
    if (!results.empty())
        err << "swan: " << results.cacheSummary() << "\n";
    return results;
}

/** Legacy per-kernel axis sweep: widths (Fig. 5a) or cores (Fig. 4). */
int
cmdSweepKernel(const Parsed &p, std::ostream &out, std::ostream &err)
{
    const auto *spec = core::Registry::instance().find(p.kernel);
    if (!spec) {
        err << "swan: unknown kernel '" << p.kernel << "'\n";
        return 2;
    }
    const std::string ws = p.full ? "full" : "default";
    const std::string qn = spec->info.qualifiedName();

    if (p.what == "widths") {
        if (!spec->info.widerWidths) {
            err << "swan: " << p.kernel
                << " has no wider-register implementation (the eight "
                   "Figure-5 kernels do)\n";
            return 2;
        }
        Session session = sessionFor(p);
        std::string gerr;
        auto results =
            runEngine(Experiment(session)
                          .kernel(p.kernel)
                          .impls({core::Impl::Scalar, core::Impl::Neon})
                          .vecBits({128, 256, 512, 1024})
                          .config("wider")
                          .workingSet(ws),
                      p.progress, err, &gerr);
        if (results.empty()) {
            err << "swan: " << gerr << "\n";
            return 2;
        }
        // Scalar code has no width axis: one baseline point at 128.
        const auto *scalar = results.find(qn, core::Impl::Scalar, 128);
        const auto *base = results.find(qn, core::Impl::Neon, 128);
        core::Table t({"Width", "Cycles", "Speedup vs Scalar",
                       "Speedup vs 128-bit"});
        for (int bits : {128, 256, 512, 1024}) {
            const auto *r = results.find(qn, core::Impl::Neon, bits);
            t.addRow({std::to_string(bits),
                      std::to_string(r->run.sim.cycles),
                      core::fmtX(double(scalar->run.sim.cycles) /
                                 double(r->run.sim.cycles)),
                      core::fmtX(double(base->run.sim.cycles) /
                                 double(r->run.sim.cycles))});
        }
        t.print(out);
        return 0;
    }

    Session session = sessionFor(p);
    std::string gerr;
    auto results =
        runEngine(Experiment(session)
                      .kernel(p.kernel)
                      .impls({core::Impl::Scalar, core::Impl::Neon})
                      .vecBits({128})
                      .configs({"silver", "gold", "prime"})
                      .workingSet(ws),
                  p.progress, err, &gerr);
    if (results.empty()) {
        err << "swan: " << gerr << "\n";
        return 2;
    }
    core::Table t({"Core", "Scalar cycles", "Neon cycles",
                   "Neon speedup", "Energy impr."});
    for (const char *nm : {"silver", "gold", "prime"}) {
        const auto *s = results.find(qn, core::Impl::Scalar, 128, nm);
        const auto *n = results.find(qn, core::Impl::Neon, 128, nm);
        t.addRow({nm, std::to_string(s->run.sim.cycles),
                  std::to_string(n->run.sim.cycles),
                  core::fmtX(double(s->run.sim.cycles) /
                             double(n->run.sim.cycles)),
                  core::fmtX(s->run.sim.energyJ / n->run.sim.energyJ)});
    }
    t.print(out);
    return 0;
}

/** Flag-only grid form: fluent Experiment, parallel engine, emitters. */
int
cmdSweepGrid(const Parsed &p, std::ostream &out, std::ostream &err)
{
    Session session = sessionFor(p);
    Experiment experiment(session);
    experiment.kernels(p.kernelList)
        .library(p.library)
        .widerOnly(p.wider);
    if (!p.implList.empty()) {
        std::vector<core::Impl> impls;
        for (const auto &name : p.implList) {
            if (name == "scalar")
                impls.push_back(core::Impl::Scalar);
            else if (name == "auto")
                impls.push_back(core::Impl::Auto);
            else if (name == "neon")
                impls.push_back(core::Impl::Neon);
            else {
                err << "swan: unknown --impls entry '" << name << "'\n";
                return 2;
            }
        }
        experiment.impls(std::move(impls));
    }
    if (!p.bitsList.empty())
        experiment.vecBits(p.bitsList);
    if (!p.coreList.empty())
        experiment.configs(p.coreList);
    if (!p.wsList.empty())
        experiment.workingSets(p.wsList);
    else if (p.full)
        experiment.workingSet("full");

    std::string gerr;
    auto results = runEngine(experiment, p.progress, err, &gerr);
    if (results.empty()) {
        err << "swan: " << gerr << "\n";
        return 2;
    }
    sweep::Format fmt = sweep::Format::Table;
    sweep::formatForName(p.format, &fmt); // validated at parse time
    results.emit(out, fmt);
    return 0;
}

int
cmdSweep(const Parsed &p, std::ostream &out, std::ostream &err)
{
    if (p.faultsHelp) {
        out << sim::FaultSpec::catalog();
        return 0;
    }
    if (!p.kernel.empty())
        return cmdSweepKernel(p, out, err);
    return cmdSweepGrid(p, out, err);
}

int
cmdSimulate(const Parsed &p, std::ostream &out, std::ostream &err)
{
    std::string rerr;
    auto instrs = trace::readTrace(p.kernel, &rerr);
    if (!instrs) {
        err << "swan: " << rerr << "\n";
        return 2;
    }
    const auto cfg = coreFor(p.coreName);
    auto r = sim::simulateTrace(*instrs, cfg); // power-complete (fused)
    trace::MixStats mix;
    mix.addTrace(*instrs);

    out << "trace:         " << p.kernel << " (" << instrs->size()
        << " records, " << mix.vectorInstrs() << " vector)\n"
        << "core:          " << p.coreName << "\n"
        << "cycles:        " << r.cycles << "\n"
        << "IPC:           " << core::fmt(r.ipc, 2) << "\n"
        << "time:          " << core::fmt(r.timeSec * 1e6, 1) << " us\n"
        << "L1D MPKI:      " << core::fmt(r.l1Mpki, 1) << "\n"
        << "LLC MPKI:      " << core::fmt(r.llcMpki, 1) << "\n"
        << "power:         " << core::fmt(r.powerW, 2) << " W\n"
        << "energy:        " << core::fmt(r.energyJ * 1e3, 3) << " mJ\n";
    return 0;
}

} // namespace

int
runCli(const std::vector<std::string> &args, std::ostream &out,
       std::ostream &err)
{
    auto p = parse(args, err);
    if (!p)
        return 2;
    if (p->command == "help" || p->command == "--help") {
        out << kUsage;
        return 0;
    }
    if (p->command == "version" || p->command == "--version" ||
        p->command == "-V") {
        // The replay engine's runtime ISA dispatch, so "which kernels
        // will this host actually run" is one command away (the same
        // strings land in every run report — obs/report.cc).
        const auto &d = detail::simdDispatch();
        out << "swan " << versionString() << "\n"
            << "simd: isa=" << d.isa << " decode=" << d.decodeKernel
            << " step=" << d.stepKernel
            << (d.forced ? " (forced via SWAN_SIMD)" : "") << "\n";
        return 0;
    }
    if (p->command == "list")
        return cmdList(*p, out, err);
    if (p->command == "info")
        return cmdInfo(*p, out, err);
    if (p->command == "run")
        return cmdRun(*p, out, err);
    if (p->command == "compare")
        return cmdCompare(*p, out, err);
    if (p->command == "simulate")
        return cmdSimulate(*p, out, err);
    if (p->command == "sweep")
        return cmdSweep(*p, out, err);
    err << "swan: unknown command '" << p->command << "'\n" << kUsage;
    return 2;
}

} // namespace swan::tools
