/**
 * @file
 * The `swan` command-line tool: thin main() over tools::runCli.
 */

#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return swan::tools::runCli(args, std::cout, std::cerr);
}
