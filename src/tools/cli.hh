/**
 * @file
 * Command-line front end for the Swan suite: list kernels, inspect
 * metadata, run one kernel on one core model, or compare the
 * Scalar/Auto/Neon implementations — the workflow a downstream user
 * wants before scripting the per-figure bench binaries. The command
 * logic is a library function (runCli) so the tests can drive it with
 * argument vectors and capture the output; bin/swan is a thin main().
 */

#ifndef SWAN_TOOLS_CLI_HH
#define SWAN_TOOLS_CLI_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace swan::tools
{

/**
 * Execute one CLI invocation.
 *
 * @param args Arguments after the program name, e.g. {"run",
 *             "ZL/adler32", "--core", "silver"}.
 * @param out  Stream for normal output.
 * @param err  Stream for diagnostics.
 * @return Process exit code (0 on success, 2 on usage errors).
 */
int runCli(const std::vector<std::string> &args, std::ostream &out,
           std::ostream &err);

} // namespace swan::tools

#endif // SWAN_TOOLS_CLI_HH
