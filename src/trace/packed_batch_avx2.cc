/**
 * @file
 * AVX2+BMI2 batch varint-decode kernel. This translation unit is the
 * only one in the library compiled with -mavx2 -mbmi2 (see
 * CMakeLists.txt), so the BMI2 pext intrinsic compiles as a plain
 * instruction and the compiler may use VEX encodings freely — which
 * is exactly why nothing here may run unless the runtime dispatch
 * (swan/internal/simd_dispatch.hh) verified AVX2+BMI2 support.
 * Callers reach this kernel only through Cursor::nextBatch.
 *
 * The kernel is the shared batch body (trace/packed_batch_impl.hh)
 * instantiated with a pext fold: extracting the 7-bit payload groups
 * of a masked varint word is a single _pext_u64 against
 * 0x7f7f7f7f7f7f7f7f, replacing the three-step SWAR cascade —
 * bit-identical by construction (pext gathers exactly the bits the
 * cascade folds, in the same order).
 */

#if defined(__x86_64__) && !defined(SWAN_SIMD_OFF)

#include <immintrin.h>

#include "trace/packed_batch_impl.hh"

namespace swan::trace
{

namespace
{

/** BMI2 fold policy: one pext gathers all 7-bit payload groups. */
struct PextFold
{
    static inline uint64_t
    fold(uint64_t masked_word)
    {
        return _pext_u64(masked_word, 0x7f7f7f7f7f7f7f7full);
    }
};

} // namespace

size_t
PackedTrace::Cursor::nextBatchNative(Decoded *out, size_t max)
{
    return nextBatchImpl<PextFold>(out, max);
}

} // namespace swan::trace

#endif // __x86_64__ && !SWAN_SIMD_OFF
