/**
 * @file
 * Trace statistics: instruction-class mix (Figure 1), stride census
 * (Table 6) and SIMD lane utilization (Section 7.1). Implemented as an
 * accumulating Sink so it works for both buffered and streaming traces.
 */

#ifndef SWAN_TRACE_STATS_HH
#define SWAN_TRACE_STATS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "trace/instr.hh"
#include "trace/recorder.hh"

namespace swan::trace
{

/** Accumulated instruction-mix and pattern statistics of one trace. */
class MixStats : public Sink
{
  public:
    void onInstr(const Instr &instr) override;

    /** Accumulate a whole buffered trace. */
    void
    addTrace(const std::vector<Instr> &instrs)
    {
        for (const auto &i : instrs)
            onInstr(i);
    }

    uint64_t total() const { return total_; }
    uint64_t count(InstrClass cls) const
    {
        return byClass_[size_t(cls)];
    }
    uint64_t count(PaperClass cls) const
    {
        return byPaper_[size_t(cls)];
    }
    uint64_t count(StrideKind kind) const
    {
        return byStride_[size_t(kind)];
    }

    /** Fraction [0,1] of the trace in a Figure-1 bucket. */
    double fraction(PaperClass cls) const;

    uint64_t vectorInstrs() const { return vecInstrs_; }
    uint64_t scalarInstrs() const { return total_ - vecInstrs_; }

    /** Active-lane / total-lane ratio over all vector instructions. */
    double laneUtilization() const;

    /**
     * Active datapath bytes relative to a machine vector width of
     * @p machine_bytes — the Section 7.1 SIMD utilization metric. A
     * narrower tail op on a wide machine counts against the full width,
     * which laneUtilization() (per-instruction) does not capture.
     */
    double machineUtilization(int machine_bytes) const;

    /** Fraction of the trace with a given stride tag. */
    double strideFraction(StrideKind kind) const;

    /** Bytes moved by loads (stores). */
    uint64_t loadBytes() const { return loadBytes_; }
    uint64_t storeBytes() const { return storeBytes_; }

    /**
     * Flat counter snapshot for persistence (the sweep result cache).
     * Layout: the seven scalar accumulators, then the three per-enum
     * arrays, each prefixed with its length so fromCounters() can
     * reject snapshots written by a build with different enum sizes.
     */
    std::vector<uint64_t> counters() const;

    /** Rebuild from a counters() snapshot; false on layout mismatch. */
    static bool fromCounters(const std::vector<uint64_t> &flat,
                             MixStats *out);

  private:
    uint64_t total_ = 0;
    uint64_t vecInstrs_ = 0;
    uint64_t laneSum_ = 0;
    uint64_t activeLaneSum_ = 0;
    uint64_t activeByteSum_ = 0;
    uint64_t loadBytes_ = 0;
    uint64_t storeBytes_ = 0;
    std::array<uint64_t, size_t(InstrClass::NumClasses)> byClass_{};
    std::array<uint64_t, size_t(PaperClass::NumClasses)> byPaper_{};
    std::array<uint64_t, size_t(StrideKind::NumKinds)> byStride_{};
};

} // namespace swan::trace

#endif // SWAN_TRACE_STATS_HH
