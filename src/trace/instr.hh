/**
 * @file
 * Dynamic instruction record produced by the Swan instrumentation layer.
 *
 * Every operation executed through swan::simd (vector intrinsics and
 * instrumented scalar operations) appends one Instr to the active
 * trace::Recorder. The record carries everything the trace-driven timing
 * simulator needs: an instruction class (for the Figure-1 style breakdown),
 * a functional-unit kind, an execution latency class, up to three data
 * dependences (producer instruction ids), and, for memory operations, the
 * accessed address and size. This substitutes for the DynamoRIO trace
 * client used in the paper (Section 4.3).
 */

#ifndef SWAN_TRACE_INSTR_HH
#define SWAN_TRACE_INSTR_HH

#include <cstdint>
#include <string_view>

namespace swan::trace
{

/** Fine-grained instruction classification used by the instrumentation. */
enum class InstrClass : uint8_t
{
    SInt,       //!< scalar integer ALU (also address/control arithmetic)
    SFloat,     //!< scalar floating-point
    Branch,     //!< conditional/unconditional branches
    SLoad,      //!< scalar load
    SStore,     //!< scalar store
    VLoad,      //!< vector load (including ld2/ld3/ld4)
    VStore,     //!< vector store (including st2/st3/st4)
    VInt,       //!< vector integer arithmetic/logic
    VFloat,     //!< vector floating-point arithmetic
    VCrypto,    //!< cryptography extension (AES/SHA/PMULL/CRC)
    VMisc,      //!< vector permute/duplicate/convert/lane-move
    NumClasses
};

/**
 * Coarse buckets used by the paper's Figure 1. Scalar loads, stores and
 * branches fold into S-Integer, matching the paper's two scalar buckets.
 */
enum class PaperClass : uint8_t
{
    SInteger, SFloat, VLoad, VStore, VInteger, VFloat, VCrypto, VMisc,
    NumClasses
};

/** Functional-unit pools of the simulated cores (see sim::CoreConfig). */
enum class Fu : uint8_t
{
    SAlu,       //!< scalar integer ALU
    SMul,       //!< scalar multiply/divide
    SFp,        //!< scalar FP/simple-ASIMD scalar pipe
    Branch,     //!< branch unit
    Load,       //!< load pipe (AGU + L1D access)
    Store,      //!< store pipe
    VUnit,      //!< ASIMD/FP vector execution unit
    NumFus
};

/** Stride/permute tagging for the Table-6 census. */
enum class StrideKind : uint8_t
{
    None,
    Ld2, St2, Ld3, St3, Ld4, St4,   //!< multi-register strided accesses
    Zip, Uzp, Trn,                  //!< register interleave/de-interleave
    // Future-ISA extension ops (Section 9 / DESIGN.md extensions): SVE- or
    // RVV-style accesses that crack into per-element cache accesses.
    Gather, Scatter,                //!< indexed vector load/store
    LdS, StS,                       //!< arbitrary-stride load/store
    NumKinds
};

/** One dynamic instruction. */
struct Instr
{
    uint64_t id = 0;        //!< 1-based sequence number within the trace
    uint64_t dep0 = 0;      //!< producer id of first operand (0 = none)
    uint64_t dep1 = 0;
    uint64_t dep2 = 0;
    uint64_t addr = 0;      //!< virtual address for memory ops (0 = none)
    /**
     * Last element address of a multi-address access (Gather/Scatter/
     * LdS/StS). Together with addr it bounds the touched region; for
     * LdS/StS, elemStride reconstructs the exact element addresses.
     */
    uint64_t addr2 = 0;
    uint32_t size = 0;      //!< bytes accessed by memory ops
    int32_t elemStride = 0; //!< byte distance between elements (LdS/StS)
    InstrClass cls = InstrClass::SInt;
    Fu fu = Fu::SAlu;
    uint8_t latency = 1;    //!< execution latency (L1-hit latency for loads)
    uint8_t vecBytes = 0;   //!< vector register width in bytes (0 = scalar)
    uint8_t lanes = 0;      //!< total SIMD lanes of the operation
    uint8_t activeLanes = 0;//!< lanes carrying useful data
    StrideKind stride = StrideKind::None;

    bool isMem() const
    {
        return cls == InstrClass::SLoad || cls == InstrClass::SStore ||
               cls == InstrClass::VLoad || cls == InstrClass::VStore;
    }
    bool isLoad() const
    {
        return cls == InstrClass::SLoad || cls == InstrClass::VLoad;
    }
    bool isStore() const
    {
        return cls == InstrClass::SStore || cls == InstrClass::VStore;
    }
    bool isVector() const
    {
        return cls == InstrClass::VLoad || cls == InstrClass::VStore ||
               cls == InstrClass::VInt || cls == InstrClass::VFloat ||
               cls == InstrClass::VCrypto || cls == InstrClass::VMisc;
    }
    /** True for accesses that crack into per-element cache accesses. */
    bool isMultiAddress() const
    {
        return stride == StrideKind::Gather ||
               stride == StrideKind::Scatter ||
               stride == StrideKind::LdS || stride == StrideKind::StS;
    }
};

/** Map the fine classification onto the paper's Figure-1 buckets. */
PaperClass paperClass(InstrClass cls);

/** Human-readable names, for reports. */
std::string_view name(InstrClass cls);
std::string_view name(PaperClass cls);
std::string_view name(Fu fu);
std::string_view name(StrideKind kind);

} // namespace swan::trace

#endif // SWAN_TRACE_INSTR_HH
