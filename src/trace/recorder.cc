#include "trace/recorder.hh"

namespace swan::trace
{

Recorder *&
currentRecorder()
{
    static thread_local Recorder *rec = nullptr;
    return rec;
}

} // namespace swan::trace
