#include "trace/instr.hh"

namespace swan::trace
{

PaperClass
paperClass(InstrClass cls)
{
    switch (cls) {
      case InstrClass::SInt:
      case InstrClass::Branch:
      case InstrClass::SLoad:
      case InstrClass::SStore:
        return PaperClass::SInteger;
      case InstrClass::SFloat:
        return PaperClass::SFloat;
      case InstrClass::VLoad:
        return PaperClass::VLoad;
      case InstrClass::VStore:
        return PaperClass::VStore;
      case InstrClass::VInt:
        return PaperClass::VInteger;
      case InstrClass::VFloat:
        return PaperClass::VFloat;
      case InstrClass::VCrypto:
        return PaperClass::VCrypto;
      case InstrClass::VMisc:
      default:
        return PaperClass::VMisc;
    }
}

std::string_view
name(InstrClass cls)
{
    switch (cls) {
      case InstrClass::SInt: return "s-int";
      case InstrClass::SFloat: return "s-float";
      case InstrClass::Branch: return "branch";
      case InstrClass::SLoad: return "s-load";
      case InstrClass::SStore: return "s-store";
      case InstrClass::VLoad: return "v-load";
      case InstrClass::VStore: return "v-store";
      case InstrClass::VInt: return "v-int";
      case InstrClass::VFloat: return "v-float";
      case InstrClass::VCrypto: return "v-crypto";
      case InstrClass::VMisc: return "v-misc";
      default: return "?";
    }
}

std::string_view
name(PaperClass cls)
{
    switch (cls) {
      case PaperClass::SInteger: return "S-Integer";
      case PaperClass::SFloat: return "S-Float";
      case PaperClass::VLoad: return "V-Load";
      case PaperClass::VStore: return "V-Store";
      case PaperClass::VInteger: return "V-Integer";
      case PaperClass::VFloat: return "V-Float";
      case PaperClass::VCrypto: return "V-Crypto";
      case PaperClass::VMisc: return "V-Misc";
      default: return "?";
    }
}

std::string_view
name(Fu fu)
{
    switch (fu) {
      case Fu::SAlu: return "salu";
      case Fu::SMul: return "smul";
      case Fu::SFp: return "sfp";
      case Fu::Branch: return "br";
      case Fu::Load: return "ld";
      case Fu::Store: return "st";
      case Fu::VUnit: return "asimd";
      default: return "?";
    }
}

std::string_view
name(StrideKind kind)
{
    switch (kind) {
      case StrideKind::None: return "none";
      case StrideKind::Ld2: return "ld2";
      case StrideKind::St2: return "st2";
      case StrideKind::Ld3: return "ld3";
      case StrideKind::St3: return "st3";
      case StrideKind::Ld4: return "ld4";
      case StrideKind::St4: return "st4";
      case StrideKind::Zip: return "zip";
      case StrideKind::Uzp: return "uzp";
      case StrideKind::Trn: return "trn";
      case StrideKind::Gather: return "gather";
      case StrideKind::Scatter: return "scatter";
      case StrideKind::LdS: return "lds";
      case StrideKind::StS: return "sts";
      default: return "?";
    }
}

} // namespace swan::trace
