/**
 * @file
 * Shared body of the batch varint-decode kernels — the template
 * behind PackedTrace::Cursor::nextBatchSwar (portable 64-bit SWAR)
 * and the AVX2+BMI2 instantiation (trace/packed_batch_avx2.cc, built
 * with its own ISA flags so pext compiles without tainting the rest
 * of the library).
 *
 * The body is a transplant of the inline Cursor::next(Decoded&) with
 * the decode recurrence — stream position, previous id, previous
 * address, records left — hoisted into locals for the whole batch:
 * the per-record member loads/stores and the end-of-batch overrun
 * checks amortize across up to `max` records. Everything observable
 * is bit-identical to a next() loop: the same Decoded sequence, the
 * same count, the same ok() verdict on truncated records, descriptor
 * range violations, exhausted multi streams and trailing bytes.
 *
 * The Fold policy is the one point the specializations differ on:
 * how a masked little-endian word of 7-bit varint groups becomes an
 * integer. The SWAR fold is three shift-mask steps; BMI2 pext does it
 * in one instruction.
 */

#ifndef SWAN_TRACE_PACKED_BATCH_IMPL_HH
#define SWAN_TRACE_PACKED_BATCH_IMPL_HH

#include "trace/packed.hh"

#include <cstring>

namespace swan::trace
{

namespace packed_detail
{

/** Portable fold policy: the fold7 shift-mask cascade. */
struct SwarFold
{
    static inline uint64_t
    fold(uint64_t masked_word)
    {
        return fold7(masked_word);
    }
};

/**
 * Word-at-a-time unchecked varint read, parameterized on the fold.
 * Mirrors packed_detail::rdFast exactly — the only difference any
 * instantiation may introduce is how the masked word's payload bits
 * are gathered, never which bytes are consumed.
 */
template <class Fold>
inline uint64_t
rdFastF(const uint8_t *&p)
{
    uint64_t w;
    std::memcpy(&w, p, 8);
    if (__builtin_expect(!(w & 0x80), 1)) {
        ++p;
        return w & 0x7f;
    }
    const uint64_t stops = ~w & 0x8080808080808080ull;
    if (__builtin_expect(stops != 0, 1)) {
        const int len = (__builtin_ctzll(stops) >> 3) + 1;
        p += len;
        return Fold::fold(w & (~0ull >> (64 - 8 * len)));
    }
    p += 8;
    uint64_t v = Fold::fold(w & 0x7f7f7f7f7f7f7f7full);
    int shift = 56;
    while (true) {
        const uint64_t b = *p++;
        v |= (b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
        if (shift >= 64)
            return v;
    }
}

} // namespace packed_detail

template <class Fold>
size_t
PackedTrace::Cursor::nextBatchImpl(Decoded *out, size_t max)
{
    using namespace packed_detail;
    if (!trace_ || left_ == 0)
        return 0;
    // The decode recurrence lives in registers for the whole batch;
    // members are written back once on every exit path.
    const uint8_t *p = p_;
    const uint8_t *const end = end_;
    const uint8_t *mp = mp_;
    const uint8_t *const mend = mend_;
    const uint32_t descCount = trace_->descCount_;
    uint64_t prevId = prevId_;
    uint64_t prevAddr = prevAddr_;
    uint64_t left = left_;
    bool bad = false;
    size_t n = 0;
    while (n < max && left) {
        uint64_t tag, id, dep0 = 0, dep1 = 0, dep2 = 0, addr = 0,
                          addr2 = 0;
        if (__builtin_expect(end - p >= 8, 1)) {
            uint64_t w;
            std::memcpy(&w, p, 8);
            if (__builtin_expect(!(w & 0x8080808080808080ull), 1)) {
                tag = w & 0xff;
                if (__builtin_expect(!(tag & kHasMulti), 1)) {
                    // All-single-byte record: flag-indexed shifts,
                    // identical to the inline next(Decoded&) tier.
                    const uint64_t fIdJ = (tag >> 2) & 1;
                    const uint64_t fD0 = (tag >> 3) & 1;
                    const uint64_t fD1 = (tag >> 4) & 1;
                    const uint64_t fD2 = (tag >> 5) & 1;
                    const uint64_t fA = tag & 1;
                    const uint64_t pIdJ = 1;
                    const uint64_t pD0 = pIdJ + fIdJ;
                    const uint64_t pD1 = pD0 + fD0;
                    const uint64_t pD2 = pD1 + fD1;
                    const uint64_t pA = pD2 + fD2;
                    p += pA + fA;
                    id = uint64_t(
                        int64_t(prevId + 1) +
                        (unzigzag((w >> (8 * pIdJ)) & 0xff) &
                         -int64_t(fIdJ)));
                    dep0 = uint64_t(int64_t(id) -
                                    unzigzag((w >> (8 * pD0)) & 0xff)) &
                           -uint64_t(fD0);
                    dep1 = uint64_t(int64_t(id) -
                                    unzigzag((w >> (8 * pD1)) & 0xff)) &
                           -uint64_t(fD1);
                    dep2 = uint64_t(int64_t(id) -
                                    unzigzag((w >> (8 * pD2)) & 0xff)) &
                           -uint64_t(fD2);
                    prevAddr += uint64_t(unzigzag((w >> (8 * pA)) & 0xff) &
                                         -int64_t(fA));
                    addr = prevAddr & -uint64_t(fA);
                    prevId = id;
                    const uint64_t idx = tag >> kTagFlagBits;
                    if (__builtin_expect(idx >= descCount, 0)) {
                        bad = true;
                        break;
                    }
                    --left;
                    Decoded &o = out[n++];
                    o.id = id;
                    o.dep0 = dep0;
                    o.dep1 = dep1;
                    o.dep2 = dep2;
                    o.addr = addr;
                    o.addr2 = 0;
                    o.desc = uint32_t(idx);
                    continue;
                }
            }
        }
        if (__builtin_expect(end - p >= kMaxRecordBytes, 1)) {
            // A maximal record fits: unchecked word-at-a-time reads.
            tag = rdFastF<Fold>(p);
            id = prevId + 1;
            if (tag & kHasIdJump)
                id = uint64_t(int64_t(id) + unzigzag(rdFastF<Fold>(p)));
            if (tag & kHasDep0)
                dep0 = uint64_t(int64_t(id) - unzigzag(rdFastF<Fold>(p)));
            if (tag & kHasDep1)
                dep1 = uint64_t(int64_t(id) - unzigzag(rdFastF<Fold>(p)));
            if (tag & kHasDep2)
                dep2 = uint64_t(int64_t(id) - unzigzag(rdFastF<Fold>(p)));
            if (tag & kHasAddr) {
                prevAddr += uint64_t(unzigzag(rdFastF<Fold>(p)));
                addr = prevAddr;
            }
        } else {
            // Checked near-end tail: byte-wise, never reads past end.
            bool tb = false;
            tag = getVarint(p, end, &tb);
            id = prevId + 1;
            if (tag & kHasIdJump)
                id = uint64_t(int64_t(id) +
                              unzigzag(getVarint(p, end, &tb)));
            if (tag & kHasDep0)
                dep0 = uint64_t(int64_t(id) -
                                unzigzag(getVarint(p, end, &tb)));
            if (tag & kHasDep1)
                dep1 = uint64_t(int64_t(id) -
                                unzigzag(getVarint(p, end, &tb)));
            if (tag & kHasDep2)
                dep2 = uint64_t(int64_t(id) -
                                unzigzag(getVarint(p, end, &tb)));
            if (tag & kHasAddr) {
                prevAddr += uint64_t(unzigzag(getVarint(p, end, &tb)));
                addr = prevAddr;
            }
            if (tb) {
                bad = true;
                break;
            }
        }
        if (tag & kHasMulti) {
            bool tb = false;
            const uint64_t multiTok = getVarint(mp, mend, &tb);
            if (tb) {
                bad = true;
                break;
            }
            addr2 = uint64_t(int64_t(addr) + unzigzag(multiTok));
        }
        prevId = id;
        const uint64_t idx = tag >> kTagFlagBits;
        if (__builtin_expect(idx >= descCount, 0)) {
            bad = true;
            break;
        }
        --left;
        Decoded &o = out[n++];
        o.id = id;
        o.dep0 = dep0;
        o.dep1 = dep1;
        o.dep2 = dep2;
        o.addr = addr;
        o.addr2 = addr2;
        o.desc = uint32_t(idx);
    }
    p_ = p;
    mp_ = mp;
    prevId_ = prevId;
    prevAddr_ = prevAddr;
    if (bad) {
        bad_ = true;
        left_ = 0;
    } else {
        left_ = left;
    }
    return n;
}

} // namespace swan::trace

#endif // SWAN_TRACE_PACKED_BATCH_IMPL_HH
