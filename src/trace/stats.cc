#include "trace/stats.hh"

namespace swan::trace
{

void
MixStats::onInstr(const Instr &instr)
{
    ++total_;
    ++byClass_[size_t(instr.cls)];
    ++byPaper_[size_t(paperClass(instr.cls))];
    ++byStride_[size_t(instr.stride)];
    if (instr.isVector()) {
        ++vecInstrs_;
        laneSum_ += instr.lanes;
        activeLaneSum_ += instr.activeLanes;
        if (instr.vecBytes && instr.lanes) {
            activeByteSum_ += uint64_t(instr.activeLanes) *
                              uint64_t(instr.vecBytes / instr.lanes);
        }
    }
    if (instr.isLoad())
        loadBytes_ += instr.size;
    else if (instr.isStore())
        storeBytes_ += instr.size;
}

double
MixStats::fraction(PaperClass cls) const
{
    if (total_ == 0)
        return 0.0;
    return double(byPaper_[size_t(cls)]) / double(total_);
}

double
MixStats::laneUtilization() const
{
    if (laneSum_ == 0)
        return 0.0;
    return double(activeLaneSum_) / double(laneSum_);
}

double
MixStats::machineUtilization(int machine_bytes) const
{
    if (vecInstrs_ == 0 || machine_bytes <= 0)
        return 0.0;
    return double(activeByteSum_) /
           double(vecInstrs_ * uint64_t(machine_bytes));
}

double
MixStats::strideFraction(StrideKind kind) const
{
    if (total_ == 0)
        return 0.0;
    return double(byStride_[size_t(kind)]) / double(total_);
}


std::vector<uint64_t>
MixStats::counters() const
{
    std::vector<uint64_t> flat = {total_,         vecInstrs_,
                                  laneSum_,       activeLaneSum_,
                                  activeByteSum_, loadBytes_,
                                  storeBytes_};
    const auto append = [&flat](const auto &arr) {
        flat.push_back(arr.size());
        flat.insert(flat.end(), arr.begin(), arr.end());
    };
    append(byClass_);
    append(byPaper_);
    append(byStride_);
    return flat;
}

bool
MixStats::fromCounters(const std::vector<uint64_t> &flat, MixStats *out)
{
    MixStats s;
    size_t i = 0;
    const auto scalar = [&](uint64_t &field) {
        if (i >= flat.size())
            return false;
        field = flat[i++];
        return true;
    };
    if (!scalar(s.total_) || !scalar(s.vecInstrs_) ||
        !scalar(s.laneSum_) || !scalar(s.activeLaneSum_) ||
        !scalar(s.activeByteSum_) || !scalar(s.loadBytes_) ||
        !scalar(s.storeBytes_))
        return false;
    const auto array = [&](auto &arr) {
        if (i >= flat.size() || flat[i] != arr.size() ||
            flat.size() - i - 1 < arr.size())
            return false;
        ++i;
        for (auto &v : arr)
            v = flat[i++];
        return true;
    };
    if (!array(s.byClass_) || !array(s.byPaper_) || !array(s.byStride_))
        return false;
    if (i != flat.size())
        return false;
    *out = s;
    return true;
}
} // namespace swan::trace
