#include "trace/stats.hh"

namespace swan::trace
{

void
MixStats::onInstr(const Instr &instr)
{
    ++total_;
    ++byClass_[size_t(instr.cls)];
    ++byPaper_[size_t(paperClass(instr.cls))];
    ++byStride_[size_t(instr.stride)];
    if (instr.isVector()) {
        ++vecInstrs_;
        laneSum_ += instr.lanes;
        activeLaneSum_ += instr.activeLanes;
        if (instr.vecBytes && instr.lanes) {
            activeByteSum_ += uint64_t(instr.activeLanes) *
                              uint64_t(instr.vecBytes / instr.lanes);
        }
    }
    if (instr.isLoad())
        loadBytes_ += instr.size;
    else if (instr.isStore())
        storeBytes_ += instr.size;
}

double
MixStats::fraction(PaperClass cls) const
{
    if (total_ == 0)
        return 0.0;
    return double(byPaper_[size_t(cls)]) / double(total_);
}

double
MixStats::laneUtilization() const
{
    if (laneSum_ == 0)
        return 0.0;
    return double(activeLaneSum_) / double(laneSum_);
}

double
MixStats::machineUtilization(int machine_bytes) const
{
    if (vecInstrs_ == 0 || machine_bytes <= 0)
        return 0.0;
    return double(activeByteSum_) /
           double(vecInstrs_ * uint64_t(machine_bytes));
}

double
MixStats::strideFraction(StrideKind kind) const
{
    if (total_ == 0)
        return 0.0;
    return double(byStride_[size_t(kind)]) / double(total_);
}

} // namespace swan::trace
