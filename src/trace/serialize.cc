#include "trace/serialize.hh"

#include <array>
#include <cstring>

namespace swan::trace
{

namespace
{

constexpr char kMagic[4] = {'S', 'W', 'T', 'R'};
constexpr size_t kHeaderBytes = 16;
constexpr size_t kRecordBytes = 64;

/** Little-endian scalar append into a byte buffer. */
template <typename T>
void
put(uint8_t *&p, T v)
{
    std::memcpy(p, &v, sizeof(T));
    p += sizeof(T);
}

template <typename T>
void
get(const uint8_t *&p, T &v)
{
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
}

/** Pack one record into exactly kRecordBytes. */
std::array<uint8_t, kRecordBytes>
pack(const Instr &i)
{
    std::array<uint8_t, kRecordBytes> buf{};
    uint8_t *p = buf.data();
    put(p, i.id);
    put(p, i.dep0);
    put(p, i.dep1);
    put(p, i.dep2);
    put(p, i.addr);
    put(p, i.addr2);
    put(p, i.size);
    put(p, i.elemStride);
    put(p, uint8_t(i.cls));
    put(p, uint8_t(i.fu));
    put(p, i.latency);
    put(p, i.vecBytes);
    put(p, i.lanes);
    put(p, i.activeLanes);
    put(p, uint8_t(i.stride));
    // 1 byte of tail padding to 64.
    return buf;
}

bool
unpack(const uint8_t *buf, Instr &i, std::string *error)
{
    const uint8_t *p = buf;
    get(p, i.id);
    get(p, i.dep0);
    get(p, i.dep1);
    get(p, i.dep2);
    get(p, i.addr);
    get(p, i.addr2);
    get(p, i.size);
    get(p, i.elemStride);
    uint8_t cls, fu, stride;
    get(p, cls);
    get(p, fu);
    get(p, i.latency);
    get(p, i.vecBytes);
    get(p, i.lanes);
    get(p, i.activeLanes);
    get(p, stride);
    if (cls >= uint8_t(InstrClass::NumClasses) ||
        fu >= uint8_t(Fu::NumFus) ||
        stride >= uint8_t(StrideKind::NumKinds)) {
        if (error)
            *error = "corrupt record (enum out of range)";
        return false;
    }
    i.cls = InstrClass(cls);
    i.fu = Fu(fu);
    i.stride = StrideKind(stride);
    return true;
}

bool
writeHeader(std::FILE *f, uint64_t count)
{
    uint8_t hdr[kHeaderBytes] = {};
    uint8_t *p = hdr;
    std::memcpy(p, kMagic, 4);
    p += 4;
    put(p, kTraceFormatVersion);
    put(p, count);
    return std::fwrite(hdr, 1, kHeaderBytes, f) == kHeaderBytes;
}

} // namespace

bool
writeTrace(const std::string &path, const std::vector<Instr> &instrs,
           std::string *error)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        if (error)
            *error = "cannot open '" + path + "' for writing";
        return false;
    }
    bool ok = writeHeader(f, instrs.size());
    for (const auto &i : instrs) {
        if (!ok)
            break;
        auto rec = pack(i);
        ok = std::fwrite(rec.data(), 1, kRecordBytes, f) == kRecordBytes;
    }
    ok = (std::fclose(f) == 0) && ok;
    if (!ok && error && error->empty())
        *error = "short write to '" + path + "'";
    return ok;
}

std::optional<std::vector<Instr>>
readTrace(const std::string &path, std::string *error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        if (error)
            *error = "cannot open '" + path + "'";
        return std::nullopt;
    }
    uint8_t hdr[kHeaderBytes];
    if (std::fread(hdr, 1, kHeaderBytes, f) != kHeaderBytes) {
        if (error)
            *error = "truncated header";
        std::fclose(f);
        return std::nullopt;
    }
    if (std::memcmp(hdr, kMagic, 4) != 0) {
        if (error)
            *error = "not a Swan trace (bad magic)";
        std::fclose(f);
        return std::nullopt;
    }
    const uint8_t *p = hdr + 4;
    uint32_t version;
    uint64_t count;
    get(p, version);
    get(p, count);
    if (version != kTraceFormatVersion) {
        if (error)
            *error = "unsupported trace version " + std::to_string(version);
        std::fclose(f);
        return std::nullopt;
    }
    std::vector<Instr> out;
    out.reserve(count);
    uint8_t rec[kRecordBytes];
    for (uint64_t n = 0; n < count; ++n) {
        if (std::fread(rec, 1, kRecordBytes, f) != kRecordBytes) {
            if (error)
                *error = "truncated body (record " + std::to_string(n) +
                         " of " + std::to_string(count) + ")";
            std::fclose(f);
            return std::nullopt;
        }
        Instr i;
        if (!unpack(rec, i, error)) {
            std::fclose(f);
            return std::nullopt;
        }
        out.push_back(i);
    }
    std::fclose(f);
    return out;
}

TraceFileSink::TraceFileSink(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ && !writeHeader(file_, 0))
        failed_ = true;
}

TraceFileSink::~TraceFileSink()
{
    if (file_)
        close();
}

void
TraceFileSink::onInstr(const Instr &instr)
{
    if (!ok())
        return;
    auto rec = pack(instr);
    if (std::fwrite(rec.data(), 1, kRecordBytes, file_) != kRecordBytes)
        failed_ = true;
    else
        ++count_;
}

bool
TraceFileSink::close()
{
    if (!file_)
        return false;
    bool ok = !failed_;
    // Patch the record count into the header.
    if (ok && std::fseek(file_, 8, SEEK_SET) == 0) {
        uint8_t buf[8];
        uint8_t *p = buf;
        put(p, count_);
        ok = std::fwrite(buf, 1, 8, file_) == 8;
    } else {
        ok = false;
    }
    ok = (std::fclose(file_) == 0) && ok;
    file_ = nullptr;
    return ok;
}

} // namespace swan::trace
