/**
 * @file
 * Trace recorder: collects the dynamic instruction stream of one kernel
 * invocation, either buffering it for multi-configuration replay or
 * streaming it into a sink (e.g. directly into a timing simulator) when the
 * trace would be too large to hold.
 */

#ifndef SWAN_TRACE_RECORDER_HH
#define SWAN_TRACE_RECORDER_HH

#include <cstdint>
#include <vector>

#include "trace/instr.hh"

namespace swan::trace
{

/** Consumer interface for streaming traces. */
class Sink
{
  public:
    virtual ~Sink() = default;
    /** Called once per recorded instruction, in program order. */
    virtual void onInstr(const Instr &instr) = 0;
};

/**
 * Records the dynamic instruction stream of a kernel invocation.
 *
 * A Recorder either keeps the full trace in memory (the common case: the
 * runner replays one trace against several core configurations) or forwards
 * each record to a Sink without buffering (used for very long runs such as
 * the Figure-6 GEMM sweep).
 */
class Recorder
{
  public:
    /** Buffered recorder. */
    Recorder() : keep_(true) {}

    /** Streaming recorder; @p sink receives every instruction. */
    explicit Recorder(Sink *sink) : keep_(false), sink_(sink) {}

    /**
     * Append an instruction. Assigns the id (program order, 1-based).
     * @return the id, to be stored as provenance in produced values.
     */
    uint64_t
    emit(Instr instr)
    {
        instr.id = ++lastId_;
        if (keep_)
            buf_.push_back(instr);
        else if (sink_)
            sink_->onInstr(instr);
        return lastId_;
    }

    uint64_t count() const { return lastId_; }
    const std::vector<Instr> &instrs() const { return buf_; }

    /** Move the buffered trace out (recorder becomes empty). */
    std::vector<Instr>
    take()
    {
        std::vector<Instr> out = std::move(buf_);
        buf_.clear();
        lastId_ = 0;
        return out;
    }
    void
    clear()
    {
        buf_.clear();
        lastId_ = 0;
    }

  private:
    bool keep_;
    Sink *sink_ = nullptr;
    uint64_t lastId_ = 0;
    std::vector<Instr> buf_;
};

/**
 * The thread-local recorder the instrumentation writes to. Null means
 * tracing is disabled and instrumented code runs at full host speed (used
 * for warm-up and output-verification runs).
 */
Recorder *&currentRecorder();

/** RAII installation of a recorder for the current thread. */
class ScopedRecorder
{
  public:
    explicit ScopedRecorder(Recorder *rec)
        : saved_(currentRecorder())
    {
        currentRecorder() = rec;
    }
    ~ScopedRecorder() { currentRecorder() = saved_; }

    ScopedRecorder(const ScopedRecorder &) = delete;
    ScopedRecorder &operator=(const ScopedRecorder &) = delete;

  private:
    Recorder *saved_;
};

} // namespace swan::trace

#endif // SWAN_TRACE_RECORDER_HH
