/**
 * @file
 * Trace recorder: collects the dynamic instruction stream of one kernel
 * invocation, either buffering it for multi-configuration replay or
 * streaming it into a sink (e.g. directly into a timing simulator) when the
 * trace would be too large to hold.
 */

#ifndef SWAN_TRACE_RECORDER_HH
#define SWAN_TRACE_RECORDER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/instr.hh"

namespace swan::trace
{

/** Consumer interface for streaming traces. */
class Sink
{
  public:
    virtual ~Sink() = default;
    /** Called once per recorded instruction, in program order. */
    virtual void onInstr(const Instr &instr) = 0;

    /**
     * Block delivery: @p n consecutive instructions in program order,
     * equivalent to n onInstr calls. Producers that buffer (PackedTrace
     * replay, simulateTrace) prefer this entry point — one virtual call
     * per block instead of per instruction, with the block staying
     * cache-resident. The default simply loops onto onInstr, so every
     * existing sink keeps working; hot sinks (sim::CoreModel) override
     * it. Blocks must never split the program order: the concatenation
     * of all blocks is the trace.
     */
    virtual void
    onBlock(const Instr *instrs, size_t n)
    {
        for (size_t i = 0; i < n; ++i)
            onInstr(instrs[i]);
    }
};

/**
 * Records the dynamic instruction stream of a kernel invocation.
 *
 * A Recorder either keeps the full trace in memory (the common case: the
 * runner replays one trace against several core configurations) or forwards
 * each record to a Sink without buffering (used for very long runs such as
 * the Figure-6 GEMM sweep).
 */
class Recorder
{
  public:
    /** Buffered recorder. */
    Recorder() : keep_(true), ext_(nullptr) {}

    /**
     * Buffered recorder writing into the caller's vector (cleared
     * first, capacity kept). Lets a long-running driver — the sweep
     * scheduler captures hundreds of traces back to back — reuse one
     * scratch buffer instead of re-growing and freeing a fresh one per
     * capture, which keeps the capture thread's heap traffic (and
     * therefore the address-sensitive simulation results) independent
     * of how many captures came before.
     */
    explicit Recorder(std::vector<Instr> *buf) : keep_(true), ext_(buf)
    {
        ext_->clear();
    }

    /** Streaming recorder; @p sink receives every instruction. */
    explicit Recorder(Sink *sink) : keep_(false), sink_(sink) {}

    /**
     * Append an instruction. Assigns the id (program order, 1-based).
     * @return the id, to be stored as provenance in produced values.
     */
    uint64_t
    emit(Instr instr)
    {
        instr.id = ++lastId_;
        if (keep_)
            (ext_ ? *ext_ : buf_).push_back(instr);
        else if (sink_)
            sink_->onInstr(instr);
        return lastId_;
    }

    uint64_t count() const { return lastId_; }
    const std::vector<Instr> &instrs() const
    {
        return ext_ ? *ext_ : buf_;
    }

    /** Move the buffered trace out (recorder becomes empty). */
    std::vector<Instr>
    take()
    {
        std::vector<Instr> out = std::move(ext_ ? *ext_ : buf_);
        (ext_ ? *ext_ : buf_).clear();
        lastId_ = 0;
        return out;
    }
    void
    clear()
    {
        (ext_ ? *ext_ : buf_).clear();
        lastId_ = 0;
    }

  private:
    bool keep_;
    Sink *sink_ = nullptr;
    std::vector<Instr> *ext_ = nullptr;
    uint64_t lastId_ = 0;
    std::vector<Instr> buf_;
};

/**
 * The thread-local recorder the instrumentation writes to. Null means
 * tracing is disabled and instrumented code runs at full host speed (used
 * for warm-up and output-verification runs).
 */
Recorder *&currentRecorder();

/** RAII installation of a recorder for the current thread. */
class ScopedRecorder
{
  public:
    explicit ScopedRecorder(Recorder *rec)
        : saved_(currentRecorder())
    {
        currentRecorder() = rec;
    }
    ~ScopedRecorder() { currentRecorder() = saved_; }

    ScopedRecorder(const ScopedRecorder &) = delete;
    ScopedRecorder &operator=(const ScopedRecorder &) = delete;

  private:
    Recorder *saved_;
};

} // namespace swan::trace

#endif // SWAN_TRACE_RECORDER_HH
