/**
 * @file
 * Batch varint-decode kernels: the guaranteed scalar fallback, the
 * portable 64-bit SWAR kernel, the runtime-dispatched entry points,
 * and (on AArch64) the NEON window-probe kernel. The AVX2+BMI2
 * kernel lives in packed_batch_avx2.cc, which is compiled with its
 * own ISA flags. Every kernel is bit-identical to a next(Decoded&)
 * loop in decoded output, count, cursor advance and ok() semantics —
 * see trace/packed_batch_impl.hh.
 */

#include "trace/packed_batch_impl.hh"

#include <algorithm>

#include "swan/internal/simd_dispatch.hh"

#if defined(__aarch64__) && !defined(SWAN_SIMD_OFF)
#include <arm_neon.h>
#endif

namespace swan::trace
{

namespace
{

/**
 * Whether nextBatchNative is safe to call on this machine. Build-gate
 * aware but independent of the SWAN_SIMD env override: the explicit
 * DecodeImpl::Native request (tests, A/B benches) must exercise the
 * native kernel even when the process-wide dispatch was forced down.
 */
bool
nativeAvailable()
{
#if defined(SWAN_SIMD_OFF)
    return false;
#elif defined(__aarch64__)
    return true;
#elif defined(__x86_64__) && defined(__GNUC__)
    static const bool ok = __builtin_cpu_supports("avx2") &&
                           __builtin_cpu_supports("bmi2");
    return ok;
#else
    return false;
#endif
}

} // namespace

size_t
PackedTrace::Cursor::nextBatchScalar(Decoded *out, size_t max)
{
    size_t n = 0;
    while (n < max && next(out[n]))
        ++n;
    return n;
}

size_t
PackedTrace::Cursor::nextBatchSwar(Decoded *out, size_t max)
{
    return nextBatchImpl<packed_detail::SwarFold>(out, max);
}

#if defined(__aarch64__) && !defined(SWAN_SIMD_OFF)

/**
 * NEON kernel: a 16-byte vector probe settles "no continuation bits
 * anywhere in this window" in two instructions, after which records
 * decode on the all-singles path with the per-record MSB scan already
 * answered. Windows with multi-byte varints (or multi-address
 * records) drain through the SWAR body in sub-batches.
 */
size_t
PackedTrace::Cursor::nextBatchNative(Decoded *out, size_t max)
{
    using namespace packed_detail;
    if (!trace_ || left_ == 0)
        return 0;
    const uint32_t descCount = trace_->descCount_;
    size_t n = 0;
    while (n < max && left_) {
        bool plain = true;
        while (plain && n < max && left_ && end_ - p_ >= 16) {
            const uint8x16_t win = vld1q_u8(p_);
            if (vmaxvq_u8(vandq_u8(win, vdupq_n_u8(0x80))) != 0)
                break;
            // Clean window: every varint up to p_+16 is one byte.
            // Decode while a full 8-byte view stays inside the span.
            const uint8_t *const winEnd = p_ + 16;
            while (n < max && left_ && winEnd - p_ >= 8) {
                uint64_t w;
                std::memcpy(&w, p_, 8);
                const uint64_t tag = w & 0xff;
                if (tag & kHasMulti) {
                    plain = false;
                    break;
                }
                const uint64_t fIdJ = (tag >> 2) & 1;
                const uint64_t fD0 = (tag >> 3) & 1;
                const uint64_t fD1 = (tag >> 4) & 1;
                const uint64_t fD2 = (tag >> 5) & 1;
                const uint64_t fA = tag & 1;
                const uint64_t pIdJ = 1;
                const uint64_t pD0 = pIdJ + fIdJ;
                const uint64_t pD1 = pD0 + fD0;
                const uint64_t pD2 = pD1 + fD1;
                const uint64_t pA = pD2 + fD2;
                p_ += pA + fA;
                const uint64_t id = uint64_t(
                    int64_t(prevId_ + 1) +
                    (unzigzag((w >> (8 * pIdJ)) & 0xff) & -int64_t(fIdJ)));
                const uint64_t dep0 =
                    uint64_t(int64_t(id) -
                             unzigzag((w >> (8 * pD0)) & 0xff)) &
                    -uint64_t(fD0);
                const uint64_t dep1 =
                    uint64_t(int64_t(id) -
                             unzigzag((w >> (8 * pD1)) & 0xff)) &
                    -uint64_t(fD1);
                const uint64_t dep2 =
                    uint64_t(int64_t(id) -
                             unzigzag((w >> (8 * pD2)) & 0xff)) &
                    -uint64_t(fD2);
                prevAddr_ += uint64_t(unzigzag((w >> (8 * pA)) & 0xff) &
                                      -int64_t(fA));
                prevId_ = id;
                const uint64_t idx = tag >> kTagFlagBits;
                if (__builtin_expect(idx >= descCount, 0)) {
                    bad_ = true;
                    left_ = 0;
                    return n;
                }
                --left_;
                Decoded &o = out[n++];
                o.id = id;
                o.dep0 = dep0;
                o.dep1 = dep1;
                o.dep2 = dep2;
                o.addr = prevAddr_ & -uint64_t(fA);
                o.addr2 = 0;
                o.desc = uint32_t(idx);
            }
        }
        if (n >= max || left_ == 0)
            break;
        // Dirty window / multi record / near-end tail: drain a
        // sub-batch through the SWAR body, then probe again.
        const size_t got =
            nextBatchImpl<SwarFold>(out + n, std::min<size_t>(max - n, 64));
        if (got == 0)
            break;
        n += got;
    }
    return n;
}

#elif !defined(__x86_64__) || defined(SWAN_SIMD_OFF)

// No native kernel for this build: alias the portable SWAR kernel so
// an explicit DecodeImpl::Native request still decodes. (On x86-64
// non-gated builds the AVX2+BMI2 definition in packed_batch_avx2.cc
// provides this symbol instead.)
size_t
PackedTrace::Cursor::nextBatchNative(Decoded *out, size_t max)
{
    return nextBatchSwar(out, max);
}

#endif

size_t
PackedTrace::Cursor::nextBatch(Decoded *out, size_t max)
{
    switch (swan::detail::simdDispatch().level) {
    case swan::detail::SimdLevel::Avx2:
    case swan::detail::SimdLevel::Neon:
        return nextBatchNative(out, max);
    case swan::detail::SimdLevel::Swar:
        return nextBatchSwar(out, max);
    case swan::detail::SimdLevel::Scalar:
    default:
        return nextBatchScalar(out, max);
    }
}

size_t
PackedTrace::Cursor::nextBatch(Decoded *out, size_t max, DecodeImpl impl)
{
    switch (impl) {
    case DecodeImpl::Scalar:
        return nextBatchScalar(out, max);
    case DecodeImpl::Swar:
        return nextBatchSwar(out, max);
    case DecodeImpl::Native:
        return nativeAvailable() ? nextBatchNative(out, max)
                                 : nextBatchSwar(out, max);
    case DecodeImpl::Auto:
    default:
        return nextBatch(out, max);
    }
}

} // namespace swan::trace
