/**
 * @file
 * Compact in-memory trace encoding. The sweep methodology is "capture
 * one dynamic trace, replay it against many core configurations", so
 * buffered traces dominate the process's peak memory and replay
 * throughput dominates every figure's wall clock. PackedTrace encodes
 * the 64-byte AoS trace::Instr stream into a byte stream of typically
 * 2-4 bytes per instruction:
 *
 *  - the per-instruction *shape* (class, functional unit, latency,
 *    vector geometry, stride kind, access size, element stride) is
 *    deduplicated into a small side table of descriptors — a dynamic
 *    trace has few distinct op sites — so each record starts with a
 *    one-byte tag of descriptor index plus field-presence flags;
 *  - fields at their common value cost nothing: a sequential id
 *    (the recorder's 1,2,3,... numbering) and each absent dependence
 *    contribute zero bytes;
 *  - present dependences are stored as varint producer *distances*
 *    (id - dep), which are small for the register-renamed windows the
 *    simulator models;
 *  - memory addresses are delta-encoded against the previous accessed
 *    address; the rare second address of multi-address records
 *    (Gather/Scatter/LdS/StS) lives in a side stream.
 *
 * The encoding is lossless: unpack()/iteration reconstructs the exact
 * Instr sequence, so replaying a packed trace is byte-identical to
 * replaying the AoS buffer it came from.
 *
 * Storage lives in anonymous mmap regions, not the C++ heap. The sweep
 * scheduler frees traces mid-sweep under the SWAN_TRACE_MEMO_BYTES
 * budget; captured traces record real workload buffer addresses and
 * the cache models are address-sensitive, so trace eviction must not
 * perturb the malloc state later captures see (see
 * sweep/scheduler.cc). munmap keeps those frees invisible.
 */

#ifndef SWAN_TRACE_PACKED_HH
#define SWAN_TRACE_PACKED_HH

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/instr.hh"
#include "trace/recorder.hh"

namespace swan::trace
{

/** Losslessly packed dynamic instruction trace. */
class PackedTrace
{
  private:
    /** Deduplicated per-instruction shape (the descriptor side table). */
    struct Desc
    {
        uint32_t size = 0;
        int32_t elemStride = 0;
        uint8_t cls = 0;
        uint8_t fu = 0;
        uint8_t latency = 0;
        uint8_t vecBytes = 0;
        uint8_t lanes = 0;
        uint8_t activeLanes = 0;
        uint8_t stride = 0;
        uint8_t pad = 0; //!< keeps the struct memcmp/memcpy-clean
    };
    static_assert(sizeof(Desc) == 16, "descriptor layout is part of the "
                                      "payload format");

  public:
    /** Instrs decoded per block by deliver() (16 KiB of Instr: the
     *  block buffer stays cache-resident while every core model of a
     *  multi-config replay consumes it). */
    static constexpr size_t kBlockInstrs = 256;

    PackedTrace() = default;

    /**
     * Reusable pack() working memory. Drivers that pack many traces
     * back to back (the sweep scheduler) pass the same Scratch every
     * time: clear() keeps capacity, so steady-state packing makes no
     * heap allocations at all — which keeps the capture thread's
     * malloc state a pure function of the capture sequence (the
     * address-determinism contract in sweep/scheduler.cc).
     */
    struct Scratch
    {
        std::string main;
        std::string multi;
        std::vector<Desc> descs;
        /** FNV(desc bytes) -> head of the chain into descs. */
        std::unordered_map<uint64_t, uint32_t> index;
        /** Per-desc link to the previous desc with the same hash. */
        std::vector<int32_t> chain;

        void
        clear()
        {
            main.clear();
            multi.clear();
            descs.clear();
            index.clear();
            chain.clear();
        }
    };

    /** Encode a buffered (Recorder) trace. */
    static PackedTrace pack(const std::vector<Instr> &instrs);

    /** pack() borrowing @p scratch instead of allocating its own. */
    static PackedTrace pack(const std::vector<Instr> &instrs,
                            Scratch *scratch);

    /** Number of instructions. */
    size_t size() const { return size_t(count_); }
    bool empty() const { return count_ == 0; }

    /** Bytes held by the encoding (the memo-budget unit). */
    size_t byteSize() const { return buf_.size(); }

    /** What the same trace costs as an AoS Instr buffer. */
    static size_t aosBytes(size_t n) { return n * sizeof(Instr); }

    /** Decode the full trace back into an AoS buffer. */
    std::vector<Instr> unpack() const;

    /** Stream the trace into @p sink in kBlockInstrs-sized blocks. */
    void deliver(Sink &sink) const;

    /**
     * Release the encoded storage early (munmap; invisible to malloc).
     * The trace becomes empty. Used by the sweep trace memo to enforce
     * its byte budget without perturbing heap determinism.
     */
    void releaseStorage();

    /** Incremental block decoder. */
    class Cursor
    {
      public:
        Cursor() = default; //!< empty cursor; next() returns 0
        explicit Cursor(const PackedTrace &trace);

        /**
         * Decode up to @p max instructions into @p out.
         * @return the number decoded; 0 at end of trace.
         */
        size_t next(Instr *out, size_t max);

        /** Rewind to the first instruction. */
        void reset();

      private:
        const PackedTrace *trace_ = nullptr;
        const uint8_t *p_ = nullptr;        //!< main stream position
        const uint8_t *end_ = nullptr;
        const uint8_t *mp_ = nullptr;       //!< multi-address stream
        const uint8_t *mend_ = nullptr;
        uint64_t prevId_ = 0;
        uint64_t prevAddr_ = 0;
    };

    /** Input iterator reconstructing Instr views one at a time. */
    class Iterator
    {
      public:
        using iterator_category = std::input_iterator_tag;
        using value_type = Instr;
        using difference_type = std::ptrdiff_t;
        using pointer = const Instr *;
        using reference = const Instr &;

        Iterator() = default; // end sentinel

        explicit Iterator(const PackedTrace &trace) : cur_(trace)
        {
            ++*this;
        }

        reference operator*() const { return instr_; }
        pointer operator->() const { return &instr_; }

        Iterator &
        operator++()
        {
            done_ = cur_.next(&instr_, 1) == 0;
            return *this;
        }

        bool operator==(const Iterator &o) const { return done_ == o.done_; }
        bool operator!=(const Iterator &o) const { return !(*this == o); }

      private:
        Cursor cur_;
        Instr instr_;
        bool done_ = true;
    };

    Iterator begin() const { return empty() ? Iterator() : Iterator(*this); }
    Iterator end() const { return Iterator(); }

    /**
     * Append the encoded payload (header + streams) to @p out, for the
     * on-disk sweep trace tier. Same-host format, FNV-checksummed.
     */
    void appendPayload(std::string *out) const;

    /**
     * Write the same payload straight to @p f without building a heap
     * blob — the sweep scheduler spills evicted traces between
     * captures, where a multi-megabyte transient malloc would perturb
     * the capture thread's allocator state (and with it the
     * address-sensitive simulation results).
     * @return false on a short write.
     */
    bool writePayload(std::FILE *f) const;

#if defined(__unix__) || defined(__APPLE__)
    /**
     * Raw-fd variant of writePayload: write(2) only, no stdio and no
     * malloc at all — the spill path between captures must leave the
     * allocator bit-untouched (see sweep/scheduler.cc).
     */
    bool writePayload(int fd) const;
#endif

    /**
     * Parse an appendPayload() blob. @return false (and leaves @p out
     * untouched) on any truncation, bound or checksum violation.
     */
    static bool parsePayload(const uint8_t *data, size_t len,
                             PackedTrace *out);

  private:
    friend class Cursor;

    /** Anonymous-mmap byte buffer (new[] fallback off POSIX). */
    class Buf
    {
      public:
        Buf() = default;
        explicit Buf(size_t n);
        ~Buf() { release(); }

        Buf(const Buf &) = delete;
        Buf &operator=(const Buf &) = delete;
        Buf(Buf &&o) noexcept { *this = std::move(o); }
        Buf &
        operator=(Buf &&o) noexcept
        {
            release();
            p_ = o.p_;
            n_ = o.n_;
            mapped_ = o.mapped_;
            o.p_ = nullptr;
            o.n_ = 0;
            return *this;
        }

        uint8_t *data() { return p_; }
        const uint8_t *data() const { return p_; }
        size_t size() const { return n_; }

        void release();

      private:
        uint8_t *p_ = nullptr;
        size_t n_ = 0;
        bool mapped_ = false;
    };

    /** Assemble buf_ = [descs | main stream | multi stream]. */
    void assemble(const Desc *descs, uint32_t desc_count,
                  const std::string &main, const std::string &multi,
                  uint64_t count);

    const Desc *descs() const
    {
        return reinterpret_cast<const Desc *>(buf_.data());
    }
    const uint8_t *mainStream() const
    {
        return buf_.data() + size_t(descCount_) * sizeof(Desc);
    }
    const uint8_t *multiStream() const
    {
        return mainStream() + mainLen_;
    }

    Buf buf_;
    uint64_t count_ = 0;
    uint64_t mainLen_ = 0;
    uint64_t multiLen_ = 0;
    uint32_t descCount_ = 0;
};

} // namespace swan::trace

#endif // SWAN_TRACE_PACKED_HH
