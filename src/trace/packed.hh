/**
 * @file
 * Compact in-memory trace encoding. The sweep methodology is "capture
 * one dynamic trace, replay it against many core configurations", so
 * buffered traces dominate the process's peak memory and replay
 * throughput dominates every figure's wall clock. PackedTrace encodes
 * the 64-byte AoS trace::Instr stream into a byte stream of typically
 * 2-4 bytes per instruction:
 *
 *  - the per-instruction *shape* (class, functional unit, latency,
 *    vector geometry, stride kind, access size, element stride) is
 *    deduplicated into a small side table of descriptors — a dynamic
 *    trace has few distinct op sites — so each record starts with a
 *    one-byte tag of descriptor index plus field-presence flags;
 *  - fields at their common value cost nothing: a sequential id
 *    (the recorder's 1,2,3,... numbering) and each absent dependence
 *    contribute zero bytes;
 *  - present dependences are stored as varint producer *distances*
 *    (id - dep), which are small for the register-renamed windows the
 *    simulator models;
 *  - memory addresses are delta-encoded against the previous accessed
 *    address; the rare second address of multi-address records
 *    (Gather/Scatter/LdS/StS) lives in a side stream.
 *
 * The encoding is lossless: unpack()/iteration reconstructs the exact
 * Instr sequence, so replaying a packed trace is byte-identical to
 * replaying the AoS buffer it came from.
 *
 * Storage lives in anonymous mmap regions, not the C++ heap. The sweep
 * scheduler frees traces mid-sweep under the SWAN_TRACE_MEMO_BYTES
 * budget; captured traces record real workload buffer addresses and
 * the cache models are address-sensitive, so trace eviction must not
 * perturb the malloc state later captures see (see
 * sweep/scheduler.cc). munmap keeps those frees invisible.
 */

#ifndef SWAN_TRACE_PACKED_HH
#define SWAN_TRACE_PACKED_HH

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <string>
#include <unordered_map>
#include <vector>

#include "swan/internal/contracts.hh"
#include "trace/instr.hh"
#include "trace/recorder.hh"

namespace swan::trace
{

/**
 * Decode primitives shared by the block decoder (packed.cc) and the
 * inline single-record Cursor path that the fused replay engine
 * (sim/core_model.cc) compiles into its step loop. Header-inline so
 * both consumers see one definition of the stream format.
 */
namespace packed_detail
{

inline int64_t
unzigzag(uint64_t v)
{
    return int64_t(v >> 1) ^ -int64_t(v & 1);
}

// --- per-record tag layout --------------------------------------------
// tag = descIndex << 6 | presence flags. A field whose flag is clear
// contributes zero stream bytes and zero decode work: the common
// sequential id costs nothing, and each absent dependence costs
// nothing — a typical scalar ALU record is tag + one dep distance,
// two bytes total.
constexpr uint64_t kHasAddr = 1;
constexpr uint64_t kHasMulti = 2;
constexpr uint64_t kHasIdJump = 4;  //!< id != prevId + 1
constexpr uint64_t kHasDep0 = 8;
constexpr uint64_t kHasDep1 = 16;
constexpr uint64_t kHasDep2 = 32;
constexpr int kTagFlagBits = 6;

/** Longest possible main-stream record: 6 varints of up to 10 bytes. */
constexpr ptrdiff_t kMaxRecordBytes = 60;

/** Strip each byte's continuation bit and fold the 7-bit groups of a
 *  masked little-endian word into one integer (up to 56 bits). */
inline uint64_t
fold7(uint64_t w)
{
    uint64_t x = (w & 0x007f007f007f007full) |
                 ((w & 0x7f007f007f007f00ull) >> 1);
    x = (x & 0x00003fff00003fffull) | ((x & 0x3fff00003fff0000ull) >> 2);
    return (x & 0x000000000fffffffull) | ((x & 0x0fffffff00000000ull) >> 4);
}

/**
 * Unchecked word-at-a-time varint read. One 8-byte load covers every
 * varint the encoder emits for the values seen in practice: the length
 * comes from the first clear continuation bit (ctz on the inverted msb
 * mask), and the payload bits fold together without a per-byte loop —
 * no data-dependent branches for anything up to 8 encoded bytes.
 * Only used when the caller has already established that a maximal
 * record cannot run past the end of the stream.
 */
inline uint64_t
rdFast(const uint8_t *&p)
{
    uint64_t w;
    std::memcpy(&w, p, 8);
    if (__builtin_expect(!(w & 0x80), 1)) {
        ++p;
        return w & 0x7f;
    }
    const uint64_t stops = ~w & 0x8080808080808080ull;
    if (__builtin_expect(stops != 0, 1)) {
        // Bytes 0..len-1 belong to this varint (2 <= len <= 8).
        const int len = (__builtin_ctzll(stops) >> 3) + 1;
        p += len;
        return fold7(w & (~0ull >> (64 - 8 * len)));
    }
    // 9- or 10-byte varint: all eight loaded bytes are continuation
    // bytes; fold their 56 payload bits and finish byte-wise.
    p += 8;
    uint64_t v = fold7(w & 0x7f7f7f7f7f7f7f7full);
    int shift = 56;
    while (true) {
        const uint64_t b = *p++;
        v |= (b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
        if (shift >= 64)
            return v;
    }
}

/**
 * Checked byte-wise varint read: never reads at or past @p end, and
 * sets @p *bad (leaves it untouched otherwise) when the varint is
 * truncated by the stream end or over-long (> 10 encoded bytes —
 * something the encoder never emits).
 */
inline uint64_t
getVarint(const uint8_t *&p, const uint8_t *end, bool *bad)
{
    uint64_t v = 0;
    int shift = 0;
    while (p < end) {
        const uint8_t b = *p++;
        if (shift < 64)
            v |= uint64_t(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
        if (shift >= 70) {
            *bad = true;
            return v;
        }
    }
    *bad = true;
    return v;
}

} // namespace packed_detail

/** Losslessly packed dynamic instruction trace. */
class PackedTrace
{
  private:
    /** Deduplicated per-instruction shape (the descriptor side table). */
    struct Desc
    {
        uint32_t size = 0;
        int32_t elemStride = 0;
        uint8_t cls = 0;
        uint8_t fu = 0;
        uint8_t latency = 0;
        uint8_t vecBytes = 0;
        uint8_t lanes = 0;
        uint8_t activeLanes = 0;
        uint8_t stride = 0;
        uint8_t pad = 0; //!< keeps the struct memcmp/memcpy-clean
    };
    static_assert(sizeof(Desc) == 16, "descriptor layout is part of the "
                                      "payload format");

  public:
    /** Instrs decoded per block by deliver() (16 KiB of Instr: the
     *  block buffer stays cache-resident while every core model of a
     *  multi-config replay consumes it). */
    static constexpr size_t kBlockInstrs = 256;

    PackedTrace() = default;

    /**
     * Reusable pack() working memory. Drivers that pack many traces
     * back to back (the sweep scheduler) pass the same Scratch every
     * time: clear() keeps capacity, so steady-state packing makes no
     * heap allocations at all — which keeps the capture thread's
     * malloc state a pure function of the capture sequence (the
     * address-determinism contract in sweep/scheduler.cc).
     */
    struct Scratch
    {
        std::string main;
        std::string multi;
        std::vector<Desc> descs;
        /** FNV(desc bytes) -> head of the chain into descs. */
        std::unordered_map<uint64_t, uint32_t> index;
        /** Per-desc link to the previous desc with the same hash. */
        std::vector<int32_t> chain;

        void
        clear()
        {
            main.clear();
            multi.clear();
            descs.clear();
            index.clear();
            chain.clear();
        }
    };

    /** Encode a buffered (Recorder) trace. */
    static PackedTrace pack(const std::vector<Instr> &instrs);

    /** pack() borrowing @p scratch instead of allocating its own. */
    static PackedTrace pack(const std::vector<Instr> &instrs,
                            Scratch *scratch);

    /** Number of instructions. */
    size_t size() const { return size_t(count_); }
    bool empty() const { return count_ == 0; }

    /** Bytes held by the encoding (the memo-budget unit). */
    size_t byteSize() const { return buf_.size(); }

    /** What the same trace costs as an AoS Instr buffer. */
    static size_t aosBytes(size_t n) { return n * sizeof(Instr); }

    /** Decode the full trace back into an AoS buffer. */
    std::vector<Instr> unpack() const;

    /** Stream the trace into @p sink in kBlockInstrs-sized blocks. */
    void deliver(Sink &sink) const;

    /**
     * Release the encoded storage early (munmap; invisible to malloc).
     * The trace becomes empty. Used by the sweep trace memo to enforce
     * its byte budget without perturbing heap determinism.
     */
    void releaseStorage();

    /**
     * Deep copy. A fresh anonymous-mmap buffer plus a memcpy — no
     * malloc on POSIX, so the sweep cache's T0 pinned-trace memo can
     * pin and serve traces without perturbing the capture heap (the
     * class is otherwise move-only precisely to keep copies explicit).
     */
    PackedTrace clone() const;

    /**
     * One decoded record's identity fields. The shape fields live in
     * the descriptor side table (see descCount()/expandDesc()); the
     * fused replay engine keeps a per-descriptor prototype instead of
     * re-expanding them per instruction. Capture-phase layout pin: the
     * fused driver's decode-batch buffers are sized by this struct
     * (include/swan/internal/layout.hh).
     */
    struct SWAN_CAPTURE_TYPE Decoded
    {
        uint64_t id;
        uint64_t dep0, dep1, dep2;
        uint64_t addr;
        uint64_t addr2;
        uint32_t desc;      //!< descriptor index, < descCount()
    };

    /**
     * Which batch-decode kernel family Cursor::nextBatch runs. Every
     * implementation is bit-identical in output and cursor state
     * transitions (including ok() checked-decode semantics); the
     * choice is pure throughput. Auto defers to the process-wide
     * runtime ISA dispatch (swan/internal/simd_dispatch.hh).
     */
    enum class DecodeImpl : uint8_t
    {
        Auto,   //!< runtime-dispatched best available
        Scalar, //!< guaranteed fallback: a loop over next(Decoded&)
        Swar,   //!< portable 64-bit SWAR batch kernel
        Native, //!< AVX2+BMI2 / NEON; degrades to Swar if unavailable
    };

    /** Incremental block decoder (checked: see ok()). */
    class Cursor
    {
      public:
        Cursor() = default; //!< empty cursor; next() returns 0
        explicit Cursor(const PackedTrace &trace);

        /**
         * Decode up to @p max instructions into @p out.
         * @return the number decoded; 0 at end of trace.
         */
        size_t next(Instr *out, size_t max);

        /**
         * Decode exactly one record into registers (no Instr
         * materialization) — the scalar endpoint every batch kernel
         * falls back to.
         * @return false at end of trace, or when the stream is
         * malformed (check ok() to tell the two apart).
         */
        bool next(Decoded &out);

        /**
         * Decode up to @p max records into @p out with the
         * runtime-dispatched batch kernel — the fused replay engine's
         * entry point. Cursor state (position, delta bases, ok())
         * advances exactly as @p max calls of next(Decoded&) would;
         * the batch kernels only amortize bounds checks and keep the
         * decode recurrence in registers across the whole batch.
         * @return the number decoded; 0 at end of trace or on a
         * malformed stream (check ok() to tell the two apart).
         */
        size_t nextBatch(Decoded *out, size_t max);

        /** nextBatch() forcing a specific kernel family (tests and
         *  benches; Native degrades to Swar when the hardware lacks
         *  it). */
        size_t nextBatch(Decoded *out, size_t max, DecodeImpl impl);

        /** Rewind to the first instruction. */
        void reset();

        /**
         * Checked decode: false once this cursor has observed a
         * malformed stream — a record truncated by the varint stream
         * end, a descriptor index out of range, an exhausted
         * multi-address side stream, or (once the advertised
         * instruction count has been decoded) trailing stream bytes.
         * Decoding never reads outside the encoded buffer either way;
         * ok() upgrades "stop early on garbage" to "reject".
         */
        bool ok() const;

      private:
        /** Shared body of the SWAR and pext batch kernels: the Fold
         *  policy abstracts multi-byte varint bit extraction (fold7
         *  vs BMI2 pext). Defined in trace/packed_batch_impl.hh and
         *  instantiated per kernel translation unit (the AVX2 one is
         *  compiled with its own ISA flags). */
        template <class Fold> size_t nextBatchImpl(Decoded *out, size_t max);
        /** The guaranteed-available fallback: a next(Decoded&) loop. */
        size_t nextBatchScalar(Decoded *out, size_t max);
        /** Portable 64-bit SWAR batch kernel (packed_batch.cc). */
        size_t nextBatchSwar(Decoded *out, size_t max);
        /** Best native kernel this build carries: AVX2+BMI2 pext on
         *  x86-64 (packed_batch_avx2.cc), NEON on AArch64, else an
         *  alias of the SWAR kernel. Call only via nextBatch — the
         *  x86 variant requires runtime AVX2/BMI2 support. */
        size_t nextBatchNative(Decoded *out, size_t max);

        const PackedTrace *trace_ = nullptr;
        const uint8_t *p_ = nullptr;        //!< main stream position
        const uint8_t *end_ = nullptr;
        const uint8_t *mp_ = nullptr;       //!< multi-address stream
        const uint8_t *mend_ = nullptr;
        uint64_t prevId_ = 0;
        uint64_t prevAddr_ = 0;
        uint64_t left_ = 0;                 //!< records still to decode
        bool bad_ = false;                  //!< malformation observed
    };

    /** Input iterator reconstructing Instr views one at a time. */
    class Iterator
    {
      public:
        using iterator_category = std::input_iterator_tag;
        using value_type = Instr;
        using difference_type = std::ptrdiff_t;
        using pointer = const Instr *;
        using reference = const Instr &;

        Iterator() = default; // end sentinel

        explicit Iterator(const PackedTrace &trace) : cur_(trace)
        {
            ++*this;
        }

        reference operator*() const { return instr_; }
        pointer operator->() const { return &instr_; }

        Iterator &
        operator++()
        {
            done_ = cur_.next(&instr_, 1) == 0;
            return *this;
        }

        bool operator==(const Iterator &o) const { return done_ == o.done_; }
        bool operator!=(const Iterator &o) const { return !(*this == o); }

      private:
        Cursor cur_;
        Instr instr_;
        bool done_ = true;
    };

    Iterator begin() const { return empty() ? Iterator() : Iterator(*this); }
    Iterator end() const { return Iterator(); }

    /**
     * Append the encoded payload (header + streams) to @p out, for the
     * on-disk sweep trace tier. Same-host format, FNV-checksummed.
     */
    void appendPayload(std::string *out) const;

    /**
     * Write the same payload straight to @p f without building a heap
     * blob — the sweep scheduler spills evicted traces between
     * captures, where a multi-megabyte transient malloc would perturb
     * the capture thread's allocator state (and with it the
     * address-sensitive simulation results).
     * @return false on a short write.
     */
    bool writePayload(std::FILE *f) const;

#if defined(__unix__) || defined(__APPLE__)
    /**
     * Raw-fd variant of writePayload: write(2) only, no stdio and no
     * malloc at all — the spill path between captures must leave the
     * allocator bit-untouched (see sweep/scheduler.cc).
     */
    bool writePayload(int fd) const;
#endif

    /**
     * Parse an appendPayload() blob. @return false (and leaves @p out
     * untouched) on any truncation, bound or checksum violation.
     */
    static bool parsePayload(const uint8_t *data, size_t len,
                             PackedTrace *out);

    /** Number of deduplicated shape descriptors. */
    uint32_t descCount() const { return descCount_; }

    /**
     * Expand descriptor @p idx into @p out's shape fields (class, FU,
     * latency, vector geometry, stride kind, access size); the
     * identity fields (id, deps, addresses) are zeroed. Used by the
     * fused replay engine to precompute one step prototype per
     * descriptor. Precondition: idx < descCount().
     */
    void expandDesc(uint32_t idx, Instr *out) const;

  private:
    friend class Cursor;

    /** Anonymous-mmap byte buffer (new[] fallback off POSIX). */
    class Buf
    {
      public:
        Buf() = default;
        explicit Buf(size_t n);
        ~Buf() { release(); }

        Buf(const Buf &) = delete;
        Buf &operator=(const Buf &) = delete;
        Buf(Buf &&o) noexcept { *this = std::move(o); }
        Buf &
        operator=(Buf &&o) noexcept
        {
            release();
            p_ = o.p_;
            n_ = o.n_;
            mapped_ = o.mapped_;
            o.p_ = nullptr;
            o.n_ = 0;
            return *this;
        }

        uint8_t *data() { return p_; }
        const uint8_t *data() const { return p_; }
        size_t size() const { return n_; }

        void release();

      private:
        uint8_t *p_ = nullptr;
        size_t n_ = 0;
        bool mapped_ = false;
    };

    /** Assemble buf_ = [descs | main stream | multi stream]. */
    void assemble(const Desc *descs, uint32_t desc_count,
                  const std::string &main, const std::string &multi,
                  uint64_t count);

    const Desc *descs() const
    {
        return reinterpret_cast<const Desc *>(buf_.data());
    }
    const uint8_t *mainStream() const
    {
        return buf_.data() + size_t(descCount_) * sizeof(Desc);
    }
    const uint8_t *multiStream() const
    {
        return mainStream() + mainLen_;
    }

    Buf buf_;
    uint64_t count_ = 0;
    uint64_t mainLen_ = 0;
    uint64_t multiLen_ = 0;
    uint32_t descCount_ = 0;
};

inline bool
PackedTrace::Cursor::ok() const
{
    if (bad_)
        return false;
    // Fully consumed: the streams must land exactly on their ends
    // (trailing bytes mean the advertised count lied).
    if (trace_ && left_ == 0)
        return p_ == end_ && mp_ == mend_;
    return true;
}

/**
 * Single-record decode, inline so the fused replay loop pays no call
 * (and no Instr staging store) per instruction. The structure mirrors
 * the block decoder's three tiers: a branch-free extraction when the
 * next 8 bytes are all single-byte varints (the overwhelmingly common
 * case — a record is typically 2-4 bytes), an unchecked word-at-a-time
 * read when a maximal record cannot overrun the stream, and a fully
 * checked byte-wise tail.
 */
inline bool
PackedTrace::Cursor::next(Decoded &out)
{
    using namespace packed_detail;
    if (left_ == 0)
        return false;
    const uint8_t *p = p_;
    const uint32_t descCount = trace_->descCount_;
    uint64_t tag, id, dep0 = 0, dep1 = 0, dep2 = 0, addr = 0, addr2 = 0;
    if (__builtin_expect(end_ - p >= 8, 1)) {
        uint64_t w;
        std::memcpy(&w, p, 8);
        if (__builtin_expect(!(w & 0x8080808080808080ull), 1)) {
            tag = w & 0xff;
            if (__builtin_expect(!(tag & kHasMulti), 1)) {
                // Flag-indexed shifts: absent fields cost a mask, not
                // a mispredicted branch.
                const uint64_t fIdJ = (tag >> 2) & 1;
                const uint64_t fD0 = (tag >> 3) & 1;
                const uint64_t fD1 = (tag >> 4) & 1;
                const uint64_t fD2 = (tag >> 5) & 1;
                const uint64_t fA = tag & 1;
                const uint64_t pIdJ = 1;
                const uint64_t pD0 = pIdJ + fIdJ;
                const uint64_t pD1 = pD0 + fD0;
                const uint64_t pD2 = pD1 + fD1;
                const uint64_t pA = pD2 + fD2;
                p_ = p + (pA + fA);
                id = uint64_t(
                    int64_t(prevId_ + 1) +
                    (unzigzag((w >> (8 * pIdJ)) & 0xff) & -int64_t(fIdJ)));
                dep0 = uint64_t(int64_t(id) -
                                unzigzag((w >> (8 * pD0)) & 0xff)) &
                       -uint64_t(fD0);
                dep1 = uint64_t(int64_t(id) -
                                unzigzag((w >> (8 * pD1)) & 0xff)) &
                       -uint64_t(fD1);
                dep2 = uint64_t(int64_t(id) -
                                unzigzag((w >> (8 * pD2)) & 0xff)) &
                       -uint64_t(fD2);
                prevAddr_ += uint64_t(unzigzag((w >> (8 * pA)) & 0xff) &
                                      -int64_t(fA));
                addr = prevAddr_ & -uint64_t(fA);
                prevId_ = id;
                const uint64_t idx = tag >> kTagFlagBits;
                if (__builtin_expect(idx >= descCount, 0)) {
                    bad_ = true;
                    left_ = 0;
                    return false;
                }
                --left_;
                out.id = id;
                out.dep0 = dep0;
                out.dep1 = dep1;
                out.dep2 = dep2;
                out.addr = addr;
                out.addr2 = 0;
                out.desc = uint32_t(idx);
                return true;
            }
        }
    }
    if (__builtin_expect(end_ - p >= kMaxRecordBytes, 1)) {
        // A maximal record fits: skip per-byte checks. The rare
        // multi-address side read stays checked below (the side
        // stream may be empty).
        tag = rdFast(p);
        id = prevId_ + 1;
        if (tag & kHasIdJump)
            id = uint64_t(int64_t(id) + unzigzag(rdFast(p)));
        if (tag & kHasDep0)
            dep0 = uint64_t(int64_t(id) - unzigzag(rdFast(p)));
        if (tag & kHasDep1)
            dep1 = uint64_t(int64_t(id) - unzigzag(rdFast(p)));
        if (tag & kHasDep2)
            dep2 = uint64_t(int64_t(id) - unzigzag(rdFast(p)));
        if (tag & kHasAddr) {
            prevAddr_ += uint64_t(unzigzag(rdFast(p)));
            addr = prevAddr_;
        }
    } else {
        bool bad = false;
        tag = getVarint(p, end_, &bad);
        id = prevId_ + 1;
        if (tag & kHasIdJump)
            id = uint64_t(int64_t(id) + unzigzag(getVarint(p, end_, &bad)));
        if (tag & kHasDep0)
            dep0 = uint64_t(int64_t(id) - unzigzag(getVarint(p, end_, &bad)));
        if (tag & kHasDep1)
            dep1 = uint64_t(int64_t(id) - unzigzag(getVarint(p, end_, &bad)));
        if (tag & kHasDep2)
            dep2 = uint64_t(int64_t(id) - unzigzag(getVarint(p, end_, &bad)));
        if (tag & kHasAddr) {
            prevAddr_ += uint64_t(unzigzag(getVarint(p, end_, &bad)));
            addr = prevAddr_;
        }
        if (bad) {
            bad_ = true;
            left_ = 0;
            return false;
        }
    }
    if (tag & kHasMulti) {
        bool bad = false;
        const uint64_t multiTok = getVarint(mp_, mend_, &bad);
        if (bad) {
            bad_ = true;
            left_ = 0;
            return false;
        }
        addr2 = uint64_t(int64_t(addr) + unzigzag(multiTok));
    }
    prevId_ = id;
    const uint64_t idx = tag >> kTagFlagBits;
    if (__builtin_expect(idx >= descCount, 0)) {
        bad_ = true;
        left_ = 0;
        return false;
    }
    p_ = p;
    --left_;
    out.id = id;
    out.dep0 = dep0;
    out.dep1 = dep1;
    out.dep2 = dep2;
    out.addr = addr;
    out.addr2 = addr2;
    out.desc = uint32_t(idx);
    return true;
}

} // namespace swan::trace

#endif // SWAN_TRACE_PACKED_HH
